package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/kademlia"
	"dhtindex/internal/overlay"
	"dhtindex/internal/pastry"
	"dhtindex/internal/xpath"
)

// repl is the interpreter state behind the indexctl shell.
type repl struct {
	out      io.Writer
	net      overlay.Network
	svc      *index.Service
	scheme   index.Scheme
	searcher *index.Searcher
	session  *index.Session
	options  []xpath.Query
	articles []descriptor.Article
	files    []string
}

var errQuit = errors.New("quit")

func newREPL(out io.Writer) *repl {
	return &repl{out: out, scheme: index.Simple}
}

// run executes commands line by line until EOF or quit.
func run(in io.Reader, out io.Writer) error {
	r := newREPL(out)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 64<<10), 64<<10)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := r.exec(line); err != nil {
			if errors.Is(err, errQuit) {
				return nil
			}
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
	return scanner.Err()
}

func (r *repl) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		return r.help()
	case "network":
		return r.network(args)
	case "scheme":
		return r.setScheme(args)
	case "cache":
		return r.setCache(args)
	case "add":
		return r.add(args)
	case "load":
		return r.load(args)
	case "import":
		return r.importXML(args)
	case "find":
		return r.find(args)
	case "fuzzy":
		return r.fuzzy(args)
	case "vocab":
		return r.vocab()
	case "ask":
		return r.ask(args)
	case "refine":
		return r.refine(args)
	case "back":
		return r.back()
	case "promote":
		return r.promote(args)
	case "remove":
		return r.removeArticle(args)
	case "stats":
		return r.stats()
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (r *repl) help() error {
	fmt.Fprint(r.out, `commands:
  network <nodes> [chord|pastry|kademlia]  create the overlay network
  scheme <simple|flat|complex|fig4>     select the indexing scheme
  cache <none|multi|single|lru> [cap]   select the cache policy
  add <file> <first> <last> <title...> <conf> <year> <size>
                                        publish one article (title may be quoted with _)
  load <count> [seed]                   publish a synthetic corpus
  import <path.xml>                     publish articles from a DBLP-style XML file
  find <query>                          automated search (paper syntax)
  fuzzy <query>                         search with misspelling correction
  vocab                                 enable value dictionaries (then re-add articles)
  ask <query>                           start an interactive session
  refine <n>                            follow option n of the last response
  back                                  undo the last refinement
  promote <file>                        short-circuit a published article
  remove <file>                         unpublish an article (recursive cleanup)
  stats                                 storage and cache statistics
  quit
`)
	return nil
}

func (r *repl) requireNetwork() error {
	if r.svc == nil {
		return errors.New("no network (run: network 50)")
	}
	return nil
}

func (r *repl) network(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: network <nodes> [chord|pastry|kademlia]")
	}
	nodes, err := strconv.Atoi(args[0])
	if err != nil || nodes < 1 {
		return fmt.Errorf("bad node count %q", args[0])
	}
	substrate := "chord"
	if len(args) > 1 {
		substrate = args[1]
	}
	switch substrate {
	case "chord":
		net := dht.NewNetwork(1)
		if _, err := net.Populate(nodes); err != nil {
			return err
		}
		r.net = dht.AsOverlay(net, 1)
	case "pastry":
		net := pastry.NewNetwork()
		if _, err := net.Populate(nodes); err != nil {
			return err
		}
		r.net = pastry.AsOverlay(net, 1)
	case "kademlia":
		net := kademlia.NewNetwork(kademlia.Config{Replicas: 1, Seed: 1})
		if _, err := net.Populate(nodes); err != nil {
			return err
		}
		r.net = kademlia.AsOverlay(net, 1)
	default:
		return fmt.Errorf("unknown substrate %q", substrate)
	}
	r.resetService(cache.None, 0)
	fmt.Fprintf(r.out, "network ready: %d %s nodes\n", nodes, substrate)
	return nil
}

// resetService builds a fresh service (cache policy changes need one) and
// republishes nothing — callers publish afterwards.
func (r *repl) resetService(policy cache.Policy, capacity int) {
	r.svc = index.New(r.net, policy, capacity)
	r.searcher = index.NewSearcher(r.svc)
	r.session = index.NewSession(r.svc)
	r.options = nil
	r.articles = nil
	r.files = nil
}

func (r *repl) setScheme(args []string) error {
	if len(args) != 1 {
		return errors.New("usage: scheme <simple|flat|complex|fig4>")
	}
	scheme, err := index.SchemeByName(args[0])
	if err != nil {
		return err
	}
	r.scheme = scheme
	fmt.Fprintf(r.out, "scheme: %s\n", scheme.Name())
	return nil
}

func (r *repl) setCache(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) < 1 {
		return errors.New("usage: cache <none|multi|single|lru> [capacity]")
	}
	var policy cache.Policy
	capacity := 0
	switch args[0] {
	case "none":
		policy = cache.None
	case "multi":
		policy = cache.Multi
	case "single":
		policy = cache.Single
	case "lru":
		policy = cache.LRU
		capacity = 30
		if len(args) > 1 {
			c, err := strconv.Atoi(args[1])
			if err != nil || c < 1 {
				return fmt.Errorf("bad capacity %q", args[1])
			}
			capacity = c
		}
	default:
		return fmt.Errorf("unknown policy %q", args[0])
	}
	articles, files := r.articles, r.files
	r.resetService(policy, capacity)
	// Republish under the new service so the database survives the
	// policy change.
	for i, a := range articles {
		if err := r.svc.PublishArticle(files[i], a, r.scheme); err != nil {
			return err
		}
	}
	r.articles, r.files = articles, files
	fmt.Fprintf(r.out, "cache: %s (capacity %d), %d articles republished\n",
		policy, capacity, len(articles))
	return nil
}

func (r *repl) add(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) != 7 {
		return errors.New("usage: add <file> <first> <last> <title> <conf> <year> <size> (use _ for spaces)")
	}
	year, err := strconv.Atoi(args[5])
	if err != nil {
		return fmt.Errorf("bad year %q", args[5])
	}
	size, err := strconv.ParseInt(args[6], 10, 64)
	if err != nil {
		return fmt.Errorf("bad size %q", args[6])
	}
	unq := func(s string) string { return strings.ReplaceAll(s, "_", " ") }
	a := descriptor.Article{
		AuthorFirst: unq(args[1]), AuthorLast: unq(args[2]),
		Title: unq(args[3]), Conf: unq(args[4]), Year: year, Size: size,
	}
	if err := r.svc.PublishArticle(args[0], a, r.scheme); err != nil {
		return err
	}
	r.articles = append(r.articles, a)
	r.files = append(r.files, args[0])
	fmt.Fprintf(r.out, "published %s under %s\n", args[0], dataset.MSD(a))
	return nil
}

func (r *repl) load(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) < 1 {
		return errors.New("usage: load <count> [seed]")
	}
	count, err := strconv.Atoi(args[0])
	if err != nil || count < 1 {
		return fmt.Errorf("bad count %q", args[0])
	}
	seed := int64(1)
	if len(args) > 1 {
		s, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", args[1])
		}
		seed = s
	}
	corpus, err := dataset.Generate(dataset.Config{Articles: count, Seed: seed})
	if err != nil {
		return err
	}
	for i, a := range corpus.Articles {
		file := fmt.Sprintf("article-%05d.pdf", len(r.files))
		if err := r.svc.PublishArticle(file, a, r.scheme); err != nil {
			return err
		}
		r.articles = append(r.articles, a)
		r.files = append(r.files, file)
		_ = i
	}
	fmt.Fprintf(r.out, "published %d synthetic articles (%d total)\n", count, len(r.articles))
	return nil
}

func (r *repl) importXML(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) != 1 {
		return errors.New("usage: import <path.xml>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	corpus, err := dataset.LoadCorpus(f)
	if err != nil {
		return err
	}
	for _, a := range corpus.Articles {
		file := fmt.Sprintf("article-%05d.pdf", len(r.files))
		if err := r.svc.PublishArticle(file, a, r.scheme); err != nil {
			return err
		}
		r.articles = append(r.articles, a)
		r.files = append(r.files, file)
	}
	fmt.Fprintf(r.out, "imported %d articles from %s (%d total)\n",
		len(corpus.Articles), args[0], len(r.articles))
	return nil
}

func (r *repl) parseQuery(args []string) (xpath.Query, error) {
	if len(args) < 1 {
		return xpath.Query{}, errors.New("missing query")
	}
	return dataset.ParseQuery(strings.Join(args, " "))
}

func (r *repl) find(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	q, err := r.parseQuery(args)
	if err != nil {
		return err
	}
	results, trace, err := r.searcher.SearchAll(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "%d result(s) in %d interactions", len(results), trace.Interactions)
	if trace.NonIndexed {
		fmt.Fprint(r.out, " (recovered via generalization)")
	}
	fmt.Fprintln(r.out)
	for _, res := range results {
		fmt.Fprintf(r.out, "  %s  <- %s\n", res.File, res.MSD)
	}
	return nil
}

func (r *repl) fuzzy(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	q, err := r.parseQuery(args)
	if err != nil {
		return err
	}
	results, corrected, trace, err := r.searcher.SearchAllFuzzy(q, 2)
	if err != nil {
		return err
	}
	if !corrected.Equal(q) {
		fmt.Fprintf(r.out, "corrected to %s\n", corrected)
	}
	fmt.Fprintf(r.out, "%d result(s) in %d interactions\n", len(results), trace.Interactions)
	for _, res := range results {
		fmt.Fprintf(r.out, "  %s  <- %s\n", res.File, res.MSD)
	}
	return nil
}

func (r *repl) vocab() error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	r.svc.EnableVocabulary()
	// Register vocabularies for everything already published.
	for _, a := range r.articles {
		if err := r.svc.RegisterVocabulary(a.Descriptor()); err != nil {
			return err
		}
	}
	fmt.Fprintf(r.out, "vocabulary enabled (%d articles registered)\n", len(r.articles))
	return nil
}

func (r *repl) ask(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	q, err := r.parseQuery(args)
	if err != nil {
		return err
	}
	opts, err := r.session.Ask(q)
	if err != nil {
		return err
	}
	return r.printOptions(opts)
}

func (r *repl) refine(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) != 1 {
		return errors.New("usage: refine <option-number>")
	}
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 1 || i > len(r.options) {
		return fmt.Errorf("option %q out of range (1..%d)", args[0], len(r.options))
	}
	opts, err := r.session.Refine(r.options[i-1])
	if err != nil {
		return err
	}
	return r.printOptions(opts)
}

func (r *repl) back() error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	opts, err := r.session.Back()
	if err != nil {
		return err
	}
	return r.printOptions(opts)
}

func (r *repl) printOptions(opts index.Options) error {
	r.options = opts.Queries
	for _, f := range opts.Files {
		fmt.Fprintf(r.out, "FILE: %s\n", f)
	}
	for i, q := range opts.Queries {
		fmt.Fprintf(r.out, "%3d. %s\n", i+1, q)
	}
	if len(opts.Files) == 0 && len(opts.Queries) == 0 {
		fmt.Fprintln(r.out, "(no results)")
	}
	fmt.Fprintf(r.out, "[%d interactions so far]\n", opts.Interactions)
	return nil
}

func (r *repl) lookupArticle(file string) (descriptor.Article, error) {
	for i, f := range r.files {
		if f == file {
			return r.articles[i], nil
		}
	}
	return descriptor.Article{}, fmt.Errorf("unknown file %q", file)
}

func (r *repl) promote(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) != 1 {
		return errors.New("usage: promote <file>")
	}
	a, err := r.lookupArticle(args[0])
	if err != nil {
		return err
	}
	if err := r.svc.PromoteArticle(a, r.scheme); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "promoted %s\n", args[0])
	return nil
}

func (r *repl) removeArticle(args []string) error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	if len(args) != 1 {
		return errors.New("usage: remove <file>")
	}
	a, err := r.lookupArticle(args[0])
	if err != nil {
		return err
	}
	if err := r.svc.UnpublishArticle(args[0], a, r.scheme); err != nil {
		return err
	}
	for i, f := range r.files {
		if f == args[0] {
			r.files = append(r.files[:i], r.files[i+1:]...)
			r.articles = append(r.articles[:i], r.articles[i+1:]...)
			break
		}
	}
	fmt.Fprintf(r.out, "removed %s (index entries cleaned up)\n", args[0])
	return nil
}

func (r *repl) stats() error {
	if err := r.requireNetwork(); err != nil {
		return err
	}
	st := r.svc.StorageStats()
	cs := r.svc.CacheStats()
	fmt.Fprintf(r.out, "nodes: %d, articles: %d\n", st.Nodes, st.DataEntries)
	fmt.Fprintf(r.out, "index entries: %d (%.1f KB), %.1f entries/node\n",
		st.IndexEntries, float64(st.IndexBytes)/1024, st.MeanEntriesPerNode)
	fmt.Fprintf(r.out, "cached keys: %d total, %.1f/node (max %d)\n",
		cs.TotalKeys, cs.MeanKeys, cs.MaxKeys)
	return nil
}
