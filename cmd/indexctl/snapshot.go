package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"dhtindex/internal/wire/durable"
)

// runSnapshot implements `indexctl snapshot [-keys] <data-dir>`: an
// offline, read-only inspection of a durable node's snapshot+WAL pair —
// what the node would recover on restart, without opening it for
// writing or repairing a torn tail.
func runSnapshot(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	fs.SetOutput(out)
	listKeys := fs.Bool("keys", false, "list every recovered key with its entry counts")
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: indexctl snapshot [-keys] <data-dir>")
		fmt.Fprintln(out, "inspect a durable node's snapshot+WAL offline (read-only)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("snapshot: expected exactly one data directory, got %d args", fs.NArg())
	}
	sum, err := durable.Inspect(fs.Arg(0))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "data dir:     %s\n", sum.Dir)
	if sum.HasSnapshot {
		fmt.Fprintf(out, "snapshot:     %d keys, covers seq %d\n", sum.SnapshotKeys, sum.SnapshotSeq)
	} else {
		fmt.Fprintln(out, "snapshot:     none")
	}
	fmt.Fprintf(out, "wal:          %d records, base seq %d", sum.WALRecords, sum.WALBaseSeq)
	if sum.SkippedRecords > 0 {
		fmt.Fprintf(out, " (%d covered by the snapshot)", sum.SkippedRecords)
	}
	fmt.Fprintln(out)
	if sum.TornTail {
		fmt.Fprintln(out, "wal tail:     TORN — recovery would truncate to the last complete record")
	}
	fmt.Fprintf(out, "last seq:     %d\n", sum.LastSeq)
	fmt.Fprintf(out, "recovers to:  %d keys, %d entries\n", len(sum.Keys), sum.TotalEntries)

	if *listKeys {
		fmt.Fprintln(out)
		for _, ks := range sum.Keys {
			kinds := make([]string, 0, len(ks.Kinds))
			for kind, n := range ks.Kinds {
				kinds = append(kinds, fmt.Sprintf("%s=%d", kind, n))
			}
			sort.Strings(kinds)
			fmt.Fprintf(out, "  %s  %3d entries  [%s]\n", ks.Key.Short(), ks.Entries, strings.Join(kinds, " "))
		}
	}
	return nil
}
