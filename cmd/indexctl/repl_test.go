package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// script runs a command script and returns the combined output.
func script(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(strings.Join(lines, "\n")), &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestScriptPublishAndFind(t *testing.T) {
	out := script(t,
		"network 16",
		"scheme fig4",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"add y.pdf John Smith IPv6 INFOCOM 1996 312352",
		"find /article/author/last/Smith",
	)
	if !strings.Contains(out, "network ready: 16 chord nodes") {
		t.Fatalf("missing network line:\n%s", out)
	}
	if !strings.Contains(out, "2 result(s)") ||
		!strings.Contains(out, "x.pdf") || !strings.Contains(out, "y.pdf") {
		t.Fatalf("find output wrong:\n%s", out)
	}
}

func TestScriptInteractiveSession(t *testing.T) {
	out := script(t,
		"network 16",
		"scheme fig4",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"ask /article/author/last/Smith",
		"refine 1",
		"refine 1",
		"refine 1",
	)
	if !strings.Contains(out, "FILE: x.pdf") {
		t.Fatalf("interactive walk did not reach the file:\n%s", out)
	}
	if !strings.Contains(out, "[4 interactions so far]") {
		t.Fatalf("interaction count missing:\n%s", out)
	}
}

func TestScriptBack(t *testing.T) {
	out := script(t,
		"network 16",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"ask /article/author/last/Smith",
		"back", // nothing to back out of yet -> error line
	)
	if !strings.Contains(out, "error:") {
		t.Fatalf("expected error on premature back:\n%s", out)
	}
}

func TestScriptLoadAndStats(t *testing.T) {
	out := script(t,
		"network 20 pastry",
		"load 50 3",
		"stats",
	)
	if !strings.Contains(out, "20 pastry nodes") {
		t.Fatalf("pastry network missing:\n%s", out)
	}
	if !strings.Contains(out, "published 50 synthetic articles") {
		t.Fatalf("load failed:\n%s", out)
	}
	if !strings.Contains(out, "index entries:") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestScriptCacheSwitchRepublishes(t *testing.T) {
	out := script(t,
		"network 16",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"cache single",
		"find /article/title/TCP",
	)
	if !strings.Contains(out, "1 articles republished") {
		t.Fatalf("republish missing:\n%s", out)
	}
	if !strings.Contains(out, "x.pdf") {
		t.Fatalf("article lost after cache switch:\n%s", out)
	}
}

func TestScriptPromoteAndRemove(t *testing.T) {
	out := script(t,
		"network 16",
		"scheme complex",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"promote x.pdf",
		"remove x.pdf",
		"find /article/title/TCP",
	)
	if !strings.Contains(out, "promoted x.pdf") || !strings.Contains(out, "removed x.pdf") {
		t.Fatalf("promote/remove missing:\n%s", out)
	}
	if !strings.Contains(out, "0 result(s)") {
		t.Fatalf("removed article still findable:\n%s", out)
	}
}

func TestScriptErrors(t *testing.T) {
	out := script(t,
		"bogus",
		"find /article", // no network yet
		"network x",
		"network 4 can",
		"scheme nope",
		"network 4",
		"add onlyonearg",
		"cache warp",
		"refine 9",
		"promote ghost.pdf",
		"help",
		"quit",
		"network 999", // after quit: never executed
	)
	for _, want := range []string{
		"unknown command", "no network", "bad node count", "unknown substrate",
		"unknown scheme", "usage: add", "unknown policy", "out of range",
		"unknown file", "commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "network ready: 999") {
		t.Error("commands after quit executed")
	}
}

func TestScriptCommentsAndBlanks(t *testing.T) {
	out := script(t,
		"# a comment",
		"",
		"network 4",
	)
	if !strings.Contains(out, "network ready") {
		t.Fatalf("comment handling broke execution:\n%s", out)
	}
}

func TestScriptUnderscoreTitles(t *testing.T) {
	out := script(t,
		"network 8",
		"add p.pdf Jane Doe Scalable_Lookup ICDCS 2004 100000",
		"find /article/title/Scalable Lookup",
	)
	if !strings.Contains(out, "1 result(s)") {
		t.Fatalf("spaced title not matched:\n%s", out)
	}
}

func TestScriptFuzzy(t *testing.T) {
	out := script(t,
		"network 12",
		"add x.pdf John Smith TCP SIGCOMM 1989 315635",
		"vocab",
		"fuzzy /article/author/last/Smih",
	)
	if !strings.Contains(out, "corrected to") || !strings.Contains(out, "x.pdf") {
		t.Fatalf("fuzzy search failed:\n%s", out)
	}
}

func TestScriptImport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.xml")
	xml := `<dblp><article>
  <author><first>Grace</first><last>Hopper</last></author>
  <title>Compilers</title><conf>ACM</conf><year>1952</year><size>1000</size>
</article></dblp>`
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out := script(t,
		"network 8",
		"scheme fig4",
		"import "+path,
		"find /article/author/last/Hopper",
	)
	if !strings.Contains(out, "imported 1 articles") || !strings.Contains(out, "1 result(s)") {
		t.Fatalf("import failed:\n%s", out)
	}
	out = script(t, "network 4", "import /nonexistent.xml")
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing error for bad path:\n%s", out)
	}
}
