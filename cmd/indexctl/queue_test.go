package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"dhtindex/internal/descriptor"
	"dhtindex/internal/ingest"
)

// stubPub publishes everything instantly.
type stubPub struct{}

func (stubPub) Publish(ingest.Document) error { return nil }

// TestQueueSubcommand drives a real pipeline to build a spool, then
// inspects it offline through the subcommand.
func TestQueueSubcommand(t *testing.T) {
	dir := t.TempDir()
	p, err := ingest.Open(dir, stubPub{}, ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc := ingest.Document{ID: "doc-1", File: "a.pdf", Article: descriptor.Article{Title: "T"}}
	if err := p.Enqueue(doc); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runQueue([]string{dir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"pending:    0", "published:  1", "dead:       0", "next due:"} {
		if !strings.Contains(got, want) {
			t.Errorf("queue output missing %q:\n%s", want, got)
		}
	}

	if err := runQueue([]string{}, &out); err == nil {
		t.Fatal("queue with no args must fail")
	}
}
