// Command indexctl is an interactive shell over the distributed indexing
// library: create a network, publish articles, search them the way the
// paper's user would (automated or step-by-step interactive mode), and
// inspect storage/cache state. It reads commands from stdin, so it can be
// driven by scripts:
//
//	printf 'network 20\nload 100\nfind /article/author/last/Smith\n' | indexctl
//
// The `snapshot` subcommand inspects a durable node's data directory
// offline instead of starting the shell:
//
//	indexctl snapshot [-keys] <data-dir>
//
// The `queue` subcommand inspects an ingest pipeline's durable spool
// offline — pending, published and quarantined documents:
//
//	indexctl queue [-dead] <spool-dir>
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		if err := runSnapshot(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "indexctl:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "queue" {
		if err := runQueue(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "indexctl:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "indexctl:", err)
		os.Exit(1)
	}
}
