package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"dhtindex/internal/ingest"
)

// runQueue implements `indexctl queue [-dead] <spool-dir>`: an offline,
// read-only inspection of an ingest pipeline's durable spool — what a
// restarting ingester would recover, per lifecycle state, without
// opening the spool for writing or repairing a torn tail. The
// pipeline-side mirror of `indexctl snapshot`.
func runQueue(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("queue", flag.ContinueOnError)
	fs.SetOutput(out)
	listDead := fs.Bool("dead", false, "list every quarantined document with its reason")
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: indexctl queue [-dead] <spool-dir>")
		fmt.Fprintln(out, "inspect an ingest pipeline's durable spool offline (read-only)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("queue: expected exactly one spool directory, got %d args", fs.NArg())
	}
	sum, err := ingest.InspectSpool(fs.Arg(0))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "spool dir:  %s\n", sum.Dir)
	fmt.Fprintf(out, "pending:    %d documents awaiting publication\n", sum.Pending)
	if sum.Pending > 0 {
		fmt.Fprintf(out, "oldest:     %s (queued %v ago)\n", sum.OldestPendingID, sum.OldestPendingAge.Round(time.Second))
	}
	fmt.Fprintf(out, "published:  %d documents under freshness maintenance\n", sum.Published)
	if !sum.NextDeadline.IsZero() {
		fmt.Fprintf(out, "next due:   %s\n", sum.NextDeadline.Format(time.RFC3339))
	}
	fmt.Fprintf(out, "dead:       %d quarantined documents\n", sum.Dead)

	if *listDead {
		fmt.Fprintln(out)
		for _, dl := range sum.DeadLetters {
			fmt.Fprintf(out, "  %s  %s  %s\n", dl.Doc.ID, dl.At.Format(time.RFC3339), dl.Reason)
		}
	}
	return nil
}
