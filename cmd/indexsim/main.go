// Command indexsim reproduces the evaluation of "Data Indexing in
// Peer-to-Peer DHT Networks" (§V): every figure and table, on the
// synthetic bibliographic database.
//
// Usage:
//
//	indexsim [-experiment all|fig7|fig8|fig9|fig10|storage|fig11|fig12|fig13|fig14|fig15|table1]
//	         [-nodes 500] [-articles 10000] [-queries 50000] [-seed 1]
//
// The default experiment "all" regenerates everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"

	"dhtindex/internal/simreport"
)

func main() {
	var cfg simreport.Config
	flag.StringVar(&cfg.Experiment, "experiment", "all", "experiment id (all, fig7..fig15, storage, table1, substrate, availability, sensitivity, variance)")
	flag.IntVar(&cfg.Nodes, "nodes", 500, "number of DHT nodes")
	flag.IntVar(&cfg.Articles, "articles", 10000, "corpus size")
	flag.IntVar(&cfg.Queries, "queries", 50000, "workload size")
	flag.Int64Var(&cfg.Seed, "seed", 1, "deterministic seed")
	flag.StringVar(&cfg.Substrate, "substrate", "chord", "DHT substrate (chord|pastry)")
	flag.Parse()

	if err := simreport.Run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "indexsim:", err)
		os.Exit(1)
	}
}
