// Command indexsim reproduces the evaluation of "Data Indexing in
// Peer-to-Peer DHT Networks" (§V): every figure and table, on the
// synthetic bibliographic database.
//
// Usage:
//
//	indexsim [-experiment all|fig7|fig8|fig9|fig10|storage|fig11|fig12|fig13|fig14|fig15|table1]
//	         [-nodes 500] [-articles 10000] [-queries 50000] [-seed 1]
//	         [-trace traces.jsonl] [-replay traces.jsonl]
//
// The default experiment "all" regenerates everything in paper order.
// -trace records every lookup the runs perform as JSONL LookupTrace
// records; -replay regenerates the figure-level metrics offline from
// such a file instead of running simulations (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"dhtindex/internal/simreport"
	"dhtindex/internal/telemetry"
)

func main() {
	var cfg simreport.Config
	var tracePath, replayPath string
	flag.StringVar(&cfg.Experiment, "experiment", "all", "experiment id (all, fig7..fig15, storage, table1, substrate, availability, sensitivity, variance)")
	flag.IntVar(&cfg.Nodes, "nodes", 500, "number of DHT nodes")
	flag.IntVar(&cfg.Articles, "articles", 10000, "corpus size")
	flag.IntVar(&cfg.Queries, "queries", 50000, "workload size")
	flag.Int64Var(&cfg.Seed, "seed", 1, "deterministic seed")
	flag.StringVar(&cfg.Substrate, "substrate", "chord", "DHT substrate (chord|pastry|kademlia)")
	flag.StringVar(&tracePath, "trace", "", "write every LookupTrace to this JSONL file")
	flag.StringVar(&replayPath, "replay", "", "regenerate metrics from a JSONL trace file instead of simulating")
	flag.Parse()

	if err := run(cfg, tracePath, replayPath); err != nil {
		fmt.Fprintln(os.Stderr, "indexsim:", err)
		os.Exit(1)
	}
}

func run(cfg simreport.Config, tracePath, replayPath string) error {
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return simreport.Replay(os.Stdout, f)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink := telemetry.NewJSONLSink(f)
		cfg.TraceSink = sink
		if err := simreport.Run(os.Stdout, cfg); err != nil {
			return err
		}
		if err := sink.Flush(); err != nil {
			return fmt.Errorf("flush traces: %w", err)
		}
		fmt.Fprintf(os.Stderr, "indexsim: traces written to %s\n", tracePath)
		return nil
	}
	return simreport.Run(os.Stdout, cfg)
}
