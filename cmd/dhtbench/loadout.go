package main

// The -load mode: the open-loop overload harness (internal/soak.RunLoad)
// as a CI gate. It drives a rated phase and a 2-4x overload phase with a
// flash crowd, prints the phase accounting plus the admission / retry /
// breaker totals, optionally writes the full JSON LoadReport (-load-out)
// and merges trajectory rows into the committed BENCH_wire.json
// (-bench-out), and exits non-zero when any SLO criterion is violated —
// p99 at rated load, proportional goodput under overload, bounded retry
// traffic, zero acked-write loss.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"dhtindex/internal/soak"
	"dhtindex/internal/telemetry"
)

// loadOpts bundles the -load flag values.
type loadOpts struct {
	rated    float64
	factor   float64
	duration time.Duration
	seed     int64
	out      string
	benchOut string
}

// errSLO marks an SLO-gate failure (as opposed to a harness error).
var errSLO = errors.New("load SLO gate failed")

// runLoadMode executes the overload run and holds it to the SLO gate.
func runLoadMode(o loadOpts, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	cfg := soak.LoadConfig{
		Seed:           o.seed,
		RatedRPS:       o.rated,
		OverloadFactor: o.factor,
		Telemetry:      reg,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if o.duration > 0 {
		// -duration is the total arrival window, split across the phases.
		cfg.RatedDuration = o.duration / 2
		cfg.OverloadDuration = o.duration / 2
	}
	report, err := soak.RunLoad(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\nload report (seed %d)\n", o.seed)
	for _, p := range []soak.PhaseReport{report.Rated, report.Overload} {
		fmt.Printf("  %-9s %6.0f/s target: offered=%d dropped=%d ok=%d shed=%d failed=%d goodput=%.1f/s shed-rate=%.2f p50=%v p99=%v\n",
			p.Name, p.TargetRPS, p.Offered, p.Dropped, p.OK, p.Shed, p.Failed,
			p.GoodputRPS, p.ShedRate, p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond))
	}
	a := report.Admission
	fmt.Printf("  admission: %d admitted (%d waited), sheds: %d queue_full, %d queue_timeout, %d deadline, %d priority\n",
		a.Admitted, a.Waited, a.ShedQueueFull, a.ShedQueueTimeout, a.ShedDeadline, a.ShedPriority)
	r := report.Retry
	fmt.Printf("  retry:     %d calls, %d retries, %d overload NACKs, %d budget-exhausted, %d gave up\n",
		r.Calls, r.Retries, r.Overloads, r.BudgetExhausted, r.GaveUp)
	b := report.Breaker
	fmt.Printf("  breaker:   %d trips (%d on overload), %d fast-fails, %d probes, %d closes, %d open\n",
		b.Trips, b.OverloadTrips, b.FastFails, b.Probes, b.Closes, b.Open)
	fmt.Printf("  writes:    %d acked, %d lost\n", report.AckedWrites, len(report.LostWrites))

	if o.out != "" {
		if err := writeJSON(o.out, report); err != nil {
			return fmt.Errorf("write load report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "dhtbench: load report written to %s\n", o.out)
	}
	if o.benchOut != "" {
		if err := mergeLoadIntoBench(o.benchOut, o.seed, report); err != nil {
			return fmt.Errorf("merge load trajectory into %s: %w", o.benchOut, err)
		}
		fmt.Fprintf(os.Stderr, "dhtbench: load trajectory merged into %s\n", o.benchOut)
	}
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	if !report.Passed() {
		for _, v := range report.Violations {
			fmt.Fprintf(os.Stderr, "dhtbench: SLO violation: %s\n", v)
		}
		return fmt.Errorf("%w: %d violations", errSLO, len(report.Violations))
	}
	fmt.Println("  SLO gate:  PASS")
	return serveMetrics(reg, metricsAddr)
}

// writeJSON writes v to path as indented JSON.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// phaseRow folds one load phase into a bench-report row: throughput is
// goodput (successful ops per second of arrival window), latency
// percentiles are over successful ops.
func phaseRow(p soak.PhaseReport) benchResult {
	return benchResult{
		Name:      "load/" + p.Name,
		Ops:       p.OK,
		OpsPerSec: p.GoodputRPS,
		P50Micros: float64(p.P50.Nanoseconds()) / 1e3,
		P99Micros: float64(p.P99.Nanoseconds()) / 1e3,
	}
}

// mergeLoadIntoBench read-modify-writes the bench report: existing
// microbenchmark rows are preserved, any previous load rows are replaced
// by this run's trajectory, and the overload-vs-rated goodput ratio is
// recorded alongside the fast-path ratios. A missing file starts fresh.
func mergeLoadIntoBench(path string, seed int64, lr soak.LoadReport) error {
	var report benchReport
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("existing report unreadable: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if report.GeneratedBy == "" {
		report.GeneratedBy = "dhtbench -load"
		report.Seed = seed
	}
	if report.Ratios == nil {
		report.Ratios = make(map[string]float64)
	}
	kept := report.Results[:0]
	for _, r := range report.Results {
		if r.Name != "load/rated" && r.Name != "load/overload" {
			kept = append(kept, r)
		}
	}
	report.Results = append(kept, phaseRow(lr.Rated), phaseRow(lr.Overload))
	if lr.Rated.GoodputRPS > 0 {
		report.Ratios["load_goodput_overload_vs_rated"] = lr.Overload.GoodputRPS / lr.Rated.GoodputRPS
	}
	return writeJSON(path, report)
}
