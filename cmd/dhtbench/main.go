// Command dhtbench exercises the Chord substrate on its own: routing hop
// counts versus network size, key-load balance, and behaviour under churn.
// The paper treats the DHT as a black box (§V-E: "we do not explicitly
// study the performance of the P2P substrate"); this harness verifies the
// substrate provides what the indexing layer assumes.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"dhtindex/internal/dht"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/pastry"
	"dhtindex/internal/wire"
)

func main() {
	var (
		maxNodes  = flag.Int("max-nodes", 1024, "largest network size in the sweep")
		lookups   = flag.Int("lookups", 2000, "lookups per configuration")
		churn     = flag.Float64("churn", 0.2, "fraction of nodes failed in the churn test")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		substrate = flag.String("substrate", "chord", "substrate for the hop sweep (chord|pastry)")

		soak        = flag.Bool("soak", false, "run the live-wire churn soak instead of the simulation sweeps")
		soakNodes   = flag.Int("soak-nodes", 16, "soak: ring size")
		soakOps     = flag.Int("soak-ops", 150, "soak: write-once operations")
		soakDrop    = flag.Float64("soak-drop", 0.10, "soak: per-message drop probability")
		soakLatency = flag.Duration("soak-latency", 50*time.Millisecond, "soak: injected latency")
	)
	flag.Parse()
	if *soak {
		if err := runSoak(*soakNodes, *soakOps, *soakDrop, *soakLatency, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "dhtbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*maxNodes, *lookups, *churn, *seed, *substrate); err != nil {
		fmt.Fprintln(os.Stderr, "dhtbench:", err)
		os.Exit(1)
	}
}

// runSoak exercises the LIVE wire layer (message-passing nodes, fault
// injection, retry stack) rather than the instantaneous simulation: the
// live analogue of churnTest below.
func runSoak(nodes, ops int, drop float64, latency time.Duration, seed int64) error {
	report, err := wire.RunSoak(wire.SoakConfig{
		Nodes:    nodes,
		Ops:      ops,
		DropProb: drop,
		Latency:  latency,
		Seed:     seed,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	f, r := report.Faults, report.Retry
	fmt.Printf("\nsoak report (seed %d)\n", seed)
	fmt.Printf("  ring:        %d -> %d nodes, converged=%v\n", nodes, report.SurvivingNodes, report.Converged)
	fmt.Printf("  data:        %d acked, %d put failures, %d lost\n", report.Acked, report.PutFailures, len(report.LostKeys))
	fmt.Printf("  chaos reads: %d issued, %d failed during storm\n", report.ChaosReads, report.ChaosReadFailures)
	fmt.Printf("  faults:      %d calls, %d+%d dropped (req+resp), %d delayed (%v total), %d partition-blocked, %d crash-blocked\n",
		f.Calls, f.DroppedRequests, f.DroppedResponses, f.Delayed, f.DelayTotal.Round(time.Millisecond), f.PartitionBlocked, f.CrashBlocked)
	fmt.Printf("  retries:     %d calls, %d attempts, %d retries, %d recovered, %d gave up (amplification %.2f)\n",
		r.Calls, r.Attempts, r.Retries, r.Recovered, r.GaveUp, report.RetryAmplification())
	fmt.Printf("  failover:    %d owner-read failures, %d replica reads, %d entry retries\n",
		report.Cluster.OwnerReadFailures, report.Cluster.FailoverReads, report.Cluster.EntryRetries)
	if !report.Converged || len(report.LostKeys) > 0 {
		return fmt.Errorf("soak failed: converged=%v lost=%d", report.Converged, len(report.LostKeys))
	}
	return nil
}

func run(maxNodes, lookups int, churn float64, seed int64, substrate string) error {
	fmt.Printf("substrate: %s\n", substrate)
	fmt.Printf("%-8s %10s %8s %10s %10s %12s\n",
		"nodes", "mean hops", "max", "log2(N)", "mean keys", "max/mean keys")
	for n := 16; n <= maxNodes; n *= 4 {
		var err error
		switch substrate {
		case "chord":
			err = chordSweep(n, lookups, seed)
		case "pastry":
			err = pastrySweep(n, lookups, seed)
		default:
			err = fmt.Errorf("unknown substrate %q", substrate)
		}
		if err != nil {
			return err
		}
	}
	return churnTest(maxNodes/4, churn, seed)
}

func chordSweep(n, lookups int, seed int64) error {
	net := dht.NewNetwork(seed)
	if _, err := net.Populate(n); err != nil {
		return err
	}
	for i := 0; i < 10*n; i++ {
		if _, err := net.Put(nil, keyspace.NewKey(fmt.Sprintf("key-%d", i)),
			dht.Entry{Kind: "data", Value: "x"}); err != nil {
			return err
		}
	}
	net.ResetMetrics()
	nodes := net.Nodes()
	for i := 0; i < lookups; i++ {
		start := nodes[i%len(nodes)]
		if _, err := net.Lookup(start, keyspace.NewKey(fmt.Sprintf("probe-%d", i))); err != nil {
			return err
		}
	}
	m := net.Metrics()
	load := net.KeyLoad()
	fmt.Printf("%-8d %10.2f %8d %10.2f %10.1f %12.2f\n",
		n, float64(m.Hops)/float64(m.Lookups), m.MaxHops, math.Log2(float64(n)),
		load.MeanKeys, float64(load.MaxKeys)/load.MeanKeys)
	return nil
}

func pastrySweep(n, lookups int, seed int64) error {
	net := pastry.NewNetwork()
	nodes, err := net.Populate(n)
	if err != nil {
		return err
	}
	ov := pastry.AsOverlay(net, seed)
	for i := 0; i < 10*n; i++ {
		if _, err := ov.Put(keyspace.NewKey(fmt.Sprintf("key-%d", i)),
			overlay.Entry{Kind: "data", Value: "x"}); err != nil {
			return err
		}
	}
	keyTotal, keyMax := 0, 0
	for _, addr := range ov.Addrs() {
		st, err := ov.StatsOf(addr)
		if err != nil {
			return err
		}
		keyTotal += st.Keys
		if st.Keys > keyMax {
			keyMax = st.Keys
		}
	}
	before := net.Metrics()
	for i := 0; i < lookups; i++ {
		start := nodes[i%len(nodes)]
		if _, err := net.Lookup(start, keyspace.NewKey(fmt.Sprintf("probe-%d", i))); err != nil {
			return err
		}
	}
	m := net.Metrics()
	mean := float64(keyTotal) / float64(n)
	fmt.Printf("%-8d %10.2f %8d %10.2f %10.1f %12.2f\n",
		n, float64(m.Hops-before.Hops)/float64(m.Lookups-before.Lookups),
		m.MaxHops, math.Log2(float64(n)), mean, float64(keyMax)/mean)
	return nil
}

// churnTest fails a fraction of a replicated network and reports surviving
// data and post-stabilization routing health.
func churnTest(n int, frac float64, seed int64) error {
	fmt.Printf("\nchurn test: %d nodes, replication 2, failing %.0f%%\n", n, 100*frac)
	net := dht.NewNetwork(seed)
	net.ReplicationFactor = 2
	nodes, err := net.Populate(n)
	if err != nil {
		return err
	}
	const keys = 2000
	for i := 0; i < keys; i++ {
		if _, err := net.Put(nil, keyspace.NewKey(fmt.Sprintf("doc-%d", i)),
			dht.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			return err
		}
	}
	fail := int(frac * float64(n))
	for i := 0; i < fail; i++ {
		if err := net.FailNode(nodes[i*3%n].Addr); err != nil {
			// Node may already be gone when the stride wraps; skip.
			continue
		}
	}
	net.Stabilize()
	if err := net.VerifyRing(); err != nil {
		return fmt.Errorf("ring not converged: %w", err)
	}
	survived := 0
	for i := 0; i < keys; i++ {
		entries, _, err := net.Get(nil, keyspace.NewKey(fmt.Sprintf("doc-%d", i)))
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			survived++
		}
	}
	m := net.Metrics()
	fmt.Printf("data survived: %d/%d (%.1f%%), failover reads: %d\n",
		survived, keys, 100*float64(survived)/keys, m.FailoverReads)
	return nil
}
