// Command dhtbench exercises the overlay substrates on their own:
// routing hop counts versus network size, key-load balance, and
// behaviour under churn. The paper treats the DHT as a black box (§V-E:
// "we do not explicitly study the performance of the P2P substrate");
// this harness verifies the substrate provides what the indexing layer
// assumes. -substrate selects chord, pastry or kademlia for the hop
// sweep, and -matrix runs the indexed churn soak on all three and
// publishes the comparison (hops, p99 query latency, maintenance
// traffic, acked-write loss) — merged into BENCH_wire.json when
// -bench-out names it.
//
// With -soak it instead runs the live-wire indexed churn soak
// (internal/soak): a message-passing ring under drops, latency,
// partitions and crashes while indexed queries keep resolving. With a
// non-chord -substrate the soak runs in-process on that substrate's
// overlay (joins, leaves and — on Kademlia — hard crashes absorbed by
// replication and republish) and fails on any acked-write loss. -repair
// adds joins/leaves and the self-healing verification; -restart puts
// every member on a disk-backed durable store and crash-restarts whole
// replica sets from their data directories mid-storm (-data-dir keeps
// the directories around for offline inspection with `indexctl
// snapshot`); -split-brain group-partitions the ring into two halves
// that keep serving writes and removes, heals it link by link, and
// fails on lost writes, resurrected removes, or a ring that never
// re-merged (-split-out writes the episode/merge/tombstone JSON
// report). Every layer reports into one telemetry registry;
// -metrics-addr serves the Prometheus-style snapshot over HTTP,
// -metrics-out writes it to a file, and -trace records every
// LookupTrace as JSONL (soak default: soak-traces.jsonl). See
// docs/OBSERVABILITY.md for the full catalog.
//
// With -bench-out it runs the wire fast-path microbenchmarks instead
// (pooled vs dial-per-call transport, batched vs sequential puts and
// publish, parallel vs sequential search) and writes the ops/s and
// latency-percentile report to the given JSON file — the source of the
// repo's committed BENCH_wire.json.
//
// With -load it runs the open-loop overload harness: a ring with
// admission control armed is driven at a rated arrival rate and then at
// a 2-4x multiple with a flash crowd on the hottest article, and the
// run is held to an SLO gate (rated p99, proportional goodput under
// overload, bounded retry traffic, zero acked-write loss) — non-zero
// exit on any violation. -load-out writes the JSON load report;
// combined with -bench-out the run's goodput trajectory is merged into
// the committed bench report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"dhtindex/internal/dht"
	"dhtindex/internal/kademlia"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/pastry"
	"dhtindex/internal/soak"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/wire"
)

func main() {
	var (
		maxNodes  = flag.Int("max-nodes", 1024, "largest network size in the sweep")
		lookups   = flag.Int("lookups", 2000, "lookups per configuration")
		churn     = flag.Float64("churn", 0.2, "fraction of nodes failed in the churn test")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		substrate = flag.String("substrate", "chord", "substrate for the hop sweep and soak (chord|pastry|kademlia)")

		matrixMode    = flag.Bool("matrix", false, "run the indexed churn soak on every substrate and publish the cross-substrate matrix; merged into -bench-out when given")
		matrixNodes   = flag.Int("matrix-nodes", 0, "matrix: overlay size per substrate (0 = harness default)")
		matrixOps     = flag.Int("matrix-ops", 0, "matrix: churn-storm operations per substrate (0 = harness default)")
		matrixQueries = flag.Int("matrix-queries", 0, "matrix: indexed lookups per storm op (0 = harness default)")

		soakMode    = flag.Bool("soak", false, "run the live-wire indexed churn soak instead of the simulation sweeps")
		soakRepair  = flag.Bool("repair", false, "soak: self-healing mode — joins/leaves during the storm, circuit breaker armed, post-storm replica coverage verified to 100%, degraded-lookup probe")
		soakRestart = flag.Bool("restart", false, "soak: crash-restart mode — members run on disk-backed durable stores and whole replica sets are crash-restarted from their data directories mid-storm")
		soakSplit   = flag.Bool("split-brain", false, "soak: split-brain mode — the ring is group-partitioned into two halves that keep serving writes and removes, then healed link by link; fails on lost writes, resurrected removes, or a ring that never re-merged")
		splitOut    = flag.String("split-out", "", "soak: write the split-brain episode/merge/tombstone JSON report to this file")
		soakDataDir = flag.String("data-dir", "", "soak: root directory for the restart mode's per-member stores (default: a temp dir, removed after the run)")
		soakNodes   = flag.Int("soak-nodes", 16, "soak: ring size")
		soakOps     = flag.Int("soak-ops", 150, "soak: write-once operations")
		soakDrop    = flag.Float64("soak-drop", 0.10, "soak: per-message drop probability")
		soakLatency = flag.Duration("soak-latency", 50*time.Millisecond, "soak: injected latency")
		soakQueries = flag.Int("soak-queries", 2, "soak: indexed lookups per storm op")

		benchOut   = flag.String("bench-out", "", "run the wire fast-path microbenchmarks (pooled transport with binary and gob codecs, batched puts, batched publish, parallel search) and write the JSON report to this file (e.g. BENCH_wire.json); with -load, merge the load trajectory into it instead")
		benchCheck = flag.String("bench-check", "", "re-measure the pooled transport's bytes/op and allocs/op and fail if they regressed past tolerance against the committed report at this path (e.g. BENCH_wire.json) — CI's cheap wire-efficiency gate")
		profileDir = flag.String("profile", "", "write cpu.pprof and heap.pprof covering the run to this directory (created if missing)")

		ingestMode   = flag.Bool("ingest", false, "run the continuous-ingest soak (durable backpressured pipeline feeding a stormed ring, ingester crash-restart mid-stream, poison quarantine) and exit non-zero on any gate violation")
		ingestDocs   = flag.Int("ingest-docs", 0, "ingest: documents streamed through the pipeline (0 = harness default)")
		ingestBudget = flag.Duration("ingest-budget", 15*time.Second, "ingest: ack-to-visibility freshness budget")
		ingestSpool  = flag.String("ingest-spool", "", "ingest: pipeline spool directory, kept after the run for indexctl queue (default: a temp dir, removed after the run)")
		ingestOut    = flag.String("ingest-out", "", "ingest: write the full JSON ingest report to this file")

		loadMode   = flag.Bool("load", false, "run the open-loop overload harness (rated phase, then 2-4x overload with a flash crowd) and exit non-zero on any SLO violation")
		loadRated  = flag.Float64("load-rated", 0, "load: rated arrival rate in ops/s (0 = harness default)")
		loadFactor = flag.Float64("load-factor", 0, "load: overload multiple of the rated rate (0 = harness default)")
		duration   = flag.Duration("duration", 0, "load: total arrival window, split evenly across the rated and overload phases (0 = harness default)")
		loadOut    = flag.String("load-out", "", "load: write the full JSON load report to this file")

		metricsAddr = flag.String("metrics-addr", "", "serve the telemetry snapshot on this address (e.g. :8080) after the run")
		metricsOut  = flag.String("metrics-out", "", "write the telemetry snapshot to this file after the run")
		tracePath   = flag.String("trace", "", "write every LookupTrace to this JSONL file (soak default: soak-traces.jsonl)")
	)
	flag.Parse()
	reg := telemetry.NewRegistry()
	var err error
	stopProfiles := func() {}
	if *profileDir != "" {
		stop, perr := startProfiles(*profileDir)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "dhtbench:", perr)
			os.Exit(1)
		}
		stopProfiles = stop
	}
	if *ingestMode {
		err = runIngestMode(ingestOpts{
			nodes: *soakNodes, ops: *soakOps, drop: *soakDrop, latency: *soakLatency,
			seed: *seed, docs: *ingestDocs, budget: *ingestBudget,
			spoolDir: *ingestSpool, out: *ingestOut,
		}, reg, *metricsAddr, *metricsOut)
	} else if *loadMode {
		err = runLoadMode(loadOpts{
			rated: *loadRated, factor: *loadFactor, duration: *duration,
			seed: *seed, out: *loadOut, benchOut: *benchOut,
		}, reg, *metricsAddr, *metricsOut)
	} else if *matrixMode {
		err = runMatrix(matrixOpts{
			nodes: *matrixNodes, ops: *matrixOps, queries: *matrixQueries,
			seed: *seed, benchOut: *benchOut,
		}, reg, *metricsAddr, *metricsOut)
	} else if *benchOut != "" {
		err = runBenchOut(*benchOut, *seed)
	} else if *benchCheck != "" {
		err = runBenchCheck(*benchCheck, *seed)
	} else if *soakMode && *substrate != "chord" {
		err = runSubstrateSoak(*substrate, soakOpts{
			nodes: *soakNodes, ops: *soakOps, queries: *soakQueries, seed: *seed,
		}, reg, *metricsAddr, *metricsOut)
	} else if *soakMode {
		err = runSoak(soakOpts{
			nodes: *soakNodes, ops: *soakOps, queries: *soakQueries,
			drop: *soakDrop, latency: *soakLatency, seed: *seed,
			trace: *tracePath, repair: *soakRepair,
			restart: *soakRestart, dataDir: *soakDataDir,
			splitBrain: *soakSplit, splitOut: *splitOut,
		}, reg, *metricsAddr, *metricsOut)
	} else {
		err = run(*maxNodes, *lookups, *churn, *seed, *substrate, reg, *metricsAddr, *metricsOut)
	}
	// Flush the profiles before any exit: os.Exit skips defers, and a
	// failing run is exactly when the profile is worth having.
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhtbench:", err)
		os.Exit(1)
	}
}

// startProfiles begins a CPU profile in dir and returns a stop function
// that ends it and writes a heap profile next to it. The artifacts
// (cpu.pprof, heap.pprof) are what CI uploads for offline `go tool
// pprof` triage of bench or soak regressions.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	cpuPath := filepath.Join(dir, "cpu.pprof")
	cf, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, fmt.Errorf("profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		cf.Close()
		heapPath := filepath.Join(dir, "heap.pprof")
		hf, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dhtbench: heap profile:", err)
			return
		}
		defer hf.Close()
		runtime.GC() // capture live objects, not garbage awaiting collection
		if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
			fmt.Fprintln(os.Stderr, "dhtbench: heap profile:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "dhtbench: profiles written to %s and %s\n", cpuPath, heapPath)
	}, nil
}

// soakOpts bundles the soak flag values.
type soakOpts struct {
	nodes, ops, queries int
	drop                float64
	latency             time.Duration
	seed                int64
	trace               string
	repair              bool
	restart             bool
	dataDir             string
	splitBrain          bool
	splitOut            string
}

// runSoak exercises the LIVE wire layer (message-passing nodes, fault
// injection, retry stack) under the paper's index workload — the live
// analogue of churnTest below, fully instrumented.
func runSoak(o soakOpts, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	tracePath := o.trace
	if tracePath == "" {
		tracePath = "soak-traces.jsonl"
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	sink := telemetry.NewJSONLSink(tf)

	report, err := soak.Run(soak.Config{
		Wire: wire.SoakConfig{
			Nodes:    o.nodes,
			Ops:      o.ops,
			DropProb: o.drop,
			Latency:  o.latency,
			Seed:     o.seed,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		},
		Repair:       o.repair,
		Restart:      o.restart,
		SplitBrain:   o.splitBrain,
		DataDir:      o.dataDir,
		QueriesPerOp: o.queries,
		Telemetry:    reg,
		TraceSink:    sink,
	})
	if err != nil {
		return err
	}
	if err := sink.Flush(); err != nil {
		return fmt.Errorf("flush traces: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dhtbench: %d traces written to %s\n", report.Traces, tracePath)

	f, r := report.Faults, report.Retry
	fmt.Printf("\nsoak report (seed %d)\n", o.seed)
	fmt.Printf("  ring:        %d -> %d nodes, converged=%v\n", o.nodes, report.SurvivingNodes, report.Converged)
	fmt.Printf("  data:        %d acked, %d put failures, %d lost\n", report.Acked, report.PutFailures, len(report.LostKeys))
	fmt.Printf("  chaos reads: %d issued, %d failed during storm\n", report.ChaosReads, report.ChaosReadFailures)
	fmt.Printf("  queries:     %d indexed lookups, %d found, %d cache hits, %d failed during storm\n",
		report.Queries, report.Found, report.CacheHits, report.QueryFailures)
	fmt.Printf("  faults:      %d calls, %d+%d dropped (req+resp), %d delayed (%v total), %d partition-blocked, %d crash-blocked\n",
		f.Calls, f.DroppedRequests, f.DroppedResponses, f.Delayed, f.DelayTotal.Round(time.Millisecond), f.PartitionBlocked, f.CrashBlocked)
	fmt.Printf("  retries:     %d calls, %d attempts, %d retries, %d recovered, %d gave up (amplification %.2f)\n",
		r.Calls, r.Attempts, r.Retries, r.Recovered, r.GaveUp, report.RetryAmplification())
	fmt.Printf("  failover:    %d owner-read failures, %d replica reads, %d entry retries, %d hedged gets (%d hedge wins)\n",
		report.Cluster.OwnerReadFailures, report.Cluster.FailoverReads, report.Cluster.EntryRetries,
		report.Cluster.HedgedGets, report.Cluster.HedgeWins)
	if o.repair {
		b, rp := report.Breaker, report.Repair
		fmt.Printf("  churn:       %d joins, %d leaves (on top of %d crashes)\n",
			report.Joins, report.Leaves, report.Crashes)
		fmt.Printf("  repair:      %d rounds, %d syncs, %d pushes, %d forwards, %d drops; replica violations: %d\n",
			rp.Rounds, rp.Syncs, rp.Pushes, rp.Forwards, rp.Drops, len(report.ReplicaViolations))
		fmt.Printf("  breaker:     %d trips, %d fast-fails, %d probes, %d closes, %d still open\n",
			b.Trips, b.FastFails, b.Probes, b.Closes, b.Open)
		p := report.IncompleteProbe
		fmt.Printf("  degradation: probe crashed %d nodes, incomplete=%v (%d unresolved) in %v\n",
			p.Crashed, p.Incomplete, p.Unresolved, p.Elapsed.Round(time.Millisecond))
	}
	if o.restart {
		rec := report.Recovery
		fmt.Printf("  restarts:    %d members crash-restarted from %s\n", report.Restarts, report.DataDir)
		fmt.Printf("  recovery:    %d snapshot keys, %d WAL records replayed, %d skipped, %d torn tails truncated\n",
			rec.SnapshotKeys, rec.ReplayedRecords, rec.SkippedRecords, rec.TornRecords)
	}
	if o.splitBrain {
		m, tb := report.Merges, report.Tombstones
		for _, ep := range report.Episodes {
			fmt.Printf("  episode:     ops %d..%d, sides %d|%d\n", ep.StartOp, ep.HealOp, ep.SideA, ep.SideB)
		}
		fmt.Printf("  removes:     %d acked, %d failed, %d resurrections\n",
			report.Removes, report.RemoveFailures, len(report.Resurrections))
		fmt.Printf("  merge:       %d probes, %d divergences detected, %d aborts, %d coordinations, %d rejoins, %d adopts\n",
			m.Probes, m.Detected, m.Aborts, m.Coordinations, m.Rejoins, m.Adopts)
		fmt.Printf("  tombstones:  %d created, %d merged from peers, %d puts suppressed, %d collected\n",
			tb.Created, tb.Merged, tb.Suppressed, tb.GCd)
		if o.splitOut != "" {
			if err := writeSplitReport(o.splitOut, report); err != nil {
				return err
			}
		}
	}
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	if !report.Converged || len(report.LostKeys) > 0 {
		return fmt.Errorf("soak failed: converged=%v lost=%d", report.Converged, len(report.LostKeys))
	}
	if o.repair {
		if len(report.ReplicaViolations) > 0 {
			return fmt.Errorf("repair soak failed: %d keys off full replica coverage: %v",
				len(report.ReplicaViolations), report.ReplicaViolations)
		}
		if p := report.IncompleteProbe; !p.Ran || !p.Incomplete {
			return fmt.Errorf("repair soak failed: degraded-lookup probe = %+v", p)
		}
	}
	if o.restart {
		if report.Restarts == 0 {
			return fmt.Errorf("restart soak failed: no crash-restarts executed")
		}
		if len(report.ReplicaViolations) > 0 {
			return fmt.Errorf("restart soak failed: %d keys off full replica coverage after recovery: %v",
				len(report.ReplicaViolations), report.ReplicaViolations)
		}
	}
	if o.splitBrain {
		if len(report.Episodes) == 0 {
			return fmt.Errorf("split-brain soak failed: no partition episode executed")
		}
		if report.Merges.Detected == 0 {
			return fmt.Errorf("split-brain soak failed: no ring divergence was ever detected — the merge path went unexercised")
		}
		if len(report.Resurrections) > 0 {
			return fmt.Errorf("split-brain soak failed: %d removed entries resurrected: %v",
				len(report.Resurrections), report.Resurrections)
		}
		if len(report.ReplicaViolations) > 0 {
			return fmt.Errorf("split-brain soak failed: %d keys off full replica coverage after the merge: %v",
				len(report.ReplicaViolations), report.ReplicaViolations)
		}
	}
	return serveMetrics(reg, metricsAddr)
}

// runSubstrateSoak runs the in-process indexed churn soak on a single
// non-chord substrate (the -soak -substrate path) and fails on any
// acked-write loss.
func runSubstrateSoak(substrate string, o soakOpts, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	rep, err := soak.RunSubstrate(soak.SubstrateConfig{
		Substrate:    substrate,
		Nodes:        o.nodes,
		Ops:          o.ops,
		QueriesPerOp: o.queries,
		Seed:         o.seed,
		Telemetry:    reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsubstrate soak report (seed %d)\n", o.seed)
	fmt.Printf("  substrate:   %s, %d nodes\n", rep.Substrate, rep.Nodes)
	fmt.Printf("  churn:       %d joins, %d leaves, %d crashes over %d ops\n",
		rep.Joins, rep.Leaves, rep.Crashes, rep.Ops)
	fmt.Printf("  queries:     %d issued, %d found, %d cache hits, %d failed\n",
		rep.Queries, rep.Found, rep.CacheHits, rep.QueryFailures)
	fmt.Printf("  latency:     p50 %.0fµs, p99 %.0fµs (mean %.2f hops/lookup)\n",
		rep.P50QueryMicros, rep.P99QueryMicros, rep.MeanLookupHops)
	fmt.Printf("  maintenance: %d items, %d bytes moved\n",
		rep.MaintenanceItems, rep.MaintenanceBytes)
	fmt.Printf("  data:        %d acked articles, %d lost\n", rep.AckedArticles, rep.LostArticles)
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	if rep.LostArticles > 0 {
		return fmt.Errorf("substrate soak failed: %d of %d acked articles lost",
			rep.LostArticles, rep.AckedArticles)
	}
	return serveMetrics(reg, metricsAddr)
}

// writeSplitReport writes the split-brain run's verdict — episode
// windows, merge/tombstone work, and the loss/resurrection gates — as a
// JSON artifact for CI upload and offline triage.
func writeSplitReport(path string, report soak.Report) error {
	out := struct {
		Converged         bool
		Acked             int
		LostKeys          []string
		Removes           int
		RemoveFailures    int
		Resurrections     []string
		ReplicaViolations []string
		Episodes          []wire.PartitionEpisode
		Merges            wire.MergeStats
		Tombstones        wire.TombstoneStats
		Faults            wire.FaultStats
	}{
		Converged:         report.Converged,
		Acked:             report.Acked,
		LostKeys:          report.LostKeys,
		Removes:           report.Removes,
		RemoveFailures:    report.RemoveFailures,
		Resurrections:     report.Resurrections,
		ReplicaViolations: report.ReplicaViolations,
		Episodes:          report.Episodes,
		Merges:            report.Merges,
		Tombstones:        report.Tombstones,
		Faults:            report.Faults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dhtbench: split-brain report written to %s\n", path)
	return nil
}

// emitMetrics writes the registry's text snapshot to a file when asked.
func emitMetrics(reg *telemetry.Registry, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WriteText(f); err != nil {
		return fmt.Errorf("write metrics snapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dhtbench: metrics snapshot written to %s\n", path)
	return nil
}

// serveMetrics blocks serving the registry at /metrics when an address
// is given (curl http://<addr>/metrics for the live snapshot).
func serveMetrics(reg *telemetry.Registry, addr string) error {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	fmt.Fprintf(os.Stderr, "dhtbench: serving metrics on http://%s/metrics (Ctrl-C to stop)\n", addr)
	return http.ListenAndServe(addr, mux)
}

func run(maxNodes, lookups int, churn float64, seed int64, substrate string, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	fmt.Printf("substrate: %s\n", substrate)
	fmt.Printf("%-8s %10s %8s %10s %10s %12s\n",
		"nodes", "mean hops", "max", "log2(N)", "mean keys", "max/mean keys")
	for n := 16; n <= maxNodes; n *= 4 {
		var err error
		switch substrate {
		case "chord":
			err = chordSweep(n, lookups, seed, reg)
		case "pastry":
			err = pastrySweep(n, lookups, seed)
		case "kademlia":
			err = kademliaSweep(n, lookups, seed, reg)
		default:
			err = fmt.Errorf("unknown substrate %q", substrate)
		}
		if err != nil {
			return err
		}
	}
	if err := churnTest(maxNodes/4, churn, seed, reg); err != nil {
		return err
	}
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	return serveMetrics(reg, metricsAddr)
}

func chordSweep(n, lookups int, seed int64, reg *telemetry.Registry) error {
	net := dht.NewNetwork(seed)
	if _, err := net.Populate(n); err != nil {
		return err
	}
	net.Instrument(reg)
	for i := 0; i < 10*n; i++ {
		if _, err := net.Put(nil, keyspace.NewKey(fmt.Sprintf("key-%d", i)),
			dht.Entry{Kind: "data", Value: "x"}); err != nil {
			return err
		}
	}
	net.ResetMetrics()
	nodes := net.Nodes()
	for i := 0; i < lookups; i++ {
		start := nodes[i%len(nodes)]
		if _, err := net.Lookup(start, keyspace.NewKey(fmt.Sprintf("probe-%d", i))); err != nil {
			return err
		}
	}
	m := net.Metrics()
	load := net.KeyLoad()
	fmt.Printf("%-8d %10.2f %8d %10.2f %10.1f %12.2f\n",
		n, float64(m.Hops)/float64(m.Lookups), m.MaxHops, math.Log2(float64(n)),
		load.MeanKeys, float64(load.MaxKeys)/load.MeanKeys)
	return nil
}

func pastrySweep(n, lookups int, seed int64) error {
	net := pastry.NewNetwork()
	nodes, err := net.Populate(n)
	if err != nil {
		return err
	}
	ov := pastry.AsOverlay(net, seed)
	for i := 0; i < 10*n; i++ {
		if _, err := ov.Put(keyspace.NewKey(fmt.Sprintf("key-%d", i)),
			overlay.Entry{Kind: "data", Value: "x"}); err != nil {
			return err
		}
	}
	keyTotal, keyMax := 0, 0
	for _, addr := range ov.Addrs() {
		st, err := ov.StatsOf(addr)
		if err != nil {
			return err
		}
		keyTotal += st.Keys
		if st.Keys > keyMax {
			keyMax = st.Keys
		}
	}
	before := net.Metrics()
	for i := 0; i < lookups; i++ {
		start := nodes[i%len(nodes)]
		if _, err := net.Lookup(start, keyspace.NewKey(fmt.Sprintf("probe-%d", i))); err != nil {
			return err
		}
	}
	m := net.Metrics()
	mean := float64(keyTotal) / float64(n)
	fmt.Printf("%-8d %10.2f %8d %10.2f %10.1f %12.2f\n",
		n, float64(m.Hops-before.Hops)/float64(m.Lookups-before.Lookups),
		m.MaxHops, math.Log2(float64(n)), mean, float64(keyMax)/mean)
	return nil
}

// kademliaSweep mirrors chordSweep on the iterative XOR substrate: hop
// depth here is the α-parallel lookup's round count (how many probe
// waves before the K closest converged), which plays the role the
// forwarding hop count plays on the recursive rings.
func kademliaSweep(n, lookups int, seed int64, reg *telemetry.Registry) error {
	net := kademlia.NewNetwork(kademlia.Config{Replicas: 1, Seed: seed})
	if _, err := net.Populate(n); err != nil {
		return err
	}
	net.Instrument(reg)
	ov := kademlia.AsOverlay(net, seed)
	for i := 0; i < 10*n; i++ {
		if _, err := ov.Put(keyspace.NewKey(fmt.Sprintf("key-%d", i)),
			overlay.Entry{Kind: "data", Value: "x"}); err != nil {
			return err
		}
	}
	keyTotal, keyMax := 0, 0
	for _, addr := range ov.Addrs() {
		st, err := ov.StatsOf(addr)
		if err != nil {
			return err
		}
		keyTotal += st.Keys
		if st.Keys > keyMax {
			keyMax = st.Keys
		}
	}
	net.ResetMetrics()
	nodes := net.Nodes()
	for i := 0; i < lookups; i++ {
		start := nodes[i%len(nodes)].Addr
		if _, err := net.Lookup(start, keyspace.NewKey(fmt.Sprintf("probe-%d", i))); err != nil {
			return err
		}
	}
	m := net.Metrics()
	mean := float64(keyTotal) / float64(n)
	fmt.Printf("%-8d %10.2f %8d %10.2f %10.1f %12.2f\n",
		n, float64(m.Rounds)/float64(m.Lookups), m.MaxRounds, math.Log2(float64(n)),
		mean, float64(keyMax)/mean)
	return nil
}

// churnTest fails a fraction of a replicated network and reports surviving
// data and post-stabilization routing health.
func churnTest(n int, frac float64, seed int64, reg *telemetry.Registry) error {
	fmt.Printf("\nchurn test: %d nodes, replication 2, failing %.0f%%\n", n, 100*frac)
	net := dht.NewNetwork(seed)
	net.ReplicationFactor = 2
	nodes, err := net.Populate(n)
	if err != nil {
		return err
	}
	net.Instrument(reg)
	const keys = 2000
	for i := 0; i < keys; i++ {
		if _, err := net.Put(nil, keyspace.NewKey(fmt.Sprintf("doc-%d", i)),
			dht.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			return err
		}
	}
	fail := int(frac * float64(n))
	for i := 0; i < fail; i++ {
		if err := net.FailNode(nodes[i*3%n].Addr); err != nil {
			// Node may already be gone when the stride wraps; skip.
			continue
		}
	}
	net.Stabilize()
	if err := net.VerifyRing(); err != nil {
		return fmt.Errorf("ring not converged: %w", err)
	}
	survived := 0
	for i := 0; i < keys; i++ {
		entries, _, err := net.Get(nil, keyspace.NewKey(fmt.Sprintf("doc-%d", i)))
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			survived++
		}
	}
	m := net.Metrics()
	fmt.Printf("data survived: %d/%d (%.1f%%), failover reads: %d\n",
		survived, keys, 100*float64(survived)/keys, m.FailoverReads)
	return nil
}
