package main

// The -bench-out mode: an in-process microbenchmark harness for the
// wire fast path. It measures the pooled transport against
// dial-per-call, batched cluster puts against sequential routed puts,
// batched article publish against per-mapping inserts, and parallel
// against sequential automated search — and writes one JSON report
// (ops/s, p50/p99 latency, wire bytes per op) for CI to archive as
// BENCH_wire.json. The same scenarios exist as `go test -bench`
// benchmarks in internal/wire; this mode exists so a deployment can
// produce the report without the Go toolchain's test machinery.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/index"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/soak"
	"dhtindex/internal/wire"
)

// benchResult is one scenario's row in the JSON report.
type benchResult struct {
	Name       string  `json:"name"`
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	BytesPerOp int64   `json:"bytes_per_op"`
	// AllocsPerOp is the process-wide heap allocation count per op
	// (runtime Mallocs delta / ops). Background goroutines contribute, so
	// it is an upper bound on the scenario's own allocations — the
	// -bench-check regression gate compares it with tolerance.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchReport is the whole BENCH_wire.json document.
type benchReport struct {
	GeneratedBy string             `json:"generated_by"`
	Seed        int64              `json:"seed"`
	Results     []benchResult      `json:"results"`
	Ratios      map[string]float64 `json:"ratios"`

	// SubstrateMatrix holds the cross-substrate churn-soak comparison
	// (hops, query percentiles, maintenance traffic, acked-write loss)
	// produced by -matrix; see matrixout.go.
	SubstrateMatrix []soak.SubstrateReport `json:"substrate_matrix,omitempty"`
}

// seqPublishNet hides the cluster's BatchNetwork extension so the index
// layer publishes over the sequential per-entry path.
type seqPublishNet struct{ overlay.Network }

// runBenchOut executes every wire fast-path scenario and writes the
// JSON report to path.
func runBenchOut(path string, seed int64) error {
	var report benchReport
	// Regenerating the microbenchmark rows must not discard a substrate
	// matrix a previous -matrix run merged into the same file.
	if raw, err := os.ReadFile(path); err == nil {
		var prev benchReport
		if err := json.Unmarshal(raw, &prev); err == nil {
			report.SubstrateMatrix = prev.SubstrateMatrix
		}
	}
	report.GeneratedBy = "dhtbench -bench-out"
	report.Seed = seed
	report.Ratios = make(map[string]float64)

	add := func(r benchResult, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%-28s %8d ops  %12.0f ops/s  p50 %8.1fµs  p99 %8.1fµs  %7d B/op  %8.1f allocs/op\n",
			r.Name, r.Ops, r.OpsPerSec, r.P50Micros, r.P99Micros, r.BytesPerOp, r.AllocsPerOp)
		return nil
	}

	// Transport round-trips: pooled (binary codec, the default) vs
	// pooled forced onto gob vs dial-per-call (always gob). The
	// binary-vs-gob pair isolates the codec's contribution on an
	// otherwise identical fast path.
	const callOps = 2000
	pooled, err := benchTransport(false, wire.CodecDefault, callOps)
	if err := add(pooled, err); err != nil {
		return err
	}
	pooledGob, err := benchTransport(false, wire.CodecGob, callOps)
	if err := add(pooledGob, err); err != nil {
		return err
	}
	dial, err := benchTransport(true, wire.CodecDefault, callOps)
	if err := add(dial, err); err != nil {
		return err
	}
	report.Ratios["transport_pooled_vs_dial"] = ratio(pooled, dial)
	report.Ratios["transport_binary_vs_gob"] = ratio(pooled, pooledGob)

	// Cluster puts: one 16-key batch vs 16 sequential routed puts.
	const putOps = 200
	batch, err := benchClusterPut(true, putOps, seed)
	if err := add(batch, err); err != nil {
		return err
	}
	seqPut, err := benchClusterPut(false, putOps, seed)
	if err := add(seqPut, err); err != nil {
		return err
	}
	report.Ratios["put_batch_vs_sequential"] = ratio(batch, seqPut)

	// Article publish with the Complex scheme (1 data entry + 9 index
	// mappings): batched vs per-mapping inserts.
	const pubOps = 200
	pubBatch, err := benchPublish(true, pubOps, seed)
	if err := add(pubBatch, err); err != nil {
		return err
	}
	pubSeq, err := benchPublish(false, pubOps, seed)
	if err := add(pubSeq, err); err != nil {
		return err
	}
	report.Ratios["publish_batch_vs_sequential"] = ratio(pubBatch, pubSeq)

	// Automated search over the index DAG: parallel frontier vs
	// sequential BFS. The sequential baseline runs first (a cold process
	// penalizes whichever arm goes first; the baseline should absorb it),
	// and with the adaptive fan-out gate the two arms only diverge on
	// frontiers wide enough for a wave to pay for itself — so this ratio
	// asserts parallelism is free when it cannot help, not that it wins.
	const searchOps = 300
	searchSeq, err := benchSearchAll(1, searchOps, seed)
	if err := add(searchSeq, err); err != nil {
		return err
	}
	searchPar, err := benchSearchAll(8, searchOps, seed)
	if err := add(searchPar, err); err != nil {
		return err
	}
	report.Ratios["search_parallel_vs_sequential"] = ratio(searchPar, searchSeq)
	// Tail-latency gate (ISSUE 10): the sliding-window frontier must not
	// trade throughput for tail — one straggling lookup may not hold the
	// whole walk hostage, so the parallel p99 has to stay within 10% of
	// the sequential walk's.
	if searchPar.P99Micros > searchSeq.P99Micros*1.1 {
		return fmt.Errorf("parallel search p99 regression: %.1fµs > sequential %.1fµs × 1.1",
			searchPar.P99Micros, searchSeq.P99Micros)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		return fmt.Errorf("write bench report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "dhtbench: bench report written to %s\n", path)
	for name, r := range report.Ratios {
		fmt.Printf("ratio %-32s %.2fx\n", name, r)
	}
	return nil
}

// ratio compares two scenarios by throughput (fast / slow baseline).
func ratio(fast, slow benchResult) float64 {
	if slow.OpsPerSec == 0 {
		return 0
	}
	return fast.OpsPerSec / slow.OpsPerSec
}

// summarize folds per-op latencies, a wire byte count and an allocation
// count into one row.
func summarize(name string, lats []time.Duration, bytes int64, allocs uint64) benchResult {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	n := len(lats)
	pct := func(p float64) float64 {
		i := int(p * float64(n-1))
		return float64(lats[i].Nanoseconds()) / 1e3
	}
	return benchResult{
		Name:        name,
		Ops:         n,
		OpsPerSec:   float64(n) / total.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
		BytesPerOp:  bytes / int64(n),
		AllocsPerOp: float64(allocs) / float64(n),
	}
}

// measure times n runs of fn and returns the per-op latencies, the
// transport bytes (sent + received) the runs moved, and the heap
// allocation count they cost (process-wide Mallocs delta).
func measure(tp *wire.TCPTransport, n int, fn func(i int) error) ([]time.Duration, int64, uint64, error) {
	before := tp.PoolStats()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(i); err != nil {
			return nil, 0, 0, err
		}
		lats = append(lats, time.Since(start))
	}
	runtime.ReadMemStats(&msAfter)
	after := tp.PoolStats()
	moved := (after.BytesSent + after.BytesReceived) - (before.BytesSent + before.BytesReceived)
	return lats, moved, msAfter.Mallocs - msBefore.Mallocs, nil
}

// benchTransport measures one echo round-trip per op on loopback TCP.
// codec selects the pooled path's wire encoding (CodecGob pins the
// legacy gob stream; the default negotiates binary).
func benchTransport(disablePool bool, codec wire.Codec, ops int) (benchResult, error) {
	name := "transport_call/pooled"
	if codec == wire.CodecGob {
		name = "transport_call/pooled-gob"
	}
	if disablePool {
		name = "transport_call/dial-per-call"
	}
	server := wire.NewTCPTransport()
	addr, closer, err := server.Listen("127.0.0.1:0", func(req wire.Message) wire.Message {
		return wire.Message{Op: req.Op, Ok: true, Addr: req.Addr}
	})
	if err != nil {
		return benchResult{Name: name}, err
	}
	defer closer.Close()
	client := wire.NewTCPTransport()
	client.DisablePool = disablePool
	client.Codec = codec
	req := wire.Message{Op: wire.OpPing, Addr: "bench"}
	if _, err := client.Call(addr, req); err != nil { // warm the pool / codec
		return benchResult{Name: name}, err
	}
	lats, bytes, allocs, err := measure(client, ops, func(int) error {
		_, err := client.Call(addr, req)
		return err
	})
	if err != nil {
		return benchResult{Name: name}, err
	}
	return summarize(name, lats, bytes, allocs), nil
}

// benchOutRing boots a converged 4-node loopback ring for the cluster
// scenarios.
func benchOutRing(seed int64) (*wire.Cluster, *wire.TCPTransport, func(), error) {
	tp := wire.NewTCPTransport()
	cluster := wire.NewCluster(tp, seed, 0)
	var stops []func()
	stop := func() {
		for _, s := range stops {
			s()
		}
	}
	var bootstrap string
	for i := 0; i < 4; i++ {
		n, err := wire.Start(wire.Config{
			Transport:         tp,
			Addr:              "127.0.0.1:0",
			StabilizeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		stops = append(stops, n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			stop()
			return nil, nil, nil, err
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(20 * time.Second); err != nil {
		stop()
		return nil, nil, nil, err
	}
	return cluster, tp, stop, nil
}

// benchClusterPut stores 16 distinct keys per op, batched or one routed
// put at a time.
func benchClusterPut(batched bool, ops int, seed int64) (benchResult, error) {
	name := "cluster_put/sequential"
	if batched {
		name = "cluster_put/batch"
	}
	cluster, tp, stop, err := benchOutRing(seed)
	if err != nil {
		return benchResult{Name: name}, err
	}
	defer stop()
	items := func(round int) []overlay.KeyEntry {
		out := make([]overlay.KeyEntry, 16)
		for i := range out {
			out[i] = overlay.KeyEntry{
				Key:   keyspace.NewKey(fmt.Sprintf("bench-%s-%d-%d", name, round, i)),
				Entry: overlay.Entry{Kind: "index", Value: fmt.Sprintf("v-%d-%d", round, i)},
			}
		}
		return out
	}
	lats, bytes, allocs, err := measure(tp, ops, func(i int) error {
		if batched {
			return cluster.PutBatch(context.Background(), items(i))
		}
		for _, it := range items(i) {
			if _, err := cluster.Put(it.Key, it.Entry); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return benchResult{Name: name}, err
	}
	return summarize(name, lats, bytes, allocs), nil
}

// benchPublish publishes one article per op with the Complex scheme.
func benchPublish(batched bool, ops int, seed int64) (benchResult, error) {
	name := "publish/sequential"
	if batched {
		name = "publish/batch"
	}
	corpus, err := dataset.Generate(dataset.Config{Articles: 64, Seed: seed})
	if err != nil {
		return benchResult{Name: name}, err
	}
	cluster, tp, stop, err := benchOutRing(seed)
	if err != nil {
		return benchResult{Name: name}, err
	}
	defer stop()
	var net overlay.Network = cluster
	if !batched {
		net = seqPublishNet{cluster}
	}
	svc := index.New(net, cache.None, 0)
	lats, bytes, allocs, err := measure(tp, ops, func(i int) error {
		a := corpus.Articles[i%len(corpus.Articles)]
		return svc.PublishArticle(fmt.Sprintf("bench-%s-%d.pdf", name, i), a, index.Complex)
	})
	if err != nil {
		return benchResult{Name: name}, err
	}
	return summarize(name, lats, bytes, allocs), nil
}

// benchSearchAll explores a published corpus's index DAG per op.
func benchSearchAll(parallelism, ops int, seed int64) (benchResult, error) {
	name := fmt.Sprintf("search_all/parallel-%d", parallelism)
	if parallelism <= 1 {
		name = "search_all/sequential"
	}
	corpus, err := dataset.Generate(dataset.Config{Articles: 48, Seed: seed})
	if err != nil {
		return benchResult{Name: name}, err
	}
	cluster, tp, stop, err := benchOutRing(seed)
	if err != nil {
		return benchResult{Name: name}, err
	}
	defer stop()
	svc := index.New(cluster, cache.None, 0)
	for i, a := range corpus.Articles {
		if err := svc.PublishArticle(fmt.Sprintf("s-%d.pdf", i), a, index.Complex); err != nil {
			return benchResult{Name: name}, err
		}
	}
	searcher := index.NewSearcher(svc)
	searcher.Parallelism = parallelism
	query := dataset.ConfQuery(corpus.Articles[0].Conf)
	if _, _, err := searcher.SearchAll(query); err != nil { // warm up
		return benchResult{Name: name}, err
	}
	lats, bytes, allocs, err := measure(tp, ops, func(int) error {
		results, _, err := searcher.SearchAll(query)
		if err == nil && len(results) == 0 {
			err = fmt.Errorf("search returned nothing")
		}
		return err
	})
	if err != nil {
		return benchResult{Name: name}, err
	}
	return summarize(name, lats, bytes, allocs), nil
}
