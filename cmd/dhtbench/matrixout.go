package main

// The -matrix mode: the cross-substrate comparison. It runs the
// in-process indexed churn soak (internal/soak.RunSubstrate) on Chord,
// Pastry and Kademlia with one shared configuration, prints the
// comparison table, and — with -bench-out — merges the rows into the
// committed BENCH_wire.json next to the wire fast-path and load rows.
// The run fails if any substrate loses an acked article.

import (
	"encoding/json"
	"fmt"
	"os"

	"dhtindex/internal/soak"
	"dhtindex/internal/telemetry"
)

// matrixSubstrates is the comparison set, in report order.
var matrixSubstrates = []string{"chord", "pastry", "kademlia"}

// matrixOpts bundles the matrix flag values.
type matrixOpts struct {
	nodes, ops, queries int
	seed                int64
	benchOut            string
}

// runMatrix executes one soak per substrate and publishes the matrix.
func runMatrix(o matrixOpts, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	rows := make([]soak.SubstrateReport, 0, len(matrixSubstrates))
	for _, substrate := range matrixSubstrates {
		rep, err := soak.RunSubstrate(soak.SubstrateConfig{
			Substrate:    substrate,
			Nodes:        o.nodes,
			Ops:          o.ops,
			QueriesPerOp: o.queries,
			Seed:         o.seed,
			Telemetry:    reg,
		})
		if err != nil {
			return fmt.Errorf("matrix %s: %w", substrate, err)
		}
		rows = append(rows, rep)
	}

	fmt.Printf("substrate matrix (seed %d: %d nodes, %d ops, %d queries)\n",
		o.seed, rows[0].Nodes, rows[0].Ops, rows[0].Queries)
	fmt.Printf("%-10s %6s %6s %7s %8s %9s %10s %10s %11s %11s %6s\n",
		"substrate", "nodes", "churn", "queries", "found", "failures",
		"mean hops", "p99 query", "maint items", "maint bytes", "lost")
	for _, r := range rows {
		fmt.Printf("%-10s %6d %6d %7d %8d %9d %10.2f %9.0fµs %11d %11d %6d\n",
			r.Substrate, r.Nodes, r.Joins+r.Leaves+r.Crashes, r.Queries, r.Found,
			r.QueryFailures, r.MeanLookupHops, r.P99QueryMicros,
			r.MaintenanceItems, r.MaintenanceBytes, r.LostArticles)
	}

	if o.benchOut != "" {
		if err := mergeMatrixIntoBench(o.benchOut, o.seed, rows); err != nil {
			return fmt.Errorf("merge matrix into %s: %w", o.benchOut, err)
		}
		fmt.Fprintf(os.Stderr, "dhtbench: substrate matrix merged into %s\n", o.benchOut)
	}
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	for _, r := range rows {
		if r.LostArticles > 0 {
			return fmt.Errorf("matrix failed: %s lost %d of %d acked articles",
				r.Substrate, r.LostArticles, r.AckedArticles)
		}
	}
	return serveMetrics(reg, metricsAddr)
}

// mergeMatrixIntoBench read-modify-writes the bench report: the
// microbenchmark and load rows are preserved and the substrate matrix
// is replaced by this run's rows. A missing file starts fresh.
func mergeMatrixIntoBench(path string, seed int64, rows []soak.SubstrateReport) error {
	var report benchReport
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("existing report unreadable: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if report.GeneratedBy == "" {
		report.GeneratedBy = "dhtbench -matrix"
		report.Seed = seed
	}
	report.SubstrateMatrix = rows
	return writeJSON(path, report)
}
