package main

// The -ingest mode: the continuous-ingest soak (internal/soak.RunIngest)
// as a CI gate. A crawl-rate document stream is fed through the durable
// ingest pipeline into a stormed ring, the ingester is crash-restarted
// mid-stream, poison documents are salted in, and the run is held to the
// scenario gates — zero acked-document loss, 100% freshness-SLO
// compliance, total poison quarantine, spool recovery across the
// restart, a live republisher. It prints the stream accounting,
// optionally writes the full JSON IngestReport (-ingest-out), and exits
// non-zero on any gate violation.

import (
	"errors"
	"fmt"
	"os"
	"time"

	"dhtindex/internal/soak"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/wire"
)

// ingestOpts bundles the -ingest flag values.
type ingestOpts struct {
	nodes    int
	ops      int
	drop     float64
	latency  time.Duration
	seed     int64
	docs     int
	budget   time.Duration
	spoolDir string
	out      string
}

// errIngestGate marks an ingest-gate failure (as opposed to a harness
// error).
var errIngestGate = errors.New("ingest gate failed")

// runIngestMode executes the continuous-ingest soak and holds it to the
// scenario gates.
func runIngestMode(o ingestOpts, reg *telemetry.Registry, metricsAddr, metricsOut string) error {
	report, err := soak.RunIngest(soak.IngestConfig{
		Wire: wire.SoakConfig{
			Nodes:    o.nodes,
			Ops:      o.ops,
			DropProb: o.drop,
			Latency:  o.latency,
			Seed:     o.seed,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		},
		Documents:       o.docs,
		FreshnessBudget: o.budget,
		SpoolDir:        o.spoolDir,
		Telemetry:       reg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\ningest report (seed %d)\n", o.seed)
	fmt.Printf("  ring:      %d -> %d nodes, converged=%v, %d wire keys acked, %d lost\n",
		o.nodes, report.SurvivingNodes, report.Converged, report.SoakReport.Acked, len(report.LostKeys))
	fmt.Printf("  stream:    %d enqueued, %d acked (%d poison), %d published, %d dead-lettered\n",
		report.Enqueued, report.Acked, report.Poison, report.Published, report.DeadLettered)
	fmt.Printf("  retries:   %d budgeted retries, %d overload backoffs, %d shed\n",
		report.Retries, report.OverloadBackoffs, report.Shed)
	fmt.Printf("  restart:   %d ingester crash-restarts, %d spool records recovered\n",
		report.IngesterRestarts, report.SpoolRecovered)
	fmt.Printf("  freshness: max ack-to-visible %v (budget %v), %d violations, %d lost docs\n",
		report.MaxAckToVisible.Round(time.Millisecond), o.budget, len(report.FreshnessViolations), len(report.LostDocs))
	fmt.Printf("  republish: %d refreshes, %d failures\n", report.Republished, report.RepublishFailures)
	for reason, n := range report.DeadLetterReasons {
		fmt.Printf("  quarantine: %d x %s\n", n, reason)
	}

	if o.out != "" {
		if err := writeJSON(o.out, report); err != nil {
			return fmt.Errorf("write ingest report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "dhtbench: ingest report written to %s\n", o.out)
	}
	if err := emitMetrics(reg, metricsOut); err != nil {
		return err
	}
	if !report.Passed() {
		for _, v := range report.Violations {
			fmt.Fprintf(os.Stderr, "dhtbench: ingest violation: %s\n", v)
		}
		return fmt.Errorf("%w: %d violations", errIngestGate, len(report.Violations))
	}
	fmt.Println("  gate:      PASS")
	return serveMetrics(reg, metricsAddr)
}
