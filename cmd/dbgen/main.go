// Command dbgen emits a synthetic bibliographic corpus as an XML document
// stream — the stand-in for the paper's DBLP archive (§V-A). The output
// can be inspected, archived, or re-parsed by downstream tooling.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dhtindex/internal/dataset"
)

func main() {
	var (
		articles = flag.Int("articles", 1000, "number of articles to generate")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		summary  = flag.Bool("summary", false, "print corpus statistics instead of XML")
	)
	flag.Parse()
	if err := run(*articles, *seed, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
}

func run(articles int, seed int64, summary bool) error {
	corpus, err := dataset.Generate(dataset.Config{Articles: articles, Seed: seed})
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if summary {
		counts := corpus.ArticlesPerAuthor()
		fmt.Fprintf(w, "articles: %d\nauthors: %d\n", len(corpus.Articles), len(corpus.Authors))
		fmt.Fprintf(w, "total file bytes: %d (avg %.0f KB)\n",
			corpus.TotalFileBytes(), float64(corpus.TotalFileBytes())/float64(articles)/1024)
		fmt.Fprintf(w, "most prolific author: %d articles; median: %d\n",
			counts[0], counts[len(counts)/2])
		return nil
	}
	fmt.Fprintln(w, "<dblp>")
	for _, a := range corpus.Articles {
		fmt.Fprint(w, a.Descriptor().XML())
	}
	fmt.Fprintln(w, "</dblp>")
	return nil
}
