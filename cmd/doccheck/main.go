// Command doccheck is a dependency-free missing-doc linter in the spirit
// of revive's exported rule: it parses the given package directories with
// go/parser and reports every exported top-level identifier — functions,
// methods on exported types, types, and const/var groups — that lacks a
// doc comment, plus packages without a package comment.
//
// Usage:
//
//	doccheck [-require dir,dir,...] [dir | dir/...]...
//
// With no arguments it checks ./... — every non-test Go package under the
// current directory. CI runs it over the whole module so the godoc
// surface stays complete; it exits non-zero when anything is undocumented.
//
// -require names package directories that MUST exist and be covered by
// the run (comma-separated). A glob sweep silently shrinks when a package
// is moved or renamed; the require list turns that into a hard failure,
// so the doc gate on load-bearing packages (the substrates, the overlay
// contract) cannot rot away unnoticed.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	require := flag.String("require", "",
		"comma-separated package dirs that must exist and be checked (hard failure otherwise)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if missing := missingRequired(*require, dirs); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: required packages not covered by this run: %s\n",
			strings.Join(missing, ", "))
		os.Exit(2)
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// missingRequired returns the -require entries absent from the checked
// directory set.
func missingRequired(require string, dirs []string) []string {
	if require == "" {
		return nil
	}
	checked := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		checked[d] = true
	}
	var missing []string
	for _, r := range strings.Split(require, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !checked[filepath.Clean(r)] {
			missing = append(missing, r)
		}
	}
	return missing
}

// expand resolves each argument to a list of package directories: a
// plain path is itself, a path ending in /... walks that tree for
// directories containing Go files (skipping hidden dirs and testdata).
func expand(args []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, a := range args {
		root, recursive := strings.CutSuffix(a, "/...")
		if root == "" {
			root = "."
		}
		if !recursive {
			add(filepath.Clean(a))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses one package directory (tests excluded) and returns one
// problem line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		fileNames := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			fileNames = append(fileNames, name)
		}
		sort.Strings(fileNames)
		hasPkgDoc := false
		for _, name := range fileNames {
			if pkg.Files[name].Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			report(pkg.Files[fileNames[0]].Package, "package %s has no package comment", pkg.Name)
		}
		for _, name := range fileNames {
			checkFile(pkg.Files[name], report)
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(f *ast.File, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d.Recv) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
}

// checkGenDecl checks type, const and var declarations. A doc comment on
// the declaration group covers all its specs (idiomatic for const
// blocks); otherwise each spec with an exported name needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	if d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(s.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), n.Name)
					break
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions, with a nil receiver list, count as exported). Methods on
// unexported types are internal even when their names are capitalized.
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil {
		return true
	}
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
