package dhtindex

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§V) as Go benchmarks. Each benchmark reports the figure's
// series through b.ReportMetric, so `go test -bench=.` prints the same
// rows the paper plots. Simulation scale is reduced from the paper's
// 500/10000/50000 to keep the full suite fast; cmd/indexsim runs the
// full-scale version (see EXPERIMENTS.md for the side-by-side numbers).

import (
	"fmt"
	"sync"
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/sim"
	"dhtindex/internal/stats"
	"dhtindex/internal/workload"
	"dhtindex/internal/xpath"
)

// Benchmark scale (reduced from the paper's 500/10k/50k).
const (
	benchNodes    = 200
	benchArticles = 3000
	benchQueries  = 15000
	benchSeed     = 1
)

// benchCell identifies one scheme × policy configuration.
type benchCell struct {
	scheme string
	policy cache.Policy
	lru    int
}

var (
	benchMu     sync.Mutex
	benchCorpus *dataset.Corpus
	benchMemo   = map[benchCell]*sim.Metrics{}
)

// benchRun memoizes full simulation runs across benchmarks so that the
// grid of figures shares each scheme × policy execution.
func benchRun(b *testing.B, scheme index.Scheme, policy cache.Policy, lru int) *sim.Metrics {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchCorpus == nil {
		c, err := dataset.Generate(dataset.Config{Articles: benchArticles, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		benchCorpus = c
	}
	cell := benchCell{scheme: scheme.Name(), policy: policy, lru: lru}
	if m, ok := benchMemo[cell]; ok {
		return m
	}
	m, err := sim.Run(sim.Options{
		Nodes:       benchNodes,
		Articles:    benchArticles,
		Queries:     benchQueries,
		Scheme:      scheme,
		Policy:      policy,
		LRUCapacity: lru,
		Seed:        benchSeed,
		Corpus:      benchCorpus,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchMemo[cell] = m
	return m
}

// gridPolicies are the cache configurations of Figs. 11-14 and Table I.
var gridPolicies = []struct {
	label string
	pol   cache.Policy
	lru   int
}{
	{"no-cache", cache.None, 0},
	{"multi-cache", cache.Multi, 0},
	{"single-cache", cache.Single, 0},
	{"lru-10", cache.LRU, 10},
	{"lru-20", cache.LRU, 20},
	{"lru-30", cache.LRU, 30},
}

// BenchmarkFig07QueryTypes regenerates Fig. 7: the distribution of query
// types in the workload (percent of queries per structure).
func BenchmarkFig07QueryTypes(b *testing.B) {
	model := workload.PaperStructureModel()
	for _, s := range model.Structures() {
		b.Run(s.String()[1:], func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(fig1Corpus(b).Articles, model, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				count := 0
				const sample = 9108 // BibFinder log size
				for j := 0; j < sample; j++ {
					if gen.Next().Structure == s {
						count++
					}
				}
				frac = 100 * float64(count) / sample
			}
			b.ReportMetric(frac, "%queries")
		})
	}
}

func fig1Corpus(b *testing.B) *dataset.Corpus {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchCorpus == nil {
		c, err := dataset.Generate(dataset.Config{Articles: benchArticles, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		benchCorpus = c
	}
	return benchCorpus
}

// BenchmarkFig09Popularity regenerates Fig. 9: the power-law exponent and
// fit quality of author-query popularity.
func BenchmarkFig09Popularity(b *testing.B) {
	var fit stats.PowerLaw
	for i := 0; i < b.N; i++ {
		gen, err := workload.NewGenerator(fig1Corpus(b).Articles, workload.PaperStructureModel(), benchSeed+3)
		if err != nil {
			b.Fatal(err)
		}
		counts := map[string]float64{}
		for j := 0; j < benchQueries; j++ {
			q := gen.Next()
			if q.Structure == workload.AuthorOnly {
				counts[q.Target.Author()]++
			}
		}
		freqs := make([]float64, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		ranked := stats.RankDescending(freqs)
		ranks := make([]float64, len(ranked))
		for j := range ranked {
			ranks[j] = float64(j + 1)
		}
		fit, err = stats.FitPowerLaw(ranks, ranked)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.Alpha, "alpha")
	b.ReportMetric(fit.R2, "r2")
}

// BenchmarkFig10CCDF regenerates Fig. 10: the CCDF of the article
// popularity ranking at reference ranks.
func BenchmarkFig10CCDF(b *testing.B) {
	var at1, at100, atN float64
	for i := 0; i < b.N; i++ {
		gen, err := workload.NewGenerator(fig1Corpus(b).Articles, workload.PaperStructureModel(), benchSeed+4)
		if err != nil {
			b.Fatal(err)
		}
		counts := make([]int, benchArticles)
		for j := 0; j < benchQueries; j++ {
			counts[gen.Next().Rank]++
		}
		ccdf := stats.CCDF(counts)
		at1, at100, atN = ccdf[0], ccdf[99], ccdf[len(ccdf)-1]
	}
	b.ReportMetric(at1, "ccdf@1")
	b.ReportMetric(at100, "ccdf@100")
	b.ReportMetric(atN, "ccdf@N")
}

// BenchmarkTabStorage regenerates the §V-B storage comparison: index bytes
// relative to the simple scheme, and overhead vs the stored files.
func BenchmarkTabStorage(b *testing.B) {
	var rows []sim.SchemeStorage
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.StorageReport(fig1Corpus(b), benchNodes, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.RelativeToSimple, row.Scheme+"-vs-simple")
	}
	b.ReportMetric(100*rows[len(rows)-1].OverheadVsData, "worst-%ofdata")
}

// BenchmarkFig11Interactions regenerates Fig. 11: mean user-system
// interactions per query for every scheme × cache policy.
func BenchmarkFig11Interactions(b *testing.B) {
	for _, scheme := range index.Schemes() {
		for _, spec := range gridPolicies {
			if spec.pol == cache.Multi {
				continue // Fig. 11 omits multi-cache (same as single)
			}
			b.Run(scheme.Name()+"/"+spec.label, func(b *testing.B) {
				var m *sim.Metrics
				for i := 0; i < b.N; i++ {
					m = benchRun(b, scheme, spec.pol, spec.lru)
				}
				b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
			})
		}
	}
}

// BenchmarkFig12Traffic regenerates Fig. 12: normal and cache traffic per
// query (bytes).
func BenchmarkFig12Traffic(b *testing.B) {
	for _, scheme := range index.Schemes() {
		for _, spec := range gridPolicies {
			b.Run(scheme.Name()+"/"+spec.label, func(b *testing.B) {
				var m *sim.Metrics
				for i := 0; i < b.N; i++ {
					m = benchRun(b, scheme, spec.pol, spec.lru)
				}
				b.ReportMetric(m.NormalTrafficPerQuery, "normalB/query")
				b.ReportMetric(m.CacheTrafficPerQuery, "cacheB/query")
			})
		}
	}
}

// BenchmarkFig13HitRatio regenerates Fig. 13: the distributed cache hit
// ratio (and the first-node hit share of §V-e).
func BenchmarkFig13HitRatio(b *testing.B) {
	for _, scheme := range index.Schemes() {
		for _, spec := range gridPolicies[1:] { // caching policies only
			b.Run(scheme.Name()+"/"+spec.label, func(b *testing.B) {
				var m *sim.Metrics
				for i := 0; i < b.N; i++ {
					m = benchRun(b, scheme, spec.pol, spec.lru)
				}
				b.ReportMetric(100*m.HitRatio, "%hit")
				b.ReportMetric(100*m.FirstNodeHitShare, "%first-node")
			})
		}
	}
}

// BenchmarkFig14CacheStorage regenerates Fig. 14: cached keys per node,
// the per-node maximum, and cache occupancy.
func BenchmarkFig14CacheStorage(b *testing.B) {
	for _, scheme := range index.Schemes() {
		for _, spec := range gridPolicies[1:] {
			b.Run(scheme.Name()+"/"+spec.label, func(b *testing.B) {
				var m *sim.Metrics
				for i := 0; i < b.N; i++ {
					m = benchRun(b, scheme, spec.pol, spec.lru)
				}
				b.ReportMetric(m.Cache.MeanKeys, "cachedkeys/node")
				b.ReportMetric(float64(m.Cache.MaxKeys), "max-cachedkeys")
				b.ReportMetric(m.RegularKeysPerNode, "regularkeys/node")
				b.ReportMetric(100*m.Cache.EmptyFraction, "%empty-caches")
			})
		}
	}
}

// BenchmarkFig15HotSpots regenerates Fig. 15: the share of queries
// processed by the busiest nodes (simple scheme).
func BenchmarkFig15HotSpots(b *testing.B) {
	for _, spec := range []struct {
		label string
		pol   cache.Policy
		lru   int
	}{
		{"no-cache", cache.None, 0},
		{"lru-30", cache.LRU, 30},
		{"single-cache", cache.Single, 0},
	} {
		b.Run(spec.label, func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = benchRun(b, index.Simple, spec.pol, spec.lru)
			}
			b.ReportMetric(m.NodeLoadPercent[0], "%busiest")
			b.ReportMetric(m.NodeLoadPercent[9], "%rank10")
			b.ReportMetric(m.NodeLoadPercent[99], "%rank100")
		})
	}
}

// BenchmarkTab1NonIndexed regenerates Table I: the number of queries to
// non-indexed data per scheme and cache policy.
func BenchmarkTab1NonIndexed(b *testing.B) {
	for _, scheme := range index.Schemes() {
		for _, spec := range []struct {
			label string
			pol   cache.Policy
			lru   int
		}{
			{"no-cache", cache.None, 0},
			{"lru-30", cache.LRU, 30},
			{"single-cache", cache.Single, 0},
		} {
			b.Run(scheme.Name()+"/"+spec.label, func(b *testing.B) {
				var m *sim.Metrics
				for i := 0; i < b.N; i++ {
					m = benchRun(b, scheme, spec.pol, spec.lru)
				}
				b.ReportMetric(float64(m.NonIndexedQueries), "errors")
			})
		}
	}
}

// --- substrate and core micro-benchmarks (allocation profiles) ---

// BenchmarkDHTLookup measures raw Chord routing.
func BenchmarkDHTLookup(b *testing.B) {
	net := dht.NewNetwork(1)
	nodes, err := net.Populate(benchNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]keyspace.Key, 256)
	for i := range keys {
		keys[i] = keyspace.NewKey(fmt.Sprintf("key-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Lookup(nodes[i%len(nodes)], keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	m := net.Metrics()
	b.ReportMetric(float64(m.Hops)/float64(m.Lookups), "hops/lookup")
}

// BenchmarkXPathParse measures query parsing.
func BenchmarkXPathParse(b *testing.B) {
	const q = "/article[author[first=John][last=Smith]][conf=SIGCOMM][title=TCP][year=1989]"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCovers measures the covering-relation check.
func BenchmarkCovers(b *testing.B) {
	gen := xpath.MustParse("/article[author[last=Smith]]")
	spe := xpath.MustParse("/article[author[first=John][last=Smith]][conf=SIGCOMM][size=315635][title=TCP][year=1989]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !gen.Covers(spe) {
			b.Fatal("covering broken")
		}
	}
}

// BenchmarkDirectedFind measures one end-to-end indexed lookup.
func BenchmarkDirectedFind(b *testing.B) {
	net := dht.NewNetwork(1)
	if _, err := net.Populate(64); err != nil {
		b.Fatal(err)
	}
	svc := index.New(dht.AsOverlay(net, 1), cache.None, 0)
	corpus := fig1Corpus(b)
	arts := corpus.Articles[:500]
	for i, a := range arts {
		if err := svc.PublishArticle(fmt.Sprintf("f%d", i), a, index.Simple); err != nil {
			b.Fatal(err)
		}
	}
	searcher := index.NewSearcher(svc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := arts[i%len(arts)]
		trace, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a))
		if err != nil || !trace.Found {
			b.Fatal(err)
		}
	}
}
