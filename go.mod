module dhtindex

go 1.22
