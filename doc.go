// Package dhtindex reproduces "Data Indexing in Peer-to-Peer DHT
// Networks" (Garcés-Erice, Felber, Biersack, Urvoy-Keller, Ross — ICDCS
// 2004): distributed hierarchical indexes that map broad queries to more
// specific queries over a DHT, with an adaptive distributed cache.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/indexsim regenerates every figure and table of the paper's
// evaluation, and bench_test.go exposes the same experiments as Go
// benchmarks.
package dhtindex

// Version identifies the reproduction release.
const Version = "1.0.0"
