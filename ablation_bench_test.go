package dhtindex

// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the paper's own figures:
//
//   - substrate independence (§V-E): Chord vs Pastry under an identical
//     workload — index metrics identical, routing cost differs;
//   - hierarchy depth (§IV-B): deeper index hierarchies trade lookup
//     interactions for storage and result-set size;
//   - popularity promotion (§IV-C): deep short-circuit links for the most
//     popular articles;
//   - network size (§V-E): node count does not affect indexing
//     effectiveness, only substrate hop counts.

import (
	"fmt"
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/index"
	"dhtindex/internal/sim"
)

// ablRun executes a one-off simulation at bench scale (not memoized: each
// ablation varies a dimension the shared grid does not).
func ablRun(b *testing.B, mutate func(*sim.Options)) *sim.Metrics {
	b.Helper()
	opts := sim.Options{
		Nodes:    benchNodes,
		Articles: benchArticles,
		Queries:  benchQueries,
		Scheme:   index.Simple,
		Policy:   cache.None,
		Seed:     benchSeed,
		Corpus:   fig1Corpus(b),
	}
	if mutate != nil {
		mutate(&opts)
	}
	m, err := sim.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	if m.Failures != 0 {
		b.Fatalf("%d failures", m.Failures)
	}
	return m
}

// BenchmarkAblSubstrate runs the same indexed workload over Chord and
// Pastry: interactions per query must match to the third decimal while
// substrate hops differ.
func BenchmarkAblSubstrate(b *testing.B) {
	for _, substrate := range []string{"chord", "pastry"} {
		b.Run(substrate, func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = ablRun(b, func(o *sim.Options) { o.Substrate = substrate })
			}
			b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
			b.ReportMetric(m.DHTHopsPerInteraction, "hops/interaction")
			b.ReportMetric(m.NormalTrafficPerQuery, "normalB/query")
		})
	}
}

// BenchmarkAblHierarchyDepth sweeps index hierarchy depth: flat (chains of
// 1 hop), simple (2), complex (3 on the author path), fig4 (3 plus a
// last-name level) and simple+initials (4 on the author path). Depth
// trades interactions against index storage and result-set size (§IV-B).
func BenchmarkAblHierarchyDepth(b *testing.B) {
	schemes := []index.Scheme{
		index.Flat,
		index.Simple,
		index.Complex,
		index.Fig4,
		index.WithInitials(index.Simple),
	}
	for _, scheme := range schemes {
		b.Run(scheme.Name(), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = ablRun(b, func(o *sim.Options) { o.Scheme = scheme })
			}
			b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
			b.ReportMetric(float64(m.Storage.IndexBytes)/1024, "indexKB")
			b.ReportMetric(m.NormalTrafficPerQuery, "normalB/query")
		})
	}
}

// BenchmarkAblPromotion short-circuits the top-N most popular articles
// and measures the interaction savings on the whole workload.
func BenchmarkAblPromotion(b *testing.B) {
	for _, top := range []int{0, 10, 100, 1000} {
		b.Run(fmt.Sprintf("top-%d", top), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = ablRun(b, func(o *sim.Options) {
					o.Scheme = index.Complex // deepest hierarchy: most to gain
					o.PromoteTop = top
				})
			}
			b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
			b.ReportMetric(float64(m.Storage.IndexEntries), "indexentries")
		})
	}
}

// BenchmarkAblNodeCount sweeps the network size: indexing effectiveness
// must stay flat while substrate hops grow logarithmically.
func BenchmarkAblNodeCount(b *testing.B) {
	for _, nodes := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("%d-nodes", nodes), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = ablRun(b, func(o *sim.Options) { o.Nodes = nodes })
			}
			b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
			b.ReportMetric(m.DHTHopsPerInteraction, "hops/interaction")
		})
	}
}

// BenchmarkAblAdaptiveIndexing compares the cache-based error recovery
// against §IV-C's permanent on-demand index entries.
func BenchmarkAblAdaptiveIndexing(b *testing.B) {
	cases := []struct {
		name     string
		adaptive bool
		policy   cache.Policy
	}{
		{"plain", false, cache.None},
		{"adaptive-indexing", true, cache.None},
		{"single-cache", false, cache.Single},
		{"both", true, cache.Single},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = ablRun(b, func(o *sim.Options) {
					o.AdaptiveIndexing = tc.adaptive
					o.Policy = tc.policy
				})
			}
			b.ReportMetric(float64(m.NonIndexedQueries), "errors")
			b.ReportMetric(m.InteractionsPerQuery, "interactions/query")
		})
	}
}

// BenchmarkAblAvailability measures query success under mass node
// failures with and without successor replication (§IV-D).
func BenchmarkAblAvailability(b *testing.B) {
	for _, repl := range []int{0, 2} {
		for _, frac := range []float64{0.1, 0.3} {
			b.Run(fmt.Sprintf("repl-%d/fail-%.0f%%", repl, 100*frac), func(b *testing.B) {
				var res sim.AvailabilityResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = sim.Availability(sim.Options{
						Nodes:    benchNodes,
						Articles: benchArticles,
						Queries:  benchQueries / 5,
						Scheme:   index.Simple,
						Seed:     benchSeed,
						Corpus:   fig1Corpus(b),
					}, frac, repl)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(100*res.SuccessRate, "%success")
				b.ReportMetric(res.InteractionsPerQuery, "interactions/query")
			})
		}
	}
}
