// Caching: the adaptive distributed cache of §IV-C / §V-D in action.
//
// A skewed (power-law) workload runs against the same database under four
// cache configurations. The demo prints how the hit ratio climbs as
// shortcuts accumulate, how bounded LRU caches trade capacity for hits,
// and where the shortcuts physically live.
//
// Run with: go run ./examples/caching
package main

import (
	"fmt"
	"log"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := dataset.Generate(dataset.Config{Articles: 1500, Seed: 11})
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		pol  cache.Policy
		lru  int
	}{
		{"no cache", cache.None, 0},
		{"multi-cache", cache.Multi, 0},
		{"single-cache", cache.Single, 0},
		{"LRU-10", cache.LRU, 10},
	}
	const totalQueries = 8000
	for _, cfg := range configs {
		net := dht.NewNetwork(11)
		if _, err := net.Populate(80); err != nil {
			return err
		}
		svc := index.New(dht.AsOverlay(net, 1), cfg.pol, cfg.lru)
		for i, a := range corpus.Articles {
			if err := svc.PublishArticle(fmt.Sprintf("f%04d.pdf", i), a, index.Simple); err != nil {
				return err
			}
		}
		gen, err := workload.NewGenerator(corpus.Articles, workload.PaperStructureModel(), 99)
		if err != nil {
			return err
		}
		searcher := index.NewSearcher(svc)

		fmt.Printf("== %s ==\n", cfg.name)
		hits, window := 0, 0
		windowHits := 0
		var interactions int
		for i := 0; i < totalQueries; i++ {
			q := gen.Next()
			trace, err := searcher.Find(q.Query, dataset.MSD(q.Target))
			if err != nil {
				return err
			}
			interactions += trace.Interactions
			if trace.CacheHit {
				hits++
				windowHits++
			}
			window++
			if window == totalQueries/4 {
				fmt.Printf("  after %5d queries: window hit ratio %5.1f%%\n",
					i+1, 100*float64(windowHits)/float64(window))
				window, windowHits = 0, 0
			}
		}
		cs := svc.CacheStats()
		fmt.Printf("  overall: hit ratio %.1f%%, %.2f interactions/query, "+
			"%.1f cached keys/node (max %d, %.0f%% empty)\n\n",
			100*float64(hits)/totalQueries, float64(interactions)/totalQueries,
			cs.MeanKeys, cs.MaxKeys, 100*cs.EmptyFraction)
	}
	return nil
}
