// Churn: the indexed database under node arrivals and departures.
//
// The paper's §IV-D argues that indexes, being regular DHT data, inherit
// the substrate's availability mechanisms. This demo runs an active
// workload while nodes leave gracefully (handing off their keys), join, or
// crash (with successor-list replication protecting the data), and shows
// that lookups keep succeeding throughout.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := dataset.Generate(dataset.Config{Articles: 1000, Seed: 3})
	if err != nil {
		return err
	}
	net := dht.NewNetwork(3)
	net.ReplicationFactor = 2 // protect entries against crashes
	if _, err := net.Populate(64); err != nil {
		return err
	}
	svc := index.New(dht.AsOverlay(net, 1), cache.None, 0)
	for i, a := range corpus.Articles {
		if err := svc.PublishArticle(fmt.Sprintf("f%04d.pdf", i), a, index.Simple); err != nil {
			return err
		}
	}
	gen, err := workload.NewGenerator(corpus.Articles, workload.PaperStructureModel(), 4)
	if err != nil {
		return err
	}
	searcher := index.NewSearcher(svc)

	phases := []struct {
		name  string
		event func(round int) error
	}{
		{"steady state", func(int) error { return nil }},
		{"graceful departures (1/round)", func(round int) error {
			return net.RemoveNode(fmt.Sprintf("node-%04d", round))
		}},
		{"arrivals (1/round)", func(round int) error {
			_, err := net.AddNode(fmt.Sprintf("late-%04d", round))
			return err
		}},
		{"crashes (1/round, replicated)", func(round int) error {
			if err := net.FailNode(fmt.Sprintf("node-%04d", 20+round)); err != nil {
				return err
			}
			net.Stabilize()
			return nil
		}},
	}
	const perPhase = 10
	const queriesPerRound = 200
	for _, phase := range phases {
		ok, fail := 0, 0
		for round := 0; round < perPhase; round++ {
			if err := phase.event(round); err != nil {
				return fmt.Errorf("%s round %d: %w", phase.name, round, err)
			}
			for i := 0; i < queriesPerRound; i++ {
				q := gen.Next()
				if _, err := searcher.Find(q.Query, dataset.MSD(q.Target)); err != nil {
					fail++
				} else {
					ok++
				}
			}
		}
		fmt.Printf("%-32s %d nodes, lookups ok %d / failed %d (%.2f%%)\n",
			phase.name+":", net.Size(), ok, fail, 100*float64(fail)/float64(ok+fail))
	}
	if err := net.VerifyRing(); err != nil {
		return fmt.Errorf("final ring check: %w", err)
	}
	fmt.Println("final ring invariants hold")
	return nil
}
