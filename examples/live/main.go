// Live: the complete stack over a real network.
//
// Boots a Chord ring of message-passing nodes on localhost TCP, layers
// the distributed index on top, publishes the paper's three articles, and
// searches them — every lookup below this program is a real protocol
// exchange (find-successor forwarding, key hand-off on join, stabilize
// rounds), not a simulation step.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"log"
	"time"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/index"
	"dhtindex/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	transport := wire.NewTCPTransport()
	cluster := wire.NewCluster(transport, 1, 0)
	const ringSize = 6
	var bootstrap string
	nodes := make([]*wire.Node, 0, ringSize)
	for i := 0; i < ringSize; i++ {
		n, err := wire.Start(wire.Config{Transport: transport, Addr: "127.0.0.1:0"})
		if err != nil {
			return err
		}
		defer n.Stop()
		if bootstrap == "" {
			bootstrap = n.Addr()
			fmt.Printf("bootstrap node %s (id %s…)\n", n.Addr(), n.ID().Short())
		} else {
			if err := n.Join(bootstrap); err != nil {
				return err
			}
			fmt.Printf("joined    node %s (id %s…)\n", n.Addr(), n.ID().Short())
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	fmt.Print("waiting for ring convergence... ")
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		return err
	}
	fmt.Println("converged")

	svc := index.New(cluster, cache.Single, 0)
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range descriptor.Fig1Articles() {
		if err := svc.PublishArticle(files[i], a, index.Fig4); err != nil {
			return err
		}
	}
	fmt.Println("published the 3 articles of the paper's Figure 1")

	searcher := index.NewSearcher(svc)
	queries := []string{
		"/article/author/last/Smith",
		"/article/conf/INFOCOM",
		"/article/title/Wavelets",
	}
	for _, qs := range queries {
		q, err := dataset.ParseQuery(qs)
		if err != nil {
			return err
		}
		results, trace, err := searcher.SearchAll(q)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s -> %d file(s) in %d interactions (%d DHT hops):\n",
			qs, len(results), trace.Interactions, trace.DHTHops)
		for _, r := range results {
			fmt.Printf("  %s\n", r.File)
		}
	}

	// A node leaves gracefully; the database keeps answering.
	leaving := nodes[2]
	fmt.Printf("\nnode %s leaves gracefully...\n", leaving.Addr())
	if err := leaving.Leave(); err != nil {
		return err
	}
	cluster.Untrack(leaving.Addr())
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		return err
	}
	q, err := dataset.ParseQuery("/article/author/last/Smith")
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		results, _, err := searcher.SearchAll(q)
		if err == nil && len(results) == 2 {
			fmt.Printf("after departure: Smith still resolves to %d files\n", len(results))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("database degraded after departure: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
