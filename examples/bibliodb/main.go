// Bibliodb: a distributed bibliographic database at realistic scale.
//
// It builds a 100-node DHT storing a 2,000-article synthetic corpus under
// the simple indexing scheme (with keyword decoration), then demonstrates
// every way a user can find an article: by author, title, title keyword,
// conference, year, author+title, a misspelled author (fuzzy correction,
// §VI), and — for the author+year combination no scheme indexes — through
// the generalization/specialization fallback of §IV-B. It finishes with
// an automated exhaustive search.
//
// Run with: go run ./examples/bibliodb
package main

import (
	"fmt"
	"log"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/xpath"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// mangle introduces a one-character typo.
func mangle(s string) string {
	if len(s) < 3 {
		return s + "x"
	}
	return s[:2] + s[3:]
}

// lastNameOf extracts the author/last value from a corrected query.
func lastNameOf(q xpath.Query) string {
	for _, vc := range q.ValueConstraints() {
		if len(vc.Path) == 2 && vc.Path[1] == "last" {
			return vc.Value
		}
	}
	return q.String()
}

func run() error {
	corpus, err := dataset.Generate(dataset.Config{Articles: 2000, Seed: 7})
	if err != nil {
		return err
	}
	net := dht.NewNetwork(7)
	if _, err := net.Populate(100); err != nil {
		return err
	}
	svc := index.New(dht.AsOverlay(net, 1), cache.Single, 0)
	svc.EnableVocabulary()
	scheme := index.WithKeywords(index.Simple, 4)
	for i, a := range corpus.Articles {
		if err := svc.PublishArticle(fmt.Sprintf("article-%04d.pdf", i), a, scheme); err != nil {
			return err
		}
	}
	st := svc.StorageStats()
	fmt.Printf("published %d articles on %d nodes: %d index entries (%.1f KB metadata), %.0f entries/node\n\n",
		len(corpus.Articles), net.Size(), st.IndexEntries,
		float64(st.IndexBytes)/1024, st.MeanEntriesPerNode)

	searcher := index.NewSearcher(svc)
	target := corpus.Articles[3]
	msd := dataset.MSD(target)
	fmt.Printf("target article: %q by %s (%s %d)\n\n", target.Title, target.Author(), target.Conf, target.Year)

	lookups := []struct {
		how string
		q   xpath.Query
	}{
		{"author", dataset.AuthorQuery(target.AuthorFirst, target.AuthorLast)},
		{"title", dataset.TitleQuery(target.Title)},
		{"conference", dataset.ConfQuery(target.Conf)},
		{"year", dataset.YearQuery(target.Year)},
		{"author+title", dataset.AuthorTitleQuery(target.AuthorFirst, target.AuthorLast, target.Title)},
		{"author+year (non-indexed!)", dataset.AuthorYearQuery(target.AuthorFirst, target.AuthorLast, target.Year)},
	}
	for _, l := range lookups {
		trace, err := searcher.Find(l.q, msd)
		if err != nil {
			return fmt.Errorf("find by %s: %w", l.how, err)
		}
		note := ""
		if trace.NonIndexed {
			note = "  [recovered via generalization]"
		}
		if trace.CacheHit {
			note += "  [cache hit]"
		}
		fmt.Printf("by %-28s %d interactions, %4d response bytes -> %s%s\n",
			l.how+":", trace.Interactions, trace.ResponseBytes, trace.File, note)
	}

	// Second pass: the single-cache shortcuts now short-circuit.
	fmt.Println("\nsecond pass over the same queries (adaptive cache warm):")
	for _, l := range lookups {
		trace, err := searcher.Find(l.q, msd)
		if err != nil {
			return err
		}
		fmt.Printf("by %-28s %d interactions (hit=%v)\n", l.how+":", trace.Interactions, trace.CacheHit)
	}

	// Keyword search: any title word reaches the article (the "words in
	// title" interface of §V-B).
	words := dataset.TitleWords(target.Title, 4)
	if len(words) > 0 {
		kw := dataset.TitleKeywordQuery(words[0])
		results, ktrace, err := searcher.SearchAll(kw)
		if err != nil {
			return err
		}
		fmt.Printf("\nkeyword %q: %d article(s) in %d interactions\n",
			words[0], len(results), ktrace.Interactions)
	}

	// Fuzzy search: a misspelled author still resolves (§VI future work).
	misspelled := dataset.AuthorQuery(target.AuthorFirst, mangle(target.AuthorLast))
	ftrace, corrected, err := searcher.FindFuzzy(misspelled, msd, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nfuzzy: %q corrected to %q -> %s (%d interactions)\n",
		mangle(target.AuthorLast), lastNameOf(corrected), ftrace.File, ftrace.Interactions)

	// Automated mode: everything this author ever published.
	all, trace, err := searcher.SearchAll(dataset.AuthorQuery(target.AuthorFirst, target.AuthorLast))
	if err != nil {
		return err
	}
	fmt.Printf("\nexhaustive search for author %s: %d articles in %d interactions\n",
		target.Author(), len(all), trace.Interactions)
	for i, r := range all {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(all)-5)
			break
		}
		fmt.Printf("  %s\n", r.File)
	}
	return nil
}
