// Quickstart: the paper's running example (Figures 1-6) end to end.
//
// It builds a small DHT, publishes the three articles of Figure 1 under
// the hierarchical indexing scheme of Figure 4, and then walks the index
// path of §IV-A: starting from q6 = /article/author/last/Smith, the user
// iteratively refines until both of John Smith's papers are retrieved.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"dhtindex/internal/index"
	"dhtindex/internal/xpath"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An 8-node Chord ring is plenty for three articles.
	net := dht.NewNetwork(42)
	if _, err := net.Populate(8); err != nil {
		return err
	}
	svc := index.New(dht.AsOverlay(net, 1), cache.None, 0)

	// Publish d1, d2, d3 (Figure 1) under the Figure 4 scheme.
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range descriptor.Fig1Articles() {
		if err := svc.PublishArticle(files[i], a, index.Fig4); err != nil {
			return err
		}
		fmt.Printf("published %s: %s\n", files[i], dataset.MSD(a))
	}

	// The user knows only the last name: q6 = /article/author/last/Smith.
	q6, err := dataset.ParseQuery("/article/author/last/Smith")
	if err != nil {
		return err
	}
	fmt.Printf("\nuser query q6 = %s\n", q6)

	// Interactive walk: each Lookup is one user-system interaction.
	queries := []xpath.Query{q6}
	for step := 1; len(queries) > 0; step++ {
		fmt.Printf("\n-- interaction round %d --\n", step)
		var next []xpath.Query
		for _, q := range queries {
			resp, err := svc.Lookup(q)
			if err != nil {
				return err
			}
			for _, f := range resp.Files {
				fmt.Printf("  %s  ==> retrieved %s (node %s)\n", q, f, resp.Node)
			}
			for _, r := range resp.Index {
				fmt.Printf("  %s  ->  %s\n", q, r)
				next = append(next, r)
			}
		}
		queries = next
	}

	// The automated mode does the same walk in one call.
	searcher := index.NewSearcher(svc)
	results, trace, err := searcher.SearchAll(q6)
	if err != nil {
		return err
	}
	fmt.Printf("\nautomated search for %s: %d files in %d interactions\n",
		q6, len(results), trace.Interactions)
	for _, r := range results {
		fmt.Printf("  %s\n", r.File)
	}
	return nil
}
