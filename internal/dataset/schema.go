// Package dataset provides the bibliographic application domain of the
// paper's evaluation (§V-A): the descriptor schema of Figure 1, query
// builders for every field combination the indexing schemes and the
// workload use, and a deterministic synthetic corpus generator standing in
// for the DBLP archive (see DESIGN.md, substitution table).
package dataset

import (
	"strconv"
	"strings"

	"dhtindex/internal/descriptor"
	"dhtindex/internal/xpath"
)

// IsLeaf reports whether an element name is a leaf in the bibliographic
// schema; it is the "human input" (§IV-C) that lets the paper-style query
// syntax distinguish values from element names.
func IsLeaf(name string) bool {
	switch name {
	case "first", "last", "title", "conf", "year", "size":
		return true
	}
	return false
}

// ParseQuery parses a paper-style bibliographic query such as
// /article/author/last/Smith or /article[author[first/John][last/Smith]].
func ParseQuery(s string) (xpath.Query, error) {
	return xpath.ParseWithSchema(s, IsLeaf)
}

// LastNameQuery matches all articles whose author has the given last name
// (the paper's q6 shape, and the key of the "Last name" index of Fig. 4).
func LastNameQuery(last string) xpath.Query {
	return xpath.NewBuilder("article").Equal(last, "author", "last").Build()
}

// AuthorQuery matches all articles by the given author (q3 shape; the
// "Author" index key of Fig. 4).
func AuthorQuery(first, last string) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(first, "author", "first").
		Equal(last, "author", "last").
		Build()
}

// TitleQuery matches all articles with the given title (q4 shape).
func TitleQuery(title string) xpath.Query {
	return xpath.NewBuilder("article").Equal(title, "title").Build()
}

// ConfQuery matches all articles published at the given conference (q5).
func ConfQuery(conf string) xpath.Query {
	return xpath.NewBuilder("article").Equal(conf, "conf").Build()
}

// YearQuery matches all articles published in the given year.
func YearQuery(year int) xpath.Query {
	return xpath.NewBuilder("article").Equal(strconv.Itoa(year), "year").Build()
}

// AuthorTitleQuery matches articles by author and title (the "Article"
// index key of Fig. 4).
func AuthorTitleQuery(first, last, title string) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(first, "author", "first").
		Equal(last, "author", "last").
		Equal(title, "title").
		Build()
}

// ConfYearQuery matches the proceedings of a conference edition (the
// "Proceedings" index key of Fig. 4).
func ConfYearQuery(conf string, year int) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(conf, "conf").
		Equal(strconv.Itoa(year), "year").
		Build()
}

// AuthorConfQuery matches articles by an author at a conference (used by
// the complex scheme's split, §V-B).
func AuthorConfQuery(first, last, conf string) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(first, "author", "first").
		Equal(last, "author", "last").
		Equal(conf, "conf").
		Build()
}

// AuthorConfYearQuery matches articles by an author at one conference
// edition (the deepest level of the complex scheme).
func AuthorConfYearQuery(first, last, conf string, year int) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(first, "author", "first").
		Equal(last, "author", "last").
		Equal(conf, "conf").
		Equal(strconv.Itoa(year), "year").
		Build()
}

// AuthorYearQuery matches articles by author and year. No indexing scheme
// indexes this combination, making it the workload's "non-indexed data"
// case (Table I).
func AuthorYearQuery(first, last string, year int) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(first, "author", "first").
		Equal(last, "author", "last").
		Equal(strconv.Itoa(year), "year").
		Build()
}

// TitleYearQuery matches articles by title and year (present in the
// BibFinder log's tail, Fig. 7).
func TitleYearQuery(title string, year int) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(title, "title").
		Equal(strconv.Itoa(year), "year").
		Build()
}

// MSD returns the most specific query for an article.
func MSD(a descriptor.Article) xpath.Query {
	return xpath.MostSpecific(a.Descriptor())
}

// InitialQuery matches all articles whose author's last name starts with
// the given letter — the first-letter substring index of §IV-C ("an index
// with all the files of an author that start with the letter A, B, ...").
// It relies on the dialect's value-prefix constraints ("S*" covers
// "Smith").
func InitialQuery(initial byte) xpath.Query {
	return LastNamePrefixQuery(string(initial))
}

// LastNamePrefixQuery matches articles whose author's last name starts
// with the given prefix (§IV-C substring matching).
func LastNamePrefixQuery(prefix string) xpath.Query {
	return xpath.NewBuilder("article").
		Equal(prefix+"*", "author", "last").
		Build()
}

// TitleKeywordQuery matches articles whose title contains the given word
// — the "words in title" search of the BibFinder/NetBib interfaces
// (§V-B), expressed as a contains-constraint.
func TitleKeywordQuery(word string) xpath.Query {
	return xpath.NewBuilder("article").
		Equal("*"+word+"*", "title").
		Build()
}

// TitleWords splits a title into the keywords worth indexing: words of at
// least minLen letters, stopwords dropped, original casing kept (the
// descriptor model matches values verbatim).
func TitleWords(title string, minLen int) []string {
	var out []string
	seen := map[string]bool{}
	for _, w := range strings.FieldsFunc(title, func(r rune) bool {
		return r == ' ' || r == '-' || r == ',' || r == ':'
	}) {
		if len(w) < minLen || stopwords[strings.ToLower(w)] || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

var stopwords = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "from": true,
	"into": true, "over": true, "under": true, "towards": true,
}
