package dataset

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dhtindex/internal/descriptor"
	"dhtindex/internal/xpath"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Articles: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Articles: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Articles {
		if a.Articles[i] != b.Articles[i] {
			t.Fatalf("article %d differs across same-seed runs", i)
		}
	}
	c, err := Generate(Config{Articles: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Articles {
		if a.Articles[i] == c.Articles[i] {
			same++
		}
	}
	if same == len(a.Articles) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Articles) != 10000 {
		t.Fatalf("default corpus size = %d, want 10000", len(c.Articles))
	}
	if len(c.Authors) != 2500 {
		t.Fatalf("default authors = %d, want 2500", len(c.Authors))
	}
}

func TestGenerateBadConfig(t *testing.T) {
	cases := []Config{
		{Articles: -5},
		{Articles: 10, FirstYear: 2000, LastYear: 1990},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestGenerateFieldSanity(t *testing.T) {
	c, err := Generate(Config{Articles: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	titles := make(map[string]bool, len(c.Articles))
	for i, a := range c.Articles {
		if a.AuthorFirst == "" || a.AuthorLast == "" || a.Title == "" || a.Conf == "" {
			t.Fatalf("article %d has empty field: %+v", i, a)
		}
		if a.Year < 1980 || a.Year > 2003 {
			t.Fatalf("article %d year %d out of range", i, a.Year)
		}
		if a.Size < 1024 {
			t.Fatalf("article %d size %d too small", i, a.Size)
		}
		if titles[a.Title] {
			t.Fatalf("duplicate title %q", a.Title)
		}
		titles[a.Title] = true
		if got := c.Authors[c.AuthorOf[i]]; got.First != a.AuthorFirst || got.Last != a.AuthorLast {
			t.Fatalf("AuthorOf mismatch for article %d", i)
		}
	}
}

func TestArticlesPerAuthorSkewed(t *testing.T) {
	c, err := Generate(Config{Articles: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ArticlesPerAuthor()
	if counts[0] < 3*counts[len(counts)/2] && counts[len(counts)/2] > 0 {
		t.Fatalf("articles-per-author not skewed: top=%d median=%d",
			counts[0], counts[len(counts)/2])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 5000 {
		t.Fatalf("counts sum to %d, want 5000", total)
	}
}

func TestTotalFileBytesNearMean(t *testing.T) {
	c, err := Generate(Config{Articles: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(c.TotalFileBytes()) / 2000
	want := float64(250 << 10)
	if mean < 0.5*want || mean > 2*want {
		t.Fatalf("mean file size %.0f too far from %.0f", mean, want)
	}
}

func TestQueryBuildersMatchGeneratedArticles(t *testing.T) {
	c, err := Generate(Config{Articles: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Articles[:10] {
		d := a.Descriptor()
		queries := []xpath.Query{
			LastNameQuery(a.AuthorLast),
			AuthorQuery(a.AuthorFirst, a.AuthorLast),
			TitleQuery(a.Title),
			ConfQuery(a.Conf),
			YearQuery(a.Year),
			AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title),
			ConfYearQuery(a.Conf, a.Year),
			AuthorConfQuery(a.AuthorFirst, a.AuthorLast, a.Conf),
			AuthorConfYearQuery(a.AuthorFirst, a.AuthorLast, a.Conf, a.Year),
			AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year),
			TitleYearQuery(a.Title, a.Year),
			MSD(a),
			InitialQuery(a.AuthorLast[0]),
			LastNamePrefixQuery(a.AuthorLast[:2]),
		}
		msd := MSD(a)
		for i, q := range queries {
			if !q.Matches(d) {
				t.Errorf("builder %d: %q does not match %+v", i, q, a)
			}
			if !q.Covers(msd) {
				t.Errorf("builder %d: %q does not cover MSD %q", i, q, msd)
			}
		}
	}
}

func TestParseQueryPaperSyntax(t *testing.T) {
	got, err := ParseQuery("/article/author/last/Smith")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(LastNameQuery("Smith")) {
		t.Fatalf("ParseQuery = %q, want %q", got, LastNameQuery("Smith"))
	}
}

func TestMSDUniquePerArticle(t *testing.T) {
	c, err := Generate(Config{Articles: 300, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int, len(c.Articles))
	for i, a := range c.Articles {
		s := MSD(a).String()
		if j, dup := seen[s]; dup {
			t.Fatalf("articles %d and %d share MSD %q", i, j, s)
		}
		seen[s] = i
	}
}

// Property: every generated article's MSD reconstructs the article.
func TestGeneratedMSDRoundTripProperty(t *testing.T) {
	c, err := Generate(Config{Articles: 400, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16) bool {
		a := c.Articles[int(idx)%len(c.Articles)]
		d, err := MSD(a).Descriptor()
		if err != nil {
			return false
		}
		back, err := descriptor.ArticleFromDescriptor(d)
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerSamplerSkew(t *testing.T) {
	s := newPowerSampler(100, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[s.sample(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("power sampler not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 20000 {
		t.Fatal("power sampler degenerate")
	}
}

func TestConfNameUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		name := confName(i)
		if seen[name] {
			t.Fatalf("duplicate conference name %q at %d", name, i)
		}
		seen[name] = true
		if strings.ContainsAny(name, "[]/=") {
			t.Fatalf("conference name %q contains query metacharacters", name)
		}
	}
}
