package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"dhtindex/internal/descriptor"
)

// Config parameterizes the synthetic corpus. Zero fields take defaults
// calibrated against the paper's DBLP statistics (see DESIGN.md).
type Config struct {
	// Articles is the corpus size (paper simulation: 10,000).
	Articles int
	// Authors is the number of distinct authors. DBLP-like corpora have
	// roughly one distinct author per 3-4 articles. Default: Articles/4
	// (min 10).
	Authors int
	// Conferences is the number of distinct venues. Default 60.
	Conferences int
	// FirstYear and LastYear bound the publication years.
	// Default 1980..2003 (the archive snapshot predates 2003).
	FirstYear, LastYear int
	// MeanFileSize is the average article file size in bytes (paper:
	// 250 KB estimated from PostScript/PDF collections).
	MeanFileSize int64
	// ProlificExponent shapes how unevenly articles are spread over
	// authors (articles-per-author follows a power law with this
	// exponent). Default 0.8.
	ProlificExponent float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Articles == 0 {
		c.Articles = 10000
	}
	if c.Authors == 0 {
		c.Authors = c.Articles / 4
		if c.Authors < 10 {
			c.Authors = 10
		}
	}
	if c.Conferences == 0 {
		c.Conferences = 60
	}
	if c.FirstYear == 0 {
		c.FirstYear = 1980
	}
	if c.LastYear == 0 {
		c.LastYear = 2003
	}
	if c.MeanFileSize == 0 {
		c.MeanFileSize = 250 << 10
	}
	if c.ProlificExponent == 0 {
		c.ProlificExponent = 0.8
	}
	return c
}

// ErrBadConfig reports an unusable corpus configuration.
var ErrBadConfig = errors.New("dataset: bad corpus config")

// Corpus is a generated bibliographic database.
type Corpus struct {
	Articles []descriptor.Article
	// AuthorOf[i] is the author index of Articles[i]; Authors lists the
	// distinct (first, last) pairs.
	Authors  []Author
	AuthorOf []int
}

// Author is a distinct (first, last) author name.
type Author struct {
	First, Last string
}

// Generate builds a deterministic synthetic corpus.
//
// Shape calibration (what the evaluation actually depends on):
//   - many articles share an author, with a power-law number of articles
//     per author (so author queries return multi-entry result sets whose
//     sizes are skewed, as with real DBLP author pages);
//   - titles are unique per (author, title) with high probability, so the
//     Article index of Fig. 4 usually maps to a single MSD;
//   - conferences and years are low-cardinality fields, so conference/year
//     queries return large result sets (the flat scheme's worst case).
func Generate(cfg Config) (*Corpus, error) {
	cfg = cfg.withDefaults()
	if cfg.Articles < 1 || cfg.Authors < 1 || cfg.Conferences < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.LastYear < cfg.FirstYear {
		return nil, fmt.Errorf("%w: year range [%d,%d]", ErrBadConfig, cfg.FirstYear, cfg.LastYear)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	authors := make([]Author, cfg.Authors)
	seen := make(map[Author]bool, cfg.Authors)
	for i := range authors {
		for {
			a := Author{First: firstName(rng), Last: lastName(rng)}
			if !seen[a] {
				seen[a] = true
				authors[i] = a
				break
			}
		}
	}

	authorSampler := newPowerSampler(cfg.Authors, cfg.ProlificExponent)
	confs := make([]string, cfg.Conferences)
	for i := range confs {
		confs[i] = confName(i)
	}

	c := &Corpus{
		Articles: make([]descriptor.Article, cfg.Articles),
		Authors:  authors,
		AuthorOf: make([]int, cfg.Articles),
	}
	usedTitle := make(map[string]bool, cfg.Articles)
	years := cfg.LastYear - cfg.FirstYear + 1
	titleSeq := 0
	for i := range c.Articles {
		ai := authorSampler.sample(rng)
		// Keep titles globally unique: real titles collide essentially
		// never, and uniqueness makes result-set audits exact. The word
		// pools are finite, so after a few random draws fall back to a
		// deterministic "Part N" suffix.
		title := titleWords(rng)
		for attempt := 0; usedTitle[title]; attempt++ {
			if attempt < 3 {
				title = titleWords(rng)
			} else {
				titleSeq++
				title = titleWords(rng) + " Part " + strconv.Itoa(titleSeq)
			}
		}
		usedTitle[title] = true
		size := int64(float64(cfg.MeanFileSize) * math.Exp(rng.NormFloat64()*0.5-0.125))
		if size < 1024 {
			size = 1024
		}
		c.Articles[i] = descriptor.Article{
			AuthorFirst: authors[ai].First,
			AuthorLast:  authors[ai].Last,
			Title:       title,
			Conf:        confs[rng.Intn(len(confs))],
			Year:        cfg.FirstYear + rng.Intn(years),
			Size:        size,
		}
		c.AuthorOf[i] = ai
	}
	return c, nil
}

// ArticlesPerAuthor returns the sorted (descending) count of articles per
// author, for distribution diagnostics.
func (c *Corpus) ArticlesPerAuthor() []int {
	counts := make([]int, len(c.Authors))
	for _, ai := range c.AuthorOf {
		counts[ai]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}

// TotalFileBytes sums the article file sizes — the paper's 29.1 GB figure
// for the full archive, scaled to the corpus.
func (c *Corpus) TotalFileBytes() int64 {
	var total int64
	for _, a := range c.Articles {
		total += a.Size
	}
	return total
}

// powerSampler draws indexes in [0, n) with P(i) ∝ 1/(i+1)^exp using
// inverse-CDF sampling over the precomputed cumulative weights.
type powerSampler struct {
	cum []float64
}

func newPowerSampler(n int, exp float64) *powerSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exp)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &powerSampler{cum: cum}
}

func (s *powerSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(s.cum, u)
}
