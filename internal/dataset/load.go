package dataset

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"dhtindex/internal/descriptor"
)

// ErrNoArticles is returned when the input stream holds no article
// elements.
var ErrNoArticles = errors.New("dataset: no articles in input")

// LoadCorpus reads a DBLP-style XML stream — a sequence of <article>
// elements, optionally wrapped in a container element such as <dblp> —
// into a Corpus. It is the inverse of cmd/dbgen's output and the entry
// point for feeding real bibliographic data into the system.
//
// Unknown elements are skipped; malformed article elements abort with a
// positioned error. Author bookkeeping (Corpus.Authors / AuthorOf) is
// reconstructed from the loaded records.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	dec := xml.NewDecoder(r)
	c := &Corpus{}
	authorIdx := make(map[Author]int)
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: load: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != "article" {
			continue
		}
		a, err := decodeArticle(dec, &start)
		if err != nil {
			return nil, err
		}
		author := Author{First: a.AuthorFirst, Last: a.AuthorLast}
		idx, seen := authorIdx[author]
		if !seen {
			idx = len(c.Authors)
			authorIdx[author] = idx
			c.Authors = append(c.Authors, author)
		}
		c.Articles = append(c.Articles, a)
		c.AuthorOf = append(c.AuthorOf, idx)
	}
	if len(c.Articles) == 0 {
		return nil, ErrNoArticles
	}
	return c, nil
}

// LoadCorpusString is LoadCorpus over a string.
func LoadCorpusString(s string) (*Corpus, error) {
	return LoadCorpus(strings.NewReader(s))
}

// decodeArticle parses one <article> subtree through the descriptor
// layer, inheriting its normalization and validation.
func decodeArticle(dec *xml.Decoder, start *xml.StartElement) (descriptor.Article, error) {
	var raw struct {
		Author struct {
			First string `xml:"first"`
			Last  string `xml:"last"`
		} `xml:"author"`
		Title string `xml:"title"`
		Conf  string `xml:"conf"`
		Year  int    `xml:"year"`
		Size  int64  `xml:"size"`
	}
	if err := dec.DecodeElement(&raw, start); err != nil {
		return descriptor.Article{}, fmt.Errorf("dataset: article: %w", err)
	}
	a := descriptor.Article{
		AuthorFirst: strings.TrimSpace(raw.Author.First),
		AuthorLast:  strings.TrimSpace(raw.Author.Last),
		Title:       strings.TrimSpace(raw.Title),
		Conf:        strings.TrimSpace(raw.Conf),
		Year:        raw.Year,
		Size:        raw.Size,
	}
	if a.AuthorLast == "" || a.Title == "" {
		return descriptor.Article{}, fmt.Errorf("dataset: article missing author/title: %+v", a)
	}
	// Round-trip through the descriptor layer to reject records the rest
	// of the system could not represent.
	if _, err := descriptor.ArticleFromDescriptor(a.Descriptor()); err != nil {
		return descriptor.Article{}, fmt.Errorf("dataset: article invalid: %w", err)
	}
	return a, nil
}
