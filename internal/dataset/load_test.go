package dataset

import (
	"errors"
	"strings"
	"testing"
)

const sampleXML = `<dblp>
<article>
  <author><first>John</first><last>Smith</last></author>
  <title>TCP</title>
  <conf>SIGCOMM</conf>
  <year>1989</year>
  <size>315635</size>
</article>
<article>
  <author><first>John</first><last>Smith</last></author>
  <title>IPv6</title>
  <conf>INFOCOM</conf>
  <year>1996</year>
  <size>312352</size>
</article>
<article>
  <author><first>Alan</first><last>Doe</last></author>
  <title>Wavelets</title>
  <conf>INFOCOM</conf>
  <year>1996</year>
  <size>259827</size>
</article>
</dblp>`

func TestLoadCorpus(t *testing.T) {
	c, err := LoadCorpusString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Articles) != 3 {
		t.Fatalf("articles = %d", len(c.Articles))
	}
	if len(c.Authors) != 2 {
		t.Fatalf("authors = %v", c.Authors)
	}
	if c.AuthorOf[0] != c.AuthorOf[1] || c.AuthorOf[0] == c.AuthorOf[2] {
		t.Fatalf("author bookkeeping wrong: %v", c.AuthorOf)
	}
	if c.Articles[0].Title != "TCP" || c.Articles[0].Size != 315635 {
		t.Fatalf("first article = %+v", c.Articles[0])
	}
}

func TestLoadCorpusWithoutWrapper(t *testing.T) {
	one := `<article>
  <author><first>A</first><last>B</last></author>
  <title>T</title><conf>C</conf><year>2000</year><size>1</size>
</article>`
	c, err := LoadCorpusString(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Articles) != 1 {
		t.Fatalf("articles = %d", len(c.Articles))
	}
}

func TestLoadCorpusSkipsUnknownElements(t *testing.T) {
	mixed := `<dblp>
<proceedings><title>ignored</title></proceedings>
<article>
  <author><first>A</first><last>B</last></author>
  <title>T</title><conf>C</conf><year>2000</year><size>1</size>
  <note>extra field is fine</note>
</article>
</dblp>`
	c, err := LoadCorpusString(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Articles) != 1 {
		t.Fatalf("articles = %d", len(c.Articles))
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no-articles":  "<dblp><misc>x</misc></dblp>",
		"missing-last": "<article><title>T</title><conf>C</conf><year>2000</year><size>1</size></article>",
		"bad-xml":      "<dblp><article><title>T</dblp>",
	}
	for name, in := range cases {
		if _, err := LoadCorpusString(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadCorpusString("<dblp></dblp>"); !errors.Is(err, ErrNoArticles) {
		t.Errorf("want ErrNoArticles, got %v", err)
	}
}

// TestLoadCorpusRoundTripsGenerator: dbgen's XML output reloads into the
// identical article list.
func TestLoadCorpusRoundTripsGenerator(t *testing.T) {
	gen, err := Generate(Config{Articles: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("<dblp>\n")
	for _, a := range gen.Articles {
		sb.WriteString(a.Descriptor().XML())
	}
	sb.WriteString("</dblp>\n")
	loaded, err := LoadCorpusString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Articles) != len(gen.Articles) {
		t.Fatalf("loaded %d, want %d", len(loaded.Articles), len(gen.Articles))
	}
	// The descriptor layer normalizes element order, so compare as sets
	// of canonical MSDs.
	want := map[string]bool{}
	for _, a := range gen.Articles {
		want[MSD(a).String()] = true
	}
	for _, a := range loaded.Articles {
		if !want[MSD(a).String()] {
			t.Fatalf("loaded article not in generated set: %+v", a)
		}
	}
}
