package dataset

import (
	"math/rand"
	"strconv"
)

// Name material for the synthetic corpus. The pools are large enough that
// (first, last) pairs rarely collide before the generator's uniqueness
// loop intervenes, and string lengths resemble real bibliographic data so
// that the byte-level traffic and storage measurements are realistic.

var firstNames = []string{
	"John", "Alan", "Mary", "Susan", "David", "Peter", "Laura", "James",
	"Linda", "Robert", "Karen", "Thomas", "Nancy", "Daniel", "Carol",
	"Mark", "Ruth", "Paul", "Anna", "Steven", "Li", "Wei", "Jun", "Yan",
	"Akira", "Yuki", "Hans", "Greta", "Pierre", "Marie", "Luigi", "Sofia",
	"Pablo", "Lucia", "Ivan", "Olga", "Lars", "Ingrid", "Miguel", "Elena",
}

var lastNames = []string{
	"Smith", "Doe", "Johnson", "Williams", "Brown", "Jones", "Miller",
	"Davis", "Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson",
	"Taylor", "Thomas", "Moore", "Jackson", "Martin", "Lee", "Thompson",
	"White", "Harris", "Clark", "Lewis", "Robinson", "Walker", "Young",
	"Allen", "King", "Wright", "Chen", "Wang", "Zhang", "Liu", "Yang",
	"Tanaka", "Suzuki", "Sato", "Mueller", "Schmidt", "Schneider",
	"Fischer", "Weber", "Rossi", "Ferrari", "Dubois", "Moreau", "Ivanov",
	"Petrov", "Andersson",
}

var titleAdjectives = []string{
	"Scalable", "Distributed", "Adaptive", "Efficient", "Robust",
	"Dynamic", "Optimal", "Parallel", "Secure", "Reliable", "Fast",
	"Hierarchical", "Decentralized", "Incremental", "Approximate",
	"Lightweight", "Fault-Tolerant", "Self-Organizing", "Hybrid",
	"Probabilistic",
}

var titleNouns = []string{
	"Routing", "Indexing", "Caching", "Lookup", "Storage", "Replication",
	"Scheduling", "Consensus", "Multicast", "Aggregation", "Search",
	"Naming", "Clustering", "Recovery", "Placement", "Balancing",
	"Streaming", "Coding", "Sampling", "Filtering",
}

var titleDomains = []string{
	"Peer-to-Peer Systems", "Overlay Networks", "Sensor Networks",
	"Wide-Area Networks", "Content Networks", "Mobile Systems",
	"Web Services", "Grid Computing", "Ad-Hoc Networks",
	"Distributed Databases", "File Systems", "the Internet",
	"Wireless Networks", "Cluster Computing", "Storage Systems",
	"Multimedia Systems", "Pervasive Computing", "Data Centers",
	"Publish-Subscribe Systems", "Hash Tables",
}

var confStems = []string{
	"SIGCOMM", "INFOCOM", "ICDCS", "SOSP", "OSDI", "NSDI", "PODC",
	"SPAA", "ICNP", "IPTPS", "MIDDLEWARE", "EUROSYS", "USENIX", "VLDB",
	"SIGMOD", "ICDE", "WWW", "HPDC", "ICPP", "IPDPS",
}

func firstName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))]
}

// lastName draws a base surname and, with some probability, appends a
// deterministic suffix so that the surname pool is effectively unbounded
// while staying homonym-rich (many authors share a surname, exercising the
// Last-name index of Fig. 4).
func lastName(rng *rand.Rand) string {
	base := lastNames[rng.Intn(len(lastNames))]
	if rng.Float64() < 0.3 {
		return base + "-" + lastNames[rng.Intn(len(lastNames))]
	}
	return base
}

func titleWords(rng *rand.Rand) string {
	return titleAdjectives[rng.Intn(len(titleAdjectives))] + " " +
		titleNouns[rng.Intn(len(titleNouns))] + " in " +
		titleDomains[rng.Intn(len(titleDomains))]
}

// confName deterministically names the i-th venue: the first venues get
// real-looking stems, later ones numbered variants.
func confName(i int) string {
	if i < len(confStems) {
		return confStems[i]
	}
	return confStems[i%len(confStems)] + "-W" + strconv.Itoa(i/len(confStems))
}
