package wire

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// SoakConfig parameterizes a churn soak: a live ring run under a seeded
// schedule of drops, latency, partitions and crashes while write-once
// index entries are continuously written and read back. The zero value
// gets production-shaped defaults (16 nodes, 10% drop, 50ms latency,
// one crash per 100 ops, one partition/heal cycle).
type SoakConfig struct {
	// Nodes is the ring size (default 16).
	Nodes int
	// Ops is the number of write-once entries put during the storm
	// (default 150). Each op also reads back a previously-acked key.
	Ops int
	// Seed drives the fault schedule and all random choices.
	Seed int64
	// DropProb is the per-message loss probability (default 0.10).
	DropProb float64
	// Latency is the injected delay when a latency fault fires
	// (default 50ms).
	Latency time.Duration
	// LatencyProb is the probability of injecting Latency per message
	// (default 0.15).
	LatencyProb float64
	// CrashEvery crashes one node per this many ops (default 100).
	CrashEvery int
	// PartitionAt is the op index where an adjacent pair of nodes is
	// partitioned (default Ops/3; negative disables partitions);
	// PartitionLen ops later it heals (default Ops/5).
	PartitionAt  int
	PartitionLen int
	// PartitionWidth, when > 0, turns the partition episode into a GROUP
	// partition: a contiguous arc of PartitionWidth ring-ordered members
	// is cut from the rest of the ring in both directions, so the two
	// sides stabilize into independent rings (split brain). Healing uses
	// targeted HealLink calls over the cut pairs, and re-convergence
	// afterwards requires the merge coordinator — plain stabilization
	// cannot bridge two complete rings. While a group episode is active
	// the crash/leave/restart schedules pause (those scenarios compose
	// elsewhere; here the episode itself is the subject under test).
	// 0 keeps the legacy adjacent-pair cut.
	PartitionWidth int
	// RemoveEvery, when > 0, removes one previously-acked entry through
	// the cluster every RemoveEvery storm ops. Removed entries leave the
	// loss check and are instead held to the anti-resurrection check:
	// after the storm no live node may still serve them. Removes issued
	// during a split-brain episode land on one side only — the merge and
	// the tombstone exchange must keep them deleted ring-wide.
	RemoveEvery int
	// ReplicationFactor for the ring (default 2).
	ReplicationFactor int
	// StabilizeInterval for the ring (default 25ms).
	StabilizeInterval time.Duration
	// Retry is the RPC retry policy every node and the cluster use
	// (defaults applied if zero).
	Retry RetryPolicy
	// Transport, when set, is the base transport the soak runs over
	// (wrapped in the fault and retry layers); nil uses a fresh
	// MemTransport. Set a TCPTransport to soak the pooled TCP fast path
	// under the same churn schedule.
	Transport Transport
	// ListenAddr is the listen address members bind ("mem:0" by default;
	// "127.0.0.1:0" for a TCP transport). Restarting members always
	// rebind their original concrete address.
	ListenAddr string
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
	// Telemetry, when non-nil, receives the run's registry series: the
	// injected-fault counters, fleet-wide retry counters, the cluster's
	// failover counters, the hop and RPC-latency histograms, and a
	// wire_ring_nodes gauge tracking the live ring size.
	Telemetry *telemetry.Registry
	// Setup, when set, runs after the ring has converged and before the
	// storm starts — e.g. to publish an indexed corpus over the live ring
	// (internal/soak layers the paper's index workload through it).
	Setup func(c *Cluster) error
	// OnOp, when set, runs once per storm op after the op's own put and
	// read-back — e.g. to drive indexed lookups through the faulted ring.
	OnOp func(op int, c *Cluster)
	// JoinEvery, when > 0, starts and joins a fresh node every JoinEvery
	// storm ops — the repair loop must make newcomers readable replicas,
	// not just tolerate departures.
	JoinEvery int
	// LeaveEvery, when > 0, gracefully Leaves one live node every
	// LeaveEvery storm ops (on top of the crash schedule).
	LeaveEvery int
	// Breaker, when non-nil, arms the per-peer circuit breaker on every
	// retry transport in the run (the cluster's and each node's).
	Breaker *BreakerPolicy
	// Admission, when non-nil, arms per-node admission control: every
	// member bounds its inflight and queued work and sheds the excess
	// with ErrOverload instead of queueing without bound.
	Admission *AdmissionConfig
	// VerifyReplicas, when true, additionally holds the ring to full
	// replica convergence after the storm: every acked key must settle
	// at exactly min(ReplicationFactor+1, live) physical copies across
	// the live nodes' local stores. Violations are reported in
	// ReplicaViolations.
	VerifyReplicas bool
	// PostStorm, when set, runs after the storm has healed, the ring
	// re-converged and all verification passed — e.g. to probe degraded
	// lookups against freshly crash-stopped nodes. Its error is returned
	// as the run's error.
	PostStorm func(c *Cluster, ft *FaultTransport) error

	// StoreFor, when set, supplies each member's Store by its stable
	// member index — the hook that makes the soak's nodes durable (the
	// caller typically opens internal/wire/durable stores in per-index
	// directories). A restarting member re-invokes StoreFor with the
	// SAME index, so the implementation must return a fresh handle onto
	// the same underlying data. Nil members fall back to MemStore.
	StoreFor func(member int) (Store, error)
	// RestartEvery, when > 0, crash-restarts a burst of ring-adjacent
	// members every RestartEvery storm ops: each is crash-stopped (no
	// handoff) KEEPING its data directory, sits out RestartDowntime ops,
	// then reopens its store, restarts on the same address — reclaiming
	// its ring ID — and rejoins. With RestartBurst covering a whole
	// replica set, the burst's key ranges survive only if the durable
	// store brings them back.
	RestartEvery int
	// RestartBurst is how many adjacent members each restart event takes
	// down (default ReplicationFactor+1 — a full replica set).
	RestartBurst int
	// RestartDowntime is how many ops a restarted member stays down
	// (default 15).
	RestartDowntime int

	// ConvergeTimeout bounds the WaitConverged calls at ring formation
	// and after the storm (default 30s).
	ConvergeTimeout time.Duration
	// ReadbackTimeout bounds the post-storm probe that re-reads every
	// acked key (default 30s).
	ReadbackTimeout time.Duration
	// ReplicaVerifyTimeout bounds the VerifyReplicas convergence hold
	// (default 45s).
	ReplicaVerifyTimeout time.Duration
	// PutRetries is the op-level put retry budget on top of RPC retries
	// (default 8).
	PutRetries int
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Ops == 0 {
		c.Ops = 150
	}
	if c.DropProb == 0 {
		c.DropProb = 0.10
	}
	if c.Latency == 0 {
		c.Latency = 50 * time.Millisecond
	}
	if c.LatencyProb == 0 {
		c.LatencyProb = 0.15
	}
	if c.CrashEvery == 0 {
		c.CrashEvery = 100
	}
	if c.PartitionAt == 0 {
		c.PartitionAt = c.Ops / 3
	}
	if c.PartitionLen == 0 {
		c.PartitionLen = c.Ops / 5
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	if c.StabilizeInterval == 0 {
		c.StabilizeInterval = 25 * time.Millisecond
	}
	if c.RestartBurst == 0 {
		c.RestartBurst = c.ReplicationFactor + 1
	}
	if c.RestartDowntime == 0 {
		c.RestartDowntime = 15
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 30 * time.Second
	}
	if c.ReadbackTimeout == 0 {
		c.ReadbackTimeout = 30 * time.Second
	}
	if c.ReplicaVerifyTimeout == 0 {
		c.ReplicaVerifyTimeout = 45 * time.Second
	}
	if c.PutRetries == 0 {
		c.PutRetries = 8
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "mem:0"
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// PartitionEpisode records one partition window of a soak run.
type PartitionEpisode struct {
	// StartOp is the storm op index where the cut was made.
	StartOp int
	// HealOp is the op index where it healed (-1 when the episode was
	// still open at storm end and the global heal closed it).
	HealOp int
	// SideA and SideB are the side sizes (1 and 1 for the legacy
	// adjacent-pair cut).
	SideA int
	SideB int
}

// SoakReport is the outcome of a soak run: what was injected, what the
// retry layer absorbed, and whether the ring kept its promises.
type SoakReport struct {
	// Faults is what the FaultTransport injected.
	Faults FaultStats
	// Retry is the fleet-wide retry work (all nodes + the cluster).
	Retry RetryStats
	// Repair is the fleet-wide anti-entropy repair work.
	Repair RepairStats
	// Breaker is the fleet-wide circuit-breaker work (zero when no
	// breaker policy was configured).
	Breaker BreakerStats
	// Cluster is the adapter's failover accounting.
	Cluster ClusterMetrics

	// Acked is the number of write-once entries whose Put succeeded;
	// only these are held against the ring at verification.
	Acked int
	// PutFailures counts puts that failed even with op-level retries.
	PutFailures int
	// ChaosReads / ChaosReadFailures count the read-backs issued during
	// the storm (failures there are tolerated; the storm is still on).
	ChaosReads        int
	ChaosReadFailures int
	// Crashes and Partitions count the schedule's executed events.
	Crashes    int
	Partitions int
	// Episodes records each executed partition episode's window and side
	// sizes.
	Episodes []PartitionEpisode
	// Removes and RemoveFailures count the remove schedule's executed
	// and failed removals (RemoveEvery > 0). A failed remove is
	// ambiguous — a tombstone may or may not have been planted — so its
	// key is excluded from both the loss and the resurrection checks.
	Removes        int
	RemoveFailures int
	// Resurrections lists removed entries some live node still served
	// after the storm settled — must be empty: a resurrection means a
	// stale replica re-propagated a deleted entry past its tombstone.
	Resurrections []string
	// Merges is the fleet-wide ring-merge work (probes, detections,
	// coordinated rejoins).
	Merges MergeStats
	// Tombstones is the fleet-wide deletion-record work.
	Tombstones TombstoneStats
	// Joins and Leaves count the churn schedule's executed member
	// additions and graceful departures.
	Joins  int
	Leaves int
	// Restarts counts members crash-restarted from their data directory
	// (RestartEvery schedule).
	Restarts int
	// Recovery aggregates what the restarted members' durable stores
	// replayed (zero without StoreFor).
	Recovery RecoveryStats
	// Converged reports whether the surviving ring re-converged to the
	// ideal successor cycle after the storm.
	Converged bool
	// LostKeys lists acked write-once keys that could not be read back
	// after the storm — must be empty with replication ≥ 1.
	LostKeys []string
	// ReplicaViolations lists acked keys whose physical copy count never
	// settled at the expected replica count (VerifyReplicas only).
	ReplicaViolations []string
	// SurvivingNodes is the ring size after the storm.
	SurvivingNodes int
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// RetryAmplification is wire sends per logical RPC across the fleet.
func (r SoakReport) RetryAmplification() float64 { return r.Retry.Amplification() }

// RunSoak executes the churn soak and reports what happened. The error
// is non-nil only for harness failures (a node refusing to boot); ring
// misbehaviour — lost entries, failed convergence — is reported in the
// SoakReport for the caller to judge.
func RunSoak(cfg SoakConfig) (SoakReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	var report SoakReport

	base := cfg.Transport
	if base == nil {
		base = NewMemTransport()
	}
	ft := NewFaultTransport(base, cfg.Seed)
	schedule := rand.New(rand.NewSource(cfg.Seed + 1))
	policy := cfg.Retry.withDefaults()
	policy.Seed = cfg.Seed + 2
	policy.Breaker = cfg.Breaker

	cluster := NewCluster(NewRetryingTransport(ft, policy), cfg.Seed+3, cfg.ReplicationFactor)

	// startMember boots one member. Each member has a stable index that
	// survives restarts — it keys StoreFor, so a revived member reopens
	// the same data directory. addr is cfg.ListenAddr for a fresh member
	// or the previous address for a restart (same address ⇒ same ring ID).
	startMember := func(idx int, addr string) (*Node, Store, error) {
		var st Store
		if cfg.StoreFor != nil {
			var err error
			if st, err = cfg.StoreFor(idx); err != nil {
				return nil, nil, fmt.Errorf("soak: store for member %d: %w", idx, err)
			}
		}
		p := policy
		p.Seed = cfg.Seed + 10 + int64(idx)
		n, err := Start(Config{
			Transport:         ft.Endpoint(),
			Addr:              addr,
			StabilizeInterval: cfg.StabilizeInterval,
			ReplicationFactor: cfg.ReplicationFactor,
			Retry:             &p,
			SuccFailThreshold: 2,
			Admission:         cfg.Admission,
			Store:             st,
		})
		if err != nil && st != nil {
			_ = st.Close()
		}
		return n, st, err
	}

	// Boot and converge the ring on a clean network: the soak measures
	// survival under faults, not formation under faults (joins retried
	// under loss are a separate scenario the retry layer also covers).
	nodes := make([]*Node, 0, cfg.Nodes)
	alive := make(map[string]*Node, cfg.Nodes)
	memberIdx := make(map[string]int, cfg.Nodes)
	nextIdx := 0
	var bootstrap string
	for i := 0; i < cfg.Nodes; i++ {
		n, _, err := startMember(nextIdx, cfg.ListenAddr)
		if err != nil {
			return report, fmt.Errorf("soak: start node %d: %w", i, err)
		}
		memberIdx[n.Addr()] = nextIdx
		nextIdx++
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			return report, fmt.Errorf("soak: join node %d: %w", i, err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
		alive[n.Addr()] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	var aliveCount atomic.Int64
	aliveCount.Store(int64(len(alive)))
	if cfg.Telemetry != nil {
		ft.Instrument(cfg.Telemetry)
		cluster.Instrument(cfg.Telemetry)
		if rt, ok := cluster.transport.(*RetryingTransport); ok {
			rt.Instrument(cfg.Telemetry)
		}
		for _, n := range nodes {
			n.Instrument(cfg.Telemetry)
		}
		cfg.Telemetry.GaugeFunc("wire_ring_nodes",
			"Live nodes in the soak ring.",
			func() float64 { return float64(aliveCount.Load()) })
	}
	if err := cluster.WaitConverged(cfg.ConvergeTimeout); err != nil {
		return report, fmt.Errorf("soak: ring never formed: %w", err)
	}
	if cfg.Setup != nil {
		if err := cfg.Setup(cluster); err != nil {
			return report, fmt.Errorf("soak: setup: %w", err)
		}
	}
	cfg.Log("soak: ring of %d converged, starting storm (drop=%.0f%%, latency=%v@%.0f%%)",
		cfg.Nodes, 100*cfg.DropProb, cfg.Latency, 100*cfg.LatencyProb)

	// Storm on.
	ft.SetDefaultRule(FaultRule{
		DropProb:    cfg.DropProb,
		Latency:     cfg.Latency,
		LatencyProb: cfg.LatencyProb,
	})

	// Crash-restart bookkeeping: members taken down with their data
	// directory intact, waiting out their downtime before revival.
	type downedMember struct {
		addr     string
		idx      int
		reviveAt int
	}
	var downed []downedMember

	// revive restarts one downed member on its old address (reclaiming
	// its ring ID) and rejoins it. Returns false when the join drowned in
	// the storm; the caller re-queues the member for a later attempt.
	revive := func(d downedMember) (bool, error) {
		ft.Restore(d.addr)
		n, st, err := startMember(d.idx, d.addr)
		if err != nil {
			return false, err
		}
		joined := false
		ring := cluster.Addrs()
		for try := 0; try < 3 && !joined && len(ring) > 0; try++ {
			boot := ring[schedule.Intn(len(ring))]
			joined = n.Join(boot) == nil
		}
		if !joined {
			n.Stop() // closes the store; the retry reopens it
			return false, nil
		}
		cluster.Track(d.addr)
		nodes = append(nodes, n)
		alive[d.addr] = n
		aliveCount.Store(int64(len(alive)))
		if cfg.Telemetry != nil {
			n.Instrument(cfg.Telemetry)
		}
		if rc, ok := st.(RecoverableStore); ok {
			report.Recovery.Merge(rc.RecoveryStats())
		}
		report.Restarts++
		return true, nil
	}

	var acked []string
	ackedEntry := make(map[string]overlay.Entry)
	type removedPair struct {
		key   string
		entry overlay.Entry
	}
	var removed []removedPair
	partitioned := false
	var partA, partB string
	var groupA, groupB []string
	for op := 0; op < cfg.Ops; op++ {
		// While a group partition is open, pause member churn: a node
		// revived or joined mid-episode sits outside both blocked sides
		// and would bridge the rings, short-circuiting the merge the
		// episode exists to exercise.
		groupOpen := len(groupA) > 0
		// Revive downed members whose downtime has elapsed. A failed
		// rejoin re-queues the member a few ops out — its data directory
		// is durable, so nothing is lost by waiting.
		for i := 0; i < len(downed) && !groupOpen; {
			d := downed[i]
			if d.reviveAt > op {
				i++
				continue
			}
			ok, err := revive(d)
			if err != nil {
				return report, err
			}
			if ok {
				downed = append(downed[:i], downed[i+1:]...)
				cfg.Log("soak: op %d: restarted %s from its data dir (%d nodes)", op, d.addr, len(alive))
			} else {
				downed[i].reviveAt = op + 5
				cfg.Log("soak: op %d: restart of %s drowned in the storm; retrying", op, d.addr)
				i++
			}
		}
		// Crash-restart schedule: take down a run of ring-adjacent
		// members — a whole replica set when RestartBurst ≥ R+1 — keeping
		// their data directories. Until they return, their key ranges
		// live only on disk (plus whatever replicas survive outside the
		// burst), which is exactly the property under test.
		if cfg.RestartEvery > 0 && op > 0 && op%cfg.RestartEvery == 0 && !groupOpen {
			ring := cluster.Addrs()
			if len(ring) >= cfg.RestartBurst+2 {
				at := schedule.Intn(len(ring))
				for b := 0; b < cfg.RestartBurst; b++ {
					addr := ring[(at+b)%len(ring)]
					n, ok := alive[addr]
					if !ok || addr == partA || addr == partB {
						continue
					}
					ft.Crash(addr)
					n.Stop()
					cluster.Untrack(addr)
					delete(alive, addr)
					aliveCount.Store(int64(len(alive)))
					downed = append(downed, downedMember{addr: addr, idx: memberIdx[addr], reviveAt: op + cfg.RestartDowntime})
					cfg.Log("soak: op %d: crash-restarting %s (down for %d ops, %d nodes left)",
						op, addr, cfg.RestartDowntime, len(alive))
				}
			}
		}
		// Fault schedule first, so writes land on the faulted topology.
		if op > 0 && op%cfg.CrashEvery == 0 && len(alive) > cfg.Nodes/2 && !groupOpen {
			victim := pickVictim(schedule, cluster.Addrs(), alive, partA, partB)
			if victim != nil {
				ft.Crash(victim.Addr())
				victim.Stop()
				cluster.Untrack(victim.Addr())
				delete(alive, victim.Addr())
				aliveCount.Store(int64(len(alive)))
				report.Crashes++
				cfg.Log("soak: op %d: crashed %s (%d nodes left)", op, victim.Addr(), len(alive))
			}
		}
		if op == cfg.PartitionAt && len(alive) >= 4 {
			if cfg.PartitionWidth > 0 {
				groupA, groupB = splitArc(schedule, cluster.Addrs(), cfg.PartitionWidth)
				if len(groupA) > 0 {
					ft.PartitionGroups(groupA, groupB)
					partitioned = true
					report.Partitions++
					report.Episodes = append(report.Episodes, PartitionEpisode{
						StartOp: op, HealOp: -1, SideA: len(groupA), SideB: len(groupB)})
					cfg.Log("soak: op %d: group partition %d|%d nodes", op, len(groupA), len(groupB))
				}
			} else {
				partA, partB = adjacentPair(schedule, cluster.Addrs())
				if partA != "" {
					ft.Partition(partA, partB)
					partitioned = true
					report.Partitions++
					report.Episodes = append(report.Episodes, PartitionEpisode{
						StartOp: op, HealOp: -1, SideA: 1, SideB: 1})
					cfg.Log("soak: op %d: partitioned %s <-> %s", op, partA, partB)
				}
			}
		}
		if partitioned && op == cfg.PartitionAt+cfg.PartitionLen {
			// Heal by cut pair, not globally: the episode must not quietly
			// restore links the crash schedule severed.
			if len(groupA) > 0 {
				for _, a := range groupA {
					for _, b := range groupB {
						ft.HealLink(a, b)
					}
				}
				groupA, groupB = nil, nil
			} else {
				ft.HealLink(partA, partB)
			}
			partitioned = false
			report.Episodes[len(report.Episodes)-1].HealOp = op
			cfg.Log("soak: op %d: partition healed", op)
		}
		if cfg.JoinEvery > 0 && op > 0 && op%cfg.JoinEvery == 0 && !groupOpen {
			n, _, err := startMember(nextIdx, cfg.ListenAddr)
			if err != nil {
				return report, fmt.Errorf("soak: op %d: start joiner: %w", op, err)
			}
			memberIdx[n.Addr()] = nextIdx
			nextIdx++
			// Joins happen under the storm, so a bootstrap attempt can fail
			// end-to-end even with RPC retries; try a few live members.
			joined := false
			ring := cluster.Addrs()
			for try := 0; try < 3 && !joined; try++ {
				boot := ring[schedule.Intn(len(ring))]
				joined = n.Join(boot) == nil
			}
			if joined {
				cluster.Track(n.Addr())
				nodes = append(nodes, n)
				alive[n.Addr()] = n
				aliveCount.Store(int64(len(alive)))
				if cfg.Telemetry != nil {
					n.Instrument(cfg.Telemetry)
				}
				report.Joins++
				cfg.Log("soak: op %d: joined %s (%d nodes)", op, n.Addr(), len(alive))
			} else {
				n.Stop()
				cfg.Log("soak: op %d: join attempt drowned in the storm", op)
			}
		}
		if cfg.LeaveEvery > 0 && op > 0 && op%cfg.LeaveEvery == 0 && len(alive) > cfg.Nodes/2 && !groupOpen {
			victim := pickVictim(schedule, cluster.Addrs(), alive, partA, partB)
			if victim != nil {
				// Untrack first so the adapter stops routing reads into a
				// member that is mid-handoff.
				cluster.Untrack(victim.Addr())
				delete(alive, victim.Addr())
				aliveCount.Store(int64(len(alive)))
				if err := victim.Leave(); err != nil {
					// Partial handoff under the storm: the repair loop owns
					// re-replicating whatever the departure dropped.
					cfg.Log("soak: op %d: leave handoff incomplete: %v", op, err)
				}
				report.Leaves++
				cfg.Log("soak: op %d: %s left gracefully (%d nodes left)", op, victim.Addr(), len(alive))
			}
		}

		key := fmt.Sprintf("soak-%d", op)
		entry := overlay.Entry{Kind: "soak", Value: fmt.Sprintf("v%d", op)}
		if putWithRetry(cluster, keyspace.NewKey(key), entry, cfg.PutRetries) {
			acked = append(acked, key)
			ackedEntry[key] = entry
		} else {
			report.PutFailures++
		}

		// Remove schedule: delete a previously-acked entry through the
		// cluster. The key leaves the loss check either way — the remove
		// handler plants a tombstone on whichever owner it reached, so
		// even a client-visible failure may already have doomed the
		// entry. Only an acked remove joins the resurrection check.
		if cfg.RemoveEvery > 0 && op > 0 && op%cfg.RemoveEvery == 0 && len(acked) > 0 {
			i := schedule.Intn(len(acked))
			rkey := acked[i]
			rentry := ackedEntry[rkey]
			acked = append(acked[:i], acked[i+1:]...)
			delete(ackedEntry, rkey)
			okRemove := false
			for try := 0; try < cfg.PutRetries && !okRemove; try++ {
				if _, err := cluster.Remove(keyspace.NewKey(rkey), rentry); err == nil {
					okRemove = true
				} else {
					time.Sleep(time.Duration(10*(try+1)) * time.Millisecond)
				}
			}
			if okRemove {
				removed = append(removed, removedPair{key: rkey, entry: rentry})
				report.Removes++
			} else {
				report.RemoveFailures++
				cfg.Log("soak: op %d: remove of %s failed end-to-end", op, rkey)
			}
		}

		// Read back a random previously-acked key; failures during the
		// storm are tolerated and counted.
		if len(acked) > 0 {
			probe := acked[schedule.Intn(len(acked))]
			report.ChaosReads++
			if _, _, err := cluster.Get(keyspace.NewKey(probe)); err != nil {
				report.ChaosReadFailures++
			}
		}
		if cfg.OnOp != nil {
			cfg.OnOp(op, cluster)
		}
	}
	report.Acked = len(acked)

	// Storm off: heal everything, bring every still-downed member back
	// from its data directory, and let the ring repair — then hold it to
	// its promises on a clean network.
	ft.Heal()
	ft.SetDefaultRule(FaultRule{})
	for _, d := range downed {
		ok, err := revive(d)
		for try := 0; err == nil && !ok && try < 5; try++ {
			time.Sleep(50 * time.Millisecond)
			ok, err = revive(d)
		}
		if err != nil {
			return report, err
		}
		if !ok {
			return report, fmt.Errorf("soak: member %s never rejoined after restart", d.addr)
		}
	}
	downed = nil
	if err := cluster.WaitConverged(cfg.ConvergeTimeout); err == nil {
		report.Converged = true
	} else {
		cfg.Log("soak: ring did not re-converge: %v", err)
	}
	report.SurvivingNodes = len(alive)

	// Every acked write-once entry must still be served. Replica repair
	// may need a few rounds to resettle keys, so poll with a deadline.
	deadline := time.Now().Add(cfg.ReadbackTimeout)
	for _, key := range acked {
		k := keyspace.NewKey(key)
		for {
			entries, _, err := cluster.Get(k)
			if err == nil && len(entries) > 0 {
				break
			}
			if time.Now().After(deadline) {
				report.LostKeys = append(report.LostKeys, key)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// With VerifyReplicas the run is additionally held to the repair
	// loop's invariant: every acked key settles at exactly the ideal
	// replica count — no under-replication (a crash ate a copy nobody
	// re-pushed) and no over-replication (a stale copy nobody dropped).
	if cfg.VerifyReplicas && cfg.ReplicationFactor > 0 {
		expected := cfg.ReplicationFactor + 1
		if len(alive) < expected {
			expected = len(alive)
		}
		verifyDeadline := time.Now().Add(cfg.ReplicaVerifyTimeout)
		for _, key := range acked {
			k := keyspace.NewKey(key)
			for {
				got := countCopies(ft, cluster.Addrs(), k)
				if got == expected {
					break
				}
				if time.Now().After(verifyDeadline) {
					report.ReplicaViolations = append(report.ReplicaViolations,
						fmt.Sprintf("%s: %d copies, want %d", key, got, expected))
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	// Anti-resurrection: every acked remove must stay removed. Repair and
	// merge traffic may lawfully take a few rounds to push tombstones over
	// stale replicas, so poll toward zero holders; a holder remaining at
	// the deadline is a resurrection — a deleted entry that outlived its
	// removal by riding replica repair past the tombstone exchange.
	if len(removed) > 0 {
		resDeadline := time.Now().Add(cfg.ReadbackTimeout)
		for _, r := range removed {
			k := keyspace.NewKey(r.key)
			for {
				holders := 0
				for _, addr := range cluster.Addrs() {
					resp, err := ft.Call(addr, Message{Op: OpGet, Key: k})
					if err != nil || resp.Err != "" {
						continue
					}
					for _, e := range resp.Entries {
						if e == r.entry {
							holders++
							break
						}
					}
				}
				if holders == 0 {
					break
				}
				if time.Now().After(resDeadline) {
					report.Resurrections = append(report.Resurrections,
						fmt.Sprintf("%s: %d nodes still serve the removed entry", r.key, holders))
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	if cfg.PostStorm != nil {
		if err := cfg.PostStorm(cluster, ft); err != nil {
			return report, fmt.Errorf("soak: post-storm probe: %w", err)
		}
	}

	report.Faults = ft.Stats()
	for _, n := range nodes {
		report.Retry.Merge(n.RetryStats())
		report.Repair.Merge(n.RepairStats())
		report.Breaker.Merge(n.BreakerStats())
		report.Merges.Merge(n.MergeStats())
		report.Tombstones.Merge(n.TombstoneStats())
	}
	if rt, ok := cluster.transport.(*RetryingTransport); ok {
		report.Retry.Merge(rt.Stats())
		report.Breaker.Merge(rt.BreakerStats())
	}
	report.Cluster = cluster.Metrics()
	report.Elapsed = time.Since(start)
	cfg.Log("soak: done in %v: acked=%d lost=%d badreplicas=%d removes=%d resurrections=%d crashes=%d partitions=%d joins=%d leaves=%d restarts=%d amplification=%.2f repair=[pushes=%d drops=%d] merge=[probes=%d detected=%d rejoins=%d] tombstones=[created=%d merged=%d suppressed=%d] recovery=[snap=%d replayed=%d torn=%d]",
		report.Elapsed.Round(time.Millisecond), report.Acked, len(report.LostKeys),
		len(report.ReplicaViolations), report.Removes, len(report.Resurrections),
		report.Crashes, report.Partitions,
		report.Joins, report.Leaves, report.Restarts, report.RetryAmplification(),
		report.Repair.Pushes, report.Repair.Drops,
		report.Merges.Probes, report.Merges.Detected, report.Merges.Rejoins,
		report.Tombstones.Created, report.Tombstones.Merged, report.Tombstones.Suppressed,
		report.Recovery.SnapshotKeys, report.Recovery.ReplayedRecords, report.Recovery.TornRecords)
	return report, nil
}

// putWithRetry performs an op-level put retry loop on top of the RPC
// retry layer: under a storm a put can fail end-to-end (e.g. routing
// resolved to a node that crashed mid-op) and the workload, like any
// real client, tries again. Only an acked put counts as write-once data.
func putWithRetry(cluster *Cluster, key keyspace.Key, e overlay.Entry, tries int) bool {
	for i := 0; i < tries; i++ {
		if _, err := cluster.Put(key, e); err == nil {
			return true
		}
		time.Sleep(time.Duration(10*(i+1)) * time.Millisecond)
	}
	return false
}

// pickVictim chooses a crash victim among live nodes, sparing the
// currently partitioned pair (crashing one would quietly end the
// partition scenario).
func pickVictim(rng *rand.Rand, ringOrder []string, alive map[string]*Node, partA, partB string) *Node {
	candidates := make([]string, 0, len(ringOrder))
	for _, addr := range ringOrder {
		if addr == partA || addr == partB {
			continue
		}
		if _, ok := alive[addr]; ok {
			candidates = append(candidates, addr)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return alive[candidates[rng.Intn(len(candidates))]]
}

// countCopies counts how many of the given nodes hold the key in their
// LOCAL store. OpGet never forwards, so a direct per-node call observes
// the key's physical replica placement rather than routed availability.
func countCopies(t Transport, addrs []string, key keyspace.Key) int {
	copies := 0
	for _, addr := range addrs {
		resp, err := t.Call(addr, Message{Op: OpGet, Key: key})
		if err == nil && resp.Err == "" && len(resp.Entries) > 0 {
			copies++
		}
	}
	return copies
}

// splitArc cuts a contiguous arc of width ring-ordered members as one
// side of a group partition and returns the remainder as the other.
// Contiguity matters: an arc is a run of ring neighbours, so each side
// re-closes into its own consistent ring instead of fragmenting. Width
// is clamped to half the ring so both sides stay viable.
func splitArc(rng *rand.Rand, ringOrder []string, width int) (arc, rest []string) {
	if len(ringOrder) < 4 {
		return nil, nil
	}
	if width < 1 {
		width = 1
	}
	if width > len(ringOrder)/2 {
		width = len(ringOrder) / 2
	}
	at := rng.Intn(len(ringOrder))
	in := make(map[string]bool, width)
	for i := 0; i < width; i++ {
		a := ringOrder[(at+i)%len(ringOrder)]
		arc = append(arc, a)
		in[a] = true
	}
	for _, a := range ringOrder {
		if !in[a] {
			rest = append(rest, a)
		}
	}
	return arc, rest
}

// adjacentPair picks a ring-adjacent pair of tracked members — adjacency
// guarantees the pair actually exchanges stabilization traffic, so the
// partition is exercised rather than decorative.
func adjacentPair(rng *rand.Rand, ringOrder []string) (string, string) {
	if len(ringOrder) < 2 {
		return "", ""
	}
	i := rng.Intn(len(ringOrder))
	return ringOrder[i], ringOrder[(i+1)%len(ringOrder)]
}
