package wire

// The length-prefixed framed protocol spoken on persistent TCP
// connections. Every frame is
//
//	[8-byte request ID | 4-byte payload length | payload]
//
// where the payload is one Message produced by the connection's
// long-lived gob encoder. Keeping one encoder/decoder pair per
// connection is the core of the fast path: gob transmits a type's
// descriptor only once per encoder, so after the first frame each
// message carries values only — the dial-per-call transport re-sent the
// full descriptor set on every RPC. The explicit length prefix restores
// the message boundaries that a shared gob stream hides: the reader can
// enforce the size cap before allocating, and a request ID travels
// outside the payload so responses multiplex over one connection in any
// completion order.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// frameHeaderSize is the fixed per-frame overhead: request ID + length.
const frameHeaderSize = 12

// framePool recycles frame staging buffers across connections and
// requests; a busy node would otherwise allocate one buffer per RPC.
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getFrameBuf() *bytes.Buffer { return framePool.Get().(*bytes.Buffer) }

func putFrameBuf(b *bytes.Buffer) {
	b.Reset()
	framePool.Put(b)
}

// switchWriter lets the connection's persistent gob encoder target a
// different staging buffer for each frame: gob binds its writer at
// construction, so the indirection is what keeps one encoder (and its
// once-only type descriptors) alive across frames.
type switchWriter struct{ w io.Writer }

func (s *switchWriter) Write(p []byte) (int, error) { return s.w.Write(p) }

// switchReader is the read-side counterpart: the persistent decoder
// reads each frame's payload from a staging buffer. It forwards
// ReadByte so gob uses the buffer directly instead of wrapping the
// reader in another bufio layer that could buffer across frames.
type switchReader struct{ buf *bytes.Buffer }

func (s *switchReader) Read(p []byte) (int, error) { return s.buf.Read(p) }
func (s *switchReader) ReadByte() (byte, error)    { return s.buf.ReadByte() }

// codec is one connection's framing state: a gob encoder/decoder pair
// that lives as long as the connection, plus the frame staging
// machinery. Writes are serialized by wmu so concurrent requests
// interleave at frame granularity; the read side is owned by a single
// reader goroutine and needs no lock. After any writeFrame or readFrame
// error the gob streams may be desynchronized from the peer — the
// connection must be torn down, never reused.
//
// A connection starts in gob mode; a successful OpCodecSwitch handshake
// (always the first frame on a pooled connection, see DESIGN.md §17)
// flips it to the compact binary payload encoding in binarycodec.go.
// The frame header is identical in both modes — only the payload bytes
// change — so the request-ID multiplexing and size-cap enforcement are
// codec-independent.
type codec struct {
	conn   net.Conn
	maxMsg int64

	// bin selects the binary payload encoding. It flips at most once,
	// between the handshake exchange and all subsequent frames; atomic
	// because the flipping goroutine is not the writer on the server
	// side (the ack write and the flip happen in the frame-loop
	// goroutine while response writers run concurrently only AFTER the
	// handshake, but the flag itself must still be race-clean).
	bin atomic.Bool

	wmu  sync.Mutex
	sw   *switchWriter
	enc  *gob.Encoder
	wbuf []byte // binary-mode frame staging, guarded by wmu

	br   *bufio.Reader
	sr   *switchReader
	dec  *gob.Decoder
	rbuf []byte // binary-mode payload staging, owned by the reader

	// bytesIn/bytesOut aggregate wire bytes into the owning transport's
	// counters (never nil).
	bytesIn  *atomic.Int64
	bytesOut *atomic.Int64
}

// setBinary flips the connection to the binary payload encoding; called
// exactly once per connection, after the OpCodecSwitch ack has been
// written (server) or read (client).
func (c *codec) setBinary() { c.bin.Store(true) }

// isBinary reports whether the connection speaks the binary encoding.
func (c *codec) isBinary() bool { return c.bin.Load() }

func newCodec(conn net.Conn, maxMsg int64, bytesIn, bytesOut *atomic.Int64) *codec {
	sw := &switchWriter{}
	sr := &switchReader{}
	return &codec{
		conn:     conn,
		maxMsg:   maxMsg,
		sw:       sw,
		enc:      gob.NewEncoder(sw),
		br:       bufio.NewReader(conn),
		sr:       sr,
		dec:      gob.NewDecoder(sr),
		bytesIn:  bytesIn,
		bytesOut: bytesOut,
	}
}

// writeFrame encodes msg through the persistent encoder and sends it as
// one frame under a write deadline. Header and payload are staged in one
// pooled buffer and flushed with a single Write (the transport sets
// TCP_NODELAY implicitly — Go's default — so split writes would cost two
// packets). Any error leaves the encoder stream unsynchronized; the
// caller must discard the connection.
func (c *codec) writeFrame(id uint64, msg *Message, timeout time.Duration) error {
	if c.isBinary() {
		return c.writeBinaryFrame(id, msg, timeout)
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [frameHeaderSize]byte
	buf.Write(hdr[:]) // reserved; patched below
	c.sw.w = buf
	if err := c.enc.Encode(msg); err != nil {
		return fmt.Errorf("wire: encode frame: %w", err)
	}
	b := buf.Bytes()
	payload := int64(len(b) - frameHeaderSize)
	if payload > c.maxMsg {
		// The descriptors for this message are already woven into the
		// encoder stream; the peer will never see them. Unsynchronized.
		return fmt.Errorf("wire: frame of %d bytes exceeds cap %d", payload, c.maxMsg)
	}
	binary.BigEndian.PutUint64(b[0:8], id)
	binary.BigEndian.PutUint32(b[8:12], uint32(payload))
	if timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	if _, err := c.conn.Write(b); err != nil {
		return err
	}
	c.bytesOut.Add(int64(len(b)))
	return nil
}

// writeBinaryFrame is writeFrame's binary-mode path: header and payload
// are appended into the codec's own scratch slice, which reaches its
// steady-state capacity after a few frames and then makes the encode
// side allocation-free.
func (c *codec) writeBinaryFrame(id uint64, msg *Message, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [frameHeaderSize]byte
	c.wbuf = append(c.wbuf[:0], hdr[:]...)
	c.wbuf = appendMessage(c.wbuf, msg)
	b := c.wbuf
	payload := int64(len(b) - frameHeaderSize)
	if payload > c.maxMsg {
		// Unlike gob, nothing reached the stream — but the caller treats
		// any writeFrame error as fatal to the connection, so keep the
		// same contract.
		return fmt.Errorf("wire: frame of %d bytes exceeds cap %d", payload, c.maxMsg)
	}
	binary.BigEndian.PutUint64(b[0:8], id)
	binary.BigEndian.PutUint32(b[8:12], uint32(payload))
	if timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	if _, err := c.conn.Write(b); err != nil {
		return err
	}
	c.bytesOut.Add(int64(len(b)))
	return nil
}

// readFrame reads one frame into buf (a pooled staging buffer owned by
// the calling read loop) and decodes it through the persistent decoder.
// The declared payload length is validated against the size cap BEFORE
// any allocation, so a corrupt or hostile peer cannot make the node
// allocate unboundedly. The read deadline is the caller's job — the
// client read loop and the server frame loop have different idle
// semantics.
func (c *codec) readFrame(buf *bytes.Buffer) (uint64, Message, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, Message{}, err
	}
	id := binary.BigEndian.Uint64(hdr[0:8])
	n := int64(binary.BigEndian.Uint32(hdr[8:12]))
	if n > c.maxMsg {
		return 0, Message{}, fmt.Errorf("wire: frame of %d bytes exceeds cap %d", n, c.maxMsg)
	}
	if c.isBinary() {
		// Binary payloads decode in place from the codec's reader-owned
		// scratch (the size cap above bounds its growth); scalar-only
		// frames decode without allocating at all.
		if int64(cap(c.rbuf)) < n {
			c.rbuf = make([]byte, n)
		}
		p := c.rbuf[:n]
		if _, err := io.ReadFull(c.br, p); err != nil {
			return 0, Message{}, err
		}
		c.bytesIn.Add(frameHeaderSize + n)
		var msg Message
		if err := decodeMessage(p, &msg); err != nil {
			return id, Message{}, fmt.Errorf("wire: decode frame: %w", err)
		}
		return id, msg, nil
	}
	buf.Reset()
	if _, err := io.CopyN(buf, c.br, n); err != nil {
		return 0, Message{}, err
	}
	c.bytesIn.Add(frameHeaderSize + n)
	c.sr.buf = buf
	var msg Message
	if err := c.dec.Decode(&msg); err != nil {
		return id, Message{}, fmt.Errorf("wire: decode frame: %w", err)
	}
	return id, msg, nil
}

// isTimeoutErr reports whether err is a network timeout (an expired
// read/write deadline), which the pool's read loop uses to distinguish
// an idle reap from a dead peer.
func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
