package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The fuzz seed corpus doubles as a committed regression suite
// (testdata/fuzz/<Target>/): every valid message shape plus a spread of
// corruptions, so `go test` alone replays them all and `go test -fuzz`
// starts from meaningful coverage instead of empty bytes.

// fuzzSeeds returns the byte-level seed inputs shared by both targets:
// the encodings of every codecMessages shape, plus systematic
// corruptions of the richest one.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for i := range codecMessages() {
		m := codecMessages()[i]
		seeds = append(seeds, appendMessage(nil, &m))
	}
	rich := codecMessages()[7] // KV-bearing transfer
	enc := appendMessage(nil, &rich)
	seeds = append(seeds,
		enc[:len(enc)/2],                      // truncated mid-payload
		append(append([]byte(nil), enc...), 0xff), // trailing garbage
		[]byte{},                              // empty
		[]byte{binMsgVersion},                 // header only
		[]byte{binMsgVersion + 1, 1, 0},       // wrong version
		[]byte{binMsgVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge uvarint op
	)
	// A frame that declares a giant element count with no payload behind
	// it: the decoder must refuse before allocating.
	seeds = append(seeds, append(appendUvarint(append([]byte{binMsgVersion}, 0), 1<<40), 0x08))
	return seeds
}

// FuzzMessageRoundTrip drives the decoder with arbitrary bytes and, for
// every input it accepts, pins the codec's self-consistency: re-encoding
// the decoded message and decoding that must reproduce it exactly.
func FuzzMessageRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := decodeMessage(data, &m); err != nil {
			return // rejected inputs are FuzzDecodeCorrupt's concern
		}
		enc := appendMessage(nil, &m)
		var back Message
		if err := decodeMessage(enc, &back); err != nil {
			t.Fatalf("re-encoding of accepted input fails to decode: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("round trip diverged:\n first  %+v\n second %+v", m, back)
		}
	})
}

// FuzzDecodeCorrupt feeds the decoder corrupt, truncated and oversized
// frames. The decoder must return an error or a message — never panic —
// and must bound its allocations by the input length: a declared element
// count is only trusted after the remaining bytes prove it payable, so a
// 12-byte frame cannot make the decoder allocate gigabytes.
func FuzzDecodeCorrupt(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		err := decodeMessage(data, &m)
		if err != nil {
			return
		}
		// Accepted: the decoded slices must be payable by the input —
		// each KV element costs at least a key, each entry at least its
		// two length bytes. A looser bound would mean the count-checked
		// allocation guard regressed.
		elems := len(m.Entries) + len(m.Addrs) + len(m.Digests) + len(m.EntriesByKind) + len(m.BytesByKind)
		for _, kv := range m.KV {
			elems += 1 + len(kv.Entries) + len(kv.Tombs)
		}
		if elems > len(data) {
			t.Fatalf("decoder materialized %d elements from %d input bytes", elems, len(data))
		}
	})
}

// TestWriteFuzzCorpus materializes fuzzSeeds as committed corpus files
// under testdata/fuzz/. It only runs when WIRE_WRITE_FUZZ_CORPUS=1 —
// regenerate after changing codecMessages or the wire format:
//
//	WIRE_WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/wire/
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set WIRE_WRITE_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	for _, target := range []string{"FuzzMessageRoundTrip", "FuzzDecodeCorrupt"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range fuzzSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
