package wire

import (
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// TestLeaveRacingRepair races a graceful Leave against the anti-entropy
// repair loop: with repair running every stabilize round, a departure's
// handoff overlaps in-flight digest syncs and drop scans. The ring must
// neither resurrect removed entries (a stale replica shipping a copy
// the owner just deleted) nor double-ship survivors (every key must
// settle at EXACTLY the ideal copy count, with single-entry sets).
func TestLeaveRacingRepair(t *testing.T) {
	const (
		nodes       = 5
		replication = 2
		keyCount    = 12
	)
	mt := NewMemTransport()
	ring := make([]*Node, 0, nodes)
	var bootstrap string
	for i := 0; i < nodes; i++ {
		n, err := Start(Config{
			Transport:         mt,
			Addr:              "mem:0",
			StabilizeInterval: 5 * time.Millisecond,
			ReplicationFactor: replication,
			RepairEvery:       1,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		ring = append(ring, n)
	}
	defer func() {
		for _, n := range ring {
			n.Stop()
		}
	}()
	cluster := NewCluster(mt, 7, replication)
	for _, n := range ring {
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatalf("ring never formed: %v", err)
	}

	keys := make([]keyspace.Key, keyCount)
	entries := make([]overlay.Entry, keyCount)
	for i := range keys {
		keys[i] = keyspace.NewKey(fmt.Sprintf("race-%d", i))
		entries[i] = overlay.Entry{Kind: "race", Value: fmt.Sprintf("v%d", i)}
		if _, err := cluster.Put(keys[i], entries[i]); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Let the repair loop settle every key at the ideal copy count
	// before the race, so the removes below act on converged state (no
	// stale pre-remove ship can still be in flight when they land).
	waitCopies := func(deadline time.Time, want func(i int) int) {
		t.Helper()
		for i, k := range keys {
			for {
				got := countCopies(mt, cluster.Addrs(), k)
				if got == want(i) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("key %d stuck at %d copies, want %d", i, got, want(i))
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	full := replication + 1
	waitCopies(time.Now().Add(20*time.Second), func(int) int { return full })

	// The race: remove half the entries and immediately Leave a node
	// mid-repair. The leaver's handoff ships its whole store — including
	// copies of keys whose removal is propagating concurrently.
	leaver := ring[2]
	cluster.Untrack(leaver.Addr())
	done := make(chan error, 1)
	go func() { done <- leaver.Leave() }()
	for i := 0; i < keyCount; i += 2 {
		if _, err := cluster.Remove(keys[i], entries[i]); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Logf("leave handoff incomplete (tolerated, repair owns the rest): %v", err)
	}
	ring = append(ring[:2], ring[3:]...)

	// Post-race invariants, held with a deadline so the repair loop gets
	// its rounds: removed keys stay gone on every node (no resurrection),
	// surviving keys settle at exactly the ideal count again (no
	// double-ship leftovers, no under-replication from the departure).
	waitCopies(time.Now().Add(30*time.Second), func(i int) int {
		if i%2 == 0 {
			return 0
		}
		return full
	})
	for i := 1; i < keyCount; i += 2 {
		got, _, err := cluster.Get(keys[i])
		if err != nil {
			t.Fatalf("get survivor %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != entries[i] {
			t.Fatalf("survivor %d diverged: %v", i, got)
		}
	}
}
