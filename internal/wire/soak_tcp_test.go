package wire

import (
	"testing"
	"time"
)

// TestChurnSoakTCP runs the churn soak over the pooled TCP transport on
// loopback instead of the in-memory transport: real sockets, framed
// multiplexed connections, crash-stops that tear pooled conns down
// mid-flight, and restarts that rebind the same concrete address. The
// schedule is kept lighter than the MemTransport soak (real dial and
// teardown latency), but every survival invariant is the same.
func TestChurnSoakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	tp := NewTCPTransport()
	tp.CallTimeout = 2 * time.Second
	report, err := RunSoak(SoakConfig{
		Nodes:      8,
		Ops:        80,
		Seed:       13,
		DropProb:   0.05,
		Latency:    10 * time.Millisecond,
		CrashEvery: 40,
		Transport:  tp,
		ListenAddr: "127.0.0.1:0",
		Log:        t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	if !report.Converged {
		t.Errorf("ring did not re-converge after the storm")
	}
	if len(report.LostKeys) > 0 {
		t.Errorf("lost %d write-once entries despite replication: %v",
			len(report.LostKeys), report.LostKeys)
	}
	if report.Acked == 0 {
		t.Fatalf("no put ever acked")
	}
	if report.Crashes < 1 {
		t.Errorf("schedule executed no crashes")
	}
	st := tp.PoolStats()
	if st.Reuses == 0 {
		t.Errorf("soak traffic produced no pooled-connection reuse: %+v", st)
	}
	if st.Dials == 0 {
		t.Errorf("no pooled dials recorded: %+v", st)
	}
	t.Logf("pool after soak: %+v", st)
}
