package wire_test

import (
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/index"
	"dhtindex/internal/wire"
)

// TestIndexOverLiveRing layers the paper's index service over a live
// message-passing ring: publish the Fig. 1 articles, then find them by
// every indexed field and via the generalization fallback — the complete
// stack, substrate included, exchanging real protocol messages.
func TestIndexOverLiveRing(t *testing.T) {
	transport := wire.NewMemTransport()
	cluster := wire.NewCluster(transport, 1, 0)
	var bootstrap string
	for i := 0; i < 8; i++ {
		n, err := wire.Start(wire.Config{Transport: transport, Addr: "mem:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	svc := index.New(cluster, cache.Single, 0)
	arts := descriptor.Fig1Articles()
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range arts {
		if err := svc.PublishArticle(files[i], a, index.Simple); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	searcher := index.NewSearcher(svc)
	a := arts[1] // John Smith, IPv6, INFOCOM 1996
	msd := dataset.MSD(a)
	for _, q := range []struct {
		name  string
		query string
	}{
		{"author", "/article/author[first/John][last/Smith]"},
		{"title", "/article/title/IPv6"},
		{"conf", "/article/conf/INFOCOM"},
		{"year", "/article/year/1996"},
	} {
		parsed, err := dataset.ParseQuery(q.query)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := searcher.Find(parsed, msd)
		if err != nil {
			t.Fatalf("find by %s: %v", q.name, err)
		}
		if !trace.Found || trace.File != "y.pdf" {
			t.Fatalf("find by %s: %+v", q.name, trace)
		}
	}
	// Non-indexed author+year recovers via generalization over the wire.
	trace, err := searcher.Find(dataset.AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year), msd)
	if err != nil || !trace.NonIndexed || !trace.Found {
		t.Fatalf("generalization over wire: %+v, %v", trace, err)
	}
	// Cache shortcut works on the second identical lookup.
	q := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	if _, err := searcher.Find(q, msd); err != nil {
		t.Fatal(err)
	}
	second, err := searcher.Find(q, msd)
	if err != nil || !second.CacheHit {
		t.Fatalf("wire cache hit: %+v, %v", second, err)
	}
	// Storage stats flow through the OpStats RPC.
	st := svc.StorageStats()
	if st.DataEntries != 3 || st.IndexEntries == 0 {
		t.Fatalf("storage over wire: %+v", st)
	}
}

// TestIndexOverLiveRingSurvivesChurn keeps searching while nodes leave
// gracefully.
func TestIndexOverLiveRingSurvivesChurn(t *testing.T) {
	transport := wire.NewMemTransport()
	cluster := wire.NewCluster(transport, 1, 0)
	nodes := make([]*wire.Node, 0, 10)
	var bootstrap string
	for i := 0; i < 10; i++ {
		n, err := wire.Start(wire.Config{Transport: transport, Addr: "mem:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	svc := index.New(cluster, cache.None, 0)
	corpus, err := dataset.Generate(dataset.Config{Articles: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range corpus.Articles {
		if err := svc.PublishArticle(fmt.Sprintf("f%03d.pdf", i), a, index.Flat); err != nil {
			t.Fatal(err)
		}
	}
	searcher := index.NewSearcher(svc)
	// Leave three nodes, re-converge, and verify every article is still
	// findable by title (allowing migration rounds to settle).
	for _, n := range nodes[3:6] {
		if err := n.Leave(); err != nil {
			t.Fatal(err)
		}
		cluster.Untrack(n.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for i, a := range corpus.Articles {
		for {
			trace, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a))
			if err == nil && trace.Found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("article %d unfindable after churn: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
