package wire

import (
	"reflect"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// codecMessages is a spread of message shapes covering every field of
// the envelope, shared by the round-trip test and the fuzz seed corpus.
func codecMessages() []Message {
	k1 := keyspace.NewKey("alpha")
	k2 := keyspace.NewKey("beta")
	return []Message{
		{},
		{Op: OpPing},
		{Op: OpGet, Key: k1, BudgetMicros: 2500},
		{Op: OpFindSuccessor, Key: k2, Addr: "127.0.0.1:9001", TTL: 32, Hops: 3},
		{Op: OpPut, Key: k1, Entry: overlay.Entry{Kind: "article", Value: "a/b/c"}},
		{Op: OpGet, Ok: true, Entries: []overlay.Entry{{Kind: "x", Value: "y"}, {Kind: "k2", Value: ""}}},
		{Op: OpPut, Code: CodeOverload, Err: "shed: queue full"},
		{Op: OpTransfer, KV: []KeyEntries{
			{Key: k1, Entries: []overlay.Entry{{Kind: "a", Value: "v"}}},
			{Key: k2, Tombs: []Tombstone{{Entry: overlay.Entry{Kind: "t", Value: "w"}, At: -7}, {Entry: overlay.Entry{}, At: 1 << 60}}},
		}},
		{Op: OpRepairSync, Digests: []KeyDigest{{Key: k1, Digest: 0xdeadbeefcafef00d}, {Key: k2}}},
		{Op: OpGetSuccessor, Ok: true, Addrs: []string{"a:1", "b:2", ""}},
		{Op: OpStats, Ok: true, Keys: 42,
			EntriesByKind: map[string]int{"article": 10, "": -1},
			BytesByKind:   map[string]int64{"article": 1 << 40}},
		{Op: OpCodecSwitch, Ok: true},
		{Op: OpMerge, Key: k2, Addr: "merge", TTL: -1, Hops: -2, BudgetMicros: -3, Code: 5, Keys: -9},
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for i, want := range codecMessages() {
		enc := appendMessage(nil, &want)
		var got Message
		if err := decodeMessage(enc, &got); err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("message %d: round trip mismatch\n want %+v\n got  %+v", i, want, got)
		}
	}
}

func TestBinaryCodecDecodeResetsTarget(t *testing.T) {
	full := codecMessages()[7] // KV-bearing message
	enc := appendMessage(nil, &Message{Op: OpPing})
	got := full
	if err := decodeMessage(enc, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, Message{Op: OpPing}) {
		t.Fatalf("reused target kept stale fields: %+v", got)
	}
}

func TestBinaryCodecRejectsCorrupt(t *testing.T) {
	for i, m := range codecMessages() {
		enc := appendMessage(nil, &m)
		// Every truncation must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			var got Message
			if err := decodeMessage(enc[:cut], &got); err == nil {
				t.Fatalf("message %d: truncation to %d bytes decoded cleanly", i, cut)
			}
		}
		// Trailing garbage must be rejected too: a frame's declared
		// length is exact.
		var got Message
		if err := decodeMessage(append(append([]byte(nil), enc...), 0xff), &got); err == nil {
			t.Fatalf("message %d: trailing byte accepted", i)
		}
	}
	var got Message
	if err := decodeMessage([]byte{binMsgVersion + 1, 1, 0}, &got); err == nil {
		t.Fatal("wrong version accepted")
	}
	if err := decodeMessage(nil, &got); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// TestBinaryCodecSteadyStateAllocs pins the zero-alloc contract from
// ISSUE 10: once scratch buffers are warm, encoding any message shape
// allocates nothing, and decoding a scalar-only message (the ping /
// routing / ack frames that dominate steady state) allocates nothing.
func TestBinaryCodecSteadyStateAllocs(t *testing.T) {
	msgs := codecMessages()
	scratch := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() {
		for i := range msgs {
			scratch = appendMessage(scratch[:0], &msgs[i])
		}
	}); n != 0 {
		t.Fatalf("encode allocates %v times per run, want 0", n)
	}
	scalar := appendMessage(nil, &Message{Op: OpGet, Key: keyspace.NewKey("k"), BudgetMicros: 1234, TTL: 9, Ok: true})
	var got Message
	if n := testing.AllocsPerRun(200, func() {
		if err := decodeMessage(scalar, &got); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("scalar decode allocates %v times per run, want 0", n)
	}
}

// TestBinaryCodecCompactness pins the size win over gob that motivates
// the codec: a routed get's request frame must be a fraction of its gob
// encoding.
func TestBinaryCodecCompactness(t *testing.T) {
	m := Message{Op: OpGet, Key: keyspace.NewKey("article"), BudgetMicros: 150000}
	enc := appendMessage(nil, &m)
	if len(enc) > 32 {
		t.Fatalf("routed get encodes to %d bytes, want ≤ 32", len(enc))
	}
}

// BenchmarkBinaryCodecEncode measures the hand-rolled encoder over the
// full shape spread with a warm scratch buffer — the steady state of a
// pooled connection's write path. Run with -benchmem: allocs/op must
// report 0.
func BenchmarkBinaryCodecEncode(b *testing.B) {
	msgs := codecMessages()
	scratch := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = appendMessage(scratch[:0], &msgs[i%len(msgs)])
	}
}

// BenchmarkBinaryCodecDecode measures decoding a scalar-only routed get
// — the frame shape that dominates steady state — into a reused target.
// Run with -benchmem: allocs/op must report 0.
func BenchmarkBinaryCodecDecode(b *testing.B) {
	enc := appendMessage(nil, &Message{Op: OpGet, Key: keyspace.NewKey("k"), BudgetMicros: 1234, TTL: 9, Ok: true})
	var got Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decodeMessage(enc, &got); err != nil {
			b.Fatal(err)
		}
	}
}
