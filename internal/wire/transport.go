// Package wire implements a live, message-passing Chord node: the same
// protocol the simulation computes instantaneously (internal/dht), but as
// long-running peers that join, stabilize, repair fingers and transfer
// keys by exchanging messages over a pluggable transport. Two transports
// are provided — an in-memory one for deterministic tests and a TCP/gob
// one for real deployments — and a Cluster handle adapts a set of live
// nodes to the overlay contract so the paper's indexing layer runs
// unchanged on top of a real network.
package wire

import (
	"errors"
	"fmt"
	"io"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Op enumerates the protocol operations.
type Op int

// Protocol operations.
const (
	OpPing Op = iota + 1
	OpFindSuccessor
	OpGetPredecessor
	OpGetSuccessor
	OpNotify
	OpPut
	OpGet
	OpRemove
	OpTransfer
	OpStats
	OpLeave
	OpPutReplica
	OpRemoveReplica
	OpRepairSync
	OpPutBatch
	OpRemoveBatch
	OpMerge
	// OpCodecSwitch is the per-connection codec negotiation handshake:
	// the first frame a binary-capable pooled client sends. It is
	// answered by the transport layer itself (never dispatched to the
	// node handler): Ok=true means both sides switch every subsequent
	// frame on this connection to the compact binary encoding, any
	// other response (including the "unknown operation" error an old
	// peer produces) leaves the connection on gob.
	OpCodecSwitch
)

// String returns the wire name of the operation.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpFindSuccessor:
		return "find-successor"
	case OpGetPredecessor:
		return "get-predecessor"
	case OpGetSuccessor:
		return "get-successor"
	case OpNotify:
		return "notify"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpRemove:
		return "remove"
	case OpTransfer:
		return "transfer"
	case OpStats:
		return "stats"
	case OpLeave:
		return "leave"
	case OpPutReplica:
		return "put-replica"
	case OpRemoveReplica:
		return "remove-replica"
	case OpRepairSync:
		return "repair-sync"
	case OpPutBatch:
		return "put-batch"
	case OpRemoveBatch:
		return "remove-batch"
	case OpMerge:
		return "merge"
	case OpCodecSwitch:
		return "codec-switch"
	default:
		return "unknown"
	}
}

// Tombstone is a deletion record: proof that an exact entry was removed
// from a key, kept so anti-entropy cannot resurrect the entry from a
// stale copy (a replica that missed the removal, or the far side of a
// healed partition). While a tombstone is live, re-adding the identical
// entry is suppressed everywhere; tombstones are garbage-collected
// after Config.TombstoneTTL, which must exceed the longest partition or
// downtime a stale copy can hide behind.
type Tombstone struct {
	// Entry is the removed entry.
	Entry overlay.Entry
	// At is the removal's wall-clock time in Unix nanoseconds. It only
	// schedules garbage collection — conflict resolution never compares
	// clocks across nodes; merges keep the latest At so a tombstone's
	// TTL restarts when it is re-asserted.
	At int64
}

// KeyEntries carries one key's entries (and deletion records) in a
// transfer.
type KeyEntries struct {
	Key     keyspace.Key
	Entries []overlay.Entry
	// Tombs carries the key's tombstones alongside its live entries, so
	// handovers, transfers and repair ships move deletions with the data.
	Tombs []Tombstone
}

// KeyDigest summarizes one key's entry set for the anti-entropy repair
// protocol: replicas compare digests instead of shipping entries, so a
// converged replica set costs one small message per repair round.
type KeyDigest struct {
	Key    keyspace.Key
	Digest uint64
}

// Response codes carried in Message.Code. A plain application error
// travels as Err text alone (CodeOK); codes distinguish errors the client
// must treat specially — an overload NACK arrives as a *successful*
// transport exchange, so without a typed code the retry layer would treat
// it like any remote failure and retry into the hot node.
const (
	// CodeOK marks a normal response (zero value, never set explicitly).
	CodeOK = 0
	// CodeOverload marks a response shed by admission control. The call
	// must not be retried against the same peer and must not count as a
	// connectivity failure.
	CodeOverload = 1
)

// Message is the single request/response envelope (flat for gob).
type Message struct {
	Op   Op
	Key  keyspace.Key
	Addr string
	// TTL bounds recursive FindSuccessor forwarding.
	TTL int
	// Hops counts forwarding steps, echoed back in responses.
	Hops int
	// BudgetMicros carries the caller's remaining deadline budget in
	// microseconds (0 = no deadline). Admission control sheds requests
	// whose budget cannot cover the expected service time.
	BudgetMicros int64
	// Code classifies error responses (CodeOK, CodeOverload).
	Code    int
	Entry   overlay.Entry
	Entries []overlay.Entry
	KV      []KeyEntries
	// Digests carries the anti-entropy offer (OpRepairSync requests) and
	// the keys the replica wants shipped (OpRepairSync responses, digest
	// field unused).
	Digests []KeyDigest
	// Addrs carries successor lists.
	Addrs []string
	Ok    bool
	Err   string
	// Stats payload (OpStats responses).
	Keys          int
	EntriesByKind map[string]int
	BytesByKind   map[string]int64
}

// Handler processes one request and produces one response.
type Handler func(req Message) Message

// Codec selects the payload encoding spoken on persistent pooled
// connections (DESIGN.md §17). Dial-per-call exchanges always use gob —
// they pay a fresh descriptor set per call either way, and keeping them
// on gob gives every binary-capable node a wire-compatible path to any
// peer.
type Codec int

// Codec choices.
const (
	// CodecDefault leaves the choice to the component's default: binary
	// for the TCP transport. The zero value, so untouched configs get
	// the fast path.
	CodecDefault Codec = iota
	// CodecBinary negotiates the compact binary encoding per connection
	// at handshake, falling back to gob when the peer declines or
	// predates the handshake.
	CodecBinary
	// CodecGob pins every connection to gob: no handshake is attempted
	// and inbound handshakes are declined. The A/B baseline and the
	// escape hatch.
	CodecGob
)

// String returns the codec's config-file name.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	default:
		return "default"
	}
}

// ParseCodec maps a config-file name ("binary", "gob", "" for default)
// to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "default":
		return CodecDefault, nil
	case "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return CodecDefault, fmt.Errorf("wire: unknown codec %q (want binary or gob)", s)
	}
}

// Transport moves messages between addresses.
type Transport interface {
	// Listen registers a handler for an address and returns a closer that
	// unregisters it. For the TCP transport, addr "host:0" picks a free
	// port; the chosen address is returned.
	Listen(addr string, handler Handler) (actual string, closer io.Closer, err error)
	// Call sends a request to addr and waits for the response.
	Call(addr string, req Message) (Message, error)
}

// Errors of the wire layer.
var (
	// ErrUnreachable is returned when a peer cannot be contacted.
	ErrUnreachable = errors.New("wire: peer unreachable")
	// ErrStopped is returned by operations on a stopped node.
	ErrStopped = errors.New("wire: node stopped")
	// ErrTTLExceeded is returned when routing fails to converge.
	ErrTTLExceeded = errors.New("wire: routing TTL exceeded")
	// ErrCircuitOpen is returned by the retry layer when a peer's circuit
	// breaker is open: the peer failed repeatedly and calls to it fail
	// fast instead of burning the caller's budget on fresh timeouts.
	ErrCircuitOpen = errors.New("wire: circuit open")
	// ErrOverload is returned when a peer's admission control sheds the
	// request. The peer is alive — this is backpressure, not a failure:
	// it must never be retried against the same peer, must not count
	// toward unreachable-style failure detection, and must not cause the
	// ring to route around the node.
	ErrOverload = errors.New("wire: peer overloaded")
)

// remoteError converts an error carried in a response into a Go error.
func remoteError(m Message) error {
	if m.Err == "" {
		return nil
	}
	if m.Code == CodeOverload {
		return fmt.Errorf("%w: %s", ErrOverload, m.Err)
	}
	return fmt.Errorf("wire: remote: %s", m.Err)
}
