package wire

// Negotiation interop tests (ISSUE 10): a binary-capable client must
// work against every peer generation — binary-capable, gob-pinned
// (standing in for a pre-handshake node: both answer the handshake
// without switching), and one whose handshake path fails at transport
// level — with the pooled fast path degrading to gob, never to an
// error.

import (
	"testing"
	"time"
)

// startEchoServer boots a listener on tp and returns its address.
func startEchoServer(t *testing.T, tp *TCPTransport) string {
	t.Helper()
	addr, closer, err := tp.Listen("127.0.0.1:0", func(req Message) Message {
		if req.Op == OpCodecSwitch {
			// What a pre-handshake node's dispatch would answer if the
			// frame ever reached it (transport interception normally
			// keeps it away from handlers).
			return Message{Op: req.Op, Err: "unknown operation"}
		}
		return Message{Op: req.Op, Ok: true, Addr: req.Addr, Entries: req.Entries}
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { closer.Close() })
	return addr
}

// roundTrips fires n calls and fails the test on any error or
// mismatched echo.
func roundTrips(t *testing.T, client *TCPTransport, addr string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := client.Call(addr, Message{Op: OpPing, Addr: "interop"})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !resp.Ok || resp.Addr != "interop" {
			t.Fatalf("call %d: bad echo %+v", i, resp)
		}
	}
}

func TestCodecNegotiationBinaryToBinary(t *testing.T) {
	server := NewTCPTransport()
	addr := startEchoServer(t, server)
	client := NewTCPTransport()
	defer client.CloseConnections()
	roundTrips(t, client, addr, 20)
	if got := client.codecBinaryConns.Value(); got == 0 {
		t.Fatal("client negotiated no binary connection")
	}
	if got := server.codecBinaryConns.Value(); got == 0 {
		t.Fatal("server accepted no binary connection")
	}
	if got := client.codecFallbacks.Value(); got != 0 {
		t.Fatalf("unexpected fallbacks: %d", got)
	}
}

func TestCodecNegotiationAgainstGobOnlyPeer(t *testing.T) {
	server := NewTCPTransport()
	server.Codec = CodecGob // declines the handshake, like an old node
	addr := startEchoServer(t, server)
	client := NewTCPTransport()
	defer client.CloseConnections()
	roundTrips(t, client, addr, 20)
	if got := client.codecBinaryConns.Value(); got != 0 {
		t.Fatalf("client claims %d binary conns against a gob-only peer", got)
	}
	if got := client.codecGobConns.Value(); got == 0 {
		t.Fatal("declined handshake did not count a gob connection")
	}
	if got := client.codecFallbacks.Value(); got != 0 {
		t.Fatalf("a clean decline must not count as a fallback, got %d", got)
	}
}

func TestCodecNegotiationGobPinnedClient(t *testing.T) {
	server := NewTCPTransport()
	addr := startEchoServer(t, server)
	client := NewTCPTransport()
	client.Codec = CodecGob // one-flag A/B: skip the handshake entirely
	defer client.CloseConnections()
	roundTrips(t, client, addr, 20)
	if got := client.codecBinaryConns.Value(); got != 0 {
		t.Fatalf("gob-pinned client negotiated %d binary conns", got)
	}
	if got := server.codecBinaryConns.Value(); got != 0 {
		t.Fatalf("server switched %d conns without a handshake", got)
	}
}

// TestCodecNegotiationMixedPool exercises one client whose pool holds
// binary and gob connections at the same time: calls to a new peer and
// a gob-only peer interleave, and every response must route back
// correctly regardless of which encoding its connection speaks.
func TestCodecNegotiationMixedPool(t *testing.T) {
	binServer := NewTCPTransport()
	binAddr := startEchoServer(t, binServer)
	gobServer := NewTCPTransport()
	gobServer.Codec = CodecGob
	gobAddr := startEchoServer(t, gobServer)

	client := NewTCPTransport()
	defer client.CloseConnections()
	for i := 0; i < 25; i++ {
		roundTrips(t, client, binAddr, 1)
		roundTrips(t, client, gobAddr, 1)
	}
	if client.codecBinaryConns.Value() == 0 || client.codecGobConns.Value() == 0 {
		t.Fatalf("pool is not mixed: binary=%d gob=%d",
			client.codecBinaryConns.Value(), client.codecGobConns.Value())
	}
}

// TestCodecNegotiationFallbackAfterHandshakeFailure drives the
// transport-level failure path: the server drops the connection instead
// of answering the handshake, and the client must fall back to a fresh
// plain-gob dial — calls succeed, the fallback is counted.
func TestCodecNegotiationFallbackAfterHandshakeFailure(t *testing.T) {
	server := NewTCPTransport()
	server.dropHandshake = true
	addr := startEchoServer(t, server)
	client := NewTCPTransport()
	client.CallTimeout = 2 * time.Second // bound the dead handshake read
	defer client.CloseConnections()
	roundTrips(t, client, addr, 10)
	if got := client.codecFallbacks.Value(); got == 0 {
		t.Fatal("handshake failure did not count a fallback")
	}
	if got := client.codecBinaryConns.Value(); got != 0 {
		t.Fatalf("client claims %d binary conns after a dropped handshake", got)
	}
	if got := client.codecGobConns.Value(); got == 0 {
		t.Fatal("fallback redial did not count a gob connection")
	}
}

// TestCodecNegotiationRichPayloads pushes entry-bearing messages across
// a negotiated binary connection end to end — the codec unit tests
// cover the encoding, this covers it composed with framing, pooling and
// pipelining.
func TestCodecNegotiationRichPayloads(t *testing.T) {
	server := NewTCPTransport()
	addr := startEchoServer(t, server)
	client := NewTCPTransport()
	defer client.CloseConnections()
	for i := 0; i < 10; i++ {
		req := Message{Op: OpGet, Addr: "interop", Entries: codecMessages()[5].Entries}
		resp, err := client.Call(addr, req)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(resp.Entries) != len(req.Entries) || resp.Entries[0] != req.Entries[0] {
			t.Fatalf("call %d: entries did not survive the binary path: %+v", i, resp.Entries)
		}
	}
	if client.codecBinaryConns.Value() == 0 {
		t.Fatal("rich-payload exchange never negotiated binary")
	}
}
