package wire

import (
	"math/rand"
	"sync"
	"time"

	"dhtindex/internal/telemetry"
)

// BreakerPolicy parameterizes the per-peer circuit breaker in the retry
// layer. A peer whose calls fail Threshold times in a row has its
// circuit opened: further calls to it fail fast with ErrCircuitOpen
// instead of re-spending the full retry budget on every hop through a
// dead node. While open, seeded half-open probes (probability ProbeProb
// per call, and always once Cooldown has elapsed since the circuit
// opened or last probed) let a recovered peer close its circuit again.
// The zero value is usable — defaults are applied on first use.
type BreakerPolicy struct {
	// Threshold is the number of consecutive failed calls that opens the
	// circuit (default 5).
	Threshold int
	// ProbeProb is the probability an open circuit lets a half-open
	// probe through, in [0,1] (default 0.125). Probes are driven by the
	// policy's seeded RNG, so fault schedules stay reproducible. A
	// negative value disables random probes entirely — only the Cooldown
	// path half-opens the circuit (useful in tests).
	ProbeProb float64
	// Cooldown is the open duration after which a probe is always
	// allowed, bounding how long a recovered peer waits for the dice
	// (default 500ms).
	Cooldown time.Duration
	// Seed makes the probe sequence reproducible.
	Seed int64
	// OverloadThreshold is the number of consecutive ErrOverload NACKs
	// that opens the circuit (default 3×Threshold). Overload is tracked
	// separately from connectivity failure: an overloaded peer is alive
	// and making progress, so it takes far more sheds — and a shorter
	// open period — before the caller backs off from it entirely.
	OverloadThreshold int
	// OverloadCooldown is the open duration used for circuits opened by
	// overload (default Cooldown/4). Overload typically clears in
	// milliseconds once callers divert, so probing resumes sooner than
	// after a crash.
	OverloadCooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = 5
	}
	if p.ProbeProb == 0 {
		p.ProbeProb = 0.125
	}
	if p.Cooldown == 0 {
		p.Cooldown = 500 * time.Millisecond
	}
	if p.OverloadThreshold == 0 {
		p.OverloadThreshold = 3 * p.Threshold
	}
	if p.OverloadCooldown == 0 {
		p.OverloadCooldown = p.Cooldown / 4
	}
	return p
}

// BreakerStats is a point-in-time snapshot of the breaker layer's work.
// The live counters behind it are atomic, so snapshots are race-free.
type BreakerStats struct {
	// Trips counts circuits opened (consecutive failures hit Threshold).
	Trips int64
	// OverloadTrips counts circuits opened by consecutive ErrOverload
	// NACKs hitting OverloadThreshold (tracked apart from Trips: the peer
	// was alive, just saturated).
	OverloadTrips int64
	// FastFails counts calls refused without touching the wire because
	// the peer's circuit was open.
	FastFails int64
	// Probes counts half-open probe calls let through an open circuit.
	Probes int64
	// Closes counts circuits closed again by a successful probe.
	Closes int64
	// Open is the number of circuits currently open.
	Open int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *BreakerStats) Merge(o BreakerStats) {
	s.Trips += o.Trips
	s.OverloadTrips += o.OverloadTrips
	s.FastFails += o.FastFails
	s.Probes += o.Probes
	s.Closes += o.Closes
	s.Open += o.Open
}

// breakerState tracks one peer's circuit.
type breakerState struct {
	fails      int  // consecutive failures while closed
	overloads  int  // consecutive overload NACKs while closed
	open       bool // circuit open: fail fast, probe occasionally
	byOverload bool // opened by overload → shorter cooldown
	lastOpen   time.Time
}

// breakerSet is the per-transport collection of peer circuits.
type breakerSet struct {
	policy BreakerPolicy

	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]*breakerState

	trips         *telemetry.Counter
	overloadTrips *telemetry.Counter
	fastFails     *telemetry.Counter
	probes        *telemetry.Counter
	closes        *telemetry.Counter
}

func newBreakerSet(policy BreakerPolicy) *breakerSet {
	policy = policy.withDefaults()
	return &breakerSet{
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
		peers:  make(map[string]*breakerState),
		trips: telemetry.NewCounter("wire_breaker_trips_total",
			"Peer circuits opened after consecutive call failures."),
		overloadTrips: telemetry.NewCounter("wire_breaker_overload_trips_total",
			"Peer circuits opened after consecutive overload NACKs."),
		fastFails: telemetry.NewCounter("wire_breaker_fast_fails_total",
			"Calls refused without a wire send because the peer's circuit was open."),
		probes: telemetry.NewCounter("wire_breaker_probes_total",
			"Half-open probe calls let through an open circuit."),
		closes: telemetry.NewCounter("wire_breaker_closes_total",
			"Circuits closed again by a successful probe."),
	}
}

// allow reports whether a call to addr may proceed. A false return means
// the circuit is open and no probe was drawn — the caller must fail fast.
func (b *breakerSet) allow(addr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.peers[addr]
	if st == nil || !st.open {
		return true
	}
	cooldown := b.policy.Cooldown
	if st.byOverload {
		cooldown = b.policy.OverloadCooldown
	}
	if b.rng.Float64() < b.policy.ProbeProb || time.Since(st.lastOpen) >= cooldown {
		st.lastOpen = time.Now() // space cooldown-driven probes apart
		b.probes.Inc()
		return true
	}
	b.fastFails.Inc()
	return false
}

// onResult records a completed call's outcome (after retries) for addr.
func (b *breakerSet) onResult(addr string, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.peers[addr]
	if err == nil {
		if st != nil {
			if st.open {
				b.closes.Inc()
			}
			delete(b.peers, addr)
		}
		return
	}
	if st == nil {
		st = &breakerState{}
		b.peers[addr] = st
	}
	st.overloads = 0 // a connectivity failure ends any overload streak
	if st.open {
		st.lastOpen = time.Now()
		st.byOverload = false // failed probe: treat as a real outage now
		return
	}
	st.fails++
	if st.fails >= b.policy.Threshold {
		st.open = true
		st.lastOpen = time.Now()
		b.trips.Inc()
	}
}

// onOverload records an overload NACK from addr. Overload streaks are
// tracked apart from connectivity failures: they need a (much higher)
// OverloadThreshold to open the circuit, and the opened circuit uses the
// shorter OverloadCooldown, because a saturated peer recovers as soon as
// load diverts — unlike a crashed one.
func (b *breakerSet) onOverload(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.peers[addr]
	if st == nil {
		st = &breakerState{}
		b.peers[addr] = st
	}
	st.fails = 0 // the peer answered: it is reachable
	if st.open {
		st.lastOpen = time.Now()
		return
	}
	st.overloads++
	if st.overloads >= b.policy.OverloadThreshold {
		st.open = true
		st.byOverload = true
		st.lastOpen = time.Now()
		b.overloadTrips.Inc()
	}
}

// openCount returns the number of circuits currently open.
func (b *breakerSet) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, st := range b.peers {
		if st.open {
			n++
		}
	}
	return n
}

// stats returns a snapshot of the breaker counters.
func (b *breakerSet) stats() BreakerStats {
	return BreakerStats{
		Trips:         b.trips.Value(),
		OverloadTrips: b.overloadTrips.Value(),
		FastFails:     b.fastFails.Value(),
		Probes:        b.probes.Value(),
		Closes:        b.closes.Value(),
		Open:          b.openCount(),
	}
}

// instrument attaches the breaker counters and the open-circuit gauge to
// reg. Several breaker sets (one per node) may attach to one registry;
// the snapshot then reports fleet-wide sums.
func (b *breakerSet) instrument(reg *telemetry.Registry) {
	reg.Attach(b.trips, b.overloadTrips, b.fastFails, b.probes, b.closes)
	reg.GaugeFunc("wire_breaker_open",
		"Peer circuits currently open (fleet-wide when several nodes attach).",
		func() float64 { return float64(b.openCount()) })
}
