package wire

import (
	"errors"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// TestPartitionGroupsSemantics: a group partition blocks every
// cross-side link in both directions, leaves intra-side links and
// anonymous clients alone, counts its cut links, and HealLink restores
// exactly one pair at a time.
func TestPartitionGroupsSemantics(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	eps := make([]Transport, 4)
	addrs := make([]string, 4)
	for i := range eps {
		eps[i] = ft.Endpoint()
		addr, closer, err := eps[i].Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = closer.Close() })
		addrs[i] = addr
	}

	ft.PartitionGroups(addrs[:2], addrs[2:])
	s := ft.Stats()
	if s.PartitionEvents != 1 || s.LinksCut != 8 {
		t.Fatalf("2|2 split: events=%d cut=%d, want 1 and 8", s.PartitionEvents, s.LinksCut)
	}
	// Cross-side: blocked both ways.
	if _, err := eps[0].Call(addrs[2], Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-side call passed the partition: %v", err)
	}
	if _, err := eps[3].Call(addrs[1], Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-side call (other direction) passed: %v", err)
	}
	// Intra-side: open.
	if _, err := eps[0].Call(addrs[1], Message{Op: OpPing}); err != nil {
		t.Fatalf("intra-side call blocked: %v", err)
	}
	if _, err := eps[2].Call(addrs[3], Message{Op: OpPing}); err != nil {
		t.Fatalf("intra-side call blocked: %v", err)
	}
	// Anonymous clients reach both sides.
	if _, err := ft.Call(addrs[0], Message{Op: OpPing}); err != nil {
		t.Fatalf("client blocked from side A: %v", err)
	}
	if _, err := ft.Call(addrs[2], Message{Op: OpPing}); err != nil {
		t.Fatalf("client blocked from side B: %v", err)
	}

	// Heal one pair; only that pair opens.
	ft.HealLink(addrs[0], addrs[2])
	if _, err := eps[0].Call(addrs[2], Message{Op: OpPing}); err != nil {
		t.Fatalf("healed link still blocked: %v", err)
	}
	if _, err := eps[2].Call(addrs[0], Message{Op: OpPing}); err != nil {
		t.Fatalf("healed link reverse direction still blocked: %v", err)
	}
	if _, err := eps[0].Call(addrs[3], Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unhealed link opened by a targeted heal: %v", err)
	}
	s = ft.Stats()
	if s.HealEvents != 1 || s.LinksHealed != 2 {
		t.Fatalf("targeted heal: events=%d healed=%d, want 1 and 2", s.HealEvents, s.LinksHealed)
	}
	// Healing an already-open pair counts the event but no links.
	ft.HealLink(addrs[0], addrs[2])
	if s = ft.Stats(); s.HealEvents != 2 || s.LinksHealed != 2 {
		t.Fatalf("idempotent heal recounted links: %+v", s)
	}
	ft.Heal()
	if s = ft.Stats(); s.LinksHealed != 8 {
		t.Fatalf("global heal: %d links healed in total, want 8", s.LinksHealed)
	}
}

// TestMemStoreTombstones: removes plant deletion records that suppress
// re-puts until GC, Entomb merges foreign tombstones keeping the latest
// At, and Replace installs both sets wholesale.
func TestMemStoreTombstones(t *testing.T) {
	s := NewMemStore()
	k := keyspace.NewKey("tomb-key")
	e := overlay.Entry{Kind: "d", Value: "v1"}

	if added, _ := s.Put(k, e); !added {
		t.Fatal("first put refused")
	}
	if removed, _ := s.Remove(k, e); !removed {
		t.Fatal("remove of a present entry reported absent")
	}
	if !s.Tombstoned(k, e) {
		t.Fatal("remove left no tombstone")
	}
	if added, err := s.Put(k, e); added || err != nil {
		t.Fatalf("put past a live tombstone: added=%v err=%v", added, err)
	}
	if got := s.Get(k); len(got) != 0 {
		t.Fatalf("suppressed entry visible: %v", got)
	}
	// Removing an absent entry still records the tombstone.
	e2 := overlay.Entry{Kind: "d", Value: "never-stored"}
	if removed, _ := s.Remove(k, e2); removed {
		t.Fatal("remove of an absent entry reported present")
	}
	if !s.Tombstoned(k, e2) {
		t.Fatal("remove of an absent entry left no tombstone")
	}
	if got := s.Tombstones(k); len(got) != 2 {
		t.Fatalf("want 2 tombstones, got %v", got)
	}
	// The key has no live entries but stays alive through its tombstones:
	// ForEach skips it, ForEachTombstone serves it.
	s.ForEach(func(key keyspace.Key, _ []overlay.Entry) bool {
		if key == k {
			t.Fatal("ForEach visited a tombstone-only key")
		}
		return true
	})
	seen := false
	s.ForEachTombstone(func(key keyspace.Key, tombs []Tombstone) bool {
		if key == k && len(tombs) == 2 {
			seen = true
		}
		return true
	})
	if !seen {
		t.Fatal("ForEachTombstone missed the tombstone-only key")
	}

	// Entomb kills a matching live entry and keeps the latest At.
	k2 := keyspace.NewKey("tomb-key-2")
	e3 := overlay.Entry{Kind: "d", Value: "v3"}
	if _, err := s.Put(k2, e3); err != nil {
		t.Fatal(err)
	}
	if fresh, _ := s.Entomb(k2, []Tombstone{{Entry: e3, At: 100}}); fresh != 1 {
		t.Fatalf("entomb fresh=%d, want 1", fresh)
	}
	if got := s.Get(k2); len(got) != 0 {
		t.Fatalf("entomb left the live entry: %v", got)
	}
	if fresh, _ := s.Entomb(k2, []Tombstone{{Entry: e3, At: 50}}); fresh != 0 {
		t.Fatal("an older At refreshed a newer tombstone")
	}
	if fresh, _ := s.Entomb(k2, []Tombstone{{Entry: e3, At: 200}}); fresh != 1 {
		t.Fatal("a newer At did not refresh the tombstone")
	}
	if got := s.Tombstones(k2); len(got) != 1 || got[0].At != 200 {
		t.Fatalf("tombstone At not kept at the maximum: %v", got)
	}

	// GC drops only expired records; a re-put then succeeds.
	if n, _ := s.GCTombstones(150); n != 0 {
		t.Fatalf("GC before the At collected %d", n)
	}
	if n, _ := s.GCTombstones(201); n != 1 {
		t.Fatalf("GC after the At collected %d, want 1", n)
	}
	if added, _ := s.Put(k2, e3); !added {
		t.Fatal("put after GC still suppressed")
	}

	// Replace installs entries and tombstones wholesale.
	if err := s.Replace(k, []overlay.Entry{e3}, []Tombstone{{Entry: e, At: 7}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(k); len(got) != 1 || got[0] != e3 {
		t.Fatalf("replace entries: %v", got)
	}
	if got := s.Tombstones(k); len(got) != 1 || got[0].Entry != e || got[0].At != 7 {
		t.Fatalf("replace tombs: %v", got)
	}
	if err := s.Replace(k, nil, nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 && s.Tombstoned(k, e) {
		t.Fatal("empty replace left state behind")
	}
}

// TestStateDigestTombstones: the repair digest covers tombstone
// identities (two replicas disagreeing only in deletions must diverge)
// but not their At values (local GC clocks must not break agreement).
func TestStateDigestTombstones(t *testing.T) {
	entries := []overlay.Entry{{Kind: "d", Value: "v1"}}
	if stateDigest(entries, nil) != entriesDigest(entries) {
		t.Fatal("tombstone-free digest must equal the legacy entries digest")
	}
	tomb := []Tombstone{{Entry: overlay.Entry{Kind: "d", Value: "dead"}, At: 1}}
	if stateDigest(entries, tomb) == stateDigest(entries, nil) {
		t.Fatal("tombstones invisible to the digest")
	}
	tombLater := []Tombstone{{Entry: overlay.Entry{Kind: "d", Value: "dead"}, At: 999}}
	if stateDigest(entries, tomb) != stateDigest(entries, tombLater) {
		t.Fatal("At leaked into the digest — local clocks would break agreement")
	}
	reordered := []Tombstone{
		{Entry: overlay.Entry{Kind: "b", Value: "2"}},
		{Entry: overlay.Entry{Kind: "a", Value: "1"}},
	}
	ordered := []Tombstone{
		{Entry: overlay.Entry{Kind: "a", Value: "1"}},
		{Entry: overlay.Entry{Kind: "b", Value: "2"}},
	}
	if stateDigest(nil, reordered) != stateDigest(nil, ordered) {
		t.Fatal("digest is tombstone-order-dependent")
	}
}

// startFaultRing boots n nodes over a FaultTransport and converges the
// ring. Returns the cluster, the fault layer, and the nodes by address.
func startFaultRing(t *testing.T, n, rf int, probeEvery int) (*Cluster, *FaultTransport, map[string]*Node) {
	t.Helper()
	ft := NewFaultTransport(NewMemTransport(), 7)
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 7}
	cluster := NewCluster(NewRetryingTransport(ft, policy), 7, rf)
	nodes := make(map[string]*Node, n)
	var bootstrap string
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			Transport:         ft.Endpoint(),
			Addr:              "mem:0",
			StabilizeInterval: 10 * time.Millisecond,
			ReplicationFactor: rf,
			Retry:             &policy,
			SuccFailThreshold: 2,
			MergeProbeEvery:   probeEvery,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		if bootstrap == "" {
			bootstrap = node.Addr()
		} else if err := node.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(node.Addr())
		nodes[node.Addr()] = node
	}
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	return cluster, ft, nodes
}

// TestOneWayPartitionKeepsSuccessor covers the asymmetric fault: when
// the successor's OUTBOUND messages to its predecessor vanish (but the
// predecessor can still reach the successor), the predecessor must not
// amputate the live successor — its own stabilize contacts keep
// succeeding — while the successor's circuit breaker trips toward the
// peer it can no longer reach. Healing the link re-converges the ring.
func TestOneWayPartitionKeepsSuccessor(t *testing.T) {
	if testing.Short() {
		t.Skip("asymmetric partition test skipped in -short mode")
	}
	ft := NewFaultTransport(NewMemTransport(), 11)
	policy := RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 11,
		Breaker: &BreakerPolicy{Threshold: 3, ProbeProb: 0.2, Cooldown: 100 * time.Millisecond, Seed: 11},
	}
	cluster := NewCluster(NewRetryingTransport(ft, policy), 11, 1)
	nodes := make(map[string]*Node, 4)
	var bootstrap string
	for i := 0; i < 4; i++ {
		p := policy
		p.Seed = 11 + int64(i)
		node, err := Start(Config{
			Transport:         ft.Endpoint(),
			Addr:              "mem:0",
			StabilizeInterval: 10 * time.Millisecond,
			ReplicationFactor: 1,
			Retry:             &p,
			SuccFailThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		if bootstrap == "" {
			bootstrap = node.Addr()
		} else if err := node.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(node.Addr())
		nodes[node.Addr()] = node
	}
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	ring := cluster.Addrs()
	pred, succ := ring[0], ring[1]
	// Block succ→pred only: succ can no longer ping its predecessor, but
	// pred's stabilize contacts of succ (and their responses) flow.
	ft.PartitionOneWay(succ, pred)

	deadline := time.Now().Add(10 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		if got := nodes[pred].Successor(); got != succ {
			t.Fatalf("one-way fault amputated a live successor: %s now precedes %s", pred, got)
		}
		if nodes[succ].BreakerStats().Trips >= 1 {
			tripped = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !tripped {
		t.Fatal("successor's breaker never tripped toward the unreachable predecessor")
	}
	// The ring still serves while asymmetric: writes and reads succeed.
	key := keyspace.NewKey("oneway-key")
	if !putWithRetry(cluster, key, overlay.Entry{Kind: "d", Value: "v"}, 6) {
		t.Fatal("put failed under a one-way partition")
	}
	if entries, _, err := cluster.Get(key); err != nil || len(entries) == 0 {
		t.Fatalf("get under a one-way partition: %v %v", entries, err)
	}

	ft.HealLink(succ, pred)
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatalf("ring did not re-converge after healing the one-way link: %v", err)
	}
}

// otherSideKnown reports whether every node knows at least one peer on
// the opposite side (the memory a post-partition merge needs).
func otherSideKnown(nodes map[string]*Node, sideOf map[string]int) bool {
	for addr, n := range nodes {
		found := false
		for _, p := range n.KnownPeers() {
			if s, ok := sideOf[p]; ok && s != sideOf[addr] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// sideRingComplete reports whether a walk from any member of side
// enumerates exactly side's members — i.e. the side has re-closed into
// its own complete ring.
func sideRingComplete(nodes map[string]*Node, side []string) bool {
	n := nodes[side[0]]
	members, complete := n.walkRing(n.Addr())
	if !complete || len(members) != len(side) {
		return false
	}
	in := make(map[string]bool, len(side))
	for _, s := range side {
		in[s] = true
	}
	for _, m := range members {
		if !in[m] {
			return false
		}
	}
	return true
}

// TestRingMergeAfterGroupPartition is the tentpole's topology test: a
// ring split into two halves stabilizes into two complete, mutually
// invisible rings; after the links heal, only the merge machinery —
// known-peer probes detecting the divergence and coordinating rejoins —
// can zip them back into one ring.
func TestRingMergeAfterGroupPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("merge test skipped in -short mode")
	}
	cluster, ft, nodes := startFaultRing(t, 8, 1, 4)

	ring := cluster.Addrs()
	sideA, sideB := ring[:4], ring[4:]
	sideOf := make(map[string]int, len(ring))
	for _, a := range sideA {
		sideOf[a] = 0
	}
	for _, b := range sideB {
		sideOf[b] = 1
	}
	// Let stabilize/fix-fingers populate the known-peers sets until every
	// node remembers someone across the future cut.
	deadline := time.Now().Add(15 * time.Second)
	for !otherSideKnown(nodes, sideOf) {
		if time.Now().After(deadline) {
			t.Fatal("known-peers sets never covered the other side")
		}
		time.Sleep(25 * time.Millisecond)
	}

	ft.PartitionGroups(sideA, sideB)
	// Each side must re-close into its own complete ring — split brain,
	// not just degraded links.
	deadline = time.Now().Add(20 * time.Second)
	for !sideRingComplete(nodes, sideA) || !sideRingComplete(nodes, sideB) {
		if time.Now().After(deadline) {
			t.Fatal("sides never stabilized into independent rings")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Heal link by link; stabilization alone cannot reconnect two
	// complete rings — WaitConverged passing below proves the merge
	// coordinator bridged them.
	for _, a := range sideA {
		for _, b := range sideB {
			ft.HealLink(a, b)
		}
	}
	if err := cluster.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("rings never merged after healing: %v", err)
	}
	var total MergeStats
	for _, n := range nodes {
		total.Merge(n.MergeStats())
	}
	if total.Probes == 0 || total.Detected == 0 {
		t.Fatalf("merge never detected the divergence: %+v", total)
	}
	if total.Rejoins == 0 {
		t.Fatalf("no coordinated rejoins recorded: %+v", total)
	}
}

// TestRepairAntiResurrection: a replica isolated during a remove keeps
// its live copy; after the partition heals and the node merges back,
// the tombstone exchange must kill the stale copy everywhere — in both
// repair directions (owner ships tombstones to replicas; a replica
// pushes its tombstones back over an owner's stale live entry).
func TestRepairAntiResurrection(t *testing.T) {
	if testing.Short() {
		t.Skip("anti-resurrection test skipped in -short mode")
	}
	cluster, ft, nodes := startFaultRing(t, 6, 2, 4)

	key := keyspace.NewKey("resurrect-me")
	entry := overlay.Entry{Kind: "d", Value: "doomed"}
	if _, err := cluster.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	// Wait until the entry is fully replicated.
	deadline := time.Now().Add(15 * time.Second)
	for countCopies(ft, cluster.Addrs(), key) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("entry never reached full replication: %d copies",
				countCopies(ft, cluster.Addrs(), key))
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Isolate one holder of the entry, remove through the rest of the
	// ring, then heal. The isolated node merges back still serving the
	// deleted entry from its local store.
	var holder string
	for _, addr := range cluster.Addrs() {
		resp, err := ft.Call(addr, Message{Op: OpGet, Key: key})
		if err == nil && len(resp.Entries) > 0 {
			holder = addr
			break
		}
	}
	if holder == "" {
		t.Fatal("no holder found")
	}
	rest := make([]string, 0, len(nodes)-1)
	for addr := range nodes {
		if addr != holder {
			rest = append(rest, addr)
		}
	}
	ft.PartitionGroups([]string{holder}, rest)
	// Let the majority side absorb the amputation, then remove.
	time.Sleep(300 * time.Millisecond)
	removeDeadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cluster.Remove(key, entry); err == nil {
			break
		}
		if time.Now().After(removeDeadline) {
			t.Fatal("remove never succeeded on the majority side")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The anonymous client bypasses the partition, so the remove landed
	// on whichever side its contact node routed to; the OTHER side still
	// serves stale live copies — the resurrection pressure under test.
	if countCopies(ft, cluster.Addrs(), key) == 0 {
		t.Fatal("no stale live copy survived the partitioned remove; nothing to resurrect")
	}
	for _, r := range rest {
		ft.HealLink(holder, r)
	}
	if err := cluster.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("holder never merged back: %v", err)
	}
	// The tombstone must win: the entry disappears from every node,
	// including the returned holder, and stays gone.
	goneDeadline := time.Now().Add(20 * time.Second)
	for {
		holders := 0
		for _, addr := range cluster.Addrs() {
			resp, err := ft.Call(addr, Message{Op: OpGet, Key: key})
			if err == nil {
				for _, e := range resp.Entries {
					if e == entry {
						holders++
						break
					}
				}
			}
		}
		if holders == 0 {
			break
		}
		if time.Now().After(goneDeadline) {
			t.Fatalf("removed entry resurrected: %d nodes still serve it", holders)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Hold the zero for a few repair rounds: a resurrection that flaps
	// back in would betray a tombstone lost in the exchange.
	time.Sleep(500 * time.Millisecond)
	for _, addr := range cluster.Addrs() {
		resp, err := ft.Call(addr, Message{Op: OpGet, Key: key})
		if err != nil {
			continue
		}
		for _, e := range resp.Entries {
			if e == entry {
				t.Fatalf("entry resurrected on %s after settling", addr)
			}
		}
	}
}

// TestSplitBrainSoak is the acceptance storm: the ring is group-
// partitioned into two halves mid-storm while writes AND removes keep
// landing on both sides, healed link by link, and held to zero
// acked-write loss, zero resurrections, full replica coverage and
// single-ring convergence — which requires the merge path end to end.
func TestSplitBrainSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("split-brain soak skipped in -short mode")
	}
	report, err := RunSoak(SoakConfig{
		Nodes:          12,
		Ops:            120,
		Seed:           77,
		PartitionWidth: 6,
		RemoveEvery:    10,
		VerifyReplicas: true,
		Log:            t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	if !report.Converged {
		t.Error("ring did not re-merge into a single ring after the storm")
	}
	if len(report.Episodes) == 0 {
		t.Fatal("no partition episode executed")
	}
	ep := report.Episodes[0]
	if ep.SideA != 6 || ep.SideB != 6 {
		t.Errorf("episode sides %d|%d, want 6|6", ep.SideA, ep.SideB)
	}
	if ep.HealOp < 0 {
		t.Error("episode never healed mid-storm")
	}
	if report.Merges.Detected == 0 {
		t.Errorf("no ring divergence detected — the merge path went unexercised: %+v", report.Merges)
	}
	if len(report.LostKeys) > 0 {
		t.Errorf("lost %d acked writes across the split: %v", len(report.LostKeys), report.LostKeys)
	}
	if report.Removes == 0 {
		t.Error("no remove ever acked — the tombstone path went unexercised")
	}
	if len(report.Resurrections) > 0 {
		t.Errorf("%d removed entries resurrected: %v", len(report.Resurrections), report.Resurrections)
	}
	if len(report.ReplicaViolations) > 0 {
		t.Errorf("%d keys off full replica coverage after the merge: %v",
			len(report.ReplicaViolations), report.ReplicaViolations)
	}
	if report.Tombstones.Created == 0 {
		t.Error("no tombstones created despite acked removes")
	}
	if report.Faults.LinksCut == 0 || report.Faults.LinksHealed == 0 {
		t.Errorf("partition link accounting silent: %+v", report.Faults)
	}
}
