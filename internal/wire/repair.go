package wire

import (
	"hash/fnv"
	"sort"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Anti-entropy repair: instead of blindly re-pushing every owned entry to
// the successors each round (the PR 1 behaviour), a node periodically
// recomputes where each stored key belongs on the CURRENT ring and makes
// the stored state match.
//
//  1. Sync: for each owned key, exchange a small (key, digest) pair with
//     the first ReplicationFactor successors (OpRepairSync). Replicas
//     answer with the keys whose digest differs; only those are shipped,
//     with replace semantics so stale extra entries on the replica (e.g.
//     a Remove it missed during a partition) are corrected too.
//  2. Drop: keys this node no longer owes — outside the window
//     (p_{R+1}, self], where p_i is the i-th predecessor — are first
//     forwarded to their routed owner (they may be the only surviving
//     copy, e.g. a write that landed on a stale owner during a
//     partition) and only then deleted locally.
//
// Both halves are idempotent and best-effort: a failed RPC leaves the
// key in place and a later round retries. A converged replica set costs
// one digest message per successor per round.

// RepairStats is a point-in-time snapshot of a node's anti-entropy
// repair work. The counters behind it are atomic, so snapshots taken
// while the node is live are race-free.
type RepairStats struct {
	// Rounds counts repair rounds started.
	Rounds int64
	// Syncs counts digest exchanges answered by a replica.
	Syncs int64
	// Pushes counts keys shipped to a replica that was missing them (or
	// held a divergent copy).
	Pushes int64
	// Forwards counts misplaced keys routed back to their current owner
	// before being dropped locally.
	Forwards int64
	// Drops counts local copies deleted because the node no longer owes
	// them.
	Drops int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *RepairStats) Merge(o RepairStats) {
	s.Rounds += o.Rounds
	s.Syncs += o.Syncs
	s.Pushes += o.Pushes
	s.Forwards += o.Forwards
	s.Drops += o.Drops
}

// repairCounters holds the per-node repair telemetry.
type repairCounters struct {
	rounds   *telemetry.Counter
	syncs    *telemetry.Counter
	pushes   *telemetry.Counter
	forwards *telemetry.Counter
	drops    *telemetry.Counter
}

func newRepairCounters() repairCounters {
	return repairCounters{
		rounds: telemetry.NewCounter("wire_repair_rounds_total",
			"Anti-entropy repair rounds started."),
		syncs: telemetry.NewCounter("wire_repair_syncs_total",
			"Digest exchanges answered by a replica."),
		pushes: telemetry.NewCounter("wire_repair_pushes_total",
			"Keys shipped to a replica that was missing them or held a divergent copy."),
		forwards: telemetry.NewCounter("wire_repair_forwards_total",
			"Misplaced keys routed back to their current owner before a local drop."),
		drops: telemetry.NewCounter("wire_repair_drops_total",
			"Local copies deleted because the node no longer owes them."),
	}
}

func (c repairCounters) attach(reg *telemetry.Registry) {
	reg.Attach(c.rounds, c.syncs, c.pushes, c.forwards, c.drops)
}

// entriesDigest hashes a key's entry set order-independently (FNV-1a
// over the sorted entries), so two replicas agree on the digest no
// matter what order writes arrived in. Empty sets digest to 0.
func entriesDigest(entries []overlay.Entry) uint64 {
	if len(entries) == 0 {
		return 0
	}
	sorted := make([]overlay.Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Kind != sorted[j].Kind {
			return sorted[i].Kind < sorted[j].Kind
		}
		return sorted[i].Value < sorted[j].Value
	})
	h := fnv.New64a()
	for _, e := range sorted {
		_, _ = h.Write([]byte(e.Kind))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(e.Value))
		_, _ = h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// repairOnce runs one anti-entropy round (sync then drop). Called from
// the maintenance goroutine; all RPCs happen outside the node lock.
func (n *Node) repairOnce() {
	n.repair.rounds.Inc()
	n.syncReplicas()
	n.dropStaleCopies()
}

// syncReplicas digest-syncs the locally-owned keys with the first
// ReplicationFactor successors and ships only the divergent ones.
func (n *Node) syncReplicas() {
	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	pred := n.pred
	var owned []KeyDigest
	n.store.ForEach(func(k keyspace.Key, entries []overlay.Entry) bool {
		if pred != "" && !k.Between(idOf(pred), n.id) {
			return true // a replica held for another owner
		}
		owned = append(owned, KeyDigest{Key: k, Digest: entriesDigest(entries)})
		return true
	})
	n.mu.Unlock()
	if len(owned) == 0 {
		return
	}
	sent := 0
	for _, succ := range succs {
		if succ == n.addr {
			continue
		}
		if sent >= n.cfg.ReplicationFactor {
			break
		}
		sent++
		// Best effort: a dead successor is healed by stabilization and a
		// later repair round.
		resp, err := n.cfg.Transport.Call(succ, Message{Op: OpRepairSync, Digests: owned})
		if err != nil || remoteError(resp) != nil {
			continue
		}
		n.repair.syncs.Inc()
		if len(resp.Digests) == 0 {
			continue // replica already converged
		}
		n.mu.Lock()
		kv := make([]KeyEntries, 0, len(resp.Digests))
		for _, want := range resp.Digests {
			kv = append(kv, KeyEntries{Key: want.Key, Entries: n.store.Get(want.Key)})
		}
		n.mu.Unlock()
		if sresp, serr := n.cfg.Transport.Call(succ, Message{Op: OpRepairSync, KV: kv}); serr == nil && remoteError(sresp) == nil {
			n.repair.pushes.Add(int64(len(kv)))
		}
	}
}

// dropStaleCopies deletes copies this node no longer owes. A node owes a
// key iff the key's owner is within ReplicationFactor predecessors, i.e.
// the key falls in (p_{R+1}, self]. The window start is found by walking
// the predecessor chain; if the walk fails or wraps back to this node
// (ring shorter than the window) every key is owed and nothing is
// dropped — erring on the side of keeping data. Misplaced keys are
// forwarded to their routed owner before the local delete so the last
// surviving copy of a partition-era write cannot be destroyed.
func (n *Node) dropStaleCopies() {
	n.mu.Lock()
	pred := n.pred
	n.mu.Unlock()
	if pred == "" || pred == n.addr {
		return
	}
	start := pred
	for i := 0; i < n.cfg.ReplicationFactor; i++ {
		resp, err := n.cfg.Transport.Call(start, Message{Op: OpGetPredecessor})
		if err != nil || resp.Addr == "" {
			return // window unknown; keep everything this round
		}
		start = resp.Addr
		if start == n.addr {
			return // wrapped: the ring fits inside the window
		}
	}
	windowFrom := idOf(start)

	n.mu.Lock()
	var stale []KeyEntries
	n.store.ForEach(func(k keyspace.Key, entries []overlay.Entry) bool {
		if k.Between(windowFrom, n.id) {
			return true // owed: owned or within the replica window
		}
		out := make([]overlay.Entry, len(entries))
		copy(out, entries)
		stale = append(stale, KeyEntries{Key: k, Entries: out})
		return true
	})
	n.mu.Unlock()

	// Group the misplaced keys by their routed owner so each owner
	// receives ONE OpTransfer carrying every key it now owes, instead of
	// one RPC per key — post-churn repair traffic scales with the number
	// of owners involved, not the number of keys.
	groups := make(map[string][]KeyEntries)
	var owners []string
	for _, item := range stale {
		resp := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: item.Key, TTL: n.cfg.TTL})
		if resp.Err != "" {
			continue // can't route; retry next round
		}
		owner := resp.Addr
		if owner == n.addr {
			continue // routing disagrees with the window; keep the copy
		}
		if _, ok := groups[owner]; !ok {
			owners = append(owners, owner)
		}
		groups[owner] = append(groups[owner], item)
	}
	for _, owner := range owners {
		group := groups[owner]
		tresp, err := n.cfg.Transport.Call(owner, Message{Op: OpTransfer, KV: group})
		if err != nil || remoteError(tresp) != nil {
			continue // owner unreachable; keep the copies and retry later
		}
		n.repair.forwards.Add(int64(len(group)))
		n.mu.Lock()
		for _, item := range group {
			// Drop only if unchanged since the snapshot — an entry written
			// in the meantime has not been forwarded and must not be lost.
			if entriesDigest(n.store.Get(item.Key)) == entriesDigest(item.Entries) {
				if n.store.Replace(item.Key, nil) == nil {
					n.repair.drops.Inc()
				}
			}
		}
		n.mu.Unlock()
	}
}

// handleRepairSync serves both halves of the repair exchange. A request
// carrying KV is the ship phase: the owner's entry sets REPLACE the
// local ones (an empty set deletes), so divergent extra entries — e.g. a
// Remove this replica missed — are corrected, not merged back in. A
// request carrying only Digests is the offer phase: the response lists
// the keys whose local digest differs and should be shipped.
func (n *Node) handleRepairSync(req Message) Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(req.KV) > 0 {
		for _, item := range req.KV {
			if err := n.store.Replace(item.Key, item.Entries); err != nil {
				// Refuse the ack: the owner keeps counting this replica as
				// divergent and re-ships next round.
				return Message{Op: req.Op, Err: err.Error()}
			}
		}
		return Message{Op: req.Op, Ok: true}
	}
	var want []KeyDigest
	for _, d := range req.Digests {
		if entriesDigest(n.store.Get(d.Key)) != d.Digest {
			want = append(want, KeyDigest{Key: d.Key})
		}
	}
	return Message{Op: req.Op, Ok: true, Digests: want}
}

// ownerOf is a small helper for tests and diagnostics: it routes key
// from this node and returns the owner's address.
func (n *Node) ownerOf(key keyspace.Key) (string, error) {
	resp := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: key, TTL: n.cfg.TTL})
	if resp.Err != "" {
		return "", remoteError(resp)
	}
	return resp.Addr, nil
}
