package wire

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Anti-entropy repair: instead of blindly re-pushing every owned entry to
// the successors each round (the PR 1 behaviour), a node periodically
// recomputes where each stored key belongs on the CURRENT ring and makes
// the stored state match.
//
//  1. Sync: for each owned key, exchange a small (key, digest) pair with
//     the first ReplicationFactor successors (OpRepairSync). The digest
//     covers live entries AND tombstone identities. Replicas answer with
//     the keys whose digest differs — plus their own tombstones for
//     those keys, which the owner entombs BEFORE shipping: a removal
//     that only a replica witnessed (the far side of a healed partition)
//     must reach the owner, or the owner's replace-ship would resurrect
//     the entry. Divergent keys are then shipped with replace semantics
//     covering both sets.
//  2. Drop: keys this node no longer owes — outside the window
//     (p_{R+1}, self], where p_i is the i-th predecessor — are first
//     forwarded to their routed owner (they may be the only surviving
//     copy, e.g. a write that landed on a stale owner during a
//     partition) and only then deleted locally. Tombstone-only keys are
//     forwarded too: the deletion record may be the only thing standing
//     between a stale copy elsewhere and a resurrection.
//
// Both halves are idempotent and best-effort: a failed RPC leaves the
// key in place and a later round retries. A converged replica set costs
// one digest message per successor per round.

// RepairStats is a point-in-time snapshot of a node's anti-entropy
// repair work. The counters behind it are atomic, so snapshots taken
// while the node is live are race-free.
type RepairStats struct {
	// Rounds counts repair rounds started.
	Rounds int64
	// Syncs counts digest exchanges answered by a replica.
	Syncs int64
	// Pushes counts keys shipped to a replica that was missing them (or
	// held a divergent copy).
	Pushes int64
	// Forwards counts misplaced keys routed back to their current owner
	// before being dropped locally.
	Forwards int64
	// Drops counts local copies deleted because the node no longer owes
	// them.
	Drops int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *RepairStats) Merge(o RepairStats) {
	s.Rounds += o.Rounds
	s.Syncs += o.Syncs
	s.Pushes += o.Pushes
	s.Forwards += o.Forwards
	s.Drops += o.Drops
}

// repairCounters holds the per-node repair telemetry.
type repairCounters struct {
	rounds   *telemetry.Counter
	syncs    *telemetry.Counter
	pushes   *telemetry.Counter
	forwards *telemetry.Counter
	drops    *telemetry.Counter
}

func newRepairCounters() repairCounters {
	return repairCounters{
		rounds: telemetry.NewCounter("wire_repair_rounds_total",
			"Anti-entropy repair rounds started."),
		syncs: telemetry.NewCounter("wire_repair_syncs_total",
			"Digest exchanges answered by a replica."),
		pushes: telemetry.NewCounter("wire_repair_pushes_total",
			"Keys shipped to a replica that was missing them or held a divergent copy."),
		forwards: telemetry.NewCounter("wire_repair_forwards_total",
			"Misplaced keys routed back to their current owner before a local drop."),
		drops: telemetry.NewCounter("wire_repair_drops_total",
			"Local copies deleted because the node no longer owes them."),
	}
}

func (c repairCounters) attach(reg *telemetry.Registry) {
	reg.Attach(c.rounds, c.syncs, c.pushes, c.forwards, c.drops)
}

// entriesDigest hashes a key's entry set order-independently (FNV-1a
// over the sorted entries), so two replicas agree on the digest no
// matter what order writes arrived in. Empty sets digest to 0.
func entriesDigest(entries []overlay.Entry) uint64 {
	if len(entries) == 0 {
		return 0
	}
	sorted := make([]overlay.Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Kind != sorted[j].Kind {
			return sorted[i].Kind < sorted[j].Kind
		}
		return sorted[i].Value < sorted[j].Value
	})
	h := fnv.New64a()
	for _, e := range sorted {
		_, _ = h.Write([]byte(e.Kind))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(e.Value))
		_, _ = h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// stateDigest extends entriesDigest with the key's tombstone
// identities. At timestamps are excluded: they are local-clock GC
// metadata, and two stores holding tombstones for the same entries must
// agree on the digest regardless of when each learned of the removal.
func stateDigest(entries []overlay.Entry, tombs []Tombstone) uint64 {
	if len(tombs) == 0 {
		return entriesDigest(entries)
	}
	sorted := make([]Tombstone, len(tombs))
	copy(sorted, tombs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Entry.Kind != sorted[j].Entry.Kind {
			return sorted[i].Entry.Kind < sorted[j].Entry.Kind
		}
		return sorted[i].Entry.Value < sorted[j].Entry.Value
	})
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], entriesDigest(entries))
	_, _ = h.Write(buf[:])
	for _, t := range sorted {
		_, _ = h.Write([]byte(t.Entry.Kind))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(t.Entry.Value))
		_, _ = h.Write([]byte{0xfe})
	}
	return h.Sum64()
}

// ownedState collects the keys this node owns (live entries or
// tombstones) and their digests. Each key's digest is computed under
// that key's read lock, so a digest always describes a consistent
// (entries, tombstones) pair even while writers hit other keys.
func (n *Node) ownedState(pred string) []KeyDigest {
	keys := n.localKeys()
	var owned []KeyDigest
	for _, k := range keys {
		if pred != "" && !k.Between(idOf(pred), n.id) {
			continue // a replica held for another owner
		}
		var d uint64
		_ = n.store.View(k, func(s Store) error {
			d = stateDigest(s.Get(k), s.Tombstones(k))
			return nil
		})
		owned = append(owned, KeyDigest{Key: k, Digest: d})
	}
	return owned
}

// localKeys lists every key the store holds state for — live entries or
// tombstones. The store serializes the iteration itself; n.mu is not
// involved.
func (n *Node) localKeys() []keyspace.Key {
	var keys []keyspace.Key
	seen := make(map[keyspace.Key]bool)
	n.store.ForEach(func(k keyspace.Key, _ []overlay.Entry) bool {
		seen[k] = true
		keys = append(keys, k)
		return true
	})
	n.store.ForEachTombstone(func(k keyspace.Key, _ []Tombstone) bool {
		if !seen[k] {
			keys = append(keys, k)
		}
		return true
	})
	return keys
}

// repairOnce runs one anti-entropy round (sync then drop). Called from
// the maintenance goroutine; all RPCs happen outside the node lock.
func (n *Node) repairOnce() {
	n.repair.rounds.Inc()
	n.syncReplicas()
	n.dropStaleCopies()
}

// RepairNow runs one synchronous anti-entropy round (replica digest
// sync, then stale-copy drop with misplaced-key forwarding) outside the
// background cadence. Harnesses and operators use it to force
// convergence at a known point — e.g. re-homing entries that landed on
// an interim owner while overload shedding made the ring route around
// a busy node — instead of waiting out Config.RepairEvery. Safe to call
// concurrently with the maintenance loop: repair rounds are idempotent
// and every store mutation runs in a per-key critical section.
func (n *Node) RepairNow() { n.repairOnce() }

// syncReplicas digest-syncs the locally-owned keys with the first
// ReplicationFactor successors and ships only the divergent ones. A
// replica's answer may carry tombstones the owner has not seen; they
// are entombed locally before the ship so the merged state — not the
// owner's stale view — is what replicas converge to.
func (n *Node) syncReplicas() {
	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	pred := n.pred
	n.mu.Unlock()
	owned := n.ownedState(pred)
	if len(owned) == 0 {
		return
	}
	sent := 0
	for _, succ := range succs {
		if succ == n.addr {
			continue
		}
		if sent >= n.cfg.ReplicationFactor {
			break
		}
		sent++
		// Best effort: a dead successor is healed by stabilization and a
		// later repair round.
		resp, err := n.cfg.Transport.Call(succ, Message{Op: OpRepairSync, Digests: owned})
		if err != nil || remoteError(resp) != nil {
			continue
		}
		n.repair.syncs.Inc()
		if len(resp.Digests) == 0 {
			continue // replica already converged
		}
		// Index the replica's pushed-back tombstones by key so each key's
		// entomb and snapshot happen inside ONE critical section: the
		// shipped state is guaranteed to include the merged tombstones.
		pushTombs := make(map[keyspace.Key][]Tombstone, len(resp.KV))
		for _, item := range resp.KV {
			if len(item.Tombs) > 0 {
				pushTombs[item.Key] = item.Tombs
			}
		}
		kv := make([]KeyEntries, 0, len(resp.Digests))
		for _, want := range resp.Digests {
			want := want
			_ = n.store.Update(want.Key, func(s Store) error {
				// Tombstone push-back: the replica witnessed removals this
				// owner missed. Entomb them first — shipping without them
				// would resurrect the entries on every replica.
				if ts := pushTombs[want.Key]; len(ts) > 0 {
					if fresh, terr := s.Entomb(want.Key, ts); terr == nil {
						n.tomb.merged.Add(int64(fresh))
					}
				}
				kv = append(kv, KeyEntries{
					Key:     want.Key,
					Entries: s.Get(want.Key),
					Tombs:   s.Tombstones(want.Key),
				})
				return nil
			})
		}
		if sresp, serr := n.cfg.Transport.Call(succ, Message{Op: OpRepairSync, KV: kv}); serr == nil && remoteError(sresp) == nil {
			n.repair.pushes.Add(int64(len(kv)))
		}
	}
}

// dropStaleCopies deletes copies this node no longer owes. A node owes a
// key iff the key's owner is within ReplicationFactor predecessors, i.e.
// the key falls in (p_{R+1}, self]. The window start is found by walking
// the predecessor chain; if the walk fails or wraps back to this node
// (ring shorter than the window) every key is owed and nothing is
// dropped — erring on the side of keeping data. Misplaced keys are
// forwarded to their routed owner before the local delete so the last
// surviving copy of a partition-era write cannot be destroyed.
func (n *Node) dropStaleCopies() {
	n.mu.Lock()
	pred := n.pred
	n.mu.Unlock()
	if pred == "" || pred == n.addr {
		return
	}
	start := pred
	for i := 0; i < n.cfg.ReplicationFactor; i++ {
		resp, err := n.cfg.Transport.Call(start, Message{Op: OpGetPredecessor})
		if err != nil || resp.Addr == "" {
			return // window unknown; keep everything this round
		}
		start = resp.Addr
		if start == n.addr {
			return // wrapped: the ring fits inside the window
		}
	}
	windowFrom := idOf(start)

	var stale []KeyEntries
	for _, k := range n.localKeys() {
		if k.Between(windowFrom, n.id) {
			continue // owed: owned or within the replica window
		}
		var item KeyEntries
		// Per-key snapshot under the key's read lock: the forwarded copy
		// and the digest compared before the drop describe one moment.
		_ = n.store.View(k, func(s Store) error {
			item = KeyEntries{Key: k, Entries: s.Get(k), Tombs: s.Tombstones(k)}
			return nil
		})
		if len(item.Entries) == 0 && len(item.Tombs) == 0 {
			continue
		}
		stale = append(stale, item)
	}

	// Group the misplaced keys by their routed owner so each owner
	// receives ONE OpTransfer carrying every key it now owes, instead of
	// one RPC per key — post-churn repair traffic scales with the number
	// of owners involved, not the number of keys.
	groups := make(map[string][]KeyEntries)
	var owners []string
	for _, item := range stale {
		resp := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: item.Key, TTL: n.cfg.TTL})
		if resp.Err != "" {
			continue // can't route; retry next round
		}
		owner := resp.Addr
		if owner == n.addr {
			continue // routing disagrees with the window; keep the copy
		}
		if _, ok := groups[owner]; !ok {
			owners = append(owners, owner)
		}
		groups[owner] = append(groups[owner], item)
	}
	for _, owner := range owners {
		group := groups[owner]
		tresp, err := n.cfg.Transport.Call(owner, Message{Op: OpTransfer, KV: group})
		if err != nil || remoteError(tresp) != nil {
			continue // owner unreachable; keep the copies and retry later
		}
		n.repair.forwards.Add(int64(len(group)))
		for _, item := range group {
			item := item
			// Drop only if unchanged since the snapshot — an entry written
			// in the meantime has not been forwarded and must not be lost.
			// The compare and the delete share one critical section so a
			// write cannot slip between them.
			_ = n.store.Update(item.Key, func(s Store) error {
				if stateDigest(s.Get(item.Key), s.Tombstones(item.Key)) == stateDigest(item.Entries, item.Tombs) {
					if s.Replace(item.Key, nil, nil) == nil {
						n.repair.drops.Inc()
					}
				}
				return nil
			})
		}
	}
}

// handleRepairSync serves both halves of the repair exchange. A request
// carrying KV is the ship phase: the owner's entry AND tombstone sets
// REPLACE the local ones (both empty deletes), so divergent extra
// entries — e.g. a Remove this replica missed — are corrected, not
// merged back in. A request carrying only Digests is the offer phase:
// the response lists the keys whose local digest differs, and carries
// this replica's tombstones for those keys so the owner can entomb
// removals it missed before shipping the merged state back.
func (n *Node) handleRepairSync(req Message) Message {
	if len(req.KV) > 0 {
		for _, item := range req.KV {
			if err := n.store.Replace(item.Key, item.Entries, item.Tombs); err != nil {
				// Refuse the ack: the owner keeps counting this replica as
				// divergent and re-ships next round.
				return Message{Op: req.Op, Err: err.Error()}
			}
		}
		return Message{Op: req.Op, Ok: true}
	}
	var want []KeyDigest
	var push []KeyEntries
	for _, d := range req.Digests {
		d := d
		// Per-key View: the digest and the pushed-back tombstones for a
		// key come from one consistent snapshot.
		_ = n.store.View(d.Key, func(s Store) error {
			if stateDigest(s.Get(d.Key), s.Tombstones(d.Key)) != d.Digest {
				want = append(want, KeyDigest{Key: d.Key})
				if ts := s.Tombstones(d.Key); len(ts) > 0 {
					push = append(push, KeyEntries{Key: d.Key, Tombs: ts})
				}
			}
			return nil
		})
	}
	return Message{Op: req.Op, Ok: true, Digests: want, KV: push}
}

// ownerOf is a small helper for tests and diagnostics: it routes key
// from this node and returns the owner's address.
func (n *Node) ownerOf(key keyspace.Key) (string, error) {
	resp := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: key, TTL: n.cfg.TTL})
	if resp.Err != "" {
		return "", remoteError(resp)
	}
	return resp.Addr, nil
}
