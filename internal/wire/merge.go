package wire

// Ring merge: healing a split-brain partition back into one ring.
//
// A group partition amputates the ring into independent sub-rings that
// each stabilize into a consistent — but mutually invisible — overlay.
// Successor lists and fingers on each side converge to members of that
// side only, so once the network heals nothing in plain stabilization
// ever bridges the two rings again: every pointer a node repairs is
// already inside its own ring.
//
// The bridge is memory. Each node keeps a bounded set of peers it has
// ever learned about (join bootstrap, successor lists, predecessor
// reports, finger results). Every MergeProbeEvery maintenance rounds a
// node samples one known peer OUTSIDE its current view and asks it to
// locate the successor of the node's own id. In a single ring the
// answer is the node itself; any other answer proves the peer routes on
// a divergent ring, and the prober coordinates a merge:
//
//  1. Walk both rings via OpGetSuccessor to enumerate members. Abort if
//     either walk is incomplete (a node mid-churn) or the rings overlap
//     (already zipped — stabilization will finish the job).
//  2. The smaller ring rejoins through the larger: every member of the
//     smaller ring receives OpMerge naming a member of the larger ring
//     as a fresh bootstrap. Ties break toward the ring holding the
//     lexicographically smallest address so both sides pick the same
//     winner.
//  3. An OpMerge receiver re-locates its own successor through the
//     bootstrap and adopts the answer if it sits closer than its
//     current successor, then notifies it. Stabilization and the
//     anti-entropy repair loop then zip pointers and reconcile data.
//
// Probing is cheap (one lookup per probe interval) and safe: a false
// positive is impossible — a peer in the same ring always returns the
// prober itself — and a failed probe keeps the peer in the known set,
// because unreachability is exactly what a partition looks like.

import (
	"sort"

	"dhtindex/internal/telemetry"
)

// walkBound caps ring-walk length during merge coordination, so a
// corrupted successor chain cannot loop the coordinator forever.
const walkBound = 512

// MergeStats is a snapshot of a node's ring-merge counters.
type MergeStats struct {
	// Probes counts divergence probes sent to sampled known peers.
	Probes int64
	// Detected counts probes that found a divergent ring.
	Detected int64
	// Aborts counts merge coordinations abandoned (incomplete walk or
	// overlapping rings).
	Aborts int64
	// Coordinations counts merges driven to the fan-out stage.
	Coordinations int64
	// Rejoins counts OpMerge calls acknowledged by smaller-ring members.
	Rejoins int64
	// Adopts counts successors adopted while handling OpMerge.
	Adopts int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *MergeStats) Merge(o MergeStats) {
	s.Probes += o.Probes
	s.Detected += o.Detected
	s.Aborts += o.Aborts
	s.Coordinations += o.Coordinations
	s.Rejoins += o.Rejoins
	s.Adopts += o.Adopts
}

// mergeCounters holds the per-node ring-merge telemetry.
type mergeCounters struct {
	probes        *telemetry.Counter
	detected      *telemetry.Counter
	aborts        *telemetry.Counter
	coordinations *telemetry.Counter
	rejoins       *telemetry.Counter
	adopts        *telemetry.Counter
}

func newMergeCounters() mergeCounters {
	return mergeCounters{
		probes: telemetry.NewCounter("wire_merge_probes_total",
			"Divergence probes sent to sampled known peers."),
		detected: telemetry.NewCounter("wire_merge_detected_total",
			"Probes that found a divergent ring."),
		aborts: telemetry.NewCounter("wire_merge_aborts_total",
			"Merge coordinations abandoned on incomplete walks or overlapping rings."),
		coordinations: telemetry.NewCounter("wire_merge_coordinations_total",
			"Merges driven to the rejoin fan-out stage."),
		rejoins: telemetry.NewCounter("wire_merge_rejoins_total",
			"OpMerge rejoins acknowledged by smaller-ring members."),
		adopts: telemetry.NewCounter("wire_merge_adopts_total",
			"Successors adopted while handling OpMerge."),
	}
}

func (c mergeCounters) attach(reg *telemetry.Registry) {
	reg.Attach(c.probes, c.detected, c.aborts, c.coordinations, c.rejoins, c.adopts)
}

// TombstoneStats is a snapshot of a node's deletion-record counters.
type TombstoneStats struct {
	// Created counts tombstones recorded by remove handlers.
	Created int64
	// Merged counts tombstones learned from peers (repair push-back,
	// handovers, adopted key ranges).
	Merged int64
	// Suppressed counts puts refused because a live tombstone covered
	// the entry.
	Suppressed int64
	// GCd counts tombstones dropped after TombstoneTTL.
	GCd int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *TombstoneStats) Merge(o TombstoneStats) {
	s.Created += o.Created
	s.Merged += o.Merged
	s.Suppressed += o.Suppressed
	s.GCd += o.GCd
}

// tombstoneCounters holds the per-node deletion-record telemetry.
type tombstoneCounters struct {
	created    *telemetry.Counter
	merged     *telemetry.Counter
	suppressed *telemetry.Counter
	gcd        *telemetry.Counter
}

func newTombstoneCounters() tombstoneCounters {
	return tombstoneCounters{
		created: telemetry.NewCounter("wire_tombstones_created_total",
			"Tombstones recorded by remove handlers."),
		merged: telemetry.NewCounter("wire_tombstones_merged_total",
			"Tombstones learned from peers during repair, handover, or adoption."),
		suppressed: telemetry.NewCounter("wire_tombstones_suppressed_total",
			"Puts refused because a live tombstone covered the entry."),
		gcd: telemetry.NewCounter("wire_tombstones_gcd_total",
			"Tombstones dropped after TombstoneTTL."),
	}
}

func (c tombstoneCounters) attach(reg *telemetry.Registry) {
	reg.Attach(c.created, c.merged, c.suppressed, c.gcd)
}

// notePeersLocked folds addresses into the bounded known-peers set.
// Caller holds n.mu. Peers are never removed on probe failure — during
// a partition the unreachable side is exactly the memory a later merge
// needs — only random eviction keeps the set bounded.
func (n *Node) notePeersLocked(addrs ...string) {
	for _, a := range addrs {
		if a == "" || a == n.addr || n.known[a] {
			continue
		}
		n.known[a] = true
		if len(n.known) > n.cfg.KnownPeersMax {
			// Evict a uniformly random victim (reservoir over map order
			// would bias toward iteration artifacts; n.rng keeps the
			// choice deterministic per node).
			victims := make([]string, 0, len(n.known))
			for p := range n.known {
				if p != a {
					victims = append(victims, p)
				}
			}
			sort.Strings(victims)
			delete(n.known, victims[n.rng.Intn(len(victims))])
		}
	}
}

// mergeProbe samples one known peer outside the node's current view and
// asks it to locate the successor of the node's own id. Any answer
// other than the node itself proves the peer routes on a divergent
// ring.
func (n *Node) mergeProbe() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	view := map[string]bool{n.addr: true, n.pred: true}
	for _, s := range n.succs {
		view[s] = true
	}
	for _, f := range n.fingers {
		view[f] = true
	}
	outside := make([]string, 0, len(n.known))
	for p := range n.known {
		if !view[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		n.mu.Unlock()
		return
	}
	sort.Strings(outside)
	peer := outside[n.rng.Intn(len(outside))]
	n.mu.Unlock()

	n.merge.probes.Inc()
	resp, err := n.cfg.Transport.Call(peer, Message{Op: OpFindSuccessor, Key: n.id, TTL: n.cfg.TTL})
	if err != nil || resp.Err != "" || resp.Addr == "" {
		// Unreachable or unable to answer: keep the peer — transient
		// failure is what a partition looks like from here.
		return
	}
	if resp.Addr == n.addr {
		return // same ring
	}
	n.merge.detected.Inc()
	n.coordinateMerge(resp.Addr)
}

// walkRing enumerates ring members by following OpGetSuccessor pointers
// from start. complete is true only when the walk wrapped back to
// start; a failed hop, a revisit of a non-start member (a lasso), or
// exceeding walkBound reports the partial membership with complete
// false.
func (n *Node) walkRing(start string) (members []string, complete bool) {
	seen := map[string]bool{start: true}
	members = []string{start}
	cur := start
	for hops := 0; hops < walkBound; hops++ {
		var next string
		if cur == n.addr {
			n.mu.Lock()
			next = n.succs[0]
			n.mu.Unlock()
		} else {
			resp, err := n.cfg.Transport.Call(cur, Message{Op: OpGetSuccessor})
			if err != nil || resp.Addr == "" {
				return members, false
			}
			next = resp.Addr
		}
		if next == start {
			return members, true
		}
		if seen[next] {
			return members, false // lasso: the chain loops past start
		}
		seen[next] = true
		members = append(members, next)
		cur = next
	}
	return members, false
}

// coordinateMerge walks the local ring and the foreign ring (reached at
// foreign) and rejoins the smaller ring's members through the larger
// ring. Aborts when either walk is incomplete or the rings share a
// member — both mean the overlay is mid-churn and a later probe will
// retry from a cleaner state.
func (n *Node) coordinateMerge(foreign string) {
	mine, okMine := n.walkRing(n.addr)
	theirs, okTheirs := n.walkRing(foreign)
	if !okMine || !okTheirs {
		n.merge.aborts.Inc()
		return
	}
	mineSet := make(map[string]bool, len(mine))
	for _, m := range mine {
		mineSet[m] = true
	}
	for _, m := range theirs {
		if mineSet[m] {
			n.merge.aborts.Inc()
			return // already zipping; stabilization finishes the job
		}
	}
	smaller, larger := theirs, mine
	if len(mine) < len(theirs) ||
		(len(mine) == len(theirs) && minString(theirs) < minString(mine)) {
		smaller, larger = mine, theirs
	}
	n.merge.coordinations.Inc()
	for i, m := range smaller {
		boot := larger[i%len(larger)]
		if m == n.addr {
			if n.rejoinVia(boot) {
				n.merge.rejoins.Inc()
			}
			continue
		}
		resp, err := n.cfg.Transport.Call(m, Message{Op: OpMerge, Addr: boot})
		if err == nil && resp.Ok {
			n.merge.rejoins.Inc()
		}
	}
	// Remember the far side so follow-up probes can verify convergence.
	n.mu.Lock()
	n.notePeersLocked(larger...)
	n.notePeersLocked(smaller...)
	n.mu.Unlock()
}

// handleMerge rejoins this node through the bootstrap named in the
// request: the overlay equivalent of a fresh Join, minus the handover
// (anti-entropy reconciles data once pointers zip).
func (n *Node) handleMerge(req Message) Message {
	if n.rejoinVia(req.Addr) {
		return Message{Op: OpMerge, Ok: true}
	}
	return Message{Op: OpMerge, Ok: false}
}

// rejoinVia locates this node's successor through boot and adopts the
// answer if it sits strictly closer than the current successor (or the
// node is alone). The adopted successor is then notified so its
// predecessor pointer — and the rest of the zip — follows by
// stabilization.
func (n *Node) rejoinVia(boot string) bool {
	if boot == "" || boot == n.addr {
		return false
	}
	resp, err := n.cfg.Transport.Call(boot, Message{Op: OpFindSuccessor, Key: n.id, TTL: n.cfg.TTL})
	if err != nil || resp.Err != "" || resp.Addr == "" || resp.Addr == n.addr {
		return false
	}
	cand := resp.Addr
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return false
	}
	cur := n.succs[0]
	adopt := cur == n.addr || idOf(cand).Between(n.id, idOf(cur)) && cand != cur
	if adopt {
		n.succs[0] = cand
		n.merge.adopts.Inc()
	}
	n.notePeersLocked(boot, cand)
	n.mu.Unlock()
	// Notify even without an adoption: the far successor must learn a
	// closer predecessor might exist on this side.
	_, _ = n.cfg.Transport.Call(cand, Message{Op: OpNotify, Addr: n.addr})
	return true
}

// minString returns the lexicographically smallest element (empty for
// an empty slice).
func minString(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	min := ss[0]
	for _, s := range ss[1:] {
		if s < min {
			min = s
		}
	}
	return min
}
