package wire

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// flakyTransport is a scriptable Transport: it fails every Call while
// failing is set and counts the wire sends that actually reach it, so
// tests can prove a fast-fail never touched the network.
type flakyTransport struct {
	mu      sync.Mutex
	failing bool
	calls   int
}

func (f *flakyTransport) Call(addr string, req Message) (Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failing {
		return Message{}, errors.New("flaky: down")
	}
	return Message{Op: req.Op, Ok: true}, nil
}

func (f *flakyTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	return addr, io.NopCloser(nil), nil
}

func (f *flakyTransport) setFailing(v bool) {
	f.mu.Lock()
	f.failing = v
	f.mu.Unlock()
}

func (f *flakyTransport) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// noRetryPolicy keeps the breaker observable: one attempt per call, so
// each logical failure is exactly one transport failure.
func noRetryPolicy(b *BreakerPolicy) RetryPolicy {
	return RetryPolicy{MaxAttempts: 1, Breaker: b}
}

func TestBreakerTripsAndFastFails(t *testing.T) {
	ft := &flakyTransport{failing: true}
	rt := NewRetryingTransport(ft, noRetryPolicy(&BreakerPolicy{
		Threshold: 3,
		ProbeProb: -1, // no random probes: only Cooldown can half-open
		Cooldown:  time.Hour,
	}))

	for i := 0; i < 3; i++ {
		if _, err := rt.Call("peer-a", Message{Op: OpGet}); err == nil {
			t.Fatalf("call %d: expected failure", i)
		}
	}
	wire := ft.callCount()
	if wire != 3 {
		t.Fatalf("wire sends before trip = %d, want 3", wire)
	}
	if s := rt.BreakerStats(); s.Trips != 1 || s.Open != 1 {
		t.Fatalf("after threshold: stats = %+v, want 1 trip and 1 open circuit", s)
	}

	// The circuit is open with an hour-long cooldown and no probes: the
	// next calls must fast-fail with ErrCircuitOpen without a wire send.
	for i := 0; i < 5; i++ {
		_, err := rt.Call("peer-a", Message{Op: OpGet})
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("fast-fail %d: err = %v, want ErrCircuitOpen", i, err)
		}
	}
	if got := ft.callCount(); got != wire {
		t.Fatalf("wire sends grew %d -> %d during fast-fail window", wire, got)
	}
	if s := rt.BreakerStats(); s.FastFails != 5 {
		t.Fatalf("FastFails = %d, want 5", s.FastFails)
	}

	// Other peers are unaffected: the breaker is per-peer.
	ft.setFailing(false)
	if _, err := rt.Call("peer-b", Message{Op: OpGet}); err != nil {
		t.Fatalf("healthy peer blocked by another peer's circuit: %v", err)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	ft := &flakyTransport{failing: true}
	rt := NewRetryingTransport(ft, noRetryPolicy(&BreakerPolicy{
		Threshold: 2,
		ProbeProb: 1, // every allowed call through an open circuit is a probe
		Cooldown:  time.Hour,
	}))

	for i := 0; i < 2; i++ {
		rt.Call("peer-a", Message{Op: OpGet})
	}
	if s := rt.BreakerStats(); s.Open != 1 {
		t.Fatalf("circuit not open after threshold: %+v", s)
	}

	// Still failing: the probe goes to the wire and fails, circuit stays
	// open.
	before := ft.callCount()
	if _, err := rt.Call("peer-a", Message{Op: OpGet}); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe should reach the wire and fail, got %v", err)
	}
	if ft.callCount() != before+1 {
		t.Fatalf("probe did not reach the wire")
	}
	if s := rt.BreakerStats(); s.Open != 1 || s.Probes == 0 {
		t.Fatalf("after failed probe: %+v, want circuit still open with probes counted", s)
	}

	// Peer heals: the next probe succeeds and closes the circuit.
	ft.setFailing(false)
	if _, err := rt.Call("peer-a", Message{Op: OpGet}); err != nil {
		t.Fatalf("healed probe failed: %v", err)
	}
	s := rt.BreakerStats()
	if s.Open != 0 || s.Closes != 1 {
		t.Fatalf("after healed probe: %+v, want closed circuit", s)
	}
	// And normal traffic flows again without fast-fails.
	fastFails := s.FastFails
	for i := 0; i < 3; i++ {
		if _, err := rt.Call("peer-a", Message{Op: OpGet}); err != nil {
			t.Fatalf("post-close call %d failed: %v", i, err)
		}
	}
	if s := rt.BreakerStats(); s.FastFails != fastFails {
		t.Fatalf("fast-fails grew after close: %+v", s)
	}
}

func TestBreakerCooldownAllowsProbe(t *testing.T) {
	ft := &flakyTransport{failing: true}
	rt := NewRetryingTransport(ft, noRetryPolicy(&BreakerPolicy{
		Threshold: 2,
		ProbeProb: -1, // cooldown is the only path to half-open
		Cooldown:  10 * time.Millisecond,
	}))
	for i := 0; i < 2; i++ {
		rt.Call("peer-a", Message{Op: OpGet})
	}
	if _, err := rt.Call("peer-a", Message{Op: OpGet}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("inside cooldown: err = %v, want ErrCircuitOpen", err)
	}
	ft.setFailing(false)
	time.Sleep(20 * time.Millisecond)
	if _, err := rt.Call("peer-a", Message{Op: OpGet}); err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if s := rt.BreakerStats(); s.Open != 0 || s.Closes != 1 {
		t.Fatalf("circuit did not close after cooldown probe: %+v", s)
	}
}

func TestBreakerIgnoresSpentBudget(t *testing.T) {
	ft := &flakyTransport{failing: true}
	rt := NewRetryingTransport(ft, noRetryPolicy(&BreakerPolicy{
		Threshold: 2,
		ProbeProb: -1,
		Cooldown:  time.Hour,
	}))
	// Calls that die because the CALLER's budget expired must not count
	// against the peer.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		if _, err := rt.CallCtx(ctx, "peer-a", Message{Op: OpGet}); err == nil {
			t.Fatalf("expected ctx error")
		}
	}
	if s := rt.BreakerStats(); s.Trips != 0 || s.Open != 0 {
		t.Fatalf("spent budget tripped the breaker: %+v", s)
	}
}
