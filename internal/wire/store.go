package wire

import (
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Store is a node's local entry store: the map from ring keys to the
// entry sets this node currently holds (owned keys plus replica
// copies). The node serializes all access through its own mutex, so
// implementations need not be safe for concurrent use by themselves —
// but they may be called from the node's handler goroutines and its
// maintenance loop interleaved, one call at a time.
//
// Two implementations exist: MemStore (the default, a plain RAM map
// that dies with the process) and the disk-backed WAL+snapshot store in
// internal/wire/durable, which turns a crash-stop into crash-recovery.
// Mutators return an error when the write could not be made durable;
// the node then refuses to acknowledge the operation, so "acked" always
// means "recorded to the configured durability level".
type Store interface {
	// Get returns a copy of the entries stored under key (nil if none).
	Get(key keyspace.Key) []overlay.Entry
	// Put appends e under key unless an identical entry is already
	// present, reporting whether it was added.
	Put(key keyspace.Key, e overlay.Entry) (bool, error)
	// Remove deletes the exact entry under key, reporting whether it
	// existed. Removing the last entry removes the key.
	Remove(key keyspace.Key, e overlay.Entry) (bool, error)
	// Replace sets key's whole entry set at once (repair-sync ship
	// semantics); an empty set deletes the key.
	Replace(key keyspace.Key, entries []overlay.Entry) error
	// ForEach calls fn for every stored key until fn returns false. The
	// entries slice is the store's internal state: callers must copy it
	// before retaining or mutating, and must not call other Store
	// methods from within fn.
	ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool)
	// Len returns the number of distinct keys stored.
	Len() int
	// Sync flushes buffered writes to stable storage (no-op for
	// memory-backed stores).
	Sync() error
	// Close releases the store's resources, flushing first. The node
	// owns its store and closes it on Stop/Leave; a durable store can
	// then be re-opened from the same directory to restart the node.
	Close() error
}

// RecoveryStats describes what a durable store replayed when it was
// opened: how much state came back from the snapshot and the WAL, and
// whether a torn tail had to be truncated.
type RecoveryStats struct {
	// SnapshotKeys is the number of keys loaded from the snapshot.
	SnapshotKeys int64
	// ReplayedRecords is the number of WAL records applied on top.
	ReplayedRecords int64
	// SkippedRecords is the number of WAL records skipped because the
	// snapshot already covered their sequence numbers (a crash landed
	// between the snapshot rename and the WAL rotation).
	SkippedRecords int64
	// TornRecords counts torn or checksum-corrupt trailing records
	// truncated from the WAL (replay stops at the first bad frame).
	TornRecords int64
	// LastSeq is the last applied sequence number.
	LastSeq uint64
}

// Merge accumulates another recovery snapshot into s (for fleet-wide
// totals); LastSeq keeps the maximum.
func (s *RecoveryStats) Merge(o RecoveryStats) {
	s.SnapshotKeys += o.SnapshotKeys
	s.ReplayedRecords += o.ReplayedRecords
	s.SkippedRecords += o.SkippedRecords
	s.TornRecords += o.TornRecords
	if o.LastSeq > s.LastSeq {
		s.LastSeq = o.LastSeq
	}
}

// RecoverableStore is the optional Store extension implemented by
// stores that replay persistent state at open (internal/wire/durable).
// The soak harness uses it to account restart-recovery work.
type RecoverableStore interface {
	Store
	// RecoveryStats reports what the store replayed when it was opened.
	RecoveryStats() RecoveryStats
}

// InstrumentedStore is the optional Store extension for stores that
// export telemetry; Node.Instrument forwards to it when present.
type InstrumentedStore interface {
	Store
	// Instrument attaches the store's metric series to reg.
	Instrument(reg *telemetry.Registry)
}

// MemStore is the default Store: a plain in-memory map with no
// durability. Mutators never fail; a crash-stop loses everything, which
// is exactly the behaviour the replicated ring's anti-entropy repair is
// sized for.
type MemStore struct {
	m map[keyspace.Key][]overlay.Entry
}

var _ Store = (*MemStore)(nil)

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[keyspace.Key][]overlay.Entry)}
}

// Get implements Store.
func (s *MemStore) Get(key keyspace.Key) []overlay.Entry {
	entries := s.m[key]
	if len(entries) == 0 {
		return nil
	}
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	return out
}

// Put implements Store.
func (s *MemStore) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	for _, have := range s.m[key] {
		if have == e {
			return false, nil
		}
	}
	s.m[key] = append(s.m[key], e)
	return true, nil
}

// Remove implements Store.
func (s *MemStore) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	entries := s.m[key]
	for i, have := range entries {
		if have == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(s.m, key)
			} else {
				s.m[key] = entries
			}
			return true, nil
		}
	}
	return false, nil
}

// Replace implements Store.
func (s *MemStore) Replace(key keyspace.Key, entries []overlay.Entry) error {
	if len(entries) == 0 {
		delete(s.m, key)
		return nil
	}
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	s.m[key] = out
	return nil
}

// ForEach implements Store.
func (s *MemStore) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	for k, entries := range s.m {
		if !fn(k, entries) {
			return
		}
	}
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.m) }

// Sync implements Store (no-op).
func (s *MemStore) Sync() error { return nil }

// Close implements Store (no-op).
func (s *MemStore) Close() error { return nil }
