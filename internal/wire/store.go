package wire

import (
	"sort"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Store is a node's local entry store: the map from ring keys to the
// entry sets this node currently holds (owned keys plus replica
// copies). Implementations need not be safe for concurrent use by
// themselves: the node wraps whatever Config.Store supplies in a
// ConcurrentStore (asConcurrentStore) that serializes access — a nil
// Config.Store becomes a ShardedStore striping MemStores by key, and a
// supplied store gets a single reader-writer lock. Handler goroutines
// and the maintenance loop therefore interleave calls one at a time per
// key stripe, never concurrently against the same underlying Store
// stripe.
//
// Two implementations exist: MemStore (the default, a plain RAM map
// that dies with the process) and the disk-backed WAL+snapshot store in
// internal/wire/durable, which turns a crash-stop into crash-recovery.
// Mutators return an error when the write could not be made durable;
// the node then refuses to acknowledge the operation, so "acked" always
// means "recorded to the configured durability level".
type Store interface {
	// Get returns a copy of the entries stored under key (nil if none).
	Get(key keyspace.Key) []overlay.Entry
	// Put appends e under key unless an identical entry is already
	// present or a live tombstone for e suppresses the write, reporting
	// whether it was added. A suppressed put returns (false, nil);
	// callers that must distinguish suppression from a duplicate check
	// Tombstoned. Tombstones win until they are garbage-collected: the
	// index's entries are write-once, so re-adding an identical removed
	// entry within the TTL is the one unsupported pattern (DESIGN.md
	// §15).
	Put(key keyspace.Key, e overlay.Entry) (bool, error)
	// Remove deletes the exact entry under key, reporting whether it
	// existed, and records a tombstone for it either way — a removal
	// must suppress stale copies this node has not seen yet (a replica
	// behind a partition), so the deletion record matters even when the
	// live entry is absent. Removing the last entry keeps the key alive
	// while tombstones remain.
	Remove(key keyspace.Key, e overlay.Entry) (bool, error)
	// Replace sets key's whole entry set and tombstone set at once
	// (repair-sync ship semantics); both empty deletes the key.
	Replace(key keyspace.Key, entries []overlay.Entry, tombs []Tombstone) error
	// Tombstoned reports whether a live tombstone suppresses e under key.
	Tombstoned(key keyspace.Key, e overlay.Entry) bool
	// Tombstones returns a copy of key's tombstones (nil if none).
	Tombstones(key keyspace.Key) []Tombstone
	// Entomb merges foreign tombstones into key: each one removes its
	// matching live entry if present and is recorded keeping the latest
	// At. It returns how many tombstones were newly recorded or
	// refreshed to a later At.
	Entomb(key keyspace.Key, tombs []Tombstone) (int, error)
	// ForEachTombstone calls fn for every key holding tombstones until
	// fn returns false, under the same aliasing rules as ForEach.
	ForEachTombstone(fn func(key keyspace.Key, tombs []Tombstone) bool)
	// GCTombstones drops every tombstone with At < before, returning how
	// many were collected. A key left with no entries and no tombstones
	// is removed.
	GCTombstones(before int64) (int, error)
	// ForEach calls fn for every key with live entries until fn returns
	// false (keys holding only tombstones are skipped — use
	// ForEachTombstone). The entries slice is the store's internal
	// state: callers must copy it before retaining or mutating, and must
	// not call other Store methods from within fn.
	ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool)
	// Len returns the number of distinct keys with live entries.
	Len() int
	// Sync flushes buffered writes to stable storage (no-op for
	// memory-backed stores).
	Sync() error
	// Close releases the store's resources, flushing first. The node
	// owns its store and closes it on Stop/Leave; a durable store can
	// then be re-opened from the same directory to restart the node.
	Close() error
}

// RecoveryStats describes what a durable store replayed when it was
// opened: how much state came back from the snapshot and the WAL, and
// whether a torn tail had to be truncated.
type RecoveryStats struct {
	// SnapshotKeys is the number of keys loaded from the snapshot.
	SnapshotKeys int64
	// ReplayedRecords is the number of WAL records applied on top.
	ReplayedRecords int64
	// SkippedRecords is the number of WAL records skipped because the
	// snapshot already covered their sequence numbers (a crash landed
	// between the snapshot rename and the WAL rotation).
	SkippedRecords int64
	// TornRecords counts torn or checksum-corrupt trailing records
	// truncated from the WAL (replay stops at the first bad frame).
	TornRecords int64
	// LastSeq is the last applied sequence number.
	LastSeq uint64
}

// Merge accumulates another recovery snapshot into s (for fleet-wide
// totals); LastSeq keeps the maximum.
func (s *RecoveryStats) Merge(o RecoveryStats) {
	s.SnapshotKeys += o.SnapshotKeys
	s.ReplayedRecords += o.ReplayedRecords
	s.SkippedRecords += o.SkippedRecords
	s.TornRecords += o.TornRecords
	if o.LastSeq > s.LastSeq {
		s.LastSeq = o.LastSeq
	}
}

// RecoverableStore is the optional Store extension implemented by
// stores that replay persistent state at open (internal/wire/durable).
// The soak harness uses it to account restart-recovery work.
type RecoverableStore interface {
	Store
	// RecoveryStats reports what the store replayed when it was opened.
	RecoveryStats() RecoveryStats
}

// InstrumentedStore is the optional Store extension for stores that
// export telemetry; Node.Instrument forwards to it when present.
type InstrumentedStore interface {
	Store
	// Instrument attaches the store's metric series to reg.
	Instrument(reg *telemetry.Registry)
}

// MemStore is the default Store: a plain in-memory map with no
// durability. Mutators never fail; a crash-stop loses everything, which
// is exactly the behaviour the replicated ring's anti-entropy repair is
// sized for.
type MemStore struct {
	m     map[keyspace.Key][]overlay.Entry
	tombs map[keyspace.Key]map[overlay.Entry]int64
}

var _ Store = (*MemStore)(nil)

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		m:     make(map[keyspace.Key][]overlay.Entry),
		tombs: make(map[keyspace.Key]map[overlay.Entry]int64),
	}
}

// Get implements Store.
func (s *MemStore) Get(key keyspace.Key) []overlay.Entry {
	entries := s.m[key]
	if len(entries) == 0 {
		return nil
	}
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	return out
}

// Put implements Store.
func (s *MemStore) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	if _, dead := s.tombs[key][e]; dead {
		return false, nil
	}
	for _, have := range s.m[key] {
		if have == e {
			return false, nil
		}
	}
	s.m[key] = append(s.m[key], e)
	return true, nil
}

// Remove implements Store.
func (s *MemStore) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	removed := s.removeLive(key, e)
	s.entombOne(key, Tombstone{Entry: e, At: time.Now().UnixNano()})
	return removed, nil
}

// removeLive deletes the live entry e under key, reporting whether it
// was present.
func (s *MemStore) removeLive(key keyspace.Key, e overlay.Entry) bool {
	entries := s.m[key]
	for i, have := range entries {
		if have == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(s.m, key)
			} else {
				s.m[key] = entries
			}
			return true
		}
	}
	return false
}

// entombOne records t under key keeping the latest At, reporting
// whether the tombstone was new or refreshed.
func (s *MemStore) entombOne(key keyspace.Key, t Tombstone) bool {
	m := s.tombs[key]
	if m == nil {
		m = make(map[overlay.Entry]int64)
		s.tombs[key] = m
	}
	if at, ok := m[t.Entry]; ok && at >= t.At {
		return false
	}
	m[t.Entry] = t.At
	return true
}

// Replace implements Store.
func (s *MemStore) Replace(key keyspace.Key, entries []overlay.Entry, tombs []Tombstone) error {
	if len(entries) == 0 {
		delete(s.m, key)
	} else {
		out := make([]overlay.Entry, len(entries))
		copy(out, entries)
		s.m[key] = out
	}
	if len(tombs) == 0 {
		delete(s.tombs, key)
	} else {
		m := make(map[overlay.Entry]int64, len(tombs))
		for _, t := range tombs {
			if at, ok := m[t.Entry]; !ok || t.At > at {
				m[t.Entry] = t.At
			}
		}
		s.tombs[key] = m
	}
	return nil
}

// Tombstoned implements Store.
func (s *MemStore) Tombstoned(key keyspace.Key, e overlay.Entry) bool {
	_, dead := s.tombs[key][e]
	return dead
}

// Tombstones implements Store.
func (s *MemStore) Tombstones(key keyspace.Key) []Tombstone {
	return tombstoneSlice(s.tombs[key])
}

// Entomb implements Store.
func (s *MemStore) Entomb(key keyspace.Key, tombs []Tombstone) (int, error) {
	fresh := 0
	for _, t := range tombs {
		s.removeLive(key, t.Entry)
		if s.entombOne(key, t) {
			fresh++
		}
	}
	return fresh, nil
}

// ForEachTombstone implements Store.
func (s *MemStore) ForEachTombstone(fn func(key keyspace.Key, tombs []Tombstone) bool) {
	for k, m := range s.tombs {
		if len(m) == 0 {
			continue
		}
		if !fn(k, tombstoneSlice(m)) {
			return
		}
	}
}

// GCTombstones implements Store.
func (s *MemStore) GCTombstones(before int64) (int, error) {
	collected := 0
	for k, m := range s.tombs {
		for e, at := range m {
			if at < before {
				delete(m, e)
				collected++
			}
		}
		if len(m) == 0 {
			delete(s.tombs, k)
		}
	}
	return collected, nil
}

// tombstoneSlice copies a tombstone map into a sorted slice (stable
// order keeps digests and tests deterministic).
func tombstoneSlice(m map[overlay.Entry]int64) []Tombstone {
	if len(m) == 0 {
		return nil
	}
	out := make([]Tombstone, 0, len(m))
	for e, at := range m {
		out = append(out, Tombstone{Entry: e, At: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entry.Kind != out[j].Entry.Kind {
			return out[i].Entry.Kind < out[j].Entry.Kind
		}
		return out[i].Entry.Value < out[j].Entry.Value
	})
	return out
}

// ForEach implements Store.
func (s *MemStore) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	for k, entries := range s.m {
		if !fn(k, entries) {
			return
		}
	}
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.m) }

// Sync implements Store (no-op).
func (s *MemStore) Sync() error { return nil }

// Close implements Store (no-op).
func (s *MemStore) Close() error { return nil }
