package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// echoHandler answers every request with a response derived from the
// request's Addr field, so a caller can detect a response that was meant
// for a different request.
func echoHandler(req Message) Message {
	return Message{Op: req.Op, Ok: true, Addr: "echo:" + req.Addr}
}

// TestPooledConcurrentCalls hammers one pooled server with concurrent
// callers and asserts every caller gets ITS response back — the request
// ID multiplexing must never deliver a response to the wrong call.
func TestPooledConcurrentCalls(t *testing.T) {
	tp := NewTCPTransport()
	addr, closer, err := tp.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer closer.Close()

	const workers = 16
	const callsPerWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				tag := fmt.Sprintf("w%d-c%d", w, i)
				resp, err := tp.Call(addr, Message{Op: OpPing, Addr: tag})
				if err != nil {
					errs <- fmt.Errorf("call %s: %v", tag, err)
					return
				}
				if resp.Addr != "echo:"+tag {
					errs <- fmt.Errorf("call %s got response for %q", tag, resp.Addr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := tp.PoolStats()
	if st.Dials > int64(DefaultMaxConnsPerPeer) {
		t.Errorf("dials = %d, want <= %d (pool must reuse connections)", st.Dials, DefaultMaxConnsPerPeer)
	}
	if st.Reuses == 0 {
		t.Errorf("reuses = 0, want > 0")
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after all calls returned, want 0", st.InFlight)
	}
}

// TestPooledCallsUnderFaults drives concurrent pooled calls through a
// FaultTransport injecting drops and latency: calls may fail, but a call
// that succeeds must carry its own response, and the pool must recover
// once the faults heal.
func TestPooledCallsUnderFaults(t *testing.T) {
	tp := NewTCPTransport()
	tp.CallTimeout = 500 * time.Millisecond
	ft := NewFaultTransport(tp, 42)
	addr, closer, err := ft.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer closer.Close()
	ft.SetDefaultRule(FaultRule{DropProb: 0.3, Latency: 5 * time.Millisecond, LatencyProb: 0.3})

	const workers = 8
	const callsPerWorker = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				tag := fmt.Sprintf("w%d-c%d", w, i)
				resp, err := ft.Call(addr, Message{Op: OpPing, Addr: tag})
				if err != nil {
					continue // drops are expected; correctness is about successes
				}
				if resp.Addr != "echo:"+tag {
					errs <- fmt.Errorf("call %s got response for %q", tag, resp.Addr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Healed network: the pool must serve cleanly again.
	ft.Heal()
	ft.SetDefaultRule(FaultRule{})
	for i := 0; i < 5; i++ {
		resp, err := ft.Call(addr, Message{Op: OpPing, Addr: "post-heal"})
		if err != nil {
			t.Fatalf("post-heal call %d: %v", i, err)
		}
		if resp.Addr != "echo:post-heal" {
			t.Fatalf("post-heal call %d got %q", i, resp.Addr)
		}
	}
}

// TestPoolBound holds many calls in flight against a slow handler and
// asserts the pool never opens more than MaxConnsPerPeer connections.
func TestPoolBound(t *testing.T) {
	tp := NewTCPTransport()
	tp.MaxConnsPerPeer = 2
	slow := func(req Message) Message {
		time.Sleep(30 * time.Millisecond)
		return echoHandler(req)
	}
	addr, closer, err := tp.Listen("127.0.0.1:0", slow)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer closer.Close()

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := fmt.Sprintf("w%d", w)
			if resp, err := tp.Call(addr, Message{Op: OpPing, Addr: tag}); err != nil {
				t.Errorf("call %s: %v", tag, err)
			} else if resp.Addr != "echo:"+tag {
				t.Errorf("call %s got %q", tag, resp.Addr)
			}
		}(w)
	}
	wg.Wait()
	st := tp.PoolStats()
	if st.Dials > 2 {
		t.Errorf("dials = %d, want <= MaxConnsPerPeer=2", st.Dials)
	}
	if st.Conns > 2 {
		t.Errorf("pooled conns = %d, want <= 2", st.Conns)
	}
}

// TestPoolIdleReap lets a pooled connection go idle past IdleTimeout and
// asserts the reaper closes it (and counts it as a reap, not an
// eviction), after which the next call redials cleanly.
func TestPoolIdleReap(t *testing.T) {
	tp := NewTCPTransport()
	tp.IdleTimeout = 50 * time.Millisecond
	addr, closer, err := tp.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer closer.Close()

	if _, err := tp.Call(addr, Message{Op: OpPing, Addr: "a"}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tp.PoolStats().IdleReaps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never reaped: %+v", tp.PoolStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := tp.PoolStats()
	if st.Conns != 0 {
		t.Errorf("pooled conns = %d after reap, want 0", st.Conns)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (an idle reap is not an eviction)", st.Evictions)
	}
	if resp, err := tp.Call(addr, Message{Op: OpPing, Addr: "b"}); err != nil {
		t.Fatalf("call after reap: %v", err)
	} else if resp.Addr != "echo:b" {
		t.Fatalf("call after reap got %q", resp.Addr)
	}
	if got := tp.PoolStats().Dials; got < 2 {
		t.Errorf("dials = %d, want >= 2 (reap must force a redial)", got)
	}
}

// TestPoolDeadPeerEvictsAndRedials kills the server under a pooled
// connection: the next call must fail with an unreachable-style error and
// evict the connection, and once the server restarts ON THE SAME address
// the pool must redial and serve again.
func TestPoolDeadPeerEvictsAndRedials(t *testing.T) {
	tp := NewTCPTransport()
	tp.CallTimeout = 500 * time.Millisecond
	addr, closer, err := tp.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if _, err := tp.Call(addr, Message{Op: OpPing, Addr: "pre"}); err != nil {
		t.Fatalf("pre-kill call: %v", err)
	}

	closer.Close()
	// The pooled conn is now dead; calls must fail (either immediately on
	// the torn-down conn or after a redial refusal), not hang.
	failedDeadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := tp.Call(addr, Message{Op: OpPing, Addr: "down"}); err != nil {
			break
		}
		if time.Now().After(failedDeadline) {
			t.Fatal("calls kept succeeding against a closed server")
		}
	}

	// Same address back up: the pool must recover without intervention.
	if _, closer2, err := tp.Listen(addr, echoHandler); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	} else {
		defer closer2.Close()
	}
	recoverDeadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := tp.Call(addr, Message{Op: OpPing, Addr: "post"})
		if err == nil && resp.Addr == "echo:post" {
			break
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("pool never recovered after server restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if tp.PoolStats().Evictions == 0 {
		t.Errorf("evictions = 0, want > 0 after killing the server under a pooled conn")
	}
}

// TestDialPerCallInterop verifies the legacy dial-per-call client mode
// speaks the same framed protocol as the pooled server.
func TestDialPerCallInterop(t *testing.T) {
	server := NewTCPTransport()
	addr, closer, err := server.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer closer.Close()

	client := NewTCPTransport()
	client.DisablePool = true
	for i := 0; i < 3; i++ {
		tag := fmt.Sprintf("c%d", i)
		resp, err := client.Call(addr, Message{Op: OpPing, Addr: tag})
		if err != nil {
			t.Fatalf("dial-per-call %d: %v", i, err)
		}
		if resp.Addr != "echo:"+tag {
			t.Fatalf("dial-per-call %d got %q", i, resp.Addr)
		}
	}
	if st := client.PoolStats(); st.Conns != 0 {
		t.Errorf("dial-per-call client pooled %d conns, want 0", st.Conns)
	}
}

// TestPooledRingEndToEnd runs a full live ring over the pooled transport
// and checks puts and gets route correctly — the stack above the
// transport (retry, cluster, node) must work unchanged.
func TestPooledRingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP ring")
	}
	tp := NewTCPTransport()
	cluster := NewCluster(NewRetryingTransport(tp, RetryPolicy{}), 7, 1)
	var nodes []*Node
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	var bootstrap string
	for i := 0; i < 4; i++ {
		n, err := Start(Config{
			Transport:         tp,
			Addr:              "127.0.0.1:0",
			StabilizeInterval: 20 * time.Millisecond,
			ReplicationFactor: 1,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes = append(nodes, n)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(20 * time.Second); err != nil {
		t.Fatalf("ring never converged: %v", err)
	}
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("pool-ring-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		entries, _, err := cluster.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(entries) == 0 || !strings.HasPrefix(entries[0].Value, "v") {
			t.Fatalf("get %d returned %v", i, entries)
		}
	}
	if st := tp.PoolStats(); st.Reuses == 0 {
		t.Errorf("ring traffic produced no connection reuse: %+v", st)
	}
}

// TestPoolWaitHonorsCtxCancel parks a getter on the pool's cond-var wait
// (every slot taken by a dial in progress) and cancels its context: the
// AfterFunc broadcast must wake it so it leaves the queue immediately
// instead of waiting for the dial to land.
func TestPoolWaitHonorsCtxCancel(t *testing.T) {
	tp := NewTCPTransport()
	tp.MaxConnsPerPeer = 1
	p := tp.pool()
	// Simulate a dial in progress holding the only slot, with no
	// established connection to pipeline onto.
	p.mu.Lock()
	p.dialing["peer:1"] = 1
	p.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := p.get(ctx, "peer:1")
		done <- err
	}()
	// The getter must park, not return: the slot never frees.
	select {
	case err := <-done:
		t.Fatalf("get returned before cancel: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("get never returned after cancel: the ctx wakeup was lost")
	}
}

// TestPoolGetExpiredCtx: a caller arriving with an already-spent budget
// is turned away before it can queue for a slot.
func TestPoolGetExpiredCtx(t *testing.T) {
	tp := NewTCPTransport()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tp.pool().get(ctx, "peer:1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
