package wire_test

// External test package: the durable store imports wire, so exercising
// batched puts against a durable-backed node has to live outside the
// wire package to avoid an import cycle.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/wire"
	"dhtindex/internal/wire/durable"
)

// TestPutBatchAtomicThroughWALFaults drives OpPutBatch against a node
// whose durable store fails WAL appends: the batch must be NACKed (the
// client sees a remote error), and once the fault heals a whole-batch
// retry must converge with NO duplicate entries — the handler's
// single-lock batch application through the WAL plus put idempotency.
func TestPutBatchAtomicThroughWALFaults(t *testing.T) {
	dir := t.TempDir()
	var failAppends atomic.Bool
	st, err := durable.Open(dir, durable.Options{Faults: durable.Faults{
		AppendErr: func() error {
			if failAppends.Load() {
				return errors.New("injected WAL append failure")
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	mt := wire.NewMemTransport()
	nd, err := wire.Start(wire.Config{
		Transport:         mt,
		Addr:              "mem:0",
		StabilizeInterval: 10 * time.Millisecond,
		Store:             st,
	})
	if err != nil {
		t.Fatalf("start node: %v", err)
	}
	defer nd.Stop()

	kv := []wire.KeyEntries{
		{Key: keyspace.NewKey("wal-a"), Entries: []overlay.Entry{{Kind: "index", Value: "a1"}, {Kind: "index", Value: "a2"}}},
		{Key: keyspace.NewKey("wal-b"), Entries: []overlay.Entry{{Kind: "index", Value: "b1"}}},
	}

	failAppends.Store(true)
	resp, err := mt.Call(nd.Addr(), wire.Message{Op: wire.OpPutBatch, KV: kv})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if resp.Err == "" {
		t.Fatal("OpPutBatch acked despite WAL append failure")
	}

	// Heal and retry the WHOLE batch, as the retry layer would.
	failAppends.Store(false)
	resp, err = mt.Call(nd.Addr(), wire.Message{Op: wire.OpPutBatch, KV: kv})
	if err != nil || resp.Err != "" {
		t.Fatalf("healed retry failed: err=%v remote=%q", err, resp.Err)
	}

	// Converged with no duplicates — whatever prefix the failed attempt
	// applied must have deduplicated against the retry.
	for _, item := range kv {
		got, err := mt.Call(nd.Addr(), wire.Message{Op: wire.OpGet, Key: item.Key})
		if err != nil || got.Err != "" {
			t.Fatalf("get %v: err=%v remote=%q", item.Key, err, got.Err)
		}
		if len(got.Entries) != len(item.Entries) {
			t.Fatalf("key %v: got %d entries, want %d: %v",
				item.Key, len(got.Entries), len(item.Entries), got.Entries)
		}
	}

	// The durable contract survives a restart: reopen the directory and
	// expect the batch back.
	nd.Stop()
	st2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen durable store: %v", err)
	}
	defer st2.Close()
	for _, item := range kv {
		if got := st2.Get(item.Key); len(got) != len(item.Entries) {
			t.Fatalf("after restart key %v: got %d entries, want %d", item.Key, len(got), len(item.Entries))
		}
	}
}
