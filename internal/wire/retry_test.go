package wire

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// scriptedTransport fails the first failures calls to each address, then
// succeeds — the canonical transiently-flaky peer.
type scriptedTransport struct {
	mu       sync.Mutex
	failures int
	calls    map[string]int
}

func newScriptedTransport(failures int) *scriptedTransport {
	return &scriptedTransport{failures: failures, calls: make(map[string]int)}
}

func (s *scriptedTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	return addr, io.NopCloser(nil), nil
}

func (s *scriptedTransport) Call(addr string, req Message) (Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[addr]++
	if s.calls[addr] <= s.failures {
		return Message{}, fmt.Errorf("%w: %s (scripted)", ErrUnreachable, addr)
	}
	return Message{Op: req.Op, Ok: true}, nil
}

func (s *scriptedTransport) callCount(addr string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[addr]
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	inner := newScriptedTransport(2)
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Seed:        1,
	})
	resp, err := rt.Call("peer", Message{Op: OpPing})
	if err != nil || !resp.Ok {
		t.Fatalf("call should recover on attempt 3: %+v, %v", resp, err)
	}
	if got := inner.callCount("peer"); got != 3 {
		t.Fatalf("wire sends = %d, want 3 (2 failures + 1 success)", got)
	}
	s := rt.Stats()
	if s.Calls != 1 || s.Attempts != 3 || s.Retries != 2 || s.Recovered != 1 || s.GaveUp != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	inner := newScriptedTransport(100)
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Seed:        1,
	})
	_, err := rt.Call("peer", Message{Op: OpGet})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want the final ErrUnreachable, got %v", err)
	}
	if got := inner.callCount("peer"); got != 3 {
		t.Fatalf("wire sends = %d, want exactly MaxAttempts", got)
	}
	if s := rt.Stats(); s.GaveUp != 1 || s.Recovered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRetryNonIdempotentSingleShot: OpRemove flips its answer on repeats,
// so the retry layer must never resend it.
func TestRetryNonIdempotentSingleShot(t *testing.T) {
	inner := newScriptedTransport(100)
	rt := NewRetryingTransport(inner, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if _, err := rt.Call("peer", Message{Op: OpRemove}); err == nil {
		t.Fatal("scripted failure swallowed")
	}
	if got := inner.callCount("peer"); got != 1 {
		t.Fatalf("OpRemove sent %d times, want 1", got)
	}
	if _, err := rt.Call("peer", Message{Op: OpRemoveReplica}); err == nil {
		t.Fatal("scripted failure swallowed")
	}
	if got := inner.callCount("peer"); got != 2 {
		t.Fatalf("OpRemoveReplica resent: %d total sends, want 2", got)
	}
}

func TestRetryPerOpOverrides(t *testing.T) {
	inner := newScriptedTransport(100)
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts:   3,
		BaseDelay:     time.Millisecond,
		PerOpAttempts: map[Op]int{OpTransfer: 5},
		Retryable:     map[Op]bool{OpGet: false},
	})
	_, _ = rt.Call("xfer", Message{Op: OpTransfer})
	if got := inner.callCount("xfer"); got != 5 {
		t.Fatalf("OpTransfer sends = %d, want PerOpAttempts 5", got)
	}
	_, _ = rt.Call("get", Message{Op: OpGet})
	if got := inner.callCount("get"); got != 1 {
		t.Fatalf("OpGet marked non-retryable but sent %d times", got)
	}
}

func TestRetryBackoffGrowsAndIsCapped(t *testing.T) {
	rt := NewRetryingTransport(newScriptedTransport(0), RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   4 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
		Seed:        3,
	})
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := rt.backoff(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > 20*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds MaxDelay", attempt, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 8*time.Millisecond {
		t.Fatalf("backoff never grew beyond %v despite multiplier 2", prevMax)
	}
}

// TestNodeExposesRetryStats: a node started with a retry policy surfaces
// its retry counters (the observability half of the acceptance bar).
func TestNodeExposesRetryStats(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 11)
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 11}
	a, err := Start(Config{Transport: ft.Endpoint(), Addr: "mem:0", Retry: &policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)
	b, err := Start(Config{Transport: ft.Endpoint(), Addr: "mem:0", Retry: &policy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)
	// Drop every first send on the join path, then let retries through.
	ft.SetDefaultRule(FaultRule{DropProb: 0.5})
	deadline := time.Now().Add(10 * time.Second)
	for b.RetryStats().Retries == 0 {
		_ = b.Join(a.Addr())
		if time.Now().After(deadline) {
			t.Fatal("no retry ever recorded under 50% drop")
		}
	}
	s := b.RetryStats()
	if s.Attempts <= s.Calls {
		t.Fatalf("attempts %d should exceed calls %d once retries fired", s.Attempts, s.Calls)
	}
}
