package wire_test

// Wire fast-path benchmarks: pooled vs dial-per-call transport, batched
// vs sequential cluster puts, batched vs sequential article publish, and
// parallel vs sequential automated search. These are the numbers behind
// BENCH_wire.json (cmd/dhtbench -bench-out) and CI's bench smoke step.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/index"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/wire"
)

// benchEcho answers immediately; transport cost dominates.
func benchEcho(req wire.Message) wire.Message {
	return wire.Message{Op: req.Op, Ok: true, Addr: req.Addr}
}

// BenchmarkTransportCall measures one round-trip RPC on loopback TCP:
// the pooled fast path (persistent framed conns, binary codec
// negotiated at handshake) against the same path pinned to the legacy
// gob stream and against dial-per-call mode (fresh conn and codec per
// RPC). The acceptance bars: pooled ≥ 3× dial-per-call, and the binary
// codec beats gob on the same pooled path. Run with -benchmem: the
// allocs/op delta between pooled and pooled-gob is the codec's
// reflection overhead made visible.
func BenchmarkTransportCall(b *testing.B) {
	server := wire.NewTCPTransport()
	addr, closer, err := server.Listen("127.0.0.1:0", benchEcho)
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	defer closer.Close()

	run := func(b *testing.B, client *wire.TCPTransport) {
		req := wire.Message{Op: wire.OpPing, Addr: "bench"}
		if _, err := client.Call(addr, req); err != nil { // warm the pool / types
			b.Fatalf("warmup call: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(addr, req); err != nil {
				b.Fatalf("call: %v", err)
			}
		}
	}
	b.Run("pooled", func(b *testing.B) {
		run(b, wire.NewTCPTransport())
	})
	b.Run("pooled-gob", func(b *testing.B) {
		client := wire.NewTCPTransport()
		client.Codec = wire.CodecGob
		run(b, client)
	})
	b.Run("dial-per-call", func(b *testing.B) {
		client := wire.NewTCPTransport()
		client.DisablePool = true
		run(b, client)
	})
}

// startBenchRing boots a converged live TCP ring and returns its
// cluster handle.
func startBenchRing(b *testing.B, nodes int) (*wire.Cluster, *wire.TCPTransport) {
	b.Helper()
	tp := wire.NewTCPTransport()
	cluster := wire.NewCluster(tp, 5, 0)
	var bootstrap string
	for i := 0; i < nodes; i++ {
		n, err := wire.Start(wire.Config{
			Transport:         tp,
			Addr:              "127.0.0.1:0",
			StabilizeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			b.Fatalf("start node %d: %v", i, err)
		}
		b.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			b.Fatalf("join node %d: %v", i, err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(20 * time.Second); err != nil {
		b.Fatalf("ring never converged: %v", err)
	}
	return cluster, tp
}

// BenchmarkClusterPutBatch stores 16 distinct keys per iteration over a
// live TCP ring: one PutBatch (parallel owner resolution, one message
// per owner) against 16 sequential routed Puts.
func BenchmarkClusterPutBatch(b *testing.B) {
	const keysPerOp = 16
	items := func(round int) []overlay.KeyEntry {
		out := make([]overlay.KeyEntry, keysPerOp)
		for i := range out {
			out[i] = overlay.KeyEntry{
				Key:   keyspace.NewKey(fmt.Sprintf("bench-batch-%d-%d", round, i)),
				Entry: overlay.Entry{Kind: "index", Value: fmt.Sprintf("v-%d-%d", round, i)},
			}
		}
		return out
	}
	b.Run("batch", func(b *testing.B) {
		cluster, _ := startBenchRing(b, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cluster.PutBatch(context.Background(), items(i)); err != nil {
				b.Fatalf("PutBatch: %v", err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		cluster, _ := startBenchRing(b, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range items(i) {
				if _, err := cluster.Put(it.Key, it.Entry); err != nil {
					b.Fatalf("Put: %v", err)
				}
			}
		}
	})
}

// seqNet hides the cluster's BatchNetwork extension, forcing the index
// layer onto its sequential per-entry path — the publish baseline.
type seqNet struct{ overlay.Network }

// BenchmarkPublish publishes one article per iteration with the Complex
// scheme (1 data entry + 9 distinct index mappings) over a live TCP
// ring: the batch fast path against the sequential per-mapping inserts.
// The acceptance bar for the batch path is ≥ 2×.
func BenchmarkPublish(b *testing.B) {
	corpus, err := dataset.Generate(dataset.Config{Articles: 64, Seed: 3})
	if err != nil {
		b.Fatalf("corpus: %v", err)
	}
	arts := corpus.Articles
	run := func(b *testing.B, wrap func(*wire.Cluster) overlay.Network) {
		cluster, _ := startBenchRing(b, 4)
		svc := index.New(wrap(cluster), cache.None, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := arts[i%len(arts)]
			file := fmt.Sprintf("bench-%d.pdf", i)
			if err := svc.PublishArticle(file, a, index.Complex); err != nil {
				b.Fatalf("publish: %v", err)
			}
		}
	}
	b.Run("batch", func(b *testing.B) {
		run(b, func(c *wire.Cluster) overlay.Network { return c })
	})
	b.Run("sequential", func(b *testing.B) {
		run(b, func(c *wire.Cluster) overlay.Network { return seqNet{c} })
	})
}

// BenchmarkSearchAllParallel explores the index DAG of a published
// corpus from a one-constraint query: the sequential BFS against the
// wave-parallel frontier expansion (Parallelism 8).
func BenchmarkSearchAllParallel(b *testing.B) {
	corpus, err := dataset.Generate(dataset.Config{Articles: 48, Seed: 4})
	if err != nil {
		b.Fatalf("corpus: %v", err)
	}
	run := func(b *testing.B, parallelism int) {
		cluster, _ := startBenchRing(b, 4)
		svc := index.New(cluster, cache.None, 0)
		for i, a := range corpus.Articles {
			if err := svc.PublishArticle(fmt.Sprintf("s-%d.pdf", i), a, index.Complex); err != nil {
				b.Fatalf("publish: %v", err)
			}
		}
		searcher := index.NewSearcher(svc)
		searcher.Parallelism = parallelism
		query := dataset.ConfQuery(corpus.Articles[0].Conf)
		if _, _, err := searcher.SearchAll(query); err != nil {
			b.Fatalf("warmup search: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, _, err := searcher.SearchAll(query)
			if err != nil {
				b.Fatalf("search: %v", err)
			}
			if len(results) == 0 {
				b.Fatal("search returned nothing")
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("parallel-8", func(b *testing.B) { run(b, 8) })
}
