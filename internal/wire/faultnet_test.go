package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func keyOf(t *testing.T, i int) keyspace.Key {
	t.Helper()
	return keyspace.NewKey(fmt.Sprintf("fault-%d", i))
}

func entryOf(i int) overlay.Entry {
	return overlay.Entry{Kind: "d", Value: fmt.Sprintf("v%d", i)}
}

// echoListener binds an echo handler and returns its address.
func echoListener(t *testing.T, tr Transport) string {
	t.Helper()
	addr, closer, err := tr.Listen("mem:0", func(m Message) Message {
		return Message{Op: m.Op, Ok: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = closer.Close() })
	return addr
}

func TestFaultTransportPassThroughByDefault(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	addr := echoListener(t, ft)
	for i := 0; i < 50; i++ {
		resp, err := ft.Call(addr, Message{Op: OpPing})
		if err != nil || !resp.Ok {
			t.Fatalf("call %d through fault-free transport: %+v, %v", i, resp, err)
		}
	}
	if s := ft.Stats(); s.DroppedRequests+s.DroppedResponses+s.Delayed != 0 {
		t.Fatalf("faults injected with no rules: %+v", s)
	}
}

func TestFaultTransportDrop(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	addr := echoListener(t, ft)
	ft.SetDefaultRule(FaultRule{DropProb: 0.5})
	failed := 0
	const calls = 200
	for i := 0; i < calls; i++ {
		if _, err := ft.Call(addr, Message{Op: OpPing}); err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("drop surfaced as %v, want ErrUnreachable", err)
			}
			failed++
		}
	}
	s := ft.Stats()
	if int64(failed) != s.DroppedRequests+s.DroppedResponses {
		t.Fatalf("failed calls %d != dropped counters %d+%d",
			failed, s.DroppedRequests, s.DroppedResponses)
	}
	if s.DroppedRequests == 0 || s.DroppedResponses == 0 {
		t.Fatalf("both drop sides should fire at p=0.5 over %d calls: %+v", calls, s)
	}
	if failed < calls/4 || failed > 3*calls/4 {
		t.Fatalf("drop rate implausible for p=0.5: %d/%d", failed, calls)
	}
}

func TestFaultTransportLatency(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	addr := echoListener(t, ft)
	ft.SetDefaultRule(FaultRule{Latency: 30 * time.Millisecond}) // LatencyProb 0 → always
	start := time.Now()
	if _, err := ft.Call(addr, Message{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("call took %v, want ≥ 30ms injected", elapsed)
	}
	s := ft.Stats()
	if s.Delayed != 1 || s.DelayTotal != 30*time.Millisecond {
		t.Fatalf("latency counters: %+v", s)
	}
}

func TestFaultTransportPerOpRule(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	addr := echoListener(t, ft)
	ft.SetOpRule(OpPing, FaultRule{DropProb: 1})
	if _, err := ft.Call(addr, Message{Op: OpPing}); err == nil {
		t.Fatal("OpPing survived a p=1 drop rule")
	}
	if _, err := ft.Call(addr, Message{Op: OpGet}); err != nil {
		t.Fatalf("OpGet hit by an OpPing rule: %v", err)
	}
	ft.ClearOpRule(OpPing)
	if _, err := ft.Call(addr, Message{Op: OpPing}); err != nil {
		t.Fatalf("cleared rule still firing: %v", err)
	}
}

func TestFaultTransportPartitionAndHeal(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	epA, epB := ft.Endpoint(), ft.Endpoint()
	addrA, closerA, err := epA.Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
	if err != nil {
		t.Fatal(err)
	}
	defer closerA.Close()
	addrB, closerB, err := epB.Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
	if err != nil {
		t.Fatal(err)
	}
	defer closerB.Close()

	ft.Partition(addrA, addrB)
	if _, err := epA.Call(addrB, Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a→b through partition: %v", err)
	}
	if _, err := epB.Call(addrA, Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("b→a through partition: %v", err)
	}
	// Anonymous clients are outside the partition.
	if _, err := ft.Call(addrB, Message{Op: OpPing}); err != nil {
		t.Fatalf("client blocked by a↔b partition: %v", err)
	}
	if s := ft.Stats(); s.PartitionBlocked != 2 {
		t.Fatalf("PartitionBlocked = %d, want 2", s.PartitionBlocked)
	}
	ft.Heal()
	if _, err := epA.Call(addrB, Message{Op: OpPing}); err != nil {
		t.Fatalf("a→b after heal: %v", err)
	}
}

func TestFaultTransportAsymmetricPartition(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	epA, epB := ft.Endpoint(), ft.Endpoint()
	addrA, _, err := epA.Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
	if err != nil {
		t.Fatal(err)
	}
	addrB, _, err := epB.Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
	if err != nil {
		t.Fatal(err)
	}
	ft.PartitionOneWay(addrA, addrB)
	if _, err := epA.Call(addrB, Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a→b through one-way partition: %v", err)
	}
	if _, err := epB.Call(addrA, Message{Op: OpPing}); err != nil {
		t.Fatalf("b→a should pass a one-way a→b partition: %v", err)
	}
}

func TestFaultTransportCrashStop(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	ep := ft.Endpoint()
	addr, _, err := ep.Listen("mem:0", func(m Message) Message { return Message{Ok: true} })
	if err != nil {
		t.Fatal(err)
	}
	other := echoListener(t, ft)

	ft.Crash(addr)
	if _, err := ft.Call(addr, Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to crashed node: %v", err)
	}
	// A crashed node's own traffic is blackholed too.
	if _, err := ep.Call(other, Message{Op: OpPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call from crashed node: %v", err)
	}
	if s := ft.Stats(); s.CrashBlocked != 2 {
		t.Fatalf("CrashBlocked = %d, want 2", s.CrashBlocked)
	}
	ft.Restore(addr)
	if _, err := ft.Call(addr, Message{Op: OpPing}); err != nil {
		t.Fatalf("call after Restore: %v", err)
	}
}

// TestFaultTransportSeededDeterminism: the same seed over the same call
// sequence yields the identical fault decisions.
func TestFaultTransportSeededDeterminism(t *testing.T) {
	run := func() FaultStats {
		ft := NewFaultTransport(NewMemTransport(), 99)
		addr := echoListener(t, ft)
		ft.SetDefaultRule(FaultRule{DropProb: 0.3, Latency: time.Microsecond, LatencyProb: 0.4})
		for i := 0; i < 300; i++ {
			_, _ = ft.Call(addr, Message{Op: OpPing})
		}
		return ft.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("seeded runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestFaultyRingSurvivesWithRetries is the fault/retry stack in one
// shot: a ring formed and used over a lossy network works because the
// retry layer absorbs the loss.
func TestFaultyRingSurvivesWithRetries(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 5)
	ft.SetDefaultRule(FaultRule{DropProb: 0.08})
	policy := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 5}
	cluster := NewCluster(NewRetryingTransport(ft, policy), 5, 0)
	var bootstrap string
	for i := 0; i < 6; i++ {
		n, err := Start(Config{
			Transport:         ft.Endpoint(),
			Addr:              "mem:0",
			Retry:             &policy,
			SuccFailThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join under 8%% loss (retried): %v", err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := keyOf(t, i)
		if !putWithRetry(cluster, key, entryOf(i), 6) {
			t.Fatalf("put %d never acked under loss", i)
		}
	}
	for i := 0; i < 20; i++ {
		entries, _, err := cluster.Get(keyOf(t, i))
		if err != nil || len(entries) == 0 {
			// One more chance: the storm is still on.
			entries, _, err = cluster.Get(keyOf(t, i))
			if err != nil || len(entries) == 0 {
				t.Fatalf("get %d under loss: %v %v", i, entries, err)
			}
		}
	}
	if s := ft.Stats(); s.DroppedRequests+s.DroppedResponses == 0 {
		t.Fatal("the lossy network never dropped anything — test proved nothing")
	}
}
