package wire

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// TestTCPRingEndToEnd boots a real TCP ring on loopback and exercises the
// full protocol: join, converge, put/get, graceful leave.
func TestTCPRingEndToEnd(t *testing.T) {
	transport := NewTCPTransport()
	cluster := NewCluster(transport, 1, 0)
	const count = 5
	nodes := make([]*Node, 0, count)
	var bootstrap string
	for i := 0; i < count; i++ {
		n, err := Start(Config{Transport: transport, Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		if !strings.HasPrefix(n.Addr(), "127.0.0.1:") {
			t.Fatalf("unexpected bound addr %s", n.Addr())
		}
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("tcp-doc-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("tcp-doc-%d", i))
		entries, _, err := cluster.Get(key)
		if err != nil || len(entries) != 1 {
			t.Fatalf("doc %d: %v %v", i, entries, err)
		}
	}
	// One node leaves gracefully; data survives.
	if err := nodes[2].Leave(); err != nil {
		t.Fatal(err)
	}
	cluster.Untrack(nodes[2].Addr())
	if err := cluster.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("tcp-doc-%d", i))
		deadline := time.Now().Add(10 * time.Second)
		for {
			entries, _, err := cluster.Get(key)
			if err == nil && len(entries) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("doc %d lost after TCP leave", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestTCPCallErrors(t *testing.T) {
	transport := NewTCPTransport()
	transport.DialTimeout = 200 * time.Millisecond
	if _, err := transport.Call("127.0.0.1:1", Message{Op: OpPing}); err == nil {
		t.Fatal("call to closed port succeeded")
	}
	// Listener close makes the address unreachable.
	addr, closer, err := transport.Listen("127.0.0.1:0", func(m Message) Message {
		return Message{Op: m.Op, Ok: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := transport.Call(addr, Message{Op: OpPing})
	if err != nil || !resp.Ok {
		t.Fatalf("ping: %+v, %v", resp, err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Call(addr, Message{Op: OpPing}); err == nil {
		t.Fatal("closed listener still reachable")
	}
}

// TestTCPMaxMessageSize: a peer declaring an oversized message must be
// cut off by the decode limit instead of ballooning server memory.
func TestTCPMaxMessageSize(t *testing.T) {
	server := NewTCPTransport()
	server.MaxMessageSize = 1 << 10
	handled := false
	addr, closer, err := server.Listen("127.0.0.1:0", func(m Message) Message {
		handled = true
		return Message{Op: m.Op, Ok: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	client := NewTCPTransport()
	client.CallTimeout = 2 * time.Second
	big := Message{Op: OpPut, Entry: overlay.Entry{Kind: "d", Value: strings.Repeat("x", 1<<20)}}
	if _, err := client.Call(addr, big); err == nil {
		t.Fatal("oversized message accepted")
	}
	if handled {
		t.Fatal("handler ran on a message past the size cap")
	}
	// Normal-sized traffic still flows.
	resp, err := client.Call(addr, Message{Op: OpPing})
	if err != nil || !resp.Ok {
		t.Fatalf("small message after oversized one: %+v, %v", resp, err)
	}
}

// TestTCPCloseBounded: Close must not hang behind a connection that
// dialed in and dribbles nothing — it drains with a deadline.
func TestTCPCloseBounded(t *testing.T) {
	transport := NewTCPTransport()
	transport.CallTimeout = 30 * time.Second // conn deadline far away
	transport.CloseTimeout = 200 * time.Millisecond
	addr, closer, err := transport.Listen("127.0.0.1:0", func(m Message) Message {
		return Message{Ok: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	// A client that connects and then stalls, holding serveConn open.
	stall, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	time.Sleep(50 * time.Millisecond) // let the server accept it

	start := time.Now()
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v despite a 200ms drain deadline", elapsed)
	}
}
