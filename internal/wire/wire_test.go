package wire

import (
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// startRing boots count nodes on the transport, joins them through the
// first, and waits for ring convergence.
func startRing(t *testing.T, transport Transport, count int) (*Cluster, []*Node) {
	t.Helper()
	cluster := NewCluster(transport, 1, 0)
	nodes := make([]*Node, 0, count)
	var bootstrap string
	for i := 0; i < count; i++ {
		n, err := Start(Config{Transport: transport, Addr: "mem:0"})
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return cluster, nodes
}

func TestSingleNodeRing(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRing(t, transport, 1)
	key := keyspace.NewKey("k")
	if _, err := cluster.Put(key, overlay.Entry{Kind: "d", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	entries, route, err := cluster.Get(key)
	if err != nil || len(entries) != 1 {
		t.Fatalf("get = %v, %v", entries, err)
	}
	if route.Node != nodes[0].Addr() {
		t.Fatalf("owner = %s", route.Node)
	}
}

func TestRingConvergesAndRoutes(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRing(t, transport, 10)
	// Every key must land on the node the sorted ring predicts
	// (successor rule over idOf).
	addrs := cluster.Addrs()
	for i := 0; i < 40; i++ {
		key := keyspace.NewKey(fmt.Sprintf("key-%d", i))
		route, err := cluster.FindOwner(key)
		if err != nil {
			t.Fatal(err)
		}
		want := successorOf(addrs, key)
		if route.Node != want {
			t.Fatalf("key %d routed to %s, want %s", i, route.Node, want)
		}
	}
	_ = nodes
}

// successorOf computes the ideal owner from a ring-ordered address list.
func successorOf(ringOrdered []string, key keyspace.Key) string {
	for _, addr := range ringOrdered {
		if idOf(addr).Cmp(key) >= 0 {
			return addr
		}
	}
	return ringOrdered[0]
}

func TestPutGetAcrossRing(t *testing.T) {
	transport := NewMemTransport()
	cluster, _ := startRing(t, transport, 8)
	for i := 0; i < 50; i++ {
		key := keyspace.NewKey(fmt.Sprintf("doc-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		key := keyspace.NewKey(fmt.Sprintf("doc-%d", i))
		entries, _, err := cluster.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Value != fmt.Sprintf("v%d", i) {
			t.Fatalf("doc-%d: %v", i, entries)
		}
	}
}

func TestRemoveAcrossRing(t *testing.T) {
	transport := NewMemTransport()
	cluster, _ := startRing(t, transport, 4)
	key := keyspace.NewKey("victim")
	e := overlay.Entry{Kind: "d", Value: "x"}
	if _, err := cluster.Put(key, e); err != nil {
		t.Fatal(err)
	}
	ok, err := cluster.Remove(key, e)
	if err != nil || !ok {
		t.Fatalf("remove = %v, %v", ok, err)
	}
	entries, _, err := cluster.Get(key)
	if err != nil || len(entries) != 0 {
		t.Fatalf("after remove: %v, %v", entries, err)
	}
	ok, err = cluster.Remove(key, e)
	if err != nil || ok {
		t.Fatalf("double remove = %v, %v", ok, err)
	}
}

func TestLateJoinTakesOverKeys(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRing(t, transport, 4)
	for i := 0; i < 40; i++ {
		key := keyspace.NewKey(fmt.Sprintf("k-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "d", Value: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	// Join four more nodes.
	for i := 0; i < 4; i++ {
		n, err := Start(Config{Transport: transport, Addr: "mem:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Give key migration a few stabilization rounds, then verify every
	// key is served and sits on its ideal owner.
	deadline := time.Now().Add(10 * time.Second)
	addrs := cluster.Addrs()
	for i := 0; i < 40; i++ {
		key := keyspace.NewKey(fmt.Sprintf("k-%d", i))
		for {
			entries, route, err := cluster.Get(key)
			if err == nil && len(entries) == 1 && route.Node == successorOf(addrs, key) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d not migrated: entries=%v err=%v owner=%s want=%s",
					i, entries, err, route.Node, successorOf(addrs, key))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestGracefulLeave(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRing(t, transport, 6)
	for i := 0; i < 30; i++ {
		key := keyspace.NewKey(fmt.Sprintf("d-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "d", Value: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	// Two nodes leave gracefully.
	for _, n := range nodes[2:4] {
		if err := n.Leave(); err != nil {
			t.Fatal(err)
		}
		cluster.Untrack(n.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		key := keyspace.NewKey(fmt.Sprintf("d-%d", i))
		// Data may take a round or two to settle on the new owner.
		deadline := time.Now().Add(10 * time.Second)
		for {
			entries, _, err := cluster.Get(key)
			if err == nil && len(entries) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d lost after leaves: %v %v", i, entries, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestCrashHealing(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRing(t, transport, 8)
	// Crash two non-adjacent nodes abruptly.
	nodes[1].Stop()
	cluster.Untrack(nodes[1].Addr())
	nodes[4].Stop()
	cluster.Untrack(nodes[4].Addr())
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Routing still works for arbitrary keys.
	for i := 0; i < 20; i++ {
		if _, err := cluster.FindOwner(keyspace.NewKey(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatalf("lookup after crashes: %v", err)
		}
	}
}

func TestClusterStatsOf(t *testing.T) {
	transport := NewMemTransport()
	cluster, _ := startRing(t, transport, 3)
	key := keyspace.NewKey("k")
	if _, err := cluster.Put(key, overlay.Entry{Kind: "index", Value: "abcd"}); err != nil {
		t.Fatal(err)
	}
	route, err := cluster.FindOwner(key)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cluster.StatsOf(route.Node)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Keys != 1 || stats.EntriesByKind["index"] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestClusterNoMembers(t *testing.T) {
	cluster := NewCluster(NewMemTransport(), 1, 0)
	if _, err := cluster.FindOwner(keyspace.NewKey("x")); err == nil {
		t.Fatal("empty cluster routed a lookup")
	}
	if cluster.Size() != 0 {
		t.Fatal("size != 0")
	}
}

func TestStopIdempotent(t *testing.T) {
	transport := NewMemTransport()
	n, err := Start(Config{Transport: transport, Addr: "mem:0"})
	if err != nil {
		t.Fatal(err)
	}
	n.Stop()
	n.Stop() // second stop must not panic or deadlock
	if _, err := transport.Call(n.Addr(), Message{Op: OpPing}); err == nil {
		t.Fatal("stopped node still reachable")
	}
}

func TestMemTransportErrors(t *testing.T) {
	transport := NewMemTransport()
	if _, err := transport.Call("ghost", Message{Op: OpPing}); err == nil {
		t.Fatal("call to unbound address succeeded")
	}
	_, closer, err := transport.Listen("dup", func(Message) Message { return Message{} })
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := transport.Listen("dup", nil); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Call("dup", Message{}); err == nil {
		t.Fatal("closed address still reachable")
	}
}

// TestReplicationSurvivesCrash: with ReplicationFactor 2, abruptly
// crashed nodes lose no data once the ring re-stabilizes and replicas
// take over.
func TestReplicationSurvivesCrash(t *testing.T) {
	transport := NewMemTransport()
	cluster := NewCluster(transport, 1, 2)
	const count = 8
	nodes := make([]*Node, 0, count)
	var bootstrap string
	for i := 0; i < count; i++ {
		n, err := Start(Config{
			Transport:         transport,
			Addr:              "mem:0",
			ReplicationFactor: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const keys = 40
	for i := 0; i < keys; i++ {
		key := keyspace.NewKey(fmt.Sprintf("r-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let at least one replication round run (every 4th stabilize tick).
	time.Sleep(8 * 25 * time.Millisecond)

	// Crash two nodes abruptly — no hand-off.
	for _, victim := range []*Node{nodes[1], nodes[5]} {
		victim.Stop()
		cluster.Untrack(victim.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Every key must still be retrievable (replicas serve or re-own).
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; i < keys; i++ {
		key := keyspace.NewKey(fmt.Sprintf("r-%d", i))
		for {
			entries, _, err := cluster.Get(key)
			if err == nil && len(entries) >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d lost after crashes despite replication", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestReplicatedRemovePropagates: deleting an entry removes it from the
// replicas too (no zombie resurrection by the repair loop).
func TestReplicatedRemovePropagates(t *testing.T) {
	transport := NewMemTransport()
	cluster := NewCluster(transport, 1, 2)
	var bootstrap string
	for i := 0; i < 5; i++ {
		n, err := Start(Config{Transport: transport, Addr: "mem:0", ReplicationFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	key := keyspace.NewKey("zombie")
	e := overlay.Entry{Kind: "data", Value: "v"}
	if _, err := cluster.Put(key, e); err != nil {
		t.Fatal(err)
	}
	time.Sleep(8 * 25 * time.Millisecond) // replicate
	ok, err := cluster.Remove(key, e)
	if err != nil || !ok {
		t.Fatalf("remove = %v, %v", ok, err)
	}
	// The entry must stay gone across several repair rounds.
	time.Sleep(12 * 25 * time.Millisecond)
	entries, _, err := cluster.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entry resurrected by repair loop: %v", entries)
	}
}
