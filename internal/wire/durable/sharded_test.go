package durable

import (
	"fmt"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func TestOpenShardedPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	keys := make([]keyspace.Key, 32)
	for i := range keys {
		keys[i] = keyspace.NewKey(fmt.Sprintf("sharded-%d", i))
		if ok, err := st.Put(keys[i], overlay.Entry{Kind: "k", Value: fmt.Sprint(i)}); err != nil || !ok {
			t.Fatalf("put %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, err := st.Remove(keys[0], overlay.Entry{Kind: "k", Value: "0"}); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != len(keys)-1 {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(keys)-1)
	}
	for i := 1; i < len(keys); i++ {
		got := re.Get(keys[i])
		if len(got) != 1 || got[i-i].Value != fmt.Sprint(i) {
			t.Fatalf("key %d after reopen: %+v", i, got)
		}
	}
	// The tombstone recovered too: the removed entry stays suppressed.
	if ok, _ := re.Put(keys[0], overlay.Entry{Kind: "k", Value: "0"}); ok {
		t.Fatal("tombstoned entry resurrected by reopen")
	}
	if re.RecoveryStats().ReplayedRecords == 0 {
		t.Fatal("reopen replayed no WAL records")
	}
}

func TestOpenShardedRejectsStripeCountChange(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	_ = st.Close()
	if _, err := OpenSharded(dir, 8, Options{}); err == nil {
		t.Fatal("reopen with a different stripe count succeeded")
	}
	// The original count still opens.
	re, err := OpenSharded(dir, 4, Options{})
	if err != nil {
		t.Fatalf("reopen with original count: %v", err)
	}
	_ = re.Close()
}
