package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/wire"
)

// On-disk format, shared by the WAL and the snapshot.
//
// Both files start with a 16-byte header: an 8-byte magic string
// followed by a uint64 little-endian sequence number. For the snapshot
// that number is the last operation the snapshot covers; for the WAL it
// is the sequence number BEFORE the file's first record, so record i
// (0-based) carries sequence base+i+1 implicitly — no per-record
// sequence field is needed because records are strictly ordered.
//
// After the header come length-prefixed, checksummed frames:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// A frame's payload is one record: an op byte (recPut appends a single
// entry, recReplace sets a key's whole entry set — zero entries means
// delete), the 20-byte ring key, then a uvarint entry count followed by
// uvarint-length-prefixed kind and value strings per entry.
//
// Replay reads frames until end of file. A short frame, an impossible
// length, or a checksum mismatch marks the frame — and therefore
// everything after it — torn: the WAL is truncated back to the last
// complete record and the store opens cleanly (the write behind the
// torn frame was never acked, so dropping it loses nothing the client
// was promised). The snapshot is written to a temp file and renamed
// into place, so a torn snapshot means real corruption and fails Open.

const (
	walMagic  = "DHTWAL1\n"
	snapMagic = "DHTSNP1\n"

	headerSize = 16

	// recPut appends one entry to a key's set.
	recPut = 1
	// recReplace sets a key's whole entry set (empty = delete) and
	// clears its tombstones. Legacy: written before deletion records
	// existed; still replayed so old data directories open cleanly.
	recReplace = 2
	// recTomb merges tombstones into a key: each removes its matching
	// live entry and is recorded keeping the latest At. Removes and
	// Entomb log this.
	recTomb = 3
	// recReplaceFull sets a key's whole entry set AND tombstone set at
	// once (repair-sync ship semantics; also the snapshot record).
	recReplaceFull = 4
	// recTombGC drops every tombstone older than the payload's cutoff
	// (the key field is unused), so a collection survives restart.
	recTombGC = 5

	// maxRecordSize bounds a frame payload; anything larger is treated
	// as a torn length prefix rather than an allocation request.
	maxRecordSize = 16 << 20
)

// errTorn marks a torn or corrupt frame found during replay.
var errTorn = errors.New("durable: torn record")

// record is one decoded WAL/snapshot frame.
type record struct {
	op      byte
	key     keyspace.Key
	entries []overlay.Entry
	tombs   []wire.Tombstone
	// gcBefore is the recTombGC cutoff (Unix nanoseconds).
	gcBefore int64
}

// encodeHeader renders a 16-byte magic+sequence file header.
func encodeHeader(magic string, seq uint64) []byte {
	buf := make([]byte, headerSize)
	copy(buf[:8], magic)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	return buf
}

// parseHeader validates a file's 16-byte header and returns its
// sequence number. A short or mismatched header returns errTorn so
// callers can decide between reset-and-continue (WAL) and fail
// (snapshot).
func parseHeader(b []byte, magic string) (uint64, error) {
	if len(b) < headerSize || string(b[:8]) != magic {
		return 0, errTorn
	}
	return binary.LittleEndian.Uint64(b[8:headerSize]), nil
}

// encodeRecord renders one record as a complete frame (length prefix,
// checksum, payload).
func encodeRecord(rec record) []byte {
	payload := make([]byte, 0, 1+keyspace.Size+8)
	payload = append(payload, rec.op)
	payload = append(payload, rec.key[:]...)
	switch rec.op {
	case recTombGC:
		payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.gcBefore))
	case recTomb:
		payload = appendTombs(payload, rec.tombs)
	case recReplaceFull:
		payload = appendEntries(payload, rec.entries)
		payload = appendTombs(payload, rec.tombs)
	default:
		payload = appendEntries(payload, rec.entries)
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// appendEntries encodes a uvarint count followed by the entries.
func appendEntries(payload []byte, entries []overlay.Entry) []byte {
	payload = binary.AppendUvarint(payload, uint64(len(entries)))
	for _, e := range entries {
		payload = binary.AppendUvarint(payload, uint64(len(e.Kind)))
		payload = append(payload, e.Kind...)
		payload = binary.AppendUvarint(payload, uint64(len(e.Value)))
		payload = append(payload, e.Value...)
	}
	return payload
}

// appendTombs encodes a uvarint count followed by the tombstones (entry
// strings plus an 8-byte little-endian At).
func appendTombs(payload []byte, tombs []wire.Tombstone) []byte {
	payload = binary.AppendUvarint(payload, uint64(len(tombs)))
	for _, t := range tombs {
		payload = binary.AppendUvarint(payload, uint64(len(t.Entry.Kind)))
		payload = append(payload, t.Entry.Kind...)
		payload = binary.AppendUvarint(payload, uint64(len(t.Entry.Value)))
		payload = append(payload, t.Entry.Value...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(t.At))
	}
	return payload
}

// parseFrame decodes the frame starting at b[0], returning the record
// and the number of bytes consumed. len(b) == 0 signals a clean end;
// any malformed or partial frame returns errTorn.
func parseFrame(b []byte) (record, int, error) {
	if len(b) < 8 {
		return record{}, 0, errTorn
	}
	length := binary.LittleEndian.Uint32(b[0:])
	sum := binary.LittleEndian.Uint32(b[4:])
	if length == 0 || length > maxRecordSize || uint32(len(b)-8) < length {
		return record{}, 0, errTorn
	}
	payload := b[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != sum {
		return record{}, 0, errTorn
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return record{}, 0, err
	}
	return rec, 8 + int(length), nil
}

// decodePayload parses one frame payload into a record.
func decodePayload(payload []byte) (record, error) {
	if len(payload) < 1+keyspace.Size {
		return record{}, errTorn
	}
	var rec record
	rec.op = payload[0]
	copy(rec.key[:], payload[1:1+keyspace.Size])
	rest := payload[1+keyspace.Size:]
	var err error
	switch rec.op {
	case recTombGC:
		if len(rest) != 8 {
			return record{}, errTorn
		}
		rec.gcBefore = int64(binary.LittleEndian.Uint64(rest))
		rest = nil
	case recTomb:
		rec.tombs, rest, err = readTombs(rest)
	case recReplaceFull:
		rec.entries, rest, err = readEntries(rest)
		if err == nil {
			rec.tombs, rest, err = readTombs(rest)
		}
	case recPut, recReplace:
		rec.entries, rest, err = readEntries(rest)
	default:
		return record{}, errTorn
	}
	if err != nil {
		return record{}, err
	}
	if len(rest) != 0 {
		return record{}, errTorn
	}
	return rec, nil
}

// readEntries decodes a uvarint-counted entry list.
func readEntries(b []byte) ([]overlay.Entry, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || count > maxRecordSize {
		return nil, nil, errTorn
	}
	b = b[n:]
	entries := make([]overlay.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		kind, rem, err := readString(b)
		if err != nil {
			return nil, nil, err
		}
		value, rem, err := readString(rem)
		if err != nil {
			return nil, nil, err
		}
		b = rem
		entries = append(entries, overlay.Entry{Kind: kind, Value: value})
	}
	return entries, b, nil
}

// readTombs decodes a uvarint-counted tombstone list.
func readTombs(b []byte) ([]wire.Tombstone, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || count > maxRecordSize {
		return nil, nil, errTorn
	}
	b = b[n:]
	tombs := make([]wire.Tombstone, 0, count)
	for i := uint64(0); i < count; i++ {
		kind, rem, err := readString(b)
		if err != nil {
			return nil, nil, err
		}
		value, rem, err := readString(rem)
		if err != nil {
			return nil, nil, err
		}
		if len(rem) < 8 {
			return nil, nil, errTorn
		}
		at := int64(binary.LittleEndian.Uint64(rem))
		b = rem[8:]
		tombs = append(tombs, wire.Tombstone{Entry: overlay.Entry{Kind: kind, Value: value}, At: at})
	}
	return tombs, b, nil
}

// readString decodes one uvarint-length-prefixed string.
func readString(b []byte) (string, []byte, error) {
	length, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < length {
		return "", nil, errTorn
	}
	return string(b[n : n+int(length)]), b[n+int(length):], nil
}
