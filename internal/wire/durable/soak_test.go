package durable

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/wire"
)

// TestRestartSoak is the tentpole scenario: a ring of durable nodes
// where every restart event crash-stops a full replica set (R+1
// adjacent members) keeping their data directories. While a burst is
// down, its key ranges exist only on disk — so zero acked-write loss at
// the post-storm probe proves recovery actually replays state, and the
// VerifyReplicas hold proves the rejoined members reconverge to exact
// replica coverage through the anti-entropy loop.
func TestRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	report, err := wire.RunSoak(wire.SoakConfig{
		Nodes:             10,
		Ops:               90,
		Seed:              42,
		ReplicationFactor: 2,
		CrashEvery:        100000, // isolate the restart schedule
		PartitionAt:       -1,     // ditto
		RestartEvery:      30,
		RestartDowntime:   12,
		VerifyReplicas:    true,
		StabilizeInterval: 15 * time.Millisecond,
		Telemetry:         reg,
		StoreFor: func(member int) (wire.Store, error) {
			return Open(filepath.Join(dir, fmt.Sprintf("node-%03d", member)),
				Options{SnapshotEvery: 32})
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if report.Restarts == 0 {
		t.Fatal("soak executed no crash-restarts")
	}
	if report.Acked == 0 {
		t.Fatal("soak acked no writes")
	}
	if len(report.LostKeys) > 0 {
		t.Errorf("acked writes lost across crash-restart: %v", report.LostKeys)
	}
	if len(report.ReplicaViolations) > 0 {
		t.Errorf("replica coverage never reconverged: %v", report.ReplicaViolations)
	}
	if !report.Converged {
		t.Error("ring did not re-converge after the storm")
	}
	rec := report.Recovery
	if rec.SnapshotKeys+rec.ReplayedRecords == 0 {
		t.Errorf("restarts recovered nothing from disk: %+v", rec)
	}
	if rec.TornRecords != 0 {
		t.Errorf("clean crash-stops produced torn records: %+v", rec)
	}
	t.Logf("restart soak: acked=%d restarts=%d recovery=%+v", report.Acked, report.Restarts, rec)
}

// TestSingleNodeCrashRestartRejoin exercises the documented restart
// recipe directly: put through a small ring, crash-stop one member (no
// handoff), reopen its directory, restart on the same address, rejoin,
// and observe both its recovered local state and its ring membership.
func TestSingleNodeCrashRestartRejoin(t *testing.T) {
	dir := t.TempDir()
	mt := wire.NewMemTransport()
	openStore := func() *Store {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		return s
	}

	cfg := func(addr string, st wire.Store) wire.Config {
		return wire.Config{
			Transport:         mt,
			Addr:              addr,
			StabilizeInterval: 10 * time.Millisecond,
			ReplicationFactor: 1,
			Store:             st,
		}
	}
	a, err := wire.Start(cfg("mem:0", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := wire.Start(cfg("mem:0", openStore()))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	bAddr := b.Addr()

	cluster := wire.NewCluster(mt, 1, 1)
	cluster.Track(a.Addr())
	cluster.Track(bAddr)
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("ring never formed: %v", err)
	}
	keys := make([]keyspace.Key, 0, 20)
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("restart-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "soak", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
		keys = append(keys, key)
	}
	before := b.KeyCount()
	if before == 0 {
		t.Fatal("node under test holds no keys; seed more entries")
	}

	// Crash-stop: Stop without Leave hands nothing off, but closes the
	// store cleanly so the directory can be reopened.
	b.Stop()
	cluster.Untrack(bAddr)

	// Restart from the same directory on the same address: the ring ID
	// is derived from the address, so the node resumes its old position.
	b2, err := wire.Start(cfg(bAddr, openStore()))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer b2.Stop()
	if b2.Addr() != bAddr {
		t.Fatalf("restarted on %s, want %s", b2.Addr(), bAddr)
	}
	if got := b2.KeyCount(); got != before {
		t.Fatalf("recovered %d keys, want %d", got, before)
	}
	if err := b2.Join(a.Addr()); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	cluster.Track(bAddr)
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("ring never re-formed: %v", err)
	}
	for _, k := range keys {
		entries, _, err := cluster.Get(k)
		if err != nil || len(entries) == 0 {
			t.Fatalf("key %s unreadable after restart: %v", k.Short(), err)
		}
	}
}
