package durable

import (
	"testing"

	"dhtindex/internal/overlay"
	"dhtindex/internal/wire"
)

// TestTombstoneWALReplay: deletion records survive a crash-restart via
// WAL replay — the tombstone keeps suppressing re-puts across reopens,
// a GC record replays as a GC, and only after it does a re-put land.
func TestTombstoneWALReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key, entry := k("wal-tomb"), e("index", "deleted")

	if _, err := s.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	if removed, err := s.Remove(key, entry); err != nil || !removed {
		t.Fatalf("remove: %v %v", removed, err)
	}
	if added, err := s.Put(key, entry); err != nil || added {
		t.Fatalf("put past live tombstone: added=%v err=%v", added, err)
	}
	// Crash (no Close) and reopen: the recTomb record must replay.
	r := mustOpen(t, dir, Options{})
	if !r.Tombstoned(key, entry) {
		t.Fatal("tombstone lost across restart")
	}
	if added, err := r.Put(key, entry); err != nil || added {
		t.Fatalf("restart forgot the suppression: added=%v err=%v", added, err)
	}
	// GC the tombstone, crash, reopen: the recTombGC record must replay
	// too, or the restart would resurrect the suppression.
	tombs := r.Tombstones(key)
	if len(tombs) != 1 {
		t.Fatalf("want 1 tombstone, got %v", tombs)
	}
	if n, err := r.GCTombstones(tombs[0].At + 1); err != nil || n != 1 {
		t.Fatalf("GC: n=%d err=%v", n, err)
	}
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if r2.Tombstoned(key, entry) {
		t.Fatal("GC'd tombstone resurrected by WAL replay")
	}
	if added, err := r2.Put(key, entry); err != nil || !added {
		t.Fatalf("put after GC+restart: added=%v err=%v", added, err)
	}
}

// TestTombstoneReplaceAndEntombDurability: the bulk-install and
// merge-from-peer paths persist their tombstones like first-class
// writes.
func TestTombstoneReplaceAndEntombDurability(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := k("replace-tomb")
	live := e("index", "live")
	dead := e("index", "dead")

	if err := s.Replace(key, []overlay.Entry{live}, []wire.Tombstone{{Entry: dead, At: 42}}); err != nil {
		t.Fatal(err)
	}
	key2 := k("entomb-me")
	victim := e("index", "victim")
	if _, err := s.Put(key2, victim); err != nil {
		t.Fatal(err)
	}
	if fresh, err := s.Entomb(key2, []wire.Tombstone{{Entry: victim, At: 99}}); err != nil || fresh != 1 {
		t.Fatalf("entomb: fresh=%d err=%v", fresh, err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(key); len(got) != 1 || got[0] != live {
		t.Fatalf("replaced entries after restart: %v", got)
	}
	if got := r.Tombstones(key); len(got) != 1 || got[0].Entry != dead || got[0].At != 42 {
		t.Fatalf("replaced tombstones after restart: %v", got)
	}
	if got := r.Get(key2); len(got) != 0 {
		t.Fatalf("entombed entry survived restart: %v", got)
	}
	if !r.Tombstoned(key2, victim) {
		t.Fatal("entomb record lost across restart")
	}
}

// TestTombstoneSnapshotCompaction: WAL compaction must carry
// tombstone-only keys into the snapshot — a key whose every entry was
// removed still guards against resurrection after the WAL that held its
// deletion records is truncated.
func TestTombstoneSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: 4})
	key, entry := k("snap-tomb"), e("index", "gone")
	if _, err := s.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Remove(key, entry); err != nil {
		t.Fatal(err)
	}
	// Push unrelated traffic until compaction has certainly run.
	for i := 0; i < 16; i++ {
		if _, err := s.Put(k("filler"), e("data", string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{SnapshotEvery: 4})
	defer r.Close()
	if !r.Tombstoned(key, entry) {
		t.Fatal("snapshot compaction dropped a tombstone-only key")
	}
	if added, err := r.Put(key, entry); err != nil || added {
		t.Fatalf("post-compaction suppression lost: added=%v err=%v", added, err)
	}
	if got := r.Get(k("filler")); len(got) != 16 {
		t.Fatalf("filler entries after compaction: %d", len(got))
	}
}
