package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/wire"
)

// Summary is the result of offline-inspecting a durable data
// directory: what a node restarting from it would recover, plus the
// raw snapshot/WAL shape. Produced by Inspect; printed by
// `indexctl snapshot`.
type Summary struct {
	// Dir is the inspected data directory.
	Dir string
	// HasSnapshot reports whether a snapshot.db is present.
	HasSnapshot bool
	// SnapshotSeq is the snapshot's covered sequence number.
	SnapshotSeq uint64
	// SnapshotKeys is the number of keys the snapshot holds.
	SnapshotKeys int
	// WALBaseSeq is the WAL header's base sequence number.
	WALBaseSeq uint64
	// WALRecords is the number of complete records in the WAL.
	WALRecords int
	// SkippedRecords is how many WAL records a recovery would skip
	// because the snapshot already covers their sequence numbers.
	SkippedRecords int
	// TornTail reports a torn or corrupt trailing record (recovery
	// would truncate it; Inspect only reports it).
	TornTail bool
	// LastSeq is the sequence number recovery would resume from.
	LastSeq uint64
	// Keys lists the recovered keys sorted by ring position.
	Keys []KeySummary
	// TotalEntries sums entry counts across all recovered keys.
	TotalEntries int
	// TotalTombstones sums recovered deletion records across all keys.
	TotalTombstones int
}

// KeySummary describes one recovered key.
type KeySummary struct {
	// Key is the ring key.
	Key keyspace.Key
	// Entries is the number of entries recovered under the key.
	Entries int
	// Kinds counts entries by kind.
	Kinds map[string]int
	// Tombstones is the number of deletion records held under the key.
	Tombstones int
}

// DumpedKey is one recovered key with its full entries and tombstones,
// produced by Dump. Where Inspect only counts what a directory holds,
// Dump returns the payloads themselves — the hook offline tooling needs
// to decode application-level records (e.g. the ingest spool).
type DumpedKey struct {
	// Key is the ring key.
	Key keyspace.Key
	// Entries are the recovered entries, in replay order.
	Entries []overlay.Entry
	// Tombstones are the key's recovered deletion records.
	Tombstones []wire.Tombstone
}

// Dump performs a read-only recovery replay of the data directory at
// dir and returns every recovered key with its entries and tombstones,
// sorted by ring position. Like Inspect it never truncates a torn tail
// or creates missing files; a torn trailing record is simply where the
// replay stops.
func Dump(dir string) ([]DumpedKey, error) {
	s := &Store{mem: make(map[keyspace.Key][]overlay.Entry), tombs: make(map[keyspace.Key]map[overlay.Entry]int64)}
	lastSeq := uint64(0)

	snap, err := os.ReadFile(filepath.Join(dir, snapFile))
	if err == nil {
		seq, herr := parseHeader(snap, snapMagic)
		if herr != nil {
			return nil, fmt.Errorf("durable: snapshot corrupt: bad header")
		}
		rest := snap[headerSize:]
		for len(rest) > 0 {
			rec, n, perr := parseFrame(rest)
			if perr != nil {
				return nil, fmt.Errorf("durable: snapshot corrupt: %w", perr)
			}
			s.apply(rec)
			rest = rest[n:]
		}
		lastSeq = seq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: read snapshot: %w", err)
	}

	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: read wal: %w", err)
	}
	if len(wal) > 0 {
		if base, herr := parseHeader(wal, walMagic); herr == nil {
			i := 0
			rest := wal[headerSize:]
			for len(rest) > 0 {
				rec, n, perr := parseFrame(rest)
				if perr != nil {
					break // torn tail: recovery would truncate here
				}
				i++
				if base+uint64(i) > lastSeq {
					s.apply(rec)
					lastSeq = base + uint64(i)
				}
				rest = rest[n:]
			}
		}
	}

	out := make([]DumpedKey, 0, len(s.mem))
	seen := make(map[keyspace.Key]bool, len(s.mem))
	for k, entries := range s.mem {
		out = append(out, DumpedKey{Key: k, Entries: entries, Tombstones: tombstoneSlice(s.tombs[k])})
		seen[k] = true
	}
	for k, m := range s.tombs {
		if !seen[k] && len(m) > 0 {
			out = append(out, DumpedKey{Key: k, Tombstones: tombstoneSlice(m)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Cmp(out[j].Key) < 0 })
	return out, nil
}

// Inspect performs a read-only recovery replay of the data directory
// at dir and summarizes what a restarting node would see. Unlike Open
// it never truncates a torn WAL tail or creates missing files, so it
// is safe to point at a live node's directory or a post-mortem copy.
func Inspect(dir string) (Summary, error) {
	sum := Summary{Dir: dir}
	mem := make(map[keyspace.Key][]overlay.Entry)
	s := &Store{mem: mem, tombs: make(map[keyspace.Key]map[overlay.Entry]int64)}

	snap, err := os.ReadFile(filepath.Join(dir, snapFile))
	if err == nil {
		seq, herr := parseHeader(snap, snapMagic)
		if herr != nil {
			return sum, fmt.Errorf("durable: snapshot corrupt: bad header")
		}
		rest := snap[headerSize:]
		for len(rest) > 0 {
			rec, n, perr := parseFrame(rest)
			if perr != nil {
				return sum, fmt.Errorf("durable: snapshot corrupt: %w", perr)
			}
			s.apply(rec)
			rest = rest[n:]
		}
		sum.HasSnapshot = true
		sum.SnapshotSeq = seq
		sum.SnapshotKeys = len(mem)
		sum.LastSeq = seq
	} else if !os.IsNotExist(err) {
		return sum, fmt.Errorf("durable: read snapshot: %w", err)
	}

	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil && !os.IsNotExist(err) {
		return sum, fmt.Errorf("durable: read wal: %w", err)
	}
	if len(wal) > 0 {
		base, herr := parseHeader(wal, walMagic)
		if herr != nil {
			sum.TornTail = true
		} else {
			sum.WALBaseSeq = base
			i := 0
			rest := wal[headerSize:]
			for len(rest) > 0 {
				rec, n, perr := parseFrame(rest)
				if perr != nil {
					sum.TornTail = true
					break
				}
				i++
				if base+uint64(i) <= sum.LastSeq {
					sum.SkippedRecords++
				} else {
					s.apply(rec)
					sum.LastSeq = base + uint64(i)
				}
				rest = rest[n:]
			}
			sum.WALRecords = i
		}
	}

	for k, entries := range mem {
		ks := KeySummary{Key: k, Entries: len(entries), Kinds: make(map[string]int), Tombstones: len(s.tombs[k])}
		for _, e := range entries {
			ks.Kinds[e.Kind]++
		}
		sum.Keys = append(sum.Keys, ks)
		sum.TotalEntries += len(entries)
		sum.TotalTombstones += ks.Tombstones
	}
	for k, m := range s.tombs {
		if len(mem[k]) > 0 {
			continue
		}
		sum.Keys = append(sum.Keys, KeySummary{Key: k, Kinds: make(map[string]int), Tombstones: len(m)})
		sum.TotalTombstones += len(m)
	}
	sort.Slice(sum.Keys, func(i, j int) bool {
		return sum.Keys[i].Key.Cmp(sum.Keys[j].Key) < 0
	})
	return sum, nil
}
