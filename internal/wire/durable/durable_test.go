package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

func k(s string) keyspace.Key { return keyspace.NewKey(s) }

func e(kind, value string) overlay.Entry { return overlay.Entry{Kind: kind, Value: value} }

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestCrashRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Put(k("a"), e("index", "one")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("a"), e("index", "two")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("b"), e("data", "msd")); err != nil {
		t.Fatal(err)
	}
	if added, err := s.Put(k("a"), e("index", "one")); err != nil || added {
		t.Fatalf("duplicate put: added=%v err=%v", added, err)
	}
	if removed, err := s.Remove(k("a"), e("index", "two")); err != nil || !removed {
		t.Fatalf("remove: removed=%v err=%v", removed, err)
	}
	if err := s.Replace(k("c"), []overlay.Entry{e("data", "x"), e("data", "y")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(k("b"), nil, nil); err != nil { // delete
		t.Fatal(err)
	}
	// Simulate a crash: do NOT Close — reopen from disk as-is.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(k("a")); len(got) != 1 || got[0] != e("index", "one") {
		t.Fatalf("key a after restart: %v", got)
	}
	if got := r.Get(k("b")); got != nil {
		t.Fatalf("deleted key b resurrected: %v", got)
	}
	if got := r.Get(k("c")); len(got) != 2 {
		t.Fatalf("key c after restart: %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len after restart = %d, want 2", r.Len())
	}
	st := r.RecoveryStats()
	if st.ReplayedRecords != 6 || st.TornRecords != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Put(k("a"), e("index", "keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("b"), e("index", "torn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop bytes off the end of the WAL.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	if got := r.Get(k("a")); len(got) != 1 {
		t.Fatalf("surviving record lost: %v", got)
	}
	if got := r.Get(k("b")); got != nil {
		t.Fatalf("torn record partially applied: %v", got)
	}
	st := r.RecoveryStats()
	if st.TornRecords != 1 || st.ReplayedRecords != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	// The torn tail must be gone from disk: a write-then-reopen cycle
	// replays cleanly with no further torn records.
	if _, err := r.Put(k("c"), e("index", "after")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if st := r2.RecoveryStats(); st.TornRecords != 0 || st.ReplayedRecords != 2 {
		t.Fatalf("post-truncation recovery stats: %+v", st)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Put(k("a"), e("index", "ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("b"), e("index", "corrupt")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a payload bit in the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(k("a")); len(got) != 1 {
		t.Fatalf("record before corruption lost: %v", got)
	}
	if got := r.Get(k("b")); got != nil {
		t.Fatalf("checksum-corrupt record applied: %v", got)
	}
	if st := r.RecoveryStats(); st.TornRecords != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestSnapshotCompactionAndSeqSkip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: -1})
	for i := 0; i < 10; i++ {
		if _, err := s.Put(k("key"+string(rune('a'+i))), e("index", "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("post"), e("index", "after-snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if r.Len() != 11 {
		t.Fatalf("Len after compacted restart = %d, want 11", r.Len())
	}
	st := r.RecoveryStats()
	if st.SnapshotKeys != 10 || st.ReplayedRecords != 1 || st.SkippedRecords != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window: snapshot renamed into place but WAL not yet
	// rotated. Fake it by snapshotting and then restoring the
	// pre-snapshot WAL — its records' sequences are covered by the
	// snapshot and must be skipped, not double-applied.
	s2 := mustOpen(t, dir, Options{SnapshotEvery: -1})
	oldWAL, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if r2.Len() != 11 {
		t.Fatalf("Len after crash-window restart = %d, want 11", r2.Len())
	}
	st = r2.RecoveryStats()
	if st.SkippedRecords != 1 || st.ReplayedRecords != 0 {
		t.Fatalf("crash-window recovery stats: %+v", st)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: 4})
	for i := 0; i < 10; i++ {
		if err := s.Replace(k("x"), []overlay.Entry{e("index", string(rune('0'+i)))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	walRecords := s.walRecords
	s.mu.Unlock()
	if walRecords >= 4 {
		t.Fatalf("WAL not compacted: %d records", walRecords)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(k("x")); len(got) != 1 || got[0] != e("index", "9") {
		t.Fatalf("latest value lost across compaction: %v", got)
	}
}

func TestAppendErrorRefusesWrite(t *testing.T) {
	dir := t.TempDir()
	fail := errors.New("disk full")
	arm := false
	s := mustOpen(t, dir, Options{Faults: Faults{AppendErr: func() error {
		if arm {
			return fail
		}
		return nil
	}}})
	if _, err := s.Put(k("a"), e("index", "ok")); err != nil {
		t.Fatal(err)
	}
	arm = true
	if _, err := s.Put(k("b"), e("index", "lost")); !errors.Is(err, fail) {
		t.Fatalf("Put under append fault: err=%v", err)
	}
	if got := s.Get(k("b")); got != nil {
		t.Fatalf("refused write visible in memory: %v", got)
	}
	if removed, err := s.Remove(k("a"), e("index", "ok")); err == nil || removed {
		t.Fatalf("Remove under append fault: removed=%v err=%v", removed, err)
	}
	if got := s.Get(k("a")); len(got) != 1 {
		t.Fatalf("failed remove mutated memory: %v", got)
	}
	arm = false
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(k("a")); len(got) != 1 {
		t.Fatalf("acked write lost: %v", got)
	}
	if got := r.Get(k("b")); got != nil {
		t.Fatalf("unacked write recovered into memory: %v", got)
	}
}

func TestFsyncErrorInjection(t *testing.T) {
	dir := t.TempDir()
	fail := errors.New("fsync: I/O error")
	arm := false
	s := mustOpen(t, dir, Options{FsyncEvery: 1, Faults: Faults{SyncErr: func() error {
		if arm {
			return fail
		}
		return nil
	}}})
	if _, err := s.Put(k("a"), e("index", "ok")); err != nil {
		t.Fatal(err)
	}
	arm = true
	if _, err := s.Put(k("b"), e("index", "maybe")); !errors.Is(err, fail) {
		t.Fatalf("Put under fsync fault: err=%v", err)
	}
	if err := s.Sync(); !errors.Is(err, fail) {
		t.Fatalf("Sync under fault: err=%v", err)
	}
	arm = false
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The write was refused, but it DID reach the WAL before the fsync
	// failed — at-least-once: it may reappear after recovery, and must
	// do so consistently rather than corrupting the log.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if st := r.RecoveryStats(); st.TornRecords != 0 {
		t.Fatalf("fsync fault tore the log: %+v", st)
	}
	if got := r.Get(k("a")); len(got) != 1 {
		t.Fatalf("acked write lost: %v", got)
	}
}

func TestCorruptWALHeaderResetsToSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: -1})
	if _, err := s.Put(k("a"), e("index", "snapped")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-rotation: the WAL header is garbage.
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Get(k("a")); len(got) != 1 {
		t.Fatalf("snapshot state lost: %v", got)
	}
	st := r.RecoveryStats()
	if st.TornRecords != 1 || st.SnapshotKeys != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	// The reset WAL must accept appends and replay them.
	if _, err := r.Put(k("b"), e("index", "post-reset")); err != nil {
		t.Fatal(err)
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SnapshotEvery: -1})
	if _, err := s.Put(k("a"), e("index", "one")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("a"), e("data", "msd")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(k("b"), e("index", "two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.HasSnapshot || sum.SnapshotKeys != 1 {
		t.Fatalf("snapshot summary: %+v", sum)
	}
	if sum.WALRecords != 1 || sum.TornTail || sum.LastSeq != 3 {
		t.Fatalf("wal summary: %+v", sum)
	}
	if len(sum.Keys) != 2 || sum.TotalEntries != 3 {
		t.Fatalf("key summary: %+v", sum.Keys)
	}
	for _, ks := range sum.Keys {
		if ks.Key == k("a") && (ks.Entries != 2 || ks.Kinds["index"] != 1 || ks.Kinds["data"] != 1) {
			t.Fatalf("key a summary: %+v", ks)
		}
	}

	// Inspect must observe a torn tail without repairing it.
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	sum2, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sum2.TornTail || sum2.WALRecords != 0 {
		t.Fatalf("torn-tail summary: %+v", sum2)
	}
	after, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-2 {
		t.Fatalf("Inspect modified the WAL: %d -> %d bytes", len(data)-2, len(after))
	}
}

func TestInstrumentExportsSeries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if _, err := s.Put(k("a"), e("index", "v")); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wire_wal_appends_total 1",
		"wire_recovery_runs_total 1",
		"wire_wal_records 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}
