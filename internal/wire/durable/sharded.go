package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dhtindex/internal/wire"
)

// stripesMarker records how many stripes a sharded data directory was
// created with, so a later open with a different stripe count fails
// loudly instead of silently splitting each key's history across two
// stripe layouts.
const stripesMarker = "STRIPES"

// OpenSharded opens (or creates) a striped durable store rooted at dir:
// one WAL+snapshot Store per stripe in dir/stripe-NN, assembled into a
// wire.ShardedStore so handler goroutines touching different stripes
// append to different WALs without queueing on one store lock. stripes
// <= 0 selects wire.DefaultStoreStripes. The stripe count is written to
// a marker file on first open and verified on every later one — a key's
// stripe is a pure function of the stripe count, so reopening with a
// different count would strand previously written state in stripes the
// new layout never reads. Options apply to every stripe; note that
// SnapshotEvery and FsyncEvery count per stripe, not across the store.
func OpenSharded(dir string, stripes int, opts Options) (*wire.ShardedStore, error) {
	if stripes <= 0 {
		stripes = wire.DefaultStoreStripes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	markerPath := filepath.Join(dir, stripesMarker)
	if data, err := os.ReadFile(markerPath); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil {
			return nil, fmt.Errorf("durable: stripe marker %s corrupt: %q", markerPath, data)
		}
		if prev != stripes {
			return nil, fmt.Errorf("durable: %s was created with %d stripes, reopened with %d — the stripe count is part of the on-disk layout", dir, prev, stripes)
		}
	} else if os.IsNotExist(err) {
		if werr := os.WriteFile(markerPath, []byte(strconv.Itoa(stripes)+"\n"), 0o644); werr != nil {
			return nil, fmt.Errorf("durable: write stripe marker: %w", werr)
		}
	} else {
		return nil, fmt.Errorf("durable: read stripe marker: %w", err)
	}
	opened := make([]wire.Store, 0, stripes)
	for i := 0; i < stripes; i++ {
		s, err := Open(filepath.Join(dir, fmt.Sprintf("stripe-%02d", i)), opts)
		if err != nil {
			for _, o := range opened {
				_ = o.Close()
			}
			return nil, fmt.Errorf("durable: stripe %d: %w", i, err)
		}
		opened = append(opened, s)
	}
	return wire.NewShardedStore(opened), nil
}
