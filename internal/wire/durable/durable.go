// Package durable is the disk-backed wire.Store: an append-only,
// checksummed write-ahead log compacted by periodic snapshots. It turns
// a wire node's crash-stop into crash-recovery — reopen the same
// directory, restart the node on the same address (the ring ID is
// derived from it) and rejoin; the anti-entropy repair loop reconciles
// whatever the node missed while it was down.
//
// Durability contract: every mutation is framed into the WAL before it
// touches the in-memory map, and a failed append refuses the write (the
// node then refuses the ack). By default the WAL is NOT fsynced per
// write — an acked write survives a process crash but the last few may
// be lost to a kernel crash or power cut; set Options.FsyncEvery to 1
// for full fsync-per-append at the obvious throughput cost. Because an
// append whose error was reported may still have reached the disk,
// replay is at-least-once: records are idempotent (dedup on put,
// replace semantics otherwise), so double-apply is harmless.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/wire"
)

const (
	walFile  = "wal.log"
	snapFile = "snapshot.db"
	tmpFile  = "snapshot.tmp"

	defaultSnapshotEvery = 1024
)

// Faults injects storage-level failures, mirroring what wire's
// FaultTransport does for the network. Both hooks may be called with
// the store's lock held and must not call back into the store.
type Faults struct {
	// AppendErr, when non-nil, is consulted before every WAL append; a
	// non-nil result fails the append before anything is written.
	AppendErr func() error
	// SyncErr, when non-nil, is consulted before every fsync (WAL and
	// snapshot alike); a non-nil result fails the flush.
	SyncErr func() error
}

// Options tunes a durable store. The zero value is a sensible default.
type Options struct {
	// SnapshotEvery compacts the WAL into a fresh snapshot once it holds
	// this many records (default 1024; negative disables automatic
	// compaction — Snapshot can still be called explicitly).
	SnapshotEvery int
	// FsyncEvery fsyncs the WAL every N appends. 0 (the default) never
	// fsyncs on the write path: appends reach the kernel immediately and
	// the OS flushes them, so acked writes survive a process crash but
	// not necessarily a power cut. 1 gives fsync-per-append.
	FsyncEvery int
	// Faults injects storage failures for tests and soak harnesses.
	Faults Faults
}

// Store implements wire.Store on top of a data directory holding a WAL
// (wal.log) and its compacting snapshot (snapshot.db). The wire node
// serializes access through its own mutex; Store nonetheless carries
// its own lock so telemetry snapshots and offline inspection stay safe.
type Store struct {
	mu         sync.Mutex
	dir        string
	opts       Options
	mem        map[keyspace.Key][]overlay.Entry
	wal        *os.File
	seq        uint64
	walRecords int
	sinceSync  int
	closed     bool
	recovery   wire.RecoveryStats
	c          counters
}

var (
	_ wire.RecoverableStore  = (*Store)(nil)
	_ wire.InstrumentedStore = (*Store)(nil)
)

// counters holds the store's telemetry instruments (attached to a
// registry by Instrument; counted regardless).
type counters struct {
	walAppends      *telemetry.Counter
	walAppendErrs   *telemetry.Counter
	walBytes        *telemetry.Counter
	walFsyncs       *telemetry.Counter
	walFsyncErrs    *telemetry.Counter
	snapWrites      *telemetry.Counter
	snapWriteErrs   *telemetry.Counter
	recoveryRuns    *telemetry.Counter
	recoveryReplays *telemetry.Counter
	recoveryTorn    *telemetry.Counter
}

func newCounters() counters {
	return counters{
		walAppends: telemetry.NewCounter("wire_wal_appends_total",
			"WAL records appended."),
		walAppendErrs: telemetry.NewCounter("wire_wal_append_errors_total",
			"WAL appends that failed (the write was refused, no ack)."),
		walBytes: telemetry.NewCounter("wire_wal_bytes_total",
			"Bytes appended to the WAL, framing included."),
		walFsyncs: telemetry.NewCounter("wire_wal_fsyncs_total",
			"Explicit WAL fsyncs issued."),
		walFsyncErrs: telemetry.NewCounter("wire_wal_fsync_errors_total",
			"WAL fsyncs that failed."),
		snapWrites: telemetry.NewCounter("wire_snapshot_writes_total",
			"Compacting snapshots written and renamed into place."),
		snapWriteErrs: telemetry.NewCounter("wire_snapshot_write_errors_total",
			"Snapshot attempts abandoned by a write, sync or rename error."),
		recoveryRuns: telemetry.NewCounter("wire_recovery_runs_total",
			"Store opens that replayed persistent state."),
		recoveryReplays: telemetry.NewCounter("wire_recovery_replayed_records_total",
			"WAL records applied during recovery replays."),
		recoveryTorn: telemetry.NewCounter("wire_recovery_torn_records_total",
			"Torn or corrupt WAL tails truncated during recovery."),
	}
}

// Open loads (or creates) the durable store rooted at dir, replaying
// snapshot plus WAL. A torn WAL tail — the expected shape of a crash
// mid-append — is truncated back to the last complete record and
// reported in RecoveryStats, not treated as an error.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		mem:  make(map[keyspace.Key][]overlay.Entry),
		c:    newCounters(),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.recovery.LastSeq = s.seq
	s.c.recoveryRuns.Inc()
	s.c.recoveryReplays.Add(s.recovery.ReplayedRecords)
	s.c.recoveryTorn.Add(s.recovery.TornRecords)
	return s, nil
}

// loadSnapshot replays snapshot.db into the in-memory map, if present.
// Snapshots are written atomically (temp + rename), so a malformed one
// is genuine corruption and fails the open rather than silently losing
// a full compaction's worth of state.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, snapFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: read snapshot: %w", err)
	}
	seq, err := parseHeader(data, snapMagic)
	if err != nil {
		return fmt.Errorf("durable: snapshot %s corrupt: bad header", path)
	}
	rest := data[headerSize:]
	for len(rest) > 0 {
		rec, n, err := parseFrame(rest)
		if err != nil {
			return fmt.Errorf("durable: snapshot %s corrupt: %w", path, err)
		}
		s.apply(rec)
		rest = rest[n:]
	}
	s.seq = seq
	s.recovery.SnapshotKeys = int64(len(s.mem))
	return nil
}

// openWAL replays wal.log on top of the snapshot and leaves the file
// open for appending. Records whose sequence the snapshot already
// covers are skipped (a crash landed between the snapshot rename and
// the WAL rotation); a torn tail is truncated.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: read wal: %w", err)
	}
	fresh := len(data) == 0
	base, herr := parseHeader(data, walMagic)
	if herr != nil && !fresh {
		// Unreadable header: a crash mid-rotation. The snapshot covers
		// everything up to s.seq, so resetting the WAL loses nothing
		// that was ever acked from a complete record.
		s.recovery.TornRecords++
		fresh = true
	}
	offset := headerSize
	if !fresh {
		i := 0
		rest := data[headerSize:]
		for len(rest) > 0 {
			rec, n, perr := parseFrame(rest)
			if perr != nil {
				s.recovery.TornRecords++
				break
			}
			i++
			if base+uint64(i) <= s.seq {
				s.recovery.SkippedRecords++
			} else {
				s.apply(rec)
				s.seq = base + uint64(i)
				s.recovery.ReplayedRecords++
			}
			rest = rest[n:]
			offset += n
		}
		s.walRecords = i
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal: %w", err)
	}
	if fresh {
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(encodeHeader(walMagic, s.seq), 0)
		}
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: init wal: %w", err)
		}
		offset = headerSize
		s.walRecords = 0
	} else if offset < len(data) {
		// Torn tail: cut back to the last complete record.
		if err := f.Truncate(int64(offset)); err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: truncate torn wal: %w", err)
		}
	}
	if _, err := f.Seek(int64(offset), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: seek wal: %w", err)
	}
	s.wal = f
	return nil
}

// apply folds one replayed record into the in-memory map.
func (s *Store) apply(rec record) {
	switch rec.op {
	case recPut:
	put:
		for _, e := range rec.entries {
			for _, have := range s.mem[rec.key] {
				if have == e {
					continue put
				}
			}
			s.mem[rec.key] = append(s.mem[rec.key], e)
		}
	case recReplace:
		if len(rec.entries) == 0 {
			delete(s.mem, rec.key)
			return
		}
		entries := make([]overlay.Entry, len(rec.entries))
		copy(entries, rec.entries)
		s.mem[rec.key] = entries
	}
}

// appendLocked frames rec into the WAL (write-ahead: the caller updates
// the map only after this succeeds). A non-nil return means the write
// must not be acked; it may still have partially reached the disk,
// where replay either truncates it (torn) or re-applies it (complete —
// harmless, records are idempotent).
func (s *Store) appendLocked(rec record) error {
	if s.closed {
		return os.ErrClosed
	}
	if f := s.opts.Faults.AppendErr; f != nil {
		if err := f(); err != nil {
			s.c.walAppendErrs.Inc()
			return err
		}
	}
	frame := encodeRecord(rec)
	if _, err := s.wal.Write(frame); err != nil {
		s.c.walAppendErrs.Inc()
		return err
	}
	s.seq++
	s.walRecords++
	s.c.walAppends.Inc()
	s.c.walBytes.Add(int64(len(frame)))
	if s.opts.FsyncEvery > 0 {
		s.sinceSync++
		if s.sinceSync >= s.opts.FsyncEvery {
			if err := s.syncWALLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// maybeCompactLocked snapshots when the WAL has grown past the
// configured bound. Compaction failure is deliberately swallowed: the
// WAL stays long but correct, and a later mutation retries.
func (s *Store) maybeCompactLocked() {
	if s.opts.SnapshotEvery > 0 && s.walRecords >= s.opts.SnapshotEvery {
		_ = s.snapshotLocked()
	}
}

// syncWALLocked fsyncs the WAL, honouring injected sync faults.
func (s *Store) syncWALLocked() error {
	s.sinceSync = 0
	if f := s.opts.Faults.SyncErr; f != nil {
		if err := f(); err != nil {
			s.c.walFsyncErrs.Inc()
			return err
		}
	}
	if err := s.wal.Sync(); err != nil {
		s.c.walFsyncErrs.Inc()
		return err
	}
	s.c.walFsyncs.Inc()
	return nil
}

// snapshotLocked writes the whole map to a temp file, renames it over
// snapshot.db and resets the WAL to an empty file based at the
// snapshot's sequence. Crash windows are covered by sequence skipping:
// after the rename but before the rotation, the old WAL's records are
// all ≤ the snapshot sequence and replay ignores them.
func (s *Store) snapshotLocked() error {
	fail := func(err error) error {
		s.c.snapWriteErrs.Inc()
		_ = os.Remove(filepath.Join(s.dir, tmpFile))
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, tmpFile)
	f, err := os.Create(tmp)
	if err != nil {
		return fail(err)
	}
	buf := encodeHeader(snapMagic, s.seq)
	for k, entries := range s.mem {
		buf = append(buf, encodeRecord(record{op: recReplace, key: k, entries: entries})...)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if sf := s.opts.Faults.SyncErr; sf != nil {
		if err := sf(); err != nil {
			_ = f.Close()
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapFile)); err != nil {
		return fail(err)
	}
	s.syncDir()
	// Rotate the WAL under the snapshot.
	if err := s.wal.Truncate(0); err != nil {
		return fail(err)
	}
	if _, err := s.wal.WriteAt(encodeHeader(walMagic, s.seq), 0); err != nil {
		return fail(err)
	}
	if _, err := s.wal.Seek(headerSize, 0); err != nil {
		return fail(err)
	}
	s.walRecords = 0
	s.c.snapWrites.Inc()
	return nil
}

// syncDir best-effort-fsyncs the data directory so the snapshot rename
// itself is durable.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Get implements wire.Store.
func (s *Store) Get(key keyspace.Key) []overlay.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.mem[key]
	if len(entries) == 0 {
		return nil
	}
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	return out
}

// Put implements wire.Store: WAL append first, map second.
func (s *Store) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.mem[key] {
		if have == e {
			return false, nil
		}
	}
	if err := s.appendLocked(record{op: recPut, key: key, entries: []overlay.Entry{e}}); err != nil {
		return false, err
	}
	s.mem[key] = append(s.mem[key], e)
	s.maybeCompactLocked()
	return true, nil
}

// Remove implements wire.Store. The WAL records the post-removal entry
// set (replace semantics), keeping replay idempotent without
// tombstones.
func (s *Store) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.mem[key]
	at := -1
	for i, have := range entries {
		if have == e {
			at = i
			break
		}
	}
	if at < 0 {
		return false, nil
	}
	post := make([]overlay.Entry, 0, len(entries)-1)
	post = append(post, entries[:at]...)
	post = append(post, entries[at+1:]...)
	if err := s.appendLocked(record{op: recReplace, key: key, entries: post}); err != nil {
		return false, err
	}
	if len(post) == 0 {
		delete(s.mem, key)
	} else {
		s.mem[key] = post
	}
	s.maybeCompactLocked()
	return true, nil
}

// Replace implements wire.Store.
func (s *Store) Replace(key keyspace.Key, entries []overlay.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	if err := s.appendLocked(record{op: recReplace, key: key, entries: out}); err != nil {
		return err
	}
	if len(out) == 0 {
		delete(s.mem, key)
	} else {
		s.mem[key] = out
	}
	s.maybeCompactLocked()
	return nil
}

// ForEach implements wire.Store.
func (s *Store) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, entries := range s.mem {
		if !fn(k, entries) {
			return
		}
	}
}

// Len implements wire.Store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Sync implements wire.Store: an explicit WAL fsync regardless of
// FsyncEvery.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.syncWALLocked()
}

// Snapshot forces a compaction now, regardless of SnapshotEvery.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.snapshotLocked()
}

// Close implements wire.Store: flush, then release the WAL handle. The
// directory can be re-opened afterwards to restart the node.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.syncWALLocked()
	cerr := s.wal.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// RecoveryStats implements wire.RecoverableStore.
func (s *Store) RecoveryStats() wire.RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Instrument implements wire.InstrumentedStore, attaching the
// wire_wal_* / wire_snapshot_* / wire_recovery_* series plus a
// wire_wal_records gauge of the WAL's current (uncompacted) length.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c := s.c
	reg.Attach(c.walAppends, c.walAppendErrs, c.walBytes, c.walFsyncs,
		c.walFsyncErrs, c.snapWrites, c.snapWriteErrs,
		c.recoveryRuns, c.recoveryReplays, c.recoveryTorn)
	reg.GaugeFunc("wire_wal_records",
		"Records currently in the WAL (resets at each compaction).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.walRecords)
		})
}
