// Package durable is the disk-backed wire.Store: an append-only,
// checksummed write-ahead log compacted by periodic snapshots. It turns
// a wire node's crash-stop into crash-recovery — reopen the same
// directory, restart the node on the same address (the ring ID is
// derived from it) and rejoin; the anti-entropy repair loop reconciles
// whatever the node missed while it was down.
//
// Durability contract: every mutation is framed into the WAL before it
// touches the in-memory map, and a failed append refuses the write (the
// node then refuses the ack). By default the WAL is NOT fsynced per
// write — an acked write survives a process crash but the last few may
// be lost to a kernel crash or power cut; set Options.FsyncEvery to 1
// for full fsync-per-append at the obvious throughput cost. Because an
// append whose error was reported may still have reached the disk,
// replay is at-least-once: records are idempotent (dedup on put,
// replace semantics otherwise), so double-apply is harmless.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/wire"
)

const (
	walFile  = "wal.log"
	snapFile = "snapshot.db"
	tmpFile  = "snapshot.tmp"

	defaultSnapshotEvery = 1024
)

// Faults injects storage-level failures, mirroring what wire's
// FaultTransport does for the network. Both hooks may be called with
// the store's lock held and must not call back into the store.
type Faults struct {
	// AppendErr, when non-nil, is consulted before every WAL append; a
	// non-nil result fails the append before anything is written.
	AppendErr func() error
	// SyncErr, when non-nil, is consulted before every fsync (WAL and
	// snapshot alike); a non-nil result fails the flush.
	SyncErr func() error
}

// Options tunes a durable store. The zero value is a sensible default.
type Options struct {
	// SnapshotEvery compacts the WAL into a fresh snapshot once it holds
	// this many records (default 1024; negative disables automatic
	// compaction — Snapshot can still be called explicitly).
	SnapshotEvery int
	// FsyncEvery fsyncs the WAL every N appends. 0 (the default) never
	// fsyncs on the write path: appends reach the kernel immediately and
	// the OS flushes them, so acked writes survive a process crash but
	// not necessarily a power cut. 1 gives fsync-per-append.
	FsyncEvery int
	// Faults injects storage failures for tests and soak harnesses.
	Faults Faults
}

// Store implements wire.Store on top of a data directory holding a WAL
// (wal.log) and its compacting snapshot (snapshot.db). The wire node
// serializes access through its store wrapper (one reader-writer lock,
// or per-stripe locks when opened via OpenSharded); Store nonetheless
// carries its own lock so telemetry snapshots and offline inspection
// stay safe.
type Store struct {
	mu         sync.Mutex
	dir        string
	opts       Options
	mem        map[keyspace.Key][]overlay.Entry
	tombs      map[keyspace.Key]map[overlay.Entry]int64
	wal        *os.File
	seq        uint64
	walRecords int
	sinceSync  int
	closed     bool
	recovery   wire.RecoveryStats
	c          counters
}

var (
	_ wire.RecoverableStore  = (*Store)(nil)
	_ wire.InstrumentedStore = (*Store)(nil)
)

// counters holds the store's telemetry instruments (attached to a
// registry by Instrument; counted regardless).
type counters struct {
	walAppends      *telemetry.Counter
	walAppendErrs   *telemetry.Counter
	walBytes        *telemetry.Counter
	walFsyncs       *telemetry.Counter
	walFsyncErrs    *telemetry.Counter
	snapWrites      *telemetry.Counter
	snapWriteErrs   *telemetry.Counter
	recoveryRuns    *telemetry.Counter
	recoveryReplays *telemetry.Counter
	recoveryTorn    *telemetry.Counter
}

func newCounters() counters {
	return counters{
		walAppends: telemetry.NewCounter("wire_wal_appends_total",
			"WAL records appended."),
		walAppendErrs: telemetry.NewCounter("wire_wal_append_errors_total",
			"WAL appends that failed (the write was refused, no ack)."),
		walBytes: telemetry.NewCounter("wire_wal_bytes_total",
			"Bytes appended to the WAL, framing included."),
		walFsyncs: telemetry.NewCounter("wire_wal_fsyncs_total",
			"Explicit WAL fsyncs issued."),
		walFsyncErrs: telemetry.NewCounter("wire_wal_fsync_errors_total",
			"WAL fsyncs that failed."),
		snapWrites: telemetry.NewCounter("wire_snapshot_writes_total",
			"Compacting snapshots written and renamed into place."),
		snapWriteErrs: telemetry.NewCounter("wire_snapshot_write_errors_total",
			"Snapshot attempts abandoned by a write, sync or rename error."),
		recoveryRuns: telemetry.NewCounter("wire_recovery_runs_total",
			"Store opens that replayed persistent state."),
		recoveryReplays: telemetry.NewCounter("wire_recovery_replayed_records_total",
			"WAL records applied during recovery replays."),
		recoveryTorn: telemetry.NewCounter("wire_recovery_torn_records_total",
			"Torn or corrupt WAL tails truncated during recovery."),
	}
}

// Open loads (or creates) the durable store rooted at dir, replaying
// snapshot plus WAL. A torn WAL tail — the expected shape of a crash
// mid-append — is truncated back to the last complete record and
// reported in RecoveryStats, not treated as an error.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		mem:   make(map[keyspace.Key][]overlay.Entry),
		tombs: make(map[keyspace.Key]map[overlay.Entry]int64),
		c:     newCounters(),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.recovery.LastSeq = s.seq
	s.c.recoveryRuns.Inc()
	s.c.recoveryReplays.Add(s.recovery.ReplayedRecords)
	s.c.recoveryTorn.Add(s.recovery.TornRecords)
	return s, nil
}

// loadSnapshot replays snapshot.db into the in-memory map, if present.
// Snapshots are written atomically (temp + rename), so a malformed one
// is genuine corruption and fails the open rather than silently losing
// a full compaction's worth of state.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, snapFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: read snapshot: %w", err)
	}
	seq, err := parseHeader(data, snapMagic)
	if err != nil {
		return fmt.Errorf("durable: snapshot %s corrupt: bad header", path)
	}
	rest := data[headerSize:]
	for len(rest) > 0 {
		rec, n, err := parseFrame(rest)
		if err != nil {
			return fmt.Errorf("durable: snapshot %s corrupt: %w", path, err)
		}
		s.apply(rec)
		rest = rest[n:]
	}
	s.seq = seq
	s.recovery.SnapshotKeys = int64(len(s.mem))
	return nil
}

// openWAL replays wal.log on top of the snapshot and leaves the file
// open for appending. Records whose sequence the snapshot already
// covers are skipped (a crash landed between the snapshot rename and
// the WAL rotation); a torn tail is truncated.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: read wal: %w", err)
	}
	fresh := len(data) == 0
	base, herr := parseHeader(data, walMagic)
	if herr != nil && !fresh {
		// Unreadable header: a crash mid-rotation. The snapshot covers
		// everything up to s.seq, so resetting the WAL loses nothing
		// that was ever acked from a complete record.
		s.recovery.TornRecords++
		fresh = true
	}
	offset := headerSize
	if !fresh {
		i := 0
		rest := data[headerSize:]
		for len(rest) > 0 {
			rec, n, perr := parseFrame(rest)
			if perr != nil {
				s.recovery.TornRecords++
				break
			}
			i++
			if base+uint64(i) <= s.seq {
				s.recovery.SkippedRecords++
			} else {
				s.apply(rec)
				s.seq = base + uint64(i)
				s.recovery.ReplayedRecords++
			}
			rest = rest[n:]
			offset += n
		}
		s.walRecords = i
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal: %w", err)
	}
	if fresh {
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(encodeHeader(walMagic, s.seq), 0)
		}
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: init wal: %w", err)
		}
		offset = headerSize
		s.walRecords = 0
	} else if offset < len(data) {
		// Torn tail: cut back to the last complete record.
		if err := f.Truncate(int64(offset)); err != nil {
			_ = f.Close()
			return fmt.Errorf("durable: truncate torn wal: %w", err)
		}
	}
	if _, err := f.Seek(int64(offset), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: seek wal: %w", err)
	}
	s.wal = f
	return nil
}

// apply folds one replayed record into the in-memory maps. Replay is
// order-faithful, so a put logged before an entomb of the same entry
// re-converges to the entombed state.
func (s *Store) apply(rec record) {
	switch rec.op {
	case recPut:
	put:
		for _, e := range rec.entries {
			for _, have := range s.mem[rec.key] {
				if have == e {
					continue put
				}
			}
			s.mem[rec.key] = append(s.mem[rec.key], e)
		}
	case recReplace:
		if len(rec.entries) == 0 {
			delete(s.mem, rec.key)
		} else {
			entries := make([]overlay.Entry, len(rec.entries))
			copy(entries, rec.entries)
			s.mem[rec.key] = entries
		}
		delete(s.tombs, rec.key)
	case recReplaceFull:
		if len(rec.entries) == 0 {
			delete(s.mem, rec.key)
		} else {
			entries := make([]overlay.Entry, len(rec.entries))
			copy(entries, rec.entries)
			s.mem[rec.key] = entries
		}
		delete(s.tombs, rec.key)
		for _, t := range rec.tombs {
			s.entombMem(rec.key, t)
		}
	case recTomb:
		for _, t := range rec.tombs {
			s.removeLive(rec.key, t.Entry)
			s.entombMem(rec.key, t)
		}
	case recTombGC:
		s.gcMem(rec.gcBefore)
	}
}

// removeLive deletes the live entry e under key, reporting whether it
// was present. Callers hold s.mu (or own the store exclusively during
// replay).
func (s *Store) removeLive(key keyspace.Key, e overlay.Entry) bool {
	entries := s.mem[key]
	for i, have := range entries {
		if have == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(s.mem, key)
			} else {
				s.mem[key] = entries
			}
			return true
		}
	}
	return false
}

// entombMem records t under key in the in-memory tombstone map keeping
// the latest At, reporting whether it was new or refreshed.
func (s *Store) entombMem(key keyspace.Key, t wire.Tombstone) bool {
	m := s.tombs[key]
	if m == nil {
		m = make(map[overlay.Entry]int64)
		s.tombs[key] = m
	}
	if at, ok := m[t.Entry]; ok && at >= t.At {
		return false
	}
	m[t.Entry] = t.At
	return true
}

// gcMem drops tombstones older than before from the in-memory map,
// returning how many were collected.
func (s *Store) gcMem(before int64) int {
	collected := 0
	for k, m := range s.tombs {
		for e, at := range m {
			if at < before {
				delete(m, e)
				collected++
			}
		}
		if len(m) == 0 {
			delete(s.tombs, k)
		}
	}
	return collected
}

// appendLocked frames rec into the WAL (write-ahead: the caller updates
// the map only after this succeeds). A non-nil return means the write
// must not be acked; it may still have partially reached the disk,
// where replay either truncates it (torn) or re-applies it (complete —
// harmless, records are idempotent).
func (s *Store) appendLocked(rec record) error {
	if s.closed {
		return os.ErrClosed
	}
	if f := s.opts.Faults.AppendErr; f != nil {
		if err := f(); err != nil {
			s.c.walAppendErrs.Inc()
			return err
		}
	}
	frame := encodeRecord(rec)
	if _, err := s.wal.Write(frame); err != nil {
		s.c.walAppendErrs.Inc()
		return err
	}
	s.seq++
	s.walRecords++
	s.c.walAppends.Inc()
	s.c.walBytes.Add(int64(len(frame)))
	if s.opts.FsyncEvery > 0 {
		s.sinceSync++
		if s.sinceSync >= s.opts.FsyncEvery {
			if err := s.syncWALLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// maybeCompactLocked snapshots when the WAL has grown past the
// configured bound. Compaction failure is deliberately swallowed: the
// WAL stays long but correct, and a later mutation retries.
func (s *Store) maybeCompactLocked() {
	if s.opts.SnapshotEvery > 0 && s.walRecords >= s.opts.SnapshotEvery {
		_ = s.snapshotLocked()
	}
}

// syncWALLocked fsyncs the WAL, honouring injected sync faults.
func (s *Store) syncWALLocked() error {
	s.sinceSync = 0
	if f := s.opts.Faults.SyncErr; f != nil {
		if err := f(); err != nil {
			s.c.walFsyncErrs.Inc()
			return err
		}
	}
	if err := s.wal.Sync(); err != nil {
		s.c.walFsyncErrs.Inc()
		return err
	}
	s.c.walFsyncs.Inc()
	return nil
}

// snapshotLocked writes the whole map to a temp file, renames it over
// snapshot.db and resets the WAL to an empty file based at the
// snapshot's sequence. Crash windows are covered by sequence skipping:
// after the rename but before the rotation, the old WAL's records are
// all ≤ the snapshot sequence and replay ignores them.
func (s *Store) snapshotLocked() error {
	fail := func(err error) error {
		s.c.snapWriteErrs.Inc()
		_ = os.Remove(filepath.Join(s.dir, tmpFile))
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, tmpFile)
	f, err := os.Create(tmp)
	if err != nil {
		return fail(err)
	}
	buf := encodeHeader(snapMagic, s.seq)
	for k, entries := range s.mem {
		buf = append(buf, encodeRecord(record{
			op: recReplaceFull, key: k, entries: entries, tombs: tombstoneSlice(s.tombs[k]),
		})...)
	}
	for k, m := range s.tombs {
		if len(s.mem[k]) > 0 || len(m) == 0 {
			continue // covered above, or empty
		}
		buf = append(buf, encodeRecord(record{op: recReplaceFull, key: k, tombs: tombstoneSlice(m)})...)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if sf := s.opts.Faults.SyncErr; sf != nil {
		if err := sf(); err != nil {
			_ = f.Close()
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapFile)); err != nil {
		return fail(err)
	}
	s.syncDir()
	// Rotate the WAL under the snapshot.
	if err := s.wal.Truncate(0); err != nil {
		return fail(err)
	}
	if _, err := s.wal.WriteAt(encodeHeader(walMagic, s.seq), 0); err != nil {
		return fail(err)
	}
	if _, err := s.wal.Seek(headerSize, 0); err != nil {
		return fail(err)
	}
	s.walRecords = 0
	s.c.snapWrites.Inc()
	return nil
}

// syncDir best-effort-fsyncs the data directory so the snapshot rename
// itself is durable.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Get implements wire.Store.
func (s *Store) Get(key keyspace.Key) []overlay.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.mem[key]
	if len(entries) == 0 {
		return nil
	}
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	return out
}

// Put implements wire.Store: WAL append first, map second. A put
// suppressed by a live tombstone is refused without touching the log
// (the suppression is already durable through the tombstone record).
func (s *Store) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dead := s.tombs[key][e]; dead {
		return false, nil
	}
	for _, have := range s.mem[key] {
		if have == e {
			return false, nil
		}
	}
	if err := s.appendLocked(record{op: recPut, key: key, entries: []overlay.Entry{e}}); err != nil {
		return false, err
	}
	s.mem[key] = append(s.mem[key], e)
	s.maybeCompactLocked()
	return true, nil
}

// Remove implements wire.Store: the WAL records a tombstone whose
// replay both deletes the live entry and re-records the suppression,
// so a restarted node cannot resurrect the entry from a stale copy.
func (s *Store) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := wire.Tombstone{Entry: e, At: time.Now().UnixNano()}
	if err := s.appendLocked(record{op: recTomb, key: key, tombs: []wire.Tombstone{t}}); err != nil {
		return false, err
	}
	removed := s.removeLive(key, e)
	s.entombMem(key, t)
	s.maybeCompactLocked()
	return removed, nil
}

// Replace implements wire.Store.
func (s *Store) Replace(key keyspace.Key, entries []overlay.Entry, tombs []wire.Tombstone) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]overlay.Entry, len(entries))
	copy(out, entries)
	tout := make([]wire.Tombstone, len(tombs))
	copy(tout, tombs)
	if err := s.appendLocked(record{op: recReplaceFull, key: key, entries: out, tombs: tout}); err != nil {
		return err
	}
	if len(out) == 0 {
		delete(s.mem, key)
	} else {
		s.mem[key] = out
	}
	delete(s.tombs, key)
	for _, t := range tout {
		s.entombMem(key, t)
	}
	s.maybeCompactLocked()
	return nil
}

// Tombstoned implements wire.Store.
func (s *Store) Tombstoned(key keyspace.Key, e overlay.Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, dead := s.tombs[key][e]
	return dead
}

// Tombstones implements wire.Store.
func (s *Store) Tombstones(key keyspace.Key) []wire.Tombstone {
	s.mu.Lock()
	defer s.mu.Unlock()
	return tombstoneSlice(s.tombs[key])
}

// Entomb implements wire.Store: one WAL record covers the batch, then
// each tombstone deletes its live entry and is merged keeping the
// latest At.
func (s *Store) Entomb(key keyspace.Key, tombs []wire.Tombstone) (int, error) {
	if len(tombs) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tout := make([]wire.Tombstone, len(tombs))
	copy(tout, tombs)
	if err := s.appendLocked(record{op: recTomb, key: key, tombs: tout}); err != nil {
		return 0, err
	}
	fresh := 0
	for _, t := range tout {
		s.removeLive(key, t.Entry)
		if s.entombMem(key, t) {
			fresh++
		}
	}
	s.maybeCompactLocked()
	return fresh, nil
}

// ForEachTombstone implements wire.Store.
func (s *Store) ForEachTombstone(fn func(key keyspace.Key, tombs []wire.Tombstone) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, m := range s.tombs {
		if len(m) == 0 {
			continue
		}
		if !fn(k, tombstoneSlice(m)) {
			return
		}
	}
}

// GCTombstones implements wire.Store: the cutoff is logged before the
// in-memory collection so the GC survives restart (otherwise replay
// would resurrect every collected tombstone from its recTomb record).
func (s *Store) GCTombstones(before int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	any := false
	for _, m := range s.tombs {
		for _, at := range m {
			if at < before {
				any = true
				break
			}
		}
		if any {
			break
		}
	}
	if !any {
		return 0, nil
	}
	if err := s.appendLocked(record{op: recTombGC, gcBefore: before}); err != nil {
		return 0, err
	}
	collected := s.gcMem(before)
	s.maybeCompactLocked()
	return collected, nil
}

// tombstoneSlice copies a tombstone map into a sorted slice.
func tombstoneSlice(m map[overlay.Entry]int64) []wire.Tombstone {
	if len(m) == 0 {
		return nil
	}
	out := make([]wire.Tombstone, 0, len(m))
	for e, at := range m {
		out = append(out, wire.Tombstone{Entry: e, At: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entry.Kind != out[j].Entry.Kind {
			return out[i].Entry.Kind < out[j].Entry.Kind
		}
		return out[i].Entry.Value < out[j].Entry.Value
	})
	return out
}

// ForEach implements wire.Store.
func (s *Store) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, entries := range s.mem {
		if !fn(k, entries) {
			return
		}
	}
}

// Len implements wire.Store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Sync implements wire.Store: an explicit WAL fsync regardless of
// FsyncEvery.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.syncWALLocked()
}

// Snapshot forces a compaction now, regardless of SnapshotEvery.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return os.ErrClosed
	}
	return s.snapshotLocked()
}

// Close implements wire.Store: flush, then release the WAL handle. The
// directory can be re-opened afterwards to restart the node.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.syncWALLocked()
	cerr := s.wal.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// RecoveryStats implements wire.RecoverableStore.
func (s *Store) RecoveryStats() wire.RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Instrument implements wire.InstrumentedStore, attaching the
// wire_wal_* / wire_snapshot_* / wire_recovery_* series plus a
// wire_wal_records gauge of the WAL's current (uncompacted) length.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c := s.c
	reg.Attach(c.walAppends, c.walAppendErrs, c.walBytes, c.walFsyncs,
		c.walFsyncErrs, c.snapWrites, c.snapWriteErrs,
		c.recoveryRuns, c.recoveryReplays, c.recoveryTorn)
	reg.GaugeFunc("wire_wal_records",
		"Records currently in the WAL (resets at each compaction).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.walRecords)
		})
}
