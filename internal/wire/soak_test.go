package wire

import (
	"testing"
	"time"
)

// TestChurnSoak is the acceptance soak: a 16-node ring under 10% message
// drop, 50ms injected latency, one partition/heal cycle and one crash
// per 100 operations, with write-once entries continuously written and
// read back. The ring must re-converge, no acked entry may be lost with
// replication ≥ 1, retry amplification must stay bounded, and every
// fault counter must be nonzero — proving the schedule actually fired.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	report, err := RunSoak(SoakConfig{
		Seed: 42,
		Log:  t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}

	if !report.Converged {
		t.Errorf("ring did not re-converge after the storm")
	}
	if len(report.LostKeys) > 0 {
		t.Errorf("lost %d write-once entries despite replication: %v",
			len(report.LostKeys), report.LostKeys)
	}
	if report.Crashes < 1 {
		t.Errorf("schedule executed no crashes")
	}
	if report.Partitions < 1 {
		t.Errorf("schedule executed no partition cycle")
	}
	if report.Acked == 0 {
		t.Fatalf("no put ever acked")
	}
	// Puts may fail under the storm, but not wholesale.
	total := report.Acked + report.PutFailures
	if report.Acked*10 < total*9 {
		t.Errorf("only %d/%d puts acked under the storm", report.Acked, total)
	}

	// Every injected-fault counter must be nonzero.
	f := report.Faults
	checks := []struct {
		name string
		v    int64
	}{
		{"Calls", f.Calls},
		{"DroppedRequests", f.DroppedRequests},
		{"DroppedResponses", f.DroppedResponses},
		{"Delayed", f.Delayed},
		{"PartitionBlocked", f.PartitionBlocked},
		{"CrashBlocked", f.CrashBlocked},
	}
	for _, c := range checks {
		if c.v == 0 {
			t.Errorf("fault counter %s = 0: that fault class never fired", c.name)
		}
	}
	if f.DelayTotal < 50*time.Millisecond {
		t.Errorf("DelayTotal = %v, latency injection ineffective", f.DelayTotal)
	}

	// Retried RPCs are observable, and amplification is bounded: with
	// 10% drop and 3 attempts the expected amplification is ~1.1; 2.0
	// leaves headroom without hiding a retry storm.
	r := report.Retry
	if r.Calls == 0 || r.Attempts <= r.Calls {
		t.Errorf("retry stats implausible: %+v (faults were injected, retries must show)", r)
	}
	if r.Retries == 0 {
		t.Errorf("no retries recorded under a 10%% drop schedule")
	}
	if amp := report.RetryAmplification(); amp > 2.0 {
		t.Errorf("retry amplification %.2f exceeds bound 2.0", amp)
	}
}

// TestRepairSoak is the self-healing acceptance soak: on top of the
// fault storm, fresh nodes join and members leave gracefully mid-run,
// the per-peer circuit breaker is armed, and after the storm the ring is
// held to the repair loop's full invariant — every acked key at exactly
// ReplicationFactor+1 live copies, not merely readable. This is the
// "entry coverage returns to 100% after churn" check.
func TestRepairSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	report, err := RunSoak(SoakConfig{
		Nodes:          12,
		Ops:            120,
		Seed:           1,
		CrashEvery:     50,
		JoinEvery:      35,
		LeaveEvery:     55,
		Breaker:        &BreakerPolicy{},
		VerifyReplicas: true,
		Log:            t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	if !report.Converged {
		t.Errorf("ring did not re-converge after the storm")
	}
	if len(report.LostKeys) > 0 {
		t.Errorf("lost %d write-once entries: %v", len(report.LostKeys), report.LostKeys)
	}
	if len(report.ReplicaViolations) > 0 {
		t.Errorf("replica sets did not heal to full coverage: %v", report.ReplicaViolations)
	}
	if report.Crashes < 1 || report.Joins < 1 || report.Leaves < 1 {
		t.Errorf("churn schedule incomplete: crashes=%d joins=%d leaves=%d",
			report.Crashes, report.Joins, report.Leaves)
	}
	// The repair loop must have done real work: digest syncs every round,
	// and pushes re-covering what the churn disturbed.
	if report.Repair.Rounds == 0 || report.Repair.Syncs == 0 || report.Repair.Pushes == 0 {
		t.Errorf("repair loop idle under churn: %+v", report.Repair)
	}
}

// TestSoakDeterministicFaultSchedule runs two small soaks with the same
// seed and asserts the injected-fault totals that are scheduling-
// independent (crash and partition events) match, and that both runs
// keep the data-safety invariant.
func TestSoakDeterministicFaultSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	run := func() SoakReport {
		report, err := RunSoak(SoakConfig{
			Nodes:    8,
			Ops:      40,
			Seed:     7,
			Latency:  10 * time.Millisecond,
			DropProb: 0.05,
		})
		if err != nil {
			t.Fatalf("soak harness: %v", err)
		}
		return report
	}
	a, b := run(), run()
	if a.Crashes != b.Crashes || a.Partitions != b.Partitions {
		t.Errorf("seeded schedules diverged: %d/%d crashes, %d/%d partitions",
			a.Crashes, b.Crashes, a.Partitions, b.Partitions)
	}
	for _, r := range []SoakReport{a, b} {
		if len(r.LostKeys) > 0 {
			t.Errorf("lost keys in seeded soak: %v", r.LostKeys)
		}
		if !r.Converged {
			t.Errorf("seeded soak did not converge")
		}
	}
}
