package wire

import (
	"fmt"
	"sync"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// shardedKeys returns n distinct keys guaranteed to spread over several
// stripes (key[0] drives stripe selection and NewKey hashes, so a
// modest n covers most of the 16 stripes).
func shardedKeys(n int) []keyspace.Key {
	keys := make([]keyspace.Key, n)
	for i := range keys {
		keys[i] = keyspace.NewKey(fmt.Sprintf("shard-key-%d", i))
	}
	return keys
}

func TestShardedStoreBasicOps(t *testing.T) {
	st := NewShardedMemStore(0)
	if st.Stripes() != DefaultStoreStripes {
		t.Fatalf("default stripes = %d, want %d", st.Stripes(), DefaultStoreStripes)
	}
	keys := shardedKeys(64)
	for i, k := range keys {
		if ok, err := st.Put(k, overlay.Entry{Kind: "k", Value: fmt.Sprint(i)}); err != nil || !ok {
			t.Fatalf("put %d: ok=%v err=%v", i, ok, err)
		}
	}
	if st.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(keys))
	}
	for i, k := range keys {
		got := st.Get(k)
		if len(got) != 1 || got[0].Value != fmt.Sprint(i) {
			t.Fatalf("get %d: %+v", i, got)
		}
	}
	seen := 0
	st.ForEach(func(_ keyspace.Key, entries []overlay.Entry) bool {
		seen += len(entries)
		return true
	})
	if seen != len(keys) {
		t.Fatalf("ForEach visited %d entries, want %d", seen, len(keys))
	}
	// Early exit must stop the iteration across stripe boundaries too.
	visited := 0
	st.ForEach(func(keyspace.Key, []overlay.Entry) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early-exit ForEach visited %d keys, want 3", visited)
	}
	// Remove leaves a tombstone that suppresses the re-put.
	if ok, err := st.Remove(keys[0], overlay.Entry{Kind: "k", Value: "0"}); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	if ok, _ := st.Put(keys[0], overlay.Entry{Kind: "k", Value: "0"}); ok {
		t.Fatal("tombstoned entry re-added")
	}
	if !st.Tombstoned(keys[0], overlay.Entry{Kind: "k", Value: "0"}) {
		t.Fatal("Tombstoned = false after remove")
	}
	tombKeys := 0
	st.ForEachTombstone(func(keyspace.Key, []Tombstone) bool {
		tombKeys++
		return true
	})
	if tombKeys != 1 {
		t.Fatalf("ForEachTombstone visited %d keys, want 1", tombKeys)
	}
	if collected, err := st.GCTombstones(int64(1) << 62); err != nil || collected != 1 {
		t.Fatalf("GCTombstones = %d, %v; want 1, nil", collected, err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShardedStoreUpdateAtomicity drives the per-key critical section
// from many goroutines: Update's read-modify-write of one key must
// never lose an increment, which a bare MemStore behind no lock would.
func TestShardedStoreUpdateAtomicity(t *testing.T) {
	st := NewShardedMemStore(4)
	keys := shardedKeys(8)
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := keys[(g+r)%len(keys)]
				_ = st.Update(k, func(s Store) error {
					n := len(s.Get(k))
					_, err := s.Put(k, overlay.Entry{Kind: "c", Value: fmt.Sprintf("%s-%d", k, n)})
					return err
				})
				_ = st.View(k, func(s Store) error {
					s.Get(k)
					return nil
				})
			}
		}(g)
	}
	wg.Wait()
	total := 0
	st.ForEach(func(_ keyspace.Key, entries []overlay.Entry) bool {
		total += len(entries)
		return true
	})
	if total != 8*rounds {
		t.Fatalf("lost updates: %d entries, want %d", total, 8*rounds)
	}
}

// TestLockedStoreWrapsSuppliedStore pins the asConcurrentStore
// adaptation rules: nil → sharded default, ConcurrentStore → as-is,
// anything else → lockedStore.
func TestLockedStoreWrapsSuppliedStore(t *testing.T) {
	if _, ok := asConcurrentStore(nil).(*ShardedStore); !ok {
		t.Fatal("nil store did not become a ShardedStore")
	}
	sh := NewShardedMemStore(2)
	if asConcurrentStore(sh) != ConcurrentStore(sh) {
		t.Fatal("ConcurrentStore was re-wrapped")
	}
	mem := NewMemStore()
	ls, ok := asConcurrentStore(mem).(*lockedStore)
	if !ok {
		t.Fatal("plain store was not wrapped in lockedStore")
	}
	k := keyspace.NewKey("wrapped")
	if ok, err := ls.Put(k, overlay.Entry{Kind: "a", Value: "b"}); err != nil || !ok {
		t.Fatalf("put through wrapper: ok=%v err=%v", ok, err)
	}
	if got := mem.Get(k); len(got) != 1 {
		t.Fatalf("wrapped store missed the write: %+v", got)
	}
	if err := ls.Update(k, func(s Store) error {
		if len(s.Get(k)) != 1 {
			t.Fatal("Update section sees stale state")
		}
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
}
