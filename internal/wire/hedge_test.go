package wire

import (
	"context"
	"sync"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// slowTransport delays the CALLER's messages to chosen addresses while
// leaving the ring's own traffic (which uses the inner transport
// directly) untouched — a slow-owner scenario as seen by one client.
type slowTransport struct {
	Transport
	mu   sync.Mutex
	slow map[string]time.Duration
}

func (s *slowTransport) setSlow(addr string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slow == nil {
		s.slow = map[string]time.Duration{}
	}
	s.slow[addr] = d
}

func (s *slowTransport) Call(addr string, req Message) (Message, error) {
	s.mu.Lock()
	d := s.slow[addr]
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return s.Transport.Call(addr, req)
}

// TestHedgedGetWinsAgainstSlowOwner: with a hedge delay configured, a Get
// whose owner read stalls is raced against the key's first replica, and
// the replica's answer is served — tail latency capped by the hedge, not
// the slow peer.
func TestHedgedGetWinsAgainstSlowOwner(t *testing.T) {
	mem := NewMemTransport()
	slow := &slowTransport{Transport: mem}
	cluster := NewCluster(slow, 1, 1)
	cluster.HedgeDelay = 10 * time.Millisecond

	var nodes []*Node
	var bootstrap string
	for i := 0; i < 6; i++ {
		n, err := Start(Config{Transport: mem, Addr: "mem:0", ReplicationFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatal(err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	key := keyspace.NewKey("hedged-key")
	if _, err := cluster.Put(key, overlay.Entry{Kind: "d", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	// Wait until the replica actually holds a copy (put-time replication
	// plus the repair loop).
	deadline := time.Now().Add(10 * time.Second)
	for countCopies(mem, cluster.Addrs(), key) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("replica copy never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	route, err := cluster.FindOwner(key)
	if err != nil {
		t.Fatal(err)
	}
	owner := route.Node
	slow.setSlow(owner, 500*time.Millisecond)

	start := time.Now()
	entries, got, err := cluster.GetCtx(context.Background(), key)
	elapsed := time.Since(start)
	if err != nil || len(entries) != 1 || entries[0].Value != "v" {
		t.Fatalf("hedged get = %v, %v", entries, err)
	}
	if got.Node == owner {
		t.Fatalf("answer came from the slow owner %s — hedge never raced", owner)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("get took %v: tail latency not capped by the hedge", elapsed)
	}
	m := cluster.Metrics()
	if m.HedgedGets != 1 || m.HedgeWins != 1 {
		t.Fatalf("metrics = %+v, want exactly one hedged get and one hedge win", m)
	}
	_ = nodes
}
