package wire

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// occupy fills every inflight slot of a with handlers blocked on the
// returned release function, so subsequent acquires exercise the
// saturated paths. It returns once all slots are held.
func occupy(t *testing.T, a *admission, op Op) (release func(), done *sync.WaitGroup) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, a.cfg.MaxInflight)
	blocked := a.wrap(func(req Message) Message {
		started <- struct{}{}
		<-gate
		return Message{Op: req.Op, Ok: true}
	})
	var wg sync.WaitGroup
	for i := 0; i < a.cfg.MaxInflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blocked(Message{Op: op})
		}()
	}
	for i := 0; i < a.cfg.MaxInflight; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("slot holder never started")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }, &wg
}

func TestAdmissionQueueFullShed(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	release, holders := occupy(t, a, OpGet)
	defer release()

	// One request may queue; it parks waiting for the slot.
	queuedDone := make(chan Message, 1)
	go func() { queuedDone <- h(Message{Op: OpGet}) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next arrival is shed immediately.
	resp := h(Message{Op: OpGet})
	if resp.Code != CodeOverload {
		t.Fatalf("third request code = %v, want CodeOverload", resp.Code)
	}
	if !strings.Contains(resp.Err, ShedQueueFull) {
		t.Fatalf("shed reason = %q, want %q", resp.Err, ShedQueueFull)
	}
	if s := a.stats(); s.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v, want ShedQueueFull=1", s)
	}

	// Releasing the slot admits the queued request: shedding is load
	// dependent, not sticky.
	release()
	select {
	case resp := <-queuedDone:
		if !resp.Ok || resp.Code == CodeOverload {
			t.Fatalf("queued request after release = %+v, want Ok", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
	holders.Wait()
	if s := a.stats(); s.Admitted != 2 || s.Waited != 1 {
		t.Fatalf("stats = %+v, want Admitted=2 Waited=1", s)
	}
}

func TestAdmissionQueueTimeoutShed(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	release, holders := occupy(t, a, OpGet)
	defer release()

	start := time.Now()
	resp := h(Message{Op: OpGet})
	if resp.Code != CodeOverload || !strings.Contains(resp.Err, ShedQueueTimeout) {
		t.Fatalf("resp = %+v, want queue_timeout shed", resp)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("shed after %v, want >= QueueTimeout", waited)
	}
	if s := a.stats(); s.ShedQueueTimeout != 1 {
		t.Fatalf("stats = %+v, want ShedQueueTimeout=1", s)
	}
	release()
	holders.Wait()
}

func TestAdmissionPriorityShed(t *testing.T) {
	// Default classes: maintenance yields to clients. A saturated node
	// sheds maintenance immediately — no queue slot, no wait.
	a := newAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	release, holders := occupy(t, a, OpGet)
	defer release()

	start := time.Now()
	resp := h(Message{Op: OpNotify})
	if resp.Code != CodeOverload || !strings.Contains(resp.Err, ShedPriority) {
		t.Fatalf("maintenance on saturated node = %+v, want priority shed", resp)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("priority shed took %v, want immediate", waited)
	}
	if s := a.stats(); s.ShedPriority != 1 {
		t.Fatalf("stats = %+v, want ShedPriority=1", s)
	}
	release()
	holders.Wait()
}

func TestAdmissionMaintenanceFirstFlipsClasses(t *testing.T) {
	a := newAdmission(AdmissionConfig{
		MaxInflight: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second,
		MaintenanceFirst: true,
	})
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	release, holders := occupy(t, a, OpNotify)
	defer release()

	resp := h(Message{Op: OpGet})
	if resp.Code != CodeOverload || !strings.Contains(resp.Err, ShedPriority) {
		t.Fatalf("client op under MaintenanceFirst = %+v, want priority shed", resp)
	}
	release()
	holders.Wait()
}

func TestAdmissionDeadlineShedWhenSaturated(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	release, holders := occupy(t, a, OpGet)
	defer release()

	// The node has observed ~50ms service times; a request with 10ms of
	// budget left cannot be served in time, so queueing it only delays
	// the answer past the caller's abandonment.
	a.ewmaMicros[classClient].Store(50_000)
	resp := h(Message{Op: OpGet, BudgetMicros: 10_000})
	if resp.Code != CodeOverload || !strings.Contains(resp.Err, ShedDeadline) {
		t.Fatalf("hopeless-deadline request = %+v, want deadline shed", resp)
	}
	if s := a.stats(); s.ShedDeadline != 1 {
		t.Fatalf("stats = %+v, want ShedDeadline=1", s)
	}

	// A request with generous slack queues instead and is served once
	// the slot frees.
	servedDone := make(chan Message, 1)
	go func() { servedDone <- h(Message{Op: OpGet, BudgetMicros: 10_000_000}) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("generous-budget request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	select {
	case resp := <-servedDone:
		if !resp.Ok {
			t.Fatalf("generous-budget request = %+v, want served", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("generous-budget request never served")
	}
	holders.Wait()
}

// TestAdmissionUnsaturatedNeverSheds is the shed-spiral regression guard:
// an idle node must admit even a request whose deadline looks hopeless
// against the EWMA. The estimate is inflated by queue waits and nested
// routing during the last burst, so shedding on it from idle slots turns
// one congestion episode into a self-sustaining spiral.
func TestAdmissionUnsaturatedNeverSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 2, MaxQueue: 2})
	a.ewmaMicros[classClient].Store(10_000_000) // 10s: absurdly pessimistic
	h := a.wrap(func(req Message) Message { return Message{Op: req.Op, Ok: true} })
	resp := h(Message{Op: OpGet, BudgetMicros: 100})
	if !resp.Ok || resp.Code == CodeOverload {
		t.Fatalf("idle node shed a request: %+v", resp)
	}
	if s := a.stats(); s.Shed() != 0 || s.Admitted != 1 {
		t.Fatalf("stats = %+v, want one admit, zero sheds", s)
	}
}

func TestAdmissionStatsMerge(t *testing.T) {
	a := AdmissionStats{Admitted: 1, Waited: 1, ShedQueueFull: 2, ShedDeadline: 3, Inflight: 1}
	b := AdmissionStats{Admitted: 4, ShedQueueTimeout: 5, ShedPriority: 6, QueueDepth: 2}
	a.Merge(b)
	if a.Admitted != 5 || a.Shed() != 16 || a.Inflight != 1 || a.QueueDepth != 2 {
		t.Fatalf("merged = %+v", a)
	}
}
