package wire

import (
	"errors"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// handle dispatches one incoming protocol request. It runs on the
// transport's serving goroutine.
func (n *Node) handle(req Message) Message {
	switch req.Op {
	case OpPing:
		return Message{Op: OpPing, Ok: true, Addr: n.addr}
	case OpFindSuccessor:
		return n.handleFindSuccessor(req)
	case OpGetPredecessor:
		n.mu.Lock()
		defer n.mu.Unlock()
		return Message{Op: req.Op, Addr: n.pred}
	case OpGetSuccessor:
		n.mu.Lock()
		defer n.mu.Unlock()
		out := make([]string, len(n.succs))
		copy(out, n.succs)
		return Message{Op: req.Op, Addr: n.succs[0], Addrs: out}
	case OpNotify:
		return n.handleNotify(req)
	case OpPut:
		return n.handlePut(req)
	case OpGet:
		// Store reads take only the key's stripe read-lock — a get never
		// waits behind routing maintenance or writes to other stripes.
		return Message{Op: req.Op, Entries: n.store.Get(req.Key), Ok: true}
	case OpRemove:
		return n.handleRemove(req)
	case OpTransfer, OpPutReplica:
		if err := n.adoptKeys(req.KV); err != nil {
			return Message{Op: req.Op, Err: err.Error()}
		}
		return Message{Op: req.Op, Ok: true}
	case OpPutBatch:
		return n.handlePutBatch(req)
	case OpRemoveBatch:
		return n.handleRemoveBatch(req)
	case OpRemoveReplica:
		if len(req.KV) > 0 {
			// Batched replica removal (fan-out of an OpRemoveBatch); no
			// further propagation.
			return n.handleRemoveBatch(req)
		}
		return n.handleRemove(req)
	case OpRepairSync:
		return n.handleRepairSync(req)
	case OpMerge:
		return n.handleMerge(req)
	case OpStats:
		return n.handleStats(req)
	default:
		return Message{Op: req.Op, Err: "unknown operation"}
	}
}

// handleFindSuccessor implements recursive Chord routing: answer directly
// when the key falls between this node and its successor, otherwise
// forward to the closest preceding finger.
func (n *Node) handleFindSuccessor(req Message) Message {
	n.mu.Lock()
	succ := n.succs[0]
	n.mu.Unlock()

	if succ == n.addr || req.Key.Between(n.id, idOf(succ)) {
		return Message{Op: req.Op, Addr: succ, Hops: req.Hops}
	}
	if req.TTL <= 0 {
		return Message{Op: req.Op, Err: ErrTTLExceeded.Error()}
	}
	next := n.closestPreceding(req.Key)
	if next == n.addr {
		next = succ
	}
	resp, err := n.cfg.Transport.Call(next, Message{
		Op: OpFindSuccessor, Key: req.Key, TTL: req.TTL - 1, Hops: req.Hops + 1,
	})
	if err != nil {
		// The chosen hop is dead; fall back to the successor chain, which
		// stabilization keeps live.
		if next != succ {
			resp, err = n.cfg.Transport.Call(succ, Message{
				Op: OpFindSuccessor, Key: req.Key, TTL: req.TTL - 1, Hops: req.Hops + 1,
			})
		}
		if err != nil {
			return Message{Op: req.Op, Err: err.Error()}
		}
	}
	return resp
}

// closestPreceding picks the finger (or successor-list entry) that most
// closely precedes key.
func (n *Node) closestPreceding(key keyspace.Key) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := keyspace.Bits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f == "" || f == n.addr {
			continue
		}
		if idOf(f).BetweenOpen(n.id, key) {
			return f
		}
	}
	for i := len(n.succs) - 1; i >= 0; i-- {
		s := n.succs[i]
		if s != n.addr && idOf(s).BetweenOpen(n.id, key) {
			return s
		}
	}
	return n.addr
}

// handleNotify learns about a possible new predecessor and hands over the
// keys that now belong to it (everything outside (pred, self]). The
// handover runs immediately when the predecessor pointer changes — that
// is an ownership transfer and the new owner must serve its range now —
// but for an UNCHANGED predecessor only on the repair cadence (every
// RepairEvery-th notify): re-sending is anti-entropy, and doing it every
// round would re-ship this node's entire retained replica set each
// stabilize tick, with the predecessor re-putting every entry through
// its store (and, for a durable store, re-appending it to the WAL).
func (n *Node) handleNotify(req Message) Message {
	cand := req.Addr
	if cand == "" || cand == n.addr {
		return Message{Op: req.Op, Ok: false}
	}
	// The predecessor decision is routing state: it stays under n.mu.
	// The key handover below walks the store and must NOT hold n.mu —
	// store access is serialized per key stripe instead.
	n.mu.Lock()
	changed := false
	if n.pred == "" || idOf(cand).BetweenOpen(idOf(n.pred), n.id) {
		changed = n.pred != cand
		n.pred = cand
	}
	accepted := n.pred == cand
	var due bool
	if accepted {
		n.notifySeen++
		due = n.cfg.RepairEvery > 0 && n.notifySeen%n.cfg.RepairEvery == 0
	}
	n.mu.Unlock()
	if !accepted {
		return Message{Op: req.Op, Ok: false}
	}
	if !changed && !due {
		return Message{Op: req.Op, Ok: true}
	}
	// Hand over keys the new predecessor is responsible for. Keys that
	// belong even further back migrate hop by hop across handover rounds.
	// With replication enabled the local copies are RETAINED — this node
	// is within the new owner's replica set, and deleting them here would
	// strip the replicas faster than the repair loop restores them.
	var kv []KeyEntries
	predID := idOf(cand)
	for _, k := range n.localKeys() {
		if k.Between(predID, n.id) {
			continue
		}
		var item KeyEntries
		// One View per key: the entries and tombstones shipped for a key
		// are a consistent pair even while writers hit other stripes.
		_ = n.store.View(k, func(s Store) error {
			item = KeyEntries{Key: k, Entries: s.Get(k), Tombs: s.Tombstones(k)}
			return nil
		})
		if len(item.Entries) == 0 && len(item.Tombs) == 0 {
			continue // raced with a concurrent delete; nothing to hand over
		}
		kv = append(kv, item)
	}
	if n.cfg.ReplicationFactor == 0 {
		for _, item := range kv {
			// Best effort: the predecessor holds the entries now, so a
			// failed local delete only costs a duplicate copy.
			_ = n.store.Replace(item.Key, nil, nil)
		}
	}
	return Message{Op: req.Op, Ok: true, KV: kv}
}

// replicateEntry forwards one entry operation to the successor replicas.
func (n *Node) replicateEntry(key keyspace.Key, e overlay.Entry, op Op) {
	if n.cfg.ReplicationFactor == 0 {
		return
	}
	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()
	sent := 0
	for _, succ := range succs {
		if succ == n.addr {
			continue
		}
		if sent >= n.cfg.ReplicationFactor {
			break
		}
		msg := Message{Op: op, Key: key, Entry: e}
		if op == OpPutReplica {
			msg = Message{Op: op, KV: []KeyEntries{{Key: key, Entries: []overlay.Entry{e}}}}
		}
		_, _ = n.cfg.Transport.Call(succ, msg)
		sent++
	}
}

// splitForeign partitions a batch into the items this node owns (keys
// in (pred, self]) and the items that belong elsewhere — the result of
// a client whose membership view is stale, or of churn between the
// client's routing and the message's arrival. A node without a
// predecessor owns everything it is handed.
func (n *Node) splitForeign(kv []KeyEntries) (owned, foreign []KeyEntries) {
	n.mu.Lock()
	pred := n.pred
	n.mu.Unlock()
	if pred == "" || pred == n.addr {
		return kv, nil
	}
	predID := idOf(pred)
	for _, item := range kv {
		if item.Key.Between(predID, n.id) {
			owned = append(owned, item)
		} else {
			foreign = append(foreign, item)
		}
	}
	return owned, foreign
}

// routeForeign resolves each foreign item's true owner through this
// node's own Chord routing and groups the items per owner for
// forwarding. Items that route back to this node (the predecessor
// pointer, not the client, was stale) are returned in self so the
// caller applies them locally instead of bouncing them.
func (n *Node) routeForeign(foreign []KeyEntries) (groups map[string][]KeyEntries, order []string, self []KeyEntries, err error) {
	groups = make(map[string][]KeyEntries)
	for _, item := range foreign {
		r := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: item.Key, TTL: n.cfg.TTL})
		if r.Err != "" {
			return nil, nil, nil, errors.New(r.Err)
		}
		if r.Addr == "" || r.Addr == n.addr {
			self = append(self, item)
			continue
		}
		if _, ok := groups[r.Addr]; !ok {
			order = append(order, r.Addr)
		}
		groups[r.Addr] = append(groups[r.Addr], item)
	}
	return groups, order, self, nil
}

// handlePut stores one entry at its owner. Like the batch path, the
// handler defends against stale routing: a put for a key outside this
// node's (pred, self] range — the client resolved this node as owner
// while the ring was routing around an unresponsive peer, or churn
// landed between routing and arrival — is re-routed to the true owner
// instead of being stored where no lookup will find it once the ring
// heals. Client puts carry no TTL, so the forward arms the node's own
// routing TTL; disagreeing ownership views decrement it and cannot
// loop a put forever. A forward failure NACKs the put: no ack is ever
// issued for an entry resting on a node that disclaims the key.
func (n *Node) handlePut(req Message) Message {
	_, foreign := n.splitForeign([]KeyEntries{{Key: req.Key}})
	if len(foreign) > 0 {
		ttl := req.TTL
		if ttl == 0 {
			ttl = n.cfg.TTL
		}
		if ttl <= 0 {
			return Message{Op: req.Op, Err: ErrTTLExceeded.Error()}
		}
		_, order, _, rerr := n.routeForeign(foreign)
		if rerr != nil {
			return Message{Op: req.Op, Err: rerr.Error()}
		}
		if len(order) > 0 {
			target := order[0]
			resp, err := n.cfg.Transport.Call(target, Message{
				Op: OpPut, Key: req.Key, Entry: req.Entry, TTL: ttl - 1,
			})
			if err == nil && resp.Err != "" {
				err = errors.New(resp.Err)
			}
			if err != nil {
				return Message{Op: req.Op, Err: err.Error()}
			}
			// The true owner stored and replicated the entry.
			return Message{Op: req.Op, Ok: true}
		}
		// Routing resolved the key back to this node: the predecessor
		// pointer, not the client, was stale. Store locally.
	}
	_, err := n.store.Put(req.Key, req.Entry)
	if err != nil {
		// The write never became durable; refuse the ack so the client
		// retries against a healthy replica instead of trusting a copy
		// that would not survive a restart.
		return Message{Op: req.Op, Err: err.Error()}
	}
	n.replicateEntry(req.Key, req.Entry, OpPutReplica)
	return Message{Op: req.Op, Ok: true}
}

// handlePutBatch stores a batch of entries in one round. Clients route
// batches one-hop from their membership view, so the handler first
// splits off any keys this node does not own and forwards them to their
// Chord-routed owners with a decremented TTL (disagreeing views cannot
// loop a batch forever). The locally-owned remainder is applied per key
// as one atomic critical section each (store.Update) — atomic with
// respect to every other mutator of that key — and each put goes
// through the Store seam, so a durable store WALs every entry before
// the ack. The first store or
// forward failure NACKs the batch: puts are idempotent, so the client
// retries the whole batch and the already-applied prefix deduplicates.
// Successful batches replicate to the successor set as one OpPutReplica
// carrying the locally-adopted KV payload; forwarded items replicate at
// their true owner.
func (n *Node) handlePutBatch(req Message) Message {
	owned, foreign := n.splitForeign(req.KV)
	var fwdGroups map[string][]KeyEntries
	var fwdOrder []string
	if len(foreign) > 0 {
		if req.TTL <= 0 {
			return Message{Op: req.Op, Err: ErrTTLExceeded.Error()}
		}
		groups, order, self, rerr := n.routeForeign(foreign)
		if rerr != nil {
			return Message{Op: req.Op, Err: rerr.Error()}
		}
		owned = append(owned, self...)
		fwdGroups, fwdOrder = groups, order
	}
	if err := n.adoptKeys(owned); err != nil {
		return Message{Op: req.Op, Err: err.Error()}
	}
	n.replicateKV(owned, OpPutReplica)
	for _, target := range fwdOrder {
		resp, err := n.cfg.Transport.Call(target, Message{Op: OpPutBatch, KV: fwdGroups[target], TTL: req.TTL - 1})
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err != nil {
			return Message{Op: req.Op, Err: err.Error()}
		}
	}
	return Message{Op: req.Op, Ok: true}
}

// handleRemoveBatch deletes a batch of (key, entry) pairs, each key's
// removals under that key's own critical section. The response's Keys
// field carries how many entries were actually removed. An origin batch (OpRemoveBatch) forwards keys
// this node does not own to their Chord-routed owners like
// handlePutBatch (summing their removed counts into the response) and
// propagates its local deletions to the replica set as one KV-carrying
// OpRemoveReplica; replica copies (OpRemoveReplica with KV) neither
// forward nor propagate — they target exactly the node they arrive at.
func (n *Node) handleRemoveBatch(req Message) Message {
	kv := req.KV
	var fwdGroups map[string][]KeyEntries
	var fwdOrder []string
	if req.Op == OpRemoveBatch {
		owned, foreign := n.splitForeign(kv)
		kv = owned
		if len(foreign) > 0 {
			if req.TTL <= 0 {
				return Message{Op: req.Op, Err: ErrTTLExceeded.Error()}
			}
			groups, order, self, rerr := n.routeForeign(foreign)
			if rerr != nil {
				return Message{Op: req.Op, Err: rerr.Error()}
			}
			kv = append(kv, self...)
			fwdGroups, fwdOrder = groups, order
		}
	}
	removed := 0
	var firstErr error
	for _, item := range kv {
		item := item
		err := n.store.Update(item.Key, func(s Store) error {
			var uerr error
			for _, e := range item.Entries {
				ok, err := s.Remove(item.Key, e)
				if err != nil && uerr == nil {
					uerr = err
				}
				if err == nil {
					n.tomb.created.Inc()
				}
				if ok {
					removed++
				}
			}
			return uerr
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return Message{Op: req.Op, Err: firstErr.Error(), Keys: removed}
	}
	if removed > 0 && req.Op == OpRemoveBatch {
		n.replicateKV(kv, OpRemoveReplica)
	}
	for _, target := range fwdOrder {
		resp, err := n.cfg.Transport.Call(target, Message{Op: OpRemoveBatch, KV: fwdGroups[target], TTL: req.TTL - 1})
		if err == nil && resp.Err != "" {
			err = errors.New(resp.Err)
		}
		if err != nil {
			return Message{Op: req.Op, Err: err.Error(), Keys: removed}
		}
		removed += resp.Keys
	}
	return Message{Op: req.Op, Ok: removed > 0, Keys: removed}
}

// replicateKV forwards a batch mutation to the successor replicas as
// one message each — the batched analogue of replicateEntry.
func (n *Node) replicateKV(kv []KeyEntries, op Op) {
	if n.cfg.ReplicationFactor == 0 || len(kv) == 0 {
		return
	}
	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()
	sent := 0
	for _, succ := range succs {
		if succ == n.addr {
			continue
		}
		if sent >= n.cfg.ReplicationFactor {
			break
		}
		_, _ = n.cfg.Transport.Call(succ, Message{Op: op, KV: kv})
		sent++
	}
}

func (n *Node) handleRemove(req Message) Message {
	removed, err := n.store.Remove(req.Key, req.Entry)
	if err != nil {
		return Message{Op: req.Op, Err: err.Error()}
	}
	n.tomb.created.Inc()
	if removed && req.Op == OpRemove {
		// Propagate the deletion to replicas outside the lock.
		n.replicateEntry(req.Key, req.Entry, OpRemoveReplica)
	}
	return Message{Op: req.Op, Ok: removed}
}

func (n *Node) handleStats(req Message) Message {
	resp := Message{
		Op:            req.Op,
		Ok:            true,
		Keys:          n.store.Len(),
		EntriesByKind: make(map[string]int),
		BytesByKind:   make(map[string]int64),
	}
	n.store.ForEach(func(_ keyspace.Key, entries []overlay.Entry) bool {
		kinds := make(map[string]bool, 2)
		for _, e := range entries {
			resp.EntriesByKind[e.Kind]++
			resp.BytesByKind[e.Kind] += int64(len(e.Value))
			kinds[e.Kind] = true
		}
		for k := range kinds {
			resp.BytesByKind[k] += keyspace.Size
		}
		return true
	})
	return resp
}
