package wire

import (
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// handle dispatches one incoming protocol request. It runs on the
// transport's serving goroutine.
func (n *Node) handle(req Message) Message {
	switch req.Op {
	case OpPing:
		return Message{Op: OpPing, Ok: true, Addr: n.addr}
	case OpFindSuccessor:
		return n.handleFindSuccessor(req)
	case OpGetPredecessor:
		n.mu.Lock()
		defer n.mu.Unlock()
		return Message{Op: req.Op, Addr: n.pred}
	case OpGetSuccessor:
		n.mu.Lock()
		defer n.mu.Unlock()
		out := make([]string, len(n.succs))
		copy(out, n.succs)
		return Message{Op: req.Op, Addr: n.succs[0], Addrs: out}
	case OpNotify:
		return n.handleNotify(req)
	case OpPut:
		n.mu.Lock()
		_, err := n.store.Put(req.Key, req.Entry)
		n.mu.Unlock()
		if err != nil {
			// The write never became durable; refuse the ack so the client
			// retries against a healthy replica instead of trusting a copy
			// that would not survive a restart.
			return Message{Op: req.Op, Err: err.Error()}
		}
		n.replicateEntry(req.Key, req.Entry, OpPutReplica)
		return Message{Op: req.Op, Ok: true}
	case OpGet:
		n.mu.Lock()
		defer n.mu.Unlock()
		return Message{Op: req.Op, Entries: n.store.Get(req.Key), Ok: true}
	case OpRemove:
		return n.handleRemove(req)
	case OpTransfer, OpPutReplica:
		if err := n.adoptKeys(req.KV); err != nil {
			return Message{Op: req.Op, Err: err.Error()}
		}
		return Message{Op: req.Op, Ok: true}
	case OpRemoveReplica:
		return n.handleRemove(req)
	case OpRepairSync:
		return n.handleRepairSync(req)
	case OpStats:
		return n.handleStats(req)
	default:
		return Message{Op: req.Op, Err: "unknown operation"}
	}
}

// handleFindSuccessor implements recursive Chord routing: answer directly
// when the key falls between this node and its successor, otherwise
// forward to the closest preceding finger.
func (n *Node) handleFindSuccessor(req Message) Message {
	n.mu.Lock()
	succ := n.succs[0]
	n.mu.Unlock()

	if succ == n.addr || req.Key.Between(n.id, idOf(succ)) {
		return Message{Op: req.Op, Addr: succ, Hops: req.Hops}
	}
	if req.TTL <= 0 {
		return Message{Op: req.Op, Err: ErrTTLExceeded.Error()}
	}
	next := n.closestPreceding(req.Key)
	if next == n.addr {
		next = succ
	}
	resp, err := n.cfg.Transport.Call(next, Message{
		Op: OpFindSuccessor, Key: req.Key, TTL: req.TTL - 1, Hops: req.Hops + 1,
	})
	if err != nil {
		// The chosen hop is dead; fall back to the successor chain, which
		// stabilization keeps live.
		if next != succ {
			resp, err = n.cfg.Transport.Call(succ, Message{
				Op: OpFindSuccessor, Key: req.Key, TTL: req.TTL - 1, Hops: req.Hops + 1,
			})
		}
		if err != nil {
			return Message{Op: req.Op, Err: err.Error()}
		}
	}
	return resp
}

// closestPreceding picks the finger (or successor-list entry) that most
// closely precedes key.
func (n *Node) closestPreceding(key keyspace.Key) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := keyspace.Bits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f == "" || f == n.addr {
			continue
		}
		if idOf(f).BetweenOpen(n.id, key) {
			return f
		}
	}
	for i := len(n.succs) - 1; i >= 0; i-- {
		s := n.succs[i]
		if s != n.addr && idOf(s).BetweenOpen(n.id, key) {
			return s
		}
	}
	return n.addr
}

// handleNotify learns about a possible new predecessor and hands over the
// keys that now belong to it (everything outside (pred, self]).
func (n *Node) handleNotify(req Message) Message {
	cand := req.Addr
	n.mu.Lock()
	defer n.mu.Unlock()
	if cand == "" || cand == n.addr {
		return Message{Op: req.Op, Ok: false}
	}
	if n.pred == "" || idOf(cand).BetweenOpen(idOf(n.pred), n.id) {
		n.pred = cand
	}
	if n.pred != cand {
		return Message{Op: req.Op, Ok: false}
	}
	// Hand over keys the new predecessor is responsible for. Keys that
	// belong even further back migrate hop by hop across stabilization
	// rounds. With replication enabled the local copies are RETAINED —
	// this node is within the new owner's replica set, and deleting them
	// here would strip the replicas faster than the repair loop restores
	// them.
	var kv []KeyEntries
	predID := idOf(cand)
	n.store.ForEach(func(k keyspace.Key, entries []overlay.Entry) bool {
		if !k.Between(predID, n.id) {
			out := make([]overlay.Entry, len(entries))
			copy(out, entries)
			kv = append(kv, KeyEntries{Key: k, Entries: out})
		}
		return true
	})
	if n.cfg.ReplicationFactor == 0 {
		for _, item := range kv {
			// Best effort: the predecessor holds the entries now, so a
			// failed local delete only costs a duplicate copy.
			_ = n.store.Replace(item.Key, nil)
		}
	}
	return Message{Op: req.Op, Ok: true, KV: kv}
}

// replicateEntry forwards one entry operation to the successor replicas.
func (n *Node) replicateEntry(key keyspace.Key, e overlay.Entry, op Op) {
	if n.cfg.ReplicationFactor == 0 {
		return
	}
	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()
	sent := 0
	for _, succ := range succs {
		if succ == n.addr {
			continue
		}
		if sent >= n.cfg.ReplicationFactor {
			break
		}
		msg := Message{Op: op, Key: key, Entry: e}
		if op == OpPutReplica {
			msg = Message{Op: op, KV: []KeyEntries{{Key: key, Entries: []overlay.Entry{e}}}}
		}
		_, _ = n.cfg.Transport.Call(succ, msg)
		sent++
	}
}

func (n *Node) handleRemove(req Message) Message {
	n.mu.Lock()
	removed, err := n.store.Remove(req.Key, req.Entry)
	n.mu.Unlock()
	if err != nil {
		return Message{Op: req.Op, Err: err.Error()}
	}
	if removed && req.Op == OpRemove {
		// Propagate the deletion to replicas outside the lock.
		n.replicateEntry(req.Key, req.Entry, OpRemoveReplica)
	}
	return Message{Op: req.Op, Ok: removed}
}

func (n *Node) handleStats(req Message) Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := Message{
		Op:            req.Op,
		Ok:            true,
		Keys:          n.store.Len(),
		EntriesByKind: make(map[string]int),
		BytesByKind:   make(map[string]int64),
	}
	n.store.ForEach(func(_ keyspace.Key, entries []overlay.Entry) bool {
		kinds := make(map[string]bool, 2)
		for _, e := range entries {
			resp.EntriesByKind[e.Kind]++
			resp.BytesByKind[e.Kind] += int64(len(e.Value))
			kinds[e.Kind] = true
		}
		for k := range kinds {
			resp.BytesByKind[k] += keyspace.Size
		}
		return true
	})
	return resp
}
