package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/telemetry"
)

// Config parameterizes a live node.
type Config struct {
	// Transport moves messages (required).
	Transport Transport
	// Addr is the listen address; "mem:0" / "127.0.0.1:0" pick fresh ones.
	Addr string
	// StabilizeInterval is the period of the stabilize / fix-fingers /
	// check-predecessor loops. Default 25ms (tests); production would use
	// seconds.
	StabilizeInterval time.Duration
	// SuccListLen bounds the successor list (default 4).
	SuccListLen int
	// TTL bounds recursive routing (default 64).
	TTL int
	// ReplicationFactor is the number of successor replicas that receive
	// copies of each stored entry (0 disables replication). Replica sets
	// are continuously re-derived from the current ring by the
	// anti-entropy repair loop, so data survives crashes once the ring
	// re-stabilizes. The same value sizes the Cluster's read failover
	// width, so reads always probe exactly the set writes fan out to.
	ReplicationFactor int
	// RepairEvery is the number of stabilize rounds between anti-entropy
	// repair rounds (default 4). A repair round also fires immediately
	// when the immediate successor changes, so a fresh successor is
	// readable without waiting out the cadence.
	RepairEvery int
	// Retry, when set, wraps Transport in a RetryingTransport so every
	// RPC this node issues (stabilization, routing, hand-offs) retries
	// transient failures per the policy before a peer is declared dead.
	Retry *RetryPolicy
	// SuccFailThreshold is the number of consecutive failed stabilize
	// contacts before the immediate successor is amputated from the
	// successor list (default 1: amputate on first failure, the
	// pre-retry behaviour). Raise it so a slow peer — one that fails
	// even its retried RPC once — is distinguished from a dead one.
	SuccFailThreshold int
	// FingerFixesPerRound is the number of finger-table entries
	// refreshed per stabilize round (default 16; the table has
	// keyspace.Bits = 160 slots, so the default sweeps the whole table
	// every 10 rounds).
	FingerFixesPerRound int
	// Admission, when set, bounds the work this node accepts: requests
	// beyond the inflight and queue limits are NACKed with ErrOverload
	// instead of queueing without bound. Nil disables admission control
	// (every request is served, the pre-overload-protection behaviour).
	Admission *AdmissionConfig
	// Store is the node's local entry store (default: a fresh
	// MemStore). Pass a durable store (internal/wire/durable) to make
	// the node's state survive restarts: re-open the same directory,
	// Start with the same Addr — the ring ID is derived from it — and
	// Join; the anti-entropy repair loop reconciles whatever was missed
	// while down. The node assumes ownership and closes the store on
	// Stop/Leave.
	Store Store
	// TombstoneTTL is how long deletion records are kept before garbage
	// collection (default 5 minutes). It must exceed the longest
	// partition or node downtime after which a stale copy can reappear,
	// or a healed replica may resurrect a removed entry (DESIGN.md §15).
	// Negative disables GC entirely.
	TombstoneTTL time.Duration
	// KnownPeersMax bounds the node's known-peers set — addresses
	// gleaned from successor lists, notifies, fingers and joins, kept
	// beyond the node's current ring view so a split ring still
	// remembers the other side (default 64).
	KnownPeersMax int
	// MergeProbeEvery is the number of stabilize rounds between
	// cross-ring merge probes: each probe samples one known peer outside
	// the node's current view and asks it to locate this node's own id;
	// an answer other than this node means the peer is on a divergent
	// ring and a merge is coordinated (default 8; negative disables).
	MergeProbeEvery int
	// Codec selects the wire payload encoding when Transport is a
	// *TCPTransport (default CodecBinary via CodecDefault: the compact
	// binary codec, negotiated per connection with gob fallback —
	// DESIGN.md §17). Set CodecGob to pin the node's transport to gob,
	// the A/B baseline for soaks and benches. Ignored for other
	// transports, and for a shared TCPTransport the last node started
	// wins — give each A/B arm its own transport instance.
	Codec Codec
}

func (c Config) withDefaults() Config {
	if c.StabilizeInterval == 0 {
		c.StabilizeInterval = 25 * time.Millisecond
	}
	if c.SuccListLen == 0 {
		c.SuccListLen = 4
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
	if c.SuccFailThreshold == 0 {
		c.SuccFailThreshold = 1
	}
	if c.RepairEvery == 0 {
		c.RepairEvery = 4
	}
	if c.FingerFixesPerRound == 0 {
		c.FingerFixesPerRound = 16
	}
	// A nil Store becomes the default striped MemStore in Start
	// (asConcurrentStore); withDefaults leaves it alone so Start can
	// tell "defaulted" from "supplied" when wrapping.
	if c.TombstoneTTL == 0 {
		c.TombstoneTTL = 5 * time.Minute
	}
	if c.KnownPeersMax == 0 {
		c.KnownPeersMax = 64
	}
	if c.MergeProbeEvery == 0 {
		c.MergeProbeEvery = 8
	}
	return c
}

// Node is a live Chord peer: it serves protocol requests and runs
// background stabilization until stopped.
type Node struct {
	cfg  Config
	addr string
	id   keyspace.Key

	retry  *RetryingTransport // non-nil iff cfg.Retry was set
	admit  *admission         // non-nil iff cfg.Admission was set
	repair repairCounters
	merge  mergeCounters
	tomb   tombstoneCounters

	// mu guards ROUTING state only: ring pointers, fingers, the
	// known-peers set and lifecycle flags. The data store is NOT under
	// it — store synchronizes itself (ConcurrentStore, see sharded.go),
	// so concurrent gets, digest scans and mutators stop contending
	// with routing and with each other. Compound read-modify-write
	// sections over one key's state go through store.Update.
	mu         sync.Mutex
	pred       string
	succs      []string // succs[0] is the immediate successor (never empty)
	succFails  int      // consecutive failed stabilize contacts of succs[0]
	notifySeen int      // notifies from the current predecessor (handover cadence)
	fingers    [keyspace.Bits]string
	fingerIdx  int
	known      map[string]bool // bounded known-peers set (merge probing)
	rng        *rand.Rand      // seeded from the node id: probe sampling, eviction
	stopped    bool
	leftTo     string // peer that accepted the Leave hand-off

	// store is the node's synchronized data plane (not guarded by mu).
	store ConcurrentStore

	listener io.Closer
	stop     chan struct{}
	done     sync.WaitGroup
}

// idOf derives a peer's ring position from its address (SHA-1), so
// identifiers never need to travel on the wire.
func idOf(addr string) keyspace.Key { return keyspace.NewKey(addr) }

// Start listens and begins the maintenance loops. The node starts as a
// one-node ring; call Join to enter an existing one.
func Start(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, fmt.Errorf("wire: nil transport")
	}
	n := &Node{
		cfg:    cfg,
		store:  asConcurrentStore(cfg.Store),
		stop:   make(chan struct{}),
		repair: newRepairCounters(),
		merge:  newMergeCounters(),
		tomb:   newTombstoneCounters(),
		known:  make(map[string]bool),
	}
	if tp, ok := cfg.Transport.(*TCPTransport); ok && cfg.Codec != CodecDefault {
		tp.Codec = cfg.Codec
	}
	if cfg.Retry != nil {
		n.retry = NewRetryingTransport(cfg.Transport, *cfg.Retry)
		n.cfg.Transport = n.retry
	}
	handler := Handler(n.handle)
	if cfg.Admission != nil {
		n.admit = newAdmission(*cfg.Admission)
		handler = n.admit.wrap(handler)
	}
	addr, closer, err := cfg.Transport.Listen(cfg.Addr, handler)
	if err != nil {
		return nil, err
	}
	n.addr = addr
	n.id = idOf(addr)
	n.listener = closer
	n.succs = []string{addr}
	// Seed from the node id so merge-probe sampling is deterministic per
	// address — soak schedules replay exactly across runs.
	n.rng = rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(n.id[:8]))))
	n.done.Add(1)
	go n.maintenanceLoop()
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's ring identifier.
func (n *Node) ID() keyspace.Key { return n.id }

// Join enters the ring that bootstrap belongs to.
func (n *Node) Join(bootstrap string) error {
	resp, err := n.cfg.Transport.Call(bootstrap, Message{
		Op: OpFindSuccessor, Key: n.id, TTL: n.cfg.TTL,
	})
	if err != nil {
		return fmt.Errorf("wire: join via %s: %w", bootstrap, err)
	}
	if err := remoteError(resp); err != nil {
		return err
	}
	n.mu.Lock()
	n.succs = []string{resp.Addr}
	n.notePeersLocked(bootstrap, resp.Addr)
	n.mu.Unlock()
	n.stabilizeOnce() // prompt: notify successor, adopt keys
	return nil
}

// Stop halts the maintenance loops and the listener. The node's keys stay
// wherever they are; use Leave for a graceful departure.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.done.Wait()
	_ = n.listener.Close()
	_ = n.store.Close()
}

// Leave transfers this node's keys to the first reachable entry of its
// successor list and stops. The ring self-heals around the departure via
// successor lists. HandedOffTo reports which peer accepted the keys.
//
// The maintenance loop is halted BEFORE the hand-off: a stabilize round
// racing with the transfer could receive the just-transferred keys back
// in a Notify response and take them to the grave.
func (n *Node) Leave() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.done.Wait()

	n.mu.Lock()
	succs := make([]string, len(n.succs))
	copy(succs, n.succs)
	n.mu.Unlock()
	var kv []KeyEntries
	for _, k := range n.localKeys() {
		var item KeyEntries
		// Per-key snapshot under the key's read lock: entries and
		// tombstones of one key travel as one consistent unit. (The
		// maintenance loop is already down; handlers may still race a
		// straggling replica write, which the next owner's repair loop
		// reconciles like any other late copy.)
		_ = n.store.View(k, func(s Store) error {
			item = KeyEntries{Key: k, Entries: s.Get(k), Tombs: s.Tombstones(k)}
			return nil
		})
		if len(item.Entries) == 0 && len(item.Tombs) == 0 {
			continue
		}
		kv = append(kv, item)
	}
	var handoffErr error
	if len(kv) > 0 {
		// The immediate successor may be dead too — that can be exactly
		// why this node is leaving. Walk the successor list until a peer
		// accepts; any list entry is a valid next owner, and migration
		// settles the keys in a few stabilize rounds.
		for _, succ := range succs {
			if succ == n.addr {
				continue
			}
			resp, err := n.cfg.Transport.Call(succ, Message{Op: OpTransfer, KV: kv})
			if err != nil {
				handoffErr = fmt.Errorf("wire: leave handoff to %s: %w", succ, err)
				continue
			}
			if rerr := remoteError(resp); rerr != nil {
				handoffErr = rerr
				continue
			}
			n.mu.Lock()
			n.leftTo = succ
			n.mu.Unlock()
			handoffErr = nil
			break
		}
	}
	_ = n.listener.Close()
	_ = n.store.Close()
	return handoffErr
}

// HandedOffTo returns the peer that accepted this node's keys during
// Leave ("" if the node has not left, held no keys, or no peer accepted).
func (n *Node) HandedOffTo() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leftTo
}

// maintenanceLoop drives stabilization until stopped.
func (n *Node) maintenanceLoop() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.StabilizeInterval)
	defer ticker.Stop()
	round := 0
	lastSucc := ""
	for {
		select {
		case <-ticker.C:
			n.stabilizeOnce()
			n.checkPredecessor()
			n.fixFingers(n.cfg.FingerFixesPerRound)
			round++
			if n.cfg.ReplicationFactor > 0 {
				// Repair on cadence, and immediately when the immediate
				// successor changed: a fresh successor (join, or failover
				// promotion after a crash) must become readable without
				// waiting out the repair interval.
				succ := n.Successor()
				if succ != lastSucc || round%n.cfg.RepairEvery == 0 {
					lastSucc = succ
					n.repairOnce()
				}
			}
			if n.cfg.MergeProbeEvery > 0 && round%n.cfg.MergeProbeEvery == 0 {
				n.mergeProbe()
			}
			if n.cfg.TombstoneTTL > 0 && n.cfg.RepairEvery > 0 && round%n.cfg.RepairEvery == 0 {
				n.gcTombstones()
			}
		case <-n.stop:
			return
		}
	}
}

// gcTombstones collects deletion records older than TombstoneTTL.
func (n *Node) gcTombstones() {
	cutoff := time.Now().Add(-n.cfg.TombstoneTTL).UnixNano()
	collected, err := n.store.GCTombstones(cutoff)
	if err == nil && collected > 0 {
		n.tomb.gcd.Add(int64(collected))
	}
}

// stabilizeOnce runs one round of the Chord stabilize protocol: verify the
// successor, adopt a closer one if its predecessor is between us, notify
// it, and refresh the successor list.
func (n *Node) stabilizeOnce() {
	n.mu.Lock()
	succ := n.succs[0]
	pred := n.pred
	n.mu.Unlock()

	if succ == n.addr {
		// Single-node ring; if someone notified us, they become our
		// successor too, closing a two-node ring.
		if pred != "" && pred != n.addr {
			n.mu.Lock()
			n.succs[0] = pred
			n.mu.Unlock()
		}
		return
	}

	resp, err := n.cfg.Transport.Call(succ, Message{Op: OpGetPredecessor})
	if err != nil {
		// An overloaded successor is alive — it answered, just with a
		// shed. Amputating it would route around a node that is merely
		// busy, piling its keys onto neighbors and making the hot spot
		// worse. Only connectivity failures count toward amputation.
		if !errors.Is(err, ErrOverload) {
			n.succFailed()
		}
		return
	}
	if x := resp.Addr; x != "" && x != n.addr && idOf(x).BetweenOpen(n.id, idOf(succ)) {
		// A node slipped in between us and our successor.
		n.mu.Lock()
		n.succs[0] = x
		succ = x
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.notePeersLocked(resp.Addr)
	n.mu.Unlock()

	// Notify the successor; it may hand us keys we now own.
	nresp, err := n.cfg.Transport.Call(succ, Message{Op: OpNotify, Addr: n.addr})
	if err != nil {
		if !errors.Is(err, ErrOverload) {
			n.succFailed()
		}
		return
	}
	n.mu.Lock()
	n.succFails = 0 // the successor answered; it is alive
	n.mu.Unlock()
	if len(nresp.KV) > 0 {
		n.adoptKeys(nresp.KV)
	}

	// Refresh the successor list from the successor's view.
	sresp, err := n.cfg.Transport.Call(succ, Message{Op: OpGetSuccessor})
	if err != nil {
		return
	}
	list := append([]string{succ}, sresp.Addrs...)
	if len(list) > n.cfg.SuccListLen {
		list = list[:n.cfg.SuccListLen]
	}
	n.mu.Lock()
	n.succs = list
	n.notePeersLocked(sresp.Addrs...)
	n.mu.Unlock()
}

// succFailed records a failed stabilize contact of the immediate
// successor and amputates it once the consecutive-failure count reaches
// the suspicion threshold. With an RPC retry policy in place a single
// failure already means "retries exhausted"; the threshold adds a second
// chance across stabilize rounds so a transiently slow peer is not
// mistaken for a dead one.
func (n *Node) succFailed() {
	n.mu.Lock()
	n.succFails++
	trip := n.succFails >= n.cfg.SuccFailThreshold
	n.mu.Unlock()
	if trip {
		n.advanceSuccessor()
	}
}

// advanceSuccessor promotes the next live entry of the successor list
// after the immediate successor failed.
func (n *Node) advanceSuccessor() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.succFails = 0
	if len(n.succs) > 1 {
		n.succs = n.succs[1:]
		return
	}
	// The whole successor list is dead. Before collapsing to a one-node
	// ring, fall back to the live predecessor: stabilizing against it
	// walks the predecessor chain back around the ring to the first
	// surviving clockwise successor, healing without waiting for the
	// predecessor to re-discover us. (The predecessor is known-live —
	// checkPredecessor clears dead ones — and using a stale entry only
	// costs another advance round.)
	if n.pred != "" && n.pred != n.addr && n.pred != n.succs[0] {
		n.succs = []string{n.pred}
		return
	}
	n.succs = []string{n.addr}
}

// checkPredecessor clears a dead predecessor so Notify can replace it.
func (n *Node) checkPredecessor() {
	n.mu.Lock()
	pred := n.pred
	n.mu.Unlock()
	if pred == "" {
		return
	}
	if _, err := n.cfg.Transport.Call(pred, Message{Op: OpPing}); err != nil && !errors.Is(err, ErrOverload) {
		n.mu.Lock()
		if n.pred == pred {
			n.pred = ""
		}
		n.mu.Unlock()
	}
}

// fixFingers repairs count finger-table entries per round, round-robin.
func (n *Node) fixFingers(count int) {
	for i := 0; i < count; i++ {
		n.mu.Lock()
		idx := n.fingerIdx
		n.fingerIdx = (n.fingerIdx + 1) % keyspace.Bits
		n.mu.Unlock()
		target := n.id.Add(uint(idx))
		resp := n.handleFindSuccessor(Message{Op: OpFindSuccessor, Key: target, TTL: n.cfg.TTL})
		if resp.Err != "" {
			continue
		}
		n.mu.Lock()
		n.fingers[idx] = resp.Addr
		n.notePeersLocked(resp.Addr)
		n.mu.Unlock()
	}
}

// adoptKeys stores transferred entries locally, honoring tombstones in
// both directions: tombstones riding with the transfer are entombed
// first (each kills its matching live entry), and entries suppressed by
// a local tombstone are refused — a stale copy arriving by transfer or
// replication must not resurrect a removal. Each key adopts as one
// atomic critical section (store.Update), so the entomb-then-put order
// cannot interleave with another mutator of the same key; distinct keys
// adopt independently. The first store failure is returned (remaining
// items are still attempted): a durable store that cannot append its
// WAL must not silently ack a transfer, or the sender would drop its
// only copy.
func (n *Node) adoptKeys(kv []KeyEntries) error {
	var firstErr error
	for _, item := range kv {
		item := item
		err := n.store.Update(item.Key, func(s Store) error {
			var uerr error
			if len(item.Tombs) > 0 {
				fresh, err := s.Entomb(item.Key, item.Tombs)
				if err != nil {
					uerr = err
				}
				n.tomb.merged.Add(int64(fresh))
			}
			for _, e := range item.Entries {
				added, err := s.Put(item.Key, e)
				if err != nil && uerr == nil {
					uerr = err
				}
				if !added && err == nil && s.Tombstoned(item.Key, e) {
					n.tomb.suppressed.Inc()
				}
			}
			return uerr
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Snapshot support for tests and diagnostics.

// Successor returns the node's current immediate successor.
func (n *Node) Successor() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succs[0]
}

// Predecessor returns the node's current predecessor ("" if unknown).
func (n *Node) Predecessor() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// Successors returns a copy of the node's successor list.
func (n *Node) Successors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.succs))
	copy(out, n.succs)
	return out
}

// RetryStats returns the node's RPC retry counters (zero if the node was
// started without a retry policy).
func (n *Node) RetryStats() RetryStats {
	if n.retry == nil {
		return RetryStats{}
	}
	return n.retry.Stats()
}

// BreakerStats returns the node's circuit-breaker counters (zero when no
// retry policy, or a policy without a breaker, is configured).
func (n *Node) BreakerStats() BreakerStats {
	if n.retry == nil {
		return BreakerStats{}
	}
	return n.retry.BreakerStats()
}

// AdmissionStats returns the node's admission-control counters (zero if
// the node was started without an AdmissionConfig).
func (n *Node) AdmissionStats() AdmissionStats {
	if n.admit == nil {
		return AdmissionStats{}
	}
	return n.admit.stats()
}

// RepairStats returns the node's anti-entropy repair counters.
func (n *Node) RepairStats() RepairStats {
	return RepairStats{
		Rounds:   n.repair.rounds.Value(),
		Syncs:    n.repair.syncs.Value(),
		Pushes:   n.repair.pushes.Value(),
		Forwards: n.repair.forwards.Value(),
		Drops:    n.repair.drops.Value(),
	}
}

// MergeStats returns the node's ring-merge counters.
func (n *Node) MergeStats() MergeStats {
	return MergeStats{
		Probes:        n.merge.probes.Value(),
		Detected:      n.merge.detected.Value(),
		Aborts:        n.merge.aborts.Value(),
		Coordinations: n.merge.coordinations.Value(),
		Rejoins:       n.merge.rejoins.Value(),
		Adopts:        n.merge.adopts.Value(),
	}
}

// TombstoneStats returns the node's deletion-record counters.
func (n *Node) TombstoneStats() TombstoneStats {
	return TombstoneStats{
		Created:    n.tomb.created.Value(),
		Merged:     n.tomb.merged.Value(),
		Suppressed: n.tomb.suppressed.Value(),
		GCd:        n.tomb.gcd.Value(),
	}
}

// KnownPeers returns a copy of the node's bounded known-peers set (the
// addresses merge probes sample from).
func (n *Node) KnownPeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.known))
	for p := range n.known {
		out = append(out, p)
	}
	return out
}

// Instrument attaches the node's retry and repair counters to reg. All
// nodes of a fleet may attach to one registry: the snapshot reports
// fleet-wide sums while RetryStats/RepairStats stay per-node.
func (n *Node) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.repair.attach(reg)
	n.merge.attach(reg)
	n.tomb.attach(reg)
	if n.retry != nil {
		n.retry.Instrument(reg)
	}
	if n.admit != nil {
		n.admit.instrument(reg)
	}
	if is, ok := n.store.(InstrumentedStore); ok {
		is.Instrument(reg)
	}
}

// KeyCount returns the number of distinct keys stored locally.
func (n *Node) KeyCount() int { return n.store.Len() }
