package wire

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"time"

	"dhtindex/internal/telemetry"
)

// RetryPolicy parameterizes the RPC retry stack: how many times an
// idempotent operation is attempted and how the backoff between attempts
// grows. The zero value is usable — withDefaults fills in sane numbers.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 250ms).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter/2 of its value, in
	// [0,1] (default 0.5). Jitter decorrelates retry storms.
	Jitter float64
	// Seed makes the jitter sequence reproducible.
	Seed int64
	// Retryable overrides the default idempotent-op set: ops mapped to
	// true are retried, ops mapped to false never are, unmapped ops use
	// the default set.
	Retryable map[Op]bool
	// PerOpAttempts overrides MaxAttempts for specific ops (e.g. give
	// OpTransfer more tries than OpPing).
	PerOpAttempts map[Op]int
	// Breaker, when non-nil, enables the per-peer circuit breaker: a
	// peer whose calls keep failing gets further calls refused with
	// ErrCircuitOpen (fail fast) until a half-open probe succeeds. Nil
	// keeps the PR 1 retry behaviour byte-for-byte.
	Breaker *BreakerPolicy
	// Budget, when non-nil, enables the retry budget: a token bucket in
	// which every fresh logical call earns Ratio tokens and every retry
	// spends one, capping retry traffic at roughly Ratio× the fresh
	// traffic. Under widespread failure, uncapped retries multiply
	// offered load by MaxAttempts exactly when capacity is scarcest — the
	// retry-storm feedback loop the budget breaks. Nil keeps retries
	// uncapped.
	Budget *RetryBudget
}

// RetryBudget parameterizes the retry token bucket. The zero value is
// usable — defaults are applied on first use.
type RetryBudget struct {
	// Ratio is the number of tokens a fresh logical call earns (default
	// 0.1: retries capped at ~10% of fresh traffic).
	Ratio float64
	// Burst caps the bucket (default 10), bounding how many retries a
	// quiet period can bank for the next failure burst.
	Burst float64
}

func (b RetryBudget) withDefaults() RetryBudget {
	if b.Ratio == 0 {
		b.Ratio = 0.1
	}
	if b.Burst == 0 {
		b.Burst = 10
	}
	return b
}

// retryBudget is the live token bucket behind a RetryBudget policy.
type retryBudget struct {
	mu     sync.Mutex
	policy RetryBudget
	tokens float64
}

func newRetryBudget(policy RetryBudget) *retryBudget {
	policy = policy.withDefaults()
	// Start full: the first failures after startup may retry.
	return &retryBudget{policy: policy, tokens: policy.Burst}
}

// earn credits a fresh logical call.
func (b *retryBudget) earn() {
	b.mu.Lock()
	b.tokens += b.policy.Ratio
	if b.tokens > b.policy.Burst {
		b.tokens = b.policy.Burst
	}
	b.mu.Unlock()
}

// spend takes one token for a retry, reporting whether one was available.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	return p
}

// retryableByDefault holds the ops that are safe to repeat: pure reads,
// and writes whose handlers deduplicate (Put/PutReplica/Transfer add an
// entry only once; Notify recomputes the same predecessor decision).
// OpRemove and OpRemoveReplica are excluded — their Ok result flips on a
// repeat, so the caller would misreport "not found".
var retryableByDefault = map[Op]bool{
	OpPing:           true,
	OpFindSuccessor:  true,
	OpGetPredecessor: true,
	OpGetSuccessor:   true,
	OpNotify:         true,
	OpPut:            true,
	OpGet:            true,
	OpTransfer:       true,
	OpStats:          true,
	OpLeave:          true,
	OpPutReplica:     true,
	OpRepairSync:     true,
	// OpPutBatch is a batch of idempotent puts: retrying after a NACK or
	// a lost ack re-applies entries the store deduplicates, so partial
	// application converges. OpRemoveBatch is excluded for the same
	// reason as OpRemove: its Ok/count result flips on a repeat.
	OpPutBatch: true,
}

// attemptsFor resolves how many times op may be tried under p.
func (p RetryPolicy) attemptsFor(op Op) int {
	if n, ok := p.PerOpAttempts[op]; ok && n > 0 {
		return n
	}
	if allowed, ok := p.Retryable[op]; ok {
		if !allowed {
			return 1
		}
		return p.MaxAttempts
	}
	if retryableByDefault[op] {
		return p.MaxAttempts
	}
	return 1
}

// RetryStats is a point-in-time snapshot of the retry layer's work,
// making recovery observable: Attempts/Calls is the retry amplification
// a fault schedule induced. Snapshots are plain values; the live
// counters behind them are atomic (see RetryingTransport.Stats), so
// reading a snapshot while the node is live is race-free.
type RetryStats struct {
	// Calls is the number of logical RPCs issued.
	Calls int64
	// Attempts is the number of wire sends, including first tries.
	Attempts int64
	// Retries is the number of re-sends after a transport error.
	Retries int64
	// Recovered counts calls that failed at least once and then
	// succeeded on a retry.
	Recovered int64
	// GaveUp counts calls that exhausted every attempt.
	GaveUp int64
	// BudgetExhausted counts retries suppressed because the retry budget
	// had no token — the call failed without further attempts.
	BudgetExhausted int64
	// Overloads counts calls NACKed by the peer's admission control
	// (ErrOverload). Overload NACKs are never retried against the same
	// peer, so each also ends its call.
	Overloads int64
}

// Merge accumulates another snapshot into s (for fleet-wide totals).
func (s *RetryStats) Merge(o RetryStats) {
	s.Calls += o.Calls
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Recovered += o.Recovered
	s.GaveUp += o.GaveUp
	s.BudgetExhausted += o.BudgetExhausted
	s.Overloads += o.Overloads
}

// Amplification is wire sends per logical call (1.0 = no retries).
func (s RetryStats) Amplification() float64 {
	if s.Calls == 0 {
		return 1
	}
	return float64(s.Attempts) / float64(s.Calls)
}

// RetryingTransport wraps a Transport with the retry/backoff policy:
// transport-level failures of idempotent operations are retried with
// exponential backoff and jitter, while non-idempotent ops and remote
// application errors pass straight through. It composes with
// FaultTransport (retry outside, faults inside) to model a lossy network
// being survived.
type RetryingTransport struct {
	inner   Transport
	policy  RetryPolicy
	breaker *breakerSet
	budget  *retryBudget

	mu  sync.Mutex
	rng *rand.Rand

	calls           *telemetry.Counter
	attempts        *telemetry.Counter
	retries         *telemetry.Counter
	recovered       *telemetry.Counter
	gaveUp          *telemetry.Counter
	budgetExhausted *telemetry.Counter
	overloads       *telemetry.Counter
}

// NewRetryingTransport wraps inner with policy.
func NewRetryingTransport(inner Transport, policy RetryPolicy) *RetryingTransport {
	t := &RetryingTransport{
		inner:     inner,
		policy:    policy.withDefaults(),
		rng:       rand.New(rand.NewSource(policy.Seed)),
		calls:     telemetry.NewCounter("wire_retry_calls_total", "Logical RPCs issued through the retry layer."),
		attempts:  telemetry.NewCounter("wire_retry_attempts_total", "Wire sends, including first tries."),
		retries:   telemetry.NewCounter("wire_retry_resends_total", "Re-sends after a transport error."),
		recovered: telemetry.NewCounter("wire_retry_recovered_total", "Calls that failed at least once then succeeded on a retry."),
		gaveUp:    telemetry.NewCounter("wire_retry_gave_up_total", "Calls that exhausted every attempt."),
		budgetExhausted: telemetry.NewCounter("wire_retry_budget_exhausted_total",
			"Retries suppressed because the retry budget had no token."),
		overloads: telemetry.NewCounter("wire_retry_overloads_total",
			"Calls NACKed by peer admission control (never retried)."),
	}
	if policy.Breaker != nil {
		t.breaker = newBreakerSet(*policy.Breaker)
	}
	if policy.Budget != nil {
		t.budget = newRetryBudget(*policy.Budget)
	}
	return t
}

// Listen implements Transport (pass-through: retries apply to calls).
func (t *RetryingTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	return t.inner.Listen(addr, handler)
}

// Stats returns a snapshot of the retry counters. The counters are
// atomic, so this is safe to call while the transport is live.
func (t *RetryingTransport) Stats() RetryStats {
	return RetryStats{
		Calls:           t.calls.Value(),
		Attempts:        t.attempts.Value(),
		Retries:         t.retries.Value(),
		Recovered:       t.recovered.Value(),
		GaveUp:          t.gaveUp.Value(),
		BudgetExhausted: t.budgetExhausted.Value(),
		Overloads:       t.overloads.Value(),
	}
}

// BreakerStats returns a snapshot of the circuit-breaker counters, or a
// zero snapshot when no breaker policy is configured.
func (t *RetryingTransport) BreakerStats() BreakerStats {
	if t.breaker == nil {
		return BreakerStats{}
	}
	return t.breaker.stats()
}

// Instrument attaches the transport's retry counters to reg. Several
// transports may attach to the same registry: the snapshot then reports
// fleet-wide sums while each transport keeps its per-instance Stats.
func (t *RetryingTransport) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Attach(t.calls, t.attempts, t.retries, t.recovered, t.gaveUp, t.budgetExhausted, t.overloads)
	if t.breaker != nil {
		t.breaker.instrument(reg)
	}
}

// Call implements Transport.
func (t *RetryingTransport) Call(addr string, req Message) (Message, error) {
	return t.CallCtx(context.Background(), addr, req)
}

// CallCtx is Call with a deadline budget: retries stop once ctx is done,
// so a multi-hop lookup stops burning backoff time on a dead peer when
// its caller's budget has run out. The in-flight wire send itself is not
// interrupted (transports are synchronous); only further retries are.
func (t *RetryingTransport) CallCtx(ctx context.Context, addr string, req Message) (Message, error) {
	if t.breaker != nil && !t.breaker.allow(addr) {
		return Message{}, ErrCircuitOpen
	}
	attempts := t.policy.attemptsFor(req.Op)
	t.calls.Inc()
	if t.budget != nil {
		t.budget.earn()
	}
	innerCtx, hasCtx := t.inner.(ctxCaller)
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		// Stamp the remaining deadline budget onto the request so the
		// peer's admission control can shed work the caller would discard
		// anyway. Re-stamped per attempt — backoff eats into the budget.
		if deadline, ok := ctx.Deadline(); ok {
			req.BudgetMicros = time.Until(deadline).Microseconds()
		}
		t.attempts.Inc()
		var resp Message
		var err error
		if hasCtx {
			resp, err = innerCtx.CallCtx(ctx, addr, req)
		} else {
			resp, err = t.inner.Call(addr, req)
		}
		if err == nil && resp.Code == CodeOverload {
			// The peer shed the request: it is alive but saturated.
			// Retrying against it would feed the overload, so the NACK
			// ends this call (the caller's replica failover may divert
			// elsewhere). The breaker tracks the overload streak apart
			// from connectivity failures.
			t.overloads.Inc()
			if t.breaker != nil {
				t.breaker.onOverload(addr)
			}
			return resp, remoteError(resp)
		}
		if err == nil {
			if attempt > 1 {
				t.recovered.Inc()
			}
			if t.breaker != nil {
				t.breaker.onResult(addr, nil)
			}
			return resp, nil
		}
		lastErr = err
		if attempt >= attempts {
			break
		}
		if t.budget != nil && !t.budget.spend() {
			t.budgetExhausted.Inc()
			break
		}
		t.retries.Inc()
		if !sleepCtx(ctx, t.backoff(attempt)) {
			lastErr = ctx.Err()
			break
		}
	}
	if attempts > 1 {
		t.gaveUp.Inc()
	}
	// A spent caller budget is not the peer's fault: only transport
	// failures feed the breaker.
	if t.breaker != nil && ctx.Err() == nil {
		t.breaker.onResult(addr, lastErr)
	}
	return Message{}, lastErr
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// backoff computes the jittered exponential delay before retry number
// attempt (1-based).
func (t *RetryingTransport) backoff(attempt int) time.Duration {
	d := float64(t.policy.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= t.policy.Multiplier
		if d >= float64(t.policy.MaxDelay) {
			d = float64(t.policy.MaxDelay)
			break
		}
	}
	t.mu.Lock()
	r := t.rng.Float64()
	t.mu.Unlock()
	// Spread over [1-J/2, 1+J/2] of the nominal delay.
	d *= 1 - t.policy.Jitter/2 + t.policy.Jitter*r
	if d > float64(t.policy.MaxDelay) {
		d = float64(t.policy.MaxDelay)
	}
	return time.Duration(d)
}
