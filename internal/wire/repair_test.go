package wire

import (
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func TestEntriesDigest(t *testing.T) {
	a := []overlay.Entry{{Kind: "k1", Value: "v1"}, {Kind: "k2", Value: "v2"}}
	b := []overlay.Entry{{Kind: "k2", Value: "v2"}, {Kind: "k1", Value: "v1"}}
	if entriesDigest(a) != entriesDigest(b) {
		t.Errorf("digest is order-dependent")
	}
	if entriesDigest(nil) != 0 {
		t.Errorf("empty set must digest to 0")
	}
	c := []overlay.Entry{{Kind: "k1", Value: "v1"}}
	if entriesDigest(a) == entriesDigest(c) {
		t.Errorf("different sets collided")
	}
	// The separator bytes keep (Kind, Value) boundaries unambiguous.
	d := []overlay.Entry{{Kind: "k1v", Value: "1"}}
	e := []overlay.Entry{{Kind: "k1", Value: "v1"}}
	if entriesDigest(d) == entriesDigest(e) {
		t.Errorf("kind/value boundary ambiguity")
	}
}

// TestRepairConvergence is the table-driven acceptance test for the
// anti-entropy repair loop: after an arbitrary mix of joins, graceful
// leaves and crashes, every key must settle at exactly
// min(ReplicationFactor+1, live) physical copies, placed on the key's
// current owner and its successors — newcomers gain the copies they now
// owe, survivors re-replicate what crashes ate, and stale copies left
// behind by ownership changes are dropped.
func TestRepairConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("repair convergence skipped in -short mode")
	}
	cases := []struct {
		name    string
		nodes   int
		rf      int
		keys    int
		joins   int
		leaves  int
		crashes int
	}{
		{name: "joins-only", nodes: 6, rf: 2, keys: 16, joins: 3},
		{name: "leaves-only", nodes: 8, rf: 2, keys: 16, leaves: 3},
		{name: "crashes-only", nodes: 8, rf: 2, keys: 16, crashes: 2},
		{name: "mixed-churn", nodes: 8, rf: 2, keys: 20, joins: 2, leaves: 1, crashes: 2},
		{name: "rf1-churn", nodes: 6, rf: 1, keys: 12, joins: 1, crashes: 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			transport := NewMemTransport()
			cfg := Config{
				Transport:         transport,
				Addr:              "mem:0",
				StabilizeInterval: 10 * time.Millisecond,
				ReplicationFactor: tc.rf,
			}
			cluster := NewCluster(transport, 1, tc.rf)
			alive := map[string]*Node{}
			var bootstrap string
			boot := func(i int) *Node {
				n, err := Start(cfg)
				if err != nil {
					t.Fatalf("start node %d: %v", i, err)
				}
				t.Cleanup(n.Stop)
				if bootstrap == "" {
					bootstrap = n.Addr()
				} else if err := n.Join(bootstrap); err != nil {
					t.Fatalf("join node %d: %v", i, err)
				}
				cluster.Track(n.Addr())
				alive[n.Addr()] = n
				return n
			}
			for i := 0; i < tc.nodes; i++ {
				boot(i)
			}
			if err := cluster.WaitConverged(10 * time.Second); err != nil {
				t.Fatal(err)
			}

			keys := make([]keyspace.Key, tc.keys)
			for i := range keys {
				keys[i] = keyspace.NewKey(fmt.Sprintf("%s-key-%d", tc.name, i))
				e := overlay.Entry{Kind: "repair", Value: fmt.Sprintf("v%d", i)}
				if _, err := cluster.Put(keys[i], e); err != nil {
					t.Fatalf("put key %d: %v", i, err)
				}
			}

			// Churn: joins first, then graceful leaves, then crashes. Each
			// event mutates the ideal replica set of some keys; no repair
			// round is awaited in between — the loop must untangle the
			// aggregate.
			for i := 0; i < tc.joins; i++ {
				boot(tc.nodes + i)
			}
			for i := 0; i < tc.leaves; i++ {
				victim := pickAnyAlive(alive)
				cluster.Untrack(victim.Addr())
				delete(alive, victim.Addr())
				if err := victim.Leave(); err != nil {
					t.Fatalf("leave %s: %v", victim.Addr(), err)
				}
			}
			for i := 0; i < tc.crashes; i++ {
				victim := pickAnyAlive(alive)
				victim.Stop() // no handoff: a crash loses the local store
				cluster.Untrack(victim.Addr())
				delete(alive, victim.Addr())
			}
			if err := cluster.WaitConverged(10 * time.Second); err != nil {
				t.Fatalf("ring did not re-converge after churn: %v", err)
			}

			expected := tc.rf + 1
			if len(alive) < expected {
				expected = len(alive)
			}
			waitReplicaCounts(t, transport, cluster, alive, keys, expected)
		})
	}
}

// pickAnyAlive returns an arbitrary live node (map order is fine — the
// scenario must hold for any victim).
func pickAnyAlive(alive map[string]*Node) *Node {
	for _, n := range alive {
		return n
	}
	return nil
}

// waitReplicaCounts polls until every key has exactly expected physical
// copies across the live nodes AND the key's routed owner is one of the
// holders, failing the test with a per-key report on timeout.
func waitReplicaCounts(t *testing.T, transport Transport, cluster *Cluster, alive map[string]*Node, keys []keyspace.Key, expected int) {
	t.Helper()
	anyNode := pickAnyAlive(alive)
	deadline := time.Now().Add(30 * time.Second)
	for {
		badKey := ""
		for _, k := range keys {
			if got := countCopies(transport, cluster.Addrs(), k); got != expected {
				badKey = fmt.Sprintf("%s: %d copies, want %d", k, got, expected)
				break
			}
			owner, err := anyNode.ownerOf(k)
			if err != nil {
				badKey = fmt.Sprintf("%s: routing failed: %v", k, err)
				break
			}
			resp, err := transport.Call(owner, Message{Op: OpGet, Key: k})
			if err != nil || len(resp.Entries) == 0 {
				badKey = fmt.Sprintf("%s: owner %s holds no copy", k, owner)
				break
			}
		}
		if badKey == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica sets did not converge: %s", badKey)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
