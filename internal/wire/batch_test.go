package wire

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// startBatchRing boots a converged ring over MemTransport and returns
// its cluster. replication 0 keeps per-node state deterministic for
// exact-count assertions.
func startBatchRing(t *testing.T, n, replication int) (*Cluster, []*Node, Transport) {
	t.Helper()
	mt := NewMemTransport()
	cluster := NewCluster(NewRetryingTransport(mt, RetryPolicy{}), 11, replication)
	var nodes []*Node
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	var bootstrap string
	for i := 0; i < n; i++ {
		nd, err := Start(Config{
			Transport:         mt,
			Addr:              "mem:0",
			StabilizeInterval: 10 * time.Millisecond,
			ReplicationFactor: replication,
		})
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes = append(nodes, nd)
		if bootstrap == "" {
			bootstrap = nd.Addr()
		} else if err := nd.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		cluster.Track(nd.Addr())
	}
	if err := cluster.WaitConverged(20 * time.Second); err != nil {
		t.Fatalf("ring never converged: %v", err)
	}
	return cluster, nodes, mt
}

// batchItems builds n distinct (key, entry) items, with every key
// repeated rep times under distinct entries.
func batchItems(prefix string, n, rep int) []overlay.KeyEntry {
	var items []overlay.KeyEntry
	for i := 0; i < n; i++ {
		key := keyspace.NewKey(fmt.Sprintf("%s-%d", prefix, i))
		for r := 0; r < rep; r++ {
			items = append(items, overlay.KeyEntry{
				Key:   key,
				Entry: overlay.Entry{Kind: "index", Value: fmt.Sprintf("v%d-%d", i, r)},
			})
		}
	}
	return items
}

// TestClusterPutBatchRoundTrip batches a mixed put across the ring and
// reads every entry back through routed Gets, then removes the batch and
// verifies the removed count and the empty read-back.
func TestClusterPutBatchRoundTrip(t *testing.T) {
	cluster, _, _ := startBatchRing(t, 5, 0)
	items := batchItems("batch-rt", 12, 2)

	if err := cluster.PutBatch(context.Background(), items); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i := 0; i < 12; i++ {
		key := keyspace.NewKey(fmt.Sprintf("batch-rt-%d", i))
		entries, _, err := cluster.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(entries) != 2 {
			t.Fatalf("key %d: got %d entries, want 2: %v", i, len(entries), entries)
		}
	}

	// Idempotency: re-putting the same batch must not duplicate entries.
	if err := cluster.PutBatch(context.Background(), items); err != nil {
		t.Fatalf("PutBatch again: %v", err)
	}
	entries, _, err := cluster.Get(keyspace.NewKey("batch-rt-0"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("after re-put: entries=%v err=%v, want exactly 2", entries, err)
	}

	removed, err := cluster.RemoveBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("RemoveBatch: %v", err)
	}
	if removed != len(items) {
		t.Fatalf("removed %d, want %d", removed, len(items))
	}
	for i := 0; i < 12; i++ {
		key := keyspace.NewKey(fmt.Sprintf("batch-rt-%d", i))
		entries, _, err := cluster.Get(key)
		if err != nil {
			t.Fatalf("get after remove %d: %v", i, err)
		}
		if len(entries) != 0 {
			t.Fatalf("key %d still has %v after RemoveBatch", i, entries)
		}
	}
}

// TestClusterPutBatchReplicates runs a replicated ring and verifies a
// batched put settles at the full replica count for every key — the
// OpPutBatch handler must fan the whole KV out to its successor set.
func TestClusterPutBatchReplicates(t *testing.T) {
	const replication = 1
	cluster, _, mt := startBatchRing(t, 4, replication)
	items := batchItems("batch-repl", 8, 1)
	if err := cluster.PutBatch(context.Background(), items); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, it := range items {
		for {
			if got := countCopies(mt, cluster.Addrs(), it.Key); got >= replication+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %v never reached %d copies", it.Key, replication+1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestPutBatchForwardsMisrouted drives a batch through a cluster handle
// whose membership view is maximally stale — it tracks a single ring
// member — so every key's presumed owner is that one node, and the
// node's handler must forward the foreign keys through real Chord
// routing. A fully-informed cluster then reads every key back through
// routed Gets, proving the entries landed at their true owners.
func TestPutBatchForwardsMisrouted(t *testing.T) {
	full, nodes, _ := startBatchRing(t, 5, 0)
	stale := NewCluster(nodes[0].cfg.Transport, 7, 0)
	stale.Track(nodes[0].Addr())

	items := batchItems("batch-fwd", 10, 1)
	if err := stale.PutBatch(context.Background(), items); err != nil {
		t.Fatalf("PutBatch via stale cluster: %v", err)
	}
	for i := 0; i < 10; i++ {
		key := keyspace.NewKey(fmt.Sprintf("batch-fwd-%d", i))
		entries, _, err := full.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d: got %d entries, want 1 (forwarding lost or duplicated it): %v",
				i, len(entries), entries)
		}
	}

	removed, err := stale.RemoveBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("RemoveBatch via stale cluster: %v", err)
	}
	if removed != len(items) {
		t.Fatalf("removed %d, want %d (forwarded counts must sum)", removed, len(items))
	}
}

// TestPutBatchFallbackOnDeadPresumedOwner tracks a phantom member that
// owns a slice of the ring but answers nothing: groups presumed to it
// must fall back to Chord-routed resolution through the live entry
// points and still land every entry.
func TestPutBatchFallbackOnDeadPresumedOwner(t *testing.T) {
	cluster, _, _ := startBatchRing(t, 4, 0)
	// A tracked address nobody listens on: presumed owner for every key
	// in its arc, unreachable for every call.
	cluster.Track("mem:dead-phantom")
	defer cluster.Untrack("mem:dead-phantom")

	items := batchItems("batch-fb", 16, 1)
	if err := cluster.PutBatch(context.Background(), items); err != nil {
		t.Fatalf("PutBatch with dead presumed owner: %v", err)
	}
	cluster.Untrack("mem:dead-phantom")
	for i := 0; i < 16; i++ {
		key := keyspace.NewKey(fmt.Sprintf("batch-fb-%d", i))
		entries, _, err := cluster.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d: got %d entries, want 1: %v", i, len(entries), entries)
		}
	}
}

// TestRemoveBatchReportsCount verifies the removed-count plumbing: a
// batch that removes a mix of present and absent entries reports exactly
// the present ones.
func TestRemoveBatchReportsCount(t *testing.T) {
	cluster, _, _ := startBatchRing(t, 3, 0)
	present := batchItems("rm-count", 5, 1)
	if err := cluster.PutBatch(context.Background(), present); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	absent := batchItems("rm-count-missing", 3, 1)
	removed, err := cluster.RemoveBatch(context.Background(), append(present, absent...))
	if err != nil {
		t.Fatalf("RemoveBatch: %v", err)
	}
	if removed != len(present) {
		t.Fatalf("removed = %d, want %d (absent entries must not count)", removed, len(present))
	}
}
