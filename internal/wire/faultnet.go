package wire

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dhtindex/internal/telemetry"
)

// FaultRule describes the fault mix injected into a class of messages.
// The zero rule injects nothing.
type FaultRule struct {
	// DropProb is the probability a message is lost. A dropped message
	// surfaces to the caller as ErrUnreachable; with probability ½ the
	// request is lost before the handler runs, otherwise the response is
	// lost after it (so the side effect happened — exactly the ambiguity
	// real networks force retry logic to cope with).
	DropProb float64
	// Latency is the extra round-trip delay injected when a latency
	// fault fires, split evenly across the request and response legs.
	Latency time.Duration
	// LatencyProb is the probability Latency is injected. If Latency > 0
	// and LatencyProb == 0, every message is delayed.
	LatencyProb float64
}

func (r FaultRule) active() bool {
	return r.DropProb > 0 || r.Latency > 0
}

// latProb normalizes the "Latency set but LatencyProb zero" shorthand.
func (r FaultRule) latProb() float64 {
	if r.Latency <= 0 {
		return 0
	}
	if r.LatencyProb == 0 {
		return 1
	}
	return r.LatencyProb
}

// FaultStats counts the faults a FaultTransport injected. Every counter
// is observable so a soak run can prove its schedule actually fired.
type FaultStats struct {
	// Calls is the number of messages that entered the fault layer.
	Calls int64
	// DroppedRequests were lost before reaching the handler.
	DroppedRequests int64
	// DroppedResponses were lost after the handler ran.
	DroppedResponses int64
	// Delayed counts messages that had latency injected.
	Delayed int64
	// DelayTotal is the summed injected latency.
	DelayTotal time.Duration
	// PartitionBlocked counts messages refused by an active partition.
	PartitionBlocked int64
	// CrashBlocked counts messages to or from a crashed address.
	CrashBlocked int64
	// PartitionEvents counts partition episodes started (Partition,
	// PartitionOneWay and PartitionGroups calls).
	PartitionEvents int64
	// LinksCut counts directed links newly blocked by partitions.
	LinksCut int64
	// HealEvents counts heal operations (Heal and HealLink calls).
	HealEvents int64
	// LinksHealed counts directed links unblocked by heals.
	LinksHealed int64
}

// link is a directed src→dst edge ("" src means an external client).
type link struct{ from, to string }

// FaultTransport wraps any Transport and injects seeded, deterministic
// faults: message drops, latency, asymmetric partitions and crash-stop
// blackholes, with per-op and per-link rule overrides. It is the chaos
// half of the wire layer's failure model; RetryingTransport is the
// recovery half.
//
// Source attribution: the FaultTransport itself implements Transport
// with an anonymous ("") source, which is all destination-only faults
// need. Per-link rules and partitions need to know who is calling, so
// each node should listen and call through its own Endpoint() view —
// the view learns its address from Listen and stamps outgoing calls
// with it.
type FaultTransport struct {
	inner Transport

	mu      sync.Mutex
	rng     *rand.Rand
	def     FaultRule
	perOp   map[Op]FaultRule
	perLink map[link]FaultRule
	crashed map[string]bool
	blocked map[link]bool
	stats   FaultStats
}

// NewFaultTransport wraps inner with a fault layer seeded for
// reproducible fault schedules. No faults are injected until a rule is
// set (SetDefaultRule / SetOpRule / SetLinkRule / Partition / Crash).
func NewFaultTransport(inner Transport, seed int64) *FaultTransport {
	return &FaultTransport{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		perOp:   make(map[Op]FaultRule),
		perLink: make(map[link]FaultRule),
		crashed: make(map[string]bool),
		blocked: make(map[link]bool),
	}
}

// SetDefaultRule sets the fault mix applied to every message that has no
// more specific per-link or per-op rule.
func (f *FaultTransport) SetDefaultRule(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def = r
}

// SetOpRule overrides the default rule for one protocol operation.
func (f *FaultTransport) SetOpRule(op Op, r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perOp[op] = r
}

// ClearOpRule removes a per-op override.
func (f *FaultTransport) ClearOpRule(op Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.perOp, op)
}

// SetLinkRule overrides the rule for the directed edge from→to. Rules
// resolve most-specific-first: link, then op, then default. A from of ""
// matches calls made through the FaultTransport itself (clients).
func (f *FaultTransport) SetLinkRule(from, to string, r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perLink[link{from, to}] = r
}

// Partition blocks traffic between a and b in both directions until
// healed.
func (f *FaultTransport) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.PartitionEvents++
	f.blockLocked(a, b)
	f.blockLocked(b, a)
}

// PartitionOneWay blocks only from→to, modelling an asymmetric fault
// (from's messages vanish; to can still reach from).
func (f *FaultTransport) PartitionOneWay(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.PartitionEvents++
	f.blockLocked(from, to)
}

// PartitionGroups cuts the network into the given node groups: every
// link between members of two different groups is blocked in both
// directions, while links within a group — and to addresses in no
// group, such as anonymous clients — stay up. This is the true
// split-brain schedule: each side keeps stabilizing into its own ring
// and serving its own clients. Implemented on the same per-link blocked
// set as Partition, so HealLink and Heal apply unchanged.
func (f *FaultTransport) PartitionGroups(sides ...[]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.PartitionEvents++
	for i := range sides {
		for j := i + 1; j < len(sides); j++ {
			for _, a := range sides[i] {
				for _, b := range sides[j] {
					f.blockLocked(a, b)
					f.blockLocked(b, a)
				}
			}
		}
	}
}

// blockLocked blocks one directed link, counting it only when it was
// not already cut. Callers hold f.mu.
func (f *FaultTransport) blockLocked(from, to string) {
	if !f.blocked[link{from, to}] {
		f.blocked[link{from, to}] = true
		f.stats.LinksCut++
	}
}

// Heal removes every active partition.
func (f *FaultTransport) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.HealEvents++
	f.stats.LinksHealed += int64(len(f.blocked))
	f.blocked = make(map[link]bool)
}

// HealLink restores the single pair a↔b (both directions), leaving
// every other partition in place — the targeted counterpart of Heal for
// schedules that mend a split one link at a time.
func (f *FaultTransport) HealLink(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.HealEvents++
	for _, l := range []link{{a, b}, {b, a}} {
		if f.blocked[l] {
			delete(f.blocked, l)
			f.stats.LinksHealed++
		}
	}
}

// Crash blackholes an address: every message to or from it is refused
// until Restore. The process behind the address keeps running — this is
// the network's view of a crash-stop, so a test can separate "dead" from
// "merely unreachable".
func (f *FaultTransport) Crash(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[addr] = true
}

// Restore lifts a Crash.
func (f *FaultTransport) Restore(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, addr)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Instrument exports the injected-fault counters on reg via the
// collector pattern: the series read Stats() at snapshot time, so the
// existing mutex-guarded struct needs no restructuring.
func (f *FaultTransport) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("wire_fault_calls_total",
		"Messages that entered the fault layer.",
		func() float64 { return float64(f.Stats().Calls) })
	reg.CounterFunc("wire_fault_dropped_requests_total",
		"Messages lost before reaching the handler.",
		func() float64 { return float64(f.Stats().DroppedRequests) })
	reg.CounterFunc("wire_fault_dropped_responses_total",
		"Messages lost after the handler ran.",
		func() float64 { return float64(f.Stats().DroppedResponses) })
	reg.CounterFunc("wire_fault_delayed_total",
		"Messages that had latency injected.",
		func() float64 { return float64(f.Stats().Delayed) })
	reg.CounterFunc("wire_fault_delay_micros_total",
		"Summed injected latency, in microseconds.",
		func() float64 { return float64(f.Stats().DelayTotal.Microseconds()) })
	reg.CounterFunc("wire_fault_partition_blocked_total",
		"Messages refused by an active partition.",
		func() float64 { return float64(f.Stats().PartitionBlocked) })
	reg.CounterFunc("wire_fault_crash_blocked_total",
		"Messages to or from a crashed address.",
		func() float64 { return float64(f.Stats().CrashBlocked) })
	reg.CounterFunc("wire_partition_events_total",
		"Partition episodes started (Partition/PartitionOneWay/PartitionGroups).",
		func() float64 { return float64(f.Stats().PartitionEvents) })
	reg.CounterFunc("wire_partition_links_cut_total",
		"Directed links newly blocked by partitions.",
		func() float64 { return float64(f.Stats().LinksCut) })
	reg.CounterFunc("wire_partition_heal_events_total",
		"Heal operations applied (Heal/HealLink).",
		func() float64 { return float64(f.Stats().HealEvents) })
	reg.CounterFunc("wire_partition_links_healed_total",
		"Directed links unblocked by heals.",
		func() float64 { return float64(f.Stats().LinksHealed) })
}

// Listen implements Transport (anonymous view).
func (f *FaultTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	return f.inner.Listen(addr, handler)
}

// Call implements Transport (anonymous source "").
func (f *FaultTransport) Call(addr string, req Message) (Message, error) {
	return f.call(nil, "", addr, req)
}

// CallCtx passes the caller's context through the fault layer so a
// deadline set above it still reaches a ctx-aware inner transport (e.g.
// the TCP pool's connection wait).
func (f *FaultTransport) CallCtx(ctx context.Context, addr string, req Message) (Message, error) {
	return f.call(ctx, "", addr, req)
}

// Endpoint returns a Transport view that attributes its traffic to the
// address it listens on, enabling per-link rules and partitions. Give
// each node its own endpoint:
//
//	ft := NewFaultTransport(NewMemTransport(), seed)
//	n, _ := Start(Config{Transport: ft.Endpoint(), Addr: "mem:0"})
func (f *FaultTransport) Endpoint() Transport {
	return &faultEndpoint{f: f}
}

type faultEndpoint struct {
	f  *FaultTransport
	mu sync.Mutex
	// local is the first address bound through this endpoint; it becomes
	// the source of every call made through it.
	local string
}

func (e *faultEndpoint) Listen(addr string, handler Handler) (string, io.Closer, error) {
	actual, closer, err := e.f.inner.Listen(addr, handler)
	if err != nil {
		return actual, closer, err
	}
	e.mu.Lock()
	if e.local == "" {
		e.local = actual
	}
	e.mu.Unlock()
	return actual, closer, nil
}

func (e *faultEndpoint) Call(addr string, req Message) (Message, error) {
	e.mu.Lock()
	src := e.local
	e.mu.Unlock()
	return e.f.call(nil, src, addr, req)
}

// CallCtx is Call with the caller's context threaded through to a
// ctx-aware inner transport.
func (e *faultEndpoint) CallCtx(ctx context.Context, addr string, req Message) (Message, error) {
	e.mu.Lock()
	src := e.local
	e.mu.Unlock()
	return e.f.call(ctx, src, addr, req)
}

// verdict is one seeded fault decision, taken under the lock so the
// sequence of decisions is a pure function of the seed and the message
// order.
type verdict struct {
	blocked  error
	dropReq  bool
	dropResp bool
	delay    time.Duration
}

func (f *FaultTransport) decide(src, dst string, op Op) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Calls++
	if f.crashed[src] || f.crashed[dst] {
		f.stats.CrashBlocked++
		return verdict{blocked: fmt.Errorf("%w: %s (crashed)", ErrUnreachable, dst)}
	}
	if f.blocked[link{src, dst}] {
		f.stats.PartitionBlocked++
		return verdict{blocked: fmt.Errorf("%w: %s (partitioned from %s)", ErrUnreachable, dst, src)}
	}
	rule, ok := f.perLink[link{src, dst}]
	if !ok {
		rule, ok = f.perOp[op]
	}
	if !ok {
		rule = f.def
	}
	if !rule.active() {
		return verdict{}
	}
	var v verdict
	if rule.DropProb > 0 && f.rng.Float64() < rule.DropProb {
		if f.rng.Float64() < 0.5 {
			v.dropReq = true
			f.stats.DroppedRequests++
		} else {
			v.dropResp = true
			f.stats.DroppedResponses++
		}
	}
	if p := rule.latProb(); p > 0 && f.rng.Float64() < p {
		v.delay = rule.Latency
		f.stats.Delayed++
		f.stats.DelayTotal += rule.Latency
	}
	return v
}

func (f *FaultTransport) call(ctx context.Context, src, dst string, req Message) (Message, error) {
	v := f.decide(src, dst, req.Op)
	if v.blocked != nil {
		return Message{}, v.blocked
	}
	if v.delay > 0 {
		time.Sleep(v.delay / 2)
	}
	if v.dropReq {
		return Message{}, fmt.Errorf("%w: %s (request dropped)", ErrUnreachable, dst)
	}
	var resp Message
	var err error
	if cc, ok := f.inner.(ctxCaller); ok && ctx != nil {
		resp, err = cc.CallCtx(ctx, dst, req)
	} else {
		resp, err = f.inner.Call(dst, req)
	}
	if v.delay > 0 {
		time.Sleep(v.delay - v.delay/2)
	}
	if err != nil {
		return Message{}, err
	}
	if v.dropResp {
		return Message{}, fmt.Errorf("%w: %s (response dropped)", ErrUnreachable, dst)
	}
	return resp, nil
}
