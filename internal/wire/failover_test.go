package wire

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// startRingCfg boots count nodes with per-node config tweaks applied on
// top of the given base and waits for convergence.
func startRingCfg(t *testing.T, transport func() Transport, count int, base Config) (*Cluster, []*Node) {
	t.Helper()
	cluster := NewCluster(transport(), 1, base.ReplicationFactor)
	nodes := make([]*Node, 0, count)
	var bootstrap string
	for i := 0; i < count; i++ {
		cfg := base
		cfg.Transport = transport()
		cfg.Addr = "mem:0"
		n, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		t.Cleanup(n.Stop)
		if bootstrap == "" {
			bootstrap = n.Addr()
		} else if err := n.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
		cluster.Track(n.Addr())
		nodes = append(nodes, n)
	}
	if err := cluster.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return cluster, nodes
}

// TestLeaveHandsOffPastDeadSuccessor: when the immediate successor is
// unreachable at Leave time, the keys must flow to the next successor-
// list entry instead of dying with the hand-off (regression for the
// succs[0]-only hand-off).
func TestLeaveHandsOffPastDeadSuccessor(t *testing.T) {
	ft := NewFaultTransport(NewMemTransport(), 1)
	// A slow stabilize keeps the dead successor in the list during Leave.
	cluster, nodes := startRingCfg(t, ft.Endpoint, 5, Config{
		StabilizeInterval: 500 * time.Millisecond,
	})
	for i := 0; i < 40; i++ {
		key := keyspace.NewKey(fmt.Sprintf("lh-%d", i))
		if _, err := cluster.Put(key, overlay.Entry{Kind: "d", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a leaver that owns keys and has a populated successor list.
	var leaver *Node
	deadline := time.Now().Add(15 * time.Second)
	for leaver == nil {
		for _, n := range nodes {
			if n.KeyCount() > 0 && len(n.Successors()) >= 2 {
				leaver = n
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no node with keys and a full successor list")
		}
		time.Sleep(10 * time.Millisecond)
	}
	succs := leaver.Successors()
	dead := succs[0]
	moved := leaver.KeyCount()

	// Blackhole the immediate successor, then leave at once.
	ft.Crash(dead)
	if err := leaver.Leave(); err != nil {
		t.Fatalf("leave with dead successor should fail over, got %v", err)
	}
	accepted := leaver.HandedOffTo()
	if accepted == "" {
		t.Fatal("no peer accepted the hand-off")
	}
	if accepted == dead {
		t.Fatalf("hand-off reported to the blackholed successor %s", dead)
	}
	// The accepting peer physically holds the keys.
	var acceptor *Node
	for _, n := range nodes {
		if n.Addr() == accepted {
			acceptor = n
		}
	}
	if acceptor == nil {
		t.Fatalf("hand-off went to an unknown peer %s", accepted)
	}
	if got := acceptor.KeyCount(); got < moved {
		t.Fatalf("acceptor holds %d keys, leaver moved %d", got, moved)
	}
}

// TestSuccessorListWipeHealsViaPredecessor: kill a node's ENTIRE
// successor list at once. The node must fall back to its live
// predecessor instead of collapsing to a one-node ring, and the ring
// must re-converge around the hole (regression for advanceSuccessor).
func TestSuccessorListWipeHealsViaPredecessor(t *testing.T) {
	transport := NewMemTransport()
	cluster, nodes := startRingCfg(t, func() Transport { return transport }, 8, Config{
		SuccListLen: 3,
	})
	byAddr := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byAddr[n.Addr()] = n
	}
	ring := cluster.Addrs() // ring order
	x := byAddr[ring[0]]

	// Wait for x's successor list to hold its three ring successors.
	want := []string{ring[1], ring[2], ring[3]}
	deadline := time.Now().Add(15 * time.Second)
	for {
		succs := x.Successors()
		if len(succs) >= 3 && succs[0] == want[0] && succs[1] == want[1] && succs[2] == want[2] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("successor list never filled: %v, want %v", x.Successors(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Watch for the failure mode: x believing it is alone.
	var collapsed atomic.Bool
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			if x.Successor() == x.Addr() {
				collapsed.Store(true)
				return
			}
			select {
			case <-time.After(time.Millisecond):
			case <-stopWatch:
				return
			}
		}
	}()

	// The whole successor list dies at once.
	for _, addr := range want {
		byAddr[addr].Stop()
		cluster.Untrack(addr)
	}
	if err := cluster.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("ring did not heal after losing a full successor list: %v", err)
	}
	if got, wantSucc := x.Successor(), ring[4]; got != wantSucc {
		t.Fatalf("x's successor = %s, want next live node %s", got, wantSucc)
	}
	close(stopWatch)
	<-watchDone
	if collapsed.Load() {
		t.Fatal("node collapsed to a one-node ring despite a live predecessor")
	}
}

// TestFailoverReadServedByReplica: crash the owner of a populated key in
// a replicated ring and read immediately — before stabilization can
// heal — so the entry must be served by a replica through the cluster's
// failover path (the live mirror of the simulation's FailoverReads).
func TestFailoverReadServedByReplica(t *testing.T) {
	transport := NewMemTransport()
	// A slow stabilize keeps the dead owner routed-to during the read.
	cluster, nodes := startRingCfg(t, func() Transport { return transport }, 5, Config{
		StabilizeInterval: 400 * time.Millisecond,
		ReplicationFactor: 2,
	})
	byAddr := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byAddr[n.Addr()] = n
	}
	key := keyspace.NewKey("failover-me")
	entry := overlay.Entry{Kind: "d", Value: "precious"}
	if _, err := cluster.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	route, err := cluster.FindOwner(key)
	if err != nil {
		t.Fatal(err)
	}
	owner := byAddr[route.Node]
	if owner == nil {
		t.Fatalf("owner %s not in ring", route.Node)
	}
	// Replication is synchronous on Put, but verify a replica holds the
	// entry before crashing the owner.
	replicas := owner.Successors()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := transport.Call(replicas[0], Message{Op: OpGet, Key: key})
		if err == nil && len(resp.Entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never received the entry", replicas[0])
		}
		time.Sleep(10 * time.Millisecond)
	}

	owner.Stop() // crash-stop: no hand-off, still tracked by the cluster

	entries, froute, err := cluster.Get(key)
	if err != nil {
		t.Fatalf("get after owner crash: %v", err)
	}
	if len(entries) != 1 || entries[0] != entry {
		t.Fatalf("replica served %v, want %v", entries, entry)
	}
	if froute.Node == route.Node {
		t.Fatalf("read claims to be served by the crashed owner %s", route.Node)
	}
	m := cluster.Metrics()
	if m.FailoverReads < 1 {
		t.Fatalf("FailoverReads = %d, want ≥ 1 (metrics: %+v)", m.FailoverReads, m)
	}
}
