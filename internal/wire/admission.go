package wire

import (
	"fmt"
	"sync/atomic"
	"time"

	"dhtindex/internal/telemetry"
)

// AdmissionConfig bounds the work a node accepts. A node with admission
// control sheds excess requests with a typed, non-retryable overload NACK
// (ErrOverload on the caller side) instead of queueing without bound: under
// sustained overload the queue would only add latency until every request
// times out — the classic collapse this layer exists to prevent.
//
// Three shedding mechanisms compose:
//
//   - Concurrency bound: at most MaxInflight requests execute at once; at
//     most MaxQueue more wait at most QueueTimeout for a slot.
//   - Deadline-aware shedding: once the node is saturated, a queued
//     request whose remaining deadline budget (Message.BudgetMicros,
//     stamped by the retry layer) cannot cover the observed per-class
//     service time is NACKed instead of waiting — a slot it wins would
//     only produce an answer the caller has already abandoned. The check
//     engages only past saturation: on an unsaturated node the estimate
//     (inflated by queue waits during the last burst) would shed healthy
//     traffic from idle slots.
//   - Priority classes: when all slots are busy, low-priority traffic is
//     shed immediately instead of queueing, so it never starves the
//     high-priority class. By default maintenance RPCs (ping, notify,
//     stabilize queries, repair, transfers) yield to client operations;
//     MaintenanceFirst flips the classes for rings that prioritize healing
//     over serving.
type AdmissionConfig struct {
	// MaxInflight is the maximum number of concurrently executing
	// requests (default 64).
	MaxInflight int
	// MaxQueue is the maximum number of requests waiting for an inflight
	// slot (default 128). Arrivals beyond it are shed with reason
	// "queue_full".
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed with reason "queue_timeout" (default 250ms).
	QueueTimeout time.Duration
	// MaintenanceFirst inverts the priority classes: maintenance traffic
	// (stabilize, repair, transfers) queues and client operations are
	// shed when the node is saturated. Default false: clients first.
	MaintenanceFirst bool
	// EWMAAlpha weights the exponentially-weighted moving average of
	// per-class service time used for deadline-aware shedding, in (0, 1]
	// (default 0.2). Higher values track load shifts faster.
	EWMAAlpha float64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 250 * time.Millisecond
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.2
	}
	return c
}

// Shed reasons reported in AdmissionStats and the wire_shed_total metric.
const (
	// ShedQueueFull: the pending queue was at MaxQueue.
	ShedQueueFull = "queue_full"
	// ShedQueueTimeout: a queued request waited out QueueTimeout.
	ShedQueueTimeout = "queue_timeout"
	// ShedDeadline: the request's remaining budget could not cover the
	// observed service time.
	ShedDeadline = "deadline"
	// ShedPriority: all slots busy and the request was low-priority.
	ShedPriority = "priority"
)

// admissionClass partitions ops for priority scheduling.
type admissionClass int

const (
	classClient admissionClass = iota
	classMaintenance
	numClasses
)

// classOf assigns each op to a priority class. Maintenance covers the
// background protocol traffic a node generates on its own schedule;
// everything a client waits on is classClient.
func classOf(op Op) admissionClass {
	switch op {
	case OpPing, OpNotify, OpGetPredecessor, OpGetSuccessor, OpRepairSync, OpTransfer, OpStats, OpLeave:
		return classMaintenance
	default:
		return classClient
	}
}

// admission is the per-node admission controller. It wraps the node's
// handler: requests acquire an inflight slot (possibly waiting, bounded)
// or are NACKed with CodeOverload.
type admission struct {
	cfg   AdmissionConfig
	slots chan struct{}
	queue atomic.Int64

	admitted atomic.Int64
	waited   atomic.Int64
	sheds    [numShedReasons]atomic.Int64

	// ewmaMicros[class] is the moving average service time, in
	// microseconds, used for deadline-aware shedding. 0 = no samples yet.
	ewmaMicros [numClasses]atomic.Int64

	shedCounters [numShedReasons]*telemetry.Counter
}

// shed reason indices for the counter array.
const (
	shedIdxQueueFull = iota
	shedIdxQueueTimeout
	shedIdxDeadline
	shedIdxPriority
	numShedReasons
)

var shedReasonNames = [numShedReasons]string{
	ShedQueueFull, ShedQueueTimeout, ShedDeadline, ShedPriority,
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	a := &admission{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInflight),
	}
	for i, reason := range shedReasonNames {
		a.shedCounters[i] = telemetry.NewCounter("wire_shed_total",
			"Requests shed by admission control, by reason.",
			telemetry.L("reason", reason))
	}
	return a
}

// wrap returns a Handler that applies admission control before inner.
func (a *admission) wrap(inner Handler) Handler {
	return func(req Message) Message {
		reason, ok := a.acquire(req)
		if !ok {
			return overloadResponse(req, reason)
		}
		start := time.Now()
		resp := inner(req)
		a.release(classOf(req.Op), time.Since(start))
		return resp
	}
}

// acquire claims an inflight slot or reports the shed reason.
func (a *admission) acquire(req Message) (reason string, ok bool) {
	class := classOf(req.Op)

	// Fast path: a free slot. An unsaturated node never sheds — even a
	// request whose deadline looks hopeless only wastes a slot nobody
	// else wanted, whereas shedding it on an EWMA estimate (inflated by
	// queue waits and nested routing during the last burst) turns one
	// congestion episode into a self-sustaining shed spiral.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return "", true
	default:
	}

	// Saturated. The low-priority class never queues: shedding it
	// immediately keeps the whole queue budget for the class the operator
	// chose to protect.
	low := class == classMaintenance
	if a.cfg.MaintenanceFirst {
		low = class == classClient
	}
	if low {
		a.shed(shedIdxPriority)
		return ShedPriority, false
	}

	if a.queue.Add(1) > int64(a.cfg.MaxQueue) {
		a.queue.Add(-1)
		a.shed(shedIdxQueueFull)
		return ShedQueueFull, false
	}
	defer a.queue.Add(-1)

	// Bound the wait by both the queue timeout and, when the caller sent
	// a budget, the slack it has left after the expected service time.
	wait := a.cfg.QueueTimeout
	expect := a.ewmaMicros[class].Load()
	if req.BudgetMicros > 0 {
		slack := time.Duration(req.BudgetMicros-expect) * time.Microsecond
		if slack <= 0 {
			a.shed(shedIdxDeadline)
			return ShedDeadline, false
		}
		if slack < wait {
			wait = slack
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.waited.Add(1)
		return "", true
	case <-timer.C:
		a.shed(shedIdxQueueTimeout)
		return ShedQueueTimeout, false
	}
}

// release frees the slot and folds the service time into the class EWMA.
func (a *admission) release(class admissionClass, took time.Duration) {
	<-a.slots
	sample := took.Microseconds()
	if sample < 1 {
		sample = 1
	}
	for {
		old := a.ewmaMicros[class].Load()
		next := sample
		if old > 0 {
			next = old + int64(a.cfg.EWMAAlpha*float64(sample-old))
		}
		if a.ewmaMicros[class].CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *admission) shed(idx int) {
	a.sheds[idx].Add(1)
	a.shedCounters[idx].Inc()
}

// overloadResponse builds the typed NACK for a shed request.
func overloadResponse(req Message, reason string) Message {
	return Message{
		Op:   req.Op,
		Code: CodeOverload,
		Err:  fmt.Sprintf("admission shed (%s)", reason),
	}
}

// instrument attaches the shed counters and load gauges to reg.
func (a *admission) instrument(reg *telemetry.Registry) {
	for _, c := range a.shedCounters {
		reg.Attach(c)
	}
	reg.CounterFunc("wire_admitted_total",
		"Requests admitted past admission control.",
		func() float64 { return float64(a.admitted.Load()) })
	reg.GaugeFunc("wire_inflight",
		"Requests currently executing on the node.",
		func() float64 { return float64(len(a.slots)) })
	reg.GaugeFunc("wire_queue_depth",
		"Requests waiting for an inflight slot.",
		func() float64 { return float64(a.queue.Load()) })
}

// AdmissionStats is a point-in-time snapshot of a node's admission
// controller.
type AdmissionStats struct {
	// Admitted counts requests that acquired a slot.
	Admitted int64
	// Waited counts admitted requests that had to queue first.
	Waited int64
	// ShedQueueFull counts sheds with reason "queue_full".
	ShedQueueFull int64
	// ShedQueueTimeout counts sheds with reason "queue_timeout".
	ShedQueueTimeout int64
	// ShedDeadline counts sheds with reason "deadline".
	ShedDeadline int64
	// ShedPriority counts sheds with reason "priority".
	ShedPriority int64
	// Inflight is the number of requests executing right now.
	Inflight int
	// QueueDepth is the number of requests waiting right now.
	QueueDepth int
}

// Shed returns the total sheds across all reasons.
func (s AdmissionStats) Shed() int64 {
	return s.ShedQueueFull + s.ShedQueueTimeout + s.ShedDeadline + s.ShedPriority
}

// Merge accumulates another snapshot into s (for fleet-wide totals). The
// point-in-time gauges (Inflight, QueueDepth) sum across nodes.
func (s *AdmissionStats) Merge(o AdmissionStats) {
	s.Admitted += o.Admitted
	s.Waited += o.Waited
	s.ShedQueueFull += o.ShedQueueFull
	s.ShedQueueTimeout += o.ShedQueueTimeout
	s.ShedDeadline += o.ShedDeadline
	s.ShedPriority += o.ShedPriority
	s.Inflight += o.Inflight
	s.QueueDepth += o.QueueDepth
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Admitted:         a.admitted.Load(),
		Waited:           a.waited.Load(),
		ShedQueueFull:    a.sheds[shedIdxQueueFull].Load(),
		ShedQueueTimeout: a.sheds[shedIdxQueueTimeout].Load(),
		ShedDeadline:     a.sheds[shedIdxDeadline].Load(),
		ShedPriority:     a.sheds[shedIdxPriority].Load(),
		Inflight:         len(a.slots),
		QueueDepth:       int(a.queue.Load()),
	}
}
