package wire

import (
	"fmt"
	"io"
	"sync"
)

// MemTransport is an in-process transport: calls dispatch directly to the
// registered handler. It gives tests real message-passing semantics (no
// shared state between nodes except the messages) without network
// flakiness.
type MemTransport struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	nextPort int
}

// NewMemTransport creates an empty in-memory transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{handlers: make(map[string]Handler)}
}

// Listen implements Transport.
func (t *MemTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" || addr == "mem:0" {
		t.nextPort++
		addr = fmt.Sprintf("mem-%04d", t.nextPort)
	}
	if _, ok := t.handlers[addr]; ok {
		return "", nil, fmt.Errorf("wire: address %s already bound", addr)
	}
	t.handlers[addr] = handler
	return addr, memCloser{t: t, addr: addr}, nil
}

// Call implements Transport.
func (t *MemTransport) Call(addr string, req Message) (Message, error) {
	t.mu.RLock()
	handler, ok := t.handlers[addr]
	t.mu.RUnlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	resp := handler(req)
	return resp, nil
}

type memCloser struct {
	t    *MemTransport
	addr string
}

func (c memCloser) Close() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	delete(c.t.handlers, c.addr)
	return nil
}
