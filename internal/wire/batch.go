package wire

// Batched cluster mutations: the client half of OpPutBatch /
// OpRemoveBatch. A batch folds duplicate keys, computes each key's
// PRESUMED owner locally from the cluster's ring-ordered member list —
// zero routing RPCs — and ships each owner ONE batched message, so
// publishing a descriptor with a dozen index mappings costs a handful
// of messages instead of a dozen routed put rounds (two RPCs each).
// Staleness is handled on both ends: a receiving node forwards keys it
// does not own through real Chord routing (handlePutBatch), and a
// presumed owner that cannot serve at all makes the client fall back to
// Chord-routed owner resolution for just that group.

import (
	"context"
	"fmt"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// defaultBatchParallelism bounds the concurrent per-owner batch RPCs
// (and fallback owner resolutions) when Cluster.BatchParallelism is
// unset.
const defaultBatchParallelism = 4

var _ overlay.BatchNetwork = (*Cluster)(nil)

// batchParallelism resolves the fan-out bound.
func (c *Cluster) batchParallelism() int {
	if c.BatchParallelism > 0 {
		return c.BatchParallelism
	}
	return defaultBatchParallelism
}

// PutBatch implements overlay.BatchNetwork: it stores every item,
// grouping by presumed owner so each responsible node receives one
// OpPutBatch. Batched puts are idempotent end to end — the retry layer
// retries a NACKed or lost batch, and a failed call here may be retried
// whole.
func (c *Cluster) PutBatch(ctx context.Context, items []overlay.KeyEntry) error {
	groups, err := c.groupPresumed(items)
	if err != nil || len(groups) == 0 {
		return err
	}
	c.batchPutRPCs.Add(int64(len(groups)))
	c.batchPutKeys.Add(int64(len(items)))
	return c.forEachOwner(groups, func(owner string, kv []KeyEntries) error {
		if err := c.putGroup(ctx, owner, kv); err == nil {
			return nil
		}
		// The presumed owner could not serve (crashed, or its view NACKed
		// the batch): resolve this group's keys through real Chord routing
		// and retry against the routed owners.
		c.batchFallbacks.Inc()
		regroups, rerr := c.groupRouted(ctx, kv)
		if rerr != nil {
			return rerr
		}
		return c.forEachOwner(regroups, func(owner string, kv []KeyEntries) error {
			return c.putGroup(ctx, owner, kv)
		})
	})
}

// putGroup ships one per-owner put batch.
func (c *Cluster) putGroup(ctx context.Context, owner string, kv []KeyEntries) error {
	resp, err := c.callCtx(ctx, owner, Message{Op: OpPutBatch, KV: kv, TTL: c.routeTTL()})
	if err != nil {
		return err
	}
	return remoteError(resp)
}

// RemoveBatch implements overlay.BatchNetwork: it deletes every item in
// per-owner batches and sweeps each owner's replica window with one
// batched OpRemoveReplica, mirroring Remove's stale-copy sweep. The
// returned count is how many entries the ring actually removed.
func (c *Cluster) RemoveBatch(ctx context.Context, items []overlay.KeyEntry) (int, error) {
	groups, err := c.groupPresumed(items)
	if err != nil || len(groups) == 0 {
		return 0, err
	}
	c.batchRemoveRPCs.Add(int64(len(groups)))
	c.batchRemoveKeys.Add(int64(len(items)))
	var mu sync.Mutex
	removed := 0
	tally := func(n int) {
		mu.Lock()
		removed += n
		mu.Unlock()
	}
	err = c.forEachOwner(groups, func(owner string, kv []KeyEntries) error {
		if n, err := c.removeGroup(ctx, owner, kv); err == nil {
			tally(n)
			return nil
		}
		c.batchFallbacks.Inc()
		regroups, rerr := c.groupRouted(ctx, kv)
		if rerr != nil {
			return rerr
		}
		return c.forEachOwner(regroups, func(owner string, kv []KeyEntries) error {
			n, err := c.removeGroup(ctx, owner, kv)
			if err == nil {
				tally(n)
			}
			return err
		})
	})
	return removed, err
}

// removeGroup ships one per-owner remove batch and sweeps the tracked
// replica window of every key in it — post-churn stale copies may sit
// outside the owner's CURRENT successor set, exactly like Remove's
// sweep.
func (c *Cluster) removeGroup(ctx context.Context, owner string, kv []KeyEntries) (int, error) {
	resp, err := c.callCtx(ctx, owner, Message{Op: OpRemoveBatch, KV: kv, TTL: c.routeTTL()})
	if err != nil {
		return 0, err
	}
	if rerr := remoteError(resp); rerr != nil {
		return 0, rerr
	}
	for _, item := range kv {
		for _, cand := range c.replicaFollowers(item.Key, owner, c.replication) {
			_, _ = c.callCtx(ctx, cand, Message{Op: OpRemoveReplica, KV: []KeyEntries{item}})
		}
	}
	return resp.Keys, nil
}

// foldItems dedupes a batch into one KeyEntries per distinct key,
// preserving first-appearance order.
func foldItems(items []overlay.KeyEntry) []KeyEntries {
	idx := make(map[string]int, len(items))
	kv := make([]KeyEntries, 0, len(items))
	for _, it := range items {
		ks := it.Key.String()
		i, ok := idx[ks]
		if !ok {
			i = len(kv)
			idx[ks] = i
			kv = append(kv, KeyEntries{Key: it.Key})
		}
		kv[i].Entries = append(kv[i].Entries, it.Entry)
	}
	return kv
}

// groupPresumed folds the items and groups them by presumed owner — the
// first tracked member at or past each key in ring order, computed
// locally from the membership the cluster already maintains for replica
// failover. No RPC is spent: a stale presumption is corrected by the
// receiving node's forwarding (common case) or the caller's routed
// fallback (unreachable owner).
func (c *Cluster) groupPresumed(items []overlay.KeyEntry) (map[string][]KeyEntries, error) {
	if len(items) == 0 {
		return nil, nil
	}
	addrs := c.Addrs() // ring order
	if len(addrs) == 0 {
		return nil, fmt.Errorf("wire: cluster has no members")
	}
	groups := make(map[string][]KeyEntries)
	for _, item := range foldItems(items) {
		owner := presumedOwner(addrs, item.Key)
		groups[owner] = append(groups[owner], item)
	}
	return groups, nil
}

// presumedOwner returns the first member at or past key in ring order
// (wrapping), assuming addrs is sorted by ring position.
func presumedOwner(addrs []string, key keyspace.Key) string {
	lo, hi := 0, len(addrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if idOf(addrs[mid]).Cmp(key) >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(addrs) {
		lo = 0
	}
	return addrs[lo]
}

// groupRouted regroups a KV set by Chord-routed owner: one bounded
// parallel FindOwner per key. This is the batch fallback path — and the
// original batch routing strategy, kept for when the presumed owner
// cannot serve. The first resolution error fails the batch: callers
// retry whole (puts are idempotent) or at a higher level.
func (c *Cluster) groupRouted(ctx context.Context, kv []KeyEntries) (map[string][]KeyEntries, error) {
	owners := make([]string, len(kv))
	errs := make([]error, len(kv))
	sem := make(chan struct{}, c.batchParallelism())
	var wg sync.WaitGroup
	for i := range kv {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			route, err := c.FindOwnerCtx(ctx, kv[i].Key)
			if err != nil {
				errs[i] = err
				return
			}
			owners[i] = route.Node
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	groups := make(map[string][]KeyEntries)
	for i, item := range kv {
		groups[owners[i]] = append(groups[owners[i]], item)
	}
	return groups, nil
}

// forEachOwner runs fn for every owner group with bounded parallelism,
// returning the first error.
func (c *Cluster) forEachOwner(groups map[string][]KeyEntries, fn func(owner string, kv []KeyEntries) error) error {
	if len(groups) == 0 {
		return nil
	}
	sem := make(chan struct{}, c.batchParallelism())
	errs := make(chan error, len(groups))
	var wg sync.WaitGroup
	for owner, kv := range groups {
		wg.Add(1)
		go func(owner string, kv []KeyEntries) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs <- fn(owner, kv)
		}(owner, kv)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
