package wire

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// funcTransport scripts a peer's behaviour per call: fn receives the
// 1-based call number for addr and decides the outcome.
type funcTransport struct {
	mu    sync.Mutex
	calls map[string]int
	fn    func(n int, addr string, req Message) (Message, error)
}

func newFuncTransport(fn func(n int, addr string, req Message) (Message, error)) *funcTransport {
	return &funcTransport{calls: make(map[string]int), fn: fn}
}

func (f *funcTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	return addr, io.NopCloser(nil), nil
}

func (f *funcTransport) Call(addr string, req Message) (Message, error) {
	f.mu.Lock()
	f.calls[addr]++
	n := f.calls[addr]
	f.mu.Unlock()
	return f.fn(n, addr, req)
}

func (f *funcTransport) callCount(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[addr]
}

// overloadNACK is what a peer's admission control answers with.
func overloadNACK(req Message) (Message, error) {
	return overloadResponse(req, ShedQueueFull), nil
}

// TestOverloadNACKNotRetried: an overload NACK ends the call on the
// first attempt — retrying into a saturated peer would feed the overload
// the NACK exists to relieve.
func TestOverloadNACKNotRetried(t *testing.T) {
	inner := newFuncTransport(func(n int, addr string, req Message) (Message, error) {
		return overloadNACK(req)
	})
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Seed:        1,
	})
	_, err := rt.Call("hot", Message{Op: OpGet})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if got := inner.callCount("hot"); got != 1 {
		t.Fatalf("wire sends = %d, want 1 (NACKs are non-retryable)", got)
	}
	s := rt.Stats()
	if s.Overloads != 1 || s.Retries != 0 || s.GaveUp != 0 {
		t.Fatalf("stats = %+v, want Overloads=1 Retries=0 GaveUp=0", s)
	}
}

// TestRetryBudgetCapsRetryStorm: under total peer failure, the token
// bucket bounds retry amplification near 1× instead of MaxAttempts×.
func TestRetryBudgetCapsRetryStorm(t *testing.T) {
	inner := newFuncTransport(func(n int, addr string, req Message) (Message, error) {
		return Message{}, fmt.Errorf("%w: %s (down)", ErrUnreachable, addr)
	})
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		Seed:        1,
		Budget:      &RetryBudget{Ratio: 0.1, Burst: 2},
	})
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := rt.Call("down", Message{Op: OpGet}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: err = %v, want ErrUnreachable", i, err)
		}
	}
	s := rt.Stats()
	if s.BudgetExhausted == 0 {
		t.Fatalf("stats = %+v, want budget-suppressed retries", s)
	}
	// 2 banked tokens + 0.1 earned per call: at most 2 + 50×0.1 = 7
	// retries against 150 uncapped (50 calls × 3 re-sends each).
	if s.Retries > 7 {
		t.Fatalf("retries = %d, want <= 7 (budget must cap the storm)", s.Retries)
	}
	if amp := s.Amplification(); amp > 1.2 {
		t.Fatalf("amplification = %.2f, want ~1.0 under exhausted budget", amp)
	}
	if s.GaveUp != calls {
		t.Fatalf("gave up = %d, want %d", s.GaveUp, calls)
	}
}

// TestRetryBudgetRefillsOnFreshTraffic: successful fresh calls earn the
// tokens that let the next isolated failure retry again.
func TestRetryBudgetRefillsOnFreshTraffic(t *testing.T) {
	down := false
	var mu sync.Mutex
	inner := newFuncTransport(func(n int, addr string, req Message) (Message, error) {
		mu.Lock()
		defer mu.Unlock()
		if down {
			return Message{}, fmt.Errorf("%w: %s (down)", ErrUnreachable, addr)
		}
		return Message{Op: req.Op, Ok: true}, nil
	})
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		Seed:        1,
		Budget:      &RetryBudget{Ratio: 0.5, Burst: 1},
	})
	// Drain the bucket with failures, then refill it with healthy calls.
	mu.Lock()
	down = true
	mu.Unlock()
	for i := 0; i < 4; i++ {
		rt.Call("peer", Message{Op: OpGet})
	}
	drained := rt.Stats().BudgetExhausted
	if drained == 0 {
		t.Fatal("bucket never drained")
	}
	mu.Lock()
	down = false
	mu.Unlock()
	for i := 0; i < 4; i++ {
		if _, err := rt.Call("peer", Message{Op: OpGet}); err != nil {
			t.Fatalf("healthy call: %v", err)
		}
	}
	mu.Lock()
	down = true
	mu.Unlock()
	rt.Call("peer", Message{Op: OpGet})
	s := rt.Stats()
	if s.BudgetExhausted != drained {
		t.Fatalf("budget exhausted again (%d -> %d): fresh traffic earned no tokens", drained, s.BudgetExhausted)
	}
	if s.Retries == 0 {
		t.Fatal("no retry after refill: fresh traffic earned no tokens")
	}
}

// TestBreakerTracksOverloadApartFromUnreachable: overload NACKs trip the
// circuit on their own (higher) threshold and their own counter, and a
// connectivity failure resets the overload streak rather than adding to
// it — the two signals mean different things and get different responses.
func TestBreakerTracksOverloadApartFromUnreachable(t *testing.T) {
	shedding := true
	var mu sync.Mutex
	inner := newFuncTransport(func(n int, addr string, req Message) (Message, error) {
		mu.Lock()
		defer mu.Unlock()
		if shedding {
			return overloadNACK(req)
		}
		return Message{}, fmt.Errorf("%w: %s (down)", ErrUnreachable, addr)
	})
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 1,
		Seed:        1,
		Breaker: &BreakerPolicy{
			Threshold:         100, // connectivity can't trip in this test
			OverloadThreshold: 4,
			ProbeProb:         -1, // no random probes: deterministic
			Cooldown:          time.Hour,
			OverloadCooldown:  time.Hour,
			Seed:              1,
		},
	})

	// Three sheds: streak below threshold, circuit stays closed.
	for i := 0; i < 3; i++ {
		if _, err := rt.Call("hot", Message{Op: OpGet}); !errors.Is(err, ErrOverload) {
			t.Fatalf("shed %d: err = %v", i, err)
		}
	}
	// A connectivity blip resets the overload streak.
	mu.Lock()
	shedding = false
	mu.Unlock()
	rt.Call("hot", Message{Op: OpGet})
	mu.Lock()
	shedding = true
	mu.Unlock()
	for i := 0; i < 3; i++ {
		rt.Call("hot", Message{Op: OpGet})
	}
	if s := rt.BreakerStats(); s.OverloadTrips != 0 || s.Trips != 0 {
		t.Fatalf("stats after reset streak = %+v, want no trips yet", s)
	}
	// One more shed completes a fresh streak of 4: overload trip.
	rt.Call("hot", Message{Op: OpGet})
	s := rt.BreakerStats()
	if s.OverloadTrips != 1 || s.Trips != 0 || s.Open != 1 {
		t.Fatalf("stats = %+v, want OverloadTrips=1 Trips=0 Open=1", s)
	}
	// Open circuit fails fast without touching the wire.
	sends := inner.callCount("hot")
	if _, err := rt.Call("hot", Message{Op: OpGet}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if inner.callCount("hot") != sends {
		t.Fatal("open circuit still sent on the wire")
	}
	if s := rt.BreakerStats(); s.FastFails != 1 {
		t.Fatalf("stats = %+v, want FastFails=1", s)
	}
}

// TestBreakerOverloadRecoveryUnderLoad: a circuit opened by overload
// probes again after the (short) OverloadCooldown, closes on the first
// success, and sustained traffic then flows with no further fast-fails.
func TestBreakerOverloadRecoveryUnderLoad(t *testing.T) {
	shedding := true
	var mu sync.Mutex
	inner := newFuncTransport(func(n int, addr string, req Message) (Message, error) {
		mu.Lock()
		defer mu.Unlock()
		if shedding {
			return overloadNACK(req)
		}
		return Message{Op: req.Op, Ok: true}, nil
	})
	rt := NewRetryingTransport(inner, RetryPolicy{
		MaxAttempts: 1,
		Seed:        1,
		Breaker: &BreakerPolicy{
			Threshold:         100,
			OverloadThreshold: 3,
			ProbeProb:         -1,
			Cooldown:          time.Hour,
			OverloadCooldown:  20 * time.Millisecond,
			Seed:              1,
		},
	})
	for i := 0; i < 3; i++ {
		rt.Call("hot", Message{Op: OpGet})
	}
	if s := rt.BreakerStats(); s.OverloadTrips != 1 || s.Open != 1 {
		t.Fatalf("stats = %+v, want the circuit open on overload", s)
	}
	// The peer recovers; after the overload cooldown a probe must get
	// through and close the circuit.
	mu.Lock()
	shedding = false
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := rt.Call("hot", Message{Op: OpGet}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("circuit never probed closed: %+v", rt.BreakerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := rt.BreakerStats()
	if s.Closes != 1 || s.Open != 0 {
		t.Fatalf("stats = %+v, want Closes=1 Open=0", s)
	}
	// Sustained load after recovery: every call flows, no fast-fails.
	fastFails := s.FastFails
	for i := 0; i < 50; i++ {
		if _, err := rt.Call("hot", Message{Op: OpGet}); err != nil {
			t.Fatalf("post-recovery call %d: %v", i, err)
		}
	}
	if s := rt.BreakerStats(); s.FastFails != fastFails {
		t.Fatalf("fast fails grew after recovery: %+v", s)
	}
}

// TestOverloadedSuccessorNotAmputated: a successor that sheds stabilize
// traffic is alive — treating its NACKs as death would amputate the hot
// node, pile its keys onto neighbors, and make the hot spot worse.
func TestOverloadedSuccessorNotAmputated(t *testing.T) {
	transport := NewMemTransport()
	mk := func() *Node {
		n, err := Start(Config{
			Transport:         transport,
			Addr:              "mem:0",
			StabilizeInterval: time.Hour, // drive stabilize by hand
			SuccFailThreshold: 2,
			Retry:             &RetryPolicy{MaxAttempts: 1, Seed: 1},
			Admission:         &AdmissionConfig{MaxInflight: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		t.Cleanup(n.Stop)
		return n
	}
	a, b := mk(), mk()
	if err := b.Join(a.Addr()); err != nil {
		t.Fatalf("join: %v", err)
	}
	// Converge the two-node ring by hand.
	for i := 0; i < 4; i++ {
		a.stabilizeOnce()
		b.stabilizeOnce()
	}
	if a.Successor() != b.Addr() || b.Successor() != a.Addr() {
		t.Fatalf("ring not converged: a->%s b->%s", a.Successor(), b.Successor())
	}

	// Saturate b's single inflight slot directly, as a long-running
	// client op would, so its admission control sheds a's maintenance
	// traffic.
	b.admit.slots <- struct{}{}

	// Stabilize rounds well past SuccFailThreshold: every contact is
	// shed with ErrOverload, yet b must stay a's successor.
	for i := 0; i < 6; i++ {
		a.stabilizeOnce()
	}
	if b.AdmissionStats().ShedPriority == 0 {
		t.Fatal("b never shed a's stabilize traffic: the scenario did not engage")
	}
	if got := a.Successor(); got != b.Addr() {
		t.Fatalf("a amputated its overloaded successor: successor = %s, want %s", got, b.Addr())
	}

	// Once the hot op drains, stabilize proceeds normally again.
	<-b.admit.slots
	a.stabilizeOnce()
	if got := a.Successor(); got != b.Addr() {
		t.Fatalf("successor after recovery = %s, want %s", got, b.Addr())
	}
}
