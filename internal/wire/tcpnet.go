package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dhtindex/internal/telemetry"
)

// DefaultMaxMessageSize bounds a single encoded message on the wire
// (8 MiB). A corrupt or hostile peer can otherwise declare a huge
// payload and make the decoder allocate unboundedly.
const DefaultMaxMessageSize = 8 << 20

// DefaultMaxConnsPerPeer bounds the connection pool per peer. One
// connection pipelines arbitrarily many requests; extra connections
// exist only to spread head-of-line blocking under heavy concurrency.
const DefaultMaxConnsPerPeer = 4

// DefaultIdleTimeout reaps pooled connections that carried no frame for
// this long.
const DefaultIdleTimeout = 60 * time.Second

// TCPTransport moves messages over the length-prefixed framed protocol
// (see frame.go). By default calls go through a per-peer pool of
// persistent connections: multiple in-flight calls multiplex over one
// connection by request ID, gob codec sessions live as long as the
// connection (type descriptors are transmitted once instead of per
// call), idle connections are reaped, and dead ones are evicted back to
// redial. Set DisablePool for the legacy dial-per-call behaviour (one
// framed exchange per connection) — also the benchmark baseline.
type TCPTransport struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange (default 5s).
	CallTimeout time.Duration
	// CloseTimeout bounds how long a listener's Close waits for in-flight
	// requests to drain before force-closing stragglers (default 3s).
	CloseTimeout time.Duration
	// MaxMessageSize caps one frame's payload (default
	// DefaultMaxMessageSize). Enforced on the length prefix before any
	// allocation.
	MaxMessageSize int64
	// DisablePool reverts Call to dial-per-call: one fresh connection,
	// one framed exchange, close. The wire format is identical, so
	// pooled and unpooled endpoints interoperate.
	DisablePool bool
	// MaxConnsPerPeer bounds the pool per peer address (default
	// DefaultMaxConnsPerPeer).
	MaxConnsPerPeer int
	// IdleTimeout reaps pooled connections with no traffic (default
	// DefaultIdleTimeout). Server connections idle out on the same knob.
	IdleTimeout time.Duration
	// Codec selects the payload encoding negotiated on pooled
	// connections (default CodecBinary; see DESIGN.md §17). CodecGob
	// pins both roles to gob: outbound connections skip the handshake
	// and inbound handshakes are declined, giving the A/B baseline.
	Codec Codec

	// dropHandshake makes the server side close the connection instead
	// of answering an OpCodecSwitch frame, simulating a peer whose
	// handshake path fails at transport level (interop tests only).
	dropHandshake bool

	poolOnce sync.Once
	connPool *connPool

	metricsOnce sync.Once
	// Pool lifecycle counters (nil until first use; ensureMetrics).
	poolDials        *telemetry.Counter
	poolReuses       *telemetry.Counter
	poolEvictions    *telemetry.Counter
	poolIdleReaps    *telemetry.Counter
	respEncodeErrors *telemetry.Counter
	poolInFlight     *telemetry.Gauge
	codecBinaryConns *telemetry.Counter
	codecGobConns    *telemetry.Counter
	codecFallbacks   *telemetry.Counter

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// NewTCPTransport returns a pooled transport with default timeouts.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		DialTimeout:  2 * time.Second,
		CallTimeout:  5 * time.Second,
		CloseTimeout: 3 * time.Second,
	}
}

// PoolStats is a point-in-time snapshot of the transport's connection
// pool and wire traffic. The counters behind it are atomic; snapshots
// taken while the transport serves traffic are race-free.
type PoolStats struct {
	// Dials counts fresh connections established.
	Dials int64
	// Reuses counts Calls served by an already-pooled connection.
	Reuses int64
	// Evictions counts connections torn down on error or call timeout.
	Evictions int64
	// IdleReaps counts connections reaped after IdleTimeout of silence.
	IdleReaps int64
	// InFlight is the number of Calls currently awaiting a response.
	InFlight int64
	// Conns is the number of currently pooled connections.
	Conns int
	// BytesSent / BytesReceived count wire bytes including frame
	// headers, across pooled, dial-per-call and server-side traffic of
	// this transport instance.
	BytesSent     int64
	BytesReceived int64
}

// PoolStats returns a snapshot of the pool counters.
func (t *TCPTransport) PoolStats() PoolStats {
	t.ensureMetrics()
	return PoolStats{
		Dials:         t.poolDials.Value(),
		Reuses:        t.poolReuses.Value(),
		Evictions:     t.poolEvictions.Value(),
		IdleReaps:     t.poolIdleReaps.Value(),
		InFlight:      int64(t.poolInFlight.Value()),
		Conns:         len(t.pool().snapshot()),
		BytesSent:     t.bytesOut.Load(),
		BytesReceived: t.bytesIn.Load(),
	}
}

// Instrument attaches the transport's pool counters and gauges to reg.
func (t *TCPTransport) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.ensureMetrics()
	reg.Attach(t.poolDials, t.poolReuses, t.poolEvictions, t.poolIdleReaps,
		t.respEncodeErrors, t.poolInFlight,
		t.codecBinaryConns, t.codecGobConns, t.codecFallbacks)
	reg.GaugeFunc("wire_pool_conns",
		"Currently pooled persistent connections.",
		func() float64 { return float64(len(t.pool().snapshot())) })
}

// ensureMetrics lazily creates the counters so zero-value struct
// literals (tests) work without a constructor.
func (t *TCPTransport) ensureMetrics() {
	t.metricsOnce.Do(func() {
		t.poolDials = telemetry.NewCounter("wire_pool_dials_total",
			"Fresh TCP connections established by the pool (or dial-per-call mode).")
		t.poolReuses = telemetry.NewCounter("wire_pool_reuses_total",
			"Calls served over an already-pooled connection.")
		t.poolEvictions = telemetry.NewCounter("wire_pool_evictions_total",
			"Pooled connections torn down on error or call timeout.")
		t.poolIdleReaps = telemetry.NewCounter("wire_pool_idle_reaps_total",
			"Pooled connections reaped after the idle timeout.")
		t.respEncodeErrors = telemetry.NewCounter("wire_resp_encode_errors_total",
			"Server responses that failed to encode or send; the connection is closed so the client fails fast.")
		t.poolInFlight = telemetry.NewGauge("wire_pool_in_flight",
			"Calls currently awaiting a response over pooled connections.")
		t.codecBinaryConns = telemetry.NewCounter("wire_codec_binary_conns_total",
			"Connections switched to the compact binary codec (each end counts its own side).")
		t.codecGobConns = telemetry.NewCounter("wire_codec_gob_conns_total",
			"Pooled client connections left on gob: codec pinned to gob, or the peer declined the handshake.")
		t.codecFallbacks = telemetry.NewCounter("wire_codec_fallbacks_total",
			"Codec handshakes that failed at transport level; the dial was retried as a plain gob connection.")
	})
}

// codecChoice resolves the configured codec (CodecDefault → binary).
func (t *TCPTransport) codecChoice() Codec {
	if t.Codec == CodecGob {
		return CodecGob
	}
	return CodecBinary
}

// pool lazily creates the client connection pool.
func (t *TCPTransport) pool() *connPool {
	t.ensureMetrics()
	t.poolOnce.Do(func() { t.connPool = newConnPool(t) })
	return t.connPool
}

// Listen implements Transport: it binds a TCP listener (use "127.0.0.1:0"
// to pick a free port) and serves framed requests until closed.
func (t *TCPTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	t.ensureMetrics()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	srv := &tcpServer{
		t:            t,
		ln:           ln,
		handler:      handler,
		callTimeout:  t.callTimeout(),
		closeTimeout: t.closeTimeout(),
		idleTimeout:  t.poolIdleTimeout(),
		maxMsg:       t.maxMessageSize(),
		conns:        make(map[net.Conn]struct{}),
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return ln.Addr().String(), srv, nil
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCPTransport) callTimeout() time.Duration {
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return 5 * time.Second
}

func (t *TCPTransport) closeTimeout() time.Duration {
	if t.CloseTimeout > 0 {
		return t.CloseTimeout
	}
	return 3 * time.Second
}

func (t *TCPTransport) maxMessageSize() int64 {
	if t.MaxMessageSize > 0 {
		return t.MaxMessageSize
	}
	return DefaultMaxMessageSize
}

func (t *TCPTransport) maxConnsPerPeer() int {
	if t.MaxConnsPerPeer > 0 {
		return t.MaxConnsPerPeer
	}
	return DefaultMaxConnsPerPeer
}

func (t *TCPTransport) poolIdleTimeout() time.Duration {
	if t.IdleTimeout > 0 {
		return t.IdleTimeout
	}
	return DefaultIdleTimeout
}

// Call implements Transport: one request/response exchange over a
// pooled persistent connection (or a fresh one with DisablePool). A
// call timeout evicts the whole connection — its response stream can no
// longer be trusted to be prompt — and the retry layer above redials.
func (t *TCPTransport) Call(addr string, req Message) (Message, error) {
	return t.CallCtx(context.Background(), addr, req)
}

// CallCtx is Call with context awareness: a caller whose ctx is
// cancelled or past its deadline stops waiting — in the pool's
// connection-wait queue and in the response wait — instead of holding
// resources until the call timeout. The ctx does not cancel the wire
// exchange itself (an abandoned response is dropped by ID on arrival);
// it only releases this caller.
func (t *TCPTransport) CallCtx(ctx context.Context, addr string, req Message) (Message, error) {
	t.ensureMetrics()
	if t.DisablePool {
		return t.dialCall(addr, req)
	}
	// Two attempts to absorb the register/teardown race: a pooled conn
	// can break between the pool handing it out and the caller
	// registering on it.
	for attempt := 0; ; attempt++ {
		pc, err := t.pool().get(ctx, addr)
		if err != nil {
			if ctx.Err() != nil {
				return Message{}, ctx.Err()
			}
			return Message{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
		}
		id, ch, ok := pc.register()
		if !ok {
			if attempt == 0 {
				continue
			}
			return Message{}, fmt.Errorf("%w: %s: pooled conn closed", ErrUnreachable, addr)
		}
		return t.exchange(ctx, pc, id, ch, addr, req)
	}
}

// exchange writes one registered request and waits for its response.
func (t *TCPTransport) exchange(ctx context.Context, pc *persistConn, id uint64, ch chan poolResult, addr string, req Message) (Message, error) {
	t.poolInFlight.Add(1)
	defer t.poolInFlight.Add(-1)
	if err := pc.c.writeFrame(id, &req, t.callTimeout()); err != nil {
		pc.unregister(id)
		// The encoder stream is unsynchronized; nothing on this conn can
		// be trusted anymore.
		pc.teardown(fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err), false)
		return Message{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	timer := time.NewTimer(t.callTimeout())
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return Message{}, r.err
		}
		return r.msg, nil
	case <-ctx.Done():
		// The caller gave up; the connection is still healthy — the
		// reader drops the late response by ID, no teardown needed.
		pc.unregister(id)
		return Message{}, ctx.Err()
	case <-timer.C:
		pc.unregister(id)
		err := fmt.Errorf("%w: %s: call timeout after %v", ErrUnreachable, addr, t.callTimeout())
		pc.teardown(err, false)
		return Message{}, err
	}
}

// dialCall is the legacy dial-per-call path: one connection, one framed
// exchange. Same wire format, none of the reuse.
func (t *TCPTransport) dialCall(addr string, req Message) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, t.dialTimeout())
	if err != nil {
		return Message{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	t.poolDials.Inc()
	if err := conn.SetDeadline(time.Now().Add(t.callTimeout())); err != nil {
		return Message{}, fmt.Errorf("wire: deadline: %w", err)
	}
	c := newCodec(conn, t.maxMessageSize(), &t.bytesIn, &t.bytesOut)
	if err := c.writeFrame(1, &req, t.callTimeout()); err != nil {
		return Message{}, fmt.Errorf("wire: encode to %s: %w", addr, err)
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	_, resp, err := c.readFrame(buf)
	if err != nil {
		return Message{}, fmt.Errorf("wire: decode from %s: %w", addr, err)
	}
	return resp, nil
}

// negotiate runs the client half of the per-connection codec handshake
// on a freshly dialed pooled connection, before its read loop starts.
// It returns the connection (possibly a redial) and its codec, switched
// to binary when the peer accepted. A peer that declines — or answers
// with the "unknown operation" error a pre-handshake node produces —
// leaves the connection on gob; a handshake that fails in transit
// abandons the connection and redials once as plain gob, because the
// codec streams on the first connection can no longer be trusted.
func (t *TCPTransport) negotiate(conn net.Conn, addr string) (net.Conn, *codec, error) {
	c := newCodec(conn, t.maxMessageSize(), &t.bytesIn, &t.bytesOut)
	if t.codecChoice() != CodecBinary {
		t.codecGobConns.Inc()
		return conn, c, nil
	}
	ok, err := t.handshake(conn, c)
	if err == nil {
		if ok {
			c.setBinary()
			t.codecBinaryConns.Inc()
		} else {
			t.codecGobConns.Inc()
		}
		return conn, c, nil
	}
	_ = conn.Close()
	t.codecFallbacks.Inc()
	conn2, derr := net.DialTimeout("tcp", addr, t.dialTimeout())
	if derr != nil {
		return nil, nil, derr
	}
	t.codecGobConns.Inc()
	return conn2, newCodec(conn2, t.maxMessageSize(), &t.bytesIn, &t.bytesOut), nil
}

// handshake sends the OpCodecSwitch frame under request ID 0 (the
// pool's real IDs start at 1, so the reserved ID can never collide) and
// reads the peer's ack synchronously — safe because the connection's
// read loop has not started yet.
func (t *TCPTransport) handshake(conn net.Conn, c *codec) (bool, error) {
	req := Message{Op: OpCodecSwitch}
	if err := c.writeFrame(0, &req, t.callTimeout()); err != nil {
		return false, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(t.callTimeout())); err != nil {
		return false, err
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	_, resp, err := c.readFrame(buf)
	if err != nil {
		return false, err
	}
	return resp.Ok, nil
}

// CloseConnections tears down every pooled client connection. Pending
// calls on them error out with ErrUnreachable; subsequent Calls redial.
// Use it when shutting a process down or when a test needs a clean
// pool.
func (t *TCPTransport) CloseConnections() {
	for _, pc := range t.pool().snapshot() {
		pc.teardown(fmt.Errorf("%w: %s: pool closed", ErrUnreachable, pc.addr), pc.inflight.Load() == 0)
	}
}

// tcpServer serves framed requests on persistent connections. Each
// connection has a frame-reader loop; every request frame is handled on
// its own goroutine so responses complete (and are written back) in any
// order — that is what lets clients pipeline. Deadlines are
// per-request: the read deadline is reset before every frame and each
// response write carries its own write deadline, so a long-lived
// connection never inherits a stale deadline from accept time.
type tcpServer struct {
	t            *TCPTransport
	ln           net.Listener
	handler      Handler
	callTimeout  time.Duration
	closeTimeout time.Duration
	idleTimeout  time.Duration
	maxMsg       int64

	wg        sync.WaitGroup
	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closing   bool
	closeOnce sync.Once
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	c := newCodec(conn, s.maxMsg, &s.t.bytesIn, &s.t.bytesOut)
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		// Per-request read deadline: a persistent connection may idle
		// between frames for as long as the pool's idle timeout allows.
		if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout + time.Second)); err != nil {
			return
		}
		id, req, err := c.readFrame(buf)
		if err != nil {
			return // client went away, idled out, or sent garbage
		}
		if req.Op == OpCodecSwitch {
			// Codec negotiation is answered by the transport itself,
			// inline: it is always the first frame on a connection that
			// sends it, so no concurrent response writers exist and the
			// flip below cannot interleave with a gob frame.
			if s.t.dropHandshake {
				return
			}
			resp := Message{Ok: s.t.codecChoice() == CodecBinary}
			if werr := c.writeFrame(id, &resp, s.callTimeout); werr != nil {
				s.t.respEncodeErrors.Inc()
				return
			}
			if resp.Ok {
				c.setBinary()
				s.t.codecBinaryConns.Inc()
			}
			continue
		}
		inflight.Add(1)
		go func(id uint64, req Message) {
			defer inflight.Done()
			resp := s.handler(req)
			if werr := c.writeFrame(id, &resp, s.callTimeout); werr != nil {
				// A response that cannot be delivered must not be
				// silently swallowed: count it and close the connection
				// so the client fails fast instead of timing out.
				s.t.respEncodeErrors.Inc()
				_ = conn.Close()
			}
		}(id, req)
	}
}

// Close implements io.Closer: stops accepting, nudges connection
// readers off their blocking reads (in-flight handlers still write
// their responses), and waits up to closeTimeout before force-closing
// stragglers. A node shutting down must not hang behind a peer that
// dribbles bytes.
func (s *tcpServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.ln.Close()
		s.mu.Lock()
		s.closing = true
		for conn := range s.conns {
			_ = conn.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		drained := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(s.closeTimeout):
			s.mu.Lock()
			for conn := range s.conns {
				_ = conn.Close()
			}
			s.mu.Unlock()
		}
	})
	return err
}
