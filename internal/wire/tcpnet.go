package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport carries one gob-encoded request/response pair per TCP
// connection. Simple and robust: no connection pooling or framing state
// to corrupt, at the price of a dial per call (acceptable for control
// traffic; bulk transfers batch many keys into one message).
type TCPTransport struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange (default 5s).
	CallTimeout time.Duration
}

// NewTCPTransport returns a transport with default timeouts.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{DialTimeout: 2 * time.Second, CallTimeout: 5 * time.Second}
}

// Listen implements Transport: it binds a TCP listener (use "127.0.0.1:0"
// to pick a free port) and serves requests until closed.
func (t *TCPTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	srv := &tcpServer{ln: ln, handler: handler, callTimeout: t.callTimeout()}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return ln.Addr().String(), srv, nil
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCPTransport) callTimeout() time.Duration {
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return 5 * time.Second
}

// Call implements Transport.
func (t *TCPTransport) Call(addr string, req Message) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, t.dialTimeout())
	if err != nil {
		return Message{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(t.callTimeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return Message{}, fmt.Errorf("wire: deadline: %w", err)
	}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return Message{}, fmt.Errorf("wire: encode to %s: %w", addr, err)
	}
	var resp Message
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return Message{}, fmt.Errorf("wire: decode from %s: %w", addr, err)
	}
	return resp, nil
}

type tcpServer struct {
	ln          net.Listener
	handler     Handler
	callTimeout time.Duration
	wg          sync.WaitGroup
	closeOnce   sync.Once
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(s.callTimeout)); err != nil {
		return
	}
	var req Message
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := s.handler(req)
	_ = gob.NewEncoder(conn).Encode(&resp)
}

// Close implements io.Closer: stops accepting and waits for in-flight
// requests to finish.
func (s *tcpServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.ln.Close()
		s.wg.Wait()
	})
	return err
}
