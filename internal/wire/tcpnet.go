package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DefaultMaxMessageSize bounds a single gob-encoded message on the wire
// (8 MiB). A corrupt or hostile peer can otherwise declare a huge
// payload and make the decoder allocate unboundedly.
const DefaultMaxMessageSize = 8 << 20

// TCPTransport carries one gob-encoded request/response pair per TCP
// connection. Simple and robust: no connection pooling or framing state
// to corrupt, at the price of a dial per call (acceptable for control
// traffic; bulk transfers batch many keys into one message).
type TCPTransport struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange (default 5s).
	CallTimeout time.Duration
	// CloseTimeout bounds how long Close waits for in-flight requests to
	// drain before returning (default 3s). Connections left behind still
	// terminate on their own deadlines; Close just stops blocking on
	// them.
	CloseTimeout time.Duration
	// MaxMessageSize caps the bytes a decoder will read for one message
	// (default DefaultMaxMessageSize).
	MaxMessageSize int64
}

// NewTCPTransport returns a transport with default timeouts.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		DialTimeout:  2 * time.Second,
		CallTimeout:  5 * time.Second,
		CloseTimeout: 3 * time.Second,
	}
}

// Listen implements Transport: it binds a TCP listener (use "127.0.0.1:0"
// to pick a free port) and serves requests until closed.
func (t *TCPTransport) Listen(addr string, handler Handler) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	srv := &tcpServer{
		ln:           ln,
		handler:      handler,
		callTimeout:  t.callTimeout(),
		closeTimeout: t.closeTimeout(),
		maxMsg:       t.maxMessageSize(),
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return ln.Addr().String(), srv, nil
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCPTransport) callTimeout() time.Duration {
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return 5 * time.Second
}

func (t *TCPTransport) closeTimeout() time.Duration {
	if t.CloseTimeout > 0 {
		return t.CloseTimeout
	}
	return 3 * time.Second
}

func (t *TCPTransport) maxMessageSize() int64 {
	if t.MaxMessageSize > 0 {
		return t.MaxMessageSize
	}
	return DefaultMaxMessageSize
}

// Call implements Transport.
func (t *TCPTransport) Call(addr string, req Message) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, t.dialTimeout())
	if err != nil {
		return Message{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(t.callTimeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return Message{}, fmt.Errorf("wire: deadline: %w", err)
	}
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return Message{}, fmt.Errorf("wire: encode to %s: %w", addr, err)
	}
	var resp Message
	if err := gob.NewDecoder(io.LimitReader(conn, t.maxMessageSize())).Decode(&resp); err != nil {
		return Message{}, fmt.Errorf("wire: decode from %s: %w", addr, err)
	}
	return resp, nil
}

type tcpServer struct {
	ln           net.Listener
	handler      Handler
	callTimeout  time.Duration
	closeTimeout time.Duration
	maxMsg       int64
	wg           sync.WaitGroup
	closeOnce    sync.Once
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(s.callTimeout)); err != nil {
		return
	}
	var req Message
	// The limit guards the allocation, not the protocol: a message that
	// claims to be larger than maxMsg hits io.EOF instead of exhausting
	// memory.
	if err := gob.NewDecoder(io.LimitReader(conn, s.maxMsg)).Decode(&req); err != nil {
		return
	}
	resp := s.handler(req)
	_ = gob.NewEncoder(conn).Encode(&resp)
}

// Close implements io.Closer: stops accepting and waits up to
// closeTimeout for in-flight requests to drain. Stragglers are not
// leaked forever — every connection carries a deadline — but a node
// shutting down must not hang behind a peer that dribbles bytes.
func (s *tcpServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.ln.Close()
		drained := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(s.closeTimeout):
		}
	})
	return err
}
