package wire

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Cluster adapts a set of live wire nodes to the overlay contract, so the
// indexing layer runs unchanged over a real message-passing network. The
// cluster tracks member addresses (the deployment's bootstrap knowledge);
// requests enter the ring through a pseudo-randomly chosen member and are
// routed by the Chord protocol itself.
type Cluster struct {
	transport Transport
	ttl       int
	// failoverWidth bounds how many ring members past the owner a read
	// will try before giving up.
	failoverWidth int

	mu      sync.Mutex
	addrs   []string
	rng     *rand.Rand
	metrics ClusterMetrics
}

// ClusterMetrics counts the cluster adapter's failure handling, the
// live-wire analogue of the simulation's FailoverReads metric.
type ClusterMetrics struct {
	// OwnerReadFailures counts Gets whose routed owner could not serve.
	OwnerReadFailures int64
	// FailoverReads counts Gets answered by a replica (a ring member
	// past the unreachable owner) instead of the owner.
	FailoverReads int64
	// EntryRetries counts FindOwner attempts that had to switch to
	// another entry point because the first was unreachable.
	EntryRetries int64
}

var _ overlay.Network = (*Cluster)(nil)

// NewCluster creates a cluster handle over the transport.
func NewCluster(transport Transport, seed int64) *Cluster {
	return &Cluster{
		transport:     transport,
		ttl:           64,
		failoverWidth: 3,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// Metrics returns a snapshot of the cluster's failover counters.
func (c *Cluster) Metrics() ClusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// Track adds a member address to the entry-point set.
func (c *Cluster) Track(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.addrs {
		if a == addr {
			return
		}
	}
	c.addrs = append(c.addrs, addr)
	sort.Slice(c.addrs, func(i, j int) bool {
		a, b := idOf(c.addrs[i]), idOf(c.addrs[j])
		return a.Cmp(b) < 0
	})
}

// Untrack removes a member address.
func (c *Cluster) Untrack(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.addrs {
		if a == addr {
			c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
			return
		}
	}
}

func (c *Cluster) entry() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) == 0 {
		return "", fmt.Errorf("wire: cluster has no members")
	}
	return c.addrs[c.rng.Intn(len(c.addrs))], nil
}

// FindOwner routes to the node responsible for key. An unreachable
// entry point is not fatal: up to failoverWidth members are tried, so a
// lookup survives routing through a cluster whose member list includes
// freshly-crashed nodes.
func (c *Cluster) FindOwner(key keyspace.Key) (overlay.Route, error) {
	var firstErr error
	for attempt := 0; attempt < c.failoverWidth; attempt++ {
		via, err := c.entry()
		if err != nil {
			return overlay.Route{}, err
		}
		resp, err := c.transport.Call(via, Message{Op: OpFindSuccessor, Key: key, TTL: c.ttl})
		if err == nil {
			if rerr := remoteError(resp); rerr != nil {
				return overlay.Route{}, rerr
			}
			return overlay.Route{Node: resp.Addr, Hops: resp.Hops}, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		c.mu.Lock()
		c.metrics.EntryRetries++
		single := len(c.addrs) <= 1
		c.mu.Unlock()
		if single {
			break
		}
	}
	return overlay.Route{}, firstErr
}

// Put implements overlay.Network.
func (c *Cluster) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	route, err := c.FindOwner(key)
	if err != nil {
		return overlay.Route{}, err
	}
	resp, err := c.transport.Call(route.Node, Message{Op: OpPut, Key: key, Entry: e})
	if err != nil {
		return overlay.Route{}, err
	}
	return route, remoteError(resp)
}

// Get implements overlay.Network. When the routed owner cannot serve —
// it crashed after routing resolved it, or routing itself failed against
// a dying ring — the read fails over to the tracked members that follow
// the key's ideal owner in ring order: exactly the nodes a replicating
// ring pushes copies to. This is the live-wire analogue of the
// simulation's replica failover (FailoverReads).
func (c *Cluster) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	route, err := c.FindOwner(key)
	if err == nil {
		resp, cerr := c.transport.Call(route.Node, Message{Op: OpGet, Key: key})
		if cerr == nil {
			if rerr := remoteError(resp); rerr != nil {
				return nil, overlay.Route{}, rerr
			}
			entries := resp.Entries
			if len(entries) == 0 {
				entries = nil
			}
			return entries, route, nil
		}
		err = cerr
	}
	entries, froute, ferr := c.failoverGet(key, route.Node)
	if ferr != nil {
		return nil, route, err
	}
	return entries, froute, nil
}

// failoverGet reads key from the tracked members clockwise from the
// key's ideal owner, skipping the member that already failed. It returns
// the first successful replica's answer.
func (c *Cluster) failoverGet(key keyspace.Key, failed string) ([]overlay.Entry, overlay.Route, error) {
	addrs := c.Addrs() // ring order
	if len(addrs) == 0 {
		return nil, overlay.Route{}, fmt.Errorf("wire: cluster has no members")
	}
	c.mu.Lock()
	c.metrics.OwnerReadFailures++
	width := c.failoverWidth
	c.mu.Unlock()
	// Start at the ideal owner's position: its clockwise followers hold
	// the replicas.
	start := 0
	for i, addr := range addrs {
		if idOf(addr).Cmp(key) >= 0 {
			start = i
			break
		}
	}
	tried := 0
	var lastErr error = ErrUnreachable
	for i := 0; i < len(addrs) && tried <= width; i++ {
		cand := addrs[(start+i)%len(addrs)]
		if cand == failed {
			continue
		}
		tried++
		resp, err := c.transport.Call(cand, Message{Op: OpGet, Key: key})
		if err != nil {
			lastErr = err
			continue
		}
		if rerr := remoteError(resp); rerr != nil {
			lastErr = rerr
			continue
		}
		c.mu.Lock()
		c.metrics.FailoverReads++
		c.mu.Unlock()
		entries := resp.Entries
		if len(entries) == 0 {
			entries = nil
		}
		return entries, overlay.Route{Node: cand, Hops: tried}, nil
	}
	return nil, overlay.Route{}, lastErr
}

// Remove implements overlay.Network.
func (c *Cluster) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	route, err := c.FindOwner(key)
	if err != nil {
		return false, err
	}
	resp, err := c.transport.Call(route.Node, Message{Op: OpRemove, Key: key, Entry: e})
	if err != nil {
		return false, err
	}
	return resp.Ok, remoteError(resp)
}

// Addrs implements overlay.Network (tracked members in ring order).
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// StatsOf implements overlay.Network via the OpStats RPC.
func (c *Cluster) StatsOf(addr string) (overlay.NodeStats, error) {
	resp, err := c.transport.Call(addr, Message{Op: OpStats})
	if err != nil {
		return overlay.NodeStats{}, err
	}
	if err := remoteError(resp); err != nil {
		return overlay.NodeStats{}, err
	}
	return overlay.NodeStats{
		Keys:          resp.Keys,
		EntriesByKind: resp.EntriesByKind,
		BytesByKind:   resp.BytesByKind,
	}, nil
}

// Size implements overlay.Network.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

// WaitConverged polls until every tracked node's successor pointer equals
// its ideal ring neighbour, or the timeout elapses. It returns an error
// describing the first unconverged node on timeout.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.converged()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: not converged after %v: %w", timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Cluster) converged() error {
	addrs := c.Addrs() // ring order
	count := len(addrs)
	if count == 0 {
		return fmt.Errorf("no members")
	}
	for i, addr := range addrs {
		want := addrs[(i+1)%count]
		resp, err := c.transport.Call(addr, Message{Op: OpGetSuccessor})
		if err != nil {
			return fmt.Errorf("%s unreachable: %v", addr, err)
		}
		if resp.Addr != want {
			return fmt.Errorf("%s successor = %s, want %s", addr, resp.Addr, want)
		}
	}
	return nil
}
