package wire

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// defaultEntryAttempts bounds how many entry points FindOwner tries
// before giving up on routing when Cluster.EntryAttempts is unset. This
// is bootstrap redundancy, deliberately independent of the replication
// factor: even an unreplicated ring wants a second entry point when the
// first tracked member just crashed.
const defaultEntryAttempts = 3

// DefaultRouteTTL is the hop budget stamped on routed cluster RPCs
// (FindSuccessor and the batched put/remove fast paths) when
// Cluster.RouteTTL is unset: generous enough for any realistic ring's
// finger-table routing, small enough to kill a routing loop fast.
const DefaultRouteTTL = 64

// Cluster adapts a set of live wire nodes to the overlay contract, so the
// indexing layer runs unchanged over a real message-passing network. The
// cluster tracks member addresses (the deployment's bootstrap knowledge);
// requests enter the ring through a pseudo-randomly chosen member and are
// routed by the Chord protocol itself.
type Cluster struct {
	transport Transport
	// replication mirrors the ring's Config.ReplicationFactor: reads
	// fail over across exactly the owner's replication successors (the
	// set writes fan out to, plus one slot of post-Leave migration
	// slack) and removes sweep the same window.
	replication int

	// HedgeDelay, when positive, fires a hedged replica Get if the owner
	// has not answered within the delay. Zero derives the delay from the
	// caller's context deadline (half the remaining budget); with neither
	// set, reads are unhedged. Set before serving traffic.
	HedgeDelay time.Duration

	// EntryAttempts bounds how many entry points FindOwner tries before
	// giving up on routing (default 3). Set before serving traffic.
	EntryAttempts int

	// BatchParallelism bounds the concurrent owner resolutions and
	// per-owner RPCs of a PutBatch/RemoveBatch (default 4). Set before
	// serving traffic.
	BatchParallelism int

	// RouteTTL is the hop budget stamped on routed RPCs (default
	// DefaultRouteTTL). Set before serving traffic.
	RouteTTL int

	mu    sync.Mutex
	addrs []string
	rng   *rand.Rand

	ownerReadFailures *telemetry.Counter
	failoverReads     *telemetry.Counter
	entryRetries      *telemetry.Counter
	hedgedGets        *telemetry.Counter
	hedgeWins         *telemetry.Counter
	batchPutRPCs      *telemetry.Counter
	batchPutKeys      *telemetry.Counter
	batchRemoveRPCs   *telemetry.Counter
	batchRemoveKeys   *telemetry.Counter
	batchFallbacks    *telemetry.Counter
	// hops and rpcLatency are nil until Instrument is called; observing
	// on nil histograms is a no-op, so the hot paths stay unconditional.
	hops       *telemetry.Histogram
	rpcLatency *telemetry.Histogram
}

// ClusterMetrics is a point-in-time snapshot of the cluster adapter's
// failure handling, the live-wire analogue of the simulation's
// FailoverReads metric. The live counters behind it are atomic, so
// taking a snapshot while the cluster serves traffic is race-free.
type ClusterMetrics struct {
	// OwnerReadFailures counts Gets whose routed owner could not serve.
	OwnerReadFailures int64
	// FailoverReads counts Gets answered by a replica (a ring member
	// past the unreachable owner) instead of the owner.
	FailoverReads int64
	// EntryRetries counts FindOwner attempts that had to switch to
	// another entry point because the first was unreachable.
	EntryRetries int64
	// HedgedGets counts reads that fired a hedged replica Get because
	// the owner was slow past the hedge delay.
	HedgedGets int64
	// HedgeWins counts hedged reads where the replica answered first.
	HedgeWins int64
}

var (
	_ overlay.Network        = (*Cluster)(nil)
	_ overlay.ContextNetwork = (*Cluster)(nil)
)

// routeTTL resolves the configured hop budget.
func (c *Cluster) routeTTL() int {
	if c.RouteTTL > 0 {
		return c.RouteTTL
	}
	return DefaultRouteTTL
}

// NewCluster creates a cluster handle over the transport. replication
// must equal the ring nodes' Config.ReplicationFactor — it sizes the
// read-failover and remove-sweep window, so passing the write fan-out
// here is what keeps the two from ever disagreeing (0 for an
// unreplicated ring).
func NewCluster(transport Transport, seed int64, replication int) *Cluster {
	return &Cluster{
		transport:   transport,
		replication: replication,
		rng:         rand.New(rand.NewSource(seed)),
		ownerReadFailures: telemetry.NewCounter("wire_owner_read_failures_total",
			"Gets whose routed owner could not serve."),
		failoverReads: telemetry.NewCounter("wire_failover_reads_total",
			"Gets answered by a replica instead of the owner."),
		entryRetries: telemetry.NewCounter("wire_entry_retries_total",
			"FindOwner attempts that switched entry points after an unreachable member."),
		hedgedGets: telemetry.NewCounter("wire_hedged_gets_total",
			"Reads that fired a hedged replica Get because the owner was slow."),
		hedgeWins: telemetry.NewCounter("wire_hedge_wins_total",
			"Hedged reads where the replica answered before the owner."),
		batchPutRPCs: telemetry.NewCounter("wire_batch_put_rpcs_total",
			"Per-owner OpPutBatch messages sent by batched puts."),
		batchPutKeys: telemetry.NewCounter("wire_batch_put_keys_total",
			"(key, entry) items carried by batched puts."),
		batchRemoveRPCs: telemetry.NewCounter("wire_batch_remove_rpcs_total",
			"Per-owner OpRemoveBatch messages sent by batched removes."),
		batchRemoveKeys: telemetry.NewCounter("wire_batch_remove_keys_total",
			"(key, entry) items carried by batched removes."),
		batchFallbacks: telemetry.NewCounter("wire_batch_fallbacks_total",
			"Per-owner batch groups that fell back from one-hop presumed-owner routing to Chord-routed resolution."),
	}
}

// Instrument attaches the cluster's failover counters to reg and starts
// recording routing-hop and RPC-latency histograms there.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Attach(c.ownerReadFailures, c.failoverReads, c.entryRetries, c.hedgedGets, c.hedgeWins,
		c.batchPutRPCs, c.batchPutKeys, c.batchRemoveRPCs, c.batchRemoveKeys, c.batchFallbacks)
	c.mu.Lock()
	c.hops = reg.Histogram("dht_lookup_hops",
		"Routing hops taken to resolve the owner of a key.", telemetry.HopBuckets)
	c.rpcLatency = reg.Histogram("wire_rpc_latency_seconds",
		"Wall-clock latency of cluster-issued RPCs, in seconds.", telemetry.LatencyBuckets)
	c.mu.Unlock()
}

// ctxCaller is the optional transport extension for deadline-aware
// calls. RetryingTransport implements it; plain transports are wrapped
// with an up-front ctx check instead (their in-flight sends are
// synchronous and cannot be interrupted anyway).
type ctxCaller interface {
	CallCtx(ctx context.Context, addr string, req Message) (Message, error)
}

// call issues one RPC through the transport, timing it into the RPC
// latency histogram when the cluster is instrumented.
func (c *Cluster) call(addr string, req Message) (Message, error) {
	return c.callCtx(context.Background(), addr, req)
}

// callCtx is call with a deadline budget: the context is passed through
// to the retry layer when the transport supports it, so retries and
// their backoff sleeps stop the moment the caller's budget runs out.
func (c *Cluster) callCtx(ctx context.Context, addr string, req Message) (Message, error) {
	c.mu.Lock()
	lat := c.rpcLatency
	c.mu.Unlock()
	start := time.Now()
	var resp Message
	var err error
	if cc, ok := c.transport.(ctxCaller); ok {
		resp, err = cc.CallCtx(ctx, addr, req)
	} else if err = ctx.Err(); err == nil {
		resp, err = c.transport.Call(addr, req)
	}
	if lat != nil {
		lat.Observe(time.Since(start).Seconds())
	}
	return resp, err
}

// Metrics returns a snapshot of the cluster's failover counters.
func (c *Cluster) Metrics() ClusterMetrics {
	return ClusterMetrics{
		OwnerReadFailures: c.ownerReadFailures.Value(),
		FailoverReads:     c.failoverReads.Value(),
		EntryRetries:      c.entryRetries.Value(),
		HedgedGets:        c.hedgedGets.Value(),
		HedgeWins:         c.hedgeWins.Value(),
	}
}

// Track adds a member address to the entry-point set.
func (c *Cluster) Track(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.addrs {
		if a == addr {
			return
		}
	}
	c.addrs = append(c.addrs, addr)
	sort.Slice(c.addrs, func(i, j int) bool {
		a, b := idOf(c.addrs[i]), idOf(c.addrs[j])
		return a.Cmp(b) < 0
	})
}

// Untrack removes a member address.
func (c *Cluster) Untrack(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.addrs {
		if a == addr {
			c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
			return
		}
	}
}

func (c *Cluster) entry() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) == 0 {
		return "", fmt.Errorf("wire: cluster has no members")
	}
	return c.addrs[c.rng.Intn(len(c.addrs))], nil
}

// FindOwner routes to the node responsible for key. An unreachable
// entry point is not fatal: up to EntryAttempts members are tried, so a
// lookup survives routing through a cluster whose member list includes
// freshly-crashed nodes.
func (c *Cluster) FindOwner(key keyspace.Key) (overlay.Route, error) {
	return c.FindOwnerCtx(context.Background(), key)
}

// FindOwnerCtx is FindOwner with a deadline budget: entry-point retries
// stop once ctx is done.
func (c *Cluster) FindOwnerCtx(ctx context.Context, key keyspace.Key) (overlay.Route, error) {
	attempts := c.EntryAttempts
	if attempts <= 0 {
		attempts = defaultEntryAttempts
	}
	var firstErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		via, err := c.entry()
		if err != nil {
			return overlay.Route{}, err
		}
		resp, err := c.callCtx(ctx, via, Message{Op: OpFindSuccessor, Key: key, TTL: c.routeTTL()})
		if err == nil {
			if rerr := remoteError(resp); rerr != nil {
				return overlay.Route{}, rerr
			}
			c.mu.Lock()
			hops := c.hops
			c.mu.Unlock()
			hops.Observe(float64(resp.Hops))
			return overlay.Route{Node: resp.Addr, Hops: resp.Hops}, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		c.entryRetries.Inc()
		c.mu.Lock()
		single := len(c.addrs) <= 1
		c.mu.Unlock()
		if single {
			break
		}
	}
	return overlay.Route{}, firstErr
}

// Put implements overlay.Network.
func (c *Cluster) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	return c.PutCtx(context.Background(), key, e)
}

// PutCtx is Put with a deadline budget threaded through routing and the
// owner write, so an open-loop workload's abandoned writes release their
// resources instead of queueing behind the deadline.
func (c *Cluster) PutCtx(ctx context.Context, key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	route, err := c.FindOwnerCtx(ctx, key)
	if err != nil {
		return overlay.Route{}, err
	}
	resp, err := c.callCtx(ctx, route.Node, Message{Op: OpPut, Key: key, Entry: e})
	if err != nil {
		return overlay.Route{}, err
	}
	return route, remoteError(resp)
}

// Get implements overlay.Network. When the routed owner cannot serve —
// it crashed after routing resolved it, or routing itself failed against
// a dying ring — the read fails over to the tracked members that follow
// the key's ideal owner in ring order: exactly the nodes a replicating
// ring pushes copies to. This is the live-wire analogue of the
// simulation's replica failover (FailoverReads).
func (c *Cluster) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx implements overlay.ContextNetwork: Get with a deadline budget.
// The budget is threaded through routing, the owner read, and failover
// reads, so a recursive multi-hop search stops burning retries on a
// dead hop the moment its budget is spent. With a deadline (or an
// explicit HedgeDelay) set, a slow owner also triggers a hedged replica
// Get — first answer wins.
func (c *Cluster) GetCtx(ctx context.Context, key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	route, err := c.FindOwnerCtx(ctx, key)
	if err == nil {
		entries, sroute, gerr := c.hedgedGet(ctx, key, route)
		if gerr == nil {
			return entries, sroute, nil
		}
		err = gerr
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, route, cerr
	}
	entries, froute, ferr := c.failoverGet(ctx, key, route.Node)
	if ferr != nil {
		return nil, route, err
	}
	return entries, froute, nil
}

// hedgedGet reads key from the routed owner, racing a hedged replica
// read if the owner has not answered within the hedge delay. Without a
// delay (no deadline, no HedgeDelay) it is a plain owner read.
func (c *Cluster) hedgedGet(ctx context.Context, key keyspace.Key, route overlay.Route) ([]overlay.Entry, overlay.Route, error) {
	delay := c.hedgeDelay(ctx)
	if delay <= 0 {
		resp, err := c.callCtx(ctx, route.Node, Message{Op: OpGet, Key: key})
		if err != nil {
			return nil, overlay.Route{}, err
		}
		if rerr := remoteError(resp); rerr != nil {
			return nil, overlay.Route{}, rerr
		}
		return trimEntries(resp.Entries), route, nil
	}
	type result struct {
		entries []overlay.Entry
		node    string
		err     error
	}
	// Buffered so a losing read's goroutine can deliver and exit even
	// after the winner returned (transports cannot cancel in-flight
	// sends).
	ch := make(chan result, 2)
	read := func(addr string) {
		resp, err := c.callCtx(ctx, addr, Message{Op: OpGet, Key: key})
		if err == nil {
			err = remoteError(resp)
		}
		ch <- result{entries: trimEntries(resp.Entries), node: addr, err: err}
	}
	go read(route.Node)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	outstanding := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.node == route.Node {
					return r.entries, route, nil
				}
				c.hedgeWins.Inc()
				return r.entries, overlay.Route{Node: r.node, Hops: route.Hops + 1}, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, overlay.Route{}, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			if peer := c.hedgePeer(key, route.Node); peer != "" {
				c.hedgedGets.Inc()
				outstanding++
				go read(peer)
			}
		case <-ctx.Done():
			return nil, overlay.Route{}, ctx.Err()
		}
	}
}

// hedgeDelay resolves how long to wait for the owner before hedging.
func (c *Cluster) hedgeDelay(ctx context.Context) time.Duration {
	if c.HedgeDelay > 0 {
		return c.HedgeDelay
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			return rem / 2
		}
	}
	return 0
}

// hedgePeer picks the first tracked follower of key other than the
// owner — the first replica a hedged read should try ("" when the
// cluster has no other member or replication is off).
func (c *Cluster) hedgePeer(key keyspace.Key, owner string) string {
	if c.replication == 0 {
		return ""
	}
	if cands := c.replicaFollowers(key, owner, 1); len(cands) > 0 {
		return cands[0]
	}
	return ""
}

// replicaFollowers returns up to max tracked members clockwise from
// key's ideal owner position, excluding exclude: the window a
// replicating ring pushes copies to.
func (c *Cluster) replicaFollowers(key keyspace.Key, exclude string, max int) []string {
	addrs := c.Addrs() // ring order
	if len(addrs) == 0 || max <= 0 {
		return nil
	}
	start := 0
	for i, addr := range addrs {
		if idOf(addr).Cmp(key) >= 0 {
			start = i
			break
		}
	}
	out := make([]string, 0, max)
	for i := 0; i < len(addrs) && len(out) < max; i++ {
		cand := addrs[(start+i)%len(addrs)]
		if cand == exclude {
			continue
		}
		out = append(out, cand)
	}
	return out
}

// trimEntries normalizes an empty wire slice to nil.
func trimEntries(entries []overlay.Entry) []overlay.Entry {
	if len(entries) == 0 {
		return nil
	}
	return entries
}

// failoverGet reads key from the tracked members clockwise from the
// key's ideal owner, skipping the member that already failed. The
// window is replication+1 candidates — the replica set plus one slot of
// post-Leave migration slack. It returns the first successful replica's
// answer.
func (c *Cluster) failoverGet(ctx context.Context, key keyspace.Key, failed string) ([]overlay.Entry, overlay.Route, error) {
	cands := c.replicaFollowers(key, failed, c.replication+1)
	if len(cands) == 0 {
		return nil, overlay.Route{}, fmt.Errorf("wire: cluster has no members")
	}
	c.ownerReadFailures.Inc()
	var lastErr error = ErrUnreachable
	for i, cand := range cands {
		if err := ctx.Err(); err != nil {
			return nil, overlay.Route{}, err
		}
		resp, err := c.callCtx(ctx, cand, Message{Op: OpGet, Key: key})
		if err != nil {
			lastErr = err
			continue
		}
		if rerr := remoteError(resp); rerr != nil {
			lastErr = rerr
			continue
		}
		c.failoverReads.Inc()
		return trimEntries(resp.Entries), overlay.Route{Node: cand, Hops: i + 1}, nil
	}
	return nil, overlay.Route{}, lastErr
}

// Remove implements overlay.Network. The owner's handler already
// propagates the delete to its CURRENT successors, but after churn the
// key's tracked followers may not coincide with them — so the cluster
// additionally sweeps the whole replica window best-effort, ensuring a
// stale copy cannot be resurrected later by a failover read.
func (c *Cluster) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	route, err := c.FindOwner(key)
	if err != nil {
		return false, err
	}
	resp, err := c.call(route.Node, Message{Op: OpRemove, Key: key, Entry: e})
	if err != nil {
		return false, err
	}
	if rerr := remoteError(resp); rerr != nil {
		return resp.Ok, rerr
	}
	for _, cand := range c.replicaFollowers(key, route.Node, c.replication) {
		_, _ = c.call(cand, Message{Op: OpRemoveReplica, Key: key, Entry: e})
	}
	return resp.Ok, nil
}

// Addrs implements overlay.Network (tracked members in ring order).
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// StatsOf implements overlay.Network via the OpStats RPC.
func (c *Cluster) StatsOf(addr string) (overlay.NodeStats, error) {
	resp, err := c.call(addr, Message{Op: OpStats})
	if err != nil {
		return overlay.NodeStats{}, err
	}
	if err := remoteError(resp); err != nil {
		return overlay.NodeStats{}, err
	}
	return overlay.NodeStats{
		Keys:          resp.Keys,
		EntriesByKind: resp.EntriesByKind,
		BytesByKind:   resp.BytesByKind,
	}, nil
}

// Size implements overlay.Network.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

// WaitConverged polls until every tracked node's successor pointer equals
// its ideal ring neighbour, or the timeout elapses. It returns an error
// describing the first unconverged node on timeout.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.converged()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: not converged after %v: %w", timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Cluster) converged() error {
	addrs := c.Addrs() // ring order
	count := len(addrs)
	if count == 0 {
		return fmt.Errorf("no members")
	}
	for i, addr := range addrs {
		want := addrs[(i+1)%count]
		resp, err := c.transport.Call(addr, Message{Op: OpGetSuccessor})
		if err != nil {
			return fmt.Errorf("%s unreachable: %v", addr, err)
		}
		if resp.Addr != want {
			return fmt.Errorf("%s successor = %s, want %s", addr, resp.Addr, want)
		}
	}
	return nil
}
