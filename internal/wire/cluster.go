package wire

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Cluster adapts a set of live wire nodes to the overlay contract, so the
// indexing layer runs unchanged over a real message-passing network. The
// cluster tracks member addresses (the deployment's bootstrap knowledge);
// requests enter the ring through a pseudo-randomly chosen member and are
// routed by the Chord protocol itself.
type Cluster struct {
	transport Transport
	ttl       int
	// failoverWidth bounds how many ring members past the owner a read
	// will try before giving up.
	failoverWidth int

	mu    sync.Mutex
	addrs []string
	rng   *rand.Rand

	ownerReadFailures *telemetry.Counter
	failoverReads     *telemetry.Counter
	entryRetries      *telemetry.Counter
	// hops and rpcLatency are nil until Instrument is called; observing
	// on nil histograms is a no-op, so the hot paths stay unconditional.
	hops       *telemetry.Histogram
	rpcLatency *telemetry.Histogram
}

// ClusterMetrics is a point-in-time snapshot of the cluster adapter's
// failure handling, the live-wire analogue of the simulation's
// FailoverReads metric. The live counters behind it are atomic, so
// taking a snapshot while the cluster serves traffic is race-free.
type ClusterMetrics struct {
	// OwnerReadFailures counts Gets whose routed owner could not serve.
	OwnerReadFailures int64
	// FailoverReads counts Gets answered by a replica (a ring member
	// past the unreachable owner) instead of the owner.
	FailoverReads int64
	// EntryRetries counts FindOwner attempts that had to switch to
	// another entry point because the first was unreachable.
	EntryRetries int64
}

var _ overlay.Network = (*Cluster)(nil)

// NewCluster creates a cluster handle over the transport.
func NewCluster(transport Transport, seed int64) *Cluster {
	return &Cluster{
		transport:     transport,
		ttl:           64,
		failoverWidth: 3,
		rng:           rand.New(rand.NewSource(seed)),
		ownerReadFailures: telemetry.NewCounter("wire_owner_read_failures_total",
			"Gets whose routed owner could not serve."),
		failoverReads: telemetry.NewCounter("wire_failover_reads_total",
			"Gets answered by a replica instead of the owner."),
		entryRetries: telemetry.NewCounter("wire_entry_retries_total",
			"FindOwner attempts that switched entry points after an unreachable member."),
	}
}

// Instrument attaches the cluster's failover counters to reg and starts
// recording routing-hop and RPC-latency histograms there.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Attach(c.ownerReadFailures, c.failoverReads, c.entryRetries)
	c.mu.Lock()
	c.hops = reg.Histogram("dht_lookup_hops",
		"Routing hops taken to resolve the owner of a key.", telemetry.HopBuckets)
	c.rpcLatency = reg.Histogram("wire_rpc_latency_seconds",
		"Wall-clock latency of cluster-issued RPCs, in seconds.", telemetry.LatencyBuckets)
	c.mu.Unlock()
}

// call issues one RPC through the transport, timing it into the RPC
// latency histogram when the cluster is instrumented.
func (c *Cluster) call(addr string, req Message) (Message, error) {
	c.mu.Lock()
	lat := c.rpcLatency
	c.mu.Unlock()
	if lat == nil {
		return c.transport.Call(addr, req)
	}
	start := time.Now()
	resp, err := c.transport.Call(addr, req)
	lat.Observe(time.Since(start).Seconds())
	return resp, err
}

// Metrics returns a snapshot of the cluster's failover counters.
func (c *Cluster) Metrics() ClusterMetrics {
	return ClusterMetrics{
		OwnerReadFailures: c.ownerReadFailures.Value(),
		FailoverReads:     c.failoverReads.Value(),
		EntryRetries:      c.entryRetries.Value(),
	}
}

// Track adds a member address to the entry-point set.
func (c *Cluster) Track(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.addrs {
		if a == addr {
			return
		}
	}
	c.addrs = append(c.addrs, addr)
	sort.Slice(c.addrs, func(i, j int) bool {
		a, b := idOf(c.addrs[i]), idOf(c.addrs[j])
		return a.Cmp(b) < 0
	})
}

// Untrack removes a member address.
func (c *Cluster) Untrack(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.addrs {
		if a == addr {
			c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
			return
		}
	}
}

func (c *Cluster) entry() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) == 0 {
		return "", fmt.Errorf("wire: cluster has no members")
	}
	return c.addrs[c.rng.Intn(len(c.addrs))], nil
}

// FindOwner routes to the node responsible for key. An unreachable
// entry point is not fatal: up to failoverWidth members are tried, so a
// lookup survives routing through a cluster whose member list includes
// freshly-crashed nodes.
func (c *Cluster) FindOwner(key keyspace.Key) (overlay.Route, error) {
	var firstErr error
	for attempt := 0; attempt < c.failoverWidth; attempt++ {
		via, err := c.entry()
		if err != nil {
			return overlay.Route{}, err
		}
		resp, err := c.call(via, Message{Op: OpFindSuccessor, Key: key, TTL: c.ttl})
		if err == nil {
			if rerr := remoteError(resp); rerr != nil {
				return overlay.Route{}, rerr
			}
			c.mu.Lock()
			hops := c.hops
			c.mu.Unlock()
			hops.Observe(float64(resp.Hops))
			return overlay.Route{Node: resp.Addr, Hops: resp.Hops}, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		c.entryRetries.Inc()
		c.mu.Lock()
		single := len(c.addrs) <= 1
		c.mu.Unlock()
		if single {
			break
		}
	}
	return overlay.Route{}, firstErr
}

// Put implements overlay.Network.
func (c *Cluster) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	route, err := c.FindOwner(key)
	if err != nil {
		return overlay.Route{}, err
	}
	resp, err := c.call(route.Node, Message{Op: OpPut, Key: key, Entry: e})
	if err != nil {
		return overlay.Route{}, err
	}
	return route, remoteError(resp)
}

// Get implements overlay.Network. When the routed owner cannot serve —
// it crashed after routing resolved it, or routing itself failed against
// a dying ring — the read fails over to the tracked members that follow
// the key's ideal owner in ring order: exactly the nodes a replicating
// ring pushes copies to. This is the live-wire analogue of the
// simulation's replica failover (FailoverReads).
func (c *Cluster) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	route, err := c.FindOwner(key)
	if err == nil {
		resp, cerr := c.call(route.Node, Message{Op: OpGet, Key: key})
		if cerr == nil {
			if rerr := remoteError(resp); rerr != nil {
				return nil, overlay.Route{}, rerr
			}
			entries := resp.Entries
			if len(entries) == 0 {
				entries = nil
			}
			return entries, route, nil
		}
		err = cerr
	}
	entries, froute, ferr := c.failoverGet(key, route.Node)
	if ferr != nil {
		return nil, route, err
	}
	return entries, froute, nil
}

// failoverGet reads key from the tracked members clockwise from the
// key's ideal owner, skipping the member that already failed. It returns
// the first successful replica's answer.
func (c *Cluster) failoverGet(key keyspace.Key, failed string) ([]overlay.Entry, overlay.Route, error) {
	addrs := c.Addrs() // ring order
	if len(addrs) == 0 {
		return nil, overlay.Route{}, fmt.Errorf("wire: cluster has no members")
	}
	c.ownerReadFailures.Inc()
	c.mu.Lock()
	width := c.failoverWidth
	c.mu.Unlock()
	// Start at the ideal owner's position: its clockwise followers hold
	// the replicas.
	start := 0
	for i, addr := range addrs {
		if idOf(addr).Cmp(key) >= 0 {
			start = i
			break
		}
	}
	tried := 0
	var lastErr error = ErrUnreachable
	for i := 0; i < len(addrs) && tried <= width; i++ {
		cand := addrs[(start+i)%len(addrs)]
		if cand == failed {
			continue
		}
		tried++
		resp, err := c.call(cand, Message{Op: OpGet, Key: key})
		if err != nil {
			lastErr = err
			continue
		}
		if rerr := remoteError(resp); rerr != nil {
			lastErr = rerr
			continue
		}
		c.failoverReads.Inc()
		entries := resp.Entries
		if len(entries) == 0 {
			entries = nil
		}
		return entries, overlay.Route{Node: cand, Hops: tried}, nil
	}
	return nil, overlay.Route{}, lastErr
}

// Remove implements overlay.Network.
func (c *Cluster) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	route, err := c.FindOwner(key)
	if err != nil {
		return false, err
	}
	resp, err := c.call(route.Node, Message{Op: OpRemove, Key: key, Entry: e})
	if err != nil {
		return false, err
	}
	return resp.Ok, remoteError(resp)
}

// Addrs implements overlay.Network (tracked members in ring order).
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// StatsOf implements overlay.Network via the OpStats RPC.
func (c *Cluster) StatsOf(addr string) (overlay.NodeStats, error) {
	resp, err := c.call(addr, Message{Op: OpStats})
	if err != nil {
		return overlay.NodeStats{}, err
	}
	if err := remoteError(resp); err != nil {
		return overlay.NodeStats{}, err
	}
	return overlay.NodeStats{
		Keys:          resp.Keys,
		EntriesByKind: resp.EntriesByKind,
		BytesByKind:   resp.BytesByKind,
	}, nil
}

// Size implements overlay.Network.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

// WaitConverged polls until every tracked node's successor pointer equals
// its ideal ring neighbour, or the timeout elapses. It returns an error
// describing the first unconverged node on timeout.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.converged()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: not converged after %v: %w", timeout, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Cluster) converged() error {
	addrs := c.Addrs() // ring order
	count := len(addrs)
	if count == 0 {
		return fmt.Errorf("no members")
	}
	for i, addr := range addrs {
		want := addrs[(i+1)%count]
		resp, err := c.transport.Call(addr, Message{Op: OpGetSuccessor})
		if err != nil {
			return fmt.Errorf("%s unreachable: %v", addr, err)
		}
		if resp.Addr != want {
			return fmt.Errorf("%s successor = %s, want %s", addr, resp.Addr, want)
		}
	}
	return nil
}
