package wire

// The node's data-plane lock split (ISSUE 10, DESIGN.md §17). Before
// it, every Get/Put/digest/transfer serialized on the single Node.mu —
// routing reads and bulk repair scans contended with each other and
// with every client read. Now Node.mu guards routing state only, and
// the store synchronizes itself behind ConcurrentStore: the default is
// a key-striped shard set where concurrent reads of different keys (and
// reads of the SAME key) proceed in parallel, and a store that cannot
// be striped (one durable WAL directory) gets a single reader-writer
// lock so its reads still stop contending with each other.

import (
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// DefaultStoreStripes is the default shard count of a node's in-memory
// store. Sized well above any plausible host parallelism so two
// concurrent operations rarely meet on a stripe, while keeping the
// full-iteration cost (Len, ForEach, repair scans) trivial.
const DefaultStoreStripes = 16

// ConcurrentStore is the node-facing synchronized store seam: a Store
// that is safe for concurrent use and additionally offers per-key
// atomic critical sections. The node's handlers, maintenance loops and
// repair paths call it from many goroutines at once; implementations
// provide the mutual exclusion that Node.mu used to.
//
// Plain Store implementations (MemStore, internal/wire/durable) remain
// NOT concurrent-safe by contract; the node wraps whatever Config.Store
// it is given — see NewShardedMemStore and the automatic single-lock
// wrapping in Start.
type ConcurrentStore interface {
	Store
	// Update runs fn as one atomic critical section over key's state:
	// no other operation on key (or its stripe) runs concurrently. fn
	// receives the underlying, unsynchronized Store and must touch only
	// key — calling the ConcurrentStore itself from within fn would
	// self-deadlock. Update returns fn's error; mutations fn already
	// applied are not rolled back.
	Update(key keyspace.Key, fn func(s Store) error) error
	// View is Update's read-only counterpart: fn runs under the key's
	// read lock, concurrently with other readers. fn must not mutate.
	View(key keyspace.Key, fn func(s Store) error) error
}

// ShardedStore stripes keys across independently locked Stores, so
// operations on different stripes never contend and reads of one stripe
// share a reader-writer lock. Whole-store operations (ForEach, Len,
// GCTombstones, Sync, Close) visit stripes one at a time in index
// order — the fixed acquisition order that keeps concurrent full scans
// and per-key updates deadlock-free.
//
// A key's stripe is derived from its top byte, which for SHA-1 ring
// keys is uniformly distributed. The mapping is stable for a fixed
// stripe count; a PERSISTENT sharded store must therefore be re-opened
// with the same count (durable.OpenSharded enforces this with a marker
// file).
type ShardedStore struct {
	stripes []storeStripe
}

// storeStripe is one shard: its lock and its backing store.
type storeStripe struct {
	mu sync.RWMutex
	s  Store
}

var _ ConcurrentStore = (*ShardedStore)(nil)

// NewShardedStore combines the given stores into one ShardedStore; the
// caller supplies one independent Store per stripe (nil entries get a
// fresh MemStore). An empty slice yields DefaultStoreStripes MemStores.
func NewShardedStore(stores []Store) *ShardedStore {
	if len(stores) == 0 {
		return NewShardedMemStore(0)
	}
	st := &ShardedStore{stripes: make([]storeStripe, len(stores))}
	for i, s := range stores {
		if s == nil {
			s = NewMemStore()
		}
		st.stripes[i].s = s
	}
	return st
}

// NewShardedMemStore returns a ShardedStore over stripes fresh
// MemStores (stripes <= 0 selects DefaultStoreStripes). This is the
// node's default store.
func NewShardedMemStore(stripes int) *ShardedStore {
	if stripes <= 0 {
		stripes = DefaultStoreStripes
	}
	stores := make([]Store, stripes)
	for i := range stores {
		stores[i] = NewMemStore()
	}
	return NewShardedStore(stores)
}

// Stripes returns the stripe count (diagnostics and the durable
// reopen-consistency check).
func (st *ShardedStore) Stripes() int { return len(st.stripes) }

// stripe maps a key to its shard.
func (st *ShardedStore) stripe(key keyspace.Key) *storeStripe {
	return &st.stripes[int(key[0])%len(st.stripes)]
}

// Get implements Store.
func (st *ShardedStore) Get(key keyspace.Key) []overlay.Entry {
	sp := st.stripe(key)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return sp.s.Get(key)
}

// Put implements Store.
func (st *ShardedStore) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	sp := st.stripe(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.s.Put(key, e)
}

// Remove implements Store.
func (st *ShardedStore) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	sp := st.stripe(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.s.Remove(key, e)
}

// Replace implements Store.
func (st *ShardedStore) Replace(key keyspace.Key, entries []overlay.Entry, tombs []Tombstone) error {
	sp := st.stripe(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.s.Replace(key, entries, tombs)
}

// Tombstoned implements Store.
func (st *ShardedStore) Tombstoned(key keyspace.Key, e overlay.Entry) bool {
	sp := st.stripe(key)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return sp.s.Tombstoned(key, e)
}

// Tombstones implements Store.
func (st *ShardedStore) Tombstones(key keyspace.Key) []Tombstone {
	sp := st.stripe(key)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return sp.s.Tombstones(key)
}

// Entomb implements Store.
func (st *ShardedStore) Entomb(key keyspace.Key, tombs []Tombstone) (int, error) {
	sp := st.stripe(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.s.Entomb(key, tombs)
}

// ForEachTombstone implements Store, visiting stripes in index order.
func (st *ShardedStore) ForEachTombstone(fn func(key keyspace.Key, tombs []Tombstone) bool) {
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		done := false
		sp.s.ForEachTombstone(func(k keyspace.Key, tombs []Tombstone) bool {
			if !fn(k, tombs) {
				done = true
				return false
			}
			return true
		})
		sp.mu.RUnlock()
		if done {
			return
		}
	}
}

// GCTombstones implements Store, collecting stripe by stripe.
func (st *ShardedStore) GCTombstones(before int64) (int, error) {
	total := 0
	var firstErr error
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		n, err := sp.s.GCTombstones(before)
		sp.mu.Unlock()
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// ForEach implements Store, visiting stripes in index order. Mutators
// of stripes not yet visited (or already passed) proceed concurrently:
// a full scan observes each stripe atomically, not the whole store.
func (st *ShardedStore) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		done := false
		sp.s.ForEach(func(k keyspace.Key, entries []overlay.Entry) bool {
			if !fn(k, entries) {
				done = true
				return false
			}
			return true
		})
		sp.mu.RUnlock()
		if done {
			return
		}
	}
}

// Len implements Store (the sum over stripes; consistent per stripe).
func (st *ShardedStore) Len() int {
	total := 0
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		total += sp.s.Len()
		sp.mu.RUnlock()
	}
	return total
}

// Sync implements Store, flushing every stripe (first error wins).
func (st *ShardedStore) Sync() error {
	var firstErr error
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		err := sp.s.Sync()
		sp.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Store, closing every stripe (first error wins).
func (st *ShardedStore) Close() error {
	var firstErr error
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		err := sp.s.Close()
		sp.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Update implements ConcurrentStore: fn runs under the key's stripe
// write lock.
func (st *ShardedStore) Update(key keyspace.Key, fn func(s Store) error) error {
	sp := st.stripe(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return fn(sp.s)
}

// View implements ConcurrentStore: fn runs under the key's stripe read
// lock, concurrently with other readers.
func (st *ShardedStore) View(key keyspace.Key, fn func(s Store) error) error {
	sp := st.stripe(key)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return fn(sp.s)
}

// RecoveryStats implements RecoverableStore by summing the stripes that
// replayed persistent state (zero when no stripe is recoverable).
func (st *ShardedStore) RecoveryStats() RecoveryStats {
	var total RecoveryStats
	for i := range st.stripes {
		if rs, ok := st.stripes[i].s.(RecoverableStore); ok {
			total.Merge(rs.RecoveryStats())
		}
	}
	return total
}

// Instrument implements InstrumentedStore by forwarding to every stripe
// that exports telemetry.
func (st *ShardedStore) Instrument(reg *telemetry.Registry) {
	for i := range st.stripes {
		if is, ok := st.stripes[i].s.(InstrumentedStore); ok {
			is.Instrument(reg)
		}
	}
}

// lockedStore adapts a single unsynchronized Store (a durable WAL
// directory, or a MemStore a test handed in) to the ConcurrentStore
// seam with one reader-writer lock: reads stop contending with each
// other, writes serialize — the store's own consistency model is
// unchanged.
type lockedStore struct {
	mu sync.RWMutex
	s  Store
}

var _ ConcurrentStore = (*lockedStore)(nil)

func (l *lockedStore) Get(key keyspace.Key) []overlay.Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.Get(key)
}

func (l *lockedStore) Put(key keyspace.Key, e overlay.Entry) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Put(key, e)
}

func (l *lockedStore) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Remove(key, e)
}

func (l *lockedStore) Replace(key keyspace.Key, entries []overlay.Entry, tombs []Tombstone) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Replace(key, entries, tombs)
}

func (l *lockedStore) Tombstoned(key keyspace.Key, e overlay.Entry) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.Tombstoned(key, e)
}

func (l *lockedStore) Tombstones(key keyspace.Key) []Tombstone {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.Tombstones(key)
}

func (l *lockedStore) Entomb(key keyspace.Key, tombs []Tombstone) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Entomb(key, tombs)
}

func (l *lockedStore) ForEachTombstone(fn func(key keyspace.Key, tombs []Tombstone) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.s.ForEachTombstone(fn)
}

func (l *lockedStore) GCTombstones(before int64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.GCTombstones(before)
}

func (l *lockedStore) ForEach(fn func(key keyspace.Key, entries []overlay.Entry) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.s.ForEach(fn)
}

func (l *lockedStore) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.s.Len()
}

func (l *lockedStore) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Sync()
}

func (l *lockedStore) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Close()
}

func (l *lockedStore) Update(_ keyspace.Key, fn func(s Store) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fn(l.s)
}

func (l *lockedStore) View(_ keyspace.Key, fn func(s Store) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return fn(l.s)
}

// RecoveryStats forwards to the wrapped store when it is recoverable.
func (l *lockedStore) RecoveryStats() RecoveryStats {
	if rs, ok := l.s.(RecoverableStore); ok {
		return rs.RecoveryStats()
	}
	return RecoveryStats{}
}

// Instrument forwards to the wrapped store when it exports telemetry.
func (l *lockedStore) Instrument(reg *telemetry.Registry) {
	if is, ok := l.s.(InstrumentedStore); ok {
		is.Instrument(reg)
	}
}

// asConcurrentStore adapts a Config.Store to the node's synchronized
// seam: nil gets the default striped MemStore, an implementation that
// already synchronizes itself is used as-is, and anything else is
// wrapped behind one reader-writer lock.
func asConcurrentStore(s Store) ConcurrentStore {
	switch t := s.(type) {
	case nil:
		return NewShardedMemStore(0)
	case ConcurrentStore:
		return t
	default:
		return &lockedStore{s: s}
	}
}
