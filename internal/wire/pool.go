package wire

// The client half of the persistent-connection fast path: a bounded
// per-peer pool of framed connections. Multiple in-flight Calls
// multiplex over one connection by request ID (pipelining), idle
// connections are reaped by a read-deadline timer, and any protocol or
// transport error evicts the connection back to redial — the retry /
// breaker layers above see exactly the error surface the dial-per-call
// transport produced (ErrUnreachable-wrapped), so their behaviour is
// unchanged.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// poolResult is one response (or terminal error) delivered to a waiting
// caller.
type poolResult struct {
	msg Message
	err error
}

// persistConn is one pooled client connection. The pending map is the
// multiplexing heart: callers register a request ID before writing their
// frame, and the single reader goroutine routes each response frame to
// the channel registered under its ID. A response whose ID is no longer
// registered (the caller timed out and left) is dropped on the floor —
// it can never be delivered to a different caller, because IDs are
// never reused within a connection.
type persistConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn
	c    *codec

	// inflight mirrors len(pending) without taking mu, so the pool's
	// least-loaded scan and the reaper's idle check stay lock-cheap.
	inflight atomic.Int64

	mu      sync.Mutex
	pending map[uint64]chan poolResult
	nextID  uint64
	broken  bool
}

// register allocates a fresh request ID and its response channel. It
// fails when the connection broke between pool lookup and registration;
// the caller then grabs another connection.
func (p *persistConn) register() (uint64, chan poolResult, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken {
		return 0, nil, false
	}
	p.nextID++
	id := p.nextID
	ch := make(chan poolResult, 1)
	p.pending[id] = ch
	p.inflight.Add(1)
	return id, ch, true
}

// unregister abandons a request (caller timeout or write failure). The
// reader may still receive the late response; it finds no channel and
// drops it.
func (p *persistConn) unregister(id uint64) {
	p.mu.Lock()
	if _, ok := p.pending[id]; ok {
		delete(p.pending, id)
		p.inflight.Add(-1)
	}
	p.mu.Unlock()
}

// deliver routes one response frame to its registered caller.
func (p *persistConn) deliver(id uint64, msg Message) {
	p.mu.Lock()
	ch := p.pending[id]
	if ch != nil {
		delete(p.pending, id)
		p.inflight.Add(-1)
	}
	p.mu.Unlock()
	if ch != nil {
		ch <- poolResult{msg: msg} // buffered: never blocks
	}
}

// teardown evicts the connection: removes it from the pool, closes the
// socket, and errors out every pending caller. Safe to call from the
// reader, a writer, and a timed-out caller concurrently — only the
// first wins, and only the first bumps the eviction (or idle-reap)
// counter.
func (p *persistConn) teardown(err error, idle bool) {
	p.mu.Lock()
	if p.broken {
		p.mu.Unlock()
		return
	}
	p.broken = true
	pending := p.pending
	p.pending = nil
	p.inflight.Store(0)
	p.mu.Unlock()

	p.t.pool().remove(p)
	_ = p.conn.Close()
	for _, ch := range pending {
		ch <- poolResult{err: err} // buffered: never blocks
	}
	if idle {
		p.t.poolIdleReaps.Inc()
	} else {
		p.t.poolEvictions.Inc()
	}
}

// readLoop is the connection's single reader: it dispatches response
// frames by request ID until the connection dies or idles out. The read
// deadline doubles as the idle reaper — when nothing is in flight an
// expired deadline means the connection earned no keep; with requests
// pending the callers' own timers bound the wait, so the loop's
// deadline only has to be generous enough not to fire under them.
func (p *persistConn) readLoop() {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	idleTimeout := p.t.poolIdleTimeout()
	busyTimeout := p.t.callTimeout() + time.Second
	for {
		wasIdle := p.inflight.Load() == 0
		d := busyTimeout
		if wasIdle {
			d = idleTimeout
		}
		_ = p.conn.SetReadDeadline(time.Now().Add(d))
		id, msg, err := p.c.readFrame(buf)
		if err != nil {
			if isTimeoutErr(err) && p.inflight.Load() == 0 {
				p.teardown(fmt.Errorf("%w: %s: pooled conn idle-reaped", ErrUnreachable, p.addr), true)
			} else {
				p.teardown(fmt.Errorf("%w: %s: %v", ErrUnreachable, p.addr, err), false)
			}
			return
		}
		p.deliver(id, msg)
	}
}

// connPool tracks the persistent connections per peer address and
// enforces the per-peer bound.
type connPool struct {
	t *TCPTransport

	mu   sync.Mutex
	cond *sync.Cond // signals a dial landing or a conn leaving the pool
	// peers holds the established connections; dialing counts dials in
	// progress against the bound.
	peers   map[string][]*persistConn
	dialing map[string]int
}

func newConnPool(t *TCPTransport) *connPool {
	p := &connPool{
		t:       t,
		peers:   make(map[string][]*persistConn),
		dialing: make(map[string]int),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// get returns a connection to addr: the least-loaded live one when the
// pool is at its bound or an idle conn exists, otherwise a fresh dial.
// Under concurrency the pool therefore grows up to MaxConnsPerPeer
// connections per peer and pipelines the overflow onto existing ones; a
// caller that finds every slot taken by a dial in progress waits for one
// to land rather than dialing past the bound. The wait honours ctx: a
// caller whose deadline expires (or that was shed upstream and cancelled)
// leaves the queue immediately instead of holding a would-be slot.
func (p *connPool) get(ctx context.Context, addr string) (*persistConn, error) {
	// Wake this waiter when ctx fires. cond.Wait cannot select on a
	// channel, so the cancel hook broadcasts and the loop re-checks
	// ctx.Err() on every wakeup.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	p.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		conns := p.peers[addr]
		var best *persistConn
		for _, pc := range conns {
			if best == nil || pc.inflight.Load() < best.inflight.Load() {
				best = pc
			}
		}
		atBound := len(conns)+p.dialing[addr] >= p.t.maxConnsPerPeer()
		if best != nil && (best.inflight.Load() == 0 || atBound) {
			p.mu.Unlock()
			p.t.poolReuses.Inc()
			return best, nil
		}
		if !atBound {
			break
		}
		// No established conn and every slot is a dial in progress: wait
		// for one to land (or fail) instead of exceeding the bound.
		p.cond.Wait()
	}
	p.dialing[addr]++
	p.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, p.t.dialTimeout())
	var c *codec
	if err == nil {
		// Codec negotiation happens here, between the dial landing and
		// the read loop starting: the handshake is strictly the first
		// exchange on the connection, so both ends flip codecs (or agree
		// to stay on gob) before any request frame exists.
		conn, c, err = p.t.negotiate(conn, addr)
	}

	p.mu.Lock()
	p.dialing[addr]--
	if p.dialing[addr] == 0 {
		delete(p.dialing, addr)
	}
	if err != nil {
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, err
	}
	pc := &persistConn{
		t:       p.t,
		addr:    addr,
		conn:    conn,
		c:       c,
		pending: make(map[uint64]chan poolResult),
	}
	p.peers[addr] = append(p.peers[addr], pc)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.t.poolDials.Inc()
	go pc.readLoop()
	return pc, nil
}

// remove detaches a connection from the pool (teardown's pool half).
func (p *connPool) remove(pc *persistConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.peers[pc.addr]
	for i, c := range conns {
		if c == pc {
			p.peers[pc.addr] = append(conns[:i], conns[i+1:]...)
			break
		}
	}
	if len(p.peers[pc.addr]) == 0 {
		delete(p.peers, pc.addr)
	}
	p.cond.Broadcast()
}

// snapshot returns every pooled connection (for shutdown and stats).
func (p *connPool) snapshot() []*persistConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	var all []*persistConn
	for _, conns := range p.peers {
		all = append(all, conns...)
	}
	return all
}
