package wire

// The compact binary encoding for Message spoken on persistent TCP
// connections after a successful OpCodecSwitch handshake (DESIGN.md
// §17). gob pays reflection plus a self-describing stream; the hot
// path's messages are a small fixed set of flat fields, so a
// hand-rolled encoding wins on both CPU and bytes:
//
//	[1-byte version | Op uvarint | field-presence bitmap uvarint |
//	 present fields in bit order]
//
// Scalars are varints (zigzag for signed), strings and slices carry a
// uvarint length, keys travel as raw 20-byte values and digests as
// fixed 8-byte big-endian words. Absent fields cost zero bytes: a ping
// is 3 bytes of payload where gob needs a descriptor-laden stream.
// Encoding appends into a caller-owned scratch slice and decoding
// reads out of the frame buffer in place, so steady-state frames
// allocate nothing beyond the strings and slices the decoded message
// itself must own. Every decoded count is validated against the bytes
// actually remaining before any allocation, so a corrupt or hostile
// frame cannot make the node allocate past the frame it already read.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// binMsgVersion is the binary codec's format version byte; bump it when
// the field layout changes (the handshake pins both ends to the same
// build family, the byte guards against skew within it).
const binMsgVersion = 1

// Field-presence bits of the binary encoding, in encode order.
const (
	binHasKey = 1 << iota
	binHasAddr
	binHasTTL
	binHasHops
	binHasBudget
	binHasCode
	binHasEntry
	binHasEntries
	binHasKV
	binHasDigests
	binHasAddrs
	binHasOk
	binHasErr
	binHasKeys
	binHasEntriesByKind
	binHasBytesByKind
)

// errBinTruncated reports a frame that declares more content than it
// carries; errBinTrailing the reverse (bytes after the last field).
var (
	errBinTruncated = errors.New("wire: binary message truncated")
	errBinTrailing  = errors.New("wire: binary message has trailing bytes")
)

// appendUvarint appends v in unsigned LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendVarint appends v zigzag-encoded.
func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// appendString appends s as uvarint length + bytes.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendEntry appends e's kind and value strings.
func appendEntry(dst []byte, e overlay.Entry) []byte {
	dst = appendString(dst, e.Kind)
	return appendString(dst, e.Value)
}

// appendTombstone appends t's entry and removal time.
func appendTombstone(dst []byte, t Tombstone) []byte {
	dst = appendEntry(dst, t.Entry)
	return appendVarint(dst, t.At)
}

// messageFlags computes m's field-presence bitmap.
func messageFlags(m *Message) uint64 {
	var flags uint64
	if m.Key != (keyspace.Key{}) {
		flags |= binHasKey
	}
	if m.Addr != "" {
		flags |= binHasAddr
	}
	if m.TTL != 0 {
		flags |= binHasTTL
	}
	if m.Hops != 0 {
		flags |= binHasHops
	}
	if m.BudgetMicros != 0 {
		flags |= binHasBudget
	}
	if m.Code != 0 {
		flags |= binHasCode
	}
	if m.Entry != (overlay.Entry{}) {
		flags |= binHasEntry
	}
	if len(m.Entries) > 0 {
		flags |= binHasEntries
	}
	if len(m.KV) > 0 {
		flags |= binHasKV
	}
	if len(m.Digests) > 0 {
		flags |= binHasDigests
	}
	if len(m.Addrs) > 0 {
		flags |= binHasAddrs
	}
	if m.Ok {
		flags |= binHasOk
	}
	if m.Err != "" {
		flags |= binHasErr
	}
	if m.Keys != 0 {
		flags |= binHasKeys
	}
	if len(m.EntriesByKind) > 0 {
		flags |= binHasEntriesByKind
	}
	if len(m.BytesByKind) > 0 {
		flags |= binHasBytesByKind
	}
	return flags
}

// appendMessage appends m's binary encoding to dst and returns the
// extended slice. It never fails: every Message value has an encoding.
func appendMessage(dst []byte, m *Message) []byte {
	flags := messageFlags(m)
	dst = append(dst, binMsgVersion)
	dst = appendUvarint(dst, uint64(m.Op))
	dst = appendUvarint(dst, flags)
	if flags&binHasKey != 0 {
		dst = append(dst, m.Key[:]...)
	}
	if flags&binHasAddr != 0 {
		dst = appendString(dst, m.Addr)
	}
	if flags&binHasTTL != 0 {
		dst = appendVarint(dst, int64(m.TTL))
	}
	if flags&binHasHops != 0 {
		dst = appendVarint(dst, int64(m.Hops))
	}
	if flags&binHasBudget != 0 {
		dst = appendVarint(dst, m.BudgetMicros)
	}
	if flags&binHasCode != 0 {
		dst = appendVarint(dst, int64(m.Code))
	}
	if flags&binHasEntry != 0 {
		dst = appendEntry(dst, m.Entry)
	}
	if flags&binHasEntries != 0 {
		dst = appendUvarint(dst, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			dst = appendEntry(dst, e)
		}
	}
	if flags&binHasKV != 0 {
		dst = appendUvarint(dst, uint64(len(m.KV)))
		for i := range m.KV {
			kv := &m.KV[i]
			dst = append(dst, kv.Key[:]...)
			dst = appendUvarint(dst, uint64(len(kv.Entries)))
			for _, e := range kv.Entries {
				dst = appendEntry(dst, e)
			}
			dst = appendUvarint(dst, uint64(len(kv.Tombs)))
			for _, t := range kv.Tombs {
				dst = appendTombstone(dst, t)
			}
		}
	}
	if flags&binHasDigests != 0 {
		dst = appendUvarint(dst, uint64(len(m.Digests)))
		for i := range m.Digests {
			dst = append(dst, m.Digests[i].Key[:]...)
			dst = binary.BigEndian.AppendUint64(dst, m.Digests[i].Digest)
		}
	}
	if flags&binHasAddrs != 0 {
		dst = appendUvarint(dst, uint64(len(m.Addrs)))
		for _, a := range m.Addrs {
			dst = appendString(dst, a)
		}
	}
	if flags&binHasErr != 0 {
		dst = appendString(dst, m.Err)
	}
	if flags&binHasKeys != 0 {
		dst = appendVarint(dst, int64(m.Keys))
	}
	if flags&binHasEntriesByKind != 0 {
		dst = appendUvarint(dst, uint64(len(m.EntriesByKind)))
		for k, v := range m.EntriesByKind {
			dst = appendString(dst, k)
			dst = appendVarint(dst, int64(v))
		}
	}
	if flags&binHasBytesByKind != 0 {
		dst = appendUvarint(dst, uint64(len(m.BytesByKind)))
		for k, v := range m.BytesByKind {
			dst = appendString(dst, k)
			dst = appendVarint(dst, v)
		}
	}
	return dst
}

// binReader is a bounds-checked cursor over one binary payload.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errBinTruncated
	}
	r.off += n
	return v, nil
}

// intField decodes a zigzag varint that must fit a platform int.
func (r *binReader) intField() (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, fmt.Errorf("wire: binary int field %d overflows", v)
	}
	return int(v), nil
}

// count decodes a collection length and validates it against the bytes
// actually remaining, given each element needs at least minElem bytes.
// The check runs before any allocation sized by the count.
func (r *binReader) count(minElem int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/minElem) {
		return 0, errBinTruncated
	}
	return int(v), nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", errBinTruncated
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) key() (keyspace.Key, error) {
	var k keyspace.Key
	if r.remaining() < keyspace.Size {
		return k, errBinTruncated
	}
	copy(k[:], r.data[r.off:])
	r.off += keyspace.Size
	return k, nil
}

func (r *binReader) entry() (overlay.Entry, error) {
	var e overlay.Entry
	var err error
	if e.Kind, err = r.str(); err != nil {
		return e, err
	}
	e.Value, err = r.str()
	return e, err
}

func (r *binReader) entries() ([]overlay.Entry, error) {
	// An entry is two strings: at least two length bytes.
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]overlay.Entry, n)
	for i := range out {
		if out[i], err = r.entry(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) tombstones() ([]Tombstone, error) {
	// A tombstone is an entry plus a varint: at least three bytes.
	n, err := r.count(3)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Tombstone, n)
	for i := range out {
		if out[i].Entry, err = r.entry(); err != nil {
			return nil, err
		}
		if out[i].At, err = r.varint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeMessage decodes one binary payload into m, overwriting every
// field (absent fields reset to their zero values so a reused Message
// carries nothing over between frames).
func decodeMessage(data []byte, m *Message) error {
	*m = Message{}
	if len(data) == 0 {
		return errBinTruncated
	}
	if data[0] != binMsgVersion {
		return fmt.Errorf("wire: binary message version %d, want %d", data[0], binMsgVersion)
	}
	r := binReader{data: data, off: 1}
	op, err := r.uvarint()
	if err != nil {
		return err
	}
	m.Op = Op(op)
	flags, err := r.uvarint()
	if err != nil {
		return err
	}
	if flags >= 1<<16 {
		return fmt.Errorf("wire: binary message has unknown field bits %#x", flags&^((1<<16)-1))
	}
	if flags&binHasKey != 0 {
		if m.Key, err = r.key(); err != nil {
			return err
		}
	}
	if flags&binHasAddr != 0 {
		if m.Addr, err = r.str(); err != nil {
			return err
		}
	}
	if flags&binHasTTL != 0 {
		if m.TTL, err = r.intField(); err != nil {
			return err
		}
	}
	if flags&binHasHops != 0 {
		if m.Hops, err = r.intField(); err != nil {
			return err
		}
	}
	if flags&binHasBudget != 0 {
		if m.BudgetMicros, err = r.varint(); err != nil {
			return err
		}
	}
	if flags&binHasCode != 0 {
		if m.Code, err = r.intField(); err != nil {
			return err
		}
	}
	if flags&binHasEntry != 0 {
		if m.Entry, err = r.entry(); err != nil {
			return err
		}
	}
	if flags&binHasEntries != 0 {
		if m.Entries, err = r.entries(); err != nil {
			return err
		}
	}
	if flags&binHasKV != 0 {
		// A KV element is a key plus two counts.
		n, err := r.count(keyspace.Size + 2)
		if err != nil {
			return err
		}
		if n > 0 {
			m.KV = make([]KeyEntries, n)
			for i := range m.KV {
				if m.KV[i].Key, err = r.key(); err != nil {
					return err
				}
				if m.KV[i].Entries, err = r.entries(); err != nil {
					return err
				}
				if m.KV[i].Tombs, err = r.tombstones(); err != nil {
					return err
				}
			}
		}
	}
	if flags&binHasDigests != 0 {
		n, err := r.count(keyspace.Size + 8)
		if err != nil {
			return err
		}
		if n > 0 {
			m.Digests = make([]KeyDigest, n)
			for i := range m.Digests {
				if m.Digests[i].Key, err = r.key(); err != nil {
					return err
				}
				if r.remaining() < 8 {
					return errBinTruncated
				}
				m.Digests[i].Digest = binary.BigEndian.Uint64(r.data[r.off:])
				r.off += 8
			}
		}
	}
	if flags&binHasAddrs != 0 {
		n, err := r.count(1)
		if err != nil {
			return err
		}
		if n > 0 {
			m.Addrs = make([]string, n)
			for i := range m.Addrs {
				if m.Addrs[i], err = r.str(); err != nil {
					return err
				}
			}
		}
	}
	m.Ok = flags&binHasOk != 0
	if flags&binHasErr != 0 {
		if m.Err, err = r.str(); err != nil {
			return err
		}
	}
	if flags&binHasKeys != 0 {
		if m.Keys, err = r.intField(); err != nil {
			return err
		}
	}
	if flags&binHasEntriesByKind != 0 {
		n, err := r.count(2)
		if err != nil {
			return err
		}
		if n > 0 {
			m.EntriesByKind = make(map[string]int, n)
			for i := 0; i < n; i++ {
				k, err := r.str()
				if err != nil {
					return err
				}
				v, err := r.intField()
				if err != nil {
					return err
				}
				m.EntriesByKind[k] = v
			}
		}
	}
	if flags&binHasBytesByKind != 0 {
		n, err := r.count(2)
		if err != nil {
			return err
		}
		if n > 0 {
			m.BytesByKind = make(map[string]int64, n)
			for i := 0; i < n; i++ {
				k, err := r.str()
				if err != nil {
					return err
				}
				v, err := r.varint()
				if err != nil {
					return err
				}
				m.BytesByKind[k] = v
			}
		}
	}
	if r.remaining() != 0 {
		return errBinTrailing
	}
	return nil
}
