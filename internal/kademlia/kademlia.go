// Package kademlia implements a Kademlia overlay (Maymounkov & Mazières,
// IPTPS 2002) as an in-process simulation — the third DHT substrate
// behind the overlay contract, and the structurally different one: where
// Chord and Pastry route recursively hop-by-hop toward a ring position,
// Kademlia's querying node drives the whole lookup itself, keeping α
// probes in flight toward the XOR-closest contacts it knows and stepping
// its shortlist closer with every reply (internal/lookup is that shared
// engine). Values live on the K closest nodes to their key rather than
// on a single owner, and a republisher refreshes stored entries before
// they expire, so crash churn is absorbed by replication instead of by
// ring repair.
//
// The simulation is message-faithful where it matters: every FIND/STORE
// is a real request/response pair correlated by MsgID through an
// inflight waiter map with a per-RPC timeout, handlers run on their own
// goroutines, routing tables are k-buckets with LRU eviction backed by a
// replacement cache, and an unresponsive node times out exactly like a
// dead one — so α-parallel lookups, eviction policy and churn behaviour
// are exercised for real, not oracled.
package kademlia

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
)

// Errors returned by the Kademlia layer.
var (
	// ErrEmptyNetwork is returned when an operation requires at least one
	// live node.
	ErrEmptyNetwork = errors.New("kademlia: network has no live nodes")
	// ErrNodeExists is returned when a node address is already in use.
	ErrNodeExists = errors.New("kademlia: node already exists")
	// ErrNodeUnknown is returned for an address not in the network.
	ErrNodeUnknown = errors.New("kademlia: unknown node")
)

// Config parameterizes a network. The zero value gets the paper-typical
// constants: K=20, α=3.
type Config struct {
	// K is the bucket capacity, lookup termination window and replica
	// candidate set size (default 20).
	K int
	// Alpha is the number of lookup probes kept in flight (default 3).
	Alpha int
	// Replicas is the number of closest nodes that receive each STORE
	// (default 3; the sim uses 1 for storage parity with the ring
	// substrates, the churn soak uses more).
	Replicas int
	// RPCTimeout is the per-probe wait before a contact is declared
	// unresponsive (default 75ms).
	RPCTimeout time.Duration
	// TTL is the stored-entry lifetime enforced by ExpireOnce; 0 means
	// entries never expire (the republisher refreshes them regardless).
	TTL time.Duration
	// Seed drives nothing yet but keeps parity with the other substrate
	// constructors; contact-point randomness lives in the Overlay adapter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 20
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 75 * time.Millisecond
	}
	return c
}

// Metrics accumulates substrate counters (snapshot with Network.Metrics).
type Metrics struct {
	// Lookups counts iterative lookups; Rounds sums their depth (the
	// α-parallel analogue of routing hops) and MaxRounds the worst one.
	Lookups, Rounds, MaxRounds int
	// Probes counts FIND RPCs issued by lookups; ProbeFailures the ones
	// that timed out.
	Probes, ProbeFailures int
	// StoreOps and RetrieveOps count Put/Get operations; BytesShipped the
	// payload bytes they moved.
	StoreOps, RetrieveOps int
	// BytesShipped sums payload bytes moved by stores, reads and
	// republishes.
	BytesShipped int64
	// Republished counts entries re-stored by the republisher (and by
	// graceful leaves); RepublishBytes their payload volume.
	Republished int
	// RepublishBytes is the maintenance byte volume behind Republished.
	RepublishBytes int64
	// Expired counts entries dropped by TTL expiry.
	Expired int
	// BucketRefreshes counts per-bucket liveness sweeps; Evictions the
	// stale heads dropped; ReplacementPromotions the cached contacts that
	// took a freed slot.
	BucketRefreshes, Evictions, ReplacementPromotions int
}

// storedEntry is one stored value plus the republish bookkeeping.
type storedEntry struct {
	entry    overlay.Entry
	storedAt time.Time
}

// Node is one Kademlia peer: an address, its SHA-1 identifier, a
// k-bucket routing table and a multi-entry key-value store.
type Node struct {
	// Addr is the node's unique address.
	Addr string
	// ID is SHA-1 of the address.
	ID keyspace.Key

	table *table

	mu    sync.Mutex
	store map[keyspace.Key][]storedEntry
}

// contact returns the node's directory entry.
func (nd *Node) contact() lookup.Contact {
	return lookup.Contact{Addr: nd.Addr, ID: nd.ID}
}

// putLocal stores e under key, idempotently on (Kind, Value), refreshing
// the republish timestamp either way. It reports whether the entry was new.
func (nd *Node) putLocal(key keyspace.Key, e overlay.Entry, now time.Time) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for i, have := range nd.store[key] {
		if have.entry == e {
			nd.store[key][i].storedAt = now
			return false
		}
	}
	nd.store[key] = append(nd.store[key], storedEntry{entry: e, storedAt: now})
	return true
}

// getLocal returns a copy of the entries under key, nil when absent.
func (nd *Node) getLocal(key keyspace.Key) []overlay.Entry {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	stored := nd.store[key]
	if len(stored) == 0 {
		return nil
	}
	out := make([]overlay.Entry, len(stored))
	for i, se := range stored {
		out[i] = se.entry
	}
	return out
}

// removeLocal deletes the exact entry under key, reporting whether it
// existed.
func (nd *Node) removeLocal(key keyspace.Key, e overlay.Entry) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	entries := nd.store[key]
	for i, have := range entries {
		if have.entry == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(nd.store, key)
			} else {
				nd.store[key] = entries
			}
			return true
		}
	}
	return false
}

// Network is the in-process Kademlia overlay. All methods are safe for
// concurrent use; lookups genuinely run their α probes in parallel.
type Network struct {
	cfg Config

	mu           sync.RWMutex
	nodes        map[string]*Node
	sorted       []*Node // by ID: stable iteration for Addrs and stats
	unresponsive map[string]bool

	msgID      atomic.Uint64
	inflightMu sync.Mutex
	inflight   map[uint64]chan message

	inflightProbes atomic.Int64

	metricsMu sync.Mutex
	metrics   Metrics
	// hops is nil until Instrument; Observe on nil is a no-op.
	hops *telemetry.Histogram
}

// NewNetwork creates an empty overlay with the given configuration.
func NewNetwork(cfg Config) *Network {
	return &Network{
		cfg:          cfg.withDefaults(),
		nodes:        make(map[string]*Node),
		unresponsive: make(map[string]bool),
		inflight:     make(map[uint64]chan message),
	}
}

// Size returns the number of live nodes.
func (n *Network) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Metrics returns a snapshot of the substrate counters.
func (n *Network) Metrics() Metrics {
	n.metricsMu.Lock()
	defer n.metricsMu.Unlock()
	return n.metrics
}

// ResetMetrics zeroes the counters (used between experiment phases).
func (n *Network) ResetMetrics() {
	n.metricsMu.Lock()
	defer n.metricsMu.Unlock()
	n.metrics = Metrics{}
}

// Nodes returns the live nodes sorted by ID. The slice is a copy.
func (n *Network) Nodes() []*Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Node, len(n.sorted))
	copy(out, n.sorted)
	return out
}

// NodeAt returns the node with the given address.
func (n *Network) NodeAt(addr string) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	return node, nil
}

// SetUnresponsive makes a node silently drop every incoming RPC (true)
// or serve normally again (false) — the fault tests' black-hole switch.
// The node stays a member; callers observe it only as timeouts.
func (n *Network) SetUnresponsive(addr string, dead bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dead {
		n.unresponsive[addr] = true
	} else {
		delete(n.unresponsive, addr)
	}
}

// AddNode joins a node: it learns a bootstrap contact and runs the
// standard warmup lookup for its own ID, which both fills its table and
// introduces it to its ID-neighbourhood (their handlers observe the
// joiner). No keys migrate on join — the republisher re-covers them.
func (n *Network) AddNode(addr string) (*Node, error) {
	node := &Node{
		Addr:  addr,
		ID:    keyspace.NewKey(addr),
		store: make(map[keyspace.Key][]storedEntry),
	}
	node.table = newTable(node.contact(), n.cfg.K)

	n.mu.Lock()
	if _, ok := n.nodes[addr]; ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, addr)
	}
	var bootstrap *Node
	if len(n.sorted) > 0 {
		bootstrap = n.sorted[0]
	}
	n.nodes[addr] = node
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(node.ID) >= 0
	})
	n.sorted = append(n.sorted, nil)
	copy(n.sorted[i+1:], n.sorted[i:])
	n.sorted[i] = node
	n.mu.Unlock()

	if bootstrap != nil {
		node.table.observe(bootstrap.contact(), nil)
		n.findClosest(node, node.ID)
	}
	return node, nil
}

// Populate adds count nodes with generated addresses.
func (n *Network) Populate(count int) ([]*Node, error) {
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		node, err := n.AddNode(fmt.Sprintf("kad-%04d", i))
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}

// RemoveNode gracefully removes a node: before departing it republishes
// every entry it holds to the key's closest surviving nodes (counted as
// maintenance traffic), the Kademlia analogue of a ring hand-off.
func (n *Network) RemoveNode(addr string) error {
	node, err := n.detach(addr)
	if err != nil {
		return err
	}
	node.mu.Lock()
	stored := node.store
	node.store = make(map[keyspace.Key][]storedEntry)
	node.mu.Unlock()

	origin := n.anyNode()
	if origin == nil {
		return nil
	}
	for key, entries := range stored {
		es := make([]overlay.Entry, len(entries))
		for i, se := range entries {
			es[i] = se.entry
		}
		n.republishEntries(origin, key, es)
	}
	return nil
}

// FailNode crashes a node: its keys vanish and its contact lingers
// stale in other tables until probes time it out. Data survives only
// through replication.
func (n *Network) FailNode(addr string) error {
	_, err := n.detach(addr)
	return err
}

// detach removes the node from membership and returns it.
func (n *Network) detach(addr string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	delete(n.nodes, addr)
	delete(n.unresponsive, addr)
	for i, s := range n.sorted {
		if s == node {
			n.sorted = append(n.sorted[:i], n.sorted[i+1:]...)
			break
		}
	}
	return node, nil
}

// anyNode returns an arbitrary live node (the lowest ID), nil when empty.
func (n *Network) anyNode() *Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.sorted) == 0 {
		return nil
	}
	return n.sorted[0]
}

// Instrument exports the kademlia_* metric families on reg (collector
// pattern: the series read Metrics() at snapshot time) and starts
// recording the per-lookup rounds histogram there.
func (n *Network) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.metricsMu.Lock()
	n.hops = reg.Histogram("kademlia_lookup_rounds",
		"Iterative lookup depth (α-parallel hops) to converge on a key's closest set.",
		telemetry.HopBuckets)
	n.metricsMu.Unlock()
	reg.CounterFunc("kademlia_lookups_total",
		"Iterative FIND_NODE/FIND_VALUE lookups run by the substrate.",
		func() float64 { return float64(n.Metrics().Lookups) })
	reg.CounterFunc("kademlia_probes_total",
		"FIND probes issued across all lookups (α in flight each).",
		func() float64 { return float64(n.Metrics().Probes) })
	reg.CounterFunc("kademlia_probe_failures_total",
		"Lookup probes that timed out against unresponsive or departed contacts.",
		func() float64 { return float64(n.Metrics().ProbeFailures) })
	reg.CounterFunc("kademlia_store_ops_total",
		"Put operations served by the substrate.",
		func() float64 { return float64(n.Metrics().StoreOps) })
	reg.CounterFunc("kademlia_retrieve_ops_total",
		"Get operations served by the substrate.",
		func() float64 { return float64(n.Metrics().RetrieveOps) })
	reg.CounterFunc("kademlia_bytes_shipped_total",
		"Payload bytes moved between nodes (store, get, republish).",
		func() float64 { return float64(n.Metrics().BytesShipped) })
	reg.CounterFunc("kademlia_republished_entries_total",
		"Entries re-stored by the republisher and by graceful leaves.",
		func() float64 { return float64(n.Metrics().Republished) })
	reg.CounterFunc("kademlia_expired_entries_total",
		"Stored entries dropped by TTL expiry.",
		func() float64 { return float64(n.Metrics().Expired) })
	reg.CounterFunc("kademlia_bucket_refreshes_total",
		"Per-bucket liveness sweeps run by the maintenance loop.",
		func() float64 { return float64(n.Metrics().BucketRefreshes) })
	reg.CounterFunc("kademlia_evictions_total",
		"Stale LRU bucket heads evicted after a failed liveness check.",
		func() float64 { return float64(n.Metrics().Evictions) })
	reg.CounterFunc("kademlia_replacement_promotions_total",
		"Replacement-cache contacts promoted into a freed bucket slot.",
		func() float64 { return float64(n.Metrics().ReplacementPromotions) })
	reg.GaugeFunc("kademlia_inflight_probes",
		"Lookup probes currently in flight across the network.",
		func() float64 { return float64(n.inflightProbes.Load()) })
	reg.GaugeFunc("kademlia_nodes",
		"Live nodes in the simulated overlay.",
		func() float64 { return float64(n.Size()) })
}
