package kademlia

import (
	"sort"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
)

// bucket is one k-bucket: a least-recently-seen-ordered contact list
// (index 0 is the LRU head, the contact longest unheard from) plus a
// replacement cache of fresh candidates that arrived while the bucket
// was full. Kademlia §2.2: long-lived contacts are preferred — a full
// bucket never evicts a responsive head for a newcomer; the newcomer
// waits in the replacement cache until a slot frees up.
type bucket struct {
	entries     []lookup.Contact // LRU order: head first
	replacement []lookup.Contact // most recently seen last
}

// observeOutcome reports what a table observation did, for metrics.
type observeOutcome struct {
	// evicted is true when an unresponsive LRU head was dropped to admit
	// the newcomer.
	evicted bool
	// cached is true when the newcomer was parked in the replacement
	// cache because the head proved responsive.
	cached bool
}

// table is one node's routing state: keyspace.Bits k-buckets indexed by
// the position of the highest differing bit between the node's own ID
// and a contact's ID (bucket i holds contacts at XOR distance in
// [2^i, 2^(i+1))).
type table struct {
	mu   sync.Mutex
	self lookup.Contact
	k    int
	// buckets are allocated eagerly; with random IDs only the top few
	// dozen ever fill.
	buckets [keyspace.Bits]bucket
}

// newTable creates the routing table for one node.
func newTable(self lookup.Contact, k int) *table {
	return &table{self: self, k: k}
}

// bucketIndex returns the bucket for a contact ID, or -1 for the node's
// own ID — a node never routes to itself, so self-insertion is rejected.
func (t *table) bucketIndex(id keyspace.Key) int {
	return t.self.ID.XOR(id).BitLen() - 1
}

// observe records that a contact was heard from. ping, when non-nil, is
// used to liveness-check the LRU head of a full bucket: a responsive
// head keeps its slot (the newcomer goes to the replacement cache), an
// unresponsive one is evicted in the newcomer's favour. A nil ping
// presumes the head alive — the no-network-under-locks choice for RPC
// handlers, which must not block on a probe of their own.
func (t *table) observe(c lookup.Contact, ping func(lookup.Contact) bool) observeOutcome {
	i := t.bucketIndex(c.ID)
	if i < 0 {
		return observeOutcome{} // self: never inserted
	}
	t.mu.Lock()
	b := &t.buckets[i]
	for j, have := range b.entries {
		if have.Addr == c.Addr {
			// Already known: move to the most-recently-seen tail.
			copy(b.entries[j:], b.entries[j+1:])
			b.entries[len(b.entries)-1] = c
			t.mu.Unlock()
			return observeOutcome{}
		}
	}
	if len(b.entries) < t.k {
		b.entries = append(b.entries, c)
		t.mu.Unlock()
		return observeOutcome{}
	}
	head := b.entries[0]
	t.mu.Unlock()

	alive := ping == nil || ping(head)

	t.mu.Lock()
	defer t.mu.Unlock()
	b = &t.buckets[i]
	if alive {
		// Refresh the head's position and park the newcomer.
		for j, have := range b.entries {
			if have.Addr == head.Addr {
				copy(b.entries[j:], b.entries[j+1:])
				b.entries[len(b.entries)-1] = head
				break
			}
		}
		b.stashReplacement(c, t.k)
		return observeOutcome{cached: true}
	}
	// Unresponsive head: evict it and admit the newcomer at the tail.
	for j, have := range b.entries {
		if have.Addr == head.Addr {
			b.entries = append(b.entries[:j], b.entries[j+1:]...)
			break
		}
	}
	if len(b.entries) < t.k {
		b.entries = append(b.entries, c)
	} else {
		b.stashReplacement(c, t.k)
	}
	return observeOutcome{evicted: true}
}

// stashReplacement records c as a fresh candidate, newest last, bounded
// by the bucket capacity. Callers hold t.mu.
func (b *bucket) stashReplacement(c lookup.Contact, k int) {
	for j, have := range b.replacement {
		if have.Addr == c.Addr {
			b.replacement = append(b.replacement[:j], b.replacement[j+1:]...)
			break
		}
	}
	b.replacement = append(b.replacement, c)
	if len(b.replacement) > k {
		b.replacement = b.replacement[1:]
	}
}

// remove drops a contact that failed a probe and promotes the freshest
// replacement-cache candidate into the freed slot. It reports whether
// the contact was present and whether a promotion happened.
func (t *table) remove(id keyspace.Key, addr string) (removed, promoted bool) {
	i := t.bucketIndex(id)
	if i < 0 {
		return false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[i]
	for j, have := range b.entries {
		if have.Addr == addr {
			b.entries = append(b.entries[:j], b.entries[j+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		for j, have := range b.replacement {
			if have.Addr == addr {
				b.replacement = append(b.replacement[:j], b.replacement[j+1:]...)
				break
			}
		}
		return false, false
	}
	if len(b.replacement) > 0 {
		c := b.replacement[len(b.replacement)-1]
		b.replacement = b.replacement[:len(b.replacement)-1]
		b.entries = append(b.entries, c)
		promoted = true
	}
	return removed, promoted
}

// closest returns up to n contacts from the table sorted by XOR
// distance to target.
func (t *table) closest(target keyspace.Key, n int) []lookup.Contact {
	t.mu.Lock()
	var all []lookup.Contact
	for i := range t.buckets {
		all = append(all, t.buckets[i].entries...)
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.XOR(target).Cmp(all[j].ID.XOR(target)) < 0
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// heads returns the LRU head of every non-empty bucket — the contacts a
// liveness sweep should check first.
func (t *table) heads() []lookup.Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []lookup.Contact
	for i := range t.buckets {
		if len(t.buckets[i].entries) > 0 {
			out = append(out, t.buckets[i].entries[0])
		}
	}
	return out
}

// size returns the number of contacts in the table (replacement caches
// excluded).
func (t *table) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}
