package kademlia

import (
	"sort"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
	"dhtindex/internal/overlay"
)

// xorDistance is the engine metric: Kademlia compares contacts by the
// XOR of their ID with the target.
func xorDistance(id, target keyspace.Key) keyspace.Key { return id.XOR(target) }

// probeFn builds the engine's probe callback for one origin node: each
// probe is a correlated RPC; a timeout removes the contact from the
// origin's table (promoting a replacement-cache candidate), a response
// refreshes it — the lookups themselves keep the tables honest.
func (n *Network) probeFn(origin *Node, op string) func(lookup.Contact, keyspace.Key) (lookup.ProbeResult, error) {
	return func(c lookup.Contact, target keyspace.Key) (lookup.ProbeResult, error) {
		n.inflightProbes.Add(1)
		defer n.inflightProbes.Add(-1)
		resp, err := n.call(origin.contact(), c.Addr, message{Op: op, Target: target})
		if err != nil {
			_, promoted := origin.table.remove(c.ID, c.Addr)
			if promoted {
				n.metricsMu.Lock()
				n.metrics.ReplacementPromotions++
				n.metricsMu.Unlock()
			}
			return lookup.ProbeResult{}, err
		}
		origin.table.observe(c, nil)
		pr := lookup.ProbeResult{Contacts: resp.Contacts}
		if op == opFindValue && len(resp.Entries) > 0 {
			pr.Done = true
			pr.Value = resp.Entries
		}
		return pr, nil
	}
}

// recordLookup folds one engine run into the counters.
func (n *Network) recordLookup(res lookup.Result) {
	n.metricsMu.Lock()
	n.metrics.Lookups++
	n.metrics.Rounds += res.Hops
	if res.Hops > n.metrics.MaxRounds {
		n.metrics.MaxRounds = res.Hops
	}
	n.metrics.Probes += res.Probes
	n.metrics.ProbeFailures += res.Failed
	hops := n.hops
	n.metricsMu.Unlock()
	hops.Observe(float64(res.Hops))
}

// findClosest runs an iterative FIND_NODE from origin and returns the K
// closest live contacts to target — the origin itself included when it
// qualifies, since it is as much a storage candidate as any peer.
func (n *Network) findClosest(origin *Node, target keyspace.Key) ([]lookup.Contact, lookup.Result) {
	res := lookup.Run(lookup.Config{
		Target:   target,
		Seeds:    origin.table.closest(target, n.cfg.K),
		Alpha:    n.cfg.Alpha,
		K:        n.cfg.K,
		Distance: xorDistance,
		Probe:    n.probeFn(origin, opFindNode),
	})
	n.recordLookup(res)
	return mergeContact(res.Closest, origin.contact(), target, n.cfg.K), res
}

// mergeContact inserts c into a distance-sorted contact list, keeping
// at most k and deduplicating by address.
func mergeContact(sorted []lookup.Contact, c lookup.Contact, target keyspace.Key, k int) []lookup.Contact {
	for _, have := range sorted {
		if have.Addr == c.Addr {
			return sorted
		}
	}
	d := c.ID.XOR(target)
	i := sort.Search(len(sorted), func(i int) bool {
		return sorted[i].ID.XOR(target).Cmp(d) >= 0
	})
	out := append(sorted, lookup.Contact{})
	copy(out[i+1:], out[i:])
	out[i] = c
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// findValue runs an iterative FIND_VALUE from origin: the origin's own
// store answers at zero hops, otherwise the crawl short-circuits at the
// first probed contact holding entries under the key.
func (n *Network) findValue(origin *Node, target keyspace.Key) ([]overlay.Entry, string, lookup.Result) {
	if entries := origin.getLocal(target); entries != nil {
		return entries, origin.Addr, lookup.Result{}
	}
	res := lookup.Run(lookup.Config{
		Target:   target,
		Seeds:    origin.table.closest(target, n.cfg.K),
		Alpha:    n.cfg.Alpha,
		K:        n.cfg.K,
		Distance: xorDistance,
		Probe:    n.probeFn(origin, opFindValue),
	})
	n.recordLookup(res)
	if res.Done != nil {
		return res.Value.([]overlay.Entry), res.Done.Addr, res
	}
	holder := origin.Addr
	if len(res.Closest) > 0 {
		holder = res.Closest[0].Addr
	}
	return nil, holder, res
}

// store writes e under key on the Replicas closest nodes, returning the
// primary (closest) contact and the lookup that located the replica set.
func (n *Network) store(origin *Node, key keyspace.Key, e overlay.Entry) (lookup.Contact, lookup.Result, error) {
	closest, res := n.findClosest(origin, key)
	if len(closest) == 0 {
		return lookup.Contact{}, res, ErrEmptyNetwork
	}
	reps := n.cfg.Replicas
	if reps > len(closest) {
		reps = len(closest)
	}
	for _, c := range closest[:reps] {
		if _, err := n.call(origin.contact(), c.Addr, message{Op: opStore, Target: key, Entry: e}); err != nil {
			continue // replica departed mid-store; the republisher re-covers
		}
		n.metricsMu.Lock()
		n.metrics.BytesShipped += int64(len(e.Value))
		n.metricsMu.Unlock()
	}
	n.metricsMu.Lock()
	n.metrics.StoreOps++
	n.metricsMu.Unlock()
	return closest[0], res, nil
}

// LookupInfo reports one routed lookup for benches and harnesses.
type LookupInfo struct {
	// Closest is the converged closest-contact set.
	Closest []lookup.Contact
	// Hops is the iterative depth, Probes the RPCs issued, Failed the
	// probes that timed out.
	Hops, Probes, Failed int
}

// Lookup locates the K closest nodes to key starting from the node at
// from (empty: an arbitrary live node) — the substrate's FindNode
// surface, used by the hop sweeps.
func (n *Network) Lookup(from string, key keyspace.Key) (LookupInfo, error) {
	var origin *Node
	if from == "" {
		origin = n.anyNode()
	} else {
		var err error
		if origin, err = n.NodeAt(from); err != nil {
			return LookupInfo{}, err
		}
	}
	if origin == nil {
		return LookupInfo{}, ErrEmptyNetwork
	}
	closest, res := n.findClosest(origin, key)
	return LookupInfo{Closest: closest, Hops: res.Hops, Probes: res.Probes, Failed: res.Failed}, nil
}

// republishEntries re-stores one key's entries on its current closest
// replica set, counting the traffic as maintenance.
func (n *Network) republishEntries(origin *Node, key keyspace.Key, entries []overlay.Entry) {
	closest, _ := n.findClosest(origin, key)
	reps := n.cfg.Replicas
	if reps > len(closest) {
		reps = len(closest)
	}
	for _, c := range closest[:reps] {
		for _, e := range entries {
			if _, err := n.call(origin.contact(), c.Addr, message{Op: opStore, Target: key, Entry: e}); err != nil {
				continue
			}
			n.metricsMu.Lock()
			n.metrics.Republished++
			n.metrics.RepublishBytes += int64(len(e.Value))
			n.metrics.BytesShipped += int64(len(e.Value))
			n.metricsMu.Unlock()
		}
	}
}

// RepublishOnce has every node re-store every entry it holds to the
// key's current closest replica set — the Kademlia maintenance step that
// restores replication after churn and refreshes entries before TTL
// expiry. It returns the number of entries shipped.
func (n *Network) RepublishOnce() int {
	before := n.Metrics().Republished
	now := time.Now()
	for _, nd := range n.Nodes() {
		nd.mu.Lock()
		keys := make([]keyspace.Key, 0, len(nd.store))
		snapshot := make([][]overlay.Entry, 0, len(nd.store))
		for key, stored := range nd.store {
			es := make([]overlay.Entry, len(stored))
			for i, se := range stored {
				es[i] = se.entry
			}
			keys = append(keys, key)
			snapshot = append(snapshot, es)
		}
		nd.mu.Unlock()
		for i, key := range keys {
			n.republishEntries(nd, key, snapshot[i])
		}
		// A republish counts as a refresh of the local copies too.
		nd.mu.Lock()
		for _, key := range keys {
			for i := range nd.store[key] {
				nd.store[key][i].storedAt = now
			}
		}
		nd.mu.Unlock()
	}
	return n.Metrics().Republished - before
}

// ExpireOnce drops every stored entry older than the configured TTL at
// time now, returning how many were dropped. A zero TTL disables expiry.
func (n *Network) ExpireOnce(now time.Time) int {
	if n.cfg.TTL <= 0 {
		return 0
	}
	dropped := 0
	for _, nd := range n.Nodes() {
		nd.mu.Lock()
		for key, stored := range nd.store {
			kept := stored[:0]
			for _, se := range stored {
				if now.Sub(se.storedAt) < n.cfg.TTL {
					kept = append(kept, se)
				} else {
					dropped++
				}
			}
			if len(kept) == 0 {
				delete(nd.store, key)
			} else {
				nd.store[key] = kept
			}
		}
		nd.mu.Unlock()
	}
	if dropped > 0 {
		n.metricsMu.Lock()
		n.metrics.Expired += dropped
		n.metricsMu.Unlock()
	}
	return dropped
}

// RefreshBuckets liveness-checks the LRU head of every non-empty bucket
// on every node, evicting the heads that no longer answer and promoting
// replacement-cache candidates into the freed slots.
func (n *Network) RefreshBuckets() {
	for _, nd := range n.Nodes() {
		heads := nd.table.heads()
		n.metricsMu.Lock()
		n.metrics.BucketRefreshes += len(heads)
		n.metricsMu.Unlock()
		for _, h := range heads {
			if n.ping(nd, h) {
				continue
			}
			_, promoted := nd.table.remove(h.ID, h.Addr)
			n.metricsMu.Lock()
			n.metrics.Evictions++
			if promoted {
				n.metrics.ReplacementPromotions++
			}
			n.metricsMu.Unlock()
		}
	}
}

// StartRepublisher runs the maintenance loop — bucket refresh, entry
// republish, TTL expiry — every interval until the returned stop
// function is called.
func (n *Network) StartRepublisher(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				n.RefreshBuckets()
				n.RepublishOnce()
				n.ExpireOnce(time.Now())
			}
		}
	}()
	return func() {
		select {
		case <-done:
		default:
			close(done)
		}
	}
}
