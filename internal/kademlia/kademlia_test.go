package kademlia

import (
	"fmt"
	"testing"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func testConfig() Config {
	return Config{K: 8, Alpha: 3, Replicas: 3, RPCTimeout: 25 * time.Millisecond}
}

func populated(t *testing.T, cfg Config, count int) (*Network, []*Node) {
	t.Helper()
	n := NewNetwork(cfg)
	nodes, err := n.Populate(count)
	if err != nil {
		t.Fatalf("populate: %v", err)
	}
	return n, nodes
}

func TestLookupFindsGlobalClosest(t *testing.T) {
	n, nodes := populated(t, testConfig(), 48)
	key := keyspace.NewKey("some key")
	// Rank all nodes by XOR distance — the lookup must converge on the
	// true closest node regardless of where it starts.
	best := nodes[0]
	for _, nd := range nodes[1:] {
		if nd.ID.XOR(key).Cmp(best.ID.XOR(key)) < 0 {
			best = nd
		}
	}
	for _, from := range []string{"kad-0000", "kad-0031", "kad-0047"} {
		info, err := n.Lookup(from, key)
		if err != nil {
			t.Fatalf("lookup from %s: %v", from, err)
		}
		if len(info.Closest) == 0 || info.Closest[0].Addr != best.Addr {
			t.Fatalf("lookup from %s converged on %+v, want %s", from, info.Closest[:1], best.Addr)
		}
	}
	if m := n.Metrics(); m.Lookups == 0 || m.Probes == 0 {
		t.Fatalf("lookup metrics not recorded: %+v", m)
	}
}

// The α-parallel lookup must terminate and return responsive contacts
// even when the K nodes actually closest to the target all black-hole
// their RPCs (the satellite case: unresponsive closest set).
func TestLookupTerminatesWithUnresponsiveClosest(t *testing.T) {
	cfg := testConfig()
	n, nodes := populated(t, cfg, 48)
	key := keyspace.NewKey("victim key")
	ranked := append([]*Node(nil), nodes...)
	for i := range ranked {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].ID.XOR(key).Cmp(ranked[i].ID.XOR(key)) < 0 {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	for _, nd := range ranked[:cfg.K] {
		n.SetUnresponsive(nd.Addr, true)
	}
	// Start from a live node well outside the dead neighbourhood.
	from := ranked[len(ranked)-1].Addr
	done := make(chan LookupInfo, 1)
	go func() {
		info, err := n.Lookup(from, key)
		if err != nil {
			t.Errorf("lookup: %v", err)
		}
		done <- info
	}()
	var info LookupInfo
	select {
	case info = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("lookup did not terminate with unresponsive closest set")
	}
	if info.Failed < cfg.K {
		t.Fatalf("failed probes = %d, want >= %d (all dead closest tried)", info.Failed, cfg.K)
	}
	dead := make(map[string]bool, cfg.K)
	for _, nd := range ranked[:cfg.K] {
		dead[nd.Addr] = true
	}
	if len(info.Closest) == 0 {
		t.Fatal("no responsive contacts returned")
	}
	for _, c := range info.Closest {
		if dead[c.Addr] {
			t.Fatalf("unresponsive contact %s in closest set", c.Addr)
		}
	}
}

func TestOverlayPutGetRemove(t *testing.T) {
	n, _ := populated(t, testConfig(), 32)
	o := AsOverlay(n, 1)
	key := keyspace.NewKey("article:42")
	e1 := overlay.Entry{Kind: "index", Value: "entry one"}
	e2 := overlay.Entry{Kind: "index", Value: "entry two"}

	route, err := o.Put(key, e1)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if route.Node == "" {
		t.Fatal("put route has no node")
	}
	if _, err := o.Put(key, e2); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Idempotent: same (Kind, Value) again must not duplicate.
	if _, err := o.Put(key, e1); err != nil {
		t.Fatalf("re-put: %v", err)
	}

	entries, _, err := o.Get(key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (multi-entry keys, idempotent put): %+v", len(entries), entries)
	}

	existed, err := o.Remove(key, e1)
	if err != nil || !existed {
		t.Fatalf("remove: existed=%v err=%v", existed, err)
	}
	existed, err = o.Remove(key, e1)
	if err != nil || existed {
		t.Fatalf("second remove: existed=%v err=%v, want false", existed, err)
	}
	entries, _, err = o.Get(key)
	if err != nil || len(entries) != 1 || entries[0] != e2 {
		t.Fatalf("after remove: entries=%+v err=%v", entries, err)
	}
}

func TestOverlayStatsAccounting(t *testing.T) {
	n, _ := populated(t, Config{K: 8, Alpha: 3, Replicas: 1, RPCTimeout: 25 * time.Millisecond}, 16)
	o := AsOverlay(n, 7)
	key := keyspace.NewKey("stats key")
	if _, err := o.Put(key, overlay.Entry{Kind: "index", Value: "abcd"}); err != nil {
		t.Fatalf("put: %v", err)
	}
	totalKeys, totalEntries, totalBytes := 0, 0, int64(0)
	for _, addr := range o.Addrs() {
		st, err := o.StatsOf(addr)
		if err != nil {
			t.Fatalf("stats %s: %v", addr, err)
		}
		totalKeys += st.Keys
		totalEntries += st.EntriesByKind["index"]
		totalBytes += st.BytesByKind["index"]
	}
	if totalKeys != 1 || totalEntries != 1 {
		t.Fatalf("keys=%d entries=%d, want 1/1 with Replicas=1", totalKeys, totalEntries)
	}
	if want := int64(4 + keyspace.Size); totalBytes != want {
		t.Fatalf("bytes=%d, want %d (payload + per-key overhead)", totalBytes, want)
	}
}

func TestReplicationSurvivesCrash(t *testing.T) {
	cfg := testConfig() // Replicas=3
	n, _ := populated(t, cfg, 32)
	o := AsOverlay(n, 3)
	key := keyspace.NewKey("replicated key")
	e := overlay.Entry{Kind: "index", Value: "survives"}
	route, err := o.Put(key, e)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	// Crash the primary replica without any hand-off.
	if err := n.FailNode(route.Node); err != nil {
		t.Fatalf("fail %s: %v", route.Node, err)
	}
	entries, _, err := o.Get(key)
	if err != nil || len(entries) != 1 || entries[0] != e {
		t.Fatalf("after crash: entries=%+v err=%v (replication lost the entry)", entries, err)
	}
}

func TestGracefulLeaveRepublishes(t *testing.T) {
	n, _ := populated(t, Config{K: 8, Alpha: 3, Replicas: 1, RPCTimeout: 25 * time.Millisecond}, 24)
	o := AsOverlay(n, 5)
	key := keyspace.NewKey("handed-off key")
	e := overlay.Entry{Kind: "index", Value: "kept"}
	route, err := o.Put(key, e)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := n.RemoveNode(route.Node); err != nil {
		t.Fatalf("remove node: %v", err)
	}
	entries, _, err := o.Get(key)
	if err != nil || len(entries) != 1 || entries[0] != e {
		t.Fatalf("after graceful leave: entries=%+v err=%v", entries, err)
	}
	if m := n.Metrics(); m.Republished == 0 {
		t.Fatal("graceful leave shipped no republished entries")
	}
}

func TestRepublishRestoresReplication(t *testing.T) {
	cfg := testConfig()
	n, _ := populated(t, cfg, 32)
	o := AsOverlay(n, 9)
	key := keyspace.NewKey("re-covered key")
	e := overlay.Entry{Kind: "index", Value: "re-covered"}
	if _, err := o.Put(key, e); err != nil {
		t.Fatalf("put: %v", err)
	}
	holders := func() int {
		count := 0
		for _, nd := range n.Nodes() {
			if nd.getLocal(key) != nil {
				count++
			}
		}
		return count
	}
	if got := holders(); got != cfg.Replicas {
		t.Fatalf("holders=%d after put, want %d", got, cfg.Replicas)
	}
	// Crash all but one holder, then republish: the survivor must
	// restore the full replica set.
	crashed := 0
	for _, nd := range n.Nodes() {
		if crashed == cfg.Replicas-1 {
			break
		}
		if nd.getLocal(key) != nil {
			if err := n.FailNode(nd.Addr); err != nil {
				t.Fatalf("fail: %v", err)
			}
			crashed++
		}
	}
	if got := holders(); got != 1 {
		t.Fatalf("holders=%d after crashes, want 1", got)
	}
	n.RefreshBuckets()
	if got := n.RepublishOnce(); got == 0 {
		t.Fatal("republish shipped nothing")
	}
	if got := holders(); got != cfg.Replicas {
		t.Fatalf("holders=%d after republish, want %d", got, cfg.Replicas)
	}
}

func TestExpireOnce(t *testing.T) {
	cfg := testConfig()
	cfg.TTL = time.Hour
	n, nodes := populated(t, cfg, 4)
	key := keyspace.NewKey("mortal key")
	e := overlay.Entry{Kind: "cache", Value: "stale"}
	nodes[0].putLocal(key, e, time.Now())
	if got := n.ExpireOnce(time.Now()); got != 0 {
		t.Fatalf("expired %d fresh entries", got)
	}
	if got := n.ExpireOnce(time.Now().Add(2 * time.Hour)); got != 1 {
		t.Fatalf("expired %d, want 1", got)
	}
	if nodes[0].getLocal(key) != nil {
		t.Fatal("entry still present after expiry")
	}
	if m := n.Metrics(); m.Expired != 1 {
		t.Fatalf("Expired=%d, want 1", m.Expired)
	}
}

func TestStartRepublisherStops(t *testing.T) {
	n, _ := populated(t, testConfig(), 8)
	stop := n.StartRepublisher(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	if m := n.Metrics(); m.BucketRefreshes == 0 {
		t.Fatal("republisher never ran")
	}
}

func TestAddNodeDuplicateAndUnknown(t *testing.T) {
	n, _ := populated(t, testConfig(), 4)
	if _, err := n.AddNode("kad-0000"); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
	if _, err := n.NodeAt("nope"); err == nil {
		t.Fatal("NodeAt on unknown address succeeded")
	}
	if err := n.FailNode("nope"); err == nil {
		t.Fatal("FailNode on unknown address succeeded")
	}
}

func TestEmptyNetworkOps(t *testing.T) {
	n := NewNetwork(testConfig())
	o := AsOverlay(n, 1)
	if _, err := o.Put(keyspace.NewKey("k"), overlay.Entry{Kind: "index", Value: "v"}); err == nil {
		t.Fatal("put on empty network succeeded")
	}
	if _, _, err := o.Get(keyspace.NewKey("k")); err == nil {
		t.Fatal("get on empty network succeeded")
	}
	if _, err := n.Lookup("", keyspace.NewKey("k")); err == nil {
		t.Fatal("lookup on empty network succeeded")
	}
}

func TestConcurrentOverlayOps(t *testing.T) {
	n, _ := populated(t, testConfig(), 24)
	o := AsOverlay(n, 11)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 10; i++ {
				key := keyspace.NewKey(fmt.Sprintf("key-%d-%d", g, i))
				e := overlay.Entry{Kind: "index", Value: fmt.Sprintf("v-%d-%d", g, i)}
				if _, err := o.Put(key, e); err != nil {
					done <- err
					return
				}
				entries, _, err := o.Get(key)
				if err != nil {
					done <- err
					return
				}
				if len(entries) != 1 || entries[0] != e {
					done <- fmt.Errorf("key %v: got %+v", key, entries)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
