package kademlia

import (
	"fmt"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
)

func contactFor(addr string) lookup.Contact {
	return lookup.Contact{Addr: addr, ID: keyspace.NewKey(addr)}
}

// fillBucket finds k contacts landing in the same bucket of t's table
// and observes them in order, returning them oldest first.
func fillBucket(tb *table, k int) (bucketIdx int, contacts []lookup.Contact) {
	byBucket := make(map[int][]lookup.Contact)
	for i := 0; len(contacts) == 0; i++ {
		c := contactFor(fmt.Sprintf("peer-%05d", i))
		b := tb.bucketIndex(c.ID)
		byBucket[b] = append(byBucket[b], c)
		if len(byBucket[b]) == k+1 {
			bucketIdx, contacts = b, byBucket[b][:k]
		}
	}
	for _, c := range contacts {
		tb.observe(c, nil)
	}
	return bucketIdx, contacts
}

func TestTableRejectsSelfID(t *testing.T) {
	self := contactFor("self")
	tb := newTable(self, 4)
	if out := tb.observe(self, nil); out.evicted || out.cached {
		t.Fatalf("self observation did something: %+v", out)
	}
	if tb.size() != 0 {
		t.Fatalf("table size %d after self-insert, want 0", tb.size())
	}
	if removed, _ := tb.remove(self.ID, self.Addr); removed {
		t.Fatal("remove(self) reported a removal")
	}
}

func TestBucketLRUEvictionUnresponsiveHead(t *testing.T) {
	const k = 4
	tb := newTable(contactFor("self"), k)
	idx, contacts := fillBucket(tb, k)
	head := contacts[0] // least recently seen

	// A newcomer in the same bucket with an UNRESPONSIVE head: the head
	// must be evicted and the newcomer admitted.
	var newcomer lookup.Contact
	for i := 100000; ; i++ {
		c := contactFor(fmt.Sprintf("peer-%05d", i))
		if tb.bucketIndex(c.ID) == idx {
			newcomer = c
			break
		}
	}
	pinged := ""
	out := tb.observe(newcomer, func(c lookup.Contact) bool {
		pinged = c.Addr
		return false // head is dead
	})
	if pinged != head.Addr {
		t.Fatalf("pinged %q, want head %q", pinged, head.Addr)
	}
	if !out.evicted || out.cached {
		t.Fatalf("outcome %+v, want evicted", out)
	}
	entries := tb.buckets[idx].entries
	if len(entries) != k {
		t.Fatalf("bucket has %d entries, want %d", len(entries), k)
	}
	for _, have := range entries {
		if have.Addr == head.Addr {
			t.Fatal("dead head still in bucket")
		}
	}
	if entries[len(entries)-1].Addr != newcomer.Addr {
		t.Fatalf("newcomer not at MRU tail: %+v", entries)
	}
}

func TestBucketResponsiveHeadKeepsSlot(t *testing.T) {
	const k = 4
	tb := newTable(contactFor("self"), k)
	idx, contacts := fillBucket(tb, k)
	head := contacts[0]

	var newcomer lookup.Contact
	for i := 100000; ; i++ {
		c := contactFor(fmt.Sprintf("peer-%05d", i))
		if tb.bucketIndex(c.ID) == idx {
			newcomer = c
			break
		}
	}
	out := tb.observe(newcomer, func(lookup.Contact) bool { return true })
	if !out.cached || out.evicted {
		t.Fatalf("outcome %+v, want cached", out)
	}
	entries := tb.buckets[idx].entries
	// Responsive head keeps membership and moves to the MRU tail;
	// the newcomer waits in the replacement cache.
	if entries[len(entries)-1].Addr != head.Addr {
		t.Fatalf("head not refreshed to tail: %+v", entries)
	}
	for _, have := range entries {
		if have.Addr == newcomer.Addr {
			t.Fatal("newcomer admitted despite responsive head")
		}
	}
	repl := tb.buckets[idx].replacement
	if len(repl) != 1 || repl[0].Addr != newcomer.Addr {
		t.Fatalf("replacement cache %+v, want [%s]", repl, newcomer.Addr)
	}
}

func TestRemovePromotesReplacement(t *testing.T) {
	const k = 4
	tb := newTable(contactFor("self"), k)
	idx, contacts := fillBucket(tb, k)

	var cached lookup.Contact
	for i := 100000; ; i++ {
		c := contactFor(fmt.Sprintf("peer-%05d", i))
		if tb.bucketIndex(c.ID) == idx {
			cached = c
			break
		}
	}
	tb.observe(cached, func(lookup.Contact) bool { return true }) // parks in cache

	victim := contacts[2]
	removed, promoted := tb.remove(victim.ID, victim.Addr)
	if !removed || !promoted {
		t.Fatalf("remove: removed=%v promoted=%v, want true/true", removed, promoted)
	}
	entries := tb.buckets[idx].entries
	if len(entries) != k {
		t.Fatalf("bucket has %d entries after promotion, want %d", len(entries), k)
	}
	found := false
	for _, have := range entries {
		if have.Addr == cached.Addr {
			found = true
		}
		if have.Addr == victim.Addr {
			t.Fatal("removed contact still present")
		}
	}
	if !found {
		t.Fatal("cached contact not promoted into the freed slot")
	}
	if len(tb.buckets[idx].replacement) != 0 {
		t.Fatal("replacement cache not drained by promotion")
	}

	// Removing with an empty cache removes without promotion.
	removed, promoted = tb.remove(entries[0].ID, entries[0].Addr)
	if !removed || promoted {
		t.Fatalf("remove: removed=%v promoted=%v, want true/false", removed, promoted)
	}
}

func TestObserveRefreshesKnownContact(t *testing.T) {
	const k = 4
	tb := newTable(contactFor("self"), k)
	idx, contacts := fillBucket(tb, k)
	head := contacts[0]
	// Hearing from the LRU head again moves it to the MRU tail without
	// any eviction machinery.
	out := tb.observe(head, func(lookup.Contact) bool {
		t.Fatal("ping used for an already-known contact")
		return false
	})
	if out.evicted || out.cached {
		t.Fatalf("outcome %+v, want no-op refresh", out)
	}
	entries := tb.buckets[idx].entries
	if entries[len(entries)-1].Addr != head.Addr {
		t.Fatalf("head not moved to tail: %+v", entries)
	}
	if entries[0].Addr != contacts[1].Addr {
		t.Fatalf("new LRU head %s, want %s", entries[0].Addr, contacts[1].Addr)
	}
}

func TestClosestSortsAndBounds(t *testing.T) {
	tb := newTable(contactFor("self"), 20)
	for i := 0; i < 64; i++ {
		tb.observe(contactFor(fmt.Sprintf("peer-%05d", i)), nil)
	}
	target := keyspace.NewKey("target")
	got := tb.closest(target, 10)
	if len(got) != 10 {
		t.Fatalf("got %d contacts, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID.XOR(target).Cmp(got[i].ID.XOR(target)) > 0 {
			t.Fatalf("closest not sorted by XOR distance at %d", i)
		}
	}
}
