package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Overlay adapts a Kademlia Network to the substrate contract. Unlike
// the ring substrates there is no single owner per key: Put replicates
// to the Replicas closest nodes, Get short-circuits at the first holder
// found, and Route.Node reports the closest replica.
type Overlay struct {
	net *Network

	rngMu sync.Mutex
	rng   *rand.Rand
}

var (
	_ overlay.Network        = (*Overlay)(nil)
	_ overlay.ContextNetwork = (*Overlay)(nil)
)

// AsOverlay wraps the network; the seed drives contact-point selection.
func AsOverlay(net *Network, seed int64) *Overlay {
	return &Overlay{net: net, rng: rand.New(rand.NewSource(seed))}
}

// start picks the random live node each operation routes from.
func (o *Overlay) start() *Node {
	o.net.mu.RLock()
	size := len(o.net.sorted)
	o.net.mu.RUnlock()
	if size == 0 {
		return nil
	}
	o.rngMu.Lock()
	i := o.rng.Intn(size)
	o.rngMu.Unlock()
	o.net.mu.RLock()
	defer o.net.mu.RUnlock()
	if len(o.net.sorted) == 0 {
		return nil
	}
	if i >= len(o.net.sorted) {
		i = len(o.net.sorted) - 1
	}
	return o.net.sorted[i]
}

// Put implements overlay.Network: the entry is stored on the Replicas
// closest nodes to the key; the route reports the closest of them.
func (o *Overlay) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	origin := o.start()
	if origin == nil {
		return overlay.Route{}, ErrEmptyNetwork
	}
	primary, res, err := o.net.store(origin, key, e)
	if err != nil {
		return overlay.Route{}, err
	}
	return overlay.Route{Node: primary.Addr, Hops: res.Hops}, nil
}

// Get implements overlay.Network via an iterative FIND_VALUE.
func (o *Overlay) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	origin := o.start()
	if origin == nil {
		return nil, overlay.Route{}, ErrEmptyNetwork
	}
	entries, holder, res := o.net.findValue(origin, key)
	o.net.metricsMu.Lock()
	o.net.metrics.RetrieveOps++
	if holder != origin.Addr {
		for _, e := range entries {
			o.net.metrics.BytesShipped += int64(len(e.Value))
		}
	}
	o.net.metricsMu.Unlock()
	return entries, overlay.Route{Node: holder, Hops: res.Hops}, nil
}

// GetCtx implements overlay.ContextNetwork: the in-process substrate
// completes reads in microseconds, so the budget is checked up front.
func (o *Overlay) GetCtx(ctx context.Context, key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	if err := ctx.Err(); err != nil {
		return nil, overlay.Route{}, err
	}
	return o.Get(key)
}

// Remove implements overlay.Network. The entry is deleted from the
// key's whole closest set (not just Replicas of them) so a stale copy
// on a node that drifted out of the replica window cannot be
// republished back after the delete.
func (o *Overlay) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	origin := o.start()
	if origin == nil {
		return false, ErrEmptyNetwork
	}
	closest, _ := o.net.findClosest(origin, key)
	existed := false
	for _, c := range closest {
		resp, err := o.net.call(origin.contact(), c.Addr, message{Op: opRemove, Target: key, Entry: e})
		if err == nil && resp.OK {
			existed = true
		}
	}
	return existed, nil
}

// Addrs implements overlay.Network: live nodes in ID order.
func (o *Overlay) Addrs() []string {
	o.net.mu.RLock()
	defer o.net.mu.RUnlock()
	out := make([]string, len(o.net.sorted))
	for i, nd := range o.net.sorted {
		out[i] = nd.Addr
	}
	return out
}

// StatsOf implements overlay.Network, with the same per-key overhead
// accounting as the ring substrates.
func (o *Overlay) StatsOf(addr string) (overlay.NodeStats, error) {
	nd, err := o.net.NodeAt(addr)
	if err != nil {
		return overlay.NodeStats{}, err
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	stats := overlay.NodeStats{
		Keys:          len(nd.store),
		EntriesByKind: make(map[string]int),
		BytesByKind:   make(map[string]int64),
	}
	for _, stored := range nd.store {
		kinds := make(map[string]bool, 2)
		for _, se := range stored {
			stats.EntriesByKind[se.entry.Kind]++
			stats.BytesByKind[se.entry.Kind] += int64(len(se.entry.Value))
			kinds[se.entry.Kind] = true
		}
		for k := range kinds {
			stats.BytesByKind[k] += keyspace.Size
		}
	}
	return stats, nil
}

// Size implements overlay.Network.
func (o *Overlay) Size() int { return o.net.Size() }

// String names the substrate in reports.
func (o *Overlay) String() string {
	return fmt.Sprintf("kademlia(%d nodes)", o.net.Size())
}
