package kademlia

import (
	"errors"
	"time"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
	"dhtindex/internal/overlay"
)

// RPC operations. The envelope set mirrors the Kademlia wire protocol
// (PING, FIND_NODE, FIND_VALUE, STORE) plus the REMOVE the overlay
// contract needs.
const (
	opPing      = "PING"
	opFindNode  = "FIND_NODE"
	opFindValue = "FIND_VALUE"
	opStore     = "STORE"
	opRemove    = "REMOVE"
)

// errTimeout marks an RPC that got no response within the configured
// per-probe wait — the only way the simulation reports a dead,
// unresponsive or departed contact, exactly like a real UDP Kademlia.
var errTimeout = errors.New("kademlia: rpc timeout")

// message is the request/response envelope. Every request carries a
// MsgID and the sender's contact; the matching response echoes the
// MsgID so the transport can deliver it to the parked waiter.
type message struct {
	// ID correlates a response with its request's inflight waiter.
	ID uint64
	// Op is the RPC type (request) — responses reuse the envelope with
	// the reply fields set.
	Op string
	// From is the sender's contact; handlers feed it to their routing
	// table, which is how the network learns about joiners.
	From lookup.Contact
	// Target is the key being located/stored.
	Target keyspace.Key
	// Entry is the STORE/REMOVE payload.
	Entry overlay.Entry

	// Contacts is a FIND reply: the recipient's closest known contacts.
	Contacts []lookup.Contact
	// Entries is a FIND_VALUE hit: the entries stored under Target.
	Entries []overlay.Entry
	// OK reports handler success (REMOVE: the entry existed).
	OK bool
}

// call sends one request from a node to an address and waits for the
// correlated response: the MsgID is parked in the network's inflight
// waiter map, the recipient's handler runs on its own goroutine and the
// response is routed back through the map — the D7024E read-loop idiom,
// with the shared map standing in for per-node UDP sockets. A missing,
// crashed or unresponsive recipient never responds and the call times
// out after cfg.RPCTimeout.
func (n *Network) call(from lookup.Contact, to string, req message) (message, error) {
	req.ID = n.msgID.Add(1)
	req.From = from
	ch := make(chan message, 1)
	n.inflightMu.Lock()
	n.inflight[req.ID] = ch
	n.inflightMu.Unlock()

	go func() {
		n.mu.RLock()
		target, ok := n.nodes[to]
		dead := n.unresponsive[to]
		n.mu.RUnlock()
		if !ok || dead {
			return // dropped: the waiter times out
		}
		resp := n.handle(target, req)
		n.inflightMu.Lock()
		waiter, waiting := n.inflight[req.ID]
		delete(n.inflight, req.ID)
		n.inflightMu.Unlock()
		if waiting {
			waiter <- resp
		}
	}()

	timer := time.NewTimer(n.cfg.RPCTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-timer.C:
		n.inflightMu.Lock()
		delete(n.inflight, req.ID)
		n.inflightMu.Unlock()
		return message{}, errTimeout
	}
}

// handle serves one request on the recipient. Every request teaches the
// recipient the sender's contact (nil ping: handlers never block on a
// liveness probe of their own).
func (n *Network) handle(nd *Node, req message) message {
	nd.table.observe(req.From, nil)
	resp := message{ID: req.ID, Op: req.Op, From: nd.contact(), OK: true}
	switch req.Op {
	case opPing:
	case opFindNode:
		resp.Contacts = nd.table.closest(req.Target, n.cfg.K)
	case opFindValue:
		if entries := nd.getLocal(req.Target); entries != nil {
			resp.Entries = entries
		} else {
			resp.Contacts = nd.table.closest(req.Target, n.cfg.K)
		}
	case opStore:
		nd.putLocal(req.Target, req.Entry, time.Now())
	case opRemove:
		resp.OK = nd.removeLocal(req.Target, req.Entry)
	default:
		resp.OK = false
	}
	return resp
}

// ping liveness-checks a contact on behalf of node from.
func (n *Network) ping(from *Node, c lookup.Contact) bool {
	_, err := n.call(from.contact(), c.Addr, message{Op: opPing})
	return err == nil
}
