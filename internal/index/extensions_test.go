package index

import (
	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"fmt"
	"strings"
	"testing"
)

func TestPromoteArticleShortCircuits(t *testing.T) {
	svc, arts := fig1Service(t, Complex, cache.None, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	author := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	before, err := searcher.Find(author, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if before.Interactions != 4 {
		t.Fatalf("complex author lookup = %d, want 4", before.Interactions)
	}
	if err := svc.PromoteArticle(a, Complex); err != nil {
		t.Fatal(err)
	}
	after, err := searcher.Find(author, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if after.Interactions != 2 {
		t.Fatalf("promoted lookup = %d interactions, want 2", after.Interactions)
	}
	// Other articles are unaffected.
	other, err := searcher.Find(dataset.TitleQuery(arts[1].Title), dataset.MSD(arts[1]))
	if err != nil || other.Interactions != 3 {
		t.Fatalf("unrelated lookup changed: %+v, %v", other, err)
	}
}

func TestDemoteArticleRestores(t *testing.T) {
	svc, arts := fig1Service(t, Complex, cache.None, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	if err := svc.PromoteArticle(a, Complex); err != nil {
		t.Fatal(err)
	}
	if err := svc.DemoteArticle(a, Complex); err != nil {
		t.Fatal(err)
	}
	trace, err := searcher.Find(dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast), dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Interactions != 4 {
		t.Fatalf("after demote = %d interactions, want 4", trace.Interactions)
	}
}

func TestWithInitialsScheme(t *testing.T) {
	scheme := WithInitials(Simple)
	if scheme.Name() != "simple+initials" {
		t.Fatalf("name = %q", scheme.Name())
	}
	svc, arts := fig1Service(t, scheme, cache.None, 0)
	searcher := NewSearcher(svc)

	// A user knowing only "S" walks: S* -> Smith -> John Smith -> ... -> file.
	a := arts[0]
	trace, err := searcher.Find(dataset.InitialQuery('S'), dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Found {
		t.Fatalf("trace = %+v", trace)
	}
	if trace.Interactions != 5 { // S* -> Smith -> author -> AT -> fetch
		t.Fatalf("initial lookup = %d interactions, want 5", trace.Interactions)
	}
	// The automated mode enumerates everything under "D".
	results, _, err := searcher.SearchAll(dataset.InitialQuery('D'))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].File != "z.pdf" {
		t.Fatalf("D* results = %v, want just Doe's z.pdf", results)
	}
}

func TestWithInitialsChainsCovering(t *testing.T) {
	scheme := WithInitials(Complex)
	corpus, err := dataset.Generate(dataset.Config{Articles: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range corpus.Articles {
		for _, chain := range scheme.Chains(a) {
			for i := 0; i+1 < len(chain); i++ {
				if !chain[i].Covers(chain[i+1]) {
					t.Fatalf("link %d of %v violates covering", i, chain)
				}
			}
			if !strings.HasPrefix(chain[len(chain)-1].String(), "/article") {
				t.Fatalf("chain does not end in an article query")
			}
		}
	}
}

func TestSessionInteractiveWalk(t *testing.T) {
	svc, arts := fig1Service(t, Fig4, cache.None, 0)
	session := NewSession(svc)
	a := arts[0]

	opts, err := session.Ask(dataset.LastNameQuery("Smith"))
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Queries) != 1 || len(opts.Files) != 0 {
		t.Fatalf("step 1 options: %+v", opts)
	}
	opts, err = session.Refine(opts.Queries[0]) // John Smith
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Queries) != 2 {
		t.Fatalf("step 2 options: %+v", opts)
	}
	// Pick the TCP article's branch.
	var tcp = opts.Queries[0]
	for _, q := range opts.Queries {
		if q.Covers(dataset.MSD(a)) {
			tcp = q
		}
	}
	opts, err = session.Refine(tcp)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Queries) != 1 {
		t.Fatalf("step 3 options: %+v", opts)
	}
	opts, err = session.Refine(opts.Queries[0]) // the MSD
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Files) != 1 || opts.Files[0] != "x.pdf" {
		t.Fatalf("final options: %+v", opts)
	}
	if session.Interactions() != 4 {
		t.Fatalf("interactions = %d, want 4", session.Interactions())
	}
}

func TestSessionGuards(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0)
	session := NewSession(svc)
	if _, err := session.Refine(dataset.TitleQuery("TCP")); err == nil {
		t.Fatal("Refine before Ask accepted")
	}
	if _, err := session.Back(); err == nil {
		t.Fatal("Back on empty session accepted")
	}
	opts, err := session.Ask(dataset.TitleQuery("TCP"))
	if err != nil {
		t.Fatal(err)
	}
	// Refining to something never offered must fail.
	if _, err := session.Refine(dataset.TitleQuery("Wavelets")); err == nil {
		t.Fatal("unoffered refinement accepted")
	}
	if _, ok := session.Position(); !ok {
		t.Fatal("position missing after Ask")
	}
	// Walk one step, back out, and verify the old options return.
	next, err := session.Refine(opts.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = next
	back, err := session.Back()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queries) != len(opts.Queries) {
		t.Fatalf("Back options = %+v, want same as original %+v", back, opts)
	}
}

func TestWithKeywordsScheme(t *testing.T) {
	scheme := WithKeywords(Simple, 4)
	if scheme.Name() != "simple+keywords" {
		t.Fatalf("name = %q", scheme.Name())
	}
	net := dht.NewNetwork(1)
	if _, err := net.Populate(16); err != nil {
		t.Fatal(err)
	}
	svc := New(dht.AsOverlay(net, 1), cache.None, 0)
	arts := []descriptor.Article{
		{AuthorFirst: "Jane", AuthorLast: "Doe", Title: "Scalable Routing in Overlay Networks",
			Conf: "ICDCS", Year: 2004, Size: 1000},
		{AuthorFirst: "Bob", AuthorLast: "Ray", Title: "Adaptive Routing for Sensor Networks",
			Conf: "ICDCS", Year: 2004, Size: 1000},
	}
	for i, a := range arts {
		if err := svc.PublishArticle(fmt.Sprintf("k%d.pdf", i), a, scheme); err != nil {
			t.Fatal(err)
		}
	}
	searcher := NewSearcher(svc)
	// Keyword shared by both titles finds both.
	results, _, err := searcher.SearchAll(dataset.TitleKeywordQuery("Routing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("Routing results = %v", results)
	}
	// Keyword unique to one title finds one; directed lookup works too.
	trace, err := searcher.Find(dataset.TitleKeywordQuery("Sensor"), dataset.MSD(arts[1]))
	if err != nil || !trace.Found || trace.File != "k1.pdf" {
		t.Fatalf("Sensor find: %+v, %v", trace, err)
	}
	// Stopwords and short words are not indexed.
	results, _, err = searcher.SearchAll(dataset.TitleKeywordQuery("for"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("stopword indexed: %v", results)
	}
}

func TestWithKeywordsChainsCovering(t *testing.T) {
	scheme := WithKeywords(Flat, 4)
	corpus, err := dataset.Generate(dataset.Config{Articles: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range corpus.Articles {
		for _, chain := range scheme.Chains(a) {
			for i := 0; i+1 < len(chain); i++ {
				if !chain[i].Covers(chain[i+1]) {
					t.Fatalf("chain link %d of %v violates covering", i, chain)
				}
			}
		}
	}
}

func TestTitleWords(t *testing.T) {
	words := dataset.TitleWords("Scalable Routing in the Wide-Area Networks, Revisited: Part II", 4)
	want := []string{"Scalable", "Routing", "Wide", "Area", "Networks", "Revisited", "Part"}
	if len(words) != len(want) {
		t.Fatalf("words = %v, want %v", words, want)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("words = %v, want %v", words, want)
		}
	}
}
