package index

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"dhtindex/internal/descriptor"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/xpath"
)

// KindDict marks vocabulary entries: known values of a descriptor field,
// stored in the DHT so that misspelled queries can be validated and
// corrected — the paper's §VI future-work direction ("misspellings can
// often be taken care of by validating descriptors and queries against
// databases that store known file descriptors, such as CDDB").
const KindDict = "dict"

// VocabularyEnabled turns on vocabulary registration during
// PublishArticle/Publish. It is off by default because the evaluation of
// §V does not include it.
func (s *Service) EnableVocabulary() { s.vocabulary = true }

// dictKey buckets a field's values by lowercased first rune: one DHT key
// per (field path, initial) pair keeps buckets small enough to scan.
func dictKey(path []string, value string) keyspace.Key {
	return keyspace.NewKey("dict:" + strings.Join(path, "/") + ":" + bucketOf(value))
}

// bucketOf returns the dictionary bucket label for a value.
func bucketOf(value string) string {
	for _, r := range value {
		return string(unicode.ToLower(r))
	}
	return "_"
}

// buckets enumerates every bucket label the suggester may scan.
func buckets() []string {
	out := make([]string, 0, 37)
	for r := 'a'; r <= 'z'; r++ {
		out = append(out, string(r))
	}
	for r := '0'; r <= '9'; r++ {
		out = append(out, string(r))
	}
	return append(out, "_")
}

// RegisterVocabulary stores every leaf value of the descriptor in the
// field dictionaries.
func (s *Service) RegisterVocabulary(d descriptor.Descriptor) error {
	if d.Root == nil {
		return xpath.ErrEmptyQuery
	}
	msd := xpath.MostSpecific(d)
	for _, vc := range msd.ValueConstraints() {
		key := dictKey(vc.Path, vc.Value)
		if _, err := s.net.Put(key, overlay.Entry{Kind: KindDict, Value: vc.Value}); err != nil {
			return fmt.Errorf("index: register vocabulary: %w", err)
		}
	}
	return nil
}

// SuggestValues returns known values of the field at path within the
// given edit distance of the (possibly misspelled) value, ordered by
// distance then lexicographically. It first scans the value's own bucket;
// if nothing matches (e.g. the typo is in the first letter), it widens to
// all buckets. lookups reports how many dictionary fetches were issued.
func (s *Service) SuggestValues(path []string, value string, maxDist int) (suggestions []string, lookups int, err error) {
	scan := func(bucket string) error {
		lookups++
		entries, _, err := s.net.Get(keyspace.NewKey("dict:" + strings.Join(path, "/") + ":" + bucket))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.Kind != KindDict {
				continue
			}
			if d := editDistance(value, e.Value, maxDist); d >= 0 && d <= maxDist {
				suggestions = append(suggestions, e.Value)
			}
		}
		return nil
	}
	if err := scan(bucketOf(value)); err != nil {
		return nil, lookups, err
	}
	if len(suggestions) == 0 {
		for _, b := range buckets() {
			if b == bucketOf(value) {
				continue
			}
			if err := scan(b); err != nil {
				return nil, lookups, err
			}
		}
	}
	sortSuggestions(value, maxDist, suggestions)
	return dedupeStrings(suggestions), lookups, nil
}

func sortSuggestions(value string, maxDist int, suggestions []string) {
	sort.Slice(suggestions, func(i, j int) bool {
		di := editDistance(value, suggestions[i], maxDist)
		dj := editDistance(value, suggestions[j], maxDist)
		if di != dj {
			return di < dj
		}
		return suggestions[i] < suggestions[j]
	})
}

func dedupeStrings(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// FindFuzzy behaves like Find, but when the exact query cannot reach the
// target it consults the field dictionaries, corrects misspelled values
// (up to maxDist edits per value), and retries with the corrected query.
// The combined trace charges one interaction per dictionary fetch. The
// returned query is the one that succeeded (the original, or a
// correction).
func (s *Searcher) FindFuzzy(q, target xpath.Query, maxDist int) (Trace, xpath.Query, error) {
	trace, err := s.Find(q, target)
	if err == nil {
		// Either the target was found, or the search degraded to a partial
		// result (Incomplete) on a transport failure. Neither is a
		// misspelling, so corrections would only re-walk the same index.
		return trace, q, nil
	}
	combined := trace

	// Gather correction candidates for every value constraint once.
	type correction struct {
		vc          xpath.ValueConstraint
		suggestions []string
	}
	var corrections []correction
	for _, vc := range q.ValueConstraints() {
		suggestions, lookups, serr := s.svc.SuggestValues(vc.Path, vc.Value, maxDist)
		combined.Interactions += lookups
		if serr != nil {
			return combined, q, serr
		}
		corrections = append(corrections, correction{vc: vc, suggestions: suggestions})
	}

	attemptFind := func(candidate xpath.Query) (bool, error) {
		attempt, aerr := s.Find(candidate, target)
		combined.Interactions += attempt.Interactions
		combined.ResponseBytes += attempt.ResponseBytes
		combined.CacheBytes += attempt.CacheBytes
		combined.Visited = append(combined.Visited, attempt.Visited...)
		if aerr != nil {
			return false, nil
		}
		if attempt.Incomplete {
			// The candidate's branch hit a dead hop, not a wrong spelling:
			// carry the degradation and let the next candidate try.
			combined.Incomplete = true
			combined.Unresolved = append(combined.Unresolved, attempt.Unresolved...)
			return false, nil
		}
		combined.Found = attempt.Found
		combined.File = attempt.File
		combined.CacheHit = combined.CacheHit || attempt.CacheHit
		return true, nil
	}

	// Phase 1: single-value corrections (the common one-typo case).
	for _, c := range corrections {
		for _, candidate := range c.suggestions {
			if candidate == c.vc.Value {
				continue
			}
			corrected := q.WithValue(c.vc.Path, candidate)
			if corrected.Equal(q) {
				continue
			}
			ok, err := attemptFind(corrected)
			if err != nil {
				return combined, q, err
			}
			if ok {
				return combined, corrected, nil
			}
		}
	}

	// Phase 2: correct every misspelled value to its best suggestion at
	// once (multiple simultaneous typos).
	corrected := q
	changed := false
	for _, c := range corrections {
		if len(c.suggestions) == 0 || c.suggestions[0] == c.vc.Value {
			continue
		}
		next := corrected.WithValue(c.vc.Path, c.suggestions[0])
		if !next.Equal(corrected) {
			corrected, changed = next, true
		}
	}
	if changed {
		ok, err := attemptFind(corrected)
		if err != nil {
			return combined, q, err
		}
		if ok {
			return combined, corrected, nil
		}
	}
	return combined, q, fmt.Errorf("%w (after fuzzy correction)", ErrNotFound)
}

// SearchAllFuzzy is the automated-mode counterpart of FindFuzzy: when the
// exact query matches nothing, it corrects misspelled values against the
// field dictionaries and re-runs the exhaustive search. It returns the
// results, the query that produced them, and the aggregate trace.
func (s *Searcher) SearchAllFuzzy(q xpath.Query, maxDist int) ([]Result, xpath.Query, Trace, error) {
	results, trace, err := s.SearchAll(q)
	if err != nil {
		return nil, q, trace, err
	}
	if len(results) > 0 {
		return results, q, trace, nil
	}
	corrected := q
	changed := false
	for _, vc := range q.ValueConstraints() {
		suggestions, lookups, serr := s.svc.SuggestValues(vc.Path, vc.Value, maxDist)
		trace.Interactions += lookups
		if serr != nil {
			return nil, q, trace, serr
		}
		if len(suggestions) == 0 || suggestions[0] == vc.Value {
			continue
		}
		next := corrected.WithValue(vc.Path, suggestions[0])
		if !next.Equal(corrected) {
			corrected, changed = next, true
		}
	}
	if !changed {
		return nil, q, trace, nil
	}
	results, retry, err := s.SearchAll(corrected)
	trace.Interactions += retry.Interactions
	trace.ResponseBytes += retry.ResponseBytes
	trace.Found = trace.Found || retry.Found
	return results, corrected, trace, err
}

// editDistance computes the Levenshtein distance between a and b, bailing
// out with -1 once it provably exceeds maxDist (band optimization).
func editDistance(a, b string, maxDist int) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if abs(la-lb) > maxDist {
		return -1
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > maxDist {
			return -1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > maxDist {
		return -1
	}
	return prev[lb]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
