package index

import (
	"fmt"

	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/xpath"
)

// PromoteArticle installs short-circuit entries for a popular article
// (§IV-C: "a very popular file can be linked to deep in the hierarchy to
// short-circuit some indexes and speed up lookups", e.g. the (q6; d1)
// entry for the author's most popular publication). Every non-terminal
// query of the scheme's chains gets a direct mapping to the article's
// MSD, so any entry point reaches the file in two interactions.
func (s *Service) PromoteArticle(a descriptor.Article, scheme Scheme) error {
	msd := dataset.MSD(a)
	seen := map[string]bool{}
	for _, chain := range scheme.Chains(a) {
		// Skip the final element (the MSD) and the second-to-last (whose
		// mapping to the MSD already exists).
		for i := 0; i+2 < len(chain); i++ {
			q := chain[i]
			if seen[q.String()] {
				continue
			}
			seen[q.String()] = true
			if err := s.InsertMapping(q, msd); err != nil {
				return fmt.Errorf("index: promote: %w", err)
			}
		}
	}
	return nil
}

// DemoteArticle removes the short-circuit entries PromoteArticle created.
func (s *Service) DemoteArticle(a descriptor.Article, scheme Scheme) error {
	msd := dataset.MSD(a)
	seen := map[string]bool{}
	for _, chain := range scheme.Chains(a) {
		for i := 0; i+2 < len(chain); i++ {
			q := chain[i]
			if seen[q.String()] {
				continue
			}
			seen[q.String()] = true
			if _, err := s.RemoveMapping(q, msd); err != nil {
				return fmt.Errorf("index: demote: %w", err)
			}
		}
	}
	return nil
}

// keywordsScheme decorates a base scheme with per-word title indexing:
// each significant word of the title gets a contains-constraint query
// that chains into the base scheme's title path — the "words in title"
// search that the BibFinder/NetBib interfaces offer (§V-B).
type keywordsScheme struct {
	base   Scheme
	minLen int
}

// WithKeywords wraps a scheme, adding
// title-keyword → title → (base title path) chains for every title word
// of at least minLen letters (4 is a sensible default).
func WithKeywords(base Scheme, minLen int) Scheme {
	if minLen < 1 {
		minLen = 4
	}
	return keywordsScheme{base: base, minLen: minLen}
}

// Name implements Scheme.
func (s keywordsScheme) Name() string { return s.base.Name() + "+keywords" }

// Chains implements Scheme.
func (s keywordsScheme) Chains(a descriptor.Article) [][]xpath.Query {
	chains := s.base.Chains(a)
	title := dataset.TitleQuery(a.Title)
	// Find the base scheme's title chain to splice into.
	var continuation []xpath.Query
	for _, chain := range chains {
		if len(chain) > 1 && chain[0].Equal(title) {
			continuation = chain[1:]
			break
		}
	}
	if continuation == nil {
		continuation = []xpath.Query{dataset.MSD(a)}
	}
	for _, word := range dataset.TitleWords(a.Title, s.minLen) {
		kw := dataset.TitleKeywordQuery(word)
		if !kw.Covers(title) {
			continue // defensive: metacharacters in the word
		}
		chain := append([]xpath.Query{kw, title}, continuation...)
		chains = append(chains, chain)
	}
	return chains
}

// initialsScheme decorates a base scheme with the first-letter substring
// index of §IV-C: "one can create an index with all the files of an
// author that start with the letter A, the letter B, etc." A user knowing
// only an initial can enumerate last names, then authors, then articles.
type initialsScheme struct {
	base Scheme
}

// WithInitials wraps a scheme, adding the chain
// lastname-initial → last name → author → (base scheme's author path).
func WithInitials(base Scheme) Scheme {
	return initialsScheme{base: base}
}

// Name implements Scheme.
func (s initialsScheme) Name() string { return s.base.Name() + "+initials" }

// Chains implements Scheme.
func (s initialsScheme) Chains(a descriptor.Article) [][]xpath.Query {
	chains := s.base.Chains(a)
	if a.AuthorLast == "" {
		return chains
	}
	author := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	extra := []xpath.Query{
		dataset.InitialQuery(a.AuthorLast[0]),
		dataset.LastNameQuery(a.AuthorLast),
		author,
	}
	// Splice onto the base scheme's author chain so that the walk
	// continues past the author query (base chains start at the author
	// query for every scheme in this package).
	for _, chain := range chains {
		if len(chain) > 1 && chain[0].Equal(author) {
			return append(chains, append(extra, chain[1:]...))
		}
	}
	// Base scheme has no author entry point: terminate at the MSD.
	return append(chains, append(extra, dataset.MSD(a)))
}
