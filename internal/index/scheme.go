package index

import (
	"context"
	"fmt"

	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/overlay"
	"dhtindex/internal/xpath"
)

// Scheme decides under which queries an article is indexed. Chains returns
// index chains — sequences q₁ ⊒ q₂ ⊒ … ⊒ MSD (§V-B) — whose consecutive
// pairs become the index entries. The choice of chains is the
// application-level "human input" of §IV-C.
type Scheme interface {
	// Name returns the scheme's label in the paper's figures.
	Name() string
	// Chains builds the index chains for one article. Every chain ends
	// with the article's most specific query.
	Chains(a descriptor.Article) [][]xpath.Query
}

// The three schemes of the evaluation (Fig. 8) plus the deeper
// hierarchical example of Fig. 4.
var (
	Simple  Scheme = simpleScheme{}
	Flat    Scheme = flatScheme{}
	Complex Scheme = complexScheme{}
	Fig4    Scheme = fig4Scheme{}
)

// Schemes lists the evaluation schemes in the paper's S/F/C order.
func Schemes() []Scheme { return []Scheme{Simple, Flat, Complex} }

// SchemeByName resolves a scheme label (simple|flat|complex|fig4).
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "simple":
		return Simple, nil
	case "flat":
		return Flat, nil
	case "complex":
		return Complex, nil
	case "fig4":
		return Fig4, nil
	default:
		return nil, fmt.Errorf("index: unknown scheme %q", name)
	}
}

// simpleScheme (Fig. 8 left): author and title funnel through the
// author+title pair; conference and year funnel through the
// conference+year pair.
type simpleScheme struct{}

func (simpleScheme) Name() string { return "simple" }

func (simpleScheme) Chains(a descriptor.Article) [][]xpath.Query {
	msd := dataset.MSD(a)
	author := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	title := dataset.TitleQuery(a.Title)
	at := dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title)
	conf := dataset.ConfQuery(a.Conf)
	year := dataset.YearQuery(a.Year)
	cy := dataset.ConfYearQuery(a.Conf, a.Year)
	return [][]xpath.Query{
		{author, at, msd},
		{title, at, msd},
		{conf, cy, msd},
		{year, cy, msd},
	}
}

// flatScheme (Fig. 8 center): every query points directly at the MSD, so
// the index query length is always 2.
type flatScheme struct{}

func (flatScheme) Name() string { return "flat" }

func (flatScheme) Chains(a descriptor.Article) [][]xpath.Query {
	msd := dataset.MSD(a)
	return [][]xpath.Query{
		{dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast), msd},
		{dataset.TitleQuery(a.Title), msd},
		{dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title), msd},
		{dataset.ConfQuery(a.Conf), msd},
		{dataset.YearQuery(a.Year), msd},
		{dataset.ConfYearQuery(a.Conf, a.Year), msd},
	}
}

// complexScheme (Fig. 8 right): like simple, but the author path is split
// one level deeper — "a query specifying an author and a conference
// returns a list of queries that further indicate all the publication
// years for the given author and conference" (§V-B).
type complexScheme struct{}

func (complexScheme) Name() string { return "complex" }

func (complexScheme) Chains(a descriptor.Article) [][]xpath.Query {
	msd := dataset.MSD(a)
	author := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	ac := dataset.AuthorConfQuery(a.AuthorFirst, a.AuthorLast, a.Conf)
	acy := dataset.AuthorConfYearQuery(a.AuthorFirst, a.AuthorLast, a.Conf, a.Year)
	title := dataset.TitleQuery(a.Title)
	at := dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title)
	conf := dataset.ConfQuery(a.Conf)
	year := dataset.YearQuery(a.Year)
	cy := dataset.ConfYearQuery(a.Conf, a.Year)
	return [][]xpath.Query{
		{author, ac, acy, msd},
		{title, at, msd},
		{conf, cy, msd},
		{year, cy, msd},
	}
}

// fig4Scheme is the hierarchical example of Fig. 4/5: a Last-name index
// above the Author index, the Article index keyed by author+title, and the
// Proceedings index keyed by conference+year.
type fig4Scheme struct{}

func (fig4Scheme) Name() string { return "fig4" }

func (fig4Scheme) Chains(a descriptor.Article) [][]xpath.Query {
	msd := dataset.MSD(a)
	last := dataset.LastNameQuery(a.AuthorLast)
	author := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	at := dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title)
	title := dataset.TitleQuery(a.Title)
	conf := dataset.ConfQuery(a.Conf)
	year := dataset.YearQuery(a.Year)
	cy := dataset.ConfYearQuery(a.Conf, a.Year)
	return [][]xpath.Query{
		{last, author, at, msd},
		{title, at, msd},
		{conf, cy, msd},
		{year, cy, msd},
	}
}

// PublishArticle stores the article's file reference and inserts every
// index entry the scheme prescribes. file is the opaque content reference
// (e.g. "x.pdf"). When the substrate supports batched mutation
// (overlay.BatchNetwork), the data entry and every index mapping ship as
// ONE batch — one owner-resolution round with parallel fan-out instead
// of a sequential routed put per mapping. Other substrates (the
// simulations, which account per-insert RPCs) take the sequential path.
func (s *Service) PublishArticle(file string, a descriptor.Article, scheme Scheme) error {
	if bn, ok := s.net.(overlay.BatchNetwork); ok {
		return s.publishArticleBatch(bn, file, a, scheme)
	}
	if _, err := s.Publish(file, a.Descriptor()); err != nil {
		return err
	}
	return s.IndexArticle(a, scheme)
}

// publishArticleBatch is the batched PublishArticle: every mapping is
// validated up front (covering requirement, self mappings, duplicate
// chain suffixes), then the data entry and the mappings go out in one
// PutBatch.
func (s *Service) publishArticleBatch(bn overlay.BatchNetwork, file string, a descriptor.Article, scheme Scheme) error {
	d := a.Descriptor()
	msd := xpath.MostSpecific(d)
	if msd.IsZero() {
		return fmt.Errorf("index: publish %q: %w", file, xpath.ErrEmptyQuery)
	}
	mappings, err := mappingItems(a, scheme)
	if err != nil {
		return err
	}
	items := make([]overlay.KeyEntry, 0, len(mappings)+1)
	items = append(items, overlay.KeyEntry{Key: msd.Key(), Entry: overlay.Entry{Kind: KindData, Value: file}})
	items = append(items, mappings...)
	if err := bn.PutBatch(context.Background(), items); err != nil {
		return fmt.Errorf("index: publish %q: %w", file, err)
	}
	if s.vocabulary {
		return s.RegisterVocabulary(d)
	}
	return nil
}

// IndexArticle inserts the scheme's index entries for an article that is
// already published. Batch-capable substrates receive all mappings in
// one PutBatch; others get one routed put per mapping.
func (s *Service) IndexArticle(a descriptor.Article, scheme Scheme) error {
	if bn, ok := s.net.(overlay.BatchNetwork); ok {
		items, err := mappingItems(a, scheme)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return nil
		}
		if err := bn.PutBatch(context.Background(), items); err != nil {
			return fmt.Errorf("index: scheme %s: %w", scheme.Name(), err)
		}
		return nil
	}
	for _, chain := range scheme.Chains(a) {
		for i := 0; i+1 < len(chain); i++ {
			if err := s.InsertMapping(chain[i], chain[i+1]); err != nil {
				return fmt.Errorf("index: scheme %s: %w", scheme.Name(), err)
			}
		}
	}
	return nil
}

// mappingItems flattens a scheme's chains into batch items with the
// same validation InsertMapping applies, deduplicating pairs that occur
// in several chains (e.g. conf+year → MSD appears in both the conf and
// the year chain) so the batch carries each mapping once.
func mappingItems(a descriptor.Article, scheme Scheme) ([]overlay.KeyEntry, error) {
	var items []overlay.KeyEntry
	seen := make(map[string]bool)
	for _, chain := range scheme.Chains(a) {
		for i := 0; i+1 < len(chain); i++ {
			q, target := chain[i], chain[i+1]
			if q.Equal(target) {
				return nil, fmt.Errorf("index: scheme %s: %w: %s", scheme.Name(), ErrSelfMapping, q)
			}
			if !q.Covers(target) {
				return nil, fmt.Errorf("index: scheme %s: %w: (%s ; %s)", scheme.Name(), ErrNotCovering, q, target)
			}
			pair := q.String() + "\x00" + target.String()
			if seen[pair] {
				continue
			}
			seen[pair] = true
			items = append(items, overlay.KeyEntry{Key: q.Key(), Entry: overlay.Entry{Kind: KindIndex, Value: target.String()}})
		}
	}
	return items, nil
}

// UnpublishArticle removes the article's data and cleans up the scheme's
// index entries bottom-up, deleting a mapping (q; qi) only when qi no
// longer leads anywhere — the recursive cleanup of §IV-C for read/write
// systems.
func (s *Service) UnpublishArticle(file string, a descriptor.Article, scheme Scheme) error {
	msd := dataset.MSD(a)
	if _, err := s.net.Remove(msd.Key(), overlay.Entry{Kind: KindData, Value: file}); err != nil {
		return fmt.Errorf("index: unpublish %q: %w", file, err)
	}
	for _, chain := range scheme.Chains(a) {
		// Walk bottom-up: drop (q_i ; q_{i+1}) only if q_{i+1} is now
		// empty (no data, no outgoing mappings).
		for i := len(chain) - 2; i >= 0; i-- {
			empty, err := s.keyEmpty(chain[i+1])
			if err != nil {
				return err
			}
			if !empty {
				break
			}
			if _, err := s.RemoveMapping(chain[i], chain[i+1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// keyEmpty reports whether a query's key holds neither data nor index
// entries.
func (s *Service) keyEmpty(q xpath.Query) (bool, error) {
	entries, _, err := s.net.Get(q.Key())
	if err != nil {
		return false, fmt.Errorf("index: probe %s: %w", q, err)
	}
	return len(entries) == 0, nil
}
