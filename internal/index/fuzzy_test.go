package index

import (
	"errors"
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"dhtindex/internal/xpath"
)

// fuzzyService is fig1Service with vocabularies enabled.
func fuzzyService(t *testing.T) (*Service, *Searcher) {
	t.Helper()
	net := dht.NewNetwork(1)
	if _, err := net.Populate(16); err != nil {
		t.Fatal(err)
	}
	svc := New(dht.AsOverlay(net, 1), cache.None, 0)
	svc.EnableVocabulary()
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range descriptor.Fig1Articles() {
		if err := svc.PublishArticle(files[i], a, Simple); err != nil {
			t.Fatal(err)
		}
	}
	return svc, NewSearcher(svc)
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		max  int
		want int
	}{
		{"Smith", "Smith", 2, 0},
		{"Smith", "Smih", 2, 1},
		{"Smith", "Smiht", 2, 2},
		{"Smith", "Doe", 2, -1},
		{"", "ab", 2, 2},
		{"ab", "", 2, 2},
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, -1},
		{"Garcia", "García", 1, 1}, // rune-aware
	}
	for _, tc := range cases {
		if got := editDistance(tc.a, tc.b, tc.max); got != tc.want {
			t.Errorf("editDistance(%q, %q, %d) = %d, want %d", tc.a, tc.b, tc.max, got, tc.want)
		}
	}
}

func TestSuggestValues(t *testing.T) {
	svc, _ := fuzzyService(t)
	suggestions, lookups, err := svc.SuggestValues([]string{"author", "last"}, "Smih", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) != 1 || suggestions[0] != "Smith" {
		t.Fatalf("suggestions = %v", suggestions)
	}
	if lookups != 1 {
		t.Fatalf("lookups = %d, want 1 (same bucket)", lookups)
	}
	// First-letter typo: the right value lives in another bucket, so the
	// suggester widens the scan.
	suggestions, lookups, err = svc.SuggestValues([]string{"author", "last"}, "Emith", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) != 1 || suggestions[0] != "Smith" {
		t.Fatalf("cross-bucket suggestions = %v", suggestions)
	}
	if lookups <= 1 {
		t.Fatalf("lookups = %d, want widened scan", lookups)
	}
	// Hopeless input: nothing within distance.
	suggestions, _, err = svc.SuggestValues([]string{"author", "last"}, "Zzzzzzzz", 2)
	if err != nil || len(suggestions) != 0 {
		t.Fatalf("suggestions = %v, %v", suggestions, err)
	}
}

func TestFindFuzzyCorrectsMisspelledAuthor(t *testing.T) {
	_, searcher := fuzzyService(t)
	arts := descriptor.Fig1Articles()
	target := dataset.MSD(arts[0])
	// "Jhon Smih" — two misspelled values.
	q := dataset.AuthorQuery("Jhon", "Smih")
	trace, corrected, err := searcher.FindFuzzy(q, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Found || trace.File != "x.pdf" {
		t.Fatalf("trace = %+v", trace)
	}
	if corrected.Equal(q) {
		t.Fatal("query was not corrected")
	}
	if !corrected.Covers(target) {
		t.Fatalf("corrected query %q does not cover target", corrected)
	}
}

func TestFindFuzzyMisspelledTitle(t *testing.T) {
	_, searcher := fuzzyService(t)
	arts := descriptor.Fig1Articles()
	target := dataset.MSD(arts[2]) // Wavelets
	trace, corrected, err := searcher.FindFuzzy(dataset.TitleQuery("Wavelet"), target, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Found || trace.File != "z.pdf" {
		t.Fatalf("trace = %+v", trace)
	}
	if !corrected.Equal(dataset.TitleQuery("Wavelets")) {
		t.Fatalf("corrected = %q", corrected)
	}
}

func TestFindFuzzyExactQueryUnchanged(t *testing.T) {
	_, searcher := fuzzyService(t)
	arts := descriptor.Fig1Articles()
	q := dataset.TitleQuery(arts[0].Title)
	trace, corrected, err := searcher.FindFuzzy(q, dataset.MSD(arts[0]), 2)
	if err != nil || !trace.Found {
		t.Fatalf("%+v, %v", trace, err)
	}
	if !corrected.Equal(q) {
		t.Fatalf("exact query was modified: %q", corrected)
	}
}

func TestFindFuzzyHopeless(t *testing.T) {
	_, searcher := fuzzyService(t)
	arts := descriptor.Fig1Articles()
	_, _, err := searcher.FindFuzzy(dataset.TitleQuery("Quantum Chromodynamics"),
		dataset.MSD(arts[0]), 2)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestVocabularyDisabledNoDictEntries(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0) // vocabulary off
	suggestions, _, err := svc.SuggestValues([]string{"author", "last"}, "Smih", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) != 0 {
		t.Fatalf("dict entries exist without vocabulary: %v", suggestions)
	}
}

func TestValueConstraintsAndWithValue(t *testing.T) {
	q := dataset.AuthorTitleQuery("John", "Smith", "TCP")
	vcs := q.ValueConstraints()
	if len(vcs) != 3 {
		t.Fatalf("constraints = %v", vcs)
	}
	replaced := q.WithValue([]string{"title"}, "IPv6")
	want := dataset.AuthorTitleQuery("John", "Smith", "IPv6")
	if !replaced.Equal(want) {
		t.Fatalf("WithValue = %q, want %q", replaced, want)
	}
	// Unresolvable path: unchanged.
	same := q.WithValue([]string{"missing"}, "x")
	if !same.Equal(q) {
		t.Fatalf("bad path changed query: %q", same)
	}
	// Interior path: unchanged.
	same = q.WithValue([]string{"author"}, "x")
	if !same.Equal(q) {
		t.Fatalf("interior path changed query: %q", same)
	}
	var zero xpath.Query
	if got := zero.WithValue([]string{"a"}, "v"); !got.IsZero() {
		t.Fatal("zero query WithValue must stay zero")
	}
	if zero.ValueConstraints() != nil {
		t.Fatal("zero query has constraints")
	}
}
