package index

import (
	"context"
	"sort"

	"dhtindex/internal/xpath"
)

// Result is one file discovered by the automated search mode.
type Result struct {
	// File is the stored file reference.
	File string
	// MSD is the most specific query under which the file is published.
	MSD xpath.Query
}

// SearchAll implements the paper's automated mode (§IV-B): "the system
// recursively explores the indexes and returns all the file descriptors
// that match the original query". It walks the index DAG breadth-first
// from q, pruning branches that are incompatible with q, and — when q
// itself is not indexed — first generalizes q and then filters the results
// (the generalization/specialization approach).
//
// The returned Trace aggregates the exploration cost exactly like a
// directed Find.
func (s *Searcher) SearchAll(q xpath.Query) ([]Result, Trace, error) {
	return s.SearchAllCtx(context.Background(), q)
}

// SearchAllCtx is SearchAll under a deadline budget with graceful
// degradation: a branch whose lookup fails (dead node, spent budget) is
// recorded in the trace's Unresolved list and the exploration continues
// with the remaining frontier, so callers get every result the live part
// of the index DAG could deliver plus an exact account of what is
// missing — instead of an all-or-nothing error.
//
// With Parallelism > 1 the frontier expands through a sliding lookahead
// window: while the caller processes the head branch, up to
// Parallelism-1 of the branches right behind it are already being
// looked up concurrently, and a branch's completion immediately frees
// its slot for the next pending one. Branches are still PROCESSED in
// strict frontier order, so the exploration order, the result set and
// the trace accounting match the sequential walk exactly — but unlike a
// wave with a barrier, one slow branch only delays its own processing
// slot: the lookups behind it keep streaming instead of parking the
// whole wave on the straggler, which is what made the parallel walk's
// tail latency worse than the sequential one's. The first branch is
// always the original query alone (the window only opens behind it),
// which keeps the not-indexed generalization fallback exact.
func (s *Searcher) SearchAllCtx(ctx context.Context, q xpath.Query) ([]Result, Trace, error) {
	var trace Trace
	if q.IsZero() {
		return nil, trace, xpath.ErrEmptyQuery
	}
	var results []Result
	seen := map[string]bool{}
	frontier := []xpath.Query{q}
	seen[q.String()] = true
	explored := 0

	type lookupOut struct {
		resp Response
		err  error
	}
	window := s.parallelism()
	// issued maps a frontier query to its in-flight lookup. Issued
	// queries always form a contiguous prefix of the frontier (slots are
	// filled front to back and only the head is popped), so the top-up
	// scan below stays O(window) per iteration.
	issued := make(map[string]chan lookupOut)
	for len(frontier) > 0 && explored < s.maxFanout() {
		// Top up the lookahead window behind the head. The head itself is
		// left for the caller to run inline: on a single-CPU host the
		// caller doing real lookup work while the window drains beats it
		// parking on a channel. The adaptive threshold gate is unchanged
		// from the wave design — tiny frontiers are not worth goroutines —
		// and speculation never exceeds the MaxFanout budget.
		if window > 1 && len(frontier) >= s.fanoutThreshold() {
			for i := 1; i < len(frontier) && len(issued) < window-1 && explored+1+len(issued) < s.maxFanout(); i++ {
				key := frontier[i].String()
				if _, ok := issued[key]; ok {
					continue
				}
				ch := make(chan lookupOut, 1)
				issued[key] = ch
				go func(q xpath.Query) {
					resp, err := s.svc.LookupCtx(ctx, q)
					ch <- lookupOut{resp: resp, err: err}
				}(frontier[i])
			}
		}
		current := frontier[0]
		frontier = frontier[1:]
		var out lookupOut
		if ch, ok := issued[current.String()]; ok {
			out = <-ch
			delete(issued, current.String())
		} else {
			resp, err := s.svc.LookupCtx(ctx, current)
			out = lookupOut{resp: resp, err: err}
		}

		explored++
		resp, err := out.resp, out.err
		if err != nil {
			trace.Incomplete = true
			trace.Unresolved = append(trace.Unresolved, Unresolved{
				Query: current.String(), Reason: err.Error(),
			})
			if cerr := ctx.Err(); cerr != nil {
				// Budget spent: the rest of the frontier is unreachable too.
				// In-flight speculative lookups drain into their buffered
				// channels and are dropped.
				for _, rest := range frontier {
					trace.Unresolved = append(trace.Unresolved, Unresolved{
						Query: rest.String(), Reason: cerr.Error(),
					})
				}
				break
			}
			continue
		}
		s.account(&trace, current, resp, resp.Bytes)

		for _, file := range resp.Files {
			if q.Covers(current) {
				results = append(results, Result{File: file, MSD: current})
				trace.Found = true
			}
		}
		next := make([]xpath.Query, 0, len(resp.Index)+len(resp.Cached))
		next = append(next, resp.Index...)
		next = append(next, resp.Cached...)
		if explored == 1 && len(next) == 0 && len(resp.Files) == 0 {
			// Original query not indexed: generalize, keep filtering by q.
			trace.NonIndexed = true
			for _, g := range q.Generalizations() {
				if !seen[g.String()] {
					seen[g.String()] = true
					frontier = append(frontier, g)
				}
			}
			continue
		}
		for _, cand := range next {
			if seen[cand.String()] {
				continue
			}
			if !xpath.Compatible(q, cand) {
				continue // definite conflict: nothing below matches q
			}
			seen[cand.String()] = true
			frontier = append(frontier, cand)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].File < results[j].File })
	return dedupeResults(results), trace, nil
}

// maxFanout resolves the automated mode's exploration bound.
func (s *Searcher) maxFanout() int {
	if s.MaxFanout > 0 {
		return s.MaxFanout
	}
	return 100000
}

func dedupeResults(in []Result) []Result {
	out := in[:0]
	var prev string
	for i, r := range in {
		key := r.File + "\x00" + r.MSD.String()
		if i == 0 || key != prev {
			out = append(out, r)
		}
		prev = key
	}
	return out
}
