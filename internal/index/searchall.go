package index

import (
	"context"
	"sort"
	"sync"

	"dhtindex/internal/xpath"
)

// Result is one file discovered by the automated search mode.
type Result struct {
	// File is the stored file reference.
	File string
	// MSD is the most specific query under which the file is published.
	MSD xpath.Query
}

// SearchAll implements the paper's automated mode (§IV-B): "the system
// recursively explores the indexes and returns all the file descriptors
// that match the original query". It walks the index DAG breadth-first
// from q, pruning branches that are incompatible with q, and — when q
// itself is not indexed — first generalizes q and then filters the results
// (the generalization/specialization approach).
//
// The returned Trace aggregates the exploration cost exactly like a
// directed Find.
func (s *Searcher) SearchAll(q xpath.Query) ([]Result, Trace, error) {
	return s.SearchAllCtx(context.Background(), q)
}

// SearchAllCtx is SearchAll under a deadline budget with graceful
// degradation: a branch whose lookup fails (dead node, spent budget) is
// recorded in the trace's Unresolved list and the exploration continues
// with the remaining frontier, so callers get every result the live part
// of the index DAG could deliver plus an exact account of what is
// missing — instead of an all-or-nothing error.
//
// With Parallelism > 1 the frontier expands in waves: up to Parallelism
// pending branches are looked up concurrently, and the wave's responses
// are then processed in submission order, so the exploration order, the
// result set and the trace accounting match the sequential walk. The
// first wave is always the original query alone, which keeps the
// not-indexed generalization fallback exact.
func (s *Searcher) SearchAllCtx(ctx context.Context, q xpath.Query) ([]Result, Trace, error) {
	var trace Trace
	if q.IsZero() {
		return nil, trace, xpath.ErrEmptyQuery
	}
	var results []Result
	seen := map[string]bool{}
	frontier := []xpath.Query{q}
	seen[q.String()] = true
	explored := 0

	type lookupOut struct {
		resp Response
		err  error
	}
	for len(frontier) > 0 && explored < s.maxFanout() {
		wave := s.waveSize(len(frontier))
		if rem := s.maxFanout() - explored; wave > rem {
			wave = rem
		}
		batch := frontier[:wave:wave]
		frontier = frontier[wave:]

		outs := make([]lookupOut, len(batch))
		// The first branch runs inline on the caller: it saves one
		// goroutine hand-off per wave and keeps the caller busy with real
		// work instead of parked at the barrier — on a single-CPU host the
		// difference between a parallel wave matching the sequential walk
		// and losing to it.
		var wg sync.WaitGroup
		for i := 1; i < len(batch); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := s.svc.LookupCtx(ctx, batch[i])
				outs[i] = lookupOut{resp: resp, err: err}
			}(i)
		}
		resp0, err0 := s.svc.LookupCtx(ctx, batch[0])
		outs[0] = lookupOut{resp: resp0, err: err0}
		wg.Wait()

		erred := false
		for i, current := range batch {
			explored++
			resp, err := outs[i].resp, outs[i].err
			if err != nil {
				erred = true
				trace.Incomplete = true
				trace.Unresolved = append(trace.Unresolved, Unresolved{
					Query: current.String(), Reason: err.Error(),
				})
				continue
			}
			s.account(&trace, current, resp, resp.Bytes)

			for _, file := range resp.Files {
				if q.Covers(current) {
					results = append(results, Result{File: file, MSD: current})
					trace.Found = true
				}
			}
			next := make([]xpath.Query, 0, len(resp.Index)+len(resp.Cached))
			next = append(next, resp.Index...)
			next = append(next, resp.Cached...)
			if explored == 1 && len(next) == 0 && len(resp.Files) == 0 {
				// Original query not indexed: generalize, keep filtering by q.
				trace.NonIndexed = true
				for _, g := range q.Generalizations() {
					if !seen[g.String()] {
						seen[g.String()] = true
						frontier = append(frontier, g)
					}
				}
				continue
			}
			for _, cand := range next {
				if seen[cand.String()] {
					continue
				}
				if !xpath.Compatible(q, cand) {
					continue // definite conflict: nothing below matches q
				}
				seen[cand.String()] = true
				frontier = append(frontier, cand)
			}
		}
		if erred {
			if cerr := ctx.Err(); cerr != nil {
				// Budget spent: the rest of the frontier is unreachable too.
				for _, rest := range frontier {
					trace.Unresolved = append(trace.Unresolved, Unresolved{
						Query: rest.String(), Reason: cerr.Error(),
					})
				}
				break
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].File < results[j].File })
	return dedupeResults(results), trace, nil
}

// maxFanout resolves the automated mode's exploration bound.
func (s *Searcher) maxFanout() int {
	if s.MaxFanout > 0 {
		return s.MaxFanout
	}
	return 100000
}

func dedupeResults(in []Result) []Result {
	out := in[:0]
	var prev string
	for i, r := range in {
		key := r.File + "\x00" + r.MSD.String()
		if i == 0 || key != prev {
			out = append(out, r)
		}
		prev = key
	}
	return out
}
