package index

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dhtindex/internal/cache"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/xpath"
)

// Searcher drives lookups over an index Service, implementing the user
// behaviour of §IV-B/§V-C: iterative directed search, the generalization/
// specialization fallback for non-indexed queries, shortcut installation
// per the configured cache policy, and the automated exhaustive mode.
type Searcher struct {
	svc *Service

	// MaxDepth bounds the iterative search; the default (16) is far above
	// any chain the schemes build and exists only to stop a corrupted
	// index from looping.
	MaxDepth int

	// AdaptiveIndexing turns on §IV-C's on-demand index entries: after a
	// successful generalization recovery, a *permanent* index mapping
	// (q ; msd) is inserted so other users do not repeat the recovery.
	AdaptiveIndexing bool

	// Recorder, when set, emits one structured telemetry.LookupTrace per
	// Find call: every interaction becomes a hop with its node, latency
	// and cache outcome. A nil recorder disables tracing at zero cost.
	Recorder *telemetry.Recorder

	// Parallelism bounds the concurrent lookups of the automated search
	// mode's frontier expansion and the generalization fallback's probes.
	// Values ≤ 1 keep the exact sequential behaviour (and byte-for-byte
	// accounting) of the paper's model; higher values need a thread-safe
	// substrate (the live wire Cluster is, the simulations are not).
	Parallelism int

	// FanoutThreshold is the minimum number of pending branches before a
	// parallel wave is launched (default 4). Below it branches are looked
	// up sequentially: a goroutine wave over a near-empty frontier costs
	// more in scheduling and wave-barrier waits than it recovers in I/O
	// overlap, which is what made small-frontier parallel searches slower
	// than sequential ones.
	FanoutThreshold int

	// MaxFanout bounds the number of index nodes the automated search
	// mode visits before giving up (default 100000 — effectively "the
	// whole index" for any realistic corpus, a loop stop for corrupt
	// ones).
	MaxFanout int
}

// parallelism resolves the fan-out bound (≥ 1).
func (s *Searcher) parallelism() int {
	if s.Parallelism > 1 {
		return s.Parallelism
	}
	return 1
}

// fanoutThreshold resolves the adaptive-fanout gate (≥ 1).
func (s *Searcher) fanoutThreshold() int {
	if s.FanoutThreshold > 0 {
		return s.FanoutThreshold
	}
	return 4
}

// waveSize decides how many of the pending branches the next wave looks
// up concurrently: 1 (sequential, no goroutines) while pending is below
// FanoutThreshold, otherwise up to Parallelism.
func (s *Searcher) waveSize(pending int) int {
	par := s.parallelism()
	if par <= 1 || pending < s.fanoutThreshold() {
		return 1
	}
	if par > pending {
		return pending
	}
	return par
}

// NewSearcher creates a searcher over the service.
func NewSearcher(svc *Service) *Searcher {
	return &Searcher{svc: svc, MaxDepth: 16}
}

// Trace reports everything a single directed lookup did — the raw material
// of every figure in §V.
type Trace struct {
	// Found reports whether the target file was retrieved.
	Found bool
	// File is the retrieved file reference.
	File string
	// Interactions is the number of user-system query rounds, including
	// the final data retrieval (Fig. 11).
	Interactions int
	// ResponseBytes is the serialized size of all responses — "normal
	// traffic" in Fig. 12.
	ResponseBytes int64
	// RequestBytes is the serialized size of the queries sent.
	RequestBytes int64
	// CacheBytes is the traffic spent installing shortcuts (Fig. 12's
	// "cache traffic").
	CacheBytes int64
	// Visited lists the addresses of the index nodes contacted, in order
	// (Fig. 15's hot-spot accounting).
	Visited []string
	// CacheHit reports whether any shortcut short-circuited the search
	// (Fig. 13).
	CacheHit bool
	// FirstNodeHit reports whether the shortcut was found on the first
	// node contacted.
	FirstNodeHit bool
	// NonIndexed reports that the original query was absent from every
	// index and the generalization fallback ran — a "recoverable error"
	// (Table I).
	NonIndexed bool
	// GeneralizationProbes counts the generalization candidates looked up
	// during the fallback (the failed original plus the failed probes are
	// the "extra interactions" of §V-h).
	GeneralizationProbes int
	// DHTHops counts underlying substrate routing hops (not interactions).
	DHTHops int
	// Incomplete reports that the search degraded instead of failing: a
	// hop's substrate read failed (dead node, spent deadline budget), so
	// the trace carries whatever was resolved up to that point plus the
	// unresolved branches. An Incomplete trace never has Found set by
	// that failed branch, and Find returns it with a nil error — the
	// partial answer IS the result.
	Incomplete bool
	// Unresolved lists the branches an incomplete search could not
	// resolve and why, in the order they failed.
	Unresolved []Unresolved
}

// Unresolved is one branch a degraded search gave up on.
type Unresolved struct {
	// Query is the canonical query whose lookup failed.
	Query string
	// Reason is the failure (transport error or context deadline).
	Reason string
}

// visit is one lookup step retained for shortcut installation.
type visit struct {
	query xpath.Query
	node  string
}

// Find performs a directed lookup: the user starts from query q, knows how
// to recognize the target (the paper's interactive user always "selects
// the query from the results that matches the target article"), and
// iterates until the file behind target is retrieved. target must be a
// most specific query.
func (s *Searcher) Find(q, target xpath.Query) (Trace, error) {
	return s.FindCtx(context.Background(), q, target)
}

// FindCtx is Find under a deadline budget with graceful degradation.
// The budget rides down through every lookup into the substrate's retry
// and failover machinery. When a hop's substrate read fails — the node
// crashed, or the budget ran out mid-chain — the search does NOT return
// an error: it returns the partial trace with Incomplete set and the
// failed branch recorded in Unresolved, because a degraded answer
// ("found these interactions, could not resolve that branch") is more
// useful than none. Index-semantic misses (ErrNotFound) remain errors.
func (s *Searcher) FindCtx(ctx context.Context, q, target xpath.Query) (trace Trace, err error) {
	if q.IsZero() || target.IsZero() {
		return trace, xpath.ErrEmptyQuery
	}
	at := s.Recorder.Begin(q.String(), target.String())
	defer func() {
		s.svc.tel.recordFind(trace, err)
		at.End(telemetry.TraceResult{
			Found:         trace.Found,
			NonIndexed:    trace.NonIndexed,
			RequestBytes:  trace.RequestBytes,
			ResponseBytes: trace.ResponseBytes,
			CacheBytes:    trace.CacheBytes,
			Err:           err,
		})
	}()
	current := q
	targetStr := target.String()
	var path []visit // index nodes traversed, for shortcut creation

	for depth := 0; depth < s.maxDepth(); depth++ {
		start := time.Now()
		resp, lerr := s.svc.LookupCtx(ctx, current)
		lat := time.Since(start).Microseconds()
		if lerr != nil {
			at.Hop(telemetry.TraceHop{
				Kind: "index", Key: current.String(),
				LatencyMicros: lat, Err: lerr.Error(),
			})
			// Lookup errors are transport-level (dead hop, spent budget):
			// degrade to a partial result instead of erroring out.
			trace.Incomplete = true
			trace.Unresolved = append(trace.Unresolved, Unresolved{
				Query: current.String(), Reason: lerr.Error(),
			})
			return trace, nil
		}
		var hit xpath.Query
		if !current.Equal(target) {
			hit = findEqual(resp.Cached, targetStr)
		}
		s.account(&trace, current, resp, responseCost(resp, hit))
		kind := "index"
		if current.Equal(target) {
			kind = "data"
		} else if !hit.IsZero() {
			kind = "cache-jump"
		}
		at.Hop(telemetry.TraceHop{
			Kind: kind, Key: current.String(), Node: resp.Node,
			CacheHit:      !hit.IsZero(),
			Entries:       len(resp.Index) + len(resp.Cached) + len(resp.Files),
			DHTHops:       resp.Hops,
			LatencyMicros: lat,
		})
		if current.Equal(target) {
			// Publication layer reached: this interaction is the data
			// retrieval itself.
			if len(resp.Files) == 0 {
				return trace, fmt.Errorf("%w: %s has no data", ErrNotFound, target)
			}
			trace.Found = true
			trace.File = resp.Files[0]
			s.installShortcuts(&trace, q, path, targetStr)
			return trace, nil
		}
		path = append(path, visit{query: current, node: resp.Node})

		// Prefer a cached shortcut for the exact target ("jump").
		if !hit.IsZero() {
			trace.CacheHit = true
			if depth == 0 {
				trace.FirstNodeHit = true
			}
			s.svc.TouchShortcut(resp.Node, current, targetStr)
			current = target
			continue
		}
		// Regular index results: follow the most specific entry that still
		// covers the target.
		if next, ok := pickNext(resp.Index, target); ok {
			current = next
			continue
		}
		// Nothing useful here. If this was the original query, run the
		// generalization fallback (§IV-B, §V-h); otherwise the index is
		// broken or the data is gone. An "access to non-indexed data"
		// (Table I) is a query whose key holds nothing at all — a key
		// that already carries cache shortcuts (even for other files
		// matching the same query) no longer errors.
		if depth == 0 {
			trace.NonIndexed = len(resp.Index) == 0 && len(resp.Cached) == 0
			gen, resp, ok, gerr := s.generalize(ctx, &trace, at, q, target)
			if gerr != nil {
				// A failed generalization probe is transport-level too.
				trace.Incomplete = true
				trace.Unresolved = append(trace.Unresolved, Unresolved{
					Query: q.String(), Reason: gerr.Error(),
				})
				return trace, nil
			}
			if ok {
				path = append(path, visit{query: gen, node: resp.Node})
				if hit := findEqual(resp.Cached, targetStr); !hit.IsZero() {
					trace.CacheHit = true
					s.svc.TouchShortcut(resp.Node, gen, targetStr)
					current = target
					continue
				}
				if next, ok2 := pickNext(resp.Index, target); ok2 {
					current = next
					continue
				}
			}
		}
		return trace, fmt.Errorf("%w: stuck at %s", ErrNotFound, current)
	}
	return trace, fmt.Errorf("%w: depth limit from %s", ErrNotFound, q)
}

func (s *Searcher) maxDepth() int {
	if s.MaxDepth > 0 {
		return s.MaxDepth
	}
	return 16
}

// account books one interaction into the trace.
func (s *Searcher) account(trace *Trace, q xpath.Query, resp Response, bytes int64) {
	trace.Interactions++
	trace.ResponseBytes += bytes
	trace.RequestBytes += int64(len(q.String()))
	trace.Visited = append(trace.Visited, resp.Node)
	trace.DHTHops += resp.Hops
}

// responseCost is the bytes a lookup actually transfers. Responses are
// streamed cache-first (most-recently-used shortcuts leading): a user
// whose target is cached stops reading at the matching shortcut and never
// pulls the index content behind it, so a hit consumes only the matched
// entry; a miss consumes the full response (cache portion plus index
// content).
func responseCost(resp Response, hit xpath.Query) int64 {
	if hit.IsZero() {
		return resp.Bytes
	}
	return int64(len(hit.String()))
}

// generalize finds an indexed query g ⊒ q whose index path can reach the
// target, returning g together with the response already obtained from its
// node. It tries the immediate generalizations most-specific-first; the
// failed original lookup already cost one interaction, and each candidate
// probe costs one more — matching the paper's "one extra interaction is
// generally necessary (two in a few rare cases)".
//
// With Parallelism > 1 the candidates are probed in waves: the wave's
// lookups run concurrently, but their outcomes are booked in candidate
// order up to the first decisive one — probes issued speculatively after
// the winner stay unbooked, so the trace's interaction accounting matches
// the sequential walk.
func (s *Searcher) generalize(ctx context.Context, trace *Trace, at *telemetry.Active, q, target xpath.Query) (xpath.Query, Response, bool, error) {
	var cands []xpath.Query
	for _, g := range q.Generalizations() {
		if g.Covers(target) {
			cands = append(cands, g)
		}
	}
	type probe struct {
		resp Response
		err  error
		lat  int64
	}
	for off := 0; off < len(cands); {
		wave := s.waveSize(len(cands) - off)
		batch := cands[off : off+wave]
		off += wave
		outs := make([]probe, len(batch))
		// As in SearchAllCtx, the first probe runs inline on the caller so
		// a wave costs one goroutine hand-off fewer.
		var wg sync.WaitGroup
		for i := 1; i < len(batch); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				resp, err := s.svc.LookupCtx(ctx, batch[i])
				outs[i] = probe{resp: resp, err: err, lat: time.Since(start).Microseconds()}
			}(i)
		}
		start := time.Now()
		resp0, err0 := s.svc.LookupCtx(ctx, batch[0])
		outs[0] = probe{resp: resp0, err: err0, lat: time.Since(start).Microseconds()}
		wg.Wait()
		for i, g := range batch {
			out := outs[i]
			if out.err != nil {
				at.Hop(telemetry.TraceHop{
					Kind: "generalization", Key: g.String(),
					LatencyMicros: out.lat, Err: out.err.Error(),
				})
				return xpath.Query{}, Response{}, false, out.err
			}
			hit := findEqual(out.resp.Cached, target.String())
			s.account(trace, g, out.resp, responseCost(out.resp, hit))
			trace.GeneralizationProbes++
			at.Hop(telemetry.TraceHop{
				Kind: "generalization", Key: g.String(), Node: out.resp.Node,
				CacheHit:      !hit.IsZero(),
				Entries:       len(out.resp.Index) + len(out.resp.Cached) + len(out.resp.Files),
				DHTHops:       out.resp.Hops,
				LatencyMicros: out.lat,
			})
			if len(out.resp.Index) > 0 || len(out.resp.Cached) > 0 {
				return g, out.resp, true, nil
			}
		}
	}
	return xpath.Query{}, Response{}, false, nil
}

// installShortcuts creates cache entries after a successful lookup,
// according to the policy (§V-D), and — when AdaptiveIndexing is on and
// the query needed the generalization fallback — inserts a permanent
// on-demand index entry.
func (s *Searcher) installShortcuts(trace *Trace, original xpath.Query, path []visit, targetStr string) {
	switch s.svc.Policy() {
	case cache.None:
	case cache.Multi:
		for _, v := range path {
			if v.query.String() == targetStr {
				continue
			}
			if created, bytes := s.svc.AddShortcut(v.node, v.query, targetStr); created {
				trace.CacheBytes += bytes
			}
		}
	case cache.Single, cache.LRU:
		if len(path) > 0 && path[0].query.String() != targetStr {
			if created, bytes := s.svc.AddShortcut(path[0].node, path[0].query, targetStr); created {
				trace.CacheBytes += bytes
			}
		}
	}
	if s.AdaptiveIndexing && trace.NonIndexed && !trace.CacheHit {
		if target, err := xpath.Parse(targetStr); err == nil {
			// Best effort: a covering violation cannot happen here because
			// the directed search only reaches targets the query covers.
			_ = s.svc.InsertMapping(original, target)
		}
	}
}

// findEqual returns the query from list whose canonical form equals s, or
// the zero query.
func findEqual(list []xpath.Query, s string) xpath.Query {
	for _, q := range list {
		if q.String() == s {
			return q
		}
	}
	return xpath.Query{}
}

// pickNext selects the most specific index result that covers the target:
// the user advancing as far down the partial order as the response allows.
func pickNext(results []xpath.Query, target xpath.Query) (xpath.Query, bool) {
	best := xpath.Query{}
	bestConstraints := -1
	for _, r := range results {
		if !r.Covers(target) {
			continue
		}
		if c := r.Constraints(); c > bestConstraints {
			best, bestConstraints = r, c
		}
	}
	return best, bestConstraints >= 0
}
