package index

import (
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/xpath"
)

func TestSearchAllFuzzy(t *testing.T) {
	_, searcher := fuzzyService(t)
	// Misspelled title: exact search empty, fuzzy corrects and finds.
	results, corrected, trace, err := searcher.SearchAllFuzzy(dataset.TitleQuery("Wavelet"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].File != "z.pdf" {
		t.Fatalf("results = %v", results)
	}
	if !corrected.Equal(dataset.TitleQuery("Wavelets")) {
		t.Fatalf("corrected = %q", corrected)
	}
	if trace.Interactions < 2 {
		t.Fatalf("trace = %+v", trace)
	}
	// Exact query: no correction attempted.
	results, corrected, _, err = searcher.SearchAllFuzzy(dataset.TitleQuery("TCP"), 2)
	if err != nil || len(results) != 1 {
		t.Fatalf("exact: %v, %v", results, err)
	}
	if !corrected.Equal(dataset.TitleQuery("TCP")) {
		t.Fatalf("exact query modified: %q", corrected)
	}
	// Hopeless query: empty results, no error.
	results, _, _, err = searcher.SearchAllFuzzy(dataset.TitleQuery("Zzzz"), 1)
	if err != nil || len(results) != 0 {
		t.Fatalf("hopeless: %v, %v", results, err)
	}
}

func TestServiceAccessors(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.Single, 0)
	if svc.Network() == nil {
		t.Fatal("Network() nil")
	}
	if svc.Policy() != cache.Single {
		t.Fatalf("Policy() = %v", svc.Policy())
	}
	searcher := NewSearcher(svc)
	searcher.MaxDepth = 0 // exercise the default fallback
	a := descriptor.Fig1Articles()[0]
	trace, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a))
	if err != nil || !trace.Found {
		t.Fatalf("find with default depth: %+v, %v", trace, err)
	}
	// CacheStore: present after a shortcut was created on that node.
	resp, err := svc.Lookup(dataset.TitleQuery(a.Title))
	if err != nil {
		t.Fatal(err)
	}
	if svc.CacheStore(resp.Node) == nil {
		t.Fatal("CacheStore missing after shortcut creation")
	}
	if svc.CacheStore("ghost-node") != nil {
		t.Fatal("CacheStore for unknown node")
	}
}

func TestPublishEmptyDescriptor(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0)
	if _, err := svc.Publish("f.pdf", descriptor.Descriptor{}); err == nil {
		t.Fatal("empty descriptor accepted")
	}
	if err := svc.RegisterVocabulary(descriptor.Descriptor{}); err == nil {
		t.Fatal("empty vocabulary registration accepted")
	}
}

func TestSessionPositionEmpty(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0)
	session := NewSession(svc)
	if _, ok := session.Position(); ok {
		t.Fatal("fresh session has a position")
	}
	if session.Interactions() != 0 {
		t.Fatal("fresh session has interactions")
	}
}

func TestWithKeywordsNoTitleChain(t *testing.T) {
	// A base scheme without a title entry point: keyword chains terminate
	// at the MSD directly.
	scheme := WithKeywords(bareScheme{}, 4)
	a := descriptor.Fig1Articles()[2] // Wavelets — one keyword
	chains := scheme.Chains(a)
	found := false
	for _, chain := range chains {
		if chain[0].Equal(dataset.TitleKeywordQuery("Wavelets")) {
			found = true
			if len(chain) != 3 { // kw -> title -> MSD
				t.Fatalf("keyword chain = %v", chain)
			}
		}
	}
	if !found {
		t.Fatalf("keyword chain missing: %v", chains)
	}
}

// bareScheme indexes nothing (no author/title paths), forcing the
// keyword decorator's fallback.
type bareScheme struct{}

func (bareScheme) Name() string { return "bare" }

func (bareScheme) Chains(descriptor.Article) [][]xpath.Query { return nil }

func TestBucketOfEmpty(t *testing.T) {
	if got := bucketOf(""); got != "_" {
		t.Fatalf("bucketOf empty = %q", got)
	}
	if got := bucketOf("Ünïcode"); got != "ü" {
		t.Fatalf("bucketOf unicode = %q", got)
	}
}
