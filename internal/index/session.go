package index

import (
	"fmt"
	"sort"

	"dhtindex/internal/xpath"
)

// Session is the interactive search mode of §IV-B: "the user directs the
// search and restricts its query at each step". A session keeps the
// current position in the covering partial order, the options the last
// response offered, and the path walked so far (so the user can back up).
type Session struct {
	svc  *Service
	path []sessionStep
}

type sessionStep struct {
	query xpath.Query
	resp  Response
}

// NewSession starts an interactive search over the service.
func NewSession(svc *Service) *Session {
	return &Session{svc: svc}
}

// Options are the refinements the system offered at the current step.
type Options struct {
	// Queries lists more specific queries (index entries and cache
	// shortcuts, deduplicated, sorted by canonical form).
	Queries []xpath.Query
	// Files lists retrievable file references at the current query.
	Files []string
	// Interactions is the total number of interactions this session has
	// used so far.
	Interactions int
}

// Ask submits a fresh query, resetting the session position (a user
// starting over with different information).
func (s *Session) Ask(q xpath.Query) (Options, error) {
	s.path = s.path[:0]
	return s.step(q)
}

// Refine follows one of the options returned by the previous step. It
// rejects refinements the previous response did not offer, mirroring a
// user who can only click on presented results.
func (s *Session) Refine(q xpath.Query) (Options, error) {
	if len(s.path) == 0 {
		return Options{}, fmt.Errorf("index: session: Refine before Ask")
	}
	last := s.path[len(s.path)-1].resp
	if !responseOffers(last, q) {
		return Options{}, fmt.Errorf("index: session: %s was not offered", q)
	}
	return s.step(q)
}

// Back undoes the last refinement, returning the previous step's options
// without a new interaction (the user re-reads an old response).
func (s *Session) Back() (Options, error) {
	if len(s.path) < 2 {
		return Options{}, fmt.Errorf("index: session: nothing to back out of")
	}
	s.path = s.path[:len(s.path)-1]
	return s.optionsOf(s.path[len(s.path)-1].resp), nil
}

// Position returns the query the session currently sits on.
func (s *Session) Position() (xpath.Query, bool) {
	if len(s.path) == 0 {
		return xpath.Query{}, false
	}
	return s.path[len(s.path)-1].query, true
}

// Interactions returns the interactions consumed so far.
func (s *Session) Interactions() int { return len(s.path) }

func (s *Session) step(q xpath.Query) (Options, error) {
	if q.IsZero() {
		return Options{}, xpath.ErrEmptyQuery
	}
	resp, err := s.svc.Lookup(q)
	if err != nil {
		return Options{}, err
	}
	s.path = append(s.path, sessionStep{query: q, resp: resp})
	return s.optionsOf(resp), nil
}

func (s *Session) optionsOf(resp Response) Options {
	seen := map[string]bool{}
	opts := Options{Interactions: len(s.path)}
	for _, list := range [][]xpath.Query{resp.Index, resp.Cached} {
		for _, q := range list {
			if !seen[q.String()] {
				seen[q.String()] = true
				opts.Queries = append(opts.Queries, q)
			}
		}
	}
	sort.Slice(opts.Queries, func(i, j int) bool {
		return opts.Queries[i].String() < opts.Queries[j].String()
	})
	opts.Files = append(opts.Files, resp.Files...)
	return opts
}

func responseOffers(resp Response, q xpath.Query) bool {
	for _, list := range [][]xpath.Query{resp.Index, resp.Cached} {
		for _, have := range list {
			if have.Equal(q) {
				return true
			}
		}
	}
	return false
}
