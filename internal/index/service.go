// Package index implements the paper's primary contribution (§IV): a
// distributed indexing service layered on a DHT that maps broad queries to
// more specific queries. Indexes hold query-to-query mappings (q; qᵢ) with
// q ⊒ qᵢ; by recursively looking up the returned queries a user walks the
// covering partial order down to a most specific descriptor (MSD) and the
// file it identifies.
//
// The package provides the index service itself (Service), the three
// indexing schemes of the evaluation plus the hierarchical example of
// Fig. 4 (Scheme), the directed and automated lookup procedures with the
// generalization/specialization fallback (Searcher), and index maintenance
// with recursive cleanup (§IV-C).
package index

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dhtindex/internal/cache"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/xpath"
)

// Entry kinds in the DHT store.
const (
	// KindIndex marks a query-to-query mapping; the value is the covered
	// query's canonical form.
	KindIndex = "index"
	// KindData marks a stored file reference; the value is the file name.
	KindData = "data"
)

// Errors returned by the index layer.
var (
	// ErrNotCovering is returned when inserting a mapping (q; qi) whose
	// covering requirement q ⊒ qi does not hold — the property that makes
	// the system "resilient to arbitrary linking" (§IV-D).
	ErrNotCovering = errors.New("index: mapping source does not cover target")
	// ErrSelfMapping is returned for a mapping from a query to itself.
	ErrSelfMapping = errors.New("index: self mapping is useless")
	// ErrNotFound is returned by directed lookups that exhaust the index
	// without reaching the target.
	ErrNotFound = errors.New("index: target not reachable from query")
)

// Service is the distributed index layered on a DHT network. It also owns
// the per-node shortcut caches of the adaptive caching mechanism (§IV-C) —
// cache entries are node-local state, kept outside the DHT store so that
// the paper's "regular keys" vs "cached keys" accounting stays separate.
type Service struct {
	net      overlay.Network
	policy   cache.Policy
	capacity int

	// mu guards caches and parsed: the parallel search fan-out issues
	// concurrent LookupCtx calls against one service, and the memo table
	// and per-node shortcut stores are its only shared mutable state.
	mu     sync.Mutex
	caches map[string]*cache.Store

	// parsed memoizes canonical-form parsing: stored entries are re-read
	// on every lookup and large result sets would otherwise dominate the
	// simulation's CPU profile.
	parsed map[string]xpath.Query

	// vocabulary, when enabled, registers every published descriptor's
	// values in the field dictionaries used for fuzzy correction (§VI).
	vocabulary bool

	// tel is nil until Instrument is called; its record methods are
	// nil-safe no-ops, keeping the hot paths unconditional.
	tel *svcTelemetry
}

// svcTelemetry holds the index layer's registry instruments.
type svcTelemetry struct {
	lookups      *telemetry.Counter
	finds        *telemetry.Counter
	findFailures *telemetry.Counter
	cacheHits    *telemetry.Counter
	cacheMisses  *telemetry.Counter
	shortcuts    *telemetry.Counter
	evictions    *telemetry.Counter
	genProbes    *telemetry.Counter
	nonIndexed   *telemetry.Counter
	incomplete   *telemetry.Counter
	interactions *telemetry.Histogram
}

// evictionCounter returns the shared LRU-eviction counter (nil when the
// service is uninstrumented).
func (t *svcTelemetry) evictionCounter() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.evictions
}

// recordLookup books one lookup(q) primitive (no-op on nil).
func (t *svcTelemetry) recordLookup() {
	if t == nil {
		return
	}
	t.lookups.Inc()
}

// recordShortcut books one installed shortcut entry (no-op on nil).
func (t *svcTelemetry) recordShortcut() {
	if t == nil {
		return
	}
	t.shortcuts.Inc()
}

// recordFind books a completed directed search (no-op on nil).
func (t *svcTelemetry) recordFind(trace Trace, err error) {
	if t == nil {
		return
	}
	t.finds.Inc()
	t.genProbes.Add(int64(trace.GeneralizationProbes))
	if trace.NonIndexed {
		t.nonIndexed.Inc()
	}
	if trace.Incomplete {
		t.incomplete.Inc()
	}
	if err != nil || !trace.Found {
		t.findFailures.Inc()
		return
	}
	t.interactions.Observe(float64(trace.Interactions))
	if trace.CacheHit {
		t.cacheHits.Inc()
	} else {
		t.cacheMisses.Inc()
	}
}

// New creates an index service over any substrate satisfying the overlay
// contract (Chord via dht.AsOverlay, Pastry via pastry.AsOverlay, ...).
// policy and lruCapacity configure the shortcut caches (capacity is used
// only with cache.LRU).
func New(net overlay.Network, policy cache.Policy, lruCapacity int) *Service {
	return &Service{
		net:      net,
		policy:   policy,
		capacity: lruCapacity,
		caches:   make(map[string]*cache.Store),
		parsed:   make(map[string]xpath.Query),
	}
}

// Instrument starts publishing the index layer's counters and the
// interactions-per-query histogram on reg. The optional labels (e.g.
// telemetry.L("scheme", "super")) distinguish services sharing one
// registry. Instrument is not safe to call concurrently with lookups;
// call it once at setup time.
func (s *Service) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	s.tel = &svcTelemetry{
		lookups: reg.Counter("index_lookups_total",
			"lookup(q) primitives issued against the distributed index.", labels...),
		finds: reg.Counter("index_finds_total",
			"Directed searches started (Searcher.Find).", labels...),
		findFailures: reg.Counter("index_find_failures_total",
			"Directed searches that failed to retrieve their target.", labels...),
		cacheHits: reg.Counter("index_cache_hits_total",
			"Successful searches short-circuited by a shortcut cache.", labels...),
		cacheMisses: reg.Counter("index_cache_misses_total",
			"Successful searches that walked the index without a shortcut.", labels...),
		shortcuts: reg.Counter("index_shortcuts_installed_total",
			"Shortcut cache entries created after successful searches.", labels...),
		evictions: reg.Counter("cache_evictions_total",
			"Shortcut entries displaced by the LRU replacement policy.", labels...),
		genProbes: reg.Counter("index_generalization_probes_total",
			"Generalization candidates looked up by the fallback.", labels...),
		nonIndexed: reg.Counter("index_non_indexed_queries_total",
			"Queries absent from every index (Table I's recoverable errors).", labels...),
		incomplete: reg.Counter("index_incomplete_lookups_total",
			"Searches degraded to a partial result because a hop failed inside the budget.", labels...),
		interactions: reg.Histogram("index_interactions_per_query",
			"User-system interaction rounds per successful search (Fig. 11).",
			telemetry.InteractionBuckets, labels...),
	}
}

// Network returns the underlying substrate.
func (s *Service) Network() overlay.Network { return s.net }

// Policy returns the configured cache policy.
func (s *Service) Policy() cache.Policy { return s.policy }

// Publish stores the file reference under the key of the descriptor's most
// specific query and returns that query. This is the "Publication index" of
// Fig. 5 — the raw DHT storage layer.
func (s *Service) Publish(file string, d descriptor.Descriptor) (xpath.Query, error) {
	msd := xpath.MostSpecific(d)
	if msd.IsZero() {
		return xpath.Query{}, fmt.Errorf("index: publish %q: %w", file, xpath.ErrEmptyQuery)
	}
	if _, err := s.net.Put(msd.Key(), overlay.Entry{Kind: KindData, Value: file}); err != nil {
		return xpath.Query{}, fmt.Errorf("index: publish %q: %w", file, err)
	}
	if s.vocabulary {
		if err := s.RegisterVocabulary(d); err != nil {
			return xpath.Query{}, err
		}
	}
	return msd, nil
}

// InsertMapping adds the index entry (q; target) on the node responsible
// for h(q). It enforces the covering requirement.
func (s *Service) InsertMapping(q, target xpath.Query) error {
	if q.Equal(target) {
		return fmt.Errorf("%w: %s", ErrSelfMapping, q)
	}
	if !q.Covers(target) {
		return fmt.Errorf("%w: (%s ; %s)", ErrNotCovering, q, target)
	}
	if _, err := s.net.Put(q.Key(), overlay.Entry{Kind: KindIndex, Value: target.String()}); err != nil {
		return fmt.Errorf("index: insert (%s ; %s): %w", q, target, err)
	}
	return nil
}

// RemoveMapping deletes the index entry (q; target), reporting whether it
// existed.
func (s *Service) RemoveMapping(q, target xpath.Query) (bool, error) {
	removed, err := s.net.Remove(q.Key(), overlay.Entry{Kind: KindIndex, Value: target.String()})
	if err != nil {
		return false, fmt.Errorf("index: remove (%s ; %s): %w", q, target, err)
	}
	return removed, nil
}

// Response is one user-system interaction: the answer of the node
// responsible for a query's key.
type Response struct {
	// Node is the address of the serving node.
	Node string
	// Hops is the DHT routing distance from the contact point.
	Hops int
	// Index lists the regular index results: queries covered by the asked
	// query.
	Index []xpath.Query
	// Cached lists shortcut targets from the node's adaptive cache.
	Cached []xpath.Query
	// Files lists file references when the asked query is a published MSD.
	Files []string
	// Bytes is the full serialized response size (the paper's
	// response-driven traffic measure): cache portion, index entries and
	// data references.
	Bytes int64
	// CachePortion is the bytes of the shortcut portion. Responses are
	// two-phase — the (small) cache content is delivered first, and a
	// user that jumps via a shortcut never pulls the index content — so
	// lookups that hit only transfer CachePortion plus data.
	CachePortion int64
}

// Lookup performs one interaction: it routes to the node responsible for
// h(q) and returns everything that node knows about q — index mappings,
// cache shortcuts, and data. This is the paper's "lookup(q)" primitive
// plus the publication-layer read.
func (s *Service) Lookup(q xpath.Query) (Response, error) {
	return s.LookupCtx(context.Background(), q)
}

// LookupCtx is Lookup bounded by the caller's deadline budget. When the
// substrate implements overlay.ContextNetwork the budget is threaded all
// the way into its retry and failover machinery; otherwise an up-front
// ctx check is the best that can be done. Any returned error is
// transport-level (the substrate read is the only error source), which
// is what lets the searcher degrade such failures to partial results.
func (s *Service) LookupCtx(ctx context.Context, q xpath.Query) (Response, error) {
	s.tel.recordLookup()
	var (
		entries []overlay.Entry
		route   overlay.Route
		err     error
	)
	if cn, ok := s.net.(overlay.ContextNetwork); ok {
		entries, route, err = cn.GetCtx(ctx, q.Key())
	} else if err = ctx.Err(); err == nil {
		entries, route, err = s.net.Get(q.Key())
	}
	if err != nil {
		return Response{}, fmt.Errorf("index: lookup %s: %w", q, err)
	}
	resp := Response{Node: route.Node, Hops: route.Hops}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		switch e.Kind {
		case KindIndex:
			target, ok := s.parseCachedLocked(e.Value)
			if !ok {
				// A corrupted entry must not poison the lookup.
				continue
			}
			resp.Index = append(resp.Index, target)
			resp.Bytes += int64(len(e.Value))
		case KindData:
			resp.Files = append(resp.Files, e.Value)
			resp.Bytes += int64(len(e.Value))
		}
	}
	if store := s.caches[resp.Node]; store != nil {
		for _, tgt := range store.Targets(q.String()) {
			target, ok := s.parseCachedLocked(tgt)
			if !ok {
				continue
			}
			resp.Cached = append(resp.Cached, target)
			resp.CachePortion += int64(len(tgt))
		}
		resp.Bytes += resp.CachePortion
		sort.Slice(resp.Cached, func(i, j int) bool {
			return resp.Cached[i].String() < resp.Cached[j].String()
		})
	}
	sort.Slice(resp.Index, func(i, j int) bool {
		return resp.Index[i].String() < resp.Index[j].String()
	})
	return resp, nil
}

// parseCached parses a canonical query string through the memo table.
func (s *Service) parseCached(canonical string) (xpath.Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parseCachedLocked(canonical)
}

// parseCachedLocked is parseCached with s.mu already held.
func (s *Service) parseCachedLocked(canonical string) (xpath.Query, bool) {
	if q, ok := s.parsed[canonical]; ok {
		return q, !q.IsZero()
	}
	q, err := xpath.Parse(canonical)
	if err != nil {
		s.parsed[canonical] = xpath.Query{} // negative cache
		return xpath.Query{}, false
	}
	s.parsed[canonical] = q
	return q, true
}

// AddShortcut installs the cache entry (q → target) on the given node,
// returning whether a new entry was created and the bytes of cache
// traffic it generated.
func (s *Service) AddShortcut(nodeAddr string, q xpath.Query, target string) (bool, int64) {
	if s.policy == cache.None {
		return false, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	store := s.caches[nodeAddr]
	if store == nil {
		capacity := 0
		if s.policy == cache.LRU {
			capacity = s.capacity
		}
		store = cache.NewStore(capacity)
		store.SetEvictionCounter(s.tel.evictionCounter())
		s.caches[nodeAddr] = store
	}
	if store.Add(q.String(), target) {
		s.tel.recordShortcut()
		return true, int64(len(target))
	}
	return false, 0
}

// TouchShortcut freshens a followed shortcut's LRU recency.
func (s *Service) TouchShortcut(nodeAddr string, q xpath.Query, target string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if store := s.caches[nodeAddr]; store != nil {
		store.Touch(q.String(), target)
	}
}

// CacheStore returns the shortcut store of a node (nil if none exists).
func (s *Service) CacheStore(nodeAddr string) *cache.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.caches[nodeAddr]
}

// CacheStats summarizes the distributed cache state (Fig. 14's metrics).
type CacheStats struct {
	// Nodes is the number of live nodes considered.
	Nodes int
	// TotalKeys is the total number of cached shortcut pairs.
	TotalKeys int
	// MeanKeys is TotalKeys / Nodes.
	MeanKeys float64
	// MaxKeys is the largest per-node cache.
	MaxKeys int
	// FullFraction is the fraction of node caches at capacity (bounded
	// policies only).
	FullFraction float64
	// EmptyFraction is the fraction of nodes with no cached key at all.
	EmptyFraction float64
}

// CacheStats computes Fig. 14's cache-occupancy metrics over live nodes.
func (s *Service) CacheStats() CacheStats {
	addrs := s.net.Addrs()
	stats := CacheStats{Nodes: len(addrs)}
	if stats.Nodes == 0 {
		return stats
	}
	full, empty := 0, 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, addr := range addrs {
		store := s.caches[addr]
		if store == nil || store.Len() == 0 {
			empty++
			continue
		}
		n := store.Len()
		stats.TotalKeys += n
		if n > stats.MaxKeys {
			stats.MaxKeys = n
		}
		if store.Full() {
			full++
		}
	}
	stats.MeanKeys = float64(stats.TotalKeys) / float64(stats.Nodes)
	stats.FullFraction = float64(full) / float64(stats.Nodes)
	stats.EmptyFraction = float64(empty) / float64(stats.Nodes)
	return stats
}

// StorageStats summarizes regular (non-cache) storage (§V-B and Fig. 14's
// "regular keys per node").
type StorageStats struct {
	Nodes        int
	IndexEntries int
	DataEntries  int
	IndexBytes   int64
	// MeanEntriesPerNode counts index+data entries per node — the paper's
	// "keys stored per node".
	MeanEntriesPerNode float64
}

// StorageStats computes index storage metrics over live nodes.
func (s *Service) StorageStats() StorageStats {
	addrs := s.net.Addrs()
	stats := StorageStats{Nodes: len(addrs)}
	for _, addr := range addrs {
		ns, err := s.net.StatsOf(addr)
		if err != nil {
			continue // node departed between Addrs and StatsOf
		}
		stats.IndexEntries += ns.EntriesByKind[KindIndex]
		stats.DataEntries += ns.EntriesByKind[KindData]
		stats.IndexBytes += ns.BytesByKind[KindIndex]
	}
	if stats.Nodes > 0 {
		stats.MeanEntriesPerNode = float64(stats.IndexEntries+stats.DataEntries) / float64(stats.Nodes)
	}
	return stats
}
