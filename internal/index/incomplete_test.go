package index

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
	"dhtindex/internal/telemetry"
	"dhtindex/internal/xpath"
)

// faultyNetwork wraps an overlay.Network and fails Gets for chosen keys,
// simulating a crash-stopped DHT hop under a specific query. It
// deliberately does NOT implement overlay.ContextNetwork, so these tests
// also cover the plain-Network fallback path of Service.LookupCtx.
type faultyNetwork struct {
	overlay.Network
	mu   sync.Mutex
	fail map[keyspace.Key]string
}

func (f *faultyNetwork) failQuery(q xpath.Query, reason string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = map[keyspace.Key]string{}
	}
	f.fail[q.Key()] = reason
}

func (f *faultyNetwork) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	f.mu.Lock()
	reason := f.fail[key]
	f.mu.Unlock()
	if reason != "" {
		return nil, overlay.Route{}, errors.New(reason)
	}
	return f.Network.Get(key)
}

// faultyFig1 is fig1Service over a fault-injectable substrate.
func faultyFig1(t *testing.T) (*Service, *faultyNetwork, []descriptor.Article) {
	t.Helper()
	net := dht.NewNetwork(1)
	if _, err := net.Populate(16); err != nil {
		t.Fatal(err)
	}
	fn := &faultyNetwork{Network: dht.AsOverlay(net, 1)}
	svc := New(fn, cache.None, 0)
	arts := descriptor.Fig1Articles()
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range arts {
		if err := svc.PublishArticle(files[i], a, Fig4); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	return svc, fn, arts
}

// TestFindDegradesToIncompleteOnDeadHop is the degradation acceptance
// test: a directed search whose mid-chain hop dies returns a partial
// trace flagged Incomplete with the unresolved branch named — not an
// error.
func TestFindDegradesToIncompleteOnDeadHop(t *testing.T) {
	svc, fn, arts := faultyFig1(t)
	reg := telemetry.NewRegistry()
	svc.Instrument(reg)
	searcher := NewSearcher(svc)
	a := arts[0] // John Smith, TCP -> x.pdf
	q := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	target := dataset.MSD(a)

	// Sanity: the chain works before the fault.
	trace, err := searcher.Find(q, target)
	if err != nil || !trace.Found {
		t.Fatalf("pre-fault find: %+v, %v", trace, err)
	}

	// Kill the middle hop of the Fig4 chain (author -> author+title ->
	// MSD) and search again.
	at := dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title)
	fn.failQuery(at, "injected: hop crash-stopped")
	trace, err = searcher.Find(q, target)
	if err != nil {
		t.Fatalf("degraded find must not error, got %v", err)
	}
	if !trace.Incomplete || trace.Found {
		t.Fatalf("trace = %+v, want Incomplete and not Found", trace)
	}
	if len(trace.Unresolved) != 1 {
		t.Fatalf("Unresolved = %v, want exactly the dead branch", trace.Unresolved)
	}
	u := trace.Unresolved[0]
	if u.Query != at.String() || !strings.Contains(u.Reason, "crash-stopped") {
		t.Fatalf("unresolved branch = %+v, want %s with the injected reason", u, at)
	}
	// The partial progress before the dead hop is still accounted.
	if trace.Interactions < 1 {
		t.Fatalf("degraded trace lost its resolved hops: %+v", trace)
	}
	// The degradation is visible in telemetry.
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "index_incomplete_lookups_total 1") {
		t.Errorf("index_incomplete_lookups_total not incremented:\n%s", buf.String())
	}
}

// TestSearchAllReturnsPartialResults: the exhaustive mode keeps exploring
// past a dead branch and returns every result the live part of the index
// DAG could deliver, plus an exact account of what is missing.
func TestSearchAllReturnsPartialResults(t *testing.T) {
	svc, fn, arts := faultyFig1(t)
	searcher := NewSearcher(svc)
	// Kill the branch leading to x.pdf (Smith/TCP); Smith/IPv6 -> y.pdf
	// must still be found.
	dead := dataset.AuthorTitleQuery(arts[0].AuthorFirst, arts[0].AuthorLast, arts[0].Title)
	fn.failQuery(dead, "injected: branch down")

	results, trace, err := searcher.SearchAll(dataset.LastNameQuery("Smith"))
	if err != nil {
		t.Fatalf("degraded search-all must not error, got %v", err)
	}
	if !trace.Incomplete {
		t.Fatalf("trace not marked Incomplete: %+v", trace)
	}
	files := map[string]bool{}
	for _, r := range results {
		files[r.File] = true
	}
	if !files["y.pdf"] || files["x.pdf"] {
		t.Fatalf("partial results = %v, want y.pdf reachable and x.pdf missing", files)
	}
	found := false
	for _, u := range trace.Unresolved {
		if u.Query == dead.String() && strings.Contains(u.Reason, "branch down") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead branch not reported: %v", trace.Unresolved)
	}
}

// TestFindCtxSpentBudgetDegrades: an exhausted deadline budget degrades
// the same way a dead hop does — partial trace, nil error — and returns
// immediately instead of burning retries.
func TestFindCtxSpentBudgetDegrades(t *testing.T) {
	svc, _, arts := faultyFig1(t)
	searcher := NewSearcher(svc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trace, err := searcher.FindCtx(ctx, dataset.AuthorQuery(arts[0].AuthorFirst, arts[0].AuthorLast), dataset.MSD(arts[0]))
	if err != nil {
		t.Fatalf("spent budget must degrade, not error: %v", err)
	}
	if !trace.Incomplete || trace.Found {
		t.Fatalf("trace = %+v, want Incomplete", trace)
	}
	if len(trace.Unresolved) == 0 || !strings.Contains(trace.Unresolved[0].Reason, context.Canceled.Error()) {
		t.Fatalf("unresolved = %v, want the spent budget recorded", trace.Unresolved)
	}
}
