package index

import (
	"errors"
	"fmt"
	"testing"

	"dhtindex/internal/cache"
	"dhtindex/internal/dataset"
	"dhtindex/internal/descriptor"
	"dhtindex/internal/dht"
	"dhtindex/internal/xpath"
)

// fig1Service builds a small network publishing the three Fig. 1 articles
// under the given scheme and cache policy.
func fig1Service(t *testing.T, scheme Scheme, policy cache.Policy, lruCap int) (*Service, []descriptor.Article) {
	t.Helper()
	net := dht.NewNetwork(1)
	if _, err := net.Populate(16); err != nil {
		t.Fatal(err)
	}
	svc := New(dht.AsOverlay(net, 1), policy, lruCap)
	arts := descriptor.Fig1Articles()
	files := []string{"x.pdf", "y.pdf", "z.pdf"}
	for i, a := range arts {
		if err := svc.PublishArticle(files[i], a, scheme); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	return svc, arts
}

func TestInsertMappingEnforcesCovering(t *testing.T) {
	net := dht.NewNetwork(1)
	if _, err := net.Populate(4); err != nil {
		t.Fatal(err)
	}
	svc := New(dht.AsOverlay(net, 1), cache.None, 0)
	smith := dataset.LastNameQuery("Smith")
	doeTitle := dataset.AuthorTitleQuery("Alan", "Doe", "Wavelets")
	if err := svc.InsertMapping(smith, doeTitle); !errors.Is(err, ErrNotCovering) {
		t.Fatalf("err = %v, want ErrNotCovering", err)
	}
	if err := svc.InsertMapping(smith, smith); !errors.Is(err, ErrSelfMapping) {
		t.Fatalf("err = %v, want ErrSelfMapping", err)
	}
	john := dataset.AuthorQuery("John", "Smith")
	if err := svc.InsertMapping(smith, john); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
}

func TestLookupReturnsMappings(t *testing.T) {
	svc, _ := fig1Service(t, Fig4, cache.None, 0)
	resp, err := svc.Lookup(dataset.LastNameQuery("Smith"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Index) != 1 {
		t.Fatalf("Last-name Smith index = %v, want 1 entry (John Smith)", resp.Index)
	}
	if !resp.Index[0].Equal(dataset.AuthorQuery("John", "Smith")) {
		t.Fatalf("entry = %q", resp.Index[0])
	}
	if resp.Bytes <= 0 {
		t.Fatal("response bytes not accounted")
	}
}

// TestFig6IndexPath replays the paper's §IV-A walk: "given q6, a user will
// first obtain q3; ... two new queries that link to d1 and d2; ... retrieve
// the two files".
func TestFig6IndexPath(t *testing.T) {
	svc, arts := fig1Service(t, Fig4, cache.None, 0)
	q6 := dataset.LastNameQuery("Smith")
	resp, err := svc.Lookup(q6)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Index) != 1 {
		t.Fatalf("step 1: %v", resp.Index)
	}
	q3 := resp.Index[0]
	resp, err = svc.Lookup(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Index) != 2 {
		t.Fatalf("step 2: author index should list 2 article queries, got %v", resp.Index)
	}
	files := map[string]bool{}
	for _, at := range resp.Index {
		r2, err := svc.Lookup(at)
		if err != nil {
			t.Fatal(err)
		}
		if len(r2.Index) != 1 {
			t.Fatalf("article index for %s: %v", at, r2.Index)
		}
		r3, err := svc.Lookup(r2.Index[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range r3.Files {
			files[f] = true
		}
	}
	if !files["x.pdf"] || !files["y.pdf"] || len(files) != 2 {
		t.Fatalf("retrieved files = %v, want x.pdf and y.pdf", files)
	}
	_ = arts
}

func TestFindDirectedAllSchemes(t *testing.T) {
	wantDepth := map[string]int{
		// interactions for an author-only query, including data fetch
		"simple":  3, // author -> author+title -> MSD(fetch)... plus fetch = author, AT, MSD = 3 lookups? see below
		"flat":    2,
		"complex": 4,
		"fig4":    3,
	}
	for _, scheme := range []Scheme{Simple, Flat, Complex, Fig4} {
		svc, arts := fig1Service(t, scheme, cache.None, 0)
		searcher := NewSearcher(svc)
		a := arts[0] // John Smith, TCP
		trace, err := searcher.Find(dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast), dataset.MSD(a))
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if !trace.Found || trace.File != "x.pdf" {
			t.Fatalf("%s: trace = %+v", scheme.Name(), trace)
		}
		if trace.Interactions != wantDepth[scheme.Name()] {
			t.Errorf("%s: interactions = %d, want %d",
				scheme.Name(), trace.Interactions, wantDepth[scheme.Name()])
		}
		if trace.NonIndexed || trace.CacheHit {
			t.Errorf("%s: unexpected flags in %+v", scheme.Name(), trace)
		}
	}
}

func TestFindByEveryIndexedField(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	a := arts[1] // John Smith, IPv6, INFOCOM 1996
	queries := []xpath.Query{
		dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast),
		dataset.TitleQuery(a.Title),
		dataset.ConfQuery(a.Conf),
		dataset.YearQuery(a.Year),
		dataset.AuthorTitleQuery(a.AuthorFirst, a.AuthorLast, a.Title),
		dataset.ConfYearQuery(a.Conf, a.Year),
		dataset.MSD(a),
	}
	for _, q := range queries {
		trace, err := searcher.Find(q, dataset.MSD(a))
		if err != nil {
			t.Fatalf("Find(%s): %v", q, err)
		}
		if !trace.Found || trace.File != "y.pdf" {
			t.Fatalf("Find(%s): %+v", q, trace)
		}
	}
}

func TestFindNonIndexedGeneralizes(t *testing.T) {
	for _, scheme := range Schemes() {
		svc, arts := fig1Service(t, scheme, cache.None, 0)
		searcher := NewSearcher(svc)
		a := arts[1]
		q := dataset.AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year)
		trace, err := searcher.Find(q, dataset.MSD(a))
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if !trace.Found || !trace.NonIndexed {
			t.Fatalf("%s: trace = %+v, want found via generalization", scheme.Name(), trace)
		}
		// The recovery costs exactly one extra interaction here: the
		// failed lookup plus one generalization probe that succeeds.
		base := map[string]int{"simple": 3, "flat": 2, "complex": 4}[scheme.Name()]
		if trace.Interactions != base+1 {
			t.Errorf("%s: interactions = %d, want %d", scheme.Name(), trace.Interactions, base+1)
		}
	}
}

func TestFindTargetMissing(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	ghost := descriptor.Article{
		AuthorFirst: "No", AuthorLast: "One", Title: "Nothing",
		Conf: "NOWHERE", Year: 1900, Size: 1,
	}
	_, err := searcher.Find(dataset.AuthorQuery("No", "One"), dataset.MSD(ghost))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFindZeroQueries(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	if _, err := searcher.Find(xpath.Query{}, dataset.MSD(arts[0])); err == nil {
		t.Fatal("zero query accepted")
	}
	if _, err := searcher.Find(dataset.TitleQuery("TCP"), xpath.Query{}); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestSingleCacheHitSecondLookup(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.Single, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	q := dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast)
	first, err := searcher.Find(q, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.CacheBytes == 0 {
		t.Fatalf("first lookup: %+v, want shortcut created, no hit", first)
	}
	second, err := searcher.Find(q, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || !second.FirstNodeHit {
		t.Fatalf("second lookup: %+v, want first-node cache hit", second)
	}
	if second.Interactions != 2 {
		t.Fatalf("cache-hit interactions = %d, want 2", second.Interactions)
	}
	if second.CacheBytes != 0 {
		t.Fatalf("hit should create no new shortcut, got %d cache bytes", second.CacheBytes)
	}
}

func TestMultiCacheMidPathHit(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.Multi, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	// Author lookup installs shortcuts at the author node AND the
	// author+title node.
	if _, err := searcher.Find(dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast), dataset.MSD(a)); err != nil {
		t.Fatal(err)
	}
	// A title lookup passes through the same author+title node: mid-path
	// hit, not a first-node hit.
	trace, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.CacheHit || trace.FirstNodeHit {
		t.Fatalf("trace = %+v, want mid-path hit", trace)
	}
}

func TestSingleCacheNoMidPathShortcuts(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.Single, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	if _, err := searcher.Find(dataset.AuthorQuery(a.AuthorFirst, a.AuthorLast), dataset.MSD(a)); err != nil {
		t.Fatal(err)
	}
	trace, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if trace.CacheHit {
		t.Fatalf("trace = %+v: single-cache must not install mid-path shortcuts", trace)
	}
}

func TestCacheFixesNonIndexedErrors(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.Single, 0)
	searcher := NewSearcher(svc)
	a := arts[1]
	q := dataset.AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year)
	first, err := searcher.Find(q, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if !first.NonIndexed {
		t.Fatalf("first: %+v, want NonIndexed", first)
	}
	second, err := searcher.Find(q, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if second.NonIndexed || !second.CacheHit {
		t.Fatalf("second: %+v, want cache hit without error", second)
	}
}

func TestAdaptiveIndexingInsertsPermanentEntry(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	searcher.AdaptiveIndexing = true
	a := arts[1]
	q := dataset.AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year)
	if _, err := searcher.Find(q, dataset.MSD(a)); err != nil {
		t.Fatal(err)
	}
	// Even with caching off, the on-demand index entry now answers q.
	second, err := searcher.Find(q, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if second.NonIndexed {
		t.Fatalf("second: %+v, adaptive entry missing", second)
	}
	if second.Interactions != 2 {
		t.Fatalf("interactions = %d, want 2 via permanent entry", second.Interactions)
	}
}

func TestShortcircuitEntrySpeedsUpLookup(t *testing.T) {
	// §IV-C: "a very popular file can be linked to deep in the hierarchy
	// to short-circuit some indexes" — add (q6; d1) directly.
	svc, arts := fig1Service(t, Fig4, cache.None, 0)
	searcher := NewSearcher(svc)
	a := arts[0]
	q6 := dataset.LastNameQuery(a.AuthorLast)
	before, err := searcher.Find(q6, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.InsertMapping(q6, dataset.MSD(a)); err != nil {
		t.Fatal(err)
	}
	after, err := searcher.Find(q6, dataset.MSD(a))
	if err != nil {
		t.Fatal(err)
	}
	if after.Interactions >= before.Interactions {
		t.Fatalf("short-circuit did not help: before=%d after=%d",
			before.Interactions, after.Interactions)
	}
	if after.Interactions != 2 {
		t.Fatalf("short-circuited lookup = %d interactions, want 2", after.Interactions)
	}
}

func TestUnpublishRecursiveCleanup(t *testing.T) {
	svc, arts := fig1Service(t, Fig4, cache.None, 0)
	// Remove d3 (Alan Doe): every Doe-related index entry should vanish,
	// but shared INFOCOM/1996 keys must survive (d2 still uses them).
	if err := svc.UnpublishArticle("z.pdf", arts[2], Fig4); err != nil {
		t.Fatal(err)
	}
	doe, err := svc.Lookup(dataset.LastNameQuery("Doe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doe.Index) != 0 {
		t.Fatalf("Doe last-name entries remain: %v", doe.Index)
	}
	cy, err := svc.Lookup(dataset.ConfYearQuery("INFOCOM", 1996))
	if err != nil {
		t.Fatal(err)
	}
	if len(cy.Index) != 1 {
		t.Fatalf("INFOCOM/1996 should still index d2, got %v", cy.Index)
	}
	// d2 must remain fully findable.
	searcher := NewSearcher(svc)
	trace, err := searcher.Find(dataset.ConfQuery("INFOCOM"), dataset.MSD(arts[1]))
	if err != nil || !trace.Found {
		t.Fatalf("d2 lost after cleanup: %+v, %v", trace, err)
	}
	// d3 is gone.
	if _, err := searcher.Find(dataset.TitleQuery("Wavelets"), dataset.MSD(arts[2])); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound for deleted article", err)
	}
}

func TestSearchAllBroadQuery(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	results, trace, err := searcher.SearchAll(dataset.ConfQuery("INFOCOM"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v, want the 2 INFOCOM articles", results)
	}
	if !trace.Found || trace.Interactions < 3 {
		t.Fatalf("trace = %+v", trace)
	}
	_ = arts
}

func TestSearchAllAuthorAcrossSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Simple, Flat, Complex, Fig4} {
		svc, _ := fig1Service(t, scheme, cache.None, 0)
		searcher := NewSearcher(svc)
		results, _, err := searcher.SearchAll(dataset.AuthorQuery("John", "Smith"))
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if len(results) != 2 {
			t.Fatalf("%s: results = %v, want 2 Smith articles", scheme.Name(), results)
		}
	}
}

func TestSearchAllNonIndexedQuery(t *testing.T) {
	svc, arts := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	a := arts[1]
	results, trace, err := searcher.SearchAll(
		dataset.AuthorYearQuery(a.AuthorFirst, a.AuthorLast, a.Year))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.NonIndexed {
		t.Fatalf("trace = %+v, want NonIndexed", trace)
	}
	if len(results) != 1 || results[0].File != "y.pdf" {
		t.Fatalf("results = %v, want just y.pdf", results)
	}
}

func TestSearchAllPrunesIncompatibleBranches(t *testing.T) {
	svc, _ := fig1Service(t, Simple, cache.None, 0)
	searcher := NewSearcher(svc)
	// Query for Smith articles at SIGCOMM: must not retrieve the INFOCOM
	// article even though both live under the author index entry.
	q := dataset.AuthorConfQuery("John", "Smith", "SIGCOMM")
	results, _, err := searcher.SearchAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].File != "x.pdf" {
		t.Fatalf("results = %v, want just x.pdf", results)
	}
}

func TestLRUCacheBounded(t *testing.T) {
	net := dht.NewNetwork(1)
	if _, err := net.Populate(2); err != nil {
		t.Fatal(err)
	}
	svc := New(dht.AsOverlay(net, 1), cache.LRU, 3)
	searcher := NewSearcher(svc)
	corpus, err := dataset.Generate(dataset.Config{Articles: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range corpus.Articles {
		if err := svc.PublishArticle(fmt.Sprintf("f%d.pdf", i), a, Simple); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range corpus.Articles {
		if _, err := searcher.Find(dataset.TitleQuery(a.Title), dataset.MSD(a)); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.CacheStats()
	if stats.MaxKeys > 3 {
		t.Fatalf("LRU cache exceeded capacity: %+v", stats)
	}
	if stats.TotalKeys == 0 {
		t.Fatal("no shortcuts created")
	}
}

func TestStorageStatsBySchemeOrdering(t *testing.T) {
	corpus, err := dataset.Generate(dataset.Config{Articles: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	bytesBy := map[string]int64{}
	for _, scheme := range Schemes() {
		net := dht.NewNetwork(1)
		if _, err := net.Populate(16); err != nil {
			t.Fatal(err)
		}
		svc := New(dht.AsOverlay(net, 1), cache.None, 0)
		for i, a := range corpus.Articles {
			if err := svc.PublishArticle(fmt.Sprintf("f%d", i), a, scheme); err != nil {
				t.Fatal(err)
			}
		}
		bytesBy[scheme.Name()] = svc.StorageStats().IndexBytes
	}
	if !(bytesBy["simple"] < bytesBy["complex"] && bytesBy["complex"] < bytesBy["flat"]) {
		t.Fatalf("storage ordering wrong (§V-B wants simple < complex < flat): %v", bytesBy)
	}
}

func TestSchemeChainsCoveringInvariant(t *testing.T) {
	corpus, err := dataset.Generate(dataset.Config{Articles: 100, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{Simple, Flat, Complex, Fig4} {
		for _, a := range corpus.Articles {
			msd := dataset.MSD(a)
			for _, chain := range scheme.Chains(a) {
				if len(chain) < 2 {
					t.Fatalf("%s: chain too short", scheme.Name())
				}
				if !chain[len(chain)-1].Equal(msd) {
					t.Fatalf("%s: chain does not end at MSD", scheme.Name())
				}
				for i := 0; i+1 < len(chain); i++ {
					if !chain[i].Covers(chain[i+1]) {
						t.Fatalf("%s: chain link %d: %s does not cover %s",
							scheme.Name(), i, chain[i], chain[i+1])
					}
				}
			}
		}
	}
}

func TestFlatChainsLengthTwo(t *testing.T) {
	a := descriptor.Fig1Articles()[0]
	for _, chain := range Flat.Chains(a) {
		if len(chain) != 2 {
			t.Fatalf("flat chain length = %d, want 2 (%v)", len(chain), chain)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"simple", "flat", "complex", "fig4"} {
		s, err := SchemeByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("SchemeByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
