// Package pastry implements a Pastry overlay (Rowstron & Druschel,
// Middleware 2001) as an in-process simulation — the second DHT substrate
// behind the overlay contract. The paper names Pastry/PAST alongside
// Chord/CFS as candidate storage substrates (§III-A); having two lets the
// evaluation demonstrate that the indexing layer's behaviour is
// substrate-independent (§V-E).
//
// Pastry differs from Chord in two visible ways: a key is stored on the
// node whose identifier is numerically CLOSEST to the key (not the
// successor), and routing resolves one base-16 digit of the key per hop
// via prefix-matching routing tables, falling back to leaf sets near the
// destination.
package pastry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

const (
	// digits is the number of base-16 digits in an identifier.
	digits = keyspace.Bits / 4
	// leafHalf is the number of leaf-set entries on each side.
	leafHalf = 8
)

// Errors returned by the Pastry layer.
var (
	// ErrEmptyNetwork is returned when an operation requires at least one
	// live node.
	ErrEmptyNetwork = errors.New("pastry: network has no live nodes")
	// ErrNodeExists is returned when a node address is already in use.
	ErrNodeExists = errors.New("pastry: node already exists")
	// ErrNodeUnknown is returned for an address not in the network.
	ErrNodeUnknown = errors.New("pastry: unknown node")
)

// Metrics accumulates substrate counters.
type Metrics struct {
	Lookups int
	Hops    int
	MaxHops int
	// KeysRehomed counts keys moved between nodes by membership changes
	// (join migration and graceful-leave hand-off) — the substrate's
	// maintenance traffic, compared across substrates by the bench matrix.
	KeysRehomed int
	// BytesRehomed sums the payload bytes behind KeysRehomed.
	BytesRehomed int64
}

// Node is one Pastry peer.
type Node struct {
	// Addr is the node's unique address.
	Addr string
	// ID is SHA-1 of the address.
	ID keyspace.Key

	store map[keyspace.Key][]overlay.Entry

	// Routing state, rebuilt lazily per membership epoch.
	epoch   uint64
	leaves  []*Node // leaf set: nearest ring neighbours, both sides
	routing [digits][16]*Node
}

// Network is the in-process Pastry overlay.
type Network struct {
	mu      sync.Mutex
	nodes   map[string]*Node
	sorted  []*Node // by ID
	epoch   uint64
	metrics Metrics
}

// NewNetwork creates an empty overlay.
func NewNetwork() *Network {
	return &Network{nodes: make(map[string]*Node)}
}

// Size returns the number of live nodes.
func (n *Network) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.sorted)
}

// Metrics snapshots the routing counters.
func (n *Network) Metrics() Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metrics
}

// AddNode joins a node and migrates the keys it is now closest to.
func (n *Network) AddNode(addr string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, addr)
	}
	node := &Node{
		Addr:  addr,
		ID:    keyspace.NewKey(addr),
		store: make(map[keyspace.Key][]overlay.Entry),
	}
	n.nodes[addr] = node
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(node.ID) >= 0
	})
	n.sorted = append(n.sorted, nil)
	copy(n.sorted[i+1:], n.sorted[i:])
	n.sorted[i] = node
	n.epoch++
	n.migrateTo(node)
	return node, nil
}

// Populate adds count nodes with generated addresses.
func (n *Network) Populate(count int) ([]*Node, error) {
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		node, err := n.AddNode(fmt.Sprintf("pastry-%04d", i))
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}

// RemoveNode gracefully removes a node, handing its keys to their new
// closest nodes.
func (n *Network) RemoveNode(addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	n.deleteLocked(node)
	if len(n.sorted) > 0 {
		for k, entries := range node.store {
			owner := n.ownerLocked(k)
			for _, e := range entries {
				putLocal(owner, k, e)
				n.metrics.BytesRehomed += int64(len(e.Value))
			}
			n.metrics.KeysRehomed++
		}
	}
	return nil
}

// FailNode crashes a node, losing its keys.
func (n *Network) FailNode(addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	n.deleteLocked(node)
	return nil
}

func (n *Network) deleteLocked(node *Node) {
	delete(n.nodes, node.Addr)
	for i, s := range n.sorted {
		if s == node {
			n.sorted = append(n.sorted[:i], n.sorted[i+1:]...)
			break
		}
	}
	n.epoch++
}

// migrateTo moves keys the new node is now closest to. Callers hold n.mu.
func (n *Network) migrateTo(node *Node) {
	if len(n.sorted) < 2 {
		return
	}
	// Only the two ring neighbours can lose keys to the newcomer.
	idx := n.indexOf(node)
	count := len(n.sorted)
	for _, neighbour := range []*Node{
		n.sorted[(idx+1)%count],
		n.sorted[(idx-1+count)%count],
	} {
		for k, entries := range neighbour.store {
			if n.ownerLocked(k) == node {
				for _, e := range entries {
					putLocal(node, k, e)
					n.metrics.BytesRehomed += int64(len(e.Value))
				}
				delete(neighbour.store, k)
				n.metrics.KeysRehomed++
			}
		}
	}
}

func (n *Network) indexOf(node *Node) int {
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(node.ID) >= 0
	})
	return i
}

// ownerLocked returns the node numerically closest to key (Pastry's
// replica root). Callers hold n.mu.
func (n *Network) ownerLocked(key keyspace.Key) *Node {
	count := len(n.sorted)
	if count == 0 {
		return nil
	}
	i := sort.Search(count, func(i int) bool {
		return n.sorted[i].ID.Cmp(key) >= 0
	})
	succ := n.sorted[i%count]
	pred := n.sorted[(i-1+count)%count]
	// Compare circular distances; ties go to the numerically higher node
	// (the successor side), deterministically.
	dPred := pred.ID.ClockwiseTo(key) // clockwise pred -> key
	dSucc := key.ClockwiseTo(succ.ID) // clockwise key -> succ
	if dPred.Cmp(dSucc) < 0 {
		return pred
	}
	return succ
}

// OwnerOf returns the node responsible for a key (oracle view).
func (n *Network) OwnerOf(key keyspace.Key) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.sorted) == 0 {
		return nil, ErrEmptyNetwork
	}
	return n.ownerLocked(key), nil
}

func putLocal(nd *Node, key keyspace.Key, e overlay.Entry) bool {
	for _, have := range nd.store[key] {
		if have == e {
			return false
		}
	}
	nd.store[key] = append(nd.store[key], e)
	return true
}
