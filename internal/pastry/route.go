package pastry

import (
	"dhtindex/internal/keyspace"
)

// digit returns the i-th base-16 digit (most significant first) of a key.
func digit(k keyspace.Key, i int) int {
	b := k[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0F)
}

// sharedPrefix returns the number of leading base-16 digits two keys share.
func sharedPrefix(a, b keyspace.Key) int {
	for i := 0; i < keyspace.Size; i++ {
		if a[i] == b[i] {
			continue
		}
		if a[i]>>4 == b[i]>>4 {
			return 2*i + 1
		}
		return 2 * i
	}
	return digits
}

// absDistance is the shorter circular distance between two keys,
// computed without allocation (routing hot path).
func absDistance(a, b keyspace.Key) keyspace.Key {
	d1 := a.ClockwiseTo(b)
	d2 := b.ClockwiseTo(a)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// refresh rebuilds a node's leaf set and routing table if membership
// changed. Callers hold n.mu.
func (n *Network) refresh(node *Node) {
	if node.epoch == n.epoch {
		return
	}
	node.epoch = n.epoch
	count := len(n.sorted)
	idx := n.indexOf(node)

	node.leaves = node.leaves[:0]
	for j := 1; j <= leafHalf && j < count; j++ {
		node.leaves = append(node.leaves, n.sorted[(idx+j)%count])
		if (idx-j+count)%count != (idx+j)%count {
			node.leaves = append(node.leaves, n.sorted[(idx-j+count)%count])
		}
	}

	node.routing = [digits][16]*Node{}
	for _, m := range n.sorted {
		if m == node {
			continue
		}
		l := sharedPrefix(node.ID, m.ID)
		if l >= digits {
			continue
		}
		d := digit(m.ID, l)
		if node.routing[l][d] == nil {
			node.routing[l][d] = m
		}
	}
}

// LookupResult reports a routed lookup.
type LookupResult struct {
	Owner *Node
	Hops  int
}

// Lookup routes from start (or a deterministic first node when nil) to
// the node numerically closest to key, using Pastry's prefix routing with
// leaf-set delivery.
func (n *Network) Lookup(start *Node, key keyspace.Key) (LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lookupLocked(start, key)
}

func (n *Network) lookupLocked(start *Node, key keyspace.Key) (LookupResult, error) {
	if len(n.sorted) == 0 {
		return LookupResult{}, ErrEmptyNetwork
	}
	if start == nil {
		start = n.sorted[0]
	}
	owner := n.ownerLocked(key)
	current := start
	hops := 0
	for step := 0; step < 2*digits; step++ {
		if current == owner {
			n.record(hops)
			return LookupResult{Owner: current, Hops: hops}, nil
		}
		n.refresh(current)
		next := n.nextHop(current, key)
		if next == nil || next == current {
			// Routing dead end (cannot improve): deliver via oracle and
			// charge one hop, as a real Pastry would fall back to its
			// leaf-set repair.
			n.record(hops + 1)
			return LookupResult{Owner: owner, Hops: hops + 1}, nil
		}
		current = next
		hops++
	}
	n.record(hops)
	return LookupResult{Owner: owner, Hops: hops}, nil
}

// nextHop applies the Pastry routing rule at current for key. Callers
// hold n.mu and have refreshed current.
func (n *Network) nextHop(current *Node, key keyspace.Key) *Node {
	// 1. Leaf-set delivery: if any leaf (or current) is the closest of
	// the leaf neighbourhood, hop straight to the numerically closest.
	best := current
	bestDist := absDistance(current.ID, key)
	inLeafRange := false
	for _, leaf := range current.leaves {
		d := absDistance(leaf.ID, key)
		if d.Cmp(bestDist) < 0 {
			best, bestDist = leaf, d
		}
		if leaf == n.ownerLocked(key) {
			inLeafRange = true
		}
	}
	if inLeafRange {
		return n.ownerLocked(key)
	}
	// 2. Prefix routing: a node sharing one more digit with the key.
	l := sharedPrefix(current.ID, key)
	if l < digits {
		if next := current.routing[l][digit(key, l)]; next != nil {
			return next
		}
	}
	// 3. Rare case: any known node numerically closer with no shorter
	// prefix (best already tracks the leaf set; also scan the table row).
	if l < digits {
		for _, cand := range current.routing[l] {
			if cand == nil {
				continue
			}
			if d := absDistance(cand.ID, key); d.Cmp(bestDist) < 0 {
				best, bestDist = cand, d
			}
		}
	}
	if best != current {
		return best
	}
	return nil
}

func (n *Network) record(hops int) {
	n.metrics.Lookups++
	n.metrics.Hops += hops
	if hops > n.metrics.MaxHops {
		n.metrics.MaxHops = hops
	}
}
