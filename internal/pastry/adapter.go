package pastry

import (
	"fmt"
	"math/rand"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Overlay adapts a Pastry Network to the substrate contract.
type Overlay struct {
	net *Network
	rng *rand.Rand
}

var _ overlay.Network = (*Overlay)(nil)

// AsOverlay wraps the network; the seed drives contact-point selection.
func AsOverlay(net *Network, seed int64) *Overlay {
	return &Overlay{net: net, rng: rand.New(rand.NewSource(seed))}
}

func (o *Overlay) start() *Node {
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	if len(o.net.sorted) == 0 {
		return nil
	}
	return o.net.sorted[o.rng.Intn(len(o.net.sorted))]
}

// Put implements overlay.Network.
func (o *Overlay) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	start := o.start()
	res, err := o.net.Lookup(start, key)
	if err != nil {
		return overlay.Route{}, err
	}
	o.net.mu.Lock()
	putLocal(res.Owner, key, e)
	o.net.mu.Unlock()
	return overlay.Route{Node: res.Owner.Addr, Hops: res.Hops}, nil
}

// Get implements overlay.Network.
func (o *Overlay) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	start := o.start()
	res, err := o.net.Lookup(start, key)
	if err != nil {
		return nil, overlay.Route{}, err
	}
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	stored := res.Owner.store[key]
	entries := make([]overlay.Entry, len(stored))
	copy(entries, stored)
	if len(entries) == 0 {
		entries = nil
	}
	return entries, overlay.Route{Node: res.Owner.Addr, Hops: res.Hops}, nil
}

// Remove implements overlay.Network.
func (o *Overlay) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	start := o.start()
	res, err := o.net.Lookup(start, key)
	if err != nil {
		return false, err
	}
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	entries := res.Owner.store[key]
	for i, have := range entries {
		if have == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(res.Owner.store, key)
			} else {
				res.Owner.store[key] = entries
			}
			return true, nil
		}
	}
	return false, nil
}

// Addrs implements overlay.Network: live nodes in ring order.
func (o *Overlay) Addrs() []string {
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	out := make([]string, len(o.net.sorted))
	for i, nd := range o.net.sorted {
		out[i] = nd.Addr
	}
	return out
}

// StatsOf implements overlay.Network.
func (o *Overlay) StatsOf(addr string) (overlay.NodeStats, error) {
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	nd, ok := o.net.nodes[addr]
	if !ok {
		return overlay.NodeStats{}, fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	stats := overlay.NodeStats{
		Keys:          len(nd.store),
		EntriesByKind: make(map[string]int),
		BytesByKind:   make(map[string]int64),
	}
	for _, entries := range nd.store {
		kinds := make(map[string]bool, 2)
		for _, e := range entries {
			stats.EntriesByKind[e.Kind]++
			stats.BytesByKind[e.Kind] += int64(len(e.Value))
			kinds[e.Kind] = true
		}
		for k := range kinds {
			stats.BytesByKind[k] += keyspace.Size
		}
	}
	return stats, nil
}

// Size implements overlay.Network.
func (o *Overlay) Size() int { return o.net.Size() }

// String names the substrate in reports.
func (o *Overlay) String() string {
	return fmt.Sprintf("pastry(%d nodes)", o.net.Size())
}
