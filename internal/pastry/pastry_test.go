package pastry

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func mustNetwork(t *testing.T, size int) (*Network, []*Node) {
	t.Helper()
	n := NewNetwork()
	nodes, err := n.Populate(size)
	if err != nil {
		t.Fatal(err)
	}
	return n, nodes
}

func TestDigitAndSharedPrefix(t *testing.T) {
	var a, b keyspace.Key
	a[0] = 0xAB
	if digit(a, 0) != 0xA || digit(a, 1) != 0xB {
		t.Fatalf("digits of 0xAB: %x %x", digit(a, 0), digit(a, 1))
	}
	b[0] = 0xAC
	if got := sharedPrefix(a, b); got != 1 {
		t.Fatalf("sharedPrefix(AB, AC) = %d, want 1", got)
	}
	b[0] = 0xAB
	b[1] = 0xFF
	if got := sharedPrefix(a, b); got != 2 {
		t.Fatalf("sharedPrefix = %d, want 2", got)
	}
	if got := sharedPrefix(a, a); got != digits {
		t.Fatalf("sharedPrefix(a,a) = %d, want %d", got, digits)
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	n, _ := mustNetwork(t, 32)
	for i := 0; i < 100; i++ {
		key := keyspace.NewKey(fmt.Sprintf("k%d", i))
		owner, err := n.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		ownerDist := absDistance(owner.ID, key)
		for _, other := range n.sorted {
			if absDistance(other.ID, key).Cmp(ownerDist) < 0 {
				t.Fatalf("key %s: %s closer than owner %s", key.Short(), other.Addr, owner.Addr)
			}
		}
	}
}

func TestLookupMatchesOracleFromEveryStart(t *testing.T) {
	n, nodes := mustNetwork(t, 48)
	for i := 0; i < 40; i++ {
		key := keyspace.NewKey(fmt.Sprintf("probe%d", i))
		oracle, err := n.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, start := range nodes {
			res, err := n.Lookup(start, key)
			if err != nil {
				t.Fatal(err)
			}
			if res.Owner != oracle {
				t.Fatalf("key %s from %s routed to %s, oracle %s",
					key.Short(), start.Addr, res.Owner.Addr, oracle.Addr)
			}
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	n, nodes := mustNetwork(t, 256)
	for i := 0; i < 1000; i++ {
		if _, err := n.Lookup(nodes[i%len(nodes)], keyspace.NewKey(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m := n.Metrics()
	mean := float64(m.Hops) / float64(m.Lookups)
	// Pastry resolves ~log16(N) digits per hop; allow generous slack.
	bound := 3 * math.Log2(256) / 4
	if mean > bound {
		t.Fatalf("mean hops %.2f > %.2f", mean, bound)
	}
	if m.MaxHops > 12 {
		t.Fatalf("max hops %d too large", m.MaxHops)
	}
}

func TestLookupEmpty(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Lookup(nil, keyspace.NewKey("x")); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.OwnerOf(keyspace.NewKey("x")); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddRemoveErrors(t *testing.T) {
	n, _ := mustNetwork(t, 2)
	if _, err := n.AddNode("pastry-0000"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v", err)
	}
	if err := n.RemoveNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := n.FailNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlayPutGetRemove(t *testing.T) {
	n, _ := mustNetwork(t, 16)
	ov := AsOverlay(n, 1)
	key := keyspace.NewKey("doc")
	e := overlay.Entry{Kind: "data", Value: "v1"}
	route, err := ov.Put(key, e)
	if err != nil {
		t.Fatal(err)
	}
	if route.Node == "" {
		t.Fatal("no owner reported")
	}
	entries, route2, err := ov.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != e {
		t.Fatalf("entries = %v", entries)
	}
	if route2.Node != route.Node {
		t.Fatalf("get landed on %s, put on %s", route2.Node, route.Node)
	}
	removed, err := ov.Remove(key, e)
	if err != nil || !removed {
		t.Fatalf("remove = %v, %v", removed, err)
	}
	entries, _, err = ov.Get(key)
	if err != nil || len(entries) != 0 {
		t.Fatalf("after remove: %v, %v", entries, err)
	}
	removed, err = ov.Remove(key, e)
	if err != nil || removed {
		t.Fatalf("double remove = %v, %v", removed, err)
	}
}

func TestOverlayPutIdempotent(t *testing.T) {
	n, _ := mustNetwork(t, 8)
	ov := AsOverlay(n, 1)
	key := keyspace.NewKey("k")
	for i := 0; i < 3; i++ {
		if _, err := ov.Put(key, overlay.Entry{Kind: "index", Value: "same"}); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, err := ov.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %v, want deduped single", entries)
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	n, _ := mustNetwork(t, 24)
	ov := AsOverlay(n, 2)
	keys := make([]keyspace.Key, 50)
	for i := range keys {
		keys[i] = keyspace.NewKey(fmt.Sprintf("doc%d", i))
		if _, err := ov.Put(keys[i], overlay.Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if err := n.RemoveNode(fmt.Sprintf("pastry-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		entries, _, err := ov.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d lost after graceful leaves", i)
		}
	}
}

func TestJoinMigratesKeys(t *testing.T) {
	n, _ := mustNetwork(t, 6)
	ov := AsOverlay(n, 3)
	for i := 0; i < 60; i++ {
		if _, err := ov.Put(keyspace.NewKey(fmt.Sprintf("d%d", i)), overlay.Entry{Kind: "data", Value: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := n.AddNode(fmt.Sprintf("late-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		entries, _, err := ov.Get(keyspace.NewKey(fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d not found after joins", i)
		}
		// The entry must live exactly on the numerically closest node.
		owner, err := n.OwnerOf(keyspace.NewKey(fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := owner.store[keyspace.NewKey(fmt.Sprintf("d%d", i))]; !ok {
			t.Fatalf("key %d not on its owner", i)
		}
	}
}

func TestStatsOf(t *testing.T) {
	n, _ := mustNetwork(t, 4)
	ov := AsOverlay(n, 4)
	key := keyspace.NewKey("k")
	if _, err := ov.Put(key, overlay.Entry{Kind: "index", Value: "abcd"}); err != nil {
		t.Fatal(err)
	}
	owner, err := n.OwnerOf(key)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ov.StatsOf(owner.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Keys != 1 || stats.EntriesByKind["index"] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.BytesByKind["index"] != int64(4+keyspace.Size) {
		t.Fatalf("bytes = %d", stats.BytesByKind["index"])
	}
	if _, err := ov.StatsOf("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

// Property: routed lookup agrees with the numerically-closest oracle.
func TestLookupOracleProperty(t *testing.T) {
	n, nodes := mustNetwork(t, 64)
	f := func(seed uint32, startIdx uint8) bool {
		key := keyspace.NewKey(fmt.Sprintf("p%d", seed))
		res, err := n.Lookup(nodes[int(startIdx)%len(nodes)], key)
		if err != nil {
			return false
		}
		oracle, err := n.OwnerOf(key)
		return err == nil && res.Owner == oracle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chord and Pastry disagree on placement for a noticeable
// fraction of keys (successor vs numerically-closest), demonstrating the
// substrates genuinely differ.
func TestPlacementDiffersFromSuccessorRule(t *testing.T) {
	n, _ := mustNetwork(t, 32)
	differ := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		key := keyspace.NewKey(fmt.Sprintf("q%d", i))
		closest, err := n.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		// Successor rule: first node with ID >= key (wrapping).
		idx := 0
		for idx = 0; idx < len(n.sorted); idx++ {
			if n.sorted[idx].ID.Cmp(key) >= 0 {
				break
			}
		}
		succ := n.sorted[idx%len(n.sorted)]
		if succ != closest {
			differ++
		}
	}
	if differ == 0 || differ == trials {
		t.Fatalf("placement rules identical or disjoint (%d/%d) — suspicious", differ, trials)
	}
}
