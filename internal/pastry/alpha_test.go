package pastry

import (
	"fmt"
	"testing"

	"dhtindex/internal/keyspace"
)

// The α-parallel iterative lookup must agree with the oracle owner (and
// therefore with recursive prefix routing) from any start node.
func TestLookupAlphaMatchesOracle(t *testing.T) {
	n := NewNetwork()
	var nodes []*Node
	for i := 0; i < 96; i++ {
		nd, err := n.AddNode(fmt.Sprintf("pastry-%04d", i))
		if err != nil {
			t.Fatalf("add: %v", err)
		}
		nodes = append(nodes, nd)
	}
	for i := 0; i < 200; i++ {
		key := keyspace.NewKey(fmt.Sprintf("alpha-key-%d", i))
		want, err := n.OwnerOf(key)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		start := nodes[i%len(nodes)]
		got, err := n.LookupAlpha(start, key, 3)
		if err != nil {
			t.Fatalf("alpha lookup: %v", err)
		}
		if got.Owner != want {
			t.Fatalf("key %d: alpha owner %s, oracle %s (hops=%d probes=%d)",
				i, got.Owner.Addr, want.Addr, got.Hops, got.Probes)
		}
	}
	if m := n.Metrics(); m.Lookups < 200 {
		t.Fatalf("alpha lookups not metered: %+v", m)
	}
}

func TestLookupAlphaEmpty(t *testing.T) {
	n := NewNetwork()
	if _, err := n.LookupAlpha(nil, keyspace.NewKey("k"), 3); err == nil {
		t.Fatal("alpha lookup on empty network succeeded")
	}
}
