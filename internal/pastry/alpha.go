package pastry

import (
	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
)

// AlphaResult reports one α-parallel iterative lookup.
type AlphaResult struct {
	// Owner is the node numerically closest to the key.
	Owner *Node
	// Hops is the iterative depth (rounds of improvement), Probes the
	// node queries issued, Failed the ones against vanished nodes.
	Hops, Probes, Failed int
}

// LookupAlpha resolves the key's owner with the shared α-parallel
// iterative engine (internal/lookup) instead of recursive prefix
// routing: the caller queries nodes for their leaf sets and the routing
// row matching the key's prefix, and drives the shortlist itself with
// alpha probes in flight. This is the Pastry opt-in to Kademlia-style
// lookups; it returns the same owner the recursive Lookup finds.
func (n *Network) LookupAlpha(start *Node, key keyspace.Key, alpha int) (AlphaResult, error) {
	if alpha <= 0 {
		alpha = 3
	}
	n.mu.Lock()
	if len(n.sorted) == 0 {
		n.mu.Unlock()
		return AlphaResult{}, ErrEmptyNetwork
	}
	if start == nil {
		start = n.sorted[0]
	}
	n.mu.Unlock()

	probe := func(c lookup.Contact, target keyspace.Key) (lookup.ProbeResult, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		nd, ok := n.nodes[c.Addr]
		if !ok {
			return lookup.ProbeResult{}, ErrNodeUnknown
		}
		n.refresh(nd)
		var out []lookup.Contact
		add := func(m *Node) {
			if m != nil {
				out = append(out, lookup.Contact{Addr: m.Addr, ID: m.ID})
			}
		}
		for _, leaf := range nd.leaves {
			add(leaf)
		}
		// The routing row for the shared-prefix length supplies the long
		// jumps, exactly as recursive prefix routing would use it.
		if l := sharedPrefix(nd.ID, target); l < digits {
			for _, m := range nd.routing[l] {
				add(m)
			}
		}
		return lookup.ProbeResult{Contacts: out}, nil
	}

	res := lookup.Run(lookup.Config{
		Target:   key,
		Seeds:    []lookup.Contact{{Addr: start.Addr, ID: start.ID}},
		Alpha:    alpha,
		K:        4, // window: the key's numeric neighbourhood
		Distance: absDistance,
		Probe:    probe,
	})

	n.mu.Lock()
	defer n.mu.Unlock()
	n.record(res.Hops)
	if len(res.Closest) == 0 {
		if len(n.sorted) == 0 {
			return AlphaResult{}, ErrEmptyNetwork
		}
		return AlphaResult{Owner: n.ownerLocked(key), Hops: res.Hops, Probes: res.Probes, Failed: res.Failed}, nil
	}
	owner, ok := n.nodes[res.Closest[0].Addr]
	if !ok {
		owner = n.ownerLocked(key)
	}
	return AlphaResult{Owner: owner, Hops: res.Hops, Probes: res.Probes, Failed: res.Failed}, nil
}
