package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFitPowerLawRecovers(t *testing.T) {
	// Exact power law p(i) = 0.063 * i^{-0.7}: the fit must recover the
	// parameters almost perfectly.
	var ranks, values []float64
	for i := 1; i <= 1000; i++ {
		ranks = append(ranks, float64(i))
		values = append(values, 0.063*math.Pow(float64(i), -0.7))
	}
	fit, err := FitPowerLaw(ranks, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-0.7) > 1e-9 {
		t.Fatalf("alpha = %v, want 0.7", fit.Alpha)
	}
	if math.Abs(fit.K-0.063) > 1e-9 {
		t.Fatalf("k = %v, want 0.063", fit.K)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("r2 = %v, want ~1", fit.R2)
	}
	if got := fit.Eval(10); math.Abs(got-0.063*math.Pow(10, -0.7)) > 1e-12 {
		t.Fatalf("Eval(10) = %v", got)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	var ranks, values []float64
	for i := 1; i <= 200; i++ {
		ranks = append(ranks, float64(i))
		noise := 1 + 0.1*math.Sin(float64(i))
		values = append(values, 2*math.Pow(float64(i), -1.2)*noise)
	}
	fit, err := FitPowerLaw(ranks, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.2) > 0.05 {
		t.Fatalf("alpha = %v, want ≈1.2", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("r2 = %v", fit.R2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	cases := [][2][]float64{
		{{}, {}},
		{{1}, {1}},
		{{1, 2}, {1}},            // length mismatch
		{{0, -1}, {1, 1}},        // no positive ranks
		{{1, 2}, {0, 0}},         // no positive values
		{{1, 1, 0}, {5, 5, -10}}, // only one usable point after filtering? (1,5) twice is 2 points
	}
	for i, c := range cases[:5] {
		if _, err := FitPowerLaw(c[0], c[1]); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("case %d: err = %v, want ErrInsufficientData", i, err)
		}
	}
}

func TestCCDF(t *testing.T) {
	counts := []int{5, 3, 2}
	ccdf := CCDF(counts)
	want := []float64{0.5, 0.2, 0}
	for i := range want {
		if math.Abs(ccdf[i]-want[i]) > 1e-12 {
			t.Fatalf("ccdf = %v, want %v", ccdf, want)
		}
	}
	if got := CCDF(nil); len(got) != 0 {
		t.Fatalf("CCDF(nil) = %v", got)
	}
	zero := CCDF([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("CCDF of zero counts = %v", zero)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Sum != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 2.5", s.P50)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Fatalf("variance = %v, want 1.25", s.Variance)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.P99 != 7 || one.StdDev != 0 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestRankDescending(t *testing.T) {
	in := []float64{1, 3, 2}
	out := RankDescending(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Fatalf("out = %v", out)
	}
	if in[0] != 1 {
		t.Fatal("input mutated")
	}
}

// Property: CCDF is non-increasing and within [0, 1].
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		ccdf := CCDF(counts)
		prev := 1.0
		for _, v := range ccdf {
			if v < -1e-12 || v > 1+1e-12 || v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize bounds — Min ≤ P50 ≤ P90 ≤ P99 ≤ Max and
// Min ≤ Mean ≤ Max.
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		s := Summarize(sample)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
