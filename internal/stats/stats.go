// Package stats provides the small statistical toolkit the evaluation
// needs: least-squares power-law fitting in log-log space (used by the
// paper to model popularity, §V-C), empirical CCDFs, and distribution
// summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit has fewer than two usable
// points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// PowerLaw is the model p(i) = K · i^(-Alpha).
type PowerLaw struct {
	K     float64
	Alpha float64
	// R2 is the coefficient of determination of the log-log regression.
	R2 float64
}

// Eval returns K · x^(-Alpha).
func (p PowerLaw) Eval(x float64) float64 {
	return p.K * math.Pow(x, -p.Alpha)
}

// FitPowerLaw fits p(i) = K·i^-α to the positive (rank, value) pairs by
// linear least squares on (log rank, log value) — "we have computed (using
// the minimum square method) ... the line that best fits the distribution"
// (§V-C).
func FitPowerLaw(ranks, values []float64) (PowerLaw, error) {
	if len(ranks) != len(values) {
		return PowerLaw{}, ErrInsufficientData
	}
	var xs, ys []float64
	for i := range ranks {
		if ranks[i] > 0 && values[i] > 0 {
			xs = append(xs, math.Log(ranks[i]))
			ys = append(ys, math.Log(values[i]))
		}
	}
	if len(xs) < 2 {
		return PowerLaw{}, ErrInsufficientData
	}
	slope, intercept, r2 := linearFit(xs, ys)
	return PowerLaw{K: math.Exp(intercept), Alpha: -slope, R2: r2}, nil
}

// linearFit returns the least-squares slope, intercept and R² of y ~ x.
func linearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// CCDF returns the complementary cumulative distribution of the sample
// counts indexed by rank: ccdf[i] = P(rank > i) when the counts are read
// as frequencies (Fig. 10's view of the popularity model).
func CCDF(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	cum := 0
	for i, c := range counts {
		cum += c
		out[i] = 1 - float64(cum)/float64(total)
	}
	return out
}

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P50, P90, P99    float64
	Sum              float64
	StdDev, Variance float64
}

// Summarize computes the summary of a sample. An empty sample returns the
// zero Summary.
func Summarize(sample []float64) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, v := range sorted {
		s.Sum += v
	}
	s.Mean = s.Sum / float64(s.N)
	for _, v := range sorted {
		d := v - s.Mean
		s.Variance += d * d
	}
	s.Variance /= float64(s.N)
	s.StdDev = math.Sqrt(s.Variance)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RankDescending returns the sample sorted from largest to smallest —
// the "ordered by decreasing rank of popularity" view of Figs. 9 and 15.
func RankDescending(sample []float64) []float64 {
	out := make([]float64, len(sample))
	copy(out, sample)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
