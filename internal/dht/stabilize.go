package dht

import (
	"fmt"
	"sort"
)

// Stabilize eagerly refreshes every node's routing state (successor,
// predecessor, successor list, finger table) against current membership.
// Joins and leaves already repair pointers lazily; calling Stabilize after
// heavy churn pre-pays the finger rebuilds so that subsequent lookup hop
// counts reflect a converged ring, matching steady-state Chord.
func (n *Network) Stabilize() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rebuildPointers()
	for _, node := range n.sorted {
		n.fillFingers(node)
	}
}

// VerifyRing checks the structural invariants of the overlay and returns a
// descriptive error on the first violation. It is used by tests and can be
// used by operators as a health check.
//
// Invariants: the successor/predecessor pointers form a single cycle in ID
// order; every node's successor list is a prefix of the ring walk from that
// node; every stored key lies in its holder's ownership interval
// (predecessor.ID, node.ID] unless replication is enabled.
func (n *Network) VerifyRing() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := len(n.sorted)
	if count == 0 {
		return nil
	}
	for i, node := range n.sorted {
		wantSucc := n.sorted[(i+1)%count]
		if node.successor != wantSucc {
			return fmt.Errorf("dht: node %s successor is %s, want %s",
				node.Addr, addrOf(node.successor), wantSucc.Addr)
		}
		wantPred := n.sorted[(i-1+count)%count]
		if node.predecessor != wantPred {
			return fmt.Errorf("dht: node %s predecessor is %s, want %s",
				node.Addr, addrOf(node.predecessor), wantPred.Addr)
		}
		for j, s := range node.succList {
			want := n.sorted[(i+j+1)%count]
			if s != want {
				return fmt.Errorf("dht: node %s succList[%d] is %s, want %s",
					node.Addr, j, addrOf(s), want.Addr)
			}
		}
		if n.ReplicationFactor == 0 && count > 1 {
			for k := range node.store {
				if !k.Between(node.predecessor.ID, node.ID) {
					return fmt.Errorf("dht: node %s stores foreign key %s", node.Addr, k.Short())
				}
			}
		}
	}
	return nil
}

func addrOf(nd *Node) string {
	if nd == nil {
		return "<nil>"
	}
	return nd.Addr
}

// LoadStats describes how keys are spread across nodes.
type LoadStats struct {
	Nodes     int
	TotalKeys int
	MinKeys   int
	MaxKeys   int
	MeanKeys  float64
	// P99Keys is the 99th-percentile per-node key count.
	P99Keys int
}

// KeyLoad computes the distribution of distinct keys per node.
func (n *Network) KeyLoad() LoadStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	stats := LoadStats{Nodes: len(n.sorted)}
	if stats.Nodes == 0 {
		return stats
	}
	counts := make([]int, 0, stats.Nodes)
	for _, node := range n.sorted {
		c := len(node.store)
		counts = append(counts, c)
		stats.TotalKeys += c
	}
	sort.Ints(counts)
	stats.MinKeys = counts[0]
	stats.MaxKeys = counts[len(counts)-1]
	stats.MeanKeys = float64(stats.TotalKeys) / float64(stats.Nodes)
	idx := (99*len(counts) - 1) / 100
	if idx >= len(counts) {
		idx = len(counts) - 1
	}
	stats.P99Keys = counts[idx]
	return stats
}
