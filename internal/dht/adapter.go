package dht

import (
	"context"
	"fmt"
	"math/rand"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Overlay adapts a Chord Network to the substrate contract the indexing
// layer consumes. Operations route from a pseudo-randomly chosen live
// node (deterministic in the seed), modeling independent users entering
// the overlay at arbitrary points.
type Overlay struct {
	net *Network
	rng *rand.Rand
}

var (
	_ overlay.Network        = (*Overlay)(nil)
	_ overlay.ContextNetwork = (*Overlay)(nil)
)

// AsOverlay wraps the network. The seed drives contact-point selection.
func AsOverlay(net *Network, seed int64) *Overlay {
	return &Overlay{net: net, rng: rand.New(rand.NewSource(seed))}
}

// start picks a random live contact node (nil lets the network default
// when empty; the routed call will then fail with ErrEmptyNetwork).
func (o *Overlay) start() *Node {
	nodes := o.net.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	return nodes[o.rng.Intn(len(nodes))]
}

// Put implements overlay.Network.
func (o *Overlay) Put(key keyspace.Key, e overlay.Entry) (overlay.Route, error) {
	res, err := o.net.Put(o.start(), key, e)
	if err != nil {
		return overlay.Route{}, err
	}
	return overlay.Route{Node: res.Owner.Addr, Hops: res.Hops}, nil
}

// Get implements overlay.Network.
func (o *Overlay) Get(key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	entries, res, err := o.net.Get(o.start(), key)
	if err != nil {
		return nil, overlay.Route{}, err
	}
	return entries, overlay.Route{Node: res.Owner.Addr, Hops: res.Hops}, nil
}

// GetCtx implements overlay.ContextNetwork. The simulated network
// computes routes instantaneously, so the budget only gates entry: an
// already-expired context fails fast without touching the ring.
func (o *Overlay) GetCtx(ctx context.Context, key keyspace.Key) ([]overlay.Entry, overlay.Route, error) {
	if err := ctx.Err(); err != nil {
		return nil, overlay.Route{}, err
	}
	return o.Get(key)
}

// Remove implements overlay.Network.
func (o *Overlay) Remove(key keyspace.Key, e overlay.Entry) (bool, error) {
	return o.net.Remove(o.start(), key, e)
}

// Addrs implements overlay.Network: live nodes in ring order.
func (o *Overlay) Addrs() []string {
	nodes := o.net.Nodes()
	out := make([]string, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.Addr
	}
	return out
}

// StatsOf implements overlay.Network.
func (o *Overlay) StatsOf(addr string) (overlay.NodeStats, error) {
	nd, err := o.net.NodeAt(addr)
	if err != nil {
		return overlay.NodeStats{}, err
	}
	o.net.mu.Lock()
	defer o.net.mu.Unlock()
	return nodeStatsLocked(nd), nil
}

// Size implements overlay.Network.
func (o *Overlay) Size() int { return o.net.Size() }

// nodeStatsLocked builds the per-node accounting. Callers hold the
// network lock.
func nodeStatsLocked(nd *Node) overlay.NodeStats {
	stats := overlay.NodeStats{
		Keys:          len(nd.store),
		EntriesByKind: make(map[string]int),
		BytesByKind:   make(map[string]int64),
	}
	for _, entries := range nd.store {
		kinds := make(map[string]bool, 2)
		for _, e := range entries {
			stats.EntriesByKind[e.Kind]++
			stats.BytesByKind[e.Kind] += int64(len(e.Value))
			kinds[e.Kind] = true
		}
		// Per-key overhead counted once per kind present under the key,
		// matching Node.StoredBytes.
		for k := range kinds {
			stats.BytesByKind[k] += keyspace.Size
		}
	}
	return stats
}

// String names the substrate in reports.
func (o *Overlay) String() string {
	return fmt.Sprintf("chord(%d nodes)", o.net.Size())
}
