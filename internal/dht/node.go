package dht

import (
	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

// Entry is one value stored under a key — the substrate-neutral entry
// type of the overlay contract. The paper's only requirement on the
// storage substrate is "the registration of multiple entries using the
// same key" (§II).
type Entry = overlay.Entry

// Node is a single DHT peer. Exported fields are immutable after creation;
// the mutable routing and storage state is owned by the Network's lock.
type Node struct {
	// Addr is the node's network address (unique within the overlay).
	Addr string
	// ID is the node's position on the ring: SHA-1 of its address.
	ID keyspace.Key

	successor   *Node
	predecessor *Node
	succList    []*Node
	fingers     [keyspace.Bits]*Node
	fingerEpoch uint64

	store map[keyspace.Key][]Entry
}

func newNode(addr string) *Node {
	return &Node{
		Addr:  addr,
		ID:    keyspace.NewKey(addr),
		store: make(map[keyspace.Key][]Entry),
	}
}

// putLocal appends an entry under key in this node's local store, deduping
// exact (Kind, Value) repeats so re-inserting an index mapping is idempotent.
func (nd *Node) putLocal(key keyspace.Key, e Entry) bool {
	for _, have := range nd.store[key] {
		if have == e {
			return false
		}
	}
	nd.store[key] = append(nd.store[key], e)
	return true
}

// getLocal returns a copy of the entries stored under key.
func (nd *Node) getLocal(key keyspace.Key) []Entry {
	entries := nd.store[key]
	if len(entries) == 0 {
		return nil
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out
}

// removeLocal deletes the exact (Kind, Value) entry under key, returning
// whether it was present.
func (nd *Node) removeLocal(key keyspace.Key, e Entry) bool {
	entries := nd.store[key]
	for i, have := range entries {
		if have == e {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(nd.store, key)
			} else {
				nd.store[key] = entries
			}
			return true
		}
	}
	return false
}

// KeyCount returns the number of distinct keys stored locally.
func (nd *Node) KeyCount() int { return len(nd.store) }

// EntryCount returns the number of entries of the given kind stored locally
// (all kinds when kind is empty).
func (nd *Node) EntryCount(kind string) int {
	total := 0
	for _, entries := range nd.store {
		for _, e := range entries {
			if kind == "" || e.Kind == kind {
				total++
			}
		}
	}
	return total
}

// StoredBytes returns the total payload bytes of entries of the given kind
// (all kinds when kind is empty), including the key overhead per distinct
// key, approximating the storage accounting of §V-B.
func (nd *Node) StoredBytes(kind string) int64 {
	var total int64
	for _, entries := range nd.store {
		counted := false
		for _, e := range entries {
			if kind == "" || e.Kind == kind {
				total += int64(len(e.Value))
				if !counted {
					total += keyspace.Size
					counted = true
				}
			}
		}
	}
	return total
}
