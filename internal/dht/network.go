// Package dht implements a Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) as an in-process simulation. It is the P2P lookup and
// storage substrate that the paper's indexing layer sits on: the indexing
// techniques only require that the DHT "is able to find a node n responsible
// for a given key k" and that a key may hold multiple entries (§III-A).
//
// The simulation is message-accurate rather than wall-clock-accurate: every
// inter-node hop is counted, and the byte volume of stored and transferred
// entries is metered, so higher layers can report traffic the way the paper
// does.
package dht

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/telemetry"
)

// Common errors returned by the DHT layer.
var (
	// ErrEmptyNetwork is returned when an operation requires at least one
	// live node.
	ErrEmptyNetwork = errors.New("dht: network has no live nodes")
	// ErrNodeExists is returned when a node with the same identifier is
	// already part of the network.
	ErrNodeExists = errors.New("dht: node already exists")
	// ErrNodeUnknown is returned for operations on an address that is not
	// part of the network.
	ErrNodeUnknown = errors.New("dht: unknown node")
)

// Metrics accumulates substrate-level counters across all operations.
type Metrics struct {
	Lookups       int   // number of FindSuccessor operations
	Hops          int   // total routing hops across lookups
	MaxHops       int   // worst single lookup
	StoreOps      int   // Put operations
	RetrieveOps   int   // Get operations
	BytesShipped  int64 // payload bytes moved between nodes (store+get)
	KeysRehomed   int   // keys transferred during join/leave
	FailoverReads int   // reads served by a replica after owner failure
}

// Network is an in-process Chord overlay. All methods are safe for
// concurrent use.
type Network struct {
	mu      sync.Mutex
	nodes   map[string]*Node // by address
	sorted  []*Node          // sorted by ID, maintained on join/leave
	rng     *rand.Rand
	metrics Metrics
	epoch   uint64 // bumped on membership change; invalidates finger tables
	// hops is nil until Instrument is called; Observe on nil is a no-op,
	// so the lookup path records unconditionally.
	hops *telemetry.Histogram

	// ReplicationFactor is the number of successor replicas (in addition
	// to the owner) that receive copies of each stored entry. Zero
	// disables replication.
	ReplicationFactor int

	// SuccessorListLen is the length of each node's successor list,
	// bounding resilience to simultaneous failures.
	SuccessorListLen int
}

// NewNetwork creates an empty overlay. The seed makes node-identifier
// generation and any randomized routing deterministic.
func NewNetwork(seed int64) *Network {
	return &Network{
		nodes:            make(map[string]*Node),
		rng:              rand.New(rand.NewSource(seed)),
		SuccessorListLen: 8,
	}
}

// Size returns the number of live nodes.
func (n *Network) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// Metrics returns a snapshot of the substrate counters.
func (n *Network) Metrics() Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metrics
}

// Instrument exports the substrate counters on reg (collector pattern:
// the series read Metrics() at snapshot time) and starts recording a
// per-lookup routing-hop histogram there.
func (n *Network) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	n.hops = reg.Histogram("dht_lookup_hops",
		"Routing hops taken to resolve the owner of a key.", telemetry.HopBuckets)
	n.mu.Unlock()
	reg.CounterFunc("dht_lookups_total",
		"FindSuccessor operations routed through the substrate.",
		func() float64 { return float64(n.Metrics().Lookups) })
	reg.CounterFunc("dht_store_ops_total",
		"Put operations served by the substrate.",
		func() float64 { return float64(n.Metrics().StoreOps) })
	reg.CounterFunc("dht_retrieve_ops_total",
		"Get operations served by the substrate.",
		func() float64 { return float64(n.Metrics().RetrieveOps) })
	reg.CounterFunc("dht_bytes_shipped_total",
		"Payload bytes moved between nodes (store, get, rehoming).",
		func() float64 { return float64(n.Metrics().BytesShipped) })
	reg.CounterFunc("dht_keys_rehomed_total",
		"Keys transferred during node join and leave.",
		func() float64 { return float64(n.Metrics().KeysRehomed) })
	reg.CounterFunc("dht_failover_reads_total",
		"Reads served by a replica after an owner failure.",
		func() float64 { return float64(n.Metrics().FailoverReads) })
	reg.GaugeFunc("dht_nodes",
		"Live nodes in the simulated overlay.",
		func() float64 { return float64(n.Size()) })
}

// ResetMetrics zeroes the counters (used between experiment phases).
func (n *Network) ResetMetrics() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics = Metrics{}
}

// Nodes returns the live nodes sorted by ring position. The slice is a copy.
func (n *Network) Nodes() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Node, len(n.sorted))
	copy(out, n.sorted)
	return out
}

// NodeAt returns the node with the given address.
func (n *Network) NodeAt(addr string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	return node, nil
}

// AddNode creates a node with the given address, inserts it into the ring,
// migrates the keys it now owns, and repairs fingers. It implements the
// Chord join protocol in one synchronous step (the simulation does not need
// gradual stabilization to converge, but Stabilize is also provided).
func (n *Network) AddNode(addr string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeExists, addr)
	}
	node := newNode(addr)
	n.nodes[addr] = node
	n.insertSorted(node)
	n.rebuildPointers()
	n.migrateToNewNode(node)
	return node, nil
}

// RemoveNode gracefully removes a node: its keys are handed to its
// successor before it departs (write-once data survives, per §IV-C).
func (n *Network) RemoveNode(addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	if len(n.sorted) > 1 {
		succ := n.successorOf(node)
		for k, entries := range node.store {
			for _, e := range entries {
				succ.putLocal(k, e)
				n.metrics.KeysRehomed++
				n.metrics.BytesShipped += int64(len(e.Value))
			}
		}
	}
	n.deleteNode(node)
	return nil
}

// FailNode abruptly removes a node without migrating its keys, simulating a
// crash. Data survives only if replication is enabled.
func (n *Network) FailNode(addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	node, ok := n.nodes[addr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, addr)
	}
	n.deleteNode(node)
	return nil
}

// Populate creates count nodes with generated addresses and returns them.
func (n *Network) Populate(count int) ([]*Node, error) {
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		node, err := n.AddNode(fmt.Sprintf("node-%04d", i))
		if err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}

// deleteNode removes the node from all bookkeeping and repairs pointers.
// Callers must hold n.mu.
func (n *Network) deleteNode(node *Node) {
	delete(n.nodes, node.Addr)
	for i, s := range n.sorted {
		if s == node {
			n.sorted = append(n.sorted[:i], n.sorted[i+1:]...)
			break
		}
	}
	n.rebuildPointers()
}

// insertSorted places node into the ID-sorted slice. Callers hold n.mu.
func (n *Network) insertSorted(node *Node) {
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(node.ID) >= 0
	})
	n.sorted = append(n.sorted, nil)
	copy(n.sorted[i+1:], n.sorted[i:])
	n.sorted[i] = node
}

// successorOf returns the live node that immediately follows node on the
// ring. Callers hold n.mu and guarantee at least two nodes.
func (n *Network) successorOf(node *Node) *Node {
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(node.ID) >= 0
	})
	// n.sorted[i] == node; its successor is the next slot, wrapping.
	return n.sorted[(i+1)%len(n.sorted)]
}

// rebuildPointers recomputes successors, predecessors and successor lists
// from the sorted membership view, and invalidates every node's finger
// table by bumping the membership epoch (fingers are rebuilt lazily on the
// next lookup that needs them). Callers hold n.mu.
//
// A production Chord converges to these pointers through periodic
// stabilization; the simulation computes the fixed point directly, then the
// Stabilize method can verify/repair incrementally in churn tests.
func (n *Network) rebuildPointers() {
	n.epoch++
	count := len(n.sorted)
	if count == 0 {
		return
	}
	for i, node := range n.sorted {
		node.successor = n.sorted[(i+1)%count]
		node.predecessor = n.sorted[(i-1+count)%count]
		node.succList = node.succList[:0]
		for j := 1; j <= n.SuccessorListLen && j < count; j++ {
			node.succList = append(node.succList, n.sorted[(i+j)%count])
		}
	}
}

// fillFingers populates node's finger table: finger[i] is the successor of
// node.ID + 2^i. Callers hold n.mu.
func (n *Network) fillFingers(node *Node) {
	for i := 0; i < keyspace.Bits; i++ {
		start := node.ID.Add(uint(i))
		node.fingers[i] = n.ownerOfLocked(start)
	}
	node.fingerEpoch = n.epoch
}

// fingersOf returns node's finger table, rebuilding it first if membership
// changed since it was last computed. Callers hold n.mu.
func (n *Network) fingersOf(node *Node) *[keyspace.Bits]*Node {
	if node.fingerEpoch != n.epoch {
		n.fillFingers(node)
	}
	return &node.fingers
}

// ownerOfLocked returns the node responsible for key (its successor on the
// ring). Callers hold n.mu (read or write).
func (n *Network) ownerOfLocked(key keyspace.Key) *Node {
	i := sort.Search(len(n.sorted), func(i int) bool {
		return n.sorted[i].ID.Cmp(key) >= 0
	})
	if i == len(n.sorted) {
		i = 0 // wrap: key is past the highest ID
	}
	return n.sorted[i]
}

// migrateToNewNode moves the keys the new node now owns from its successor.
// Callers hold n.mu.
func (n *Network) migrateToNewNode(node *Node) {
	if len(n.sorted) < 2 {
		return
	}
	succ := node.successor
	pred := node.predecessor
	for k, entries := range succ.store {
		if k.Between(pred.ID, node.ID) {
			for _, e := range entries {
				node.putLocal(k, e)
				n.metrics.KeysRehomed++
				n.metrics.BytesShipped += int64(len(e.Value))
			}
			delete(succ.store, k)
		}
	}
}
