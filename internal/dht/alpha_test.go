package dht

import (
	"fmt"
	"testing"

	"dhtindex/internal/keyspace"
)

// The α-parallel iterative lookup must agree with the oracle owner (and
// therefore with the recursive finger walk) from any start node.
func TestLookupAlphaMatchesOracle(t *testing.T) {
	n, nodes := mustNetwork(t, 96)
	for i := 0; i < 200; i++ {
		key := keyspace.NewKey(fmt.Sprintf("alpha-key-%d", i))
		want, err := n.OwnerOf(key)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		start := nodes[i%len(nodes)]
		got, err := n.LookupAlpha(start, key, 3)
		if err != nil {
			t.Fatalf("alpha lookup: %v", err)
		}
		if got.Owner != want {
			t.Fatalf("key %d: alpha owner %s, oracle %s (hops=%d probes=%d)",
				i, got.Owner.Addr, want.Addr, got.Hops, got.Probes)
		}
		if got.Probes == 0 {
			t.Fatalf("key %d: no probes recorded", i)
		}
	}
	if m := n.Metrics(); m.Lookups < 200 {
		t.Fatalf("alpha lookups not metered: %+v", m)
	}
}

func TestLookupAlphaEmptyAndSingle(t *testing.T) {
	n := NewNetwork(42)
	if _, err := n.LookupAlpha(nil, keyspace.NewKey("k"), 3); err == nil {
		t.Fatal("alpha lookup on empty ring succeeded")
	}
	solo, err := n.AddNode("only")
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	res, err := n.LookupAlpha(nil, keyspace.NewKey("k"), 3)
	if err != nil {
		t.Fatalf("alpha lookup: %v", err)
	}
	if res.Owner != solo {
		t.Fatalf("owner %v, want the only node", res.Owner)
	}
}
