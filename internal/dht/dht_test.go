package dht

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"dhtindex/internal/keyspace"
)

func mustNetwork(t *testing.T, size int) (*Network, []*Node) {
	t.Helper()
	n := NewNetwork(1)
	nodes, err := n.Populate(size)
	if err != nil {
		t.Fatalf("Populate(%d): %v", size, err)
	}
	return n, nodes
}

func TestAddNodeDuplicate(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("a"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate add: err=%v, want ErrNodeExists", err)
	}
}

func TestLookupEmptyNetwork(t *testing.T) {
	n := NewNetwork(1)
	if _, err := n.Lookup(nil, keyspace.NewKey("x")); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err=%v, want ErrEmptyNetwork", err)
	}
	if _, err := n.OwnerOf(keyspace.NewKey("x")); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err=%v, want ErrEmptyNetwork", err)
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	n, nodes := mustNetwork(t, 1)
	for _, s := range []string{"a", "b", "c"} {
		res, err := n.Lookup(nodes[0], keyspace.NewKey(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != nodes[0] {
			t.Fatalf("key %q owned by %s, want the only node", s, res.Owner.Addr)
		}
		if res.Hops != 0 {
			t.Fatalf("single-node lookup took %d hops", res.Hops)
		}
	}
}

func TestLookupMatchesOracleFromEveryStart(t *testing.T) {
	n, nodes := mustNetwork(t, 32)
	keys := make([]keyspace.Key, 0, 50)
	for i := 0; i < 50; i++ {
		keys = append(keys, keyspace.NewKey(fmt.Sprintf("key-%d", i)))
	}
	for _, k := range keys {
		oracle, err := n.OwnerOf(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, start := range nodes {
			res, err := n.Lookup(start, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Owner != oracle {
				t.Fatalf("key %s from %s: routed to %s, oracle says %s",
					k.Short(), start.Addr, res.Owner.Addr, oracle.Addr)
			}
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	n, nodes := mustNetwork(t, 128)
	n.ResetMetrics()
	for i := 0; i < 500; i++ {
		start := nodes[i%len(nodes)]
		if _, err := n.Lookup(start, keyspace.NewKey(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m := n.Metrics()
	mean := float64(m.Hops) / float64(m.Lookups)
	bound := 2 * math.Log2(128)
	if mean > bound {
		t.Fatalf("mean hops %.2f exceeds 2*log2(N)=%.2f", mean, bound)
	}
	if m.MaxHops > 3*int(math.Log2(128))+3 {
		t.Fatalf("max hops %d too large for 128 nodes", m.MaxHops)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	n, nodes := mustNetwork(t, 16)
	key := keyspace.NewKey("/article/author/last/Smith")
	want := Entry{Kind: "index", Value: "/article/author[first/John][last/Smith]"}
	if _, err := n.Put(nodes[3], key, want); err != nil {
		t.Fatal(err)
	}
	entries, _, err := n.Get(nodes[9], key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != want {
		t.Fatalf("Get = %v, want [%v]", entries, want)
	}
}

func TestPutIdempotentAndMultiEntry(t *testing.T) {
	n, nodes := mustNetwork(t, 8)
	key := keyspace.NewKey("k")
	a := Entry{Kind: "index", Value: "a"}
	b := Entry{Kind: "index", Value: "b"}
	for i := 0; i < 3; i++ {
		if _, err := n.Put(nodes[0], key, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Put(nodes[0], key, b); err != nil {
		t.Fatal(err)
	}
	entries, _, err := n.Get(nodes[1], key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (dedup + multi-entry)", len(entries))
	}
}

func TestRemoveEntry(t *testing.T) {
	n, nodes := mustNetwork(t, 8)
	key := keyspace.NewKey("k")
	e := Entry{Kind: "index", Value: "v"}
	if _, err := n.Put(nodes[0], key, e); err != nil {
		t.Fatal(err)
	}
	removed, err := n.Remove(nodes[2], key, e)
	if err != nil || !removed {
		t.Fatalf("Remove = (%v, %v), want (true, nil)", removed, err)
	}
	entries, _, err := n.Get(nodes[2], key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries after remove: %v", entries)
	}
	removed, err = n.Remove(nodes[2], key, e)
	if err != nil || removed {
		t.Fatalf("second Remove = (%v, %v), want (false, nil)", removed, err)
	}
}

func TestGracefulLeaveKeepsData(t *testing.T) {
	n, nodes := mustNetwork(t, 16)
	keys := make([]keyspace.Key, 0, 40)
	for i := 0; i < 40; i++ {
		k := keyspace.NewKey(fmt.Sprintf("doc-%d", i))
		keys = append(keys, k)
		if _, err := n.Put(nodes[0], k, Entry{Kind: "data", Value: fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove half the nodes gracefully.
	for i := 0; i < 8; i++ {
		if err := n.RemoveNode(fmt.Sprintf("node-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.VerifyRing(); err != nil {
		t.Fatalf("ring invariant after leaves: %v", err)
	}
	for i, k := range keys {
		entries, _, err := n.Get(nil, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d lost after graceful leaves: %v", i, entries)
		}
	}
}

func TestJoinMigratesKeys(t *testing.T) {
	n, _ := mustNetwork(t, 4)
	for i := 0; i < 60; i++ {
		k := keyspace.NewKey(fmt.Sprintf("doc-%d", i))
		if _, err := n.Put(nil, k, Entry{Kind: "data", Value: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := n.AddNode(fmt.Sprintf("late-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.VerifyRing(); err != nil {
		t.Fatalf("ring invariant after joins: %v", err)
	}
	for i := 0; i < 60; i++ {
		k := keyspace.NewKey(fmt.Sprintf("doc-%d", i))
		entries, _, err := n.Get(nil, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("key %d not found after joins", i)
		}
	}
}

func TestReplicationSurvivesCrash(t *testing.T) {
	n := NewNetwork(7)
	n.ReplicationFactor = 2
	if _, err := n.Populate(12); err != nil {
		t.Fatal(err)
	}
	key := keyspace.NewKey("precious")
	if _, err := n.Put(nil, key, Entry{Kind: "data", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	owner, err := n.OwnerOf(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailNode(owner.Addr); err != nil {
		t.Fatal(err)
	}
	entries, _, err := n.Get(nil, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entry lost despite replication factor 2")
	}
}

func TestCrashWithoutReplicationLosesData(t *testing.T) {
	n, _ := mustNetwork(t, 12)
	key := keyspace.NewKey("fragile")
	if _, err := n.Put(nil, key, Entry{Kind: "data", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	owner, err := n.OwnerOf(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailNode(owner.Addr); err != nil {
		t.Fatal(err)
	}
	entries, _, err := n.Get(nil, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entry survived crash without replication: %v", entries)
	}
}

func TestStabilizeAfterChurn(t *testing.T) {
	n, _ := mustNetwork(t, 30)
	for i := 0; i < 10; i++ {
		if err := n.FailNode(fmt.Sprintf("node-%04d", i*2)); err != nil {
			t.Fatal(err)
		}
	}
	n.Stabilize()
	if err := n.VerifyRing(); err != nil {
		t.Fatalf("ring not converged after Stabilize: %v", err)
	}
	if n.Size() != 20 {
		t.Fatalf("size = %d, want 20", n.Size())
	}
}

func TestKeyLoadBalance(t *testing.T) {
	n, _ := mustNetwork(t, 64)
	for i := 0; i < 6400; i++ {
		if _, err := n.Put(nil, keyspace.NewKey(fmt.Sprintf("k%d", i)), Entry{Kind: "d", Value: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	stats := n.KeyLoad()
	if stats.TotalKeys != 6400 {
		t.Fatalf("TotalKeys = %d, want 6400", stats.TotalKeys)
	}
	if stats.MeanKeys != 100 {
		t.Fatalf("MeanKeys = %.1f, want 100", stats.MeanKeys)
	}
	// Consistent hashing spreads keys; the max should be within a small
	// constant factor of the mean for 64 nodes / 6400 keys.
	if float64(stats.MaxKeys) > 8*stats.MeanKeys {
		t.Fatalf("max load %d implausibly skewed vs mean %.1f", stats.MaxKeys, stats.MeanKeys)
	}
}

func TestNodeStoredBytes(t *testing.T) {
	nd := newNode("n")
	key := keyspace.NewKey("k")
	nd.putLocal(key, Entry{Kind: "index", Value: "abcd"})
	nd.putLocal(key, Entry{Kind: "cache", Value: "ef"})
	if got := nd.StoredBytes("index"); got != int64(4+keyspace.Size) {
		t.Fatalf("StoredBytes(index) = %d", got)
	}
	if got := nd.StoredBytes(""); got != int64(6+keyspace.Size) {
		t.Fatalf("StoredBytes(all) = %d", got)
	}
	if got := nd.EntryCount(""); got != 2 {
		t.Fatalf("EntryCount = %d, want 2", got)
	}
	if got := nd.EntryCount("cache"); got != 1 {
		t.Fatalf("EntryCount(cache) = %d, want 1", got)
	}
}

// Property: routed lookup agrees with the oracle owner for random keys and
// random start nodes, on a fixed medium-size ring.
func TestLookupOracleProperty(t *testing.T) {
	n, nodes := mustNetwork(t, 48)
	f := func(seed uint32, startIdx uint8) bool {
		k := keyspace.NewKey(fmt.Sprintf("prop-%d", seed))
		start := nodes[int(startIdx)%len(nodes)]
		res, err := n.Lookup(start, k)
		if err != nil {
			return false
		}
		oracle, err := n.OwnerOf(k)
		if err != nil {
			return false
		}
		return res.Owner == oracle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAtUnknown(t *testing.T) {
	n, _ := mustNetwork(t, 2)
	if _, err := n.NodeAt("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v, want ErrNodeUnknown", err)
	}
	if err := n.RemoveNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("RemoveNode err = %v, want ErrNodeUnknown", err)
	}
	if err := n.FailNode("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("FailNode err = %v, want ErrNodeUnknown", err)
	}
}
