package dht

import (
	"fmt"
	"sync"
	"testing"

	"dhtindex/internal/keyspace"
)

// TestConcurrentAccess exercises the documented concurrency contract:
// parallel puts, gets, lookups and membership changes must be safe (run
// under -race to validate).
func TestConcurrentAccess(t *testing.T) {
	n, nodes := mustNetwork(t, 16)
	var wg sync.WaitGroup
	const workers = 8
	const opsPerWorker = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := keyspace.NewKey(fmt.Sprintf("w%d-k%d", w, i%37))
				switch i % 4 {
				case 0:
					if _, err := n.Put(nodes[w%len(nodes)], key, Entry{Kind: "d", Value: "v"}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := n.Get(nodes[(w+1)%len(nodes)], key); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := n.Lookup(nodes[(w+2)%len(nodes)], key); err != nil {
						t.Error(err)
						return
					}
				default:
					_ = n.KeyLoad()
				}
			}
		}(w)
	}
	// Concurrent membership churn: add and remove nodes while traffic
	// flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			addr := fmt.Sprintf("churny-%d", i)
			if _, err := n.AddNode(addr); err != nil {
				t.Error(err)
				return
			}
			if err := n.RemoveNode(addr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := n.VerifyRing(); err != nil {
		t.Fatalf("ring invariants after concurrent access: %v", err)
	}
}
