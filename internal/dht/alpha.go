package dht

import (
	"dhtindex/internal/keyspace"
	"dhtindex/internal/lookup"
)

// AlphaResult reports one α-parallel iterative lookup.
type AlphaResult struct {
	// Owner is the node responsible for the key.
	Owner *Node
	// Hops is the iterative depth (rounds of improvement), Probes the
	// node queries issued, Failed the ones against vanished nodes.
	Hops, Probes, Failed int
}

// chordAbsDistance ranks candidates for the shared engine by the
// shorter circular distance to the key. Exploration has to use the
// absolute distance, not the clockwise one that defines ownership: the
// path to the owner runs through the key's predecessor side, which
// clockwise ranking would score worst and never probe.
func chordAbsDistance(id, target keyspace.Key) keyspace.Key {
	d1 := id.ClockwiseTo(target)
	d2 := target.ClockwiseTo(id)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// LookupAlpha resolves the owner of key with the shared α-parallel
// iterative engine (internal/lookup) instead of the recursive finger
// walk: the caller queries nodes for their routing state — successor,
// predecessor and closest-preceding finger toward the key — and drives
// the shortlist itself with alpha probes in flight. This is the Chord
// opt-in to Kademlia-style lookups; it returns the same owner the
// recursive Lookup finds, with the engine's depth as the hop count.
func (n *Network) LookupAlpha(start *Node, key keyspace.Key, alpha int) (AlphaResult, error) {
	if alpha <= 0 {
		alpha = 3
	}
	n.mu.Lock()
	if len(n.sorted) == 0 {
		n.mu.Unlock()
		return AlphaResult{}, ErrEmptyNetwork
	}
	if start == nil {
		start = n.sorted[0]
	}
	n.mu.Unlock()

	probe := func(c lookup.Contact, target keyspace.Key) (lookup.ProbeResult, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		nd, ok := n.nodes[c.Addr]
		if !ok {
			return lookup.ProbeResult{}, ErrNodeUnknown
		}
		var out []lookup.Contact
		add := func(m *Node) {
			if m != nil {
				out = append(out, lookup.Contact{Addr: m.Addr, ID: m.ID})
			}
		}
		add(nd.successor)
		add(nd.predecessor)
		add(n.closestPrecedingLocked(nd, target))
		return lookup.ProbeResult{Contacts: out}, nil
	}

	res := lookup.Run(lookup.Config{
		Target:   key,
		Seeds:    []lookup.Contact{{Addr: start.Addr, ID: start.ID}},
		Alpha:    alpha,
		K:        8, // window: the key's immediate neighbourhood on both sides
		Distance: chordAbsDistance,
		Probe:    probe,
	})

	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics.Lookups++
	n.metrics.Hops += res.Hops
	if res.Hops > n.metrics.MaxHops {
		n.metrics.MaxHops = res.Hops
	}
	n.hops.Observe(float64(res.Hops))

	// Ownership is clockwise: the owner is the node at the smallest
	// clockwise distance from the key. The converged set holds the key's
	// numeric neighbourhood — which, when nodes cluster below the key,
	// may not include the owner itself, but always includes the key's
	// true predecessor; so the owner is the clockwise-best among the
	// converged contacts and their successors.
	var owner *Node
	var best keyspace.Key
	for _, c := range res.Closest {
		nd, ok := n.nodes[c.Addr]
		if !ok {
			continue // departed mid-lookup
		}
		for _, cand := range []*Node{nd, nd.successor} {
			if cand == nil {
				continue
			}
			d := key.ClockwiseTo(cand.ID)
			if owner == nil || d.Cmp(best) < 0 {
				owner, best = cand, d
			}
		}
	}
	if owner == nil {
		// Nothing converged (or everything departed); the oracle view
		// keeps the simulation moving.
		if len(n.sorted) == 0 {
			return AlphaResult{}, ErrEmptyNetwork
		}
		owner = n.ownerOfLocked(key)
	}
	return AlphaResult{Owner: owner, Hops: res.Hops, Probes: res.Probes, Failed: res.Failed}, nil
}
