package dht

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dhtindex/internal/keyspace"
	"dhtindex/internal/overlay"
)

func TestOverlayPutGetRemove(t *testing.T) {
	n, _ := mustNetwork(t, 16)
	ov := AsOverlay(n, 1)
	key := keyspace.NewKey("doc")
	e := overlay.Entry{Kind: "data", Value: "v1"}
	route, err := ov.Put(key, e)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := n.OwnerOf(key)
	if err != nil {
		t.Fatal(err)
	}
	if route.Node != oracle.Addr {
		t.Fatalf("put landed on %s, oracle %s", route.Node, oracle.Addr)
	}
	entries, route2, err := ov.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0] != e || route2.Node != route.Node {
		t.Fatalf("get = %v @ %s", entries, route2.Node)
	}
	removed, err := ov.Remove(key, e)
	if err != nil || !removed {
		t.Fatalf("remove = %v, %v", removed, err)
	}
	entries, _, err = ov.Get(key)
	if err != nil || len(entries) != 0 {
		t.Fatalf("after remove: %v, %v", entries, err)
	}
}

func TestOverlayAddrsAndSize(t *testing.T) {
	n, _ := mustNetwork(t, 8)
	ov := AsOverlay(n, 1)
	addrs := ov.Addrs()
	if len(addrs) != 8 || ov.Size() != 8 {
		t.Fatalf("addrs = %v, size = %d", addrs, ov.Size())
	}
	// Ring order: addresses sorted by their key position, all distinct.
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate addr %s", a)
		}
		seen[a] = true
	}
}

func TestOverlayStatsOf(t *testing.T) {
	n, _ := mustNetwork(t, 4)
	ov := AsOverlay(n, 1)
	key := keyspace.NewKey("k")
	if _, err := ov.Put(key, overlay.Entry{Kind: "index", Value: "abcd"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Put(key, overlay.Entry{Kind: "data", Value: "ef"}); err != nil {
		t.Fatal(err)
	}
	owner, err := n.OwnerOf(key)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ov.StatsOf(owner.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Keys != 1 || stats.EntriesByKind["index"] != 1 || stats.EntriesByKind["data"] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Per-kind bytes include the per-key overhead once per kind.
	if stats.BytesByKind["index"] != int64(4+keyspace.Size) {
		t.Fatalf("index bytes = %d", stats.BytesByKind["index"])
	}
	if stats.BytesByKind["data"] != int64(2+keyspace.Size) {
		t.Fatalf("data bytes = %d", stats.BytesByKind["data"])
	}
	if _, err := ov.StatsOf("nope"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlayEmptyNetwork(t *testing.T) {
	ov := AsOverlay(NewNetwork(1), 1)
	if _, err := ov.Put(keyspace.NewKey("x"), overlay.Entry{Kind: "d", Value: "v"}); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ov.Get(keyspace.NewKey("x")); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ov.Remove(keyspace.NewKey("x"), overlay.Entry{}); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlayString(t *testing.T) {
	n, _ := mustNetwork(t, 3)
	ov := AsOverlay(n, 1)
	if got := ov.String(); !strings.Contains(got, "chord") || !strings.Contains(got, "3") {
		t.Fatalf("String = %q", got)
	}
}

func TestOverlayDeterministicStarts(t *testing.T) {
	n, _ := mustNetwork(t, 16)
	a := AsOverlay(n, 7)
	b := AsOverlay(n, 7)
	// Same seed: the same sequence of contact nodes, hence identical hops.
	for i := 0; i < 20; i++ {
		key := keyspace.NewKey(fmt.Sprintf("k%d", i))
		_, ra, err := a.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		_, rb, err := b.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("routes diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestNodeKeyCount(t *testing.T) {
	nd := newNode("n")
	if nd.KeyCount() != 0 {
		t.Fatal("fresh node has keys")
	}
	nd.putLocal(keyspace.NewKey("a"), Entry{Kind: "d", Value: "1"})
	nd.putLocal(keyspace.NewKey("b"), Entry{Kind: "d", Value: "2"})
	if nd.KeyCount() != 2 {
		t.Fatalf("KeyCount = %d", nd.KeyCount())
	}
}

func TestNetworkNodesSortedCopy(t *testing.T) {
	n, _ := mustNetwork(t, 6)
	nodes := n.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID.Cmp(nodes[i].ID) >= 0 {
			t.Fatal("Nodes not in ring order")
		}
	}
	// Mutating the returned slice must not corrupt the network.
	nodes[0] = nil
	if n.Nodes()[0] == nil {
		t.Fatal("Nodes returned internal slice")
	}
}
