package dht

import (
	"dhtindex/internal/keyspace"
)

// LookupResult reports the outcome of a routed key lookup.
type LookupResult struct {
	// Owner is the node responsible for the key.
	Owner *Node
	// Hops is the number of inter-node routing messages used to reach it.
	Hops int
}

// Lookup routes from an arbitrary live start node to the owner of key using
// Chord's iterative finger-table routing and returns the owner with the hop
// count. If start is nil a deterministic first node is used.
func (n *Network) Lookup(start *Node, key keyspace.Key) (LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lookupLocked(start, key)
}

// OwnerOf returns the node responsible for key without routing (oracle
// view); it is what the paper assumes the substrate provides, and is used
// by tests to validate routed lookups.
func (n *Network) OwnerOf(key keyspace.Key) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.sorted) == 0 {
		return nil, ErrEmptyNetwork
	}
	return n.ownerOfLocked(key), nil
}

// lookupLocked implements routed lookup. Callers hold n.mu.
func (n *Network) lookupLocked(start *Node, key keyspace.Key) (LookupResult, error) {
	if len(n.sorted) == 0 {
		return LookupResult{}, ErrEmptyNetwork
	}
	if start == nil {
		start = n.sorted[0]
	}
	current := start
	hops := 0
	// Bound the walk defensively: a correct finger-table walk takes
	// O(log N) hops; 2*Bits steps can only be exceeded by a routing bug.
	for step := 0; step < 2*keyspace.Bits; step++ {
		succ := current.successor
		if succ == nil || key.Between(current.ID, succ.ID) {
			owner := succ
			if owner == nil { // single-node ring
				owner = current
			}
			if owner != current {
				hops++
			}
			n.metrics.Lookups++
			n.metrics.Hops += hops
			if hops > n.metrics.MaxHops {
				n.metrics.MaxHops = hops
			}
			n.hops.Observe(float64(hops))
			return LookupResult{Owner: owner, Hops: hops}, nil
		}
		next := n.closestPrecedingLocked(current, key)
		if next == current {
			next = succ
		}
		current = next
		hops++
	}
	// Routing failed to converge; fall back to the oracle view so that the
	// simulation keeps functioning, but record the worst case.
	n.metrics.Lookups++
	n.metrics.Hops += hops
	n.hops.Observe(float64(hops))
	return LookupResult{Owner: n.ownerOfLocked(key), Hops: hops}, nil
}

// closestPrecedingLocked returns the finger of node that most closely
// precedes key, per the Chord routing rule. Callers hold n.mu.
func (n *Network) closestPrecedingLocked(node *Node, key keyspace.Key) *Node {
	fingers := n.fingersOf(node)
	for i := keyspace.Bits - 1; i >= 0; i-- {
		f := fingers[i]
		if f == nil || f == node {
			continue
		}
		if f.ID.BetweenOpen(node.ID, key) {
			return f
		}
	}
	return node
}

// Put stores an entry under key on the owner node (and on
// ReplicationFactor successors when replication is enabled), routing from
// start. It returns the owner and the hop count of the routing step.
func (n *Network) Put(start *Node, key keyspace.Key, e Entry) (LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	res, err := n.lookupLocked(start, key)
	if err != nil {
		return LookupResult{}, err
	}
	res.Owner.putLocal(key, e)
	n.metrics.StoreOps++
	n.metrics.BytesShipped += int64(len(e.Value))
	for i := 0; i < n.ReplicationFactor && i < len(res.Owner.succList); i++ {
		res.Owner.succList[i].putLocal(key, e)
		n.metrics.BytesShipped += int64(len(e.Value))
	}
	return res, nil
}

// Get retrieves the entries stored under key, routing from start. When the
// owner has no entries but replication is enabled, the successor replicas
// are consulted (failover read).
func (n *Network) Get(start *Node, key keyspace.Key) ([]Entry, LookupResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	res, err := n.lookupLocked(start, key)
	if err != nil {
		return nil, LookupResult{}, err
	}
	n.metrics.RetrieveOps++
	entries := res.Owner.getLocal(key)
	if entries == nil && n.ReplicationFactor > 0 {
		for i := 0; i < n.ReplicationFactor && i < len(res.Owner.succList); i++ {
			if entries = res.Owner.succList[i].getLocal(key); entries != nil {
				res.Hops++
				n.metrics.FailoverReads++
				break
			}
		}
	}
	for _, e := range entries {
		n.metrics.BytesShipped += int64(len(e.Value))
	}
	return entries, res, nil
}

// Remove deletes the exact entry under key from the owner (and replicas).
// It reports whether the entry existed on the owner.
func (n *Network) Remove(start *Node, key keyspace.Key, e Entry) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	res, err := n.lookupLocked(start, key)
	if err != nil {
		return false, err
	}
	removed := res.Owner.removeLocal(key, e)
	for i := 0; i < n.ReplicationFactor && i < len(res.Owner.succList); i++ {
		res.Owner.succList[i].removeLocal(key, e)
	}
	return removed, nil
}
