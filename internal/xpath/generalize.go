package xpath

import "sort"

// Generalizations returns the queries obtained by dropping exactly one
// top-level predicate from q, ordered most-specific first (most remaining
// constraints, ties broken by canonical form). These are the immediate
// upward neighbours of q in the covering partial order that the
// generalization/specialization fallback of §IV-B explores when q itself
// is not present in any index: each returned query g satisfies g ⊒ q.
//
// A query whose root has fewer than two predicates has no useful
// generalization at this level and yields nil.
func (q Query) Generalizations() []Query {
	if q.root == nil || len(q.root.kids) < 2 {
		return nil
	}
	out := make([]Query, 0, len(q.root.kids))
	for drop := range q.root.kids {
		g := &node{name: q.root.name, desc: q.root.desc, value: q.root.value}
		g.kids = make([]*node, 0, len(q.root.kids)-1)
		for i, k := range q.root.kids {
			if i != drop {
				g.kids = append(g.kids, k.clone())
			}
		}
		out = append(out, newQuery(g))
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Constraints(), out[j].Constraints()
		if ci != cj {
			return ci > cj
		}
		return out[i].str < out[j].str
	})
	return out
}
