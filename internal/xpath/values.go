package xpath

// ValueConstraint is one (element path, value) requirement of a query.
// The path is relative to the root element (e.g. ["author", "last"]).
type ValueConstraint struct {
	Path  []string
	Value string
}

// ValueConstraints lists the query's value requirements in canonical
// (sorted) order. Wildcard and descendant steps are skipped — fuzzy
// correction only applies to concrete paths.
func (q Query) ValueConstraints() []ValueConstraint {
	if q.root == nil {
		return nil
	}
	var out []ValueConstraint
	var walk func(n *node, path []string)
	walk = func(n *node, path []string) {
		if n.name == Wildcard || n.desc {
			return
		}
		if n.value != "" {
			vc := ValueConstraint{Path: append([]string(nil), path...), Value: n.value}
			out = append(out, vc)
		}
		for _, k := range n.kids {
			walk(k, append(path, k.name))
		}
	}
	walk(q.root, nil)
	return out
}

// WithValue returns a copy of the query whose value at the given path is
// replaced. When several same-named siblings exist along the path, the
// first one carrying a value (or, failing that, the first) is followed.
// The query is returned unchanged if the path does not resolve.
func (q Query) WithValue(path []string, value string) Query {
	if q.root == nil || len(path) == 0 {
		return q
	}
	root := q.root.clone()
	cur := root
	for _, name := range path {
		var next *node
		for _, k := range cur.kids {
			if k.name != name || k.desc {
				continue
			}
			if next == nil || (next.value == "" && k.value != "") {
				next = k
			}
		}
		if next == nil {
			return q
		}
		cur = next
	}
	if len(cur.kids) > 0 {
		return q // interior node: not a value position
	}
	cur.value = value
	return newQuery(root)
}
