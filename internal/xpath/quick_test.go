package xpath

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"dhtindex/internal/descriptor"
)

// randomArticle builds a pseudo-random article from a seed, over a small
// vocabulary so that queries and descriptors collide often enough to
// exercise the interesting cases.
func randomArticle(rng *rand.Rand) descriptor.Article {
	firsts := []string{"John", "Alan", "Mary", "Li"}
	lasts := []string{"Smith", "Doe", "Chen", "Garcia"}
	titles := []string{"TCP", "IPv6", "Wavelets", "Chord", "CAN"}
	confs := []string{"SIGCOMM", "INFOCOM", "SOSP", "ICDCS"}
	return descriptor.Article{
		AuthorFirst: firsts[rng.Intn(len(firsts))],
		AuthorLast:  lasts[rng.Intn(len(lasts))],
		Title:       titles[rng.Intn(len(titles))],
		Conf:        confs[rng.Intn(len(confs))],
		Year:        1985 + rng.Intn(20),
		Size:        int64(100000 + rng.Intn(400000)),
	}
}

// randomSubQuery builds a query covering the given article by keeping a
// random subset of its constraints.
func randomSubQuery(rng *rand.Rand, a descriptor.Article) Query {
	b := NewBuilder("article")
	any := false
	if rng.Intn(2) == 0 {
		b.Equal(a.AuthorFirst, "author", "first")
		any = true
	}
	if rng.Intn(2) == 0 {
		b.Equal(a.AuthorLast, "author", "last")
		any = true
	}
	if rng.Intn(2) == 0 {
		b.Equal(a.Title, "title")
		any = true
	}
	if rng.Intn(2) == 0 {
		b.Equal(a.Conf, "conf")
		any = true
	}
	if !any {
		b.Equal(strconv.Itoa(a.Year), "year")
	}
	return b.Build()
}

// Property: a query built from a subset of an article's constraints covers
// the article's MSD and matches the article's descriptor.
func TestSubQueryCoversAndMatchesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomArticle(rng)
		d := a.Descriptor()
		msd := MostSpecific(d)
		q := randomSubQuery(rng, a)
		return q.Covers(msd) && q.Matches(d) && msd.Matches(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: covering is consistent with matching — if gen covers spe and a
// descriptor matches spe, it matches gen (soundness of the syntactic
// check over the sampled universe).
func TestCoversSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomArticle(rng), randomArticle(rng)
		qa := randomSubQuery(rng, a)
		qb := randomSubQuery(rng, b)
		if !qa.Covers(qb) {
			return true // nothing to check
		}
		// Every descriptor in a sample that matches qb must match qa.
		for i := 0; i < 20; i++ {
			d := randomArticle(rng).Descriptor()
			if qb.Matches(d) && !qa.Matches(d) {
				return false
			}
		}
		return qa.Matches(b.Descriptor()) || !qb.Matches(b.Descriptor())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: covering is reflexive and transitive on sampled queries.
func TestCoversPartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomArticle(rng)
		msd := MostSpecific(a.Descriptor())
		q := randomSubQuery(rng, a)
		r := randomSubQuery(rng, a)
		if !q.Covers(q) || !r.Covers(r) || !msd.Covers(msd) {
			return false // reflexivity
		}
		// Transitivity over the chain q ⊒ msd and r ⊒ msd plus any
		// q ⊒ r relation discovered.
		if q.Covers(r) && r.Covers(msd) && !q.Covers(msd) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: antisymmetry on canonical forms — mutual covering implies
// identical canonical strings for the builder-generated query family.
func TestCoversAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomArticle(rng)
		q := randomSubQuery(rng, a)
		r := randomSubQuery(rng, a)
		if q.Covers(r) && r.Covers(q) {
			return q.Equal(r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing the canonical form of any generated query returns an
// equal query (String ∘ Parse is the identity on canonical forms).
func TestCanonicalFormFixpointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomSubQuery(rng, randomArticle(rng))
		again, err := Parse(q.String())
		return err == nil && again.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
