package xpath

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func TestGeneralizationsAuthorYear(t *testing.T) {
	q := MustParse("/article[author[first=John][last=Smith]][year=1996]")
	gens := q.Generalizations()
	if len(gens) != 2 {
		t.Fatalf("got %d generalizations, want 2: %v", len(gens), gens)
	}
	// Most specific first: the author query (3 constraints + root) before
	// the year query.
	if !gens[0].Equal(MustParse("/article[author[first=John][last=Smith]]")) {
		t.Fatalf("gens[0] = %q", gens[0])
	}
	if !gens[1].Equal(MustParse("/article[year=1996]")) {
		t.Fatalf("gens[1] = %q", gens[1])
	}
	for _, g := range gens {
		if !g.Covers(q) {
			t.Fatalf("generalization %q does not cover %q", g, q)
		}
		if g.Equal(q) {
			t.Fatalf("generalization %q equals original", g)
		}
	}
}

func TestGeneralizationsSinglePredicate(t *testing.T) {
	if gens := MustParse("/article[title=TCP]").Generalizations(); gens != nil {
		t.Fatalf("single-predicate query generalized: %v", gens)
	}
	if gens := (Query{}).Generalizations(); gens != nil {
		t.Fatalf("zero query generalized: %v", gens)
	}
}

// Property: every generalization covers the original and has strictly
// fewer constraints.
func TestGeneralizationsCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomSubQuery(rng, randomArticle(rng))
		for _, g := range q.Generalizations() {
			if !g.Covers(q) || g.Constraints() >= q.Constraints() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
