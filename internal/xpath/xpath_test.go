package xpath

import (
	"errors"
	"testing"

	"dhtindex/internal/descriptor"
)

// bibLeaf is the bibliographic schema of Figure 1 used for paper-style
// parsing.
func bibLeaf(name string) bool {
	switch name {
	case "first", "last", "title", "conf", "year", "size":
		return true
	}
	return false
}

// The paper's queries of Figure 2 in the canonical dialect.
var (
	q1 = MustParse("/article[author[first=John][last=Smith]][title=TCP][conf=SIGCOMM][year=1989][size=315635]")
	q2 = MustParse("/article[author[first=John][last=Smith]][conf=INFOCOM]")
	q3 = MustParse("/article[author[first=John][last=Smith]]")
	q4 = MustParse("/article[title=TCP]")
	q5 = MustParse("/article[conf=INFOCOM]")
	q6 = MustParse("/article[author[last=Smith]]")
)

func fig1Descriptors() []descriptor.Descriptor {
	arts := descriptor.Fig1Articles()
	out := make([]descriptor.Descriptor, len(arts))
	for i, a := range arts {
		out[i] = a.Descriptor()
	}
	return out
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	inputs := []string{
		"/article[author[first=John][last=Smith]][conf=SIGCOMM]",
		"/article[title=TCP]",
		"//author[last=Smith]",
		"/article[*=TCP]",
		"/a[b[c=1]][d=2]",
	}
	for _, in := range inputs {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if !q.Equal(again) {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", in, q, again)
		}
	}
}

func TestParsePathSugar(t *testing.T) {
	a := MustParse("/article/author/last=Smith")
	b := MustParse("/article[author[last=Smith]]")
	if !a.Equal(b) {
		t.Fatalf("path sugar: %q != %q", a, b)
	}
}

func TestParsePredicateOrderNormalized(t *testing.T) {
	a := MustParse("/article[conf=SIGCOMM][author[last=Smith][first=John]]")
	b := MustParse("/article[author[first=John][last=Smith]][conf=SIGCOMM]")
	if !a.Equal(b) {
		t.Fatalf("normalization: %q != %q", a, b)
	}
}

func TestParseDuplicatePredicatesDeduped(t *testing.T) {
	a := MustParse("/article[title=TCP][title=TCP]")
	b := MustParse("/article[title=TCP]")
	if !a.Equal(b) {
		t.Fatalf("dedup: %q != %q", a, b)
	}
}

func TestParseWithSchemaPaperSyntax(t *testing.T) {
	cases := []struct {
		paper string
		want  Query
	}{
		{"/article[author[first/John][last/Smith]][title/TCP][conf/SIGCOMM][year/1989][size/315635]", q1},
		{"/article[author[first/John][last/Smith]][conf/INFOCOM]", q2},
		{"/article/author[first/John][last/Smith]", q3},
		{"/article/title/TCP", q4},
		{"/article/conf/INFOCOM", q5},
		{"/article/author/last/Smith", q6},
	}
	for _, tc := range cases {
		got, err := ParseWithSchema(tc.paper, bibLeaf)
		if err != nil {
			t.Fatalf("ParseWithSchema(%q): %v", tc.paper, err)
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseWithSchema(%q) = %q, want %q", tc.paper, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "article", "/", "/a[", "/a[b", "/a]", "/a=", "/a//", "/a[b=]",
		"/a b", "/a[b]x",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
	var syn *SyntaxError
	if _, err := Parse("/a["); !errors.As(err, &syn) {
		t.Errorf("want *SyntaxError, got %v", err)
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty parse must fail")
	}
}

func TestMatchesFig1(t *testing.T) {
	ds := fig1Descriptors()
	d1, d2, d3 := ds[0], ds[1], ds[2]
	cases := []struct {
		name string
		q    Query
		d    descriptor.Descriptor
		want bool
	}{
		{"q1-d1", q1, d1, true},
		{"q1-d2", q1, d2, false},
		{"q2-d1", q2, d1, false}, // INFOCOM constraint fails on d1 (SIGCOMM)
		{"q2-d2", q2, d2, true},
		{"q3-d1", q3, d1, true},
		{"q3-d2", q3, d2, true},
		{"q3-d3", q3, d3, false},
		{"q4-d1", q4, d1, true},
		{"q4-d3", q4, d3, false},
		{"q5-d2", q5, d2, true},
		{"q5-d3", q5, d3, true},
		{"q5-d1", q5, d1, false},
		{"q6-d1", q6, d1, true},
		{"q6-d3", q6, d3, false},
	}
	for _, tc := range cases {
		if got := tc.q.Matches(tc.d); got != tc.want {
			t.Errorf("%s: Matches=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMatchesWildcardAndDescendant(t *testing.T) {
	d := descriptor.Fig1Articles()[0].Descriptor()
	cases := []struct {
		q    string
		want bool
	}{
		{"/article[*=TCP]", true},          // some leaf child equals TCP
		{"/article[*=IPv6]", false},        //
		{"/*[title=TCP]", true},            // root wildcard
		{"//last=Smith", true},             // descendant anywhere
		{"//last=Doe", false},              //
		{"//author[first=John]", true},     //
		{"/article[//first=John]", true},   // descendant predicate
		{"/article[//missing=1]", false},   //
		{"/article[author[//x=1]]", false}, // deep descendant miss
	}
	for _, tc := range cases {
		q := MustParse(tc.q)
		if got := q.Matches(d); got != tc.want {
			t.Errorf("Matches(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestMatchesValueOnInteriorNodeFails(t *testing.T) {
	d := descriptor.Fig1Articles()[0].Descriptor()
	// author is interior; requiring a value on it cannot match.
	q := MustParse("/article[author=John]")
	if q.Matches(d) {
		t.Fatal("value constraint matched an interior element")
	}
}

// TestCoversFig3 checks the paper's partial-order tree (Figure 3):
// q1⊐{q2,q4}, q2⊐{q3,q5}, q3⊐q6, and the MSD relationships.
func TestCoversFig3(t *testing.T) {
	cases := []struct {
		name     string
		gen, spe Query
		want     bool
	}{
		// Edges of Figure 3 (qi -> qj means qj covers qi ... the figure
		// draws more specific above less specific: arrows point down the
		// ordering). The concrete relations:
		{"q4-covers-q1", q4, q1, true},
		{"q3-covers-q1", q3, q1, true},
		{"q6-covers-q3", q6, q3, true},
		{"q6-covers-q1", q6, q1, true}, // transitivity
		{"q3-covers-q2", q3, q2, true},
		{"q5-covers-q2", q5, q2, true},
		{"q6-covers-q2", q6, q2, true},
		// Non-relations.
		{"q2-not-covers-q1", q2, q1, false}, // conf differs
		{"q4-not-covers-q2", q4, q2, false},
		{"q5-not-covers-q1", q5, q1, false},
		{"q1-not-covers-q6", q1, q6, false},
		{"q3-not-covers-q6", q3, q6, false},
		{"q4-not-covers-q5", q4, q5, false},
		// Reflexivity.
		{"q1-covers-q1", q1, q1, true},
		{"q6-covers-q6", q6, q6, true},
	}
	for _, tc := range cases {
		if got := tc.gen.Covers(tc.spe); got != tc.want {
			t.Errorf("%s: Covers=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCoversWildcardAndDescendant(t *testing.T) {
	cases := []struct {
		gen, spe string
		want     bool
	}{
		{"/article[*=TCP]", "/article[title=TCP]", true},
		{"/article[title=TCP]", "/article[*=TCP]", false},
		{"//last=Smith", "/article[author[last=Smith]]", true},
		{"/article[//last=Smith]", "/article[author[last=Smith]]", true},
		{"/article[author[last=Smith]]", "/article[//last=Smith]", false},
		{"//author", "/article[author[first=John]]", true},
		{"/*", "/article", true},
		{"/article", "/*", false},
	}
	for _, tc := range cases {
		gen, spe := MustParse(tc.gen), MustParse(tc.spe)
		if got := gen.Covers(spe); got != tc.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", tc.gen, tc.spe, got, tc.want)
		}
	}
}

func TestMostSpecificMatchesItsDescriptor(t *testing.T) {
	for _, a := range descriptor.Fig1Articles() {
		d := a.Descriptor()
		msd := MostSpecific(d)
		if !msd.Matches(d) {
			t.Fatalf("MSD %q does not match its own descriptor", msd)
		}
		back, err := msd.Descriptor()
		if err != nil {
			t.Fatalf("Descriptor(): %v", err)
		}
		if !back.Equal(d) {
			t.Fatalf("MSD round trip changed descriptor:\n%s\n%s", d, back)
		}
	}
}

func TestMostSpecificEqualsQ1(t *testing.T) {
	d1 := descriptor.Fig1Articles()[0].Descriptor()
	if msd := MostSpecific(d1); !msd.Equal(q1) {
		t.Fatalf("MostSpecific(d1) = %q, want q1 = %q", msd, q1)
	}
}

func TestDescriptorNotConcrete(t *testing.T) {
	for _, in := range []string{
		"/article[title=TCP]",  // partial: interior without full leaves? title ok but article also needs nothing else -> actually concrete!
		"/article[*=TCP]",      // wildcard
		"//author[last=Smith]", // descendant
		"/article[author]",     // presence-only leaf
	} {
		q := MustParse(in)
		if _, err := q.Descriptor(); err == nil {
			switch in {
			case "/article[title=TCP]":
				// A fully valued pattern *is* a concrete descriptor even if
				// small; only structural holes are errors.
				continue
			}
			t.Errorf("Descriptor(%q) succeeded, want error", in)
		}
	}
	if _, err := (Query{}).Descriptor(); !errors.Is(err, ErrEmptyQuery) {
		t.Error("zero query must return ErrEmptyQuery")
	}
}

func TestBuilder(t *testing.T) {
	q := NewBuilder("article").
		Equal("John", "author", "first").
		Equal("Smith", "author", "last").
		Build()
	if !q.Equal(q3) {
		t.Fatalf("builder = %q, want %q", q, q3)
	}
	// Builders can keep accumulating constraints after Build.
	b := NewBuilder("article").Equal("TCP", "title")
	first := b.Build()
	b.Equal("SIGCOMM", "conf")
	second := b.Build()
	if !first.Equal(q4) {
		t.Fatalf("first build = %q, want %q", first, q4)
	}
	if !second.Covers(q1) || first.Equal(second) {
		t.Fatalf("second build wrong: %q", second)
	}
}

func TestBuilderRequire(t *testing.T) {
	q := NewBuilder("article").Require("author", "last").Build()
	d := descriptor.Fig1Articles()[0].Descriptor()
	if !q.Matches(d) {
		t.Fatal("presence constraint should match")
	}
	if !q.Covers(q6) {
		t.Fatalf("%q should cover %q", q, q6)
	}
}

func TestQueryZeroValues(t *testing.T) {
	var zero Query
	if !zero.IsZero() {
		t.Fatal("zero query must report IsZero")
	}
	if zero.Matches(descriptor.Fig1Articles()[0].Descriptor()) {
		t.Fatal("zero query matches nothing")
	}
	if zero.Covers(q1) || q1.Covers(zero) {
		t.Fatal("zero query participates in no covering relation")
	}
	if zero.Constraints() != 0 {
		t.Fatal("zero query has no constraints")
	}
}

func TestConstraints(t *testing.T) {
	if got := q6.Constraints(); got != 3 { // article, author, last
		t.Fatalf("q6 constraints = %d, want 3", got)
	}
	if got := q1.Constraints(); got != 8 {
		t.Fatalf("q1 constraints = %d, want 8", got)
	}
}

func TestKeyStableAcrossEquivalentForms(t *testing.T) {
	a := MustParse("/article[conf=SIGCOMM][title=TCP]")
	b := MustParse("/article[title=TCP][conf=SIGCOMM]")
	if a.Key() != b.Key() {
		t.Fatal("equivalent queries hash to different keys")
	}
	if a.Key() == q6.Key() {
		t.Fatal("distinct queries collide")
	}
}
