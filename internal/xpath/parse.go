package xpath

import (
	"fmt"
	"strings"
)

// SyntaxError describes a parse failure with its input position.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

// Parse parses the canonical dialect:
//
//	query    := axis step ( axis step )*
//	axis     := '/' | '//'
//	step     := name valueOpt pred*
//	pred     := '[' axisOpt step ( axis step )* ']'
//	valueOpt := ( '=' value )?
//	name     := [A-Za-z0-9_.-]+ | '*'
//
// Examples: /article[author[first=John][last=Smith]][conf=SIGCOMM],
// //author[last=Smith], /article/title=TCP (a path is sugar for nesting).
func Parse(input string) (Query, error) {
	return parse(input, nil)
}

// ParseWithSchema parses the paper's informal syntax, in which a value
// appears as a path segment after a leaf element (e.g. `title/TCP`,
// `[last/Smith]`). isLeaf reports whether an element name is a leaf in the
// application schema; the segment (or lone predicate) following a leaf
// element is then read as its value constraint. The paper notes (§IV-C)
// that exploiting descriptor structure "requires human input" — the schema
// is that input.
func ParseWithSchema(input string, isLeaf func(name string) bool) (Query, error) {
	if isLeaf == nil {
		return Parse(input)
	}
	return parse(input, isLeaf)
}

type parser struct {
	in     string
	pos    int
	isLeaf func(string) bool
}

func parse(input string, isLeaf func(string) bool) (Query, error) {
	p := &parser{in: input, isLeaf: isLeaf}
	root, err := p.parsePath(true)
	if err != nil {
		return Query{}, err
	}
	if p.pos != len(p.in) {
		return Query{}, p.errf("trailing input")
	}
	if root == nil {
		return Query{}, ErrEmptyQuery
	}
	return newQuery(root), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// parsePath parses `axis step (axis step)*` and returns the head node of
// the chain (each further step nested as the single predicate of the
// previous one — path syntax is sugar for nesting).
func (p *parser) parsePath(requireAxis bool) (*node, error) {
	head, err := p.parseOne(requireAxis)
	if err != nil {
		return nil, err
	}
	cur := head
	for p.peekAxis() {
		// Paper-style value segment: `title/TCP` — under schema parsing,
		// the segment after a leaf element is that leaf's value, read
		// with value lexing so spaces are allowed ("Scalable Lookup").
		if p.isLeaf != nil && p.isLeaf(cur.name) && cur.value == "" &&
			!strings.HasPrefix(p.in[p.pos:], "//") {
			p.pos++ // consume '/'
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			cur.value = v
			break
		}
		next, err := p.parseOne(true)
		if err != nil {
			return nil, err
		}
		cur.kids = append(cur.kids, next)
		cur = next
	}
	return head, nil
}

// parseOne parses a single step with optional leading axis, value and
// predicates.
func (p *parser) parseOne(requireAxis bool) (*node, error) {
	n := &node{}
	switch {
	case strings.HasPrefix(p.in[p.pos:], "//"):
		n.desc = true
		p.pos += 2
	case strings.HasPrefix(p.in[p.pos:], "/"):
		p.pos++
	default:
		if requireAxis {
			return nil, p.errf("expected '/' or '//'")
		}
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	n.name = name
	if p.pos < len(p.in) && p.in[p.pos] == '=' {
		p.pos++
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		n.value = v
	}
	for p.pos < len(p.in) && p.in[p.pos] == '[' {
		p.pos++
		kid, err := p.parsePath(false)
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.in) || p.in[p.pos] != ']' {
			return nil, p.errf("expected ']'")
		}
		p.pos++
		// Paper-style lone-value predicate on a leaf: `title[TCP]` is not
		// used by the paper, but `[last/Smith]` inside predicates is — it
		// is handled by parsePath above. A leaf with a single bare child
		// constraint is read as a value under schema parsing.
		if p.isLeaf != nil && p.isLeaf(n.name) && n.value == "" &&
			!kid.desc && len(kid.kids) == 0 && kid.value == "" {
			n.value = kid.name
			continue
		}
		n.kids = append(n.kids, kid)
	}
	return n, nil
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= '0' && b <= '9' || b == '_' || b == '.' || b == '-'
}

func (p *parser) parseName() (string, error) {
	if p.pos < len(p.in) && p.in[p.pos] == '*' {
		p.pos++
		return Wildcard, nil
	}
	start := p.pos
	for p.pos < len(p.in) && isNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected element name")
	}
	return p.in[start:p.pos], nil
}

// parseValue reads a value: any run of characters other than the
// metacharacters `[ ] / =`. Spaces are allowed inside values
// ("John Smith" as a single element value is legal in descriptors).
func (p *parser) parseValue() (string, error) {
	start := p.pos
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '[', ']', '/', '=':
			goto done
		}
		p.pos++
	}
done:
	if p.pos == start {
		return "", p.errf("expected value after '='")
	}
	return p.in[start:p.pos], nil
}

// peekAxis reports whether the next token starts a path continuation.
func (p *parser) peekAxis() bool {
	return p.pos < len(p.in) && p.in[p.pos] == '/'
}

// MustParse parses the canonical dialect and panics on error. Use only for
// compile-time-constant queries in tests and examples.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}
