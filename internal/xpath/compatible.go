package xpath

// Compatible reports whether two queries could both match some descriptor.
// It is a conservative check: false is returned only on a definite
// conflict (two different exact values required for the same
// unambiguously-named element path). The automated search mode uses it to
// prune index branches that cannot contain results for the original query.
func Compatible(a, b Query) bool {
	if a.root == nil || b.root == nil {
		return false
	}
	if a.root.desc || b.root.desc {
		return true // floating patterns: never a definite conflict
	}
	return compatibleNodes(a.root, b.root)
}

func compatibleNodes(a, b *node) bool {
	if a.name == Wildcard || b.name == Wildcard {
		return true
	}
	if a.name != b.name {
		// Distinct element names at the same (root) position conflict
		// when compared at the root; as children they simply refer to
		// different elements, handled by the caller grouping.
		return false
	}
	if a.value != "" && b.value != "" && !valuesCompatible(a.value, b.value) {
		return false
	}
	// Compare children pairwise only when each side constrains a name
	// exactly once — otherwise multiple same-named siblings make the
	// pairing ambiguous and we stay conservative.
	for _, ak := range a.kids {
		if ak.desc || ak.name == Wildcard {
			continue
		}
		if uniqueA := soleKid(a, ak.name); uniqueA == nil {
			continue
		}
		bk := soleKid(b, ak.name)
		if bk == nil || bk.desc {
			continue
		}
		if !compatibleNodes(ak, bk) {
			return false
		}
	}
	return true
}

// soleKid returns n's unique non-descendant child with the given name, or
// nil when there is none or more than one.
func soleKid(n *node, name string) *node {
	var found *node
	for _, k := range n.kids {
		if k.desc || k.name != name {
			continue
		}
		if found != nil {
			return nil
		}
		found = k
	}
	return found
}

// valuesCompatible reports whether two value constraints can be satisfied
// by one value. Exact values are checked precisely against the other
// side's form; two non-exact patterns are decided conservatively except
// for the prefix/prefix case, which is exact.
func valuesCompatible(a, b string) bool {
	as, af := classifyValue(a)
	bs, bf := classifyValue(b)
	switch {
	case af == formExact && bf == formExact:
		return a == b
	case af == formExact:
		return valueMatches(b, a)
	case bf == formExact:
		return valueMatches(a, b)
	case af == formPrefix && bf == formPrefix:
		return hasPrefix(as, bs) || hasPrefix(bs, as)
	default:
		return true // conservative: some value may satisfy both patterns
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
