package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dhtindex/internal/descriptor"
)

func TestCompatible(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// Same path, same value: trivially compatible.
		{"/article[title=TCP]", "/article[title=TCP]", true},
		// Same path, conflicting exact values: definite conflict.
		{"/article[title=TCP]", "/article[title=IPv6]", false},
		// Disjoint fields never conflict.
		{"/article[title=TCP]", "/article[conf=SIGCOMM]", true},
		// Nested conflict through a shared unique path.
		{"/article[author[last=Smith]]", "/article[author[last=Doe]]", false},
		{"/article[author[last=Smith]]", "/article[author[first=John]]", true},
		// Different roots conflict.
		{"/article[title=TCP]", "/book[title=TCP]", false},
		// Wildcards and descendants stay conservative (compatible).
		{"/*[title=TCP]", "/article[title=IPv6]", true},
		{"//title=TCP", "/article[title=IPv6]", true},
		{"/article[//last=Smith]", "/article[author[last=Doe]]", true},
		// Prefix constraints.
		{"/article[author[last=S*]]", "/article[author[last=Smith]]", true},
		{"/article[author[last=S*]]", "/article[author[last=Doe]]", false},
		{"/article[author[last=S*]]", "/article[author[last=Sm*]]", true},
		{"/article[author[last=Sa*]]", "/article[author[last=Sm*]]", false},
	}
	for _, tc := range cases {
		a, b := MustParse(tc.a), MustParse(tc.b)
		if got := Compatible(a, b); got != tc.want {
			t.Errorf("Compatible(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// Compatibility is symmetric.
		if got := Compatible(b, a); got != tc.want {
			t.Errorf("Compatible(%q, %q) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestCompatibleZero(t *testing.T) {
	if Compatible(Query{}, MustParse("/a")) || Compatible(MustParse("/a"), Query{}) {
		t.Fatal("zero query compatible with something")
	}
}

// Property: if some sampled descriptor matches both queries, they must be
// reported compatible (soundness: Compatible only rejects definite
// conflicts).
func TestCompatibleSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		art := randomArticle(rng)
		qa := randomSubQuery(rng, art)
		qb := randomSubQuery(rng, art)
		// Both match d by construction, so they must be compatible.
		return Compatible(qa, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("/a[")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	for _, want := range []string{"xpath:", "offset", "/a["} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("/a[")
}

func TestParseWithSchemaNilFallback(t *testing.T) {
	a, err := ParseWithSchema("/article[title=TCP]", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(MustParse("/article[title=TCP]")) {
		t.Fatalf("nil-schema parse = %q", a)
	}
}

func TestMostSpecificZeroDescriptor(t *testing.T) {
	if q := MostSpecific(descriptor.Descriptor{}); !q.IsZero() {
		t.Fatalf("MostSpecific of empty descriptor = %q", q)
	}
}

func TestMatchesDescendantRootedAtRoot(t *testing.T) {
	d := MustParse("/article[title=TCP]")
	concrete, err := d.Descriptor()
	if err != nil {
		t.Fatal(err)
	}
	// //article matches the root itself (descendant-or-self at top level).
	if !MustParse("//article").Matches(concrete) {
		t.Fatal("//article should match an article root")
	}
	if !MustParse("//title=TCP").Matches(concrete) {
		t.Fatal("//title should match below the root")
	}
}
