package xpath

// Builder assembles queries programmatically, merging constraints that
// share a path prefix (so author/first and author/last end up under one
// author predicate, as in the paper's q3). Builders are what the indexing
// schemes and the workload generator use; end users typically Parse.
type Builder struct {
	root *node
}

// NewBuilder starts a query rooted at the given element name.
func NewBuilder(rootName string) *Builder {
	return &Builder{root: &node{name: rootName}}
}

// Require adds a presence constraint for the element path below the root
// (no value). It returns the builder for chaining.
func (b *Builder) Require(path ...string) *Builder {
	b.descend(path)
	return b
}

// Equal adds a value constraint at the element path below the root.
func (b *Builder) Equal(value string, path ...string) *Builder {
	n := b.descend(path)
	n.value = value
	return b
}

// descend walks (creating as needed) the constraint chain for path and
// returns the final node. Existing children are reused only while they
// carry no value, so two distinct valued constraints on the same element
// name (e.g. two authors) stay separate.
func (b *Builder) descend(path []string) *node {
	cur := b.root
	for _, name := range path {
		var found *node
		for _, k := range cur.kids {
			if k.name == name && k.value == "" && !k.desc {
				found = k
				break
			}
		}
		if found == nil {
			found = &node{name: name}
			cur.kids = append(cur.kids, found)
		}
		cur = found
	}
	return cur
}

// Build freezes the builder into a normalized Query. The builder can keep
// being used afterwards; Build clones the pattern.
func (b *Builder) Build() Query {
	return newQuery(b.root.clone())
}
