// Package xpath implements the paper's query language (§III-B): a subset
// of the XPath addressing language over semi-structured descriptors.
//
// A query is a conjunctive tree pattern. Each pattern node constrains an
// element name (or `*` wildcard), optionally its text value, optionally its
// axis (child `/` or descendant `//`), and carries child constraints
// (XPath predicates). A descriptor matches a query when the pattern tree
// embeds into the descriptor tree.
//
// Queries have a unique canonical form (sorted, deduplicated predicates and
// explicit `=value` constraints) so that equivalent XPath expressions hash
// to the same DHT key, as the paper's footnote 1 requires. The covering
// relation of §III-B — q' ⊒ q iff every descriptor matching q matches q' —
// is decided syntactically on canonical forms.
package xpath

import (
	"errors"
	"sort"
	"strings"

	"dhtindex/internal/descriptor"
	"dhtindex/internal/keyspace"
)

// Wildcard is the element-name wildcard of the XPath dialect.
const Wildcard = "*"

// node is one constraint in the pattern tree.
type node struct {
	name  string  // element name or Wildcard
	desc  bool    // descendant axis (`//`): matches at any strictly lower depth
	value string  // "" = value unconstrained
	kids  []*node // predicate constraints, all must hold
}

// Query is an immutable, normalized tree pattern. The zero Query is empty
// and matches nothing; build queries with Parse, MostSpecific, or Builder.
type Query struct {
	root *node
	str  string // canonical form, computed at construction
}

// ErrEmptyQuery is returned when parsing or building yields no constraint.
var ErrEmptyQuery = errors.New("xpath: empty query")

// IsZero reports whether the query is the empty (unusable) zero value.
func (q Query) IsZero() bool { return q.root == nil }

// String returns the canonical form. Equal canonical forms ⇔ equivalent
// queries (within the normalization the package performs).
func (q Query) String() string { return q.str }

// Key returns the DHT key of the canonical form — the paper's h(q).
func (q Query) Key() keyspace.Key { return keyspace.NewKey(q.str) }

// Equal reports whether two queries have identical canonical forms.
func (q Query) Equal(other Query) bool { return q.str == other.str }

// Constraints returns the number of pattern nodes, a rough measure of query
// specificity used in diagnostics.
func (q Query) Constraints() int {
	return countNodes(q.root)
}

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, k := range n.kids {
		total += countNodes(k)
	}
	return total
}

// newQuery normalizes the pattern and freezes its canonical form.
func newQuery(root *node) Query {
	if root == nil {
		return Query{}
	}
	normalize(root)
	return Query{root: root, str: render(root, true)}
}

// normalize sorts predicates by canonical form and removes exact duplicate
// sibling constraints, recursively.
func normalize(n *node) {
	for _, k := range n.kids {
		normalize(k)
	}
	sort.SliceStable(n.kids, func(i, j int) bool {
		return render(n.kids[i], false) < render(n.kids[j], false)
	})
	out := n.kids[:0]
	var prev string
	for i, k := range n.kids {
		r := render(k, false)
		if i == 0 || r != prev {
			out = append(out, k)
		}
		prev = r
	}
	n.kids = out
}

// render produces the canonical textual form. Top-level nodes are prefixed
// with their axis; predicate heads omit the child-axis slash.
func render(n *node, top bool) string {
	var sb strings.Builder
	writeNode(&sb, n, top)
	return sb.String()
}

func writeNode(sb *strings.Builder, n *node, top bool) {
	switch {
	case n.desc:
		sb.WriteString("//")
	case top:
		sb.WriteString("/")
	}
	sb.WriteString(n.name)
	if n.value != "" {
		sb.WriteByte('=')
		sb.WriteString(n.value)
	}
	for _, k := range n.kids {
		sb.WriteByte('[')
		writeNode(sb, k, false)
		sb.WriteByte(']')
	}
}

// clone deep-copies a pattern subtree.
func (n *node) clone() *node {
	out := &node{name: n.name, desc: n.desc, value: n.value}
	if len(n.kids) > 0 {
		out.kids = make([]*node, len(n.kids))
		for i, k := range n.kids {
			out.kids[i] = k.clone()
		}
	}
	return out
}

// MostSpecific returns the most specific query (MSD) for a descriptor: the
// pattern that tests the presence of every element and every value of d
// (§III-B). It is the unique minimal query under ⊒ that d matches.
func MostSpecific(d descriptor.Descriptor) Query {
	if d.Root == nil {
		return Query{}
	}
	return newQuery(elementToNode(d.Root))
}

func elementToNode(e *descriptor.Element) *node {
	n := &node{name: e.Name}
	if e.IsLeaf() {
		n.value = e.Value
		return n
	}
	n.kids = make([]*node, 0, len(e.Children))
	for _, c := range e.Children {
		n.kids = append(n.kids, elementToNode(c))
	}
	return n
}

// ErrNotConcrete is returned by Descriptor when the query contains
// wildcards, descendant axes, or presence-only leaves and therefore does
// not determine a unique descriptor.
var ErrNotConcrete = errors.New("xpath: query is not a most-specific descriptor")

// Descriptor reconstructs the unique descriptor of a most-specific query:
// the inverse of MostSpecific. The paper relies on this direction to go
// from an MSD back to d and compute k = h(d).
func (q Query) Descriptor() (descriptor.Descriptor, error) {
	if q.root == nil {
		return descriptor.Descriptor{}, ErrEmptyQuery
	}
	root, err := nodeToElement(q.root)
	if err != nil {
		return descriptor.Descriptor{}, err
	}
	return descriptor.New(root), nil
}

func nodeToElement(n *node) (*descriptor.Element, error) {
	if n.name == Wildcard || n.desc {
		return nil, ErrNotConcrete
	}
	if len(n.kids) == 0 {
		if n.value == "" {
			return nil, ErrNotConcrete
		}
		if _, isPrefix := prefixStem(n.value); isPrefix {
			return nil, ErrNotConcrete
		}
		return descriptor.NewLeaf(n.name, n.value), nil
	}
	if n.value != "" {
		return nil, ErrNotConcrete
	}
	children := make([]*descriptor.Element, 0, len(n.kids))
	for _, k := range n.kids {
		c, err := nodeToElement(k)
		if err != nil {
			return nil, err
		}
		children = append(children, c)
	}
	return descriptor.NewNode(n.name, children...), nil
}
