package xpath

import (
	"strings"

	"dhtindex/internal/descriptor"
)

// valueForm classifies a value constraint's matching semantics. The `*`
// metacharacter implements the paper's §IV-C substring matching: "Smi*"
// is a prefix constraint ("all the files of an author that start with the
// letter A..."), "*Routing*" a contains constraint (the "words in title"
// queries of the BibFinder interface, §V-B).
type valueForm int

const (
	formExact valueForm = iota
	formPrefix
	formSuffix
	formContains
)

// classifyValue returns the constraint's stem and form.
func classifyValue(v string) (string, valueForm) {
	leading := strings.HasPrefix(v, "*") && len(v) > 1
	trailing := strings.HasSuffix(v, "*")
	switch {
	case leading && trailing:
		return v[1 : len(v)-1], formContains
	case trailing:
		return v[:len(v)-1], formPrefix
	case leading:
		return v[1:], formSuffix
	default:
		return v, formExact
	}
}

// prefixStem reports whether v is any non-exact constraint (kept for the
// concreteness check: such values do not identify a unique descriptor).
func prefixStem(v string) (string, bool) {
	stem, form := classifyValue(v)
	return stem, form != formExact
}

// valueMatches tests a value constraint against an actual leaf value.
func valueMatches(constraint, actual string) bool {
	stem, form := classifyValue(constraint)
	switch form {
	case formPrefix:
		return strings.HasPrefix(actual, stem)
	case formSuffix:
		return strings.HasSuffix(actual, stem)
	case formContains:
		return strings.Contains(actual, stem)
	default:
		return constraint == actual
	}
}

// valueImplies reports that satisfying the spec constraint guarantees the
// gen constraint.
func valueImplies(gen, spec string) bool {
	if gen == "" {
		return true
	}
	if spec == "" {
		return false
	}
	genStem, genForm := classifyValue(gen)
	specStem, specForm := classifyValue(spec)
	switch genForm {
	case formExact:
		return specForm == formExact && gen == spec
	case formPrefix:
		// Guaranteed when spec pins a value (or prefix) starting with the
		// stem.
		return (specForm == formExact || specForm == formPrefix) &&
			strings.HasPrefix(specStem, genStem)
	case formSuffix:
		return (specForm == formExact || specForm == formSuffix) &&
			strings.HasSuffix(specStem, genStem)
	case formContains:
		// Any form whose stem contains the gen stem guarantees it: an
		// exact value containing it, or a prefix/suffix/contains pattern
		// whose mandatory part contains it.
		return strings.Contains(specStem, genStem)
	default:
		return false
	}
}

// Matches reports whether the descriptor matches the query: the pattern
// tree embeds into the descriptor tree ("the evaluation of the expression
// on the document yields a non-null object", §III-B).
func (q Query) Matches(d descriptor.Descriptor) bool {
	if q.root == nil || d.Root == nil {
		return false
	}
	if q.root.desc {
		return matchesAnywhere(q.root, d.Root)
	}
	return matches(q.root, d.Root)
}

// matches tests the pattern node against exactly this element.
func matches(n *node, e *descriptor.Element) bool {
	if n.name != Wildcard && n.name != e.Name {
		return false
	}
	if n.value != "" && (!e.IsLeaf() || !valueMatches(n.value, e.Value)) {
		return false
	}
	for _, k := range n.kids {
		if !matchKid(k, e) {
			return false
		}
	}
	return true
}

// matchKid tests a child constraint against the children (or, for the
// descendant axis, the strict descendants) of e.
func matchKid(k *node, e *descriptor.Element) bool {
	if k.desc {
		return matchesAnywhereBelow(k, e)
	}
	for _, c := range e.Children {
		if matches(k, c) {
			return true
		}
	}
	return false
}

// matchesAnywhere tests the pattern against e or any of its descendants
// (descendant-or-self, used for a top-level `//` step).
func matchesAnywhere(n *node, e *descriptor.Element) bool {
	if matches(n, e) {
		return true
	}
	return matchesAnywhereBelow(n, e)
}

// matchesAnywhereBelow tests the pattern against the strict descendants
// of e.
func matchesAnywhereBelow(n *node, e *descriptor.Element) bool {
	for _, c := range e.Children {
		if matches(n, c) || matchesAnywhereBelow(n, c) {
			return true
		}
	}
	return false
}

// Covers implements the paper's covering relation: q.Covers(other) ⇔
// q ⊒ other ⇔ every descriptor that matches other also matches q.
//
// The decision is syntactic on the normalized pattern trees: every
// constraint of q must be implied by a constraint of other (a pattern
// homomorphism). The check is sound for the conjunctive tree patterns of
// this dialect, and complete on wildcard-free patterns; with wildcards it
// may rarely answer false for exotic semantically-covering pairs, which is
// safe for indexing (an index entry is simply not created).
//
// Covers is reflexive and transitive, inducing the partial order of Fig. 3.
func (q Query) Covers(other Query) bool {
	if q.root == nil || other.root == nil {
		return false
	}
	if q.root.desc {
		// `//x` is satisfied by x anywhere; other must pin x at some depth.
		return impliedAnywhere(q.root, other.root)
	}
	if other.root.desc {
		// other floats while q pins the root: only a wildcard-rooted q
		// with no further constraints could cover it; be conservative.
		return false
	}
	return implies(q.root, other.root)
}

// implies reports that any element matching spec (the more specific
// pattern) also matches gen (the more general one), at the same context.
func implies(gen, spec *node) bool {
	if gen.name != Wildcard && gen.name != spec.name {
		return false
	}
	if !valueImplies(gen.value, spec.value) {
		return false
	}
	for _, gk := range gen.kids {
		if !kidImplied(gk, spec) {
			return false
		}
	}
	return true
}

// kidImplied reports that the child constraint gk of the general pattern
// is guaranteed by the specific pattern spec's subtree.
func kidImplied(gk *node, spec *node) bool {
	if gk.desc {
		return impliedSomewhereBelow(gk, spec)
	}
	for _, sk := range spec.kids {
		if sk.desc {
			// A floating constraint of spec does not guarantee a direct
			// child of the right shape.
			continue
		}
		if implies(gk, sk) {
			return true
		}
	}
	return false
}

// impliedAnywhere: gk (ignoring its own axis) is guaranteed at spec or
// strictly below it.
func impliedAnywhere(gk, spec *node) bool {
	bare := *gk
	bare.desc = false
	if implies(&bare, spec) {
		return true
	}
	return impliedSomewhereBelow(gk, spec)
}

func impliedSomewhereBelow(gk, spec *node) bool {
	bare := *gk
	bare.desc = false
	for _, sk := range spec.kids {
		// A descendant constraint in spec pins its pattern at *some*
		// depth ≥ 1, which satisfies a descendant requirement of gen.
		if implies(&bare, sk) || impliedSomewhereBelow(gk, sk) {
			return true
		}
	}
	return false
}
