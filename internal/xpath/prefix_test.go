package xpath

import (
	"testing"

	"dhtindex/internal/descriptor"
)

// The §IV-C substring-matching extension: trailing '*' in a value is a
// prefix constraint.
func TestPrefixMatching(t *testing.T) {
	d1 := descriptor.Fig1Articles()[0].Descriptor() // Smith
	d3 := descriptor.Fig1Articles()[2].Descriptor() // Doe
	cases := []struct {
		q      string
		d      descriptor.Descriptor
		want   bool
		reason string
	}{
		{"/article[author[last=S*]]", d1, true, "S prefix of Smith"},
		{"/article[author[last=Smi*]]", d1, true, "Smi prefix of Smith"},
		{"/article[author[last=S*]]", d3, false, "Doe has no S prefix"},
		{"/article[author[last=*]]", d1, true, "empty prefix matches any value"},
		{"/article[author[last=Smith*]]", d1, true, "full-name prefix"},
		{"/article[author[last=Smithy*]]", d1, false, "longer than value"},
	}
	for _, tc := range cases {
		q := MustParse(tc.q)
		if got := q.Matches(tc.d); got != tc.want {
			t.Errorf("Matches(%q): %v, want %v (%s)", tc.q, got, tc.want, tc.reason)
		}
	}
}

func TestPrefixCovering(t *testing.T) {
	cases := []struct {
		gen, spe string
		want     bool
	}{
		{"/article[author[last=S*]]", "/article[author[last=Smith]]", true},
		{"/article[author[last=S*]]", "/article[author[last=Smi*]]", true},
		{"/article[author[last=Smi*]]", "/article[author[last=S*]]", false},
		{"/article[author[last=Smith]]", "/article[author[last=Smith*]]", false},
		{"/article[author[last=S*]]", "/article[author[last=Doe]]", false},
		{"/article[author[last=*]]", "/article[author[last=Doe]]", true},
	}
	for _, tc := range cases {
		gen, spe := MustParse(tc.gen), MustParse(tc.spe)
		if got := gen.Covers(spe); got != tc.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", tc.gen, tc.spe, got, tc.want)
		}
	}
}

func TestPrefixNotConcrete(t *testing.T) {
	q := MustParse("/article[author[first=John][last=S*]]")
	if _, err := q.Descriptor(); err == nil {
		t.Fatal("prefix-constrained query must not convert to a descriptor")
	}
}

// Contains (and suffix) constraints: "*x*" / "*x" — the "words in title"
// extension.
func TestContainsMatching(t *testing.T) {
	d := descriptor.Fig1Articles()[2].Descriptor() // Wavelets
	cases := []struct {
		q    string
		want bool
	}{
		{"/article[title=*avele*]", true},
		{"/article[title=*Wave*]", true},
		{"/article[title=*lets]", true},  // suffix
		{"/article[title=*Wave]", false}, // suffix miss
		{"/article[title=*xyz*]", false},
	}
	for _, tc := range cases {
		if got := MustParse(tc.q).Matches(d); got != tc.want {
			t.Errorf("Matches(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestContainsCovering(t *testing.T) {
	cases := []struct {
		gen, spe string
		want     bool
	}{
		{"/article[title=*Rout*]", "/article[title=Scalable Routing]", true},
		{"/article[title=*Rout*]", "/article[title=Scalable Lookup]", false},
		{"/article[title=*Rout*]", "/article[title=Routing*]", true},    // prefix stem contains
		{"/article[title=*Rout*]", "/article[title=*ScaRouting]", true}, // suffix stem contains
		{"/article[title=*Rout*]", "/article[title=*xRoutx*]", true},    // contains stem contains
		{"/article[title=Scalable Routing]", "/article[title=*Rout*]", false},
		{"/article[title=*ing]", "/article[title=Routing]", true},
		{"/article[title=*ing]", "/article[title=Router]", false},
	}
	for _, tc := range cases {
		gen, spe := MustParse(tc.gen), MustParse(tc.spe)
		if got := gen.Covers(spe); got != tc.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", tc.gen, tc.spe, got, tc.want)
		}
	}
}
