package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Registry is a set of metric series that can be rendered as one
// Prometheus-style text snapshot. Series are either registry-owned
// (Counter/Gauge/Histogram get-or-create) or externally created and
// Attach-ed; several attached instruments may share one identity (name
// + labels), in which case the snapshot aggregates them by sum — this
// is how a fleet of wire nodes exports fleet-wide retry totals while
// each node keeps its own per-instance counters.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]Metric
	all   []Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]Metric)}
}

// Counter returns the registry's counter with this identity, creating
// it on first use. A pre-existing series with the same identity but a
// different type panics: that is a programming error, not a runtime
// condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.getOrCreate(newDesc(name, help, labels), func(d Desc) Metric { return &Counter{desc: d} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, not counter", name, m.Kind()))
	}
	return c
}

// Gauge returns the registry's gauge with this identity, creating it on
// first use. Type conflicts panic, as with Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.getOrCreate(newDesc(name, help, labels), func(d Desc) Metric { return &Gauge{desc: d} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, not gauge", name, m.Kind()))
	}
	return g
}

// Histogram returns the registry's histogram with this identity,
// creating it with the given bucket bounds on first use (later calls
// reuse the existing buckets). Type conflicts panic, as with Counter.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.getOrCreate(newDesc(name, help, labels), func(d Desc) Metric {
		h := NewHistogram(name, help, bounds)
		h.desc = d
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, not histogram", name, m.Kind()))
	}
	return h
}

// getOrCreate returns the metric registered under d's identity, or
// creates, registers and returns mk(d).
func (r *Registry) getOrCreate(d Desc, mk func(Desc) Metric) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		return m
	}
	m := mk(d)
	r.byKey[d.key()] = m
	r.all = append(r.all, m)
	return m
}

// Attach registers externally created instruments (NewCounter,
// NewGauge, NewHistogram). Attaching several instruments with the same
// identity is allowed — WriteText aggregates them by sum.
func (r *Registry) Attach(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		if m == nil {
			continue
		}
		r.all = append(r.all, m)
		if _, ok := r.byKey[m.Desc().key()]; !ok {
			r.byKey[m.Desc().key()] = m
		}
	}
}

// CounterFunc registers a read-only counter series whose value is
// computed by fn at snapshot time — the collector pattern for exporting
// pre-existing stats structs without restructuring them. fn must be
// safe for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.Attach(&funcMetric{desc: newDesc(name, help, labels), kind: "counter", fn: fn})
}

// GaugeFunc registers a read-only gauge series whose value is computed
// by fn at snapshot time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.Attach(&funcMetric{desc: newDesc(name, help, labels), kind: "gauge", fn: fn})
}

// series is one aggregated (name, labels) point in a snapshot.
type series struct {
	labels string
	sample sample
}

// family is one metric name's block in a snapshot.
type family struct {
	name   string
	help   string
	kind   string
	series []series
}

// gather snapshots every metric and aggregates same-identity series.
func (r *Registry) gather() ([]family, error) {
	r.mu.Lock()
	ms := make([]Metric, len(r.all))
	copy(ms, r.all)
	r.mu.Unlock()

	fams := map[string]*family{}
	bySeries := map[string]map[string]*sample{}
	for _, m := range ms {
		d := m.Desc()
		f, ok := fams[d.Name]
		if !ok {
			f = &family{name: d.Name, help: d.Help, kind: m.Kind()}
			fams[d.Name] = f
			bySeries[d.Name] = map[string]*sample{}
		}
		if f.kind != m.Kind() {
			return nil, fmt.Errorf("telemetry: %s registered as both %s and %s", d.Name, f.kind, m.Kind())
		}
		if f.help == "" {
			f.help = d.Help
		}
		s := m.sample()
		ls := d.labelString()
		if agg, ok := bySeries[d.Name][ls]; ok {
			if err := mergeSample(agg, s, d.Name); err != nil {
				return nil, err
			}
		} else {
			cp := s
			bySeries[d.Name][ls] = &cp
		}
	}

	out := make([]family, 0, len(fams))
	for name, f := range fams {
		for ls, s := range bySeries[name] {
			f.series = append(f.series, series{labels: ls, sample: *s})
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// mergeSample sums b into a (same-identity aggregation).
func mergeSample(a *sample, b sample, name string) error {
	if (a.hist == nil) != (b.hist == nil) {
		return fmt.Errorf("telemetry: %s mixes histogram and scalar samples", name)
	}
	if a.hist == nil {
		a.value += b.value
		return nil
	}
	if len(a.hist.bounds) != len(b.hist.bounds) {
		return fmt.Errorf("telemetry: %s histograms have mismatched buckets", name)
	}
	for i, bound := range a.hist.bounds {
		if bound != b.hist.bounds[i] {
			return fmt.Errorf("telemetry: %s histograms have mismatched buckets", name)
		}
	}
	merged := &histogramSample{
		bounds: a.hist.bounds,
		counts: make([]int64, len(a.hist.counts)),
		sum:    a.hist.sum + b.hist.sum,
		count:  a.hist.count + b.hist.count,
	}
	for i := range merged.counts {
		merged.counts[i] = a.hist.counts[i] + b.hist.counts[i]
	}
	a.hist = merged
	return nil
}

// WriteText renders the registry as a Prometheus text-format (0.0.4)
// snapshot: # HELP and # TYPE comments per metric family, cumulative
// le-buckets plus _sum/_count for histograms, families and series in
// deterministic sorted order.
func (r *Registry) WriteText(w io.Writer) error {
	fams, err := r.gather()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if s.sample.hist != nil {
				writeHistogram(&buf, f.name, s.labels, s.sample.hist)
				continue
			}
			fmt.Fprintf(&buf, "%s%s %s\n", f.name, s.labels, formatValue(s.sample.value))
		}
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// writeHistogram emits the cumulative bucket, sum and count lines of
// one histogram series.
func writeHistogram(buf *bytes.Buffer, name, labels string, h *histogramSample) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(buf, "%s_bucket%s %d\n", name, withLabel(labels, "le", formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(buf, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, labels, formatValue(h.sum))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, labels, h.count)
}

// withLabel appends one label to an already-rendered label string.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatValue renders a float the shortest way that round-trips, so
// integer-valued counters print as integers.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP implements http.Handler: any request path answers with the
// WriteText snapshot, so a Registry can be mounted directly (dhtbench
// -metrics-addr does exactly that).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
